// Tests for the whole-wafer thermal model (Sec. IX "higher-power
// waferscale systems" companion analysis) and the shunt extension of the
// nodal solver it relies on.
#include <gtest/gtest.h>

#include <numeric>

#include "wsp/common/error.hpp"
#include "wsp/pdn/thermal.hpp"
#include "wsp/pdn/wafer_pdn.hpp"

namespace wsp::pdn {
namespace {

SystemConfig cfg() { return SystemConfig::paper_prototype(); }

TEST(ResistiveGridShunt, DividerAgainstReference) {
  // Node fed 1 A with a 2 S shunt to 0 V: V = I/G = 0.5.
  ResistiveGrid g(2, 2);
  g.set_shunt(0, 0, 2.0, 0.0);
  g.set_current_sink(0, 0, -1.0);  // inject
  ASSERT_TRUE(g.solve(1e-12).converged);
  EXPECT_NEAR(g.voltage(0, 0), 0.5, 1e-9);
}

TEST(ResistiveGridShunt, ReferenceOffsetRespected) {
  ResistiveGrid g(2, 2);
  g.set_shunt(1, 1, 1.0, 25.0);
  g.set_current_sink(1, 1, -10.0);
  ASSERT_TRUE(g.solve(1e-12).converged);
  EXPECT_NEAR(g.voltage(1, 1), 35.0, 1e-8);
  EXPECT_THROW(g.set_shunt(0, 0, -1.0, 0.0), Error);
}

TEST(WaferThermal, UniformPeakIsWarmButSafe) {
  WaferThermal thermal(cfg(), {});
  const ThermalReport r = thermal.solve_uniform(1.0);
  ASSERT_TRUE(r.solver_converged);
  // ~350 mW over a ~12 mm^2 tile at h = 2000 W/m^2K: ~15 C rise.
  EXPECT_GT(r.mean_c, 30.0);
  EXPECT_LT(r.max_c, 60.0);
  EXPECT_EQ(r.tiles_over_limit, 0);
  EXPECT_NEAR(r.total_heat_w, 1024 * 0.350, 1.0);
}

TEST(WaferThermal, UniformLoadGivesUniformTemperature) {
  WaferThermal thermal(cfg(), {});
  const ThermalReport r = thermal.solve_uniform(1.0);
  // No lateral gradients when every tile dissipates the same power.
  double min_c = 1e9;
  for (const double t : r.tile_temperature_c) min_c = std::min(min_c, t);
  EXPECT_NEAR(r.max_c, min_c, 0.5);
}

TEST(WaferThermal, HotspotSpreadsAndDecays) {
  const SystemConfig c = SystemConfig::reduced(16, 16);
  WaferThermal thermal(c, {});
  std::vector<double> power(256, 0.0);
  power[c.grid().index_of({8, 8})] = 2.0;  // a 2 W rogue tile
  const ThermalReport r = thermal.solve(power);
  ASSERT_TRUE(r.solver_converged);
  const double t_hot = r.tile_temperature_c[c.grid().index_of({8, 8})];
  const double t_near = r.tile_temperature_c[c.grid().index_of({9, 8})];
  const double t_far = r.tile_temperature_c[c.grid().index_of({15, 15})];
  EXPECT_GT(t_hot, t_near);
  EXPECT_GT(t_near, t_far);
  EXPECT_NEAR(t_far, thermal.options().ambient_c, 2.0);
}

TEST(WaferThermal, BetterCoolingLowersTemperature) {
  ThermalOptions air;
  air.cooling_w_m2k = 1000.0;
  ThermalOptions liquid;
  liquid.cooling_w_m2k = 10000.0;
  const ThermalReport r_air = WaferThermal(cfg(), air).solve_uniform(1.0);
  const ThermalReport r_liq = WaferThermal(cfg(), liquid).solve_uniform(1.0);
  EXPECT_GT(r_air.max_c, r_liq.max_c + 10.0);
}

TEST(WaferThermal, HigherPowerSystemsNeedBetterCooling) {
  // The paper's ongoing-work direction, quantified: scale tile power up
  // and watch the air-cooled design cross the junction limit.
  SystemConfig hot = cfg();
  hot.tile_peak_power_w = 3.5;  // 10x the prototype: a ~7 kW wafer
  ThermalOptions air;
  air.cooling_w_m2k = 1000.0;
  const ThermalReport r = WaferThermal(hot, air).solve_uniform(1.0);
  EXPECT_GT(r.tiles_over_limit, 0);
  ThermalOptions liquid;
  liquid.cooling_w_m2k = 20000.0;
  const ThermalReport r2 = WaferThermal(hot, liquid).solve_uniform(1.0);
  EXPECT_EQ(r2.tiles_over_limit, 0);
}

TEST(WaferThermal, PdnHeatMapMakesEdgeTilesHottest) {
  // Under edge-LDO delivery the edge tiles burn the most headroom, so the
  // PDN-coupled heat map inverts the usual hot-center intuition.
  WaferPdn pdn(cfg(), {});
  const PdnReport power = pdn.solve_uniform(1.0);
  const std::vector<double> heat = heat_map_from_pdn(cfg(), power);
  const TileGrid grid = cfg().grid();
  const double heat_edge = heat[grid.index_of({0, 16})];
  const double heat_center = heat[grid.index_of({16, 16})];
  EXPECT_GT(heat_edge, heat_center * 1.3);

  WaferThermal thermal(cfg(), {});
  const ThermalReport r = thermal.solve(heat);
  ASSERT_TRUE(r.solver_converged);
  // Total heat equals the wafer's input power.
  EXPECT_NEAR(r.total_heat_w, power.total_input_power_w,
              power.total_input_power_w * 0.02);
}

TEST(WaferThermal, ValidatesInputs) {
  EXPECT_THROW(WaferThermal(cfg(), {.nodes_per_tile = 0}), Error);
  ThermalOptions bad;
  bad.cooling_w_m2k = 0.0;
  EXPECT_THROW(WaferThermal(cfg(), bad), Error);
  WaferThermal ok(cfg(), {});
  EXPECT_THROW(ok.solve(std::vector<double>(5, 0.0)), Error);
  EXPECT_THROW(ok.solve_uniform(2.0), Error);
}

}  // namespace
}  // namespace wsp::pdn
