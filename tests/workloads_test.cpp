// Tests for the workload layer: graph construction/generators and the
// distributed BFS/SSSP kernels verified against sequential references
// (the software analogue of the paper's FPGA validation, Sec. II).
#include <gtest/gtest.h>

#include "wsp/common/error.hpp"
#include "wsp/noc/noc_system.hpp"
#include "wsp/workloads/graph.hpp"
#include "wsp/workloads/graph_apps.hpp"

namespace wsp::workloads {
namespace {

/// Samples fault maps until every healthy pair is routable (directly or
/// via a relay).  Fault maps that physically partition the wafer cannot
/// host a coherent unified-memory computation — the kernel would refuse to
/// schedule onto the cut-off region — so the workload tests use maps the
/// kernel would accept.
FaultMap routable_fault_map(const TileGrid& grid, std::size_t n, Rng& rng) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    FaultMap faults = FaultMap::random_with_count(grid, n, rng);
    const noc::NetworkSelector sel(faults);
    const auto healthy = faults.healthy_tiles();
    bool ok = true;
    for (std::size_t i = 0; i < healthy.size() && ok; ++i)
      for (std::size_t j = 0; j < healthy.size() && ok; ++j)
        if (i != j && !sel.plan(healthy[i], healthy[j]).reachable) ok = false;
    if (ok) return faults;
  }
  return FaultMap(grid);
}

// ------------------------------------------------------------------ graph

TEST(Graph, BuildAndAdjacency) {
  Graph g(4);
  g.add_edge(0, 1, 5);
  g.add_edge(0, 2, 7);
  g.add_edge(2, 3, 1);
  g.finalize();
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.out_degree(3), 0u);
  const auto e = g.out_edges(0);
  EXPECT_EQ(e.count, 2u);
  EXPECT_EQ(e.targets[0], 1u);
  EXPECT_EQ(e.weights[1], 7u);
}

TEST(Graph, GuardsMisuse) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(0, 5), Error);
  EXPECT_THROW(g.out_edges(0), Error);  // not finalized
  g.finalize();
  EXPECT_THROW(g.add_edge(0, 1), Error);  // already finalized
  EXPECT_THROW(g.finalize(), Error);
  EXPECT_THROW(g.out_edges(3), Error);
}

TEST(Graph, GridGeneratorDegrees) {
  const Graph g = make_grid_graph(5, 4);
  EXPECT_EQ(g.vertex_count(), 20u);
  // Undirected edges stored twice: 2*(4*4 + 5*3) = 62 directed edges.
  EXPECT_EQ(g.edge_count(), 62u);
  EXPECT_EQ(g.out_degree(0), 2u);        // corner
  EXPECT_EQ(g.out_degree(2), 3u);        // edge
  EXPECT_EQ(g.out_degree(7), 4u);        // interior
}

TEST(Graph, RandomGeneratorShape) {
  Rng rng(4);
  const Graph g = make_random_graph(100, 300, 10, rng);
  EXPECT_EQ(g.vertex_count(), 100u);
  EXPECT_EQ(g.edge_count(), 600u);  // undirected -> 2x
  for (std::uint32_t v = 0; v < 100; ++v) {
    const auto e = g.out_edges(v);
    for (std::size_t i = 0; i < e.count; ++i) {
      EXPECT_NE(e.targets[i], v);  // no self loops
      EXPECT_GE(e.weights[i], 1u);
      EXPECT_LE(e.weights[i], 10u);
    }
  }
}

TEST(Graph, RmatGeneratorIsSkewed) {
  Rng rng(9);
  const Graph g = make_rmat_graph(10, 4000, 1, rng);
  EXPECT_EQ(g.vertex_count(), 1024u);
  std::uint32_t max_deg = 0;
  std::uint32_t isolated = 0;
  for (std::uint32_t v = 0; v < g.vertex_count(); ++v) {
    max_deg = std::max(max_deg, g.out_degree(v));
    if (g.out_degree(v) == 0) ++isolated;
  }
  // Power-law: a heavy hub plus a long tail of isolated vertices.
  EXPECT_GT(max_deg, 50u);
  EXPECT_GT(isolated, 50u);
}

// ------------------------------------------------------------- partition

TEST(VertexPartition, CoversAllVerticesOnce) {
  const SystemConfig cfg = SystemConfig::reduced(4, 4);
  const FaultMap faults(cfg.grid());
  const Graph g = make_grid_graph(10, 10);
  const VertexPartition part(g, faults);
  std::size_t covered = 0;
  cfg.grid().for_each([&](TileCoord t) {
    const auto [b, e] = part.range(t);
    covered += e - b;
    for (std::uint32_t v = b; v < e; ++v) EXPECT_EQ(part.owner(v), t);
  });
  EXPECT_EQ(covered, 100u);
}

TEST(VertexPartition, SkipsFaultyTiles) {
  const SystemConfig cfg = SystemConfig::reduced(4, 4);
  FaultMap faults(cfg.grid());
  faults.set_faulty({1, 1});
  faults.set_faulty({2, 2});
  const Graph g = make_grid_graph(10, 10);
  const VertexPartition part(g, faults);
  EXPECT_EQ(part.tile_count(), 14u);
  const auto [b, e] = part.range({1, 1});
  EXPECT_EQ(b, e);  // faulty tile owns nothing
  for (std::uint32_t v = 0; v < 100; ++v)
    EXPECT_TRUE(faults.is_healthy(part.owner(v)));
}

// ------------------------------------------------------------ BFS / SSSP

TEST(Bfs, GridGraphMatchesReference) {
  const SystemConfig cfg = SystemConfig::reduced(4, 4);
  const FaultMap faults(cfg.grid());
  const Graph g = make_grid_graph(12, 12);
  const GraphAppResult r = run_bfs(cfg, faults, g, 0);
  ASSERT_TRUE(r.quiesced);
  EXPECT_EQ(r.distance, reference_bfs(g, 0));
  EXPECT_GT(r.stats.messages_delivered, 0u);
  EXPECT_EQ(r.stats.messages_undeliverable, 0u);
}

TEST(Bfs, DisconnectedComponentStaysUnreached) {
  const SystemConfig cfg = SystemConfig::reduced(2, 2);
  const FaultMap faults(cfg.grid());
  Graph g(6);
  g.add_undirected_edge(0, 1);
  g.add_undirected_edge(1, 2);
  g.add_undirected_edge(4, 5);  // separate component
  g.finalize();
  const GraphAppResult r = run_bfs(cfg, faults, g, 0);
  ASSERT_TRUE(r.quiesced);
  EXPECT_EQ(r.distance[2], 2u);
  EXPECT_EQ(r.distance[3], kUnreachedDistance);
  EXPECT_EQ(r.distance[4], kUnreachedDistance);
}

TEST(Sssp, RandomGraphMatchesDijkstra) {
  const SystemConfig cfg = SystemConfig::reduced(4, 4);
  const FaultMap faults(cfg.grid());
  Rng rng(31);
  const Graph g = make_random_graph(200, 800, 9, rng);
  const GraphAppResult r = run_sssp(cfg, faults, g, 7);
  ASSERT_TRUE(r.quiesced);
  EXPECT_EQ(r.distance, reference_sssp(g, 7));
}

TEST(Sssp, WeightsMatterVersusBfs) {
  // A triangle where the direct edge is heavier than the two-hop path.
  const SystemConfig cfg = SystemConfig::reduced(2, 2);
  const FaultMap faults(cfg.grid());
  Graph g(3);
  g.add_undirected_edge(0, 2, 10);
  g.add_undirected_edge(0, 1, 2);
  g.add_undirected_edge(1, 2, 3);
  g.finalize();
  const GraphAppResult sssp = run_sssp(cfg, faults, g, 0);
  const GraphAppResult bfs = run_bfs(cfg, faults, g, 0);
  EXPECT_EQ(sssp.distance[2], 5u);  // via vertex 1
  EXPECT_EQ(bfs.distance[2], 1u);   // hop count
}

TEST(Bfs, SurvivesFaultyTiles) {
  // Faulty tiles own no vertices and the NoC routes around them: results
  // must still match the reference exactly.
  const SystemConfig cfg = SystemConfig::reduced(6, 6);
  FaultMap faults(cfg.grid());
  faults.set_faulty({2, 3});
  faults.set_faulty({4, 1});
  faults.set_faulty({0, 5});
  const Graph g = make_grid_graph(14, 14);
  const GraphAppResult r = run_bfs(cfg, faults, g, 5);
  ASSERT_TRUE(r.quiesced);
  EXPECT_EQ(r.distance, reference_bfs(g, 5));
}

TEST(Bfs, RmatGraphMatchesReference) {
  const SystemConfig cfg = SystemConfig::reduced(4, 4);
  const FaultMap faults(cfg.grid());
  Rng rng(77);
  const Graph g = make_rmat_graph(9, 2000, 1, rng);
  const GraphAppResult r = run_bfs(cfg, faults, g, 1);
  ASSERT_TRUE(r.quiesced);
  EXPECT_EQ(r.distance, reference_bfs(g, 1));
}

TEST(GraphApp, StatsReflectWork) {
  const SystemConfig cfg = SystemConfig::reduced(4, 4);
  const FaultMap faults(cfg.grid());
  const Graph g = make_grid_graph(10, 10);
  const GraphAppResult r = run_bfs(cfg, faults, g, 0);
  EXPECT_GT(r.stats.core_busy_cycles, 0u);
  EXPECT_GT(r.stats.makespan, 0u);
  EXPECT_GE(r.stats.makespan, r.stats.cycles);
  EXPECT_GT(r.stats.handler_invocations, 16u);
}

TEST(GraphApp, RejectsOversizedGraph) {
  const SystemConfig cfg = SystemConfig::reduced(2, 2);
  const FaultMap faults(cfg.grid());
  // 4 tiles x 4 banks x 32K words = 524288 vertices max; ask for more.
  Graph g(600000);
  g.finalize();
  EXPECT_THROW(run_bfs(cfg, faults, g, 0), Error);
}

TEST(GraphApp, RejectsBadSource) {
  const SystemConfig cfg = SystemConfig::reduced(2, 2);
  const FaultMap faults(cfg.grid());
  Graph g = make_grid_graph(4, 4);
  EXPECT_THROW(run_bfs(cfg, faults, g, 99), Error);
}

// Property sweep: BFS and SSSP match their references across seeds, graph
// shapes and fault patterns.
class AppSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(AppSweep, BfsAndSsspMatchReferences) {
  const auto [seed, nfaults] = GetParam();
  Rng rng(seed);
  const SystemConfig cfg = SystemConfig::reduced(5, 5);
  const FaultMap faults = routable_fault_map(
      cfg.grid(), static_cast<std::size_t>(nfaults), rng);
  const Graph g = make_random_graph(150, 450, 7, rng);
  const auto src = static_cast<std::uint32_t>(rng.below(150));

  const GraphAppResult bfs = run_bfs(cfg, faults, g, src);
  ASSERT_TRUE(bfs.quiesced);
  EXPECT_EQ(bfs.distance, reference_bfs(g, src));

  const GraphAppResult sssp = run_sssp(cfg, faults, g, src);
  ASSERT_TRUE(sssp.quiesced);
  EXPECT_EQ(sssp.distance, reference_sssp(g, src));
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndFaults, AppSweep,
    ::testing::Combine(::testing::Values(11, 22, 33, 44),
                       ::testing::Values(0, 2, 5)));

}  // namespace
}  // namespace wsp::workloads
