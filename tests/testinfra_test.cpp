// Tests for Sec. VII: TAP controller FSM, DAP chains, broadcast mode,
// progressive unrolling (Fig. 10), pre-bond probing and load-time model.
#include <gtest/gtest.h>

#include "wsp/common/error.hpp"
#include "wsp/testinfra/dap_chain.hpp"
#include "wsp/testinfra/prebond.hpp"
#include "wsp/testinfra/tap.hpp"
#include "wsp/testinfra/test_time.hpp"

namespace wsp::testinfra {
namespace {

SystemConfig cfg() { return SystemConfig::paper_prototype(); }

// -------------------------------------------------------------------- TAP

TEST(Tap, ResetPathFromEveryState) {
  // IEEE 1149.1 invariant: five TCKs with TMS=1 reach Test-Logic-Reset
  // from any state.
  for (int s = 0; s < 16; ++s) {
    TapState state = static_cast<TapState>(s);
    for (int i = 0; i < 5; ++i) state = tap_next_state(state, true);
    EXPECT_EQ(state, TapState::TestLogicReset)
        << "from " << to_string(static_cast<TapState>(s));
  }
}

TEST(Tap, IdleLoopIsStable) {
  TapState s = TapState::RunTestIdle;
  for (int i = 0; i < 10; ++i) s = tap_next_state(s, false);
  EXPECT_EQ(s, TapState::RunTestIdle);
}

TEST(Tap, CanonicalDrScanSequence) {
  TapController tap;
  tap.step(false);  // -> Run-Test/Idle
  EXPECT_EQ(tap.state(), TapState::RunTestIdle);
  tap.step(true);   // -> Select-DR
  tap.step(false);  // -> Capture-DR
  EXPECT_EQ(tap.state(), TapState::CaptureDr);
  tap.step(false);  // -> Shift-DR
  EXPECT_EQ(tap.state(), TapState::ShiftDr);
  tap.step(true);   // -> Exit1-DR
  tap.step(true);   // -> Update-DR
  EXPECT_EQ(tap.state(), TapState::UpdateDr);
  tap.step(false);  // -> Run-Test/Idle
  EXPECT_EQ(tap.state(), TapState::RunTestIdle);
}

TEST(Tap, IrScanBranch) {
  TapState s = TapState::RunTestIdle;
  s = tap_next_state(s, true);   // Select-DR
  s = tap_next_state(s, true);   // Select-IR
  EXPECT_EQ(s, TapState::SelectIrScan);
  s = tap_next_state(s, false);  // Capture-IR
  s = tap_next_state(s, false);  // Shift-IR
  EXPECT_EQ(s, TapState::ShiftIr);
  s = tap_next_state(s, true);   // Exit1-IR
  s = tap_next_state(s, false);  // Pause-IR
  s = tap_next_state(s, true);   // Exit2-IR
  s = tap_next_state(s, false);  // back to Shift-IR
  EXPECT_EQ(s, TapState::ShiftIr);
}

TEST(Tap, EveryStateHasTwoSuccessors) {
  // FSM sanity: both TMS values lead somewhere valid (no dead states).
  for (int s = 0; s < 16; ++s) {
    const TapState from = static_cast<TapState>(s);
    const TapState t0 = tap_next_state(from, false);
    const TapState t1 = tap_next_state(from, true);
    EXPECT_NE(to_string(t0), std::string("?"));
    EXPECT_NE(to_string(t1), std::string("?"));
  }
}

// ------------------------------------------------------------- DAP chains

TEST(DapChain, SingleTileIdcodesReadInOrder) {
  WaferTestChain chain(1, 14, std::vector<bool>(1, false));
  JtagHost host(chain);
  const auto codes = host.read_idcodes(14);
  ASSERT_EQ(codes.size(), 14u);
  // DAP nearest TDO (index 13) shifts out first.
  for (int d = 0; d < 14; ++d)
    EXPECT_EQ(codes[d], chain.expected_idcode(0, 13 - d)) << d;
}

TEST(DapChain, BroadcastShowsOneDap) {
  // Fig. 9's optimisation: in broadcast mode the external controller sees
  // one DAP per tile, cutting shift latency 14x.
  WaferTestChain chain(1, 14, std::vector<bool>(1, false));
  chain.set_broadcast(true);
  JtagHost host(chain);
  const auto codes = host.read_idcodes(1);
  ASSERT_EQ(codes.size(), 1u);
  EXPECT_EQ(codes[0], chain.expected_idcode(0, 0));
}

TEST(DapChain, BroadcastShiftLatencyIs14xSmaller) {
  WaferTestChain serial(1, 14, std::vector<bool>(1, false));
  JtagHost h1(serial);
  (void)h1.read_idcodes(14);
  WaferTestChain bcast(1, 14, std::vector<bool>(1, false));
  bcast.set_broadcast(true);
  JtagHost h2(bcast);
  (void)h2.read_idcodes(1);
  // Shift portions dominate; the ratio approaches 14 for long payloads.
  EXPECT_GT(static_cast<double>(h1.tck_count()) / h2.tck_count(), 10.0);
}

TEST(DapChain, MultiTileChainConcatenates) {
  WaferTestChain chain(3, 2, std::vector<bool>(3, false));
  chain.set_unrolled(2);  // full depth: 3 tiles
  JtagHost host(chain);
  const auto codes = host.read_idcodes(6);
  ASSERT_EQ(codes.size(), 6u);
  // Order: tile 2 dap 1, tile 2 dap 0, tile 1 dap 1, ... tile 0 dap 0.
  int i = 0;
  for (int t = 2; t >= 0; --t)
    for (int d = 1; d >= 0; --d)
      EXPECT_EQ(codes[i++], chain.expected_idcode(t, d));
}

TEST(DapChain, LoopbackLimitsVisibleDepth) {
  WaferTestChain chain(4, 2, std::vector<bool>(4, false));
  chain.set_unrolled(0);  // only tile 0 visible
  JtagHost host(chain);
  const auto codes = host.read_idcodes(2);
  EXPECT_EQ(codes[0], chain.expected_idcode(0, 1));
  EXPECT_EQ(codes[1], chain.expected_idcode(0, 0));
}

TEST(DapChain, FaultyTileReadsGarbage) {
  std::vector<bool> faulty{true};
  WaferTestChain chain(1, 2, faulty);
  JtagHost host(chain);
  const auto codes = host.read_idcodes(2);
  EXPECT_EQ(codes[0], 0u);  // stuck-at-0 TDO
  EXPECT_EQ(codes[1], 0u);
}

TEST(Unrolling, CleanChainFullyUnrolls) {
  WaferTestChain chain(8, 3, std::vector<bool>(8, false));
  std::uint64_t tcks = 0;
  EXPECT_FALSE(chain.locate_first_faulty(&tcks).has_value());
  EXPECT_EQ(chain.unrolled(), 7);
  EXPECT_GT(tcks, 0u);
}

// Fig. 10 property: the progressive unrolling procedure pin-points the
// first faulty tile wherever it sits in the chain.
class UnrollSweep : public ::testing::TestWithParam<int> {};

TEST_P(UnrollSweep, LocatesFirstFaultyTile) {
  const int faulty_at = GetParam();
  std::vector<bool> faulty(8, false);
  faulty[static_cast<std::size_t>(faulty_at)] = true;
  WaferTestChain chain(8, 3, faulty);
  const auto found = chain.locate_first_faulty();
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, faulty_at);
  // The chain parks at the last good prefix.
  EXPECT_EQ(chain.unrolled(), std::max(0, faulty_at - 1));
}

INSTANTIATE_TEST_SUITE_P(Positions, UnrollSweep,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7));

TEST(Unrolling, ReportsFirstOfMultipleFaults) {
  std::vector<bool> faulty(10, false);
  faulty[3] = faulty[7] = true;
  WaferTestChain chain(10, 2, faulty);
  const auto found = chain.locate_first_faulty();
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, 3);
}

TEST(Unrolling, WorksInBroadcastMode) {
  std::vector<bool> faulty(6, false);
  faulty[4] = true;
  WaferTestChain chain(6, 14, faulty);
  chain.set_broadcast(true);
  std::uint64_t tcks = 0;
  const auto found = chain.locate_first_faulty(&tcks);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, 4);
}

// ---------------------------------------------------------------- prebond

TEST(Prebond, FinePitchPadsAreNotProbeable) {
  // 10 um pads cannot be probed (>=50 um needed); the duplicated larger
  // pads can.
  EXPECT_FALSE(probeable(10e-6));
  EXPECT_FALSE(probeable(7e-6));
  EXPECT_TRUE(probeable(50e-6));
  EXPECT_TRUE(probeable(100e-6));
}

TEST(Prebond, ProbePadPlanNeverBondsProbedPads) {
  const ProbePadPlan plan = plan_probe_pads(12);
  EXPECT_EQ(plan.probe_pad_count, 12);
  EXPECT_FALSE(plan.probed_pads_bonded);  // planarity rule
  EXPECT_NEAR(plan.area_m2, 12 * 50e-6 * 50e-6, 1e-15);
}

TEST(Prebond, KgdScreeningRemovesDieDefectsFromAssembly) {
  // With 90 % die yield and 99.998 % bond yield, skipping KGD screening
  // would put ~205 dead chiplets on the wafer instead of ~0.04.
  const KgdBenefit b = kgd_benefit(cfg(), 0.10, 0.99998);
  EXPECT_LT(b.expected_faulty_with_kgd, 1.0);
  EXPECT_GT(b.expected_faulty_without_kgd, 200.0);
  EXPECT_GT(b.faulty_chiplet_rate_without_kgd,
            b.faulty_chiplet_rate_with_kgd);
}

// -------------------------------------------------------------- test time

TEST(TestTime, TotalPayloadBits) {
  // 1024 tiles x (14 x 64 KB + 5 x 128 KB) x 8 = 1.29e10 bits.
  EXPECT_EQ(total_memory_payload_bits(cfg()), 12884901888ull);
}

TEST(TestTime, SingleChainTakesHours) {
  // Paper: "2.5 hours (with a single chain)".
  const LoadTimeReport r = memory_load_time(cfg(), 1, false);
  EXPECT_NEAR(r.hours(), 2.5, 0.2);
}

TEST(TestTime, ThirtyTwoChainsTakeMinutes) {
  // Paper: "roughly under 5 minutes" with 32 parallel row chains.
  const LoadTimeReport r = memory_load_time(cfg(), 32, false);
  EXPECT_LT(r.minutes(), 5.0);
  EXPECT_GT(r.minutes(), 2.0);
}

TEST(TestTime, SpeedupIsChainCount) {
  const LoadTimeReport one = memory_load_time(cfg(), 1, false);
  const LoadTimeReport many = memory_load_time(cfg(), 32, false);
  EXPECT_NEAR(one.seconds / many.seconds, 32.0, 0.01);
}

TEST(TestTime, BroadcastCutsPrivateImageShifts) {
  const LoadTimeReport serial = memory_load_time(cfg(), 32, false);
  const LoadTimeReport bcast = memory_load_time(cfg(), 32, true);
  EXPECT_LT(bcast.seconds, serial.seconds);
  // Private memories dominate (896 KB of 1536 KB per tile): broadcast
  // saves 13/14 of them.
  const double expected_bits =
      1024.0 * (64.0 * 1024 * 8 + 5 * 128.0 * 1024 * 8);
  EXPECT_NEAR(static_cast<double>(bcast.total_payload_bits), expected_bits,
              1.0);
  EXPECT_NEAR(broadcast_speedup(cfg()), 14.0, 1e-12);
}

TEST(TestTime, TckDerateModelsLongChains) {
  TestTimeParams derated;
  derated.tck_load_derate = 0.001;
  const LoadTimeReport one = memory_load_time(cfg(), 1, false, derated);
  const LoadTimeReport many = memory_load_time(cfg(), 32, false, derated);
  // With load-dependent TCK the split does even better than 32x.
  EXPECT_GT(one.seconds / many.seconds, 32.0);
}

TEST(TestTime, ValidatesArguments) {
  EXPECT_THROW(memory_load_time(cfg(), 0, false), Error);
  EXPECT_THROW(memory_load_time(cfg(), 33, false), Error);
  TestTimeParams bad;
  bad.protocol_overhead = 0.5;
  EXPECT_THROW(memory_load_time(cfg(), 1, false, bad), Error);
}

}  // namespace
}  // namespace wsp::testinfra
