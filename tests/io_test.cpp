// Tests for Sec. V: I/O cell model, dual-pillar bonding yield (analytic
// and Monte Carlo) and the perimeter pad layout with two column sets.
#include <gtest/gtest.h>

#include <cmath>

#include "wsp/common/error.hpp"
#include "wsp/io/bonding_yield.hpp"
#include "wsp/io/io_cell.hpp"
#include "wsp/io/pad_layout.hpp"

namespace wsp::io {
namespace {

SystemConfig cfg() { return SystemConfig::paper_prototype(); }

// ---------------------------------------------------------------- I/O cell

TEST(IoCell, PaperHeadlineNumbers) {
  const IoCellSpec spec = IoCellSpec::from_config(cfg());
  EXPECT_DOUBLE_EQ(spec.cell_area_m2, 150e-12);       // 150 um^2
  EXPECT_DOUBLE_EQ(spec.energy_per_bit_j, 0.063e-12); // 0.063 pJ/bit
  EXPECT_DOUBLE_EQ(spec.max_rate_hz, 1e9);            // 1 GHz
}

TEST(IoCell, FullRateUpToRatedLength) {
  const IoCellSpec spec = IoCellSpec::from_config(cfg());
  EXPECT_DOUBLE_EQ(spec.achievable_rate_hz(200e-6), 1e9);
  EXPECT_DOUBLE_EQ(spec.achievable_rate_hz(500e-6), 1e9);
  // Beyond the rated length the RC rolloff kicks in: 1 mm -> 500 MHz.
  EXPECT_NEAR(spec.achievable_rate_hz(1000e-6), 0.5e9, 1e6);
}

TEST(IoCell, TransferEnergyScalesLinearly) {
  const IoCellSpec spec = IoCellSpec::from_config(cfg());
  EXPECT_NEAR(spec.transfer_energy_j(1'000'000), 0.063e-6, 1e-12);
}

TEST(IoCell, ComputeChipletTotalIoArea) {
  // 2020 I/Os x 150 um^2 ~ 0.3 mm^2 (the paper rounds to "only 0.4 mm^2").
  const IoCellSpec spec = IoCellSpec::from_config(cfg());
  const double area_mm2 = spec.total_area_m2(2020) / 1e-6;
  EXPECT_NEAR(area_mm2, 0.303, 0.01);
  EXPECT_LT(area_mm2, 0.4);
}

// ------------------------------------------------------------------ yield

TEST(BondingYield, PadFailureWithRedundancy) {
  // One pillar: q = 1e-4.  Two pillars: q = 1e-8.
  EXPECT_NEAR(pad_failure_probability(0.9999, 1), 1e-4, 1e-12);
  EXPECT_NEAR(pad_failure_probability(0.9999, 2), 1e-8, 1e-14);
  EXPECT_THROW(pad_failure_probability(1.5, 1), Error);
  EXPECT_THROW(pad_failure_probability(0.9, 0), Error);
}

TEST(BondingYield, PaperSinglePillarChipletYield) {
  // Paper: "bonding yield for a chiplet would ... improve from 81.46% to
  // 99.998%" for >2000 I/Os.  0.9999^2048 = 81.48 %.
  EXPECT_NEAR(chiplet_bond_yield(0.9999, 1, 2048), 0.8148, 0.001);
  EXPECT_NEAR(chiplet_bond_yield(0.9999, 2, 2048), 0.99998, 0.00001);
}

TEST(BondingYield, ComputeChipletYieldWithActualPadCount) {
  EXPECT_NEAR(chiplet_bond_yield(0.9999, 1, 2020), 0.8171, 0.001);
  EXPECT_NEAR(chiplet_bond_yield(0.9999, 2, 2020), 0.99998, 0.00001);
}

TEST(BondingYield, AssemblySinglePillarExpectsHundredsOfFaults) {
  // Paper's simplified estimate (2048 chiplets x ~2048 pads): ~380 faulty.
  // With the real per-chiplet pad counts (2020 compute / 1250 memory) the
  // expectation is ~308; both are catastrophic without redundancy.
  const AssemblyYield y = analyze_assembly_yield(cfg(), 1);
  EXPECT_NEAR(y.expected_faulty_chiplets, 308.0, 5.0);
  EXPECT_LT(y.all_good_probability, 1e-100);
}

TEST(BondingYield, AssemblyDualPillarExpectsAtMostOneFault) {
  // Paper: redundancy reduces expected faulty chiplets "from 380 down to 1".
  const AssemblyYield y = analyze_assembly_yield(cfg(), 2);
  EXPECT_LT(y.expected_faulty_chiplets, 1.0);
  EXPECT_GT(y.all_good_probability, 0.9);
  EXPECT_NEAR(y.compute.chiplet_yield, 0.99998, 1e-5);
}

TEST(BondingYield, MonteCarloMatchesAnalyticSinglePillar) {
  Rng rng(1234);
  const double mc = estimate_faulty_chiplets(cfg(), 1, 20, rng);
  const AssemblyYield y = analyze_assembly_yield(cfg(), 1);
  EXPECT_NEAR(mc, y.expected_faulty_chiplets,
              y.expected_faulty_chiplets * 0.1);
}

TEST(BondingYield, MonteCarloMatchesAnalyticDualPillar) {
  Rng rng(99);
  const double mc = estimate_faulty_chiplets(cfg(), 2, 200, rng);
  EXPECT_LT(mc, 0.5);  // expectation is ~0.04 faulty chiplets per wafer
}

TEST(BondingYield, AssemblyDrawProducesConsistentFaultMap) {
  Rng rng(5);
  const AssemblyDraw draw = simulate_assembly(cfg(), 1, rng);
  // Every faulty chiplet marks its tile faulty; tiles can host two faults.
  EXPECT_LE(draw.tile_faults.fault_count(),
            draw.faulty_compute_chiplets + draw.faulty_memory_chiplets);
  EXPECT_GT(draw.tile_faults.fault_count(), 0u);
  // The memory chiplet (1250 pads) fails less often than compute (2020).
  EXPECT_LT(draw.faulty_memory_chiplets, draw.faulty_compute_chiplets * 2);
}

TEST(BondingYield, MorePillarsNeverHurt) {
  for (int pads : {100, 1000, 2020}) {
    double prev = 0.0;
    for (int pillars = 1; pillars <= 4; ++pillars) {
      const double y = chiplet_bond_yield(0.9999, pillars, pads);
      EXPECT_GE(y, prev);
      prev = y;
    }
  }
}

// Property: analytic chiplet yield is monotone decreasing in pad count.
class YieldMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(YieldMonotonicity, DecreasesWithPadCount) {
  const int pads = GetParam();
  EXPECT_GT(chiplet_bond_yield(0.9999, 1, pads),
            chiplet_bond_yield(0.9999, 1, pads + 100));
}

INSTANTIATE_TEST_SUITE_P(PadCounts, YieldMonotonicity,
                         ::testing::Values(10, 100, 500, 1000, 2000, 4000));

// ------------------------------------------------------------- pad layout

TEST(PadLayout, PadsPerColumnFromPitch) {
  // 3.15 mm edge at 10 um pitch -> 315 pads per column.
  EXPECT_EQ(pads_per_column(3.15e-3, 10e-6), 315);
  EXPECT_EQ(pads_per_column(2.4e-3, 10e-6), 240);
  EXPECT_THROW(pads_per_column(0.0, 10e-6), Error);
}

TEST(PadLayout, EdgeEscapeDensityMatchesPaper) {
  // "With two layers of signaling, the edge interconnect density we
  // achieve is 400 wires/mm."
  const double per_m = edge_escape_density_per_m(2, 5e-6);
  EXPECT_NEAR(per_m / 1000.0, 400.0, 1e-9);
}

TEST(PadLayout, ComputeChipletDemandAccountsAllIos) {
  const PadDemand d = compute_chiplet_demand(cfg());
  int total = 4 * d.network_per_side + 4 * d.clock_per_side + d.jtag_total +
              d.misc_secondary;
  for (const int b : d.bank_ios) total += b;
  EXPECT_EQ(total, cfg().ios_per_compute_chiplet);
  EXPECT_EQ(d.network_per_side, 400);
  EXPECT_EQ(static_cast<int>(d.bank_ios.size()), 5);
}

TEST(PadLayout, FullComputeChipletLayoutIsFeasible) {
  const SystemConfig c = cfg();
  const PadDemand d = compute_chiplet_demand(c);
  const PadLayout layout = generate_pad_layout(
      c.geometry.compute_chiplet_width_m, c.geometry.compute_chiplet_height_m,
      c.io_pitch_m, d, c.io_cell_area_m2);
  EXPECT_TRUE(layout.feasible);
  EXPECT_EQ(static_cast<int>(layout.pads.size()), c.ios_per_compute_chiplet);
  EXPECT_EQ(layout.essential_count + layout.secondary_count,
            static_cast<int>(layout.pads.size()));
  EXPECT_GT(layout.secondary_count, 0);  // three banks live in set 2
}

TEST(PadLayout, EssentialSignalsStayInFirstTwoColumns) {
  const SystemConfig c = cfg();
  const PadLayout layout = generate_pad_layout(
      c.geometry.compute_chiplet_width_m, c.geometry.compute_chiplet_height_m,
      c.io_pitch_m, compute_chiplet_demand(c), c.io_cell_area_m2);
  for (const Pad& pad : layout.pads) {
    if (pad.signal == SignalClass::NetworkLink ||
        pad.signal == SignalClass::ClockForward ||
        pad.signal == SignalClass::TestJtag) {
      EXPECT_LT(pad.column, 2) << "essential pad in deep column";
    }
    if (pad.signal == SignalClass::MemoryBank && pad.bank >= 2) {
      EXPECT_GE(pad.column, 2) << "secondary bank in essential column";
    }
  }
}

TEST(PadLayout, PadsLieInsideTheChiplet) {
  const SystemConfig c = cfg();
  const double w = c.geometry.compute_chiplet_width_m;
  const double h = c.geometry.compute_chiplet_height_m;
  const PadLayout layout = generate_pad_layout(
      w, h, c.io_pitch_m, compute_chiplet_demand(c), c.io_cell_area_m2);
  for (const Pad& pad : layout.pads) {
    EXPECT_GE(pad.x_m, 0.0);
    EXPECT_LE(pad.x_m, w);
    EXPECT_GE(pad.y_m, 0.0);
    EXPECT_LE(pad.y_m, h);
  }
}

TEST(PadLayout, OverflowDetected) {
  // Demanding far more I/O than the perimeter offers must be flagged.
  PadDemand d;
  d.network_per_side = 5000;
  const PadLayout layout =
      generate_pad_layout(3.15e-3, 2.4e-3, 10e-6, d, 150e-12);
  EXPECT_FALSE(layout.feasible);
}

TEST(PadLayout, SingleLayerImpactMatchesPaper) {
  // "The only downside would be the reduction of shared memory capacity
  // by 60%" — 3 of the 5 banks are lost.
  const SingleLayerImpact impact = single_layer_impact(cfg());
  EXPECT_EQ(impact.banks_connected, 2);
  EXPECT_EQ(impact.banks_lost, 3);
  EXPECT_DOUBLE_EQ(impact.memory_capacity_fraction_lost, 0.6);
  EXPECT_TRUE(impact.network_intact);
}

}  // namespace
}  // namespace wsp::io
