// Tests for Sec. VI routing: dimension-ordered paths, pair connectivity
// (the fast analyzer vs brute-force path walking) and the Fig. 6 census.
#include <gtest/gtest.h>

#include "wsp/noc/connectivity.hpp"
#include "wsp/noc/routing.hpp"

namespace wsp::noc {
namespace {

TEST(Dor, NextHopXYGoesHorizontalFirst) {
  EXPECT_EQ(next_hop({0, 0}, {3, 2}, NetworkKind::XY).dir, Direction::East);
  EXPECT_EQ(next_hop({3, 0}, {3, 2}, NetworkKind::XY).dir, Direction::North);
  EXPECT_EQ(next_hop({5, 5}, {2, 5}, NetworkKind::XY).dir, Direction::West);
}

TEST(Dor, NextHopYXGoesVerticalFirst) {
  EXPECT_EQ(next_hop({0, 0}, {3, 2}, NetworkKind::YX).dir, Direction::North);
  EXPECT_EQ(next_hop({0, 2}, {3, 2}, NetworkKind::YX).dir, Direction::East);
  EXPECT_EQ(next_hop({5, 5}, {5, 1}, NetworkKind::YX).dir, Direction::South);
}

TEST(Dor, EjectAtDestination) {
  EXPECT_TRUE(next_hop({4, 4}, {4, 4}, NetworkKind::XY).eject);
  EXPECT_TRUE(next_hop({4, 4}, {4, 4}, NetworkKind::YX).eject);
}

TEST(Dor, PathLengthIsManhattanPlusOne) {
  for (const auto kind : {NetworkKind::XY, NetworkKind::YX}) {
    const auto path = dor_path({1, 2}, {6, 7}, kind);
    EXPECT_EQ(path.size(),
              static_cast<std::size_t>(hop_distance({1, 2}, {6, 7})) + 1);
    EXPECT_EQ(path.front(), (TileCoord{1, 2}));
    EXPECT_EQ(path.back(), (TileCoord{6, 7}));
    // Consecutive tiles are mesh neighbours.
    for (std::size_t i = 1; i < path.size(); ++i)
      EXPECT_EQ(hop_distance(path[i - 1], path[i]), 1);
  }
}

TEST(Dor, XYAndYXPathsAreTileDisjointOffRowColumn) {
  // The foundation of the dual-network resiliency: for src/dst not sharing
  // a row or column, the two paths share only the endpoints.
  const TileCoord src{2, 3}, dst{7, 9};
  const auto xy = dor_path(src, dst, NetworkKind::XY);
  const auto yx = dor_path(src, dst, NetworkKind::YX);
  int shared = 0;
  for (const TileCoord& a : xy)
    for (const TileCoord& b : yx)
      if (a == b) ++shared;
  EXPECT_EQ(shared, 2);  // src and dst only
}

TEST(Dor, SameRowPathsCoincide) {
  const auto xy = dor_path({1, 4}, {6, 4}, NetworkKind::XY);
  const auto yx = dor_path({1, 4}, {6, 4}, NetworkKind::YX);
  EXPECT_EQ(xy, yx);
}

TEST(Dor, RequestResponsePairTraverseSameTiles) {
  // Fig. 7: request X-Y from A to B, response Y-X from B to A — the
  // response path is the request path reversed.
  const TileCoord a{2, 3}, b{9, 6};
  auto req = dor_path(a, b, NetworkKind::XY);
  const auto resp = dor_path(b, a, NetworkKind::YX);
  std::reverse(req.begin(), req.end());
  EXPECT_EQ(req, resp);
}

TEST(Dor, PathHealthRespectsFaults) {
  FaultMap faults(TileGrid(8, 8));
  faults.set_faulty({4, 0});
  EXPECT_FALSE(path_is_healthy(faults, {0, 0}, {7, 0}, NetworkKind::XY));
  // YX from (0,0) to (7,0) is the same row: also blocked.
  EXPECT_FALSE(path_is_healthy(faults, {0, 0}, {7, 0}, NetworkKind::YX));
  // An off-row destination dodges it on YX.
  EXPECT_FALSE(path_is_healthy(faults, {0, 0}, {7, 3}, NetworkKind::XY) &&
               faults.is_faulty({4, 0}));
  EXPECT_TRUE(path_is_healthy(faults, {0, 0}, {7, 3}, NetworkKind::YX));
}

TEST(Dor, FaultyEndpointsAreDisconnected) {
  FaultMap faults(TileGrid(8, 8));
  faults.set_faulty({0, 0});
  const PairConnectivity pc = pair_connectivity(faults, {0, 0}, {5, 5});
  EXPECT_FALSE(pc.connected());
}

TEST(Intermediate, FindsRelayForBlockedRowPair) {
  // Same-row pair with a fault between them: both direct paths die, but a
  // one-step dogleg exists.
  FaultMap faults(TileGrid(8, 8));
  faults.set_faulty({3, 2});
  const TileCoord src{0, 2}, dst{7, 2};
  EXPECT_FALSE(pair_connectivity(faults, src, dst).connected());
  const auto mid = find_intermediate(faults, src, dst);
  ASSERT_TRUE(mid.has_value());
  EXPECT_TRUE(pair_connectivity(faults, src, *mid).connected());
  EXPECT_TRUE(pair_connectivity(faults, *mid, dst).connected());
  // The best relay adds only 2 hops (one row over and back).
  const int extra = hop_distance(src, *mid) + hop_distance(*mid, dst) -
                    hop_distance(src, dst);
  EXPECT_EQ(extra, 2);
}

TEST(Intermediate, NoneWhenDestinationIsWalledIn) {
  FaultMap faults(TileGrid(8, 8));
  for (TileCoord f : {TileCoord{4, 5}, TileCoord{5, 4}, TileCoord{4, 3},
                      TileCoord{3, 4}})
    faults.set_faulty(f);
  EXPECT_FALSE(find_intermediate(faults, {0, 0}, {4, 4}).has_value());
}

// ------------------------------------------------------ analyzer validity

class AnalyzerVsBruteForce
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(AnalyzerVsBruteForce, AgreeOnAllPairs) {
  const auto [seed, nfaults] = GetParam();
  Rng rng(seed);
  const TileGrid grid(9, 9);
  const FaultMap faults = FaultMap::random_with_count(
      grid, static_cast<std::size_t>(nfaults), rng);
  const ConnectivityAnalyzer an(faults);
  grid.for_each([&](TileCoord s) {
    grid.for_each([&](TileCoord d) {
      EXPECT_EQ(an.xy_connected(s, d),
                path_is_healthy(faults, s, d, NetworkKind::XY))
          << to_string(s) << "->" << to_string(d);
      EXPECT_EQ(an.yx_connected(s, d),
                path_is_healthy(faults, s, d, NetworkKind::YX))
          << to_string(s) << "->" << to_string(d);
    });
  });
}

INSTANTIATE_TEST_SUITE_P(
    RandomMaps, AnalyzerVsBruteForce,
    ::testing::Combine(::testing::Values(3, 17, 2026),
                       ::testing::Values(0, 1, 5, 20)));

// ------------------------------------------------------------ Fig.6 census

TEST(Fig6, NoFaultsNothingDisconnected) {
  const DisconnectionStats stats =
      census_disconnection(FaultMap(TileGrid(16, 16)));
  EXPECT_EQ(stats.disconnected_single_xy, 0u);
  EXPECT_EQ(stats.disconnected_dual, 0u);
  EXPECT_EQ(stats.healthy_pairs, 256u * 255u);
}

TEST(Fig6, DualNeverWorseThanSingle) {
  Rng rng(8);
  for (int t = 0; t < 10; ++t) {
    const FaultMap faults =
        FaultMap::random_with_count(TileGrid(16, 16), 8, rng);
    const DisconnectionStats stats = census_disconnection(faults);
    EXPECT_LE(stats.disconnected_dual, stats.disconnected_single_xy);
  }
}

TEST(Fig6, PaperHeadlineAtFiveFaults) {
  // Paper: with 5 faulty chiplets on the 32x32 wafer, a single DoR network
  // disconnects >12% of pairs; two networks reduce it to <2%.  The >12%
  // figure matches round-trip accounting (request and response take
  // different single-network paths); one-way path counting gives ~9%.
  Rng rng(42);
  const TileGrid grid(32, 32);
  double single = 0.0, roundtrip = 0.0, dual = 0.0;
  const int trials = 15;
  for (int t = 0; t < trials; ++t) {
    const DisconnectionStats stats =
        census_disconnection(FaultMap::random_with_count(grid, 5, rng));
    single += stats.single_pct();
    roundtrip += stats.single_roundtrip_pct();
    dual += stats.dual_pct();
  }
  single /= trials;
  roundtrip /= trials;
  dual /= trials;
  EXPECT_GT(single, 8.0);
  EXPECT_LT(single, 25.0);
  EXPECT_GT(roundtrip, 12.0);  // the paper's >12%
  EXPECT_GE(roundtrip, single);
  EXPECT_LT(dual, 2.0);        // paper: <2%
}

TEST(Fig6, SingleFaultOnlyDisconnectsSameRowColumnPairs) {
  // The exact version of the paper's "the paths that still get
  // disconnected with two DoR networks mostly connect pairs in the same
  // row/column": with ONE fault it is a theorem — the only pairs losing
  // both paths share the fault's row or column with each other.
  Rng rng(7);
  const TileGrid grid(32, 32);
  for (int t = 0; t < 10; ++t) {
    const DisconnectionStats stats =
        census_disconnection(FaultMap::random_with_count(grid, 1, rng));
    EXPECT_EQ(stats.disconnected_dual, stats.disconnected_dual_same_row_col);
  }
}

TEST(Fig6, SameRowColumnPairsRemainOverrepresentedAtFiveFaults) {
  // At higher fault counts cross-blocking (fault A kills the X-Y path,
  // fault B the Y-X path) adds off-row/column casualties, but same-row/
  // column pairs stay heavily over-represented: they are ~6 % of all
  // pairs yet a much larger share of the disconnected ones.
  Rng rng(7);
  const TileGrid grid(32, 32);
  std::size_t dual = 0, same_rc = 0;
  for (int t = 0; t < 10; ++t) {
    const DisconnectionStats stats =
        census_disconnection(FaultMap::random_with_count(grid, 5, rng));
    dual += stats.disconnected_dual;
    same_rc += stats.disconnected_dual_same_row_col;
  }
  ASSERT_GT(dual, 0u);
  const double share = static_cast<double>(same_rc) / dual;
  const double baseline = 62.0 / 1023.0;  // same-row/col share of all pairs
  EXPECT_GT(share, 2.0 * baseline);
}

TEST(Fig6, SweepIsMonotoneInFaultCount) {
  Rng rng(11);
  const auto points =
      fig6_sweep(TileGrid(16, 16), {1, 3, 5, 8, 12}, 10, rng);
  ASSERT_EQ(points.size(), 5u);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GT(points[i].mean_single_pct, points[i - 1].mean_single_pct);
    EXPECT_GE(points[i].mean_dual_pct, points[i - 1].mean_dual_pct);
  }
  for (const auto& p : points)
    EXPECT_LT(p.mean_dual_pct, p.mean_single_pct);
}

}  // namespace
}  // namespace wsp::noc
