// Tests for the runtime-resilience subsystem (wsp/resilience plus the
// degradation hooks it drives in wsp/noc and wsp/clock): fault schedules
// and injection, NoC timeout/retry accounting, replan invariants, clock
// re-selection, PDN brownout re-solve, and the end-to-end degradation
// campaign (determinism + the five-tile-kill acceptance scenario).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "wsp/ckpt/checkpoint.hpp"
#include "wsp/clock/forwarding.hpp"
#include "wsp/clock/recovery.hpp"
#include "wsp/common/fault_map.hpp"
#include "wsp/common/fault_observer.hpp"
#include "wsp/common/rng.hpp"
#include "wsp/noc/noc_system.hpp"
#include "wsp/resilience/campaign.hpp"
#include "wsp/resilience/fault_injector.hpp"
#include "wsp/resilience/fault_schedule.hpp"
#include "wsp/resilience/pdn_degradation.hpp"

namespace wsp::resilience {
namespace {

// ----------------------------------------------------------- FaultSchedule

TEST(FaultSchedule, KeepsEventsSortedAndStable) {
  FaultSchedule s;
  s.add({50, RuntimeFaultKind::TileDeath, {1, 1}, Direction::North});
  s.add({10, RuntimeFaultKind::TileDeath, {2, 2}, Direction::North});
  s.add({30, RuntimeFaultKind::LdoBrownout, {3, 3}, Direction::North});
  s.add({30, RuntimeFaultKind::ClockGenLoss, {0, 0}, Direction::North});
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s.events()[0].cycle, 10u);
  EXPECT_EQ(s.events()[1].cycle, 30u);
  EXPECT_EQ(s.events()[2].cycle, 30u);
  EXPECT_EQ(s.events()[3].cycle, 50u);
  // Same-cycle events keep insertion order (brownout was added first).
  EXPECT_EQ(s.events()[1].kind, RuntimeFaultKind::LdoBrownout);
  EXPECT_EQ(s.events()[2].kind, RuntimeFaultKind::ClockGenLoss);
  EXPECT_EQ(s.horizon(), 50u);
}

TEST(FaultSchedule, RandomIsDeterministicInTheSeed) {
  const TileGrid grid(8, 8);
  ScheduleMix mix;
  mix.clock_gen_losses = 1;
  Rng a(7), b(7);
  const FaultSchedule s1 = FaultSchedule::random(grid, mix, 1000, a);
  const FaultSchedule s2 = FaultSchedule::random(grid, mix, 1000, b);
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1.events()[i].cycle, s2.events()[i].cycle);
    EXPECT_EQ(s1.events()[i].kind, s2.events()[i].kind);
    EXPECT_EQ(s1.events()[i].tile, s2.events()[i].tile);
    EXPECT_EQ(s1.events()[i].link, s2.events()[i].link);
  }
}

TEST(FaultSchedule, RandomRespectsMixAndBounds) {
  const TileGrid grid(8, 8);
  ScheduleMix mix;
  mix.tile_deaths = 4;
  mix.link_failures = 3;
  mix.ldo_brownouts = 2;
  mix.clock_gen_losses = 2;
  mix.packet_corruptions = 1;
  Rng rng(13);
  const FaultSchedule s = FaultSchedule::random(grid, mix, 500, rng);
  ASSERT_EQ(s.size(), mix.total());

  std::size_t per_kind[5] = {};
  std::vector<TileCoord> dead;
  for (const FaultEvent& e : s.events()) {
    EXPECT_GE(e.cycle, 1u);
    EXPECT_LE(e.cycle, 500u);
    EXPECT_TRUE(grid.contains(e.tile));
    ++per_kind[static_cast<std::size_t>(e.kind)];
    if (e.kind == RuntimeFaultKind::TileDeath) dead.push_back(e.tile);
    if (e.kind == RuntimeFaultKind::LinkFailure) {
      EXPECT_TRUE(grid.neighbor(e.tile, e.link).has_value());
    }
    if (e.kind == RuntimeFaultKind::ClockGenLoss) {
      EXPECT_TRUE(grid.is_edge(e.tile));
    }
  }
  EXPECT_EQ(per_kind[0], mix.tile_deaths);
  EXPECT_EQ(per_kind[1], mix.link_failures);
  EXPECT_EQ(per_kind[2], mix.ldo_brownouts);
  EXPECT_EQ(per_kind[3], mix.clock_gen_losses);
  EXPECT_EQ(per_kind[4], mix.packet_corruptions);
  // Tile deaths never repeat a target.
  std::sort(dead.begin(), dead.end());
  EXPECT_EQ(std::adjacent_find(dead.begin(), dead.end()), dead.end());
}

// ----------------------------------------------------------- FaultInjector

/// Observer that records each notice and checks the state is post-event.
class RecordingObserver : public FaultObserver {
 public:
  void on_fault(const FaultNotice& notice, const FaultMap& faults,
                const LinkFaultSet& links) override {
    if (notice.kind == RuntimeFaultKind::TileDeath) {
      EXPECT_TRUE(faults.is_faulty(notice.tile));
    }
    if (notice.kind == RuntimeFaultKind::LinkFailure) {
      EXPECT_TRUE(links.is_failed(notice.tile, *notice.link));
    }
    notices.push_back(notice);
  }
  std::vector<FaultNotice> notices;
};

TEST(FaultInjector, AppliesDueEventsAndNotifiesObservers) {
  const TileGrid grid(4, 4);
  FaultSchedule s;
  s.add({10, RuntimeFaultKind::TileDeath, {1, 1}, Direction::North});
  s.add({20, RuntimeFaultKind::LinkFailure, {2, 2}, Direction::East});
  s.add({30, RuntimeFaultKind::LdoBrownout, {3, 3}, Direction::North});
  s.add({30, RuntimeFaultKind::ClockGenLoss, {0, 0}, Direction::North});
  s.add({40, RuntimeFaultKind::PacketCorruption, {2, 1}, Direction::North});

  FaultInjector injector(FaultMap(grid), s);
  RecordingObserver obs;
  injector.bus().subscribe(&obs);

  EXPECT_TRUE(injector.advance_to(5).empty());
  EXPECT_EQ(injector.next_due_cycle(), 10u);

  const auto first = injector.advance_to(10);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].kind, RuntimeFaultKind::TileDeath);
  EXPECT_TRUE(injector.faults().is_faulty({1, 1}));
  EXPECT_EQ(injector.next_due_cycle(), 20u);

  const auto second = injector.advance_to(20);
  ASSERT_EQ(second.size(), 1u);
  ASSERT_TRUE(second[0].link.has_value());
  EXPECT_TRUE(injector.link_faults().is_failed({2, 2}, Direction::East));
  // Link failures do not kill the tile.
  EXPECT_TRUE(injector.faults().is_healthy({2, 2}));

  const auto third = injector.advance_to(35);
  ASSERT_EQ(third.size(), 2u);  // both cycle-30 events, in schedule order
  EXPECT_EQ(third[0].kind, RuntimeFaultKind::LdoBrownout);
  EXPECT_EQ(third[1].kind, RuntimeFaultKind::ClockGenLoss);
  ASSERT_EQ(injector.brownouts().size(), 1u);
  EXPECT_EQ(injector.brownouts()[0], (TileCoord{3, 3}));
  ASSERT_EQ(injector.lost_generators().size(), 1u);
  EXPECT_EQ(injector.lost_generators()[0], (TileCoord{0, 0}));
  // Brownouts and generator losses are policy events: the fault map is not
  // mutated until the degradation layer decides.
  EXPECT_TRUE(injector.faults().is_healthy({3, 3}));
  EXPECT_FALSE(injector.exhausted());

  injector.advance_to(1000);
  EXPECT_TRUE(injector.exhausted());
  EXPECT_EQ(obs.notices.size(), 5u);

  injector.mark_unusable({2, 3});
  EXPECT_TRUE(injector.faults().is_faulty({2, 3}));
}

// --------------------------------------------- NoC timeout/retry/recovery

noc::NocOptions retry_options(std::uint64_t timeout, int retries = 3,
                              std::uint64_t backoff = 16) {
  noc::NocOptions o;
  o.response_timeout = timeout;
  o.max_retries = retries;
  o.retry_backoff_base = backoff;
  return o;
}

TEST(NocResilience, TransactionToDeadDestinationIsLost) {
  const TileGrid grid(4, 4);
  noc::NocSystem noc(FaultMap(grid), retry_options(120, 2));
  ASSERT_TRUE(noc.issue({0, 0}, {3, 3}, noc::PacketType::ReadRequest));

  std::vector<noc::CompletedTransaction> done;
  noc.step(done);
  FaultMap fm = noc.faults();
  fm.set_faulty({3, 3});
  noc.apply_fault_state(fm);

  EXPECT_TRUE(noc.drain(done, 100000));
  const noc::NocStats& st = noc.stats();
  EXPECT_EQ(st.issued, 1u);
  EXPECT_EQ(st.completed, 0u);
  EXPECT_EQ(st.lost, 1u);
  // The replan at the first timeout finds the destination dead, so the
  // transaction is lost without burning the remaining retries.
  EXPECT_EQ(st.timeouts, 1u);
  EXPECT_EQ(st.retries, 0u);
  EXPECT_EQ(st.replans, 1u);
  EXPECT_EQ(noc.inflight_transactions(), 0u);
}

TEST(NocResilience, TrafficRecoversAroundAMidRunTileDeath) {
  const TileGrid grid(6, 6);
  noc::NocSystem noc(FaultMap(grid), retry_options(200));

  // A mix of pairs; the same-column pair (2,0)->(2,5) is guaranteed to
  // cross (2,2) on *both* networks, so killing that tile strands at least
  // one first attempt and forces the retry + relay fallback.
  const std::pair<TileCoord, TileCoord> pairs[] = {
      {{2, 0}, {2, 5}}, {{2, 5}, {2, 0}}, {{0, 0}, {5, 5}},
      {{5, 0}, {0, 5}}, {{0, 2}, {5, 2}}, {{1, 1}, {4, 3}},
  };
  for (const auto& [src, dst] : pairs)
    ASSERT_TRUE(noc.issue(src, dst, noc::PacketType::ReadRequest));

  std::vector<noc::CompletedTransaction> done;
  for (int i = 0; i < 4; ++i) noc.step(done);

  FaultMap fm = noc.faults();
  fm.set_faulty({2, 2});
  noc.apply_fault_state(fm);

  EXPECT_TRUE(noc.drain(done, 100000));
  const noc::NocStats& st = noc.stats();
  EXPECT_EQ(st.issued, 6u);
  // Every pair avoids the dead tile as an endpoint, and a 6x6 grid minus
  // one interior tile keeps every survivor pair connected (via the other
  // network or a relay), so nothing is permanently lost.
  EXPECT_EQ(st.completed, 6u);
  EXPECT_EQ(st.lost, 0u);
  EXPECT_GE(st.retries, 1u);
  EXPECT_EQ(st.timeouts, st.retries + st.lost);
  EXPECT_EQ(done.size(), 6u);
}

TEST(NocResilience, CorruptedPacketIsRetriedNotLost) {
  const TileGrid grid(5, 5);
  noc::NocSystem noc(FaultMap(grid), retry_options(100, 2, 8));

  // Converging traffic builds router queues at the hot destination, so a
  // buffered packet exists for the corruption to strike.
  const TileCoord dst{3, 3};
  const TileCoord srcs[] = {{0, 0}, {4, 0}, {0, 4}, {4, 4},
                            {0, 3}, {3, 0}, {1, 1}, {4, 2}};
  for (const TileCoord src : srcs)
    ASSERT_TRUE(noc.issue(src, dst, noc::PacketType::ReadRequest));

  std::vector<noc::CompletedTransaction> done;
  bool corrupted = false;
  for (int cycle = 0; cycle < 50 && !corrupted; ++cycle) {
    noc.step(done);
    grid.for_each([&](TileCoord t) {
      if (!corrupted && noc.inject_corruption(t)) corrupted = true;
    });
  }
  ASSERT_TRUE(corrupted);
  EXPECT_EQ(noc.stats().corrupted, 1u);

  EXPECT_TRUE(noc.drain(done, 100000));
  const noc::NocStats& st = noc.stats();
  EXPECT_EQ(st.issued, 8u);
  EXPECT_EQ(st.completed, 8u);  // the struck transaction recovered
  EXPECT_EQ(st.lost, 0u);
  EXPECT_GE(st.timeouts, 1u);
  EXPECT_EQ(st.timeouts, st.retries);
}

TEST(NocResilience, TimeoutDisabledKeepsLegacyBehaviour) {
  const TileGrid grid(4, 4);
  noc::NocSystem noc{FaultMap(grid)};  // response_timeout == 0
  ASSERT_TRUE(noc.issue({0, 0}, {3, 3}, noc::PacketType::ReadRequest));
  std::vector<noc::CompletedTransaction> done;
  EXPECT_TRUE(noc.drain(done, 10000));
  const noc::NocStats& st = noc.stats();
  EXPECT_EQ(st.completed, 1u);
  EXPECT_EQ(st.timeouts, 0u);
  EXPECT_EQ(st.retries, 0u);
  EXPECT_EQ(st.lost, 0u);
}

// --------------------------------------------------- NetworkSelector replan

TEST(NetworkSelector, RebindInvalidatesCachedPlans) {
  const TileGrid grid(6, 6);
  FaultMap fm(grid);
  noc::NetworkSelector sel(fm);
  EXPECT_EQ(sel.generation(), 0u);

  const noc::RoutePlan before = sel.plan({0, 0}, {5, 5});
  ASSERT_TRUE(before.reachable);
  EXPECT_FALSE(before.relayed);

  // Kill a tile on the direct path of *both* networks' corners so the pair
  // must change its route after rebinding.
  fm.set_faulty({5, 0});
  fm.set_faulty({0, 5});
  fm.set_faulty({2, 2});
  sel.rebind(fm);
  EXPECT_EQ(sel.generation(), 1u);
  const noc::RoutePlan after = sel.plan({0, 0}, {5, 5});
  EXPECT_TRUE(after.reachable);
  // Repeated queries replay the cached plan bit-for-bit.
  const noc::RoutePlan again = sel.plan({0, 0}, {5, 5});
  EXPECT_EQ(after.segment_networks, again.segment_networks);
  EXPECT_EQ(after.waypoints, again.waypoints);
}

TEST(NetworkSelector, FailedLinkForcesRelayForSameRowPair) {
  // A same-row pair rides the identical tile sequence on both networks, so
  // one failed directed link on that row can only be bypassed via a relay
  // tile in another row.
  const TileGrid grid(5, 5);
  FaultMap fm(grid);
  LinkFaultSet links(grid);
  links.set_failed({1, 2}, Direction::East);
  noc::NetworkSelector sel(fm, links);
  const noc::RoutePlan plan = sel.plan({0, 2}, {4, 2});
  ASSERT_TRUE(plan.reachable);
  EXPECT_TRUE(plan.relayed);
  ASSERT_EQ(plan.waypoints.size(), 3u);
  EXPECT_NE(plan.waypoints[1].y, 2);  // the relay leaves the broken row
}

TEST(NetworkSelector, ReverseLinkDirectionAlsoBlocksThePath) {
  // The response rides the complementary network back over the same tiles,
  // so a failure of only the *reverse* hop must also disqualify the path.
  const TileGrid grid(5, 5);
  FaultMap fm(grid);
  LinkFaultSet links(grid);
  links.set_failed({2, 2}, Direction::West);  // blocks responses 4,2 -> 0,2
  noc::NetworkSelector sel(fm, links);
  const noc::RoutePlan plan = sel.plan({0, 2}, {4, 2});
  ASSERT_TRUE(plan.reachable);
  EXPECT_TRUE(plan.relayed);
}

TEST(NocResilience, ReplannedPairKeepsAllPacketsOnOneNetwork) {
  // In-order invariant across a replan: after a fault-map change, every
  // packet of a given pair must still ride a single network, and arrive in
  // issue order.
  const TileGrid grid(6, 6);
  const TileCoord src{1, 1};
  const TileCoord dst{4, 3};

  FaultMap fm((grid));
  // The pair's parity-balanced choice is YX (north along x=1 first); kill
  // a tile on that column so the replanned pair must move to XY.
  fm.set_faulty({1, 2});

  noc::NocSystem noc(FaultMap(grid), retry_options(200));
  noc.apply_fault_state(fm);  // the mid-run replan

  std::vector<noc::Packet> delivered;
  noc.set_delivery_listener(
      [&](const noc::Packet& p) { delivered.push_back(p); });

  std::vector<std::uint64_t> issue_order;
  std::vector<noc::CompletedTransaction> done;
  for (int i = 0; i < 6; ++i) {
    const auto id = noc.issue(src, dst, noc::PacketType::ReadRequest);
    ASSERT_TRUE(id.has_value());
    issue_order.push_back(*id);
    noc.step(done);
  }
  EXPECT_TRUE(noc.drain(done, 100000));

  ASSERT_EQ(delivered.size(), 6u);
  std::vector<std::uint64_t> arrival_order;
  for (const noc::Packet& p : delivered) {
    EXPECT_EQ(p.network, delivered.front().network);  // one network only
    arrival_order.push_back(p.id);
  }
  EXPECT_EQ(arrival_order, issue_order);  // in order
  EXPECT_EQ(noc.stats().completed, 6u);
  EXPECT_EQ(noc.stats().lost, 0u);
}

// ---------------------------------------------------------- clock recovery

TEST(ClockRecovery, NoFaultsMeansNothingInvalidated) {
  const TileGrid grid(6, 6);
  FaultMap fm(grid);
  const std::vector<TileCoord> gens = {{0, 0}};
  const clock::ForwardingPlan plan = clock::simulate_forwarding(fm, gens);
  const clock::ReclockReport r = clock::reselect_after_faults(plan, fm, gens);
  EXPECT_TRUE(r.invalidated.empty());
  EXPECT_TRUE(r.newly_orphaned.empty());
  EXPECT_EQ(r.surviving_generator_count, 1u);
  EXPECT_EQ(r.plan.reached_count, plan.reached_count);
  EXPECT_EQ(r.relatch_steps, 0);
}

TEST(ClockRecovery, DownstreamTilesRelatchAfterATileDeath) {
  const TileGrid grid(6, 6);
  FaultMap fm(grid);
  const std::vector<TileCoord> gens = {{0, 0}};
  const clock::ForwardingPlan plan = clock::simulate_forwarding(fm, gens);

  // Kill an interior tile: its downstream subtree loses the clock but the
  // healthy region stays connected, so everyone re-latches.
  fm.set_faulty({2, 2});
  const clock::ReclockReport r = clock::reselect_after_faults(plan, fm, gens);
  EXPECT_EQ(r.plan.reached_count, grid.tile_count() - 1);
  EXPECT_EQ(r.relatched.size(), r.invalidated.size());
  EXPECT_TRUE(r.newly_orphaned.empty());
  EXPECT_TRUE(clock::reachability_matches_bfs(fm, gens, r.plan));
}

TEST(ClockRecovery, BoxedInTileIsNewlyOrphaned) {
  const TileGrid grid(5, 5);
  FaultMap fm(grid);
  const std::vector<TileCoord> gens = {{0, 0}};
  const clock::ForwardingPlan plan = clock::simulate_forwarding(fm, gens);

  // Kill all four neighbours of (3,3): the tile is healthy but no
  // toggling clock can ever reach it again (Fig. 4's yellow tile, at
  // runtime).  The same kills box in the (4,4) corner, whose only two
  // neighbours are among them — two orphans, in linear-index order.
  for (const TileCoord n : grid.neighbors({3, 3})) fm.set_faulty(n);
  const clock::ReclockReport r = clock::reselect_after_faults(plan, fm, gens);
  ASSERT_EQ(r.newly_orphaned.size(), 2u);
  EXPECT_EQ(r.newly_orphaned[0], (TileCoord{3, 3}));
  EXPECT_EQ(r.newly_orphaned[1], (TileCoord{4, 4}));
  EXPECT_FALSE(r.plan.tiles[grid.index_of({3, 3})].reached);
  EXPECT_TRUE(clock::reachability_matches_bfs(fm, gens, r.plan));
}

TEST(ClockRecovery, LosingTheOnlyGeneratorOrphansEveryTile) {
  const TileGrid grid(4, 4);
  const FaultMap fm(grid);
  const std::vector<TileCoord> gens = {{0, 0}};
  const clock::ForwardingPlan plan = clock::simulate_forwarding(fm, gens);
  // ClockGenLoss: the tile is alive but silent, so the survivor list is
  // empty while the fault map is unchanged.
  const clock::ReclockReport r = clock::reselect_after_faults(plan, fm, {});
  EXPECT_EQ(r.surviving_generator_count, 0u);
  EXPECT_EQ(r.invalidated.size(), grid.tile_count());
  EXPECT_EQ(r.newly_orphaned.size(), grid.tile_count());
  EXPECT_EQ(r.plan.reached_count, 0u);
}

TEST(ClockRecovery, SecondGeneratorTakesOverAfterTheFirstDies) {
  const TileGrid grid(6, 6);
  FaultMap fm(grid);
  const std::vector<TileCoord> gens = {{0, 0}, {5, 5}};
  const clock::ForwardingPlan plan = clock::simulate_forwarding(fm, gens);

  fm.set_faulty({0, 0});  // the first generator tile dies outright
  const std::vector<TileCoord> survivors = {{5, 5}};
  const clock::ReclockReport r =
      clock::reselect_after_faults(plan, fm, survivors);
  EXPECT_EQ(r.surviving_generator_count, 1u);
  EXPECT_EQ(r.plan.reached_count, grid.tile_count() - 1);
  EXPECT_TRUE(r.newly_orphaned.empty());
  EXPECT_GE(r.relatch_steps, 1);
  EXPECT_TRUE(clock::reachability_matches_bfs(fm, survivors, r.plan));
}

// ----------------------------------------------------------- PDN brownout

TEST(PdnDegradation, NoBrownoutsMeansNoCollateral) {
  const SystemConfig cfg = SystemConfig::reduced(8, 8);
  const PdnDegradationReport r = resolve_after_brownouts(cfg, {});
  EXPECT_TRUE(r.browned_out.empty());
  EXPECT_TRUE(r.undervolted.empty());
  EXPECT_TRUE(r.unusable().empty());
  EXPECT_DOUBLE_EQ(r.min_supply_v, r.baseline.min_supply_v);
}

TEST(PdnDegradation, BrownoutDeepensTheDroopAndMarksTheTile) {
  const SystemConfig cfg = SystemConfig::reduced(8, 8);
  const TileCoord struck{4, 4};
  PdnDegradationOptions opt;
  opt.brownout_load_factor = 2.0;
  const PdnDegradationReport r =
      resolve_after_brownouts(cfg, {struck, struck}, opt);  // deduped
  ASSERT_EQ(r.browned_out.size(), 1u);
  EXPECT_EQ(r.browned_out[0], struck);
  // Extra plane current can only deepen the droop.
  EXPECT_LE(r.min_supply_v, r.baseline.min_supply_v);
  const auto unusable = r.unusable();
  EXPECT_TRUE(std::find(unusable.begin(), unusable.end(), struck) !=
              unusable.end());
  // Collateral undervoltage never re-reports the struck tile.
  EXPECT_TRUE(std::find(r.undervolted.begin(), r.undervolted.end(), struck) ==
              r.undervolted.end());
}

// --------------------------------------------------------------- campaign

CampaignOptions small_campaign(std::uint64_t seed) {
  CampaignOptions o;
  o.config = SystemConfig::reduced(6, 6);
  o.seed = seed;
  o.run_cycles = 1200;
  o.fault_horizon = 800;
  o.injection_rate = 0.02;
  o.drain_cycles = 50000;
  o.trajectory_sample_period = 128;
  return o;
}

void expect_identical(const DegradationReport& a, const DegradationReport& b) {
  ASSERT_EQ(a.trajectory.size(), b.trajectory.size());
  EXPECT_TRUE(a.trajectory == b.trajectory);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].applied_cycle, b.events[i].applied_cycle);
    EXPECT_EQ(a.events[i].notice.kind, b.events[i].notice.kind);
    EXPECT_EQ(a.events[i].notice.tile, b.events[i].notice.tile);
    EXPECT_EQ(a.events[i].usable_after, b.events[i].usable_after);
    EXPECT_EQ(a.events[i].recovery_cycles, b.events[i].recovery_cycles);
    EXPECT_EQ(a.events[i].recovered, b.events[i].recovered);
    EXPECT_EQ(a.events[i].clock_relatched, b.events[i].clock_relatched);
    EXPECT_EQ(a.events[i].clock_orphaned, b.events[i].clock_orphaned);
    EXPECT_EQ(a.events[i].pdn_undervolted, b.events[i].pdn_undervolted);
  }
  EXPECT_EQ(a.noc_stats.issued, b.noc_stats.issued);
  EXPECT_EQ(a.noc_stats.completed, b.noc_stats.completed);
  EXPECT_EQ(a.noc_stats.timeouts, b.noc_stats.timeouts);
  EXPECT_EQ(a.noc_stats.retries, b.noc_stats.retries);
  EXPECT_EQ(a.noc_stats.lost, b.noc_stats.lost);
  EXPECT_EQ(a.noc_stats.latency_sum, b.noc_stats.latency_sum);
  EXPECT_EQ(a.mesh_dropped, b.mesh_dropped);
  EXPECT_EQ(a.initial_usable, b.initial_usable);
  EXPECT_EQ(a.final_usable, b.final_usable);
  EXPECT_DOUBLE_EQ(a.pair_reachability_pct, b.pair_reachability_pct);
  EXPECT_EQ(a.single_system_image, b.single_system_image);
  EXPECT_EQ(a.drained, b.drained);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
}

TEST(DegradationCampaign, SeededRunIsBitIdentical) {
  const DegradationCampaign campaign(small_campaign(42));
  const DegradationReport a = campaign.run();
  const DegradationReport b = campaign.run();
  expect_identical(a, b);
  EXPECT_EQ(a.events.size(), ScheduleMix{}.total());
}

TEST(DegradationCampaign, DifferentSeedsDiverge) {
  const DegradationReport a = DegradationCampaign(small_campaign(1)).run();
  const DegradationReport b = DegradationCampaign(small_campaign(2)).run();
  bool differs = a.noc_stats.issued != b.noc_stats.issued ||
                 a.events.size() != b.events.size() ||
                 a.final_usable != b.final_usable;
  for (std::size_t i = 0; !differs && i < a.events.size(); ++i)
    differs = a.events[i].applied_cycle != b.events[i].applied_cycle ||
              a.events[i].notice.tile != b.events[i].notice.tile;
  EXPECT_TRUE(differs);
}

TEST(DegradationCampaign, FiveTileKillBurstRecoversTheFabric) {
  // The acceptance scenario: five tile deaths land mid-traffic on an 8x8
  // wafer.  The NoC must recover (almost) every surviving pair via the
  // dual-network/relay fallback, fully drain (zero deadlocks), and account
  // for every timeout and retry.
  CampaignOptions o;
  o.config = SystemConfig::reduced(8, 8);
  o.seed = 7;
  o.run_cycles = 2500;
  o.injection_rate = 0.02;
  o.drain_cycles = 100000;
  FaultSchedule s;
  s.add({300, RuntimeFaultKind::TileDeath, {2, 2}, Direction::North});
  s.add({600, RuntimeFaultKind::TileDeath, {5, 3}, Direction::North});
  s.add({900, RuntimeFaultKind::TileDeath, {3, 5}, Direction::North});
  s.add({1200, RuntimeFaultKind::TileDeath, {6, 6}, Direction::North});
  s.add({1500, RuntimeFaultKind::TileDeath, {1, 4}, Direction::North});
  o.schedule = s;

  const DegradationReport r = DegradationCampaign(o).run();

  ASSERT_EQ(r.events.size(), 5u);
  EXPECT_EQ(r.initial_usable, 64u);
  EXPECT_LE(r.final_usable, 59u);

  // Zero deadlocks: every transaction in flight at any of the five bursts
  // completed or was accounted lost, and nothing is stuck in the fabric.
  EXPECT_TRUE(r.drained);
  const noc::NocStats& st = r.noc_stats;
  EXPECT_EQ(st.issued, st.completed + st.lost);
  EXPECT_EQ(st.timeouts, st.retries + st.lost);
  EXPECT_EQ(st.replans, 5u);
  EXPECT_GT(st.issued, 0u);
  // The burst struck live traffic and the fabric recovered it.
  EXPECT_GT(st.timeouts, 0u);
  EXPECT_GE(st.retries, 1u);
  EXPECT_LT(static_cast<double>(st.lost),
            0.02 * static_cast<double>(st.issued));

  // >= 98 % of surviving ordered pairs stay routable (here: all of them,
  // since an 8x8 grid minus five scattered tiles stays fully connected).
  EXPECT_GE(r.pair_reachability_pct, 98.0);
  EXPECT_TRUE(r.single_system_image);

  // Each event resolved its in-flight cohort.
  for (const EventOutcome& e : r.events) {
    EXPECT_TRUE(e.recovered);
    EXPECT_EQ(e.notice.kind, RuntimeFaultKind::TileDeath);
  }

  // The usable-tile trajectory never rises.
  for (std::size_t i = 1; i < r.trajectory.size(); ++i)
    EXPECT_LE(r.trajectory[i].usable_tiles, r.trajectory[i - 1].usable_tiles);

  // Post-burst re-bring-up reaches every surviving tile.
  ASSERT_TRUE(r.rebringup.has_value());
  EXPECT_EQ(r.rebringup->usable_tiles, r.final_usable);
  EXPECT_TRUE(r.rebringup->single_system_image);
}

TEST(DegradationCampaign, MonteCarloSummaryAggregates) {
  CampaignOptions o = small_campaign(5);
  o.run_cycles = 600;
  o.fault_horizon = 400;
  const std::vector<DegradationReport> reports =
      DegradationCampaign(o).run_trials(3);
  ASSERT_EQ(reports.size(), 3u);
  const CampaignSummary s = summarize(reports);
  EXPECT_EQ(s.trials, 3);
  EXPECT_GT(s.mean_final_usable_fraction, 0.0);
  EXPECT_LE(s.mean_final_usable_fraction, 1.0);
  EXPECT_GE(s.mean_pair_reachability_pct, 0.0);
  EXPECT_LE(s.mean_pair_reachability_pct, 100.0);
  EXPECT_GE(s.fully_drained, 0);
  EXPECT_LE(s.fully_drained, 3);
}

TEST(DegradationCampaign, BerMapSurvivesClockReselectionOrdering) {
  // Ordering regression: the voltage-aware BER map (plus the layered
  // scheduled degradations) must be re-applied after clock re-selection
  // and apply_fault_state — not just after the PDN re-solve.  A link's
  // eye collapses at cycle 200; a distant tile dies at cycle 230, which
  // runs the re-latch wave and pushes fresh fault state into the meshes.
  // The degraded link has seen almost no traffic by then, so its eventual
  // retirement can only happen if the rebuilt map still carries the
  // degradation after the tile-death event settles.
  CampaignOptions o;
  o.config = SystemConfig::reduced(6, 6);
  o.seed = 9;
  o.run_cycles = 4000;
  o.injection_rate = 0.04;
  o.drain_cycles = 100000;
  o.noc.mesh.integrity.enabled = true;
  FaultSchedule s;
  FaultEvent ber;
  ber.cycle = 200;
  ber.kind = RuntimeFaultKind::LinkBerDegradation;
  ber.tile = {2, 3};
  ber.link = Direction::East;
  ber.magnitude = 8e-3;
  s.add(ber);
  s.add({230, RuntimeFaultKind::TileDeath, {5, 5}, Direction::North});
  o.schedule = s;

  const DegradationCampaign campaign(o);
  const DegradationReport r = campaign.run();
  ASSERT_EQ(r.events.size(), 2u);
  // The degraded link still accumulated errors and was retired — and the
  // retirement postdates the tile death, so the map survived the rebind.
  ASSERT_FALSE(r.retirements.empty());
  EXPECT_EQ(r.retirements[0].tile, (TileCoord{2, 3}));
  EXPECT_EQ(r.retirements[0].dir, Direction::East);
  EXPECT_GT(r.retirements[0].cycle, 230u);
  EXPECT_TRUE(r.drained);

  // And the whole mixed schedule stays bit-identical across runs (the
  // per-trial scratch map reuse must not leak state between runs).
  const DegradationReport r2 = campaign.run();
  ckpt::Writer wa, wb;
  save_report(wa, r);
  save_report(wb, r2);
  EXPECT_EQ(wa.bytes(), wb.bytes());
}

TEST(DegradationCampaign, CoupledEpochResolveIsDeterministicAndDiverges) {
  // Coupled trials (cosim_epoch_cycles > 0) re-solve the planes from
  // measured NoC activity every epoch.  Heavier per-tile power makes the
  // coupling visible on a 6x6 wafer within a short run.
  CampaignOptions o = small_campaign(11);
  o.config.tile_peak_power_w *= 6.0;
  o.injection_rate = 0.04;
  o.noc.mesh.integrity.enabled = true;
  o.noc.mesh.integrity.ber.floor_ber = 1e-6;
  o.noc.mesh.integrity.ber.volts_per_decade = 0.01;
  // Put the BER knee just above this wafer's regulated band (~1.14-1.15 V
  // at line_regulation 0.1) so the line-regulation residue of any supply
  // difference shows up on the wire instead of clamping to the floor on a
  // small, lightly-drooped wafer.
  o.noc.mesh.integrity.ber.nominal_v = 1.16;
  o.pdn.pdn.ldo.line_regulation = 0.1;
  o.cosim_epoch_cycles = 64;

  const DegradationCampaign coupled(o);
  const DegradationReport a = coupled.run();
  const DegradationReport b = coupled.run();
  expect_identical(a, b);
  ckpt::Writer wa, wb;
  save_report(wa, a);
  save_report(wb, b);
  EXPECT_EQ(wa.bytes(), wb.bytes());
  EXPECT_TRUE(a.drained);

  // The coupling is a real behavioural change: the same seed without the
  // epoch re-solve produces a different report...
  CampaignOptions so = o;
  so.cosim_epoch_cycles = 0;
  const DegradationCampaign standalone(so);
  const DegradationReport c = standalone.run();
  ckpt::Writer wc;
  save_report(wc, c);
  EXPECT_NE(wa.bytes(), wc.bytes());
  // ...and a different campaign identity, so a coupled checkpoint can
  // never silently resume a static campaign (or vice versa).
  EXPECT_NE(coupled.options_fingerprint(), standalone.options_fingerprint());
}

}  // namespace
}  // namespace wsp::resilience
