// Paper-claims regression suite (CTest label: paper).
//
// Golden assertions tying the model to the headline numbers of
// "Designing a 2048-Chiplet, 14336-Core Waferscale Processor" (DAC'21),
// as tabulated in EXPERIMENTS.md.  Each test states the paper value, the
// value this codebase reproduces, and the tolerance with a rationale.
// Tolerances are deliberately asymmetric in places: the *model-vs-model*
// bound is tight (these are deterministic solves — a drift means a code
// change altered the physics), while the *model-vs-paper* bound is loose
// (the paper gives rounded plot-derived values).
//
// Covered claims:
//   - Fig. 2 / Sec. III-B: edge-2.5 V supply droops to ~1.4 V at wafer
//     center under full activity; ~290 A total supply current.
//   - Fig. 7: protocol + relaying cost under faults — all traffic still
//     completes, relayed share grows with fault count (~11% at 20 faults).
//   - Table 1: 150 um^2 I/O cell, 2020 I/Os per compute chiplet
//     (~0.30 mm^2), ~15,100 mm^2 total wafer area.
//   - Fig. 9/10: 12.88 Gbit memory load takes ~2.51 h on one 10 MHz JTAG
//     chain, 32 chains give exactly 32x, broadcast gives 14x.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "wsp/common/config.hpp"
#include "wsp/common/fault_map.hpp"
#include "wsp/common/geometry.hpp"
#include "wsp/common/rng.hpp"
#include "wsp/io/io_cell.hpp"
#include "wsp/noc/noc_system.hpp"
#include "wsp/noc/traffic.hpp"
#include "wsp/pdn/wafer_pdn.hpp"
#include "wsp/testinfra/test_time.hpp"

namespace wsp {
namespace {

// ------------------------------------------------------- Fig. 2: PDN droop

class PdnDroopClaims : public ::testing::Test {
 protected:
  // One full-wafer solve shared by the droop assertions (the uniform
  // solve at activity 1.0 is the paper's worst-case operating point).
  static void SetUpTestSuite() {
    config_ = new SystemConfig(SystemConfig::paper_prototype());
    pdn_ = new pdn::WaferPdn(*config_, {});
    report_ = new pdn::PdnReport(pdn_->solve_uniform(1.0));
  }
  static void TearDownTestSuite() {
    delete report_;
    delete pdn_;
    delete config_;
    report_ = nullptr;
    pdn_ = nullptr;
    config_ = nullptr;
  }

  static SystemConfig* config_;
  static pdn::WaferPdn* pdn_;
  static pdn::PdnReport* report_;
};

SystemConfig* PdnDroopClaims::config_ = nullptr;
pdn::WaferPdn* PdnDroopClaims::pdn_ = nullptr;
pdn::PdnReport* PdnDroopClaims::report_ = nullptr;

TEST_F(PdnDroopClaims, EdgeVoltageMatchesSupply) {
  // Paper: wafer edge is held at 2.5 V by the off-wafer supply.  Model
  // reproduces 2.498 V (first plane node sits behind one mesh segment).
  // Tight 1% bound vs the configured supply.
  EXPECT_NEAR(report_->max_supply_v, config_->edge_supply_voltage_v,
              0.01 * config_->edge_supply_voltage_v);
}

TEST_F(PdnDroopClaims, CenterDroopsToRegulationFloor) {
  // Paper (Fig. 2): center of the wafer droops to ~1.4 V, which is why
  // every tile carries an LDO and the chiplets run off a regulated rail.
  // Model reproduces 1.456 V; accept 1.35..1.55 V (plot-derived paper
  // value is one significant digit).
  EXPECT_GE(report_->min_supply_v, 1.35);
  EXPECT_LE(report_->min_supply_v, 1.55);
  // And the droop must still clear the configured regulation floor —
  // zero tiles out of regulation at full activity.
  EXPECT_GE(report_->min_supply_v, config_->min_center_supply_v);
  EXPECT_EQ(report_->tiles_out_of_regulation, 0);
}

TEST_F(PdnDroopClaims, TotalSupplyCurrentNearPaperValue) {
  // Paper (Sec. III-B): ~290 A drawn from the edge supply at full
  // activity.  Model reproduces 296.7 A; 5% bound covers the paper's
  // rounding and our slightly different per-tile power split.
  EXPECT_NEAR(report_->total_supply_current_a, 290.0, 0.05 * 290.0);
}

TEST_F(PdnDroopClaims, MidlineProfileDroopsMonotonicallyTowardCenter) {
  // The droop is spatial: walking the horizontal midline from the edge
  // to the center, plane voltage must decrease monotonically (within a
  // solver-tolerance epsilon), then rise again symmetrically.
  const auto profile =
      pdn::WaferPdn::midline_profile(*report_, config_->grid());
  ASSERT_GE(profile.size(), 8u);
  const std::size_t mid = profile.size() / 2;
  constexpr double kEps = 1e-6;
  for (std::size_t i = 0; i + 1 <= mid && i + 1 < profile.size(); ++i)
    EXPECT_LE(profile[i + 1], profile[i] + kEps) << "at midline index " << i;
  EXPECT_NEAR(profile.front(), report_->max_supply_v, 0.05);
  EXPECT_NEAR(*std::min_element(profile.begin(), profile.end()),
              report_->min_supply_v, 0.05);
}

TEST_F(PdnDroopClaims, Fig2HoldsUnderMultigridSolver) {
  // The Fig. 2 claims are about the wafer, not the solver: re-running the
  // worst-case operating point with the multigrid method must reproduce
  // the same droop profile to within solver tolerance.
  pdn::WaferPdnOptions opt;
  opt.solver.method = pdn::SolverMethod::Multigrid;
  pdn::WaferPdn mg_pdn(*config_, opt);
  const pdn::PdnReport mg = mg_pdn.solve_uniform(1.0);
  ASSERT_TRUE(mg.solver_converged);
  EXPECT_NEAR(mg.max_supply_v, report_->max_supply_v, 1e-5);
  EXPECT_NEAR(mg.min_supply_v, report_->min_supply_v, 1e-5);
  EXPECT_NEAR(mg.total_supply_current_a, report_->total_supply_current_a,
              1e-2);
  EXPECT_EQ(mg.tiles_out_of_regulation, 0);
}

TEST_F(PdnDroopClaims, LowerActivityRaisesCenterVoltage) {
  // Sanity on the IR-drop physics: quartering the activity factor must
  // raise the center voltage substantially (model: ~1.46 V -> ~2.24 V).
  const pdn::PdnReport quarter = pdn_->solve_uniform(0.25);
  EXPECT_GT(quarter.min_supply_v, report_->min_supply_v + 0.3);
  EXPECT_LE(quarter.max_supply_v, config_->edge_supply_voltage_v + 1e-9);
}

// --------------------------------------- Fig. 7: relaying cost under faults

TEST(Fig7RelayingClaims, FaultsAddRelayingButEverythingStillCompletes) {
  // Exact recipe of bench_noc_traffic's Fig. 7 table: 32x32 wafer,
  // fault maps of growing size from one seeded stream, fixed traffic
  // seed, injection 0.002, 500 cycles.  Paper claim: the interconnect
  // tolerates faulty tiles by relaying around them at a modest protocol
  // cost; nothing becomes unreachable.
  Rng seed_rng(77);
  std::uint64_t prev_relayed = 0;
  for (const std::size_t n : {0u, 2u, 5u, 10u, 20u}) {
    const FaultMap faults =
        FaultMap::random_with_count(TileGrid(32, 32), n, seed_rng);
    noc::NocSystem noc{faults};
    Rng rng(3);
    noc::TrafficConfig cfg;
    cfg.injection_rate = 0.002;
    const noc::TrafficReport r = noc::run_traffic(noc, cfg, 500, rng);

    // Every issued transaction completes; none are unreachable.
    EXPECT_EQ(r.completed, r.issued) << "faults=" << n;
    EXPECT_EQ(r.unreachable, 0u) << "faults=" << n;
    EXPECT_GT(r.issued, 0u) << "faults=" << n;

    const std::uint64_t relayed = noc.stats().relayed;
    if (n == 0) {
      // A fault-free wafer never relays.
      EXPECT_EQ(relayed, 0u);
    } else {
      EXPECT_GT(relayed, 0u) << "faults=" << n;
    }
    // Relaying grows (weakly) with fault count under this fixed seed.
    EXPECT_GE(relayed, prev_relayed) << "faults=" << n;
    prev_relayed = relayed;

    if (n == 20) {
      // Golden point: at 20 faulty tiles ~11% of completed transactions
      // needed relaying (model: 109 / 1006).  Accept 5..20% — the share
      // is seed-dependent but its magnitude is the paper's claim: a
      // minority protocol cost, not a cliff.
      const double share =
          static_cast<double>(relayed) / static_cast<double>(r.completed);
      EXPECT_GE(share, 0.05);
      EXPECT_LE(share, 0.20);
    }
  }
}

// ----------------------------------------------------- Table 1: I/O + area

TEST(Table1AreaClaims, IoCellAndPerChipletArea) {
  const SystemConfig cfg = SystemConfig::paper_prototype();
  // Paper (Table 1): 150 um^2 per I/O cell.
  EXPECT_DOUBLE_EQ(cfg.io_cell_area_m2, 150e-12);
  // Paper: 2020 I/Os per compute chiplet -> ~0.30 mm^2 of I/O area.
  EXPECT_EQ(cfg.ios_per_compute_chiplet, 2020);
  const io::IoCellSpec cell = io::IoCellSpec::from_config(cfg);
  const double compute_io_mm2 =
      cell.total_area_m2(cfg.ios_per_compute_chiplet) * 1e6;
  EXPECT_NEAR(compute_io_mm2, 0.303, 0.003);  // 2020 * 150 um^2 exactly
}

TEST(Table1AreaClaims, TotalWaferAreaNearPaperValue) {
  // Paper (Table 1): ~15,100 mm^2 total.  The model's tiling comes out
  // at 15,225 mm^2 (+0.8%) because we pack whole tiles; 2% bound.
  const SystemConfig cfg = SystemConfig::paper_prototype();
  const double total_mm2 = cfg.total_area_m2() * 1e6;
  EXPECT_NEAR(total_mm2, 15100.0, 0.02 * 15100.0);
}

// ---------------------------------------- Fig. 9/10: test-time scaling

TEST(TestTimeClaims, SingleChainLoadTimeMatchesPaper) {
  // Paper (Fig. 9): loading all on-wafer memory over one 10 MHz JTAG
  // chain takes ~2.51 hours (12.88 Gbit at ~7 TCK per payload bit).
  const SystemConfig cfg = SystemConfig::paper_prototype();
  const testinfra::LoadTimeReport one =
      testinfra::memory_load_time(cfg, /*chains=*/1, /*broadcast=*/false);
  EXPECT_NEAR(one.hours(), 2.51, 0.02 * 2.51);
  // The payload itself: ~12.88 Gbit of memory image.
  EXPECT_NEAR(static_cast<double>(one.total_payload_bits), 12.88e9,
              0.02 * 12.88e9);
}

TEST(TestTimeClaims, ChainsScaleLoadTimeLinearly) {
  // Paper (Fig. 10): independent chains divide load time exactly — 32
  // chains bring 2.51 h down to ~4.7 minutes.
  const SystemConfig cfg = SystemConfig::paper_prototype();
  const testinfra::LoadTimeReport one =
      testinfra::memory_load_time(cfg, 1, false);
  const testinfra::LoadTimeReport many =
      testinfra::memory_load_time(cfg, 32, false);
  EXPECT_NEAR(one.seconds / many.seconds, 32.0, 1e-9);
  EXPECT_NEAR(many.minutes(), 4.7, 0.1);
}

TEST(TestTimeClaims, BroadcastSpeedupIsFourteenX) {
  // Paper (Sec. V): broadcasting the common code image to the 14 cores
  // of a tile makes one DAP visible instead of fourteen — a 14x shift
  // reduction for the program image.
  const SystemConfig cfg = SystemConfig::paper_prototype();
  EXPECT_NEAR(testinfra::broadcast_speedup(cfg), 14.0, 1e-9);
  // For the full memory load the gain is diluted by the shared banks,
  // which still load in full: per tile, plain shifts 14 x 64 KB private
  // + 5 x 128 KB shared = 1536 KB, broadcast shifts 1 x 64 KB + 640 KB
  // = 704 KB, so the end-to-end ratio is exactly 1536/704.
  const testinfra::LoadTimeReport bcast =
      testinfra::memory_load_time(cfg, 1, /*broadcast=*/true);
  const testinfra::LoadTimeReport plain =
      testinfra::memory_load_time(cfg, 1, false);
  EXPECT_NEAR(plain.seconds / bcast.seconds, 1536.0 / 704.0, 1e-9);
}

}  // namespace
}  // namespace wsp
