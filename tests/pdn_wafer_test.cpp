// Whole-wafer PDN tests: the Fig. 2 droop profile and the Sec. III
// strategy comparison.
#include <gtest/gtest.h>

#include <limits>

#include "wsp/common/error.hpp"
#include "wsp/pdn/strategy.hpp"
#include "wsp/pdn/wafer_pdn.hpp"

namespace wsp::pdn {
namespace {

SystemConfig full() { return SystemConfig::paper_prototype(); }

TEST(WaferPdn, Fig2_EdgeAndCenterVoltages) {
  // The headline Fig. 2 numbers: 2.5 V at the edge, ~1.4 V at the center
  // at peak draw.
  WaferPdn pdn(full(), {});
  const PdnReport r = pdn.solve_uniform(1.0);
  ASSERT_TRUE(r.solver_converged);
  EXPECT_GT(r.max_supply_v, 2.3);   // edge tiles sit just below 2.5 V
  EXPECT_LE(r.max_supply_v, 2.5);
  EXPECT_NEAR(r.min_supply_v, 1.4, 0.1);  // center of the wafer
}

TEST(WaferPdn, Fig2_TotalCurrentMatchesTableI) {
  WaferPdn pdn(full(), {});
  const PdnReport r = pdn.solve_uniform(1.0);
  // ~290-296 A of pass-through current (Sec. III "about 290 A").
  EXPECT_NEAR(r.total_supply_current_a, 296.7, 3.0);
}

TEST(WaferPdn, Fig2_ProfileDecreasesTowardCenter) {
  WaferPdn pdn(full(), {});
  const PdnReport r = pdn.solve_uniform(1.0);
  const auto rings = WaferPdn::ring_profile(r, full().grid());
  ASSERT_GE(rings.size(), 16u);
  for (std::size_t i = 1; i < rings.size(); ++i)
    EXPECT_LT(rings[i], rings[i - 1]) << "ring " << i;
}

TEST(WaferPdn, Fig2_MidlineIsSymmetricAndValleyShaped) {
  WaferPdn pdn(full(), {});
  const PdnReport r = pdn.solve_uniform(1.0);
  const auto line = WaferPdn::midline_profile(r, full().grid());
  ASSERT_EQ(line.size(), 32u);
  for (std::size_t i = 0; i < 16; ++i)
    EXPECT_NEAR(line[i], line[31 - i], 5e-3) << i;
  // Valley: strictly decreasing to the middle.
  for (std::size_t i = 0; i + 1 < 16; ++i) EXPECT_GT(line[i], line[i + 1]);
}

TEST(WaferPdn, EveryTileStaysInRegulationAtPeak) {
  // The design goal: the wide-input LDO keeps all 1024 tiles regulated at
  // peak draw despite the droop.
  WaferPdn pdn(full(), {});
  const PdnReport r = pdn.solve_uniform(1.0);
  EXPECT_EQ(r.tiles_out_of_regulation, 0);
  for (const TilePower& tp : r.tiles) {
    EXPECT_GE(tp.regulated_v, 1.0);
    EXPECT_LE(tp.regulated_v, 1.2);
  }
}

TEST(WaferPdn, LowActivityDroopsLess) {
  WaferPdn pdn(full(), {});
  const PdnReport idle = pdn.solve_uniform(0.1);
  WaferPdn pdn2(full(), {});
  const PdnReport peak = pdn2.solve_uniform(1.0);
  EXPECT_GT(idle.min_supply_v, peak.min_supply_v);
  EXPECT_LT(idle.total_supply_current_a, peak.total_supply_current_a);
}

TEST(WaferPdn, EnergyBalanceCloses) {
  // Input power = delivered + plane loss + LDO loss (within solver tol).
  WaferPdn pdn(full(), {});
  const PdnReport r = pdn.solve_uniform(1.0);
  const double accounted =
      r.delivered_power_w + r.plane_loss_w + r.ldo_loss_w;
  EXPECT_NEAR(accounted / r.total_input_power_w, 1.0, 0.02);
}

TEST(WaferPdn, FewerPoweredEdgesDroopMore) {
  WaferPdnOptions all_edges;
  WaferPdnOptions two_edges;
  two_edges.powered_edges = {false, true, false, true};  // E + W only
  WaferPdn pdn4(full(), all_edges);
  WaferPdn pdn2(full(), two_edges);
  const double min4 = pdn4.solve_uniform(1.0).min_supply_v;
  const double min2 = pdn2.solve_uniform(1.0).min_supply_v;
  EXPECT_LT(min2, min4);
}

TEST(WaferPdn, ConstantPowerLoadDroopsLessAtHighPlaneVoltage) {
  // Ablation: a hypothetical power-conserving regulator (buck-like) draws
  // I = P / V_node.  Because the plane voltage (1.4-2.5 V) sits far above
  // the logic voltage, such a load pulls *less* current than the LDO's
  // pass-through I = P / V_ff, so the droop is shallower.  (The LDO's
  // constant-current behaviour is exactly why the full ~290 A crosses the
  // planes, Sec. III.)
  WaferPdnOptions cc;
  WaferPdnOptions cp;
  cp.load_model = LoadModel::ConstantPower;
  const double min_cc = WaferPdn(full(), cc).solve_uniform(1.0).min_supply_v;
  const double min_cp = WaferPdn(full(), cp).solve_uniform(1.0).min_supply_v;
  EXPECT_GT(min_cp, min_cc);
  EXPECT_LT(min_cp, full().edge_supply_voltage_v);
}

TEST(WaferPdn, RefinementIsConsistent) {
  WaferPdnOptions coarse;
  coarse.nodes_per_tile = 1;
  WaferPdnOptions fine;
  fine.nodes_per_tile = 3;
  const double min_c =
      WaferPdn(full(), coarse).solve_uniform(1.0).min_supply_v;
  const double min_f = WaferPdn(full(), fine).solve_uniform(1.0).min_supply_v;
  EXPECT_NEAR(min_c, min_f, 0.05);
}

TEST(WaferPdn, PerTilePowerVectorSupported) {
  const SystemConfig cfg = SystemConfig::reduced(8, 8);
  WaferPdn pdn(cfg, {});
  std::vector<double> power(64, 0.0);
  power[cfg.grid().index_of({4, 4})] = cfg.tile_peak_power_w;
  const PdnReport r = pdn.solve(power);
  ASSERT_TRUE(r.solver_converged);
  // Only one tile draws: droop is tiny and deepest at that tile.
  const double v_hot = r.tiles[cfg.grid().index_of({4, 4})].supply_v;
  EXPECT_EQ(r.min_supply_v, v_hot);
  EXPECT_GT(v_hot, 2.45);
  EXPECT_THROW(pdn.solve(std::vector<double>(3, 0.0)), Error);
}

TEST(WaferPdn, RejectsBadOptions) {
  WaferPdnOptions bad;
  bad.nodes_per_tile = 0;
  EXPECT_THROW(WaferPdn(full(), bad), Error);
  bad = {};
  bad.plane_slotting_factor = 0.5;
  EXPECT_THROW(WaferPdn(full(), bad), Error);
  bad = {};
  bad.powered_edges = {false, false, false, false};
  EXPECT_THROW(WaferPdn(full(), bad), Error);
  WaferPdn ok(full(), {});
  EXPECT_THROW(ok.solve_uniform(1.5), Error);
}

// --------------------------------------------------------- Sec. III study

TEST(Strategy, BuckLowersPlaneCurrentRoughlyTenfold) {
  const StrategyComparison cmp = compare_strategies(full());
  // Paper: down-conversion "would lower the current delivered through the
  // power planes by ~12x" (the exact factor depends on the converter
  // efficiency asumption; the model lands at V_buck*eff/V_ff ~ 9).
  EXPECT_GT(cmp.plane_current_ratio, 7.0);
  EXPECT_LT(cmp.plane_current_ratio, 13.0);
}

TEST(Strategy, BuckPlaneLossIsQuadraticallySmaller) {
  const StrategyComparison cmp = compare_strategies(full());
  const double ratio = cmp.ldo.plane_loss_w / cmp.buck.plane_loss_w;
  EXPECT_NEAR(ratio, cmp.plane_current_ratio * cmp.plane_current_ratio,
              ratio * 0.05);
}

TEST(Strategy, BuckPaysAreaLdoPaysEfficiency) {
  const StrategyComparison cmp = compare_strategies(full());
  // The paper's trade-off: buck burns 25-30 % of the wafer area, the LDO
  // scheme none; buck delivers power more efficiently.
  EXPECT_GE(cmp.buck.area_overhead_fraction, 0.25);
  EXPECT_LE(cmp.buck.area_overhead_fraction, 0.30);
  EXPECT_EQ(cmp.ldo.area_overhead_fraction, 0.0);
  EXPECT_GT(cmp.buck.efficiency, cmp.ldo.efficiency);
  // The LDO scheme still delivers every watt the logic needs: the peak
  // 350 mW/tile is specified at the 1.21 V FF corner; at the regulated
  // ~1.1 V output the same pass-through current carries 350 * 1.1/1.21 mW.
  const double expected = 1024 * 0.350 * (1.1 / 1.21);
  EXPECT_NEAR(cmp.ldo.delivered_power_w, expected, expected * 0.05);
}

TEST(Strategy, BuckDroopIsNegligible) {
  const StrategyComparison cmp = compare_strategies(full());
  const double ldo_droop = 2.5 - cmp.ldo.min_tile_supply_v;
  const double buck_droop = 12.0 - cmp.buck.min_tile_supply_v;
  EXPECT_LT(buck_droop, ldo_droop / 5.0);
}

TEST(Strategy, SubKwSystemTotalPowerIsSane) {
  const StrategyComparison cmp = compare_strategies(full());
  // "this prototype is a sub-kW system".
  EXPECT_LT(cmp.ldo.input_power_w, 1000.0);
  EXPECT_GT(cmp.ldo.input_power_w, 400.0);
}


// ----------------------------------------------- precondition hardening

// Every rejected input names its violation with a stable message: these
// are load-bearing for callers that surface solver errors verbatim.
template <typename Fn>
std::string thrown_message(Fn&& fn) {
  try {
    fn();
  } catch (const Error& e) {
    return e.what();
  }
  return "(no wsp::Error thrown)";
}

TEST(WaferPdnPreconditions, SolveUniformRejectsNonFiniteActivity) {
  WaferPdn pdn(SystemConfig::reduced(4, 4), {});
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(thrown_message([&] { pdn.solve_uniform(nan); }),
            "activity must be finite");
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(thrown_message([&] { pdn.solve_uniform(inf); }),
            "activity must be finite");
}

TEST(WaferPdnPreconditions, SolveUniformRejectsOutOfRangeActivity) {
  WaferPdn pdn(SystemConfig::reduced(4, 4), {});
  EXPECT_EQ(thrown_message([&] { pdn.solve_uniform(-0.1); }),
            "activity must be in [0,1]");
  EXPECT_EQ(thrown_message([&] { pdn.solve_uniform(1.5); }),
            "activity must be in [0,1]");
}

TEST(WaferPdnPreconditions, SolveRejectsWrongLengthPowerMap) {
  WaferPdn pdn(SystemConfig::reduced(4, 4), {});
  EXPECT_EQ(thrown_message([&] { pdn.solve(std::vector<double>(3, 0.0)); }),
            "tile power vector size mismatch");
}

TEST(WaferPdnPreconditions, SolveRejectsNegativeOrNaNPower) {
  WaferPdn pdn(SystemConfig::reduced(4, 4), {});
  std::vector<double> power(16, 1.0);
  power[5] = -1.0;
  EXPECT_EQ(thrown_message([&] { pdn.solve(power); }),
            "tile power must be finite and non-negative");
  power[5] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(thrown_message([&] { pdn.solve(power); }),
            "tile power must be finite and non-negative");
}

TEST(WaferPdnPreconditions, SolveBatchValidatesEveryMap) {
  WaferPdn pdn(SystemConfig::reduced(4, 4), {});
  std::vector<std::vector<double>> maps(2, std::vector<double>(16, 1.0));
  maps[1][3] = -2.0;  // second map bad: the batch must still reject
  EXPECT_EQ(thrown_message([&] { pdn.solve_batch(maps); }),
            "tile power must be finite and non-negative");
  maps[1] = std::vector<double>(7, 1.0);
  EXPECT_EQ(thrown_message([&] { pdn.solve_batch(maps); }),
            "tile power vector size mismatch");
}

TEST(WaferPdnPreconditions, SolveBatchWarmValidatesSeeds) {
  WaferPdn pdn(SystemConfig::reduced(4, 4), {});
  std::vector<std::vector<double>> maps(2, std::vector<double>(16, 1.0));
  std::vector<std::vector<double>> seeds(1);
  EXPECT_EQ(thrown_message([&] { pdn.solve_batch_warm(maps, seeds); }),
            "warm-start seed count must match power maps");
  seeds.assign(2, std::vector<double>(3, 0.0));
  EXPECT_EQ(thrown_message([&] { pdn.solve_batch_warm(maps, seeds); }),
            "warm-start seed length must equal node_count()");
}

}  // namespace
}  // namespace wsp::pdn
