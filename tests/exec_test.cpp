// Tests for the wsp::exec parallel-execution substrate: chunk coverage,
// determinism of the static chunking, reductions, nesting, exception
// propagation, and shared-pool reconfiguration.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "wsp/exec/parallel_for.hpp"
#include "wsp/exec/thread_pool.hpp"

namespace wsp::exec {
namespace {

TEST(ThreadPool, RunsEveryChunkExactlyOnce) {
  for (const int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.thread_count(), std::max(threads, 1));
    std::vector<std::atomic<int>> hits(97);
    pool.run_chunks(hits.size(),
                    [&](std::size_t c) { hits[c].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ZeroChunksIsANoOp) {
  ThreadPool pool(4);
  bool ran = false;
  pool.run_chunks(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, BackToBackJobsDoNotInterfere) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.run_chunks(8, [&](std::size_t) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 8);
  }
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.run_chunks(16,
                               [](std::size_t c) {
                                 if (c == 7)
                                   throw std::runtime_error("chunk 7");
                               }),
               std::runtime_error);
  // The pool must still be usable after a failed job.
  std::atomic<int> count{0};
  pool.run_chunks(4, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 4);
}

TEST(ParallelFor, CoversRangeWithDisjointChunks) {
  ThreadPool pool(8);
  for (const std::size_t n : {0u, 1u, 5u, 63u, 64u, 65u, 1000u}) {
    std::vector<std::atomic<int>> hits(n);
    parallel_for(pool, n, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(ParallelFor, ChunkBoundariesDependOnlyOnRangeLength) {
  // The determinism contract: chunk boundaries are a pure function of n.
  for (const std::size_t n : {1u, 7u, 64u, 129u, 4096u}) {
    const std::size_t chunks = chunk_count_for(n);
    EXPECT_LE(chunks, kMaxChunks);
    std::size_t covered = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
      const auto [b, e] = chunk_bounds(n, chunks, c);
      EXPECT_EQ(b, covered);
      EXPECT_GT(e, b);
      covered = e;
    }
    EXPECT_EQ(covered, n);
  }
}

TEST(ParallelFor, MinGrainBoundsChunkSizeAndCollapsesSmallRanges) {
  // A grain never produces chunks smaller than itself (except the sole
  // chunk of a sub-grain range), and it remains a pure function of
  // (n, grain) — never the thread count.
  EXPECT_EQ(chunk_count_for(0, 256), 0u);
  EXPECT_EQ(chunk_count_for(1, 256), 1u);
  EXPECT_EQ(chunk_count_for(255, 256), 1u);  // below one grain: inline
  EXPECT_EQ(chunk_count_for(512, 256), 2u);
  EXPECT_EQ(chunk_count_for(2048, 256), 8u);
  EXPECT_EQ(chunk_count_for(1u << 20, 256), kMaxChunks);  // still capped
  for (const std::size_t n : {300u, 2048u, 10007u}) {
    const std::size_t chunks = chunk_count_for(n, 256);
    for (std::size_t c = 0; c < chunks; ++c) {
      const auto [b, e] = chunk_bounds(n, chunks, c);
      EXPECT_GE(e - b, std::size_t{256});
    }
  }
}

TEST(ParallelReduce, BitIdenticalAcrossThreadCounts) {
  // Sum of pseudo-random doubles: FP addition is order-sensitive, so this
  // only passes if the combination order is independent of thread count.
  const std::size_t n = 10007;
  std::vector<double> data(n);
  for (std::size_t i = 0; i < n; ++i)
    data[i] = 1e-3 * static_cast<double>((i * 2654435761u) % 1000003);

  auto sum_with = [&](int threads) {
    ThreadPool pool(threads);
    return parallel_reduce<double>(
        pool, n, 0.0,
        [&](std::size_t b, std::size_t e) {
          double s = 0.0;
          for (std::size_t i = b; i < e; ++i) s += data[i];
          return s;
        },
        [](double a, double b) { return a + b; });
  };

  const double serial = sum_with(1);
  EXPECT_EQ(serial, sum_with(2));
  EXPECT_EQ(serial, sum_with(8));
}

TEST(ParallelFor, NestedCallsRunInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64 * 16);
  parallel_for(pool, 64u, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      EXPECT_TRUE(ThreadPool::on_worker_thread());
      parallel_for(pool, 16u, [&](std::size_t ib, std::size_t ie) {
        for (std::size_t j = ib; j < ie; ++j)
          hits[i * 16 + j].fetch_add(1);
      });
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(SharedPool, ReconfiguresThreadCount) {
  set_shared_threads(3);
  EXPECT_EQ(shared_threads(), 3);
  EXPECT_EQ(shared_pool().thread_count(), 3);
  set_shared_threads(1);
  EXPECT_EQ(shared_pool().thread_count(), 1);
  set_shared_threads(0);  // back to environment default
  EXPECT_GE(shared_threads(), 1);
}

}  // namespace
}  // namespace wsp::exec
