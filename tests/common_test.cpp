// Unit and property tests for wsp/common: geometry, configuration
// (Table I derivations), fault maps and the deterministic RNG.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "wsp/common/config.hpp"
#include "wsp/common/error.hpp"
#include "wsp/common/fault_map.hpp"
#include "wsp/common/geometry.hpp"
#include "wsp/common/rng.hpp"
#include "wsp/common/units.hpp"

namespace wsp {
namespace {

// ---------------------------------------------------------------- geometry

TEST(Direction, OppositeIsInvolution) {
  for (Direction d : kAllDirections) {
    EXPECT_EQ(opposite(opposite(d)), d);
    EXPECT_NE(opposite(d), d);
  }
}

TEST(Direction, StepThenOppositeReturns) {
  const TileCoord c{5, 7};
  for (Direction d : kAllDirections)
    EXPECT_EQ(step(step(c, d), opposite(d)), c);
}

TEST(TileGrid, ContainsAndBounds) {
  const TileGrid grid(4, 3);
  EXPECT_TRUE(grid.contains({0, 0}));
  EXPECT_TRUE(grid.contains({3, 2}));
  EXPECT_FALSE(grid.contains({4, 0}));
  EXPECT_FALSE(grid.contains({0, 3}));
  EXPECT_FALSE(grid.contains({-1, 0}));
  EXPECT_EQ(grid.tile_count(), 12u);
}

TEST(TileGrid, IndexRoundTrip) {
  const TileGrid grid(7, 5);
  for (std::size_t i = 0; i < grid.tile_count(); ++i)
    EXPECT_EQ(grid.index_of(grid.coord_of(i)), i);
}

TEST(TileGrid, NeighborsAtCornerAndCenter) {
  const TileGrid grid(4, 4);
  EXPECT_EQ(grid.neighbors({0, 0}).size(), 2u);
  EXPECT_EQ(grid.neighbors({1, 0}).size(), 3u);
  EXPECT_EQ(grid.neighbors({1, 1}).size(), 4u);
  EXPECT_FALSE(grid.neighbor({0, 0}, Direction::West).has_value());
  EXPECT_EQ(grid.neighbor({0, 0}, Direction::East).value(), (TileCoord{1, 0}));
}

TEST(TileGrid, EdgeClassification) {
  const TileGrid grid(5, 5);
  int edge_count = 0;
  grid.for_each([&](TileCoord c) {
    if (grid.is_edge(c)) ++edge_count;
  });
  EXPECT_EQ(edge_count, 16);  // perimeter of a 5x5 array
}

TEST(TileGrid, DistanceToEdge) {
  const TileGrid grid(5, 5);
  EXPECT_EQ(grid.distance_to_edge({0, 0}), 0);
  EXPECT_EQ(grid.distance_to_edge({2, 2}), 2);
  EXPECT_EQ(grid.distance_to_edge({1, 2}), 1);
  EXPECT_THROW(grid.distance_to_edge({9, 9}), Error);
}

TEST(TileGrid, RejectsEmpty) {
  EXPECT_THROW(TileGrid(0, 4), Error);
  EXPECT_THROW(TileGrid(4, -1), Error);
}

TEST(PhysicalGeometry, TilePitchAndArea) {
  const SystemConfig cfg = SystemConfig::paper_prototype();
  const auto& g = cfg.geometry;
  EXPECT_NEAR(g.tile_pitch_x_m(), 3.25e-3, 1e-9);
  EXPECT_NEAR(g.tile_pitch_y_m(), 3.7e-3, 1e-9);
  // One tile's active silicon: 3.15x2.4 + 3.15x1.1 = 11.025 mm^2.
  EXPECT_NEAR(g.tile_active_area_m2(), 11.025e-6, 1e-10);
}

// ------------------------------------------------------------ Table I (cfg)

TEST(SystemConfig, PaperPrototypeValidates) {
  EXPECT_NO_THROW(SystemConfig::paper_prototype().validate());
}

TEST(SystemConfig, TableI_Counts) {
  const SystemConfig cfg = SystemConfig::paper_prototype();
  EXPECT_EQ(cfg.total_tiles(), 1024);
  EXPECT_EQ(cfg.total_chiplets(), 2048);
  EXPECT_EQ(cfg.total_cores(), 14336);
}

TEST(SystemConfig, TableI_ComputeThroughput) {
  // 14336 cores x 300 MHz = 4.3 TOPS.
  const SystemConfig cfg = SystemConfig::paper_prototype();
  EXPECT_NEAR(cfg.compute_throughput_ops(), 4.3008e12, 1e9);
}

TEST(SystemConfig, TableI_SharedMemoryCapacity) {
  // 1024 tiles x 4 shared banks x 128 KB = 512 MB.
  const SystemConfig cfg = SystemConfig::paper_prototype();
  EXPECT_EQ(cfg.total_shared_memory_bytes(), 512ull * 1024 * 1024);
}

TEST(SystemConfig, TableI_SharedMemoryBandwidth) {
  // 1024 tiles x 5 banks x 4 B x 300 MHz = 6.144 TB/s.
  const SystemConfig cfg = SystemConfig::paper_prototype();
  EXPECT_NEAR(cfg.shared_memory_bandwidth_bytes_per_s(), 6.144e12, 1e6);
}

TEST(SystemConfig, TableI_NetworkBandwidth) {
  // 1024 tiles x 2 networks x 2 buses x 8 B payload x 300 MHz = 9.83 TB/s.
  const SystemConfig cfg = SystemConfig::paper_prototype();
  EXPECT_NEAR(cfg.network_bandwidth_bytes_per_s(), 9.8304e12, 1e7);
}

TEST(SystemConfig, TableI_PeakCurrentAndPower) {
  const SystemConfig cfg = SystemConfig::paper_prototype();
  // Paper: "about 290 A"; the exact pass-through figure is 1024 x 350 mW
  // at the 1.21 V fast-fast corner = 296 A.
  EXPECT_NEAR(cfg.total_peak_current_a(), 296.2, 1.0);
  // Paper Table I: 725 W (290 A x 2.5 V); computed: 296 A x 2.5 V = 740 W.
  EXPECT_NEAR(cfg.total_peak_power_w(), 740.5, 3.0);
  EXPECT_LT(std::abs(cfg.total_peak_power_w() - 725.0) / 725.0, 0.03);
}

TEST(SystemConfig, TableI_TotalArea) {
  const SystemConfig cfg = SystemConfig::paper_prototype();
  const double area_mm2 = cfg.total_area_m2() / 1e-6;
  // Paper: 15,100 mm^2 including edge I/Os; the model lands within 2 %.
  EXPECT_LT(std::abs(area_mm2 - 15100.0) / 15100.0, 0.02);
  // Active silicon: 1024 x 11.025 mm^2.
  EXPECT_NEAR(cfg.active_silicon_area_m2() / 1e-6, 11289.6, 0.5);
}

TEST(SystemConfig, TableI_IoCount) {
  const SystemConfig cfg = SystemConfig::paper_prototype();
  // 1024 x (2020 + 1250) = 3.35 M fine-pitch I/Os ("3.7 M+" in the paper,
  // which also counts edge-connector pads).
  EXPECT_EQ(cfg.total_inter_chip_ios(), 3348480);
}

TEST(SystemConfig, ReducedSystemScales) {
  const SystemConfig cfg = SystemConfig::reduced(4, 4);
  EXPECT_EQ(cfg.total_tiles(), 16);
  EXPECT_EQ(cfg.total_cores(), 16 * 14);
  EXPECT_EQ(cfg.total_shared_memory_bytes(), 16ull * 4 * 128 * 1024);
}

TEST(SystemConfig, ValidateCatchesBadConfigs) {
  SystemConfig cfg = SystemConfig::paper_prototype();
  cfg.array_width = 0;
  EXPECT_THROW(cfg.validate(), Error);

  cfg = SystemConfig::paper_prototype();
  cfg.shared_banks_per_tile = 6;  // more than banks on the chiplet
  EXPECT_THROW(cfg.validate(), Error);

  cfg = SystemConfig::paper_prototype();
  cfg.nominal_freq_hz = 500e6;  // beyond PLL max output
  EXPECT_THROW(cfg.validate(), Error);

  cfg = SystemConfig::paper_prototype();
  cfg.packet_bits = 500;  // wider than the link
  EXPECT_THROW(cfg.validate(), Error);

  cfg = SystemConfig::paper_prototype();
  cfg.num_networks = 3;
  EXPECT_THROW(cfg.validate(), Error);

  cfg = SystemConfig::paper_prototype();
  cfg.jtag_chains = 64;  // more chains than rows
  EXPECT_THROW(cfg.validate(), Error);
}

// ------------------------------------------------------------------- RNG

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, BelowIsUnbiasedAcrossSmallRange) {
  Rng rng(99);
  std::array<int, 7> counts{};
  for (int i = 0; i < 70000; ++i) ++counts[rng.below(7)];
  for (const int c : counts) EXPECT_NEAR(c, 10000, 400);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 100000; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

// -------------------------------------------------------------- fault map

TEST(FaultMap, StartsAllHealthy) {
  const TileGrid grid(8, 8);
  const FaultMap map(grid);
  EXPECT_EQ(map.fault_count(), 0u);
  EXPECT_EQ(map.healthy_count(), 64u);
  grid.for_each([&](TileCoord c) { EXPECT_TRUE(map.is_healthy(c)); });
}

TEST(FaultMap, SetAndClear) {
  FaultMap map(TileGrid(4, 4));
  map.set_faulty({1, 1});
  EXPECT_TRUE(map.is_faulty({1, 1}));
  EXPECT_EQ(map.fault_count(), 1u);
  map.set_faulty({1, 1});  // idempotent
  EXPECT_EQ(map.fault_count(), 1u);
  map.set_faulty({1, 1}, false);
  EXPECT_EQ(map.fault_count(), 0u);
  EXPECT_THROW(map.set_faulty({9, 9}), Error);
}

TEST(FaultMap, RandomWithCountExact) {
  const TileGrid grid(16, 16);
  Rng rng(3);
  for (const std::size_t n : {0u, 1u, 5u, 50u, 255u}) {
    const FaultMap map = FaultMap::random_with_count(grid, n, rng);
    EXPECT_EQ(map.fault_count(), n);
    EXPECT_EQ(map.faulty_tiles().size(), n);
  }
  EXPECT_THROW(FaultMap::random_with_count(grid, 257, rng), Error);
}

TEST(FaultMap, RandomWithProbabilityMatchesExpectation) {
  const TileGrid grid(32, 32);
  Rng rng(11);
  std::size_t total = 0;
  const int trials = 50;
  for (int t = 0; t < trials; ++t)
    total += FaultMap::random_with_probability(grid, 0.1, rng).fault_count();
  EXPECT_NEAR(static_cast<double>(total) / trials, 102.4, 10.0);
}

TEST(FaultMap, AllNeighborsFaultyDetection) {
  FaultMap map(TileGrid(5, 5));
  for (TileCoord f : {TileCoord{2, 1}, TileCoord{2, 3}, TileCoord{1, 2},
                      TileCoord{3, 2}})
    map.set_faulty(f);
  EXPECT_TRUE(map.all_neighbors_faulty({2, 2}));
  EXPECT_FALSE(map.all_neighbors_faulty({1, 1}));
  // A corner tile is boxed in by its two neighbours only.
  FaultMap corner(TileGrid(5, 5));
  corner.set_faulty({1, 0});
  corner.set_faulty({0, 1});
  EXPECT_TRUE(corner.all_neighbors_faulty({0, 0}));
}

TEST(FaultMap, AllNeighborsFaultyAtEveryCorner) {
  const TileGrid grid(4, 4);
  const TileCoord corners[] = {{0, 0}, {3, 0}, {0, 3}, {3, 3}};
  for (const TileCoord corner : corners) {
    FaultMap map(grid);
    const auto neighbors = grid.neighbors(corner);
    ASSERT_EQ(neighbors.size(), 2u);
    map.set_faulty(neighbors[0]);
    EXPECT_FALSE(map.all_neighbors_faulty(corner));
    map.set_faulty(neighbors[1]);
    EXPECT_TRUE(map.all_neighbors_faulty(corner));
    // The corner itself being faulty is irrelevant to the predicate.
    map.set_faulty(corner);
    EXPECT_TRUE(map.all_neighbors_faulty(corner));
  }
}

TEST(FaultMap, AllNeighborsFaultyAtEdgeTile) {
  // A non-corner edge tile has exactly three in-bounds neighbours; the
  // out-of-bounds side must not count as healthy.
  FaultMap map(TileGrid(5, 5));
  const TileCoord edge{2, 0};
  map.set_faulty({1, 0});
  map.set_faulty({3, 0});
  EXPECT_FALSE(map.all_neighbors_faulty(edge));  // {2,1} still healthy
  map.set_faulty({2, 1});
  EXPECT_TRUE(map.all_neighbors_faulty(edge));
}

TEST(FaultMap, AllNeighborsFaultyOnSingleTileGrid) {
  // A 1x1 wafer has no inter-tile links at all, so the "boxed in"
  // predicate is vacuously true: nothing can ever reach the tile from a
  // neighbour, healthy or not.
  const FaultMap map(TileGrid(1, 1));
  EXPECT_TRUE(map.all_neighbors_faulty({0, 0}));
}

TEST(FaultMap, RandomWithCountCanFillTheWholeGrid) {
  const TileGrid grid(4, 4);
  Rng rng(21);
  const FaultMap map =
      FaultMap::random_with_count(grid, grid.tile_count(), rng);
  EXPECT_EQ(map.fault_count(), grid.tile_count());
  EXPECT_EQ(map.healthy_count(), 0u);
  grid.for_each([&](TileCoord c) { EXPECT_TRUE(map.is_faulty(c)); });
}

// ---------------------------------------------------------- link fault set

TEST(LinkFaultSet, StartsEmptyAndTracksDirectedLinks) {
  const TileGrid grid(4, 4);
  LinkFaultSet links(grid);
  EXPECT_TRUE(links.empty());
  links.set_failed({1, 1}, Direction::East);
  EXPECT_TRUE(links.is_failed({1, 1}, Direction::East));
  // Directed: the reverse hop of the same physical channel is its own
  // failure domain.
  EXPECT_FALSE(links.is_failed({2, 1}, Direction::West));
  EXPECT_EQ(links.failed_count(), 1u);
  links.set_failed({1, 1}, Direction::East);  // idempotent
  EXPECT_EQ(links.failed_count(), 1u);
  links.set_failed({1, 1}, Direction::East, false);
  EXPECT_TRUE(links.empty());
}

TEST(LinkFaultSet, FailedLinksEnumeratesInIndexOrder) {
  const TileGrid grid(3, 3);
  LinkFaultSet links(grid);
  links.set_failed({2, 2}, Direction::South);
  links.set_failed({0, 0}, Direction::North);
  const auto failed = links.failed_links();
  ASSERT_EQ(failed.size(), 2u);
  EXPECT_EQ(failed[0].first, (TileCoord{0, 0}));
  EXPECT_EQ(failed[0].second, Direction::North);
  EXPECT_EQ(failed[1].first, (TileCoord{2, 2}));
  EXPECT_EQ(failed[1].second, Direction::South);
}

TEST(LinkFaultSet, DefaultConstructedReportsNothingFailed) {
  const LinkFaultSet links;
  EXPECT_TRUE(links.empty());
  EXPECT_FALSE(links.is_failed({0, 0}, Direction::North));
}

TEST(FaultMap, HealthyPlusFaultyPartition) {
  const TileGrid grid(10, 10);
  Rng rng(17);
  const FaultMap map = FaultMap::random_with_count(grid, 23, rng);
  std::set<std::pair<int, int>> seen;
  for (const TileCoord c : map.faulty_tiles()) seen.insert({c.x, c.y});
  for (const TileCoord c : map.healthy_tiles()) {
    EXPECT_EQ(seen.count({c.x, c.y}), 0u);
    seen.insert({c.x, c.y});
  }
  EXPECT_EQ(seen.size(), grid.tile_count());
}

// Parameterized property: random_with_count never repeats a tile and is
// reproducible for a fixed seed.
class FaultMapSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultMapSeedTest, ReproducibleDraws) {
  const TileGrid grid(12, 12);
  Rng a(GetParam()), b(GetParam());
  const FaultMap m1 = FaultMap::random_with_count(grid, 10, a);
  const FaultMap m2 = FaultMap::random_with_count(grid, 10, b);
  EXPECT_TRUE(m1 == m2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultMapSeedTest,
                         ::testing::Values(1, 2, 3, 17, 999, 123456789));

}  // namespace
}  // namespace wsp
