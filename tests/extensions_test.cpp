// Tests for the paper's stated-future-work extensions implemented in this
// library: through-wafer-via power delivery (Sec. III ref [13]),
// substrate deep-trench decap (footnote 2, ref [14]), and clock-skew
// quantification for the forwarding network (footnote 3).
#include <gtest/gtest.h>

#include <algorithm>

#include "wsp/arch/power_map.hpp"
#include "wsp/clock/skew.hpp"
#include "wsp/common/error.hpp"
#include "wsp/mem/technology.hpp"
#include "wsp/pdn/strategy.hpp"
#include "wsp/pdn/wafer_pdn.hpp"
#include "wsp/route/net_timing.hpp"
#include "wsp/workloads/graph_apps.hpp"

namespace wsp {
namespace {

SystemConfig cfg() { return SystemConfig::paper_prototype(); }

// ------------------------------------------------------------------- TWV

TEST(Twv, EliminatesTheLateralDroopGradient) {
  const pdn::StrategyReport twv = pdn::evaluate_twv_strategy(cfg());
  // Per-tile drop is just the via bundle: millivolts, not the volt-scale
  // droop of edge delivery.
  EXPECT_GT(twv.min_tile_supply_v, 1.45);
  EXPECT_LT(1.5 - twv.min_tile_supply_v, 0.01);
}

TEST(Twv, BeatsEdgeLdoEfficiency) {
  const pdn::StrategyComparison cmp = pdn::compare_strategies(cfg());
  EXPECT_GT(cmp.twv.efficiency, cmp.ldo.efficiency + 0.2);
  EXPECT_EQ(cmp.twv.area_overhead_fraction, 0.0);
  // Still delivers the full logic power.
  EXPECT_NEAR(cmp.twv.delivered_power_w, cmp.ldo.delivered_power_w,
              cmp.ldo.delivered_power_w * 0.05);
}

TEST(Twv, PlaneLossIsNegligible) {
  const pdn::StrategyReport twv = pdn::evaluate_twv_strategy(cfg());
  const pdn::StrategyReport ldo = pdn::evaluate_ldo_strategy(cfg());
  EXPECT_LT(twv.plane_loss_w, ldo.plane_loss_w / 100.0);
}

TEST(Twv, ViaBundleSizingMatters) {
  pdn::TwvParams few;
  few.vias_per_tile = 1;
  pdn::TwvParams many;
  many.vias_per_tile = 64;
  const auto r_few = pdn::evaluate_twv_strategy(cfg(), few);
  const auto r_many = pdn::evaluate_twv_strategy(cfg(), many);
  EXPECT_LT(r_few.min_tile_supply_v, r_many.min_tile_supply_v);
  EXPECT_GT(r_few.plane_loss_w, r_many.plane_loss_w);
}

// ------------------------------------------------------------------- DTC

TEST(DeepTrenchDecap, RecoversTheDecapAreaAndGrowsTheBudget) {
  // 500 nF/mm^2 trench density under a ~12 mm^2 tile: two orders of
  // magnitude more capacitance than the 20 nF on-chip budget.
  const pdn::DtcBenefit b =
      pdn::evaluate_deep_trench_decap(cfg(), 500e-9 / 1e-6);
  EXPECT_NEAR(b.onchip_decap_f, 20e-9, 1e-12);
  EXPECT_GT(b.dtc_decap_f, 100.0 * b.onchip_decap_f);
  EXPECT_DOUBLE_EQ(b.recovered_area_fraction, 0.35);
}

TEST(DeepTrenchDecap, SupportsMuchLargerLoadSteps) {
  const pdn::DtcBenefit b =
      pdn::evaluate_deep_trench_decap(cfg(), 500e-9 / 1e-6);
  // Today's 20 nF absorbs the paper's 200 mA step; the DTC budget should
  // absorb multi-ampere steps (the higher-power future systems).
  EXPECT_GT(b.max_load_step_a, 10.0);
  // Consistency with the transient model: 20 nF alone at a 100 mV margin
  // and 4 ns response gives 0.5 A.
  const pdn::DtcBenefit none = pdn::evaluate_deep_trench_decap(cfg(), 0.0);
  EXPECT_NEAR(none.max_load_step_a, 0.5, 0.01);
}

// ------------------------------------------------------------------ skew

TEST(Skew, SingleGeneratorSeamHasBoundedDelta) {
  // With one corner generator the wavefronts are monotone: neighbouring
  // tiles differ by exactly one hop everywhere.
  const TileGrid grid(16, 16);
  const FaultMap healthy(grid);
  const clock::ForwardingPlan plan =
      clock::simulate_forwarding(healthy, {{0, 0}});
  const clock::SkewReport report = clock::analyze_skew(plan, grid, 100e-12);
  EXPECT_EQ(report.max_adjacent_depth_delta, 1);
  EXPECT_EQ(report.odd_parity_links, report.links_measured);
  EXPECT_NEAR(report.worst_skew_s, 100e-12, 1e-15);
}

TEST(Skew, OpposingGeneratorsCreateASeam) {
  // Two generators on the same edge: their fronts meet mid-wafer with
  // opposite distance parities, so seam links exist whose endpoints sit
  // at the *same* depth (aligned parity) — unlike the single-generator
  // case where every link is half-cycle offset.
  const TileGrid grid(16, 16);
  const FaultMap healthy(grid);
  const clock::ForwardingPlan plan =
      clock::simulate_forwarding(healthy, {{0, 0}, {15, 0}});
  const clock::SkewReport report = clock::analyze_skew(plan, grid, 100e-12);
  EXPECT_GE(report.max_adjacent_depth_delta, 1);
  EXPECT_LT(report.odd_parity_links, report.links_measured);
}

TEST(Skew, AdjacentDeltaIsAtMostOneEvenUnderFaults) {
  // Theorem: auto-selection locks onto the earliest clock, so forwarding
  // depth is graph distance and adjacent reached tiles differ by <=1 hop
  // — even when a wall of faults forces long detours.
  const TileGrid grid(16, 16);
  FaultMap faults(grid);
  for (int y = 0; y < 15; ++y) faults.set_faulty({8, y});  // wall, gap at top
  const clock::ForwardingPlan plan =
      clock::simulate_forwarding(faults, {{0, 0}});
  const clock::SkewReport report = clock::analyze_skew(plan, grid, 100e-12);
  EXPECT_LE(report.max_adjacent_depth_delta, 1);
  // But the detour shows up in the wafer-global spread: the right half is
  // reached over the top of the wall, far deeper than the fault-free
  // 30-hop radius.
  EXPECT_GT(report.max_depth, 35);
}

TEST(Skew, GlobalSpreadScalesWithWaferSize) {
  const FaultMap small(TileGrid(8, 8));
  const FaultMap large(TileGrid(32, 32));
  const auto plan_s = clock::simulate_forwarding(small, {{0, 0}});
  const auto plan_l = clock::simulate_forwarding(large, {{0, 0}});
  const auto rep_s = clock::analyze_skew(plan_s, small.grid(), 100e-12);
  const auto rep_l = clock::analyze_skew(plan_l, large.grid(), 100e-12);
  EXPECT_GT(rep_l.global_spread_s, 4.0 * rep_s.global_spread_s);
  EXPECT_EQ(rep_l.max_depth, 62);
}

TEST(Skew, SynchronousFeasibilityPredicate) {
  const TileGrid grid(8, 8);
  const FaultMap healthy(grid);
  const clock::ForwardingPlan plan =
      clock::simulate_forwarding(healthy, {{0, 0}});
  const clock::SkewReport report = clock::analyze_skew(plan, grid, 200e-12);
  EXPECT_TRUE(clock::synchronous_links_feasible(report, 1e-9));
  EXPECT_FALSE(clock::synchronous_links_feasible(report, 100e-12));
}

// -------------------------------------------------------- memory tech

TEST(MemoryTech, BaselineReproducesThePrototype) {
  // The 40nm preset is calibrated: same footprint must give 5 x 128 KB.
  const auto o = mem::evaluate_memory_technology(cfg(), mem::sram_40nm());
  EXPECT_EQ(o.bank_bytes, 128u * 1024);
  EXPECT_EQ(o.chiplet_bytes, 5u * 128 * 1024);
  EXPECT_EQ(o.system_shared_bytes, 512ull * 1024 * 1024);
  EXPECT_NEAR(o.capacity_vs_baseline, 1.0, 0.01);
}

TEST(MemoryTech, DenserNodesScaleCapacity) {
  const auto survey = mem::memory_technology_survey(cfg());
  ASSERT_EQ(survey.size(), 5u);
  for (std::size_t i = 1; i < survey.size(); ++i)
    EXPECT_GT(survey[i].chiplet_bytes, survey[0].chiplet_bytes);
  // DRAM-class chiplets push the system toward the paper's "TBs of
  // memory" pitch: > 30 GB of shared SRAM-socket capacity per wafer.
  EXPECT_GT(survey.back().system_shared_bytes, 30ull << 30);
}

TEST(MemoryTech, SlowTechnologyCapsBandwidth) {
  const auto dram = mem::evaluate_memory_technology(cfg(), mem::dram_1x());
  const auto sram = mem::evaluate_memory_technology(cfg(), mem::sram_40nm());
  EXPECT_LT(dram.shared_bandwidth_bytes_per_s,
            sram.shared_bandwidth_bytes_per_s);
}

TEST(MemoryTech, ValidatesArguments) {
  EXPECT_THROW(
      mem::evaluate_memory_technology(cfg(), mem::sram_40nm(), 0.0),
      Error);
  mem::MemoryTechnology bad = mem::sram_40nm();
  bad.bit_density_bits_per_m2 = 0.0;
  EXPECT_THROW(mem::evaluate_memory_technology(cfg(), bad), Error);
}

// -------------------------------------------------------- net timing

TEST(NetTiming, ShortLinksMeetOneGigahertz) {
  // The Sec. V claim: simple drivers handle 1 GHz up to 500 um.
  const route::WireRule rule{2e-6, 3e-6};
  const route::NetTiming t = route::analyze_wire(300e-6, rule);
  EXPECT_GT(t.max_rate_hz, 1e9);
  const route::NetTiming t500 = route::analyze_wire(500e-6, rule);
  EXPECT_GT(t500.max_rate_hz, 1e9);
}

TEST(NetTiming, LongWiresSlowDown) {
  const route::WireRule rule{2e-6, 3e-6};
  const route::NetTiming short_wire = route::analyze_wire(300e-6, rule);
  const route::NetTiming long_wire = route::analyze_wire(6.2e-3, rule);
  EXPECT_GT(short_wire.max_rate_hz, 10.0 * long_wire.max_rate_hz);
  EXPECT_GT(long_wire.elmore_delay_s, short_wire.elmore_delay_s);
}

TEST(NetTiming, FullRoutingTimingReport) {
  const SystemConfig c = cfg();
  const route::SubstrateRouter router(c);
  const route::RoutingReport routing = router.route(2);
  const route::TimingReport report =
      route::analyze_routing_timing(c, routing);
  EXPECT_TRUE(report.inter_tile_meets_rate);
  EXPECT_TRUE(report.bank_bus_meets_rate);
  // The 6.2 mm edge fan-out is RC-limited but still far above the 10 MHz
  // the JTAG/config signals need.
  EXPECT_LT(report.edge_fanout_rate_hz, 1e9);
  EXPECT_GT(report.edge_fanout_rate_hz, c.jtag_tck_hz);
}

TEST(NetTiming, ValidatesArguments) {
  EXPECT_THROW(route::analyze_wire(0.0, route::WireRule{2e-6, 3e-6}), Error);
  EXPECT_THROW(route::analyze_wire(1e-3, route::WireRule{0.0, 3e-6}), Error);
}

// -------------------------------------------------------- power map

TEST(PowerMap, WorkloadRunYieldsABoundedPowerMap) {
  const SystemConfig c = SystemConfig::reduced(4, 4);
  const FaultMap faults(c.grid());
  const workloads::Graph g = workloads::make_grid_graph(10, 10);
  const workloads::GraphAppResult r = workloads::run_bfs(c, faults, g, 0);
  ASSERT_EQ(r.tile_power_w.size(), 16u);
  for (const double p : r.tile_power_w) {
    EXPECT_GE(p, 0.3 * c.tile_peak_power_w - 1e-12);  // idle floor
    EXPECT_LE(p, c.tile_peak_power_w + 1e-12);
  }
}

TEST(PowerMap, FaultyTilesDrawNothing) {
  const SystemConfig c = SystemConfig::reduced(4, 4);
  FaultMap faults(c.grid());
  faults.set_faulty({2, 2});
  const workloads::Graph g = workloads::make_grid_graph(10, 10);
  const workloads::GraphAppResult r = workloads::run_bfs(c, faults, g, 0);
  EXPECT_DOUBLE_EQ(r.tile_power_w[c.grid().index_of({2, 2})], 0.0);
}

TEST(PowerMap, FeedsThePdnSolver) {
  const SystemConfig c = SystemConfig::reduced(8, 8);
  const FaultMap faults(c.grid());
  const workloads::Graph g = workloads::make_grid_graph(16, 16);
  const workloads::GraphAppResult r = workloads::run_bfs(c, faults, g, 0);
  pdn::WaferPdn pdn(c, {});
  const pdn::PdnReport workload = pdn.solve(r.tile_power_w);
  pdn::WaferPdn pdn2(c, {});
  const pdn::PdnReport peak = pdn2.solve_uniform(1.0);
  ASSERT_TRUE(workload.solver_converged);
  // A near-idle kernel droops less than the Fig. 2 worst case.
  EXPECT_GT(workload.min_supply_v, peak.min_supply_v);
}

}  // namespace
}  // namespace wsp
