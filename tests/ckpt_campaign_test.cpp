// Crash-safe Monte Carlo campaigns: kill-and-resume, sharding, and the
// campaign-identity fingerprint.
//
// The integration half of the checkpoint story.  A child process runs a
// checkpointed campaign and SIGKILLs itself from the after_checkpoint
// hook — no destructors, no flushing, the hard-crash case — and the
// parent resumes from the surviving snapshot.  The resumed report vector
// and the RunReport JSON built from it must be *byte-identical* to an
// uninterrupted run, at thread counts 1, 2 and 8.  Shard partials merged
// across trial ranges must reproduce the single-process reports the same
// way.  The typed-error paths keep resumption honest: a snapshot from a
// different campaign (fingerprint), a corrupt file, or shard partials
// that gap/overlap are all loud ckpt::Error, never a silent cold start.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "wsp/ckpt/checkpoint.hpp"
#include "wsp/exec/thread_pool.hpp"
#include "wsp/obs/report.hpp"
#include "wsp/resilience/campaign.hpp"

namespace wsp {
namespace {

using resilience::CampaignCheckpointOptions;
using resilience::CampaignOptions;
using resilience::CampaignReportsFile;
using resilience::DegradationCampaign;
using resilience::DegradationReport;

CampaignOptions small_campaign() {
  CampaignOptions o;
  o.config = SystemConfig::reduced(8, 8);
  o.seed = 11;
  o.run_cycles = 1200;
  o.fault_horizon = 900;
  o.injection_rate = 0.02;
  return o;
}

std::vector<std::uint8_t> report_bytes(
    const std::vector<DegradationReport>& reports) {
  ckpt::Writer w;
  w.u64(reports.size());
  for (const DegradationReport& r : reports) resilience::save_report(w, r);
  return w.bytes();
}

// The deterministic JSON artifact a campaign run emits — what the resumed
// run must reproduce byte for byte.
std::string runreport_json(const std::vector<DegradationReport>& reports) {
  obs::MetricsRegistry registry;
  resilience::publish_metrics(reports, registry);
  obs::RunReport report("ckpt_campaign_test");
  const resilience::CampaignSummary s = resilience::summarize(reports);
  report.add_scalar("summary", "mean_final_usable_fraction",
                    s.mean_final_usable_fraction);
  report.add_scalar("summary", "mean_pair_reachability_pct",
                    s.mean_pair_reachability_pct);
  report.add_metrics("campaign", registry);
  return report.to_json();
}

class TempFile {
 public:
  explicit TempFile(const char* name) : path_(name) {}
  ~TempFile() {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(CampaignCkpt, KillAndResumeByteIdenticalAcrossThreadCounts) {
  const int kTrials = 4;
  const int kKillAfter = 2;
  const DegradationCampaign campaign(small_campaign());
  const TempFile ckpt_file("CKPT_campaign_kill_test.wsp");

  // Child: run checkpointed, SIGKILL self the instant the second trial's
  // snapshot has been renamed into place.  raise(SIGKILL) cannot be
  // caught or cleaned up after — the checkpoint on disk is all that
  // survives.
  const pid_t child = fork();
  ASSERT_GE(child, 0) << "fork failed";
  if (child == 0) {
    CampaignCheckpointOptions ck;
    ck.path = ckpt_file.path();
    ck.every_trials = 1;
    ck.after_checkpoint = [&](int completed) {
      if (completed >= kKillAfter) raise(SIGKILL);
    };
    campaign.run_trials_checkpointed(kTrials, ck);
    _exit(0);  // not reached
  }
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child should die by signal";
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  // The surviving snapshot holds exactly the killed-at point.
  const std::vector<std::uint8_t> snapshot = ckpt::read_file(ckpt_file.path());
  const CampaignReportsFile partial =
      resilience::load_campaign_reports(ckpt_file.path());
  EXPECT_EQ(partial.fingerprint, campaign.options_fingerprint());
  EXPECT_EQ(static_cast<int>(partial.reports.size()), kKillAfter);

  // Uninterrupted reference, then resume from the same snapshot at every
  // thread count; reports and the emitted JSON must match byte for byte.
  const std::vector<DegradationReport> reference =
      campaign.run_trials(kTrials);
  const std::vector<std::uint8_t> reference_bytes = report_bytes(reference);
  const std::string reference_json = runreport_json(reference);
  for (const int threads : {1, 2, 8}) {
    exec::set_shared_threads(threads);
    ckpt::atomic_write_file(ckpt_file.path(), snapshot.data(),
                            snapshot.size());
    CampaignCheckpointOptions ck;
    ck.path = ckpt_file.path();
    int resumed_trials = 0;
    ck.after_checkpoint = [&](int) { ++resumed_trials; };
    const std::vector<DegradationReport> resumed =
        campaign.run_trials_checkpointed(kTrials, ck);
    EXPECT_EQ(resumed_trials, kTrials - kKillAfter)
        << "only the missing trials re-run";
    EXPECT_EQ(report_bytes(resumed), reference_bytes)
        << "threads=" << threads;
    EXPECT_EQ(runreport_json(resumed), reference_json)
        << "threads=" << threads;
  }
  exec::set_shared_threads(0);
}

TEST(CampaignCkpt, CompletedCheckpointLoadsWithoutRecompute) {
  const DegradationCampaign campaign(small_campaign());
  const TempFile ckpt_file("CKPT_campaign_done_test.wsp");
  CampaignCheckpointOptions ck;
  ck.path = ckpt_file.path();
  const std::vector<DegradationReport> first =
      campaign.run_trials_checkpointed(2, ck);

  int checkpoints = 0;
  ck.after_checkpoint = [&](int) { ++checkpoints; };
  const std::vector<DegradationReport> second =
      campaign.run_trials_checkpointed(2, ck);
  EXPECT_EQ(checkpoints, 0) << "nothing left to run, nothing to snapshot";
  EXPECT_EQ(report_bytes(second), report_bytes(first));
}

TEST(CampaignCkpt, EveryTrialsBatchesCheckpoints) {
  const DegradationCampaign campaign(small_campaign());
  const TempFile ckpt_file("CKPT_campaign_batch_test.wsp");
  CampaignCheckpointOptions ck;
  ck.path = ckpt_file.path();
  ck.every_trials = 2;
  std::vector<int> completions;
  ck.after_checkpoint = [&](int completed) { completions.push_back(completed); };
  campaign.run_trials_checkpointed(5, ck);
  EXPECT_EQ(completions, (std::vector<int>{2, 4, 5}));
}

TEST(CampaignCkpt, ForeignFingerprintRefusesToResume) {
  const TempFile ckpt_file("CKPT_campaign_foreign_test.wsp");
  const DegradationCampaign original(small_campaign());
  CampaignCheckpointOptions ck;
  ck.path = ckpt_file.path();
  original.run_trials_checkpointed(2, ck);

  CampaignOptions other_options = small_campaign();
  other_options.injection_rate = 0.03;  // behaviourally different campaign
  const DegradationCampaign other(other_options);
  try {
    other.run_trials_checkpointed(2, ck);
    FAIL() << "expected ckpt::Error";
  } catch (const ckpt::Error& e) {
    EXPECT_EQ(e.kind(), ckpt::ErrorKind::SchemaMismatch);
  }
}

TEST(CampaignCkpt, CorruptCheckpointStaysLoud) {
  const TempFile ckpt_file("CKPT_campaign_corrupt_test.wsp");
  const DegradationCampaign campaign(small_campaign());
  CampaignCheckpointOptions ck;
  ck.path = ckpt_file.path();
  campaign.run_trials_checkpointed(2, ck);

  std::vector<std::uint8_t> bytes = ckpt::read_file(ckpt_file.path());
  bytes[bytes.size() / 2] ^= 0x10;  // flip one payload bit
  ckpt::atomic_write_file(ckpt_file.path(), bytes.data(), bytes.size());
  // Corruption must propagate as a typed error, never be mistaken for a
  // missing file and silently recomputed from scratch.
  EXPECT_THROW(campaign.run_trials_checkpointed(2, ck), ckpt::Error);
}

TEST(CampaignCkpt, ShardsMergeToSingleProcessBytes) {
  const DegradationCampaign campaign(small_campaign());
  const std::uint32_t fp = campaign.options_fingerprint();
  const int kTrials = 5;
  const std::vector<DegradationReport> reference =
      campaign.run_trials(kTrials);

  // Three shard partials covering [0,2) [2,4) [4,5), merged out of order.
  std::vector<CampaignReportsFile> shards;
  shards.push_back({fp, kTrials, 4, campaign.run_trial_range(4, 1)});
  shards.push_back({fp, kTrials, 0, campaign.run_trial_range(0, 2)});
  shards.push_back({fp, kTrials, 2, campaign.run_trial_range(2, 2)});
  const std::vector<DegradationReport> merged =
      resilience::merge_campaign_reports(std::move(shards), fp);
  EXPECT_EQ(report_bytes(merged), report_bytes(reference));
  EXPECT_EQ(runreport_json(merged), runreport_json(reference));
}

TEST(CampaignCkpt, ShardFileRoundTripsThroughDisk) {
  const DegradationCampaign campaign(small_campaign());
  const std::uint32_t fp = campaign.options_fingerprint();
  const TempFile shard_file("CKPT_campaign_shard_test.wsp");

  CampaignReportsFile shard{fp, 4, 1, campaign.run_trial_range(1, 2)};
  const std::vector<std::uint8_t> bytes = report_bytes(shard.reports);
  resilience::save_campaign_reports(shard_file.path(), shard);
  const CampaignReportsFile loaded =
      resilience::load_campaign_reports(shard_file.path());
  EXPECT_EQ(loaded.fingerprint, fp);
  EXPECT_EQ(loaded.total_trials, 4);
  EXPECT_EQ(loaded.first_trial, 1);
  EXPECT_EQ(report_bytes(loaded.reports), bytes);
}

TEST(CampaignCkpt, MergeRejectsGapsOverlapsAndForeignShards) {
  const DegradationCampaign campaign(small_campaign());
  const std::uint32_t fp = campaign.options_fingerprint();
  const std::vector<DegradationReport> trials = campaign.run_trials(3);
  const auto slice = [&](int first, int count) {
    return std::vector<DegradationReport>(trials.begin() + first,
                                          trials.begin() + first + count);
  };
  const auto expect_schema_mismatch =
      [&](std::vector<CampaignReportsFile> shards) {
        try {
          resilience::merge_campaign_reports(std::move(shards), fp);
          ADD_FAILURE() << "expected ckpt::Error";
        } catch (const ckpt::Error& e) {
          EXPECT_EQ(e.kind(), ckpt::ErrorKind::SchemaMismatch);
        }
      };

  // Gap: trial 1 missing.
  expect_schema_mismatch({{fp, 3, 0, slice(0, 1)}, {fp, 3, 2, slice(2, 1)}});
  // Overlap: trial 1 delivered twice.
  expect_schema_mismatch({{fp, 3, 0, slice(0, 2)}, {fp, 3, 1, slice(1, 2)}});
  // Foreign shard: fingerprint from some other campaign.
  expect_schema_mismatch({{fp, 3, 0, slice(0, 2)}, {fp ^ 1, 3, 2, slice(2, 1)}});
  // Disagreement on the campaign size.
  expect_schema_mismatch({{fp, 3, 0, slice(0, 2)}, {fp, 4, 2, slice(2, 1)}});
  // The valid tiling still merges.
  const std::vector<DegradationReport> ok = resilience::merge_campaign_reports(
      {{fp, 3, 0, slice(0, 2)}, {fp, 3, 2, slice(2, 1)}}, fp);
  EXPECT_EQ(report_bytes(ok), report_bytes(trials));
}

TEST(CampaignCkpt, MergeErrorsNameTheOffendingShard) {
  const DegradationCampaign campaign(small_campaign());
  const std::uint32_t fp = campaign.options_fingerprint();
  const std::vector<DegradationReport> trials = campaign.run_trials(4);
  const auto slice = [&](int first, int count) {
    return std::vector<DegradationReport>(trials.begin() + first,
                                          trials.begin() + first + count);
  };
  // With dozens of partial files on the floor, "merge failed" is useless;
  // every rejection must name the offending shard's trial range.
  const auto expect_message = [&](std::vector<CampaignReportsFile> shards,
                                  const std::string& needle) {
    try {
      resilience::merge_campaign_reports(std::move(shards), fp);
      ADD_FAILURE() << "expected ckpt::Error mentioning '" << needle << "'";
    } catch (const ckpt::Error& e) {
      EXPECT_EQ(e.kind(), ckpt::ErrorKind::SchemaMismatch);
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "actual message: " << e.what();
    }
  };

  // Overlap: shard [1,3) arrives after [0,2) already delivered trial 1.
  expect_message({{fp, 4, 0, slice(0, 2)}, {fp, 4, 1, slice(1, 2)},
                  {fp, 4, 3, slice(3, 1)}},
                 "shard trials [1, 3) overlaps");
  // Duplicate: the same shard file merged twice.
  expect_message({{fp, 4, 0, slice(0, 2)}, {fp, 4, 0, slice(0, 2)},
                  {fp, 4, 2, slice(2, 2)}},
                 "duplicate shard trials [0, 2)");
  // Gap: nobody delivered trial 2.
  expect_message({{fp, 4, 0, slice(0, 2)}, {fp, 4, 3, slice(3, 1)}},
                 "gap before shard trials [3, 4): trials [2, 3) missing");
  // Foreign fingerprint: the shard that disagrees is named, not the merge.
  expect_message({{fp, 4, 0, slice(0, 2)}, {fp ^ 1, 4, 2, slice(2, 2)}},
                 "shard trials [2, 4) belongs to a different campaign");
  // Tail missing: the coverage summary says how far the tiling got.
  expect_message({{fp, 4, 0, slice(0, 2)}}, "trials [0, 2) of 4");
}

TEST(CampaignCkpt, FingerprintTracksBehaviouralOptionsOnly) {
  const DegradationCampaign a(small_campaign());
  const DegradationCampaign b(small_campaign());
  EXPECT_EQ(a.options_fingerprint(), b.options_fingerprint())
      << "identical options, identical identity";

  CampaignOptions changed = small_campaign();
  changed.injection_rate = 0.021;
  EXPECT_NE(DegradationCampaign(changed).options_fingerprint(),
            a.options_fingerprint());

  CampaignOptions reseeded = small_campaign();
  reseeded.seed = 12;
  EXPECT_NE(DegradationCampaign(reseeded).options_fingerprint(),
            a.options_fingerprint());

  // The mesh shard count is a parallel-grain knob, not campaign identity:
  // a checkpoint must be resumable under a different shard tuning.
  CampaignOptions regrained = small_campaign();
  regrained.noc.mesh.shards = 4;
  EXPECT_EQ(DegradationCampaign(regrained).options_fingerprint(),
            a.options_fingerprint());
}

TEST(CampaignCkpt, ReportSerialisationRoundTripsEverySummaryInput) {
  CampaignOptions options = small_campaign();
  options.noc.mesh.integrity.enabled = true;  // exercise retirement fields
  options.mix.link_ber_degradations = 2;
  const DegradationCampaign campaign(options);
  const std::vector<DegradationReport> reports = campaign.run_trials(2);

  ckpt::Writer w;
  for (const DegradationReport& r : reports) resilience::save_report(w, r);
  ckpt::Reader r(w.bytes());
  std::vector<DegradationReport> loaded;
  for (std::size_t i = 0; i < reports.size(); ++i)
    loaded.push_back(resilience::load_report(r));
  EXPECT_TRUE(r.done());
  EXPECT_EQ(report_bytes(loaded), report_bytes(reports));
  EXPECT_EQ(runreport_json(loaded), runreport_json(reports));
}

}  // namespace
}  // namespace wsp
