// Tests for the odd-even turn-model extension (the paper's future-work
// routing scheme, Sec. VI footnote): turn-rule compliance, deadlock
// freedom of the channel-dependency graph, fault tolerance vs DoR, and
// agreement between the analysis and the cycle-level adaptive simulator.
#include <gtest/gtest.h>

#include <queue>
#include <set>

#include "wsp/noc/connectivity.hpp"
#include "wsp/noc/mesh_network.hpp"
#include "wsp/noc/odd_even.hpp"

namespace wsp::noc {
namespace {

TEST(OddEven, EjectsAtDestination) {
  const RouteChoices c = odd_even_route({0, 0}, {3, 3}, {3, 3});
  EXPECT_TRUE(c.eject);
  EXPECT_EQ(c.count, 0);
}

TEST(OddEven, AlwaysOffersAnOption) {
  // For every (src, cur, dst) triple on an 8x8 mesh where cur lies inside
  // the minimal rectangle, the ROUTE function offers at least one output.
  const TileGrid grid(8, 8);
  grid.for_each([&](TileCoord src) {
    grid.for_each([&](TileCoord dst) {
      if (src == dst) return;
      const int x0 = std::min(src.x, dst.x), x1 = std::max(src.x, dst.x);
      const int y0 = std::min(src.y, dst.y), y1 = std::max(src.y, dst.y);
      for (int x = x0; x <= x1; ++x)
        for (int y = y0; y <= y1; ++y) {
          const TileCoord cur{x, y};
          if (cur == dst) continue;
          const RouteChoices c = odd_even_route(src, cur, dst);
          ASSERT_GT(c.count, 0)
              << to_string(src) << " " << to_string(cur) << " "
              << to_string(dst);
        }
    });
  });
}

TEST(OddEven, ChoicesAreMinimal) {
  // Every offered direction strictly reduces the Manhattan distance.
  const TileGrid grid(8, 8);
  Rng rng(3);
  for (int trial = 0; trial < 2000; ++trial) {
    const TileCoord src = grid.coord_of(rng.below(64));
    const TileCoord dst = grid.coord_of(rng.below(64));
    const TileCoord cur = grid.coord_of(rng.below(64));
    if (src == dst || cur == dst) continue;
    const RouteChoices c = odd_even_route(src, cur, dst);
    for (int i = 0; i < c.count; ++i)
      EXPECT_EQ(hop_distance(step(cur, c.dirs[i]), dst),
                hop_distance(cur, dst) - 1);
  }
}

TEST(OddEven, TurnRulesRespected) {
  // Walk every allowed path for every pair on a 7x7 mesh and check the
  // turn restrictions: EN/ES only in odd columns (or the source column),
  // NW/SW only in even columns.
  const TileGrid grid(7, 7);
  grid.for_each([&](TileCoord src) {
    grid.for_each([&](TileCoord dst) {
      if (src == dst) return;
      // BFS over (tile, incoming direction) states.
      std::set<std::pair<std::size_t, int>> seen;
      std::queue<std::pair<TileCoord, int>> frontier;
      frontier.push({src, -1});
      while (!frontier.empty()) {
        const auto [cur, in] = frontier.front();
        frontier.pop();
        const RouteChoices c = odd_even_route(src, cur, dst);
        for (int i = 0; i < c.count; ++i) {
          const Direction out = c.dirs[i];
          if (in >= 0) {
            const auto in_dir = static_cast<Direction>(in);
            const bool en_es =
                in_dir == Direction::East &&
                (out == Direction::North || out == Direction::South);
            const bool nw_sw =
                (in_dir == Direction::North || in_dir == Direction::South) &&
                out == Direction::West;
            if (en_es) {
              EXPECT_TRUE((cur.x & 1) != 0 || cur.x == src.x)
                  << "EN/ES turn in even non-source column " << cur.x;
            }
            if (nw_sw) {
              EXPECT_TRUE((cur.x & 1) == 0)
                  << "NW/SW turn in odd column " << cur.x;
            }
          }
          const TileCoord next = step(cur, out);
          if (!grid.contains(next) || next == dst) continue;
          const auto key =
              std::make_pair(grid.index_of(next), static_cast<int>(out));
          if (seen.insert(key).second)
            frontier.push({next, static_cast<int>(out)});
        }
      }
    });
  });
}

TEST(OddEven, ChannelDependencyGraphAcyclic) {
  // The turn model's whole point: no cyclic channel dependencies, hence
  // deadlock freedom without virtual channels.
  EXPECT_TRUE(channel_dependency_graph_is_acyclic(6, 6));
  EXPECT_TRUE(channel_dependency_graph_is_acyclic(5, 7));
}

TEST(OddEven, FullConnectivityWithoutFaults) {
  const FaultMap healthy(TileGrid(8, 8));
  const OddEvenStats stats = census_odd_even(healthy);
  EXPECT_EQ(stats.disconnected, 0u);
  EXPECT_EQ(stats.healthy_pairs, 64u * 63u);
}

TEST(OddEven, RoutesAroundAFaultThatKillsXY) {
  FaultMap faults(TileGrid(8, 8));
  faults.set_faulty({2, 0});
  // XY from (0,0) to (4,3) dies in the row segment; odd-even can climb
  // early.
  EXPECT_FALSE(path_is_healthy(faults, {0, 0}, {4, 3}, NetworkKind::XY));
  EXPECT_TRUE(odd_even_connected(faults, {0, 0}, {4, 3}));
}

TEST(OddEven, MinimalRoutingCannotEscapeSameRowBlockers) {
  // Like DoR, *minimal* odd-even keeps same-row pairs in their row; a
  // blocker between them disconnects the pair (Wu's protocol adds
  // non-minimal escapes; documented limitation).
  FaultMap faults(TileGrid(8, 8));
  faults.set_faulty({3, 2});
  EXPECT_FALSE(odd_even_connected(faults, {0, 2}, {7, 2}));
}

TEST(OddEven, BeatsSingleDoROnRandomFaultMaps) {
  Rng rng(11);
  const TileGrid grid(16, 16);
  double oe = 0.0, xy = 0.0;
  for (int t = 0; t < 10; ++t) {
    const FaultMap faults = FaultMap::random_with_count(grid, 8, rng);
    oe += census_odd_even(faults).pct();
    xy += census_disconnection(faults).single_pct();
  }
  EXPECT_LT(oe, xy);  // adaptivity pays
}

TEST(OddEven, EndpointsMustBeHealthy) {
  FaultMap faults(TileGrid(4, 4));
  faults.set_faulty({0, 0});
  EXPECT_FALSE(odd_even_connected(faults, {0, 0}, {3, 3}));
  EXPECT_FALSE(odd_even_connected(faults, {3, 3}, {0, 0}));
  EXPECT_TRUE(odd_even_connected(faults, {1, 1}, {1, 1}));
}

// ------------------------------------------------ cycle-level adaptive sim

Packet packet_to(TileCoord src, TileCoord dst, std::uint64_t id) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.id = id;
  return p;
}

TEST(OddEvenMesh, DeliversOnHealthyMesh) {
  MeshOptions opt;
  opt.adaptive_odd_even = true;
  MeshNetwork net(FaultMap(TileGrid(8, 8)), NetworkKind::XY, opt);
  std::uint64_t id = 1;
  const TileGrid grid(8, 8);
  Rng rng(5);
  int injected = 0;
  std::vector<Packet> out;
  for (int i = 0; i < 300; ++i) {
    const TileCoord s = grid.coord_of(rng.below(64));
    const TileCoord d = grid.coord_of(rng.below(64));
    if (s == d) continue;
    if (net.inject(packet_to(s, d, id++))) ++injected;
    net.step(out);
  }
  for (int c = 0; c < 500; ++c) net.step(out);
  EXPECT_EQ(static_cast<int>(out.size()), injected);
  EXPECT_EQ(net.stats().dropped_at_fault, 0u);
}

TEST(OddEvenMesh, AdaptsAroundFaultDoRWouldHit) {
  FaultMap faults(TileGrid(8, 8));
  faults.set_faulty({2, 0});

  // DoR XY drops the packet at the dead tile...
  MeshNetwork dor(faults, NetworkKind::XY);
  ASSERT_TRUE(dor.inject(packet_to({0, 0}, {4, 3}, 1)));
  std::vector<Packet> out;
  for (int c = 0; c < 100; ++c) dor.step(out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(dor.stats().dropped_at_fault, 1u);

  // ...the adaptive router walks around it.
  MeshOptions opt;
  opt.adaptive_odd_even = true;
  MeshNetwork oe(faults, NetworkKind::XY, opt);
  ASSERT_TRUE(oe.inject(packet_to({0, 0}, {4, 3}, 2)));
  out.clear();
  for (int c = 0; c < 100; ++c) oe.step(out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(oe.stats().dropped_at_fault, 0u);
}

TEST(OddEvenMesh, DeliveryImpliesAnalysisConnectivity) {
  // The simulator follows one greedy preference among the allowed paths,
  // so sim delivery must imply the BFS analysis says "connected".
  Rng rng(23);
  const TileGrid grid(8, 8);
  const FaultMap faults = FaultMap::random_with_count(grid, 10, rng);
  MeshOptions opt;
  opt.adaptive_odd_even = true;
  for (int trial = 0; trial < 200; ++trial) {
    const TileCoord s = grid.coord_of(rng.below(64));
    const TileCoord d = grid.coord_of(rng.below(64));
    if (s == d || faults.is_faulty(s) || faults.is_faulty(d)) continue;
    MeshNetwork net(faults, NetworkKind::XY, opt);
    if (!net.inject(packet_to(s, d, 1))) continue;
    std::vector<Packet> out;
    for (int c = 0; c < 200 && out.empty(); ++c) net.step(out);
    if (!out.empty()) {
      EXPECT_TRUE(odd_even_connected(faults, s, d))
          << to_string(s) << "->" << to_string(d);
    }
  }
}

// Property: deadlock-free under saturation — everything injected drains.
class OddEvenSaturation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OddEvenSaturation, AllTrafficDrains) {
  MeshOptions opt;
  opt.adaptive_odd_even = true;
  opt.input_queue_capacity = 2;
  MeshNetwork net(FaultMap(TileGrid(6, 6)), NetworkKind::XY, opt);
  Rng rng(GetParam());
  const TileGrid grid(6, 6);
  std::uint64_t id = 1;
  std::vector<Packet> out;
  for (int c = 0; c < 300; ++c) {
    for (int k = 0; k < 4; ++k) {
      const TileCoord s = grid.coord_of(rng.below(36));
      const TileCoord d = grid.coord_of(rng.below(36));
      if (!(s == d)) net.inject(packet_to(s, d, id++));
    }
    net.step(out);
  }
  for (int c = 0; c < 2000 && net.in_flight() > 0; ++c) net.step(out);
  EXPECT_EQ(net.in_flight(), 0u);
  EXPECT_EQ(out.size(), net.stats().injected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OddEvenSaturation,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace wsp::noc
