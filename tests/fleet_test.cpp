// Fault-tolerant fleet dispatch: supervision, chaos invariance, and the
// poison-shard quarantine.
//
// The acceptance property from the module contract: for any chaos
// schedule, the fleet's merged report is byte-identical to the
// undisturbed single-process campaign for every non-quarantined shard.
// These tests exercise it in-process (fork-only workers, no exec) so the
// whole supervision loop — heartbeats, SIGKILL retries, SIGSTOP
// escalation, backoff, quarantine, straggler duplication — runs under
// the sanitizers too.  The process-level exec path is covered by
// tools/fleet_chaos_gate.py driving examples/fleet_campaign.
//
// Fork safety: every dispatch test pins the shared exec pool to one
// thread first — a ThreadPool with no worker threads is safe to fork,
// and the in-process worker children run the campaign on their own
// calling thread.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include "wsp/ckpt/checkpoint.hpp"
#include "wsp/exec/thread_pool.hpp"
#include "wsp/fleet/dispatcher.hpp"
#include "wsp/obs/metrics.hpp"
#include "wsp/resilience/campaign.hpp"

namespace wsp {
namespace {

using fleet::ChaosAction;
using fleet::ChaosEngine;
using fleet::FleetChaosOptions;
using fleet::FleetDispatcher;
using fleet::FleetOptions;
using fleet::FleetReport;
using fleet::ShardSpec;
using fleet::WorkerCommand;
using fleet::WorkerShardArgs;
using resilience::CampaignOptions;
using resilience::DegradationCampaign;
using resilience::DegradationReport;

CampaignOptions small_campaign() {
  CampaignOptions o;
  o.config = SystemConfig::reduced(8, 8);
  o.seed = 11;
  o.run_cycles = 1200;
  o.fault_horizon = 900;
  o.injection_rate = 0.02;
  return o;
}

std::vector<std::uint8_t> report_bytes(
    const std::vector<DegradationReport>& reports) {
  ckpt::Writer w;
  w.u64(reports.size());
  for (const DegradationReport& r : reports) resilience::save_report(w, r);
  return w.bytes();
}

/// Per-test scratch directory for shard snapshot/heartbeat/output files,
/// so concurrently running fleet tests cannot collide in the build cwd.
class TempDir {
 public:
  explicit TempDir(const char* name) : path_(name) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ignored;
    std::filesystem::remove_all(path_, ignored);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Pins the shared exec pool to one thread (fork-safe) for a scope.
class SingleThreadScope {
 public:
  SingleThreadScope() { exec::set_shared_threads(1); }
  ~SingleThreadScope() { exec::set_shared_threads(0); }
};

FleetOptions quick_fleet(const std::string& work_dir, int trials,
                         int shards) {
  FleetOptions o;
  o.trials = trials;
  o.shards = shards;
  o.max_workers = 4;
  o.work_dir = work_dir;
  o.poll_interval_s = 0.005;
  o.heartbeat_timeout_s = 30.0;
  o.term_grace_s = 1.0;
  o.backoff_base_s = 0.01;
  o.backoff_cap_s = 0.05;
  return o;
}

WorkerCommand entry_command(const DegradationCampaign& campaign) {
  WorkerCommand command;
  command.entry = [&campaign](const WorkerShardArgs& args) {
    return fleet::run_worker(campaign, args);
  };
  return command;
}

TEST(FleetPlan, PartitionsTrialsContiguouslyAndExactly) {
  const DegradationCampaign campaign(small_campaign());
  for (const auto& [trials, shards] : std::vector<std::pair<int, int>>{
           {12, 3}, {7, 3}, {5, 8}, {1, 1}, {9, 0}}) {
    FleetOptions o = quick_fleet(".", trials, shards);
    o.trials_per_shard = 4;
    const std::vector<ShardSpec> plan = FleetDispatcher(campaign, o).plan();
    ASSERT_FALSE(plan.empty());
    int next = 0;
    int max_size = 0, min_size = trials;
    for (std::size_t i = 0; i < plan.size(); ++i) {
      EXPECT_EQ(plan[i].shard, static_cast<int>(i));
      EXPECT_EQ(plan[i].first, next) << "contiguous, no gap";
      EXPECT_GE(plan[i].count, 1) << "no empty shards";
      max_size = std::max(max_size, plan[i].count);
      min_size = std::min(min_size, plan[i].count);
      next += plan[i].count;
    }
    EXPECT_EQ(next, trials) << "covers [0, trials) exactly";
    EXPECT_LE(max_size - min_size, 1) << "balanced within one trial";
    if (shards == 0)
      EXPECT_EQ(static_cast<int>(plan.size()),
                (trials + o.trials_per_shard - 1) / o.trials_per_shard);
  }
}

TEST(FleetPlan, BackoffGrowsExponentiallyAndCaps) {
  FleetOptions o;
  o.backoff_base_s = 0.1;
  o.backoff_cap_s = 0.5;
  EXPECT_DOUBLE_EQ(fleet::backoff_delay_s(o, 1), 0.0);
  EXPECT_DOUBLE_EQ(fleet::backoff_delay_s(o, 2), 0.1);
  EXPECT_DOUBLE_EQ(fleet::backoff_delay_s(o, 3), 0.2);
  EXPECT_DOUBLE_EQ(fleet::backoff_delay_s(o, 4), 0.4);
  EXPECT_DOUBLE_EQ(fleet::backoff_delay_s(o, 5), 0.5) << "capped";
  EXPECT_DOUBLE_EQ(fleet::backoff_delay_s(o, 9), 0.5) << "stays capped";
}

TEST(FleetWorker, ArgvRoundTripsAndParsesStrictly) {
  WorkerShardArgs args;
  args.shard = 3;
  args.attempt = 2;
  args.first = 8;
  args.count = 4;
  args.total_trials = 16;
  args.duplicate = true;
  args.out = "out.wsp";
  args.ckpt = "snap.wsp";
  args.heartbeat = "beat.wsp";
  const WorkerShardArgs parsed =
      fleet::parse_worker_argv(fleet::worker_argv(args));
  EXPECT_EQ(parsed.shard, args.shard);
  EXPECT_EQ(parsed.attempt, args.attempt);
  EXPECT_EQ(parsed.first, args.first);
  EXPECT_EQ(parsed.count, args.count);
  EXPECT_EQ(parsed.total_trials, args.total_trials);
  EXPECT_EQ(parsed.duplicate, args.duplicate);
  EXPECT_EQ(parsed.out, args.out);
  EXPECT_EQ(parsed.ckpt, args.ckpt);
  EXPECT_EQ(parsed.heartbeat, args.heartbeat);

  // A garbled command line must die loudly, not run the wrong trials.
  EXPECT_THROW(fleet::parse_worker_argv({"--bogus", "1"}), Error);
  EXPECT_THROW(fleet::parse_worker_argv({"--count"}), Error);
  EXPECT_THROW(fleet::parse_worker_argv({"--count", "two"}), Error);
  EXPECT_THROW(fleet::parse_worker_argv({"--count", "4", "--total", "8"}),
               Error)
      << "--out missing";
}

TEST(FleetWorker, HeartbeatRoundTripsThroughDisk) {
  const TempDir dir("FLEET_heartbeat_test");
  const std::string path = dir.path() + "/beat.wsp";
  const ckpt::Heartbeat hb{3, 2, 17, 42};
  ckpt::save_heartbeat(path, hb);
  EXPECT_EQ(ckpt::load_heartbeat(path), hb);
  EXPECT_THROW(ckpt::load_heartbeat(dir.path() + "/absent.wsp"), ckpt::Error);
}

TEST(FleetDispatch, CleanRunMatchesSingleProcessBytes) {
  const SingleThreadScope single_thread;
  const TempDir dir("FLEET_clean_test");
  const DegradationCampaign campaign(small_campaign());
  const int kTrials = 6;

  const FleetDispatcher dispatcher(campaign,
                                   quick_fleet(dir.path(), kTrials, 3));
  const FleetReport fleet = dispatcher.run(entry_command(campaign));
  EXPECT_TRUE(fleet.complete());
  EXPECT_EQ(fleet.shards_completed, 3);
  EXPECT_EQ(fleet.retries, 0);
  EXPECT_EQ(report_bytes(fleet.reports),
            report_bytes(campaign.run_trials(kTrials)));
}

TEST(FleetDispatch, ChaosKillsResumeByteIdentical) {
  const SingleThreadScope single_thread;
  const TempDir dir("FLEET_chaos_kill_test");
  const DegradationCampaign campaign(small_campaign());
  const int kTrials = 6;

  FleetOptions options = quick_fleet(dir.path(), kTrials, 3);
  options.chaos.enabled = true;
  // Every shard's first attempt is SIGKILLed after one completed trial —
  // no flush, no handler; the retry must resume from the snapshot.
  options.chaos.first_attempt_kill_after = 1;
  const FleetDispatcher dispatcher(campaign, options);
  const FleetReport fleet = dispatcher.run(entry_command(campaign));

  EXPECT_TRUE(fleet.complete()) << "kills are retryable, never quarantine";
  EXPECT_GT(fleet.retries, 0);
  EXPECT_GT(fleet.chaos.kills, 0);
  EXPECT_EQ(report_bytes(fleet.reports),
            report_bytes(campaign.run_trials(kTrials)));
}

TEST(FleetDispatch, StalledWorkerIsEscalatedAndRecovered) {
  const SingleThreadScope single_thread;
  const TempDir dir("FLEET_chaos_stall_test");
  const DegradationCampaign campaign(small_campaign());
  const int kTrials = 4;

  FleetOptions options = quick_fleet(dir.path(), kTrials, 2);
  options.chaos.enabled = true;
  // SIGSTOP each shard's first attempt mid-range and never chaos-resume:
  // the heartbeat deadline must fire and the dispatcher must escalate.
  // Zero grace makes the escalation a hard SIGKILL, so the stopped worker
  // can never slip out by finishing its in-flight trial after the SIGCONT
  // — the re-dispatch path runs deterministically.  (The cooperative
  // SIGTERM-flush path is pinned down by FleetSigterm below.)
  options.chaos.first_attempt_stall_after = 1;
  options.chaos.stall_resume_s = 0.0;
  // Generous deadline and attempt budget: under sanitizers plus a loaded
  // CI box a legitimate trial can run long, and a deadline below the
  // worst trial latency would turn healthy retries into spurious
  // escalations until the shard quarantines.
  options.heartbeat_timeout_s = 3.0;
  options.term_grace_s = 0.0;
  options.max_attempts = 6;
  const FleetDispatcher dispatcher(campaign, options);
  const FleetReport fleet = dispatcher.run(entry_command(campaign));

  EXPECT_TRUE(fleet.complete());
  EXPECT_GT(fleet.chaos.stalls, 0);
  EXPECT_GT(fleet.worker_kills, 0) << "deadline escalation reached SIGKILL";
  EXPECT_GT(fleet.retries, 0) << "escalated attempts are re-dispatched";
  EXPECT_EQ(report_bytes(fleet.reports),
            report_bytes(campaign.run_trials(kTrials)));
}

TEST(FleetDispatch, PoisonShardIsQuarantinedWithPartialCoverage) {
  const SingleThreadScope single_thread;
  const TempDir dir("FLEET_poison_test");
  const DegradationCampaign campaign(small_campaign());
  const int kTrials = 6;
  const int kPoison = 1;

  FleetOptions options = quick_fleet(dir.path(), kTrials, 3);
  options.max_attempts = 2;
  WorkerCommand command = entry_command(campaign);
  command.entry = [&campaign](const WorkerShardArgs& args) {
    if (args.shard == kPoison) return fleet::kWorkerExitError;
    return fleet::run_worker(campaign, args);
  };
  const FleetDispatcher dispatcher(campaign, options);
  const FleetReport fleet = dispatcher.run(command);

  EXPECT_FALSE(fleet.complete()) << "quarantine means partial coverage";
  EXPECT_EQ(fleet.shards_quarantined, 1);
  EXPECT_EQ(fleet.shards_completed, 2);
  ASSERT_EQ(static_cast<int>(fleet.shards.size()), 3);
  EXPECT_TRUE(fleet.shards[kPoison].quarantined);
  EXPECT_EQ(fleet.shards[kPoison].attempts, options.max_attempts)
      << "the whole retry budget was spent before giving up";

  // The merged report covers exactly the completed shards, in trial order.
  const std::vector<DegradationReport> reference =
      campaign.run_trials(kTrials);
  std::vector<DegradationReport> expected;
  for (const fleet::ShardOutcome& s : fleet.shards)
    if (s.completed)
      for (int t = s.first; t < s.first + s.count; ++t)
        expected.push_back(reference[static_cast<std::size_t>(t)]);
  EXPECT_EQ(report_bytes(fleet.reports), report_bytes(expected));

  obs::MetricsRegistry registry;
  fleet::publish_fleet_metrics(fleet, registry);
  EXPECT_EQ(registry.counter("fleet.shards_quarantined").value, 1u);
  EXPECT_EQ(registry.counter("fleet.retries").value,
            static_cast<std::uint64_t>(fleet.retries));
}

TEST(FleetDispatch, StragglerIsReissuedAndStaysByteIdentical) {
  const SingleThreadScope single_thread;
  const TempDir dir("FLEET_straggler_test");
  const DegradationCampaign campaign(small_campaign());
  const int kTrials = 6;
  const int kSlow = 2;

  FleetOptions options = quick_fleet(dir.path(), kTrials, 3);
  options.straggler_factor = 1.0;
  options.straggler_min_s = 0.15;
  WorkerCommand command;
  command.entry = [&campaign](const WorkerShardArgs& args) {
    // The primary copy of one shard dawdles; its re-issued duplicate runs
    // at full speed and should win the race.  The nap dwarfs any
    // plausible fast-shard wall time so the slow shard always crosses
    // the re-issue threshold, even on a loaded sanitizer box.
    if (args.shard == kSlow && !args.duplicate) ::usleep(1000 * 1000);
    return fleet::run_worker(campaign, args);
  };
  const FleetDispatcher dispatcher(campaign, options);
  const FleetReport fleet = dispatcher.run(command);

  EXPECT_TRUE(fleet.complete());
  // Load jitter can push a healthy shard over the threshold too, so the
  // assertion is >= — what must hold exactly is that the *slow* shard was
  // re-issued and that duplication never costs determinism or retries.
  EXPECT_GE(fleet.stragglers_reissued, 1);
  EXPECT_TRUE(fleet.shards[kSlow].straggler_reissued);
  EXPECT_EQ(fleet.retries, 0) << "duplication is not a retry";
  EXPECT_EQ(report_bytes(fleet.reports),
            report_bytes(campaign.run_trials(kTrials)));
}

TEST(FleetChaos, EngineIsDeterministicForASeedAndQuerySequence) {
  FleetChaosOptions options;
  options.enabled = true;
  options.seed = 42;
  options.kill_probability = 0.2;
  options.stall_probability = 0.2;
  ChaosEngine a(options), b(options);
  for (int tick = 0; tick < 200; ++tick)
    for (int shard = 0; shard < 3; ++shard)
      EXPECT_EQ(a.decide(shard, 1, static_cast<std::uint64_t>(tick), false,
                         0.0),
                b.decide(shard, 1, static_cast<std::uint64_t>(tick), false,
                         0.0));
  EXPECT_EQ(a.stats().kills, b.stats().kills);
  EXPECT_EQ(a.stats().stalls, b.stats().stalls);
}

TEST(FleetChaos, DeterministicTriggersFireOncePerShardFirstAttemptOnly) {
  FleetChaosOptions options;
  options.enabled = true;
  options.first_attempt_kill_after = 2;
  ChaosEngine engine(options);
  EXPECT_EQ(engine.decide(0, 1, 1, false, 0.0), ChaosAction::None)
      << "not enough completed trials yet";
  EXPECT_EQ(engine.decide(0, 1, 2, false, 0.0), ChaosAction::Kill);
  EXPECT_EQ(engine.decide(0, 1, 3, false, 0.0), ChaosAction::None)
      << "fires once per shard";
  EXPECT_EQ(engine.decide(0, 2, 3, false, 0.0), ChaosAction::None)
      << "retries are allowed to finish";
  EXPECT_EQ(engine.decide(1, 1, 2, false, 0.0), ChaosAction::Kill)
      << "independent per shard";
  EXPECT_EQ(engine.stats().kills, 2);
}

TEST(FleetSigterm, CheckpointedRunFlushesAndResumes) {
  const TempDir dir("FLEET_sigterm_test");
  const DegradationCampaign campaign(small_campaign());
  const int kTrials = 4;
  const int kPreemptAfter = 2;

  resilience::CampaignCheckpointOptions ck;
  ck.path = dir.path() + "/snap.wsp";
  ck.every_trials = 1;
  ck.flush_on_sigterm = true;
  ck.after_checkpoint = [&](int completed) {
    // Self-delivered SIGTERM: the armed handler only sets a flag; the
    // runner notices at the next trial boundary, flushes, and throws.
    if (completed == kPreemptAfter) raise(SIGTERM);
  };
  try {
    campaign.run_trials_checkpointed(kTrials, ck);
    FAIL() << "expected CampaignPreempted";
  } catch (const resilience::CampaignPreempted& e) {
    EXPECT_EQ(e.completed(), kPreemptAfter);
  }
  const resilience::CampaignReportsFile flushed =
      resilience::load_campaign_reports(ck.path);
  EXPECT_EQ(static_cast<int>(flushed.reports.size()), kPreemptAfter)
      << "the final snapshot was flushed before unwinding";

  // Resume without the preemption and finish; bytes must match the
  // uninterrupted run.
  ck.after_checkpoint = nullptr;
  const std::vector<DegradationReport> resumed =
      campaign.run_trials_checkpointed(kTrials, ck);
  EXPECT_EQ(report_bytes(resumed), report_bytes(campaign.run_trials(kTrials)));
}

}  // namespace
}  // namespace wsp
