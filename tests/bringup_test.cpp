// Tests for the bring-up orchestration API (the scripted version of the
// paper's Sections V-VII flow).
#include <gtest/gtest.h>

#include "wsp/arch/bringup.hpp"
#include "wsp/common/error.hpp"
#include "wsp/io/bonding_yield.hpp"

namespace wsp::arch {
namespace {

TEST(Bringup, CleanWaferComesUpWhole) {
  const SystemConfig cfg = SystemConfig::reduced(8, 8);
  const FaultMap faults(cfg.grid());
  const BringupReport r = run_bringup(cfg, faults);
  EXPECT_EQ(r.faulty_tiles, 0u);
  EXPECT_EQ(r.usable_tiles, 64u);
  EXPECT_TRUE(r.single_system_image);
  EXPECT_EQ(r.duty.dead_tiles, 0u);
  EXPECT_EQ(r.connectivity.disconnected_dual, 0u);
  EXPECT_GT(r.screening_tcks, 0u);
  EXPECT_GT(r.boot_load.seconds, 0.0);
}

TEST(Bringup, FaultyTilesAreExcludedFromTheUsableSet) {
  const SystemConfig cfg = SystemConfig::reduced(8, 8);
  FaultMap faults(cfg.grid());
  faults.set_faulty({3, 3});
  faults.set_faulty({5, 6});
  const BringupReport r = run_bringup(cfg, faults);
  EXPECT_EQ(r.faulty_tiles, 2u);
  EXPECT_EQ(r.usable_tiles, 62u);
  EXPECT_TRUE(r.usable.is_faulty({3, 3}));
  EXPECT_TRUE(r.single_system_image);
}

TEST(Bringup, WalledInTileIsUnusableEvenThoughHealthy) {
  const SystemConfig cfg = SystemConfig::reduced(8, 8);
  FaultMap faults(cfg.grid());
  for (TileCoord f : {TileCoord{4, 5}, TileCoord{5, 4}, TileCoord{4, 3},
                      TileCoord{3, 4}})
    faults.set_faulty(f);
  const BringupReport r = run_bringup(cfg, faults);
  // (4,4) is healthy but unclockable and unreachable.
  EXPECT_TRUE(r.usable.is_faulty({4, 4}));
  EXPECT_EQ(r.usable_tiles, 64u - 4u - 1u);
  // With the enclave removed from the usable set, the rest of the wafer
  // is still one system.
  EXPECT_TRUE(r.single_system_image);
}

TEST(Bringup, PartitionedWaferWithOneGeneratorKeepsOneHalf) {
  // A full wall splits the wafer.  With only a west-side generator the
  // east half never receives a clock: it drops out of the usable set, and
  // what remains is a coherent (smaller) system.
  const SystemConfig cfg = SystemConfig::reduced(8, 8);
  FaultMap faults(cfg.grid());
  for (int y = 0; y < 8; ++y) faults.set_faulty({4, y});
  BringupOptions opt;
  opt.clock_generators = {{0, 0}};
  const BringupReport r = run_bringup(cfg, faults, opt);
  EXPECT_GT(r.clock_plan.unreached_healthy_count, 0u);
  EXPECT_EQ(r.usable_tiles, 4u * 8u);  // the west half
  EXPECT_TRUE(r.single_system_image);
}

TEST(Bringup, PartitionedWaferWithGeneratorsOnBothSidesIsTwoSystems) {
  // Clock both halves independently: both stay usable, but they cannot
  // talk — bring-up must refuse the single-system-image claim.
  const SystemConfig cfg = SystemConfig::reduced(8, 8);
  FaultMap faults(cfg.grid());
  for (int y = 0; y < 8; ++y) faults.set_faulty({4, y});
  BringupOptions opt;
  opt.clock_generators = {{0, 0}, {7, 7}};
  const BringupReport r = run_bringup(cfg, faults, opt);
  EXPECT_EQ(r.clock_plan.unreached_healthy_count, 0u);
  EXPECT_EQ(r.usable_tiles, 56u);
  EXPECT_FALSE(r.single_system_image);
}

TEST(Bringup, ExplicitGeneratorsRespected) {
  const SystemConfig cfg = SystemConfig::reduced(8, 8);
  const FaultMap faults(cfg.grid());
  BringupOptions opt;
  opt.clock_generators = {{0, 0}, {7, 7}};
  const BringupReport r = run_bringup(cfg, faults, opt);
  EXPECT_TRUE(r.clock_plan.tiles[cfg.grid().index_of({0, 0})].is_generator);
  EXPECT_TRUE(r.clock_plan.tiles[cfg.grid().index_of({7, 7})].is_generator);
  // Two opposite generators halve the worst forwarding depth vs one.
  EXPECT_LE(r.clock_plan.max_hops, 7 + 7);
}

TEST(Bringup, EndToEndFromMonteCarloAssembly) {
  SystemConfig cfg = SystemConfig::reduced(8, 8);
  cfg.pillar_bond_yield = 0.99999;
  Rng rng(77);
  const io::AssemblyDraw draw = io::simulate_assembly(cfg, 1, rng);
  const BringupReport r = run_bringup(cfg, draw.tile_faults);
  EXPECT_EQ(r.faulty_tiles, draw.tile_faults.fault_count());
  EXPECT_LE(r.usable_tiles, 64u - r.faulty_tiles);
  EXPECT_GE(r.usable_tiles + r.faulty_tiles + 1, 64u);  // at most 1 enclave here
}

TEST(Bringup, ValidatesInputs) {
  const SystemConfig cfg = SystemConfig::reduced(4, 4);
  const FaultMap wrong(TileGrid(5, 5));
  EXPECT_THROW(run_bringup(cfg, wrong), Error);
  // A fully faulty edge leaves no generator.
  FaultMap all_faulty(cfg.grid());
  cfg.grid().for_each([&](TileCoord c) { all_faulty.set_faulty(c); });
  EXPECT_THROW(run_bringup(cfg, all_faulty), Error);
}

}  // namespace
}  // namespace wsp::arch
