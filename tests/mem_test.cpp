// Tests for the memory system: global address map, SRAM banks, memory
// chiplet, and the single-layer fallback (Secs. II-c and VIII).
#include <gtest/gtest.h>

#include <unordered_map>

#include "wsp/common/error.hpp"
#include "wsp/common/rng.hpp"
#include "wsp/mem/address_map.hpp"
#include "wsp/mem/memory_chiplet.hpp"
#include "wsp/mem/sram_bank.hpp"

namespace wsp::mem {
namespace {

SystemConfig cfg() { return SystemConfig::paper_prototype(); }

// ----------------------------------------------------------- address map

TEST(AddressMap, SharedSpaceIs512MB) {
  const GlobalAddressMap map(cfg());
  EXPECT_EQ(map.shared_bytes(), 512ull * 1024 * 1024);
  EXPECT_EQ(map.tile_bytes(), 512ull * 1024);  // 4 x 128 KB per tile
}

TEST(AddressMap, DecodeRejectsOutOfRange) {
  const GlobalAddressMap map(cfg());
  EXPECT_FALSE(map.decode(512ull * 1024 * 1024).has_value());
  EXPECT_TRUE(map.decode(512ull * 1024 * 1024 - 4).has_value());
}

TEST(AddressMap, TileMajorLayoutFillsBanksSequentially) {
  const GlobalAddressMap map(cfg(), AddressLayout::TileMajor);
  const auto loc0 = map.decode(0).value();
  EXPECT_EQ(loc0.tile, (TileCoord{0, 0}));
  EXPECT_EQ(loc0.bank, 0);
  EXPECT_EQ(loc0.offset, 0u);
  // Byte 128K lands at bank 1 of tile 0.
  const auto loc1 = map.decode(128 * 1024).value();
  EXPECT_EQ(loc1.bank, 1);
  // Byte 512K is the start of tile 1.
  const auto loc2 = map.decode(512 * 1024).value();
  EXPECT_EQ(loc2.tile, (TileCoord{1, 0}));
  EXPECT_EQ(loc2.bank, 0);
}

TEST(AddressMap, InterleavedLayoutRotatesBanksPerWord) {
  const GlobalAddressMap map(cfg(), AddressLayout::BankInterleaved);
  for (std::uint64_t w = 0; w < 8; ++w) {
    const auto loc = map.decode(w * 4).value();
    EXPECT_EQ(loc.bank, static_cast<int>(w % 4));
    EXPECT_EQ(loc.offset, static_cast<std::uint32_t>((w / 4) * 4));
  }
}

TEST(AddressMap, EncodeDecodeRoundTripTileMajor) {
  const GlobalAddressMap map(cfg(), AddressLayout::TileMajor);
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t addr = rng.below(map.shared_bytes());
    const auto loc = map.decode(addr).value();
    EXPECT_EQ(map.encode(loc), addr);
  }
}

TEST(AddressMap, EncodeDecodeRoundTripInterleaved) {
  const GlobalAddressMap map(cfg(), AddressLayout::BankInterleaved);
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t addr = rng.below(map.shared_bytes());
    const auto loc = map.decode(addr).value();
    EXPECT_EQ(map.encode(loc), addr);
  }
}

TEST(AddressMap, TileBaseMatchesDecode) {
  const GlobalAddressMap map(cfg());
  for (const TileCoord t : {TileCoord{0, 0}, TileCoord{5, 3}, TileCoord{31, 31}}) {
    const auto loc = map.decode(map.tile_base(t)).value();
    EXPECT_EQ(loc.tile, t);
    EXPECT_EQ(loc.bank, 0);
    EXPECT_EQ(loc.offset, 0u);
  }
}

TEST(AddressMap, EncodeValidatesLocation) {
  const GlobalAddressMap map(cfg());
  EXPECT_THROW(map.encode({{40, 0}, 0, 0}), Error);
  EXPECT_THROW(map.encode({{0, 0}, 7, 0}), Error);
  EXPECT_THROW(map.encode({{0, 0}, 0, 1u << 20}), Error);
}

// ------------------------------------------------------------- SRAM bank

TEST(SramBank, WordReadWriteRoundTrip) {
  SramBank bank(128 * 1024);
  bank.write_word(0, 0xDEADBEEF);
  bank.write_word(128 * 1024 - 4, 42);
  EXPECT_EQ(bank.read_word(0), 0xDEADBEEFu);
  EXPECT_EQ(bank.read_word(128 * 1024 - 4), 42u);
}

TEST(SramBank, UntouchedReadsZeroAndStaysSparse) {
  SramBank bank(128 * 1024);
  EXPECT_EQ(bank.read_word(64 * 1024), 0u);
  EXPECT_EQ(bank.resident_bytes(), 0u);  // reads do not allocate
  bank.write_word(4096 * 3, 1);
  EXPECT_EQ(bank.resident_bytes(), 4096u);  // one page
}

TEST(SramBank, ByteAccess) {
  SramBank bank(4096);
  bank.write_word(0, 0x04030201);
  EXPECT_EQ(bank.read_byte(0), 0x01);
  EXPECT_EQ(bank.read_byte(3), 0x04);
  bank.write_byte(1, 0xFF);
  EXPECT_EQ(bank.read_word(0), 0x0403FF01u);
}

TEST(SramBank, AlignmentAndRangeEnforced) {
  SramBank bank(4096);
  EXPECT_THROW(bank.read_word(2), Error);
  EXPECT_THROW(bank.write_word(4094, 0), Error);
  EXPECT_THROW(bank.read_byte(4096), Error);
  EXPECT_THROW(SramBank(1000), Error);  // not page aligned
}

TEST(SramBank, SinglePortPerCycle) {
  SramBank bank(4096);
  EXPECT_TRUE(bank.claim_port(10));
  EXPECT_FALSE(bank.claim_port(10));  // busy this cycle
  EXPECT_TRUE(bank.claim_port(11));
  EXPECT_EQ(bank.access_count(), 2u);
}

// --------------------------------------------------------- memory chiplet

TEST(MemoryChiplet, FiveBanksFourShared) {
  MemoryChiplet chip(cfg());
  EXPECT_EQ(chip.bank_count(), 5);
  EXPECT_EQ(chip.shared_bank_count(), 4);
  EXPECT_EQ(chip.local_bank_index(), 4);
  EXPECT_EQ(chip.connected_bytes(), 5ull * 128 * 1024);
}

TEST(MemoryChiplet, CycleAccurateReadWrite) {
  MemoryChiplet chip(cfg());
  EXPECT_TRUE(chip.write(0, 16, 123, /*cycle=*/1).ok());
  const AccessResult r = chip.read(0, 16, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.data, 123u);
}

TEST(MemoryChiplet, AllFiveBanksAccessibleInParallel) {
  // The bandwidth story: five banks, five accesses, one cycle.
  MemoryChiplet chip(cfg());
  for (int b = 0; b < 5; ++b)
    EXPECT_TRUE(chip.write(b, 0, 100 + b, /*cycle=*/7).ok()) << b;
}

TEST(MemoryChiplet, BankPortConflictDetected) {
  MemoryChiplet chip(cfg());
  EXPECT_TRUE(chip.read(2, 0, 5).ok());
  EXPECT_EQ(chip.read(2, 4, 5).status, AccessStatus::BankBusy);
  EXPECT_TRUE(chip.read(2, 4, 6).ok());
}

TEST(MemoryChiplet, BadAddressesRejected) {
  MemoryChiplet chip(cfg());
  EXPECT_EQ(chip.read(9, 0, 1).status, AccessStatus::BadAddress);
  EXPECT_EQ(chip.read(0, 3, 1).status, AccessStatus::BadAddress);
  EXPECT_EQ(chip.read(0, 128 * 1024, 1).status, AccessStatus::BadAddress);
}

TEST(MemoryChiplet, SingleLayerModeLosesThreeBanks) {
  // Sec. VIII: single routing layer connects only the two essential-set
  // banks: capacity falls 60 %, the rest errors as unconnected.
  MemoryChiplet chip(cfg(), /*single_layer_mode=*/true);
  EXPECT_TRUE(chip.bank_connected(0));
  EXPECT_TRUE(chip.bank_connected(1));
  EXPECT_FALSE(chip.bank_connected(2));
  EXPECT_FALSE(chip.bank_connected(4));
  EXPECT_EQ(chip.read(3, 0, 1).status, AccessStatus::BankUnconnected);
  const double lost =
      1.0 - static_cast<double>(chip.connected_bytes()) / (5.0 * 128 * 1024);
  EXPECT_DOUBLE_EQ(lost, 0.6);
}

TEST(MemoryChiplet, PeekPokeBypassTiming) {
  MemoryChiplet chip(cfg());
  chip.poke(4, 8, 77);  // even the local bank
  EXPECT_EQ(chip.peek(4, 8), 77u);
  EXPECT_THROW(chip.peek(5, 0), Error);
}

TEST(MemoryChiplet, DecapAndFeedthroughs) {
  MemoryChiplet chip(cfg());
  EXPECT_NEAR(chip.decap_farads(), 10e-9, 1e-12);  // half of 20 nF/tile
  EXPECT_EQ(chip.feedthrough_count(), 400);
}

// Parameterized: round-trip across many random (bank, offset) pairs.
class BankSweep : public ::testing::TestWithParam<int> {};

TEST_P(BankSweep, RandomAccessPattern) {
  MemoryChiplet chip(cfg());
  const int bank = GetParam();
  Rng rng(static_cast<std::uint64_t>(bank) + 100);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> written;
  for (int i = 0; i < 200; ++i) {
    const auto offset =
        static_cast<std::uint32_t>(rng.below(128 * 1024 / 4)) * 4;
    const auto value = static_cast<std::uint32_t>(rng());
    chip.poke(bank, offset, value);
    written.emplace_back(offset, value);
  }
  // Later writes to the same offset win; verify against a replay map.
  std::unordered_map<std::uint32_t, std::uint32_t> expect;
  for (const auto& [o, v] : written) expect[o] = v;
  for (const auto& [o, v] : expect) EXPECT_EQ(chip.peek(bank, o), v);
}

INSTANTIATE_TEST_SUITE_P(Banks, BankSweep, ::testing::Values(0, 1, 2, 3, 4));

}  // namespace
}  // namespace wsp::mem
