// Tests for the geometric multigrid PDN solver: agreement with the SOR
// golden path on mixed Dirichlet/shunt/sink problems, grid-size-independent
// V-cycle counts, batched multi-RHS equivalence, and bit-identical results
// at every thread count.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "wsp/exec/thread_pool.hpp"
#include "wsp/pdn/resistive_grid.hpp"
#include "wsp/pdn/wafer_pdn.hpp"

namespace wsp::pdn {
namespace {

SolverConfig multigrid_config(double tol = 1e-9) {
  SolverConfig cfg;
  cfg.method = SolverMethod::Multigrid;
  cfg.tol = tol;
  return cfg;
}

/// Edge-supplied power plane: Dirichlet ring at 2.5 V, uniform interior
/// draw — the wafer solve's structure at grid level.
ResistiveGrid make_plane(int n) {
  ResistiveGrid g(n, n);
  g.fill_conductances(5.0, 5.0);
  for (int i = 0; i < n; ++i) {
    g.set_dirichlet(i, 0, 2.5);
    g.set_dirichlet(i, n - 1, 2.5);
    g.set_dirichlet(0, i, 2.5);
    g.set_dirichlet(n - 1, i, 2.5);
  }
  for (int y = 1; y < n - 1; ++y)
    for (int x = 1; x < n - 1; ++x) g.set_current_sink(x, y, 0.02);
  return g;
}

double max_voltage_diff(const ResistiveGrid& a, const ResistiveGrid& b) {
  double max_diff = 0.0;
  for (std::size_t i = 0; i < a.node_count(); ++i)
    max_diff =
        std::max(max_diff, std::fabs(a.voltages()[i] - b.voltages()[i]));
  return max_diff;
}

TEST(Multigrid, MatchesSorOnDirichletRing) {
  // Odd size exercises the no-2^k+1-requirement coarsening path.
  ResistiveGrid sor = make_plane(33);
  ResistiveGrid mg = make_plane(33);
  ASSERT_TRUE(sor.solve(1e-9).converged);
  const SolveStats stats = mg.solve(multigrid_config());
  ASSERT_TRUE(stats.converged);
  EXPECT_LE(max_voltage_diff(sor, mg), 1e-7);
}

TEST(Multigrid, MatchesSorWithShuntsSinksAndInjection) {
  // Mixed boundary conditions: interior Dirichlet posts, shunts to two
  // different references (loads to ground and a thermal-style path), point
  // draws and a current injection, on a non-square odd-sized grid.
  auto build = [] {
    ResistiveGrid g(48, 37);
    g.fill_conductances(2.0, 3.5);
    for (int x = 0; x < 48; ++x) g.set_dirichlet(x, 0, 2.5);
    g.set_dirichlet(10, 20, 2.4);  // interior supply post
    g.set_shunt(20, 30, 0.8, 0.0);
    g.set_shunt(40, 5, 0.3, 1.2);
    g.set_current_sink(25, 18, 0.5);
    g.set_current_sink(5, 35, 0.2);
    g.set_current_sink(45, 30, -0.1);  // injection
    return g;
  };
  ResistiveGrid sor = build();
  ResistiveGrid mg = build();
  ASSERT_TRUE(sor.solve(1e-9).converged);
  ASSERT_TRUE(mg.solve(multigrid_config()).converged);
  EXPECT_LE(max_voltage_diff(sor, mg), 1e-7);
}

TEST(Multigrid, MatchesSorOnPaperPrototypeWafer) {
  const SystemConfig cfg = SystemConfig::paper_prototype();
  WaferPdnOptions sor_opt;
  WaferPdnOptions mg_opt;
  mg_opt.solver.method = SolverMethod::Multigrid;

  WaferPdn sor_pdn(cfg, sor_opt);
  WaferPdn mg_pdn(cfg, mg_opt);
  const PdnReport sor_r = sor_pdn.solve_uniform(1.0);
  const PdnReport mg_r = mg_pdn.solve_uniform(1.0);
  ASSERT_TRUE(sor_r.solver_converged);
  ASSERT_TRUE(mg_r.solver_converged);

  ASSERT_EQ(sor_r.tiles.size(), mg_r.tiles.size());
  double max_diff = 0.0;
  for (std::size_t i = 0; i < sor_r.tiles.size(); ++i) {
    max_diff = std::max(
        max_diff, std::fabs(sor_r.tiles[i].supply_v - mg_r.tiles[i].supply_v));
  }
  EXPECT_LE(max_diff, 1e-6);
  EXPECT_NEAR(sor_r.min_supply_v, mg_r.min_supply_v, 1e-6);
  EXPECT_NEAR(sor_r.total_supply_current_a, mg_r.total_supply_current_a, 1e-3);
}

TEST(Multigrid, VCycleCountIsGridSizeIndependent) {
  // The whole point of the method: where SOR's sweep count grows with
  // resolution, the V-cycle count stays flat from 16x16 to 128x128.
  int min_cycles = 1 << 20;
  int max_cycles = 0;
  for (const int n : {16, 32, 64, 128}) {
    ResistiveGrid g = make_plane(n);
    const SolveStats stats = g.solve(multigrid_config(1e-7));
    ASSERT_TRUE(stats.converged) << "n=" << n;
    min_cycles = std::min(min_cycles, stats.iterations);
    max_cycles = std::max(max_cycles, stats.iterations);
  }
  EXPECT_LE(max_cycles, 10);
  EXPECT_LE(max_cycles - min_cycles, 4);
}

TEST(Multigrid, FarFewerSweepEquivalentsThanSor) {
  ResistiveGrid sor = make_plane(64);
  ResistiveGrid mg = make_plane(64);
  const SolveStats sor_stats = sor.solve(1e-7);
  const SolveStats mg_stats = mg.solve(multigrid_config(1e-7));
  ASSERT_TRUE(sor_stats.converged);
  ASSERT_TRUE(mg_stats.converged);
  EXPECT_GE(sor_stats.fine_sweep_equivalents,
            5.0 * mg_stats.fine_sweep_equivalents);
}

TEST(Multigrid, FmgOffConvergesToSameSolution) {
  ResistiveGrid with_fmg = make_plane(48);
  ResistiveGrid without_fmg = make_plane(48);
  SolverConfig no_fmg = multigrid_config();
  no_fmg.fmg = false;
  const SolveStats a = with_fmg.solve(multigrid_config());
  const SolveStats b = without_fmg.solve(no_fmg);
  ASSERT_TRUE(a.converged);
  ASSERT_TRUE(b.converged);
  EXPECT_LE(max_voltage_diff(with_fmg, without_fmg), 1e-7);
}

TEST(Multigrid, HierarchySurvivesSinkUpdatesAndTracksTopologyEdits) {
  // Sink updates reuse the cached hierarchy (solve 2 must still be right);
  // a topology edit must rebuild it (solve 3 must match a fresh SOR grid).
  ResistiveGrid mg = make_plane(33);
  ASSERT_TRUE(mg.solve(multigrid_config()).converged);

  std::vector<double> heavier = mg.current_sinks();
  for (double& s : heavier) s *= 2.0;
  mg.set_current_sinks(heavier);
  mg.reset_voltages(0.0);
  ASSERT_TRUE(mg.solve(multigrid_config()).converged);

  mg.set_conductance_east(10, 10, 0.01);  // topology change
  mg.reset_voltages(0.0);
  ASSERT_TRUE(mg.solve(multigrid_config()).converged);

  ResistiveGrid sor = make_plane(33);
  sor.set_current_sinks(heavier);
  sor.set_conductance_east(10, 10, 0.01);
  ASSERT_TRUE(sor.solve(1e-9).converged);
  EXPECT_LE(max_voltage_diff(sor, mg), 1e-7);
}

TEST(Multigrid, BitIdenticalAcrossThreadCounts) {
  std::vector<double> baseline;
  for (const int threads : {1, 2, 8}) {
    exec::set_shared_threads(threads);
    ResistiveGrid g = make_plane(64);
    ASSERT_TRUE(g.solve(multigrid_config(1e-7)).converged);
    if (baseline.empty()) {
      baseline = g.voltages();
    } else {
      EXPECT_EQ(g.voltages(), baseline) << "threads=" << threads;
    }
  }
  exec::set_shared_threads(0);
}

TEST(SolveBatch, MultigridMatchesSequentialSolves) {
  ResistiveGrid grid = make_plane(33);
  const SolverConfig cfg = multigrid_config(1e-7);
  const std::size_t nodes = grid.node_count();
  constexpr int kRhs = 8;

  std::vector<std::vector<double>> sinks(kRhs);
  for (int m = 0; m < kRhs; ++m) {
    sinks[m] = grid.current_sinks();
    for (double& s : sinks[m]) s *= 0.5 + 0.25 * m;
    sinks[m][grid.index(4 + 2 * m, 16)] += 0.3;
  }

  std::vector<std::vector<double>> expected(kRhs);
  for (int m = 0; m < kRhs; ++m) {
    grid.set_current_sinks(sinks[m]);
    grid.reset_voltages(0.0);
    ASSERT_TRUE(grid.solve(cfg).converged);
    expected[m] = grid.voltages();
  }

  std::vector<std::vector<double>> got(kRhs, std::vector<double>(nodes, 0.0));
  std::vector<SolveStats> stats(kRhs);
  std::vector<RhsView> views(kRhs);
  for (int m = 0; m < kRhs; ++m) views[m] = RhsView{sinks[m], got[m]};
  grid.solve_batch(views, stats, cfg);
  for (int m = 0; m < kRhs; ++m) {
    EXPECT_TRUE(stats[m].converged) << "rhs " << m;
    EXPECT_EQ(got[m], expected[m]) << "rhs " << m;  // bitwise
  }
}

TEST(SolveBatch, BitIdenticalAcrossThreadCounts) {
  ResistiveGrid grid = make_plane(33);
  const SolverConfig cfg = multigrid_config(1e-7);
  const std::size_t nodes = grid.node_count();
  constexpr int kRhs = 6;

  std::vector<std::vector<double>> sinks(kRhs);
  for (int m = 0; m < kRhs; ++m) {
    sinks[m] = grid.current_sinks();
    sinks[m][grid.index(8 + 3 * m, 20)] += 0.2;
  }

  std::vector<std::vector<double>> baseline;
  for (const int threads : {1, 2, 8}) {
    exec::set_shared_threads(threads);
    std::vector<std::vector<double>> got(kRhs,
                                         std::vector<double>(nodes, 0.0));
    std::vector<SolveStats> stats(kRhs);
    std::vector<RhsView> views(kRhs);
    for (int m = 0; m < kRhs; ++m) views[m] = RhsView{sinks[m], got[m]};
    grid.solve_batch(views, stats, cfg);
    if (baseline.empty()) {
      baseline = got;
    } else {
      EXPECT_EQ(got, baseline) << "threads=" << threads;
    }
  }
  exec::set_shared_threads(0);
}

}  // namespace
}  // namespace wsp::pdn
