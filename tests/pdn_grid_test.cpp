// Tests for the resistive-grid nodal solver against hand-solvable circuits.
#include <gtest/gtest.h>

#include "wsp/common/error.hpp"
#include "wsp/pdn/resistive_grid.hpp"

namespace wsp::pdn {
namespace {

TEST(ResistiveGrid, RejectsDegenerateGrids) {
  EXPECT_THROW(ResistiveGrid(1, 5), Error);
  EXPECT_NO_THROW(ResistiveGrid(2, 2));
}

TEST(ResistiveGrid, VoltageDividerTwoNodes) {
  // 2x2 grid used as a 1-D divider: fix (0,0)=1V, (1,0)=0V via two equal
  // resistors to a middle... simplest: 3x2, chain of two 1-ohm resistors,
  // midpoint must sit at 0.5 V.
  ResistiveGrid g(3, 2);
  g.fill_conductances(1.0, 0.0);  // horizontal chain only
  g.set_dirichlet(0, 0, 1.0);
  g.set_dirichlet(2, 0, 0.0);
  const SolveStats stats = g.solve(1e-10);
  EXPECT_TRUE(stats.converged);
  EXPECT_NEAR(g.voltage(1, 0), 0.5, 1e-8);
}

TEST(ResistiveGrid, OhmsLawSingleSink) {
  // One source node, one load node, single 2-S conductance between them:
  // drawing 1 A must drop 0.5 V.
  ResistiveGrid g(2, 2);
  g.set_conductance_east(0, 0, 2.0);
  g.set_dirichlet(0, 0, 1.0);
  g.set_current_sink(1, 0, 1.0);
  const SolveStats stats = g.solve(1e-12);
  EXPECT_TRUE(stats.converged);
  EXPECT_NEAR(g.voltage(1, 0), 0.5, 1e-9);
  // KCL at the supply: it must deliver exactly the sink current.
  EXPECT_NEAR(g.total_supply_current(), 1.0, 1e-6);
  // P = I^2 / G = 0.5 W dissipated in the resistor.
  EXPECT_NEAR(g.dissipated_power(), 0.5, 1e-6);
}

TEST(ResistiveGrid, SymmetricLoadGivesSymmetricSolution) {
  ResistiveGrid g(9, 9);
  g.fill_conductances(1.0, 1.0);
  for (int x = 0; x < 9; ++x) {
    g.set_dirichlet(x, 0, 1.0);
    g.set_dirichlet(x, 8, 1.0);
  }
  for (int y = 0; y < 9; ++y) {
    g.set_dirichlet(0, y, 1.0);
    g.set_dirichlet(8, y, 1.0);
  }
  g.set_current_sink(4, 4, 0.1);
  ASSERT_TRUE(g.solve(1e-11).converged);
  // 4-fold symmetry of the Laplace solution.
  EXPECT_NEAR(g.voltage(3, 4), g.voltage(5, 4), 1e-8);
  EXPECT_NEAR(g.voltage(4, 3), g.voltage(4, 5), 1e-8);
  EXPECT_NEAR(g.voltage(2, 4), g.voltage(4, 2), 1e-8);
  // The minimum sits at the sink.
  for (int y = 1; y < 8; ++y)
    for (int x = 1; x < 8; ++x)
      EXPECT_GE(g.voltage(x, y), g.voltage(4, 4) - 1e-9);
}

TEST(ResistiveGrid, MaximumPrincipleNoSinks) {
  // With no current sinks, interior voltages must lie between the
  // boundary extremes (discrete maximum principle).
  ResistiveGrid g(6, 6);
  g.fill_conductances(1.0, 1.0);
  for (int x = 0; x < 6; ++x) {
    g.set_dirichlet(x, 0, 1.0);
    g.set_dirichlet(x, 5, 2.0);
  }
  ASSERT_TRUE(g.solve(1e-11).converged);
  for (int y = 1; y < 5; ++y)
    for (int x = 0; x < 6; ++x) {
      EXPECT_GE(g.voltage(x, y), 1.0 - 1e-9);
      EXPECT_LE(g.voltage(x, y), 2.0 + 1e-9);
    }
}

TEST(ResistiveGrid, CurrentConservationManySinks) {
  ResistiveGrid g(12, 12);
  g.fill_conductances(3.0, 2.0);
  for (int x = 0; x < 12; ++x) g.set_dirichlet(x, 0, 2.5);
  double total_load = 0.0;
  for (int y = 2; y < 11; ++y)
    for (int x = 1; x < 11; ++x) {
      g.set_current_sink(x, y, 0.01);
      total_load += 0.01;
    }
  ASSERT_TRUE(g.solve(1e-11).converged);
  EXPECT_NEAR(g.total_supply_current(), total_load, 1e-5);
}

TEST(ResistiveGrid, DeeperNodesDroopMore) {
  // Edge-fed grid with uniform load: voltage decreases monotonically with
  // distance from the powered edge.
  ResistiveGrid g(8, 8);
  g.fill_conductances(1.0, 1.0);
  for (int x = 0; x < 8; ++x) g.set_dirichlet(x, 0, 1.0);
  for (int y = 1; y < 8; ++y)
    for (int x = 0; x < 8; ++x) g.set_current_sink(x, y, 0.001);
  ASSERT_TRUE(g.solve(1e-11).converged);
  for (int y = 1; y < 7; ++y)
    EXPECT_GT(g.voltage(4, y), g.voltage(4, y + 1));
}

TEST(ResistiveGrid, SolverSeedsFromPreviousSolution) {
  ResistiveGrid g(10, 10);
  g.fill_conductances(1.0, 1.0);
  for (int x = 0; x < 10; ++x) g.set_dirichlet(x, 0, 1.0);
  g.set_current_sink(5, 5, 0.01);
  const SolveStats cold = g.solve(1e-10);
  ASSERT_TRUE(cold.converged);
  // Re-solving the identical system from the converged state is ~free.
  const SolveStats warm = g.solve(1e-10);
  EXPECT_TRUE(warm.converged);
  EXPECT_LE(warm.iterations, 2);
}

TEST(ResistiveGrid, ResidualReportsKirchhoffCurrentLaw) {
  // SolveStats.residual is the max nodal current-balance error in amperes
  // (not the omega-scaled update delta).  Recompute KCL by hand at every
  // non-Dirichlet node and compare.
  ResistiveGrid g(8, 8);
  g.fill_conductances(2.0, 3.0);
  for (int x = 0; x < 8; ++x) g.set_dirichlet(x, 0, 1.5);
  for (int y = 1; y < 8; ++y)
    for (int x = 0; x < 8; ++x) g.set_current_sink(x, y, 0.002);
  const SolveStats stats = g.solve(1e-12);
  ASSERT_TRUE(stats.converged);

  double max_kcl = 0.0;
  for (int y = 0; y < 8; ++y)
    for (int x = 0; x < 8; ++x) {
      if (g.is_dirichlet(x, y)) continue;
      double balance = -g.current_sink(x, y);
      if (x > 0) balance += 2.0 * (g.voltage(x - 1, y) - g.voltage(x, y));
      if (x < 7) balance += 2.0 * (g.voltage(x + 1, y) - g.voltage(x, y));
      if (y > 0) balance += 3.0 * (g.voltage(x, y - 1) - g.voltage(x, y));
      if (y < 7) balance += 3.0 * (g.voltage(x, y + 1) - g.voltage(x, y));
      max_kcl = std::max(max_kcl, std::abs(balance));
    }
  // Same quantity, modulo FP association in the by-hand recomputation.
  EXPECT_NEAR(stats.residual, max_kcl, 1e-12);
  // Converged to 1e-12 V updates => nodal balances are tight in amperes.
  EXPECT_LT(stats.residual, 1e-9);
  // And it is NOT the voltage update (which is reported separately).
  EXPECT_GE(stats.max_delta_v, 0.0);
  EXPECT_LT(stats.max_delta_v, 1e-12);
}

TEST(ResistiveGrid, ChebyshevOmegaBeatsHandTunedConstant) {
  // The auto omega derived from the grid dimensions must converge in
  // (meaningfully) fewer sweeps than the legacy hand-tuned 1.9, which
  // over-relaxes smaller grids badly.
  const double omega_auto = ResistiveGrid::chebyshev_omega(16, 16);
  EXPECT_GT(omega_auto, 1.0);
  EXPECT_LT(omega_auto, 2.0);

  // The configuration the estimate models (and the wafer's primary
  // workload): supply on all four edges, loads in the interior.
  auto iterations_with = [](double omega) {
    ResistiveGrid g(16, 16);
    g.fill_conductances(1.0, 1.0);
    for (int x = 0; x < 16; ++x) {
      g.set_dirichlet(x, 0, 1.0);
      g.set_dirichlet(x, 15, 1.0);
    }
    for (int y = 0; y < 16; ++y) {
      g.set_dirichlet(0, y, 1.0);
      g.set_dirichlet(15, y, 1.0);
    }
    for (int y = 1; y < 15; ++y)
      for (int x = 1; x < 15; ++x) g.set_current_sink(x, y, 1e-3);
    const SolveStats s = g.solve(1e-10, 200000, omega);
    EXPECT_TRUE(s.converged);
    return s.iterations;
  };

  const int auto_iters = iterations_with(0.0);   // 0 = Chebyshev default
  const int tuned_iters = iterations_with(1.9);  // the old constant
  EXPECT_LT(auto_iters, tuned_iters / 2);
}

TEST(ResistiveGrid, ChebyshevOmegaGrowsWithGridSize) {
  // Larger grids have slower Jacobi modes and need stronger
  // over-relaxation: omega* is monotone in the grid dimension.
  double prev = 1.0;
  for (const int n : {4, 8, 16, 32, 64, 128}) {
    const double omega = ResistiveGrid::chebyshev_omega(n, n);
    EXPECT_GT(omega, prev);
    EXPECT_LT(omega, 2.0);
    prev = omega;
  }
}

TEST(ResistiveGrid, InvalidArgumentsThrow) {
  ResistiveGrid g(4, 4);
  EXPECT_THROW(g.set_conductance_east(3, 0, 1.0), Error);  // off the edge
  EXPECT_THROW(g.set_conductance_north(0, 3, 1.0), Error);
  EXPECT_THROW(g.set_conductance_east(0, 0, -1.0), Error);
  EXPECT_THROW(g.solve(1e-9, 100, 2.5), Error);  // omega out of range
}

}  // namespace
}  // namespace wsp::pdn
