// Observability layer (wsp::obs) + the metrics-correctness bugfix sweep:
// golden percentile/histogram values against a scalar reference, registry
// determinism, trace recording/export, RunReport serialisation, and the
// exact-value regression tests for the TrafficReport percentile/mean fix,
// Rng::below(0), transient settle detection, and WSP_THREADS parsing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "wsp/common/error.hpp"
#include "wsp/common/rng.hpp"
#include "wsp/exec/thread_pool.hpp"
#include "wsp/noc/traffic.hpp"
#include "wsp/obs/metrics.hpp"
#include "wsp/obs/report.hpp"
#include "wsp/obs/trace.hpp"
#include "wsp/pdn/transient.hpp"

namespace wsp {
namespace {

using obs::Histogram;
using obs::MetricsRegistry;

/// Scalar nearest-rank reference: sort a copy, take element at
/// max(1, ceil(p*n)) - 1.  The histogram's exact path must match this for
/// every sample set and every p.
std::uint64_t reference_percentile(std::vector<std::uint64_t> samples,
                                   double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const auto n = static_cast<double>(samples.size());
  auto rank = static_cast<std::size_t>(std::ceil(p * n));
  rank = std::clamp<std::size_t>(rank, 1, samples.size());
  return samples[rank - 1];
}

// ---------------------------------------------------------------- metrics

TEST(Percentile, EmptyReturnsZero) {
  std::vector<std::uint64_t> s;
  EXPECT_EQ(obs::nearest_rank_percentile(s, 0.5), 0u);
}

TEST(Percentile, SingleSampleIsEveryPercentile) {
  for (const double p : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    std::vector<std::uint64_t> s{7};
    EXPECT_EQ(obs::nearest_rank_percentile(s, p), 7u) << "p=" << p;
  }
}

TEST(Percentile, TwoSamplesTailPercentilesPickTheLarger) {
  // The old floor(p * (n-1)) formula returned index 0 for p95/p99 at n=2 —
  // reporting the MINIMUM as the tail latency.  Nearest rank: rank
  // ceil(0.95*2) = 2, the larger sample.
  std::vector<std::uint64_t> s{10, 20};
  EXPECT_EQ(obs::nearest_rank_percentile(s, 0.50), 10u);
  s = {10, 20};
  EXPECT_EQ(obs::nearest_rank_percentile(s, 0.95), 20u);
  s = {10, 20};
  EXPECT_EQ(obs::nearest_rank_percentile(s, 0.99), 20u);
}

TEST(Percentile, HundredSamplesExactRanks) {
  std::vector<std::uint64_t> base(100);
  for (std::uint64_t i = 0; i < 100; ++i) base[i] = i + 1;  // 1..100
  // Shuffle deterministically; nth_element must not depend on order.
  Rng rng(42);
  for (std::size_t i = base.size(); i > 1; --i)
    std::swap(base[i - 1], base[rng.below(i)]);
  for (const auto& [p, want] :
       {std::pair{0.50, 50u}, {0.95, 95u}, {0.99, 99u}, {1.0, 100u}}) {
    std::vector<std::uint64_t> s = base;
    EXPECT_EQ(obs::nearest_rank_percentile(s, p), want) << "p=" << p;
  }
}

TEST(Histogram, ExactStatsMatchScalarReference) {
  Histogram h;
  std::vector<std::uint64_t> ref;
  Rng rng(7);
  std::uint64_t sum = 0;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.below(100000);
    h.record(v);
    ref.push_back(v);
    sum += v;
  }
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.sum(), sum);
  EXPECT_EQ(h.min(), *std::min_element(ref.begin(), ref.end()));
  EXPECT_EQ(h.max(), *std::max_element(ref.begin(), ref.end()));
  EXPECT_DOUBLE_EQ(h.mean(), static_cast<double>(sum) / 1000.0);
  EXPECT_TRUE(h.exact());
  for (const double p : {0.0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0})
    EXPECT_EQ(h.percentile(p), reference_percentile(ref, p)) << "p=" << p;
}

TEST(Histogram, BucketBoundariesGolden) {
  EXPECT_EQ(Histogram::bucket_of(0), 0);
  EXPECT_EQ(Histogram::bucket_of(1), 1);
  EXPECT_EQ(Histogram::bucket_of(2), 2);
  EXPECT_EQ(Histogram::bucket_of(3), 2);
  EXPECT_EQ(Histogram::bucket_of(4), 3);
  EXPECT_EQ(Histogram::bucket_of(UINT64_MAX), 64);
  EXPECT_EQ(Histogram::bucket_upper_bound(0), 0u);
  EXPECT_EQ(Histogram::bucket_upper_bound(1), 1u);
  EXPECT_EQ(Histogram::bucket_upper_bound(2), 3u);
  EXPECT_EQ(Histogram::bucket_upper_bound(3), 7u);
  EXPECT_EQ(Histogram::bucket_upper_bound(64), UINT64_MAX);
}

TEST(Histogram, MergeMatchesCombinedRecording) {
  Histogram a, b, combined;
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t v = rng.below(5000);
    (i % 2 ? a : b).record(v);
    combined.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.sum(), combined.sum());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  // Same multiset of samples -> identical percentiles.
  for (const double p : {0.5, 0.95, 0.99})
    EXPECT_EQ(a.percentile(p), combined.percentile(p));
}

TEST(Histogram, PastCapDegradesToBucketBoundDeterministically) {
  Histogram h;
  const auto cap = static_cast<std::uint64_t>(Histogram::kExactSampleCap);
  for (std::uint64_t i = 0; i < cap + 3; ++i) h.record(1000);
  EXPECT_FALSE(h.exact());
  EXPECT_EQ(h.count(), cap + 3);
  // All mass in one bucket: the fallback reports min(upper_bound, max).
  EXPECT_EQ(h.percentile(0.5), 1000u);
  EXPECT_EQ(h.percentile(1.0), 1000u);
}

TEST(Registry, IterationIsNameSortedAndLookupIsStable) {
  MetricsRegistry r;
  obs::Counter* z = &r.counter("zeta");
  obs::Counter* a = &r.counter("alpha");
  r.counter("mid").add(5);
  z->add(2);
  a->add(1);
  // Re-lookup returns the same node (pointers survive later insertions).
  EXPECT_EQ(&r.counter("zeta"), z);
  EXPECT_EQ(&r.counter("alpha"), a);
  std::vector<std::string> names;
  for (const auto& [name, c] : r.counters()) names.push_back(name);
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "mid", "zeta"}));
  EXPECT_EQ(r.counter_value("mid"), 5u);
  EXPECT_EQ(r.counter_value("absent"), 0u);
  EXPECT_FALSE(r.empty());
}

TEST(Registry, MergeAddsCountersAndTakesLastGauge) {
  MetricsRegistry a, b;
  a.counter("n").add(3);
  b.counter("n").add(4);
  b.counter("only_b").add(1);
  a.gauge("g").set(1.5);
  b.gauge("g").set(2.5);
  a.histogram("h").record(10);
  b.histogram("h").record(20);
  a.merge(b);
  EXPECT_EQ(a.counter_value("n"), 7u);
  EXPECT_EQ(a.counter_value("only_b"), 1u);
  EXPECT_DOUBLE_EQ(a.gauge("g").value, 2.5);
  EXPECT_EQ(a.histogram("h").count(), 2u);
  EXPECT_EQ(a.histogram("h").percentile(1.0), 20u);
}

// ----------------------------------------------------------------- report

TEST(RunReport, JsonIsDeterministicAndCarriesEveryField) {
  MetricsRegistry r;
  r.counter("noc.issued").add(11);
  r.gauge("pdn.min_supply_v").set(1.375);
  r.histogram("noc.latency").record(12);
  r.histogram("noc.latency").record(30);

  obs::RunReport report("unit");
  report.add_bench({"bench_a", 1.25, 200, 4, 2.0});
  report.add_scalar("traffic", "throughput", 0.5);
  report.add_metrics("noc", r);
  const std::string json = report.to_json();

  EXPECT_NE(json.find("\"report\":\"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"noc.issued\":11"), std::string::npos);
  EXPECT_NE(json.find("\"pdn.min_supply_v\":1.375"), std::string::npos);
  EXPECT_NE(json.find("\"p95\":30"), std::string::npos);
  EXPECT_NE(json.find("\"throughput\":0.5"), std::string::npos);
  // Two identical assemblies serialise byte-identically.
  obs::RunReport again("unit");
  again.add_bench({"bench_a", 1.25, 200, 4, 2.0});
  again.add_scalar("traffic", "throughput", 0.5);
  again.add_metrics("noc", r);
  EXPECT_EQ(json, again.to_json());
}

TEST(RunReport, NonFiniteDoublesSerialiseAsNull) {
  EXPECT_EQ(obs::json_double(std::nan("")), "null");
  EXPECT_EQ(obs::json_double(INFINITY), "null");
  EXPECT_EQ(obs::json_double(0.1), std::string("0.10000000000000001"));
}

// ------------------------------------------------------------------ trace

TEST(Trace, DisabledSpansRecordNothing) {
  obs::Tracer& t = obs::Tracer::instance();
  t.disable();
  t.clear();
  { WSP_TRACE_SPAN("obs.test.disabled"); }
  EXPECT_EQ(t.recorded_spans(), 0u);
}

TEST(Trace, EnabledSpansExportAsChromeEvents) {
  obs::Tracer& t = obs::Tracer::instance();
  t.clear();
  t.set_thread_lane_name("obs-test-main");
  t.enable();
  {
    WSP_TRACE_SPAN("obs.test.outer");
    WSP_TRACE_SPAN("obs.test.inner");
  }
  t.disable();
  EXPECT_EQ(t.recorded_spans(), 2u);
  const std::string json = t.chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("obs.test.outer"), std::string::npos);
  EXPECT_NE(json.find("obs.test.inner"), std::string::npos);
  EXPECT_NE(json.find("obs-test-main"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  t.clear();
  EXPECT_EQ(t.recorded_spans(), 0u);
}

// ------------------------------------- satellite: TrafficReport percentiles

TEST(TrafficLatencies, EmptyZeroesEveryLatencyField) {
  noc::TrafficReport r;
  r.mean_latency = 99.0;  // stale values must be overwritten
  noc::finalize_latencies(r, {});
  EXPECT_EQ(r.latency_samples, 0u);
  EXPECT_DOUBLE_EQ(r.mean_latency, 0.0);
  EXPECT_EQ(r.p50_latency, 0u);
  EXPECT_EQ(r.p95_latency, 0u);
  EXPECT_EQ(r.p99_latency, 0u);
  EXPECT_EQ(r.max_latency, 0u);
}

TEST(TrafficLatencies, SingleSampleIsEveryStatistic) {
  noc::TrafficReport r;
  noc::finalize_latencies(r, {7});
  EXPECT_EQ(r.latency_samples, 1u);
  EXPECT_DOUBLE_EQ(r.mean_latency, 7.0);
  EXPECT_EQ(r.p50_latency, 7u);
  EXPECT_EQ(r.p95_latency, 7u);
  EXPECT_EQ(r.p99_latency, 7u);
  EXPECT_EQ(r.max_latency, 7u);
}

TEST(TrafficLatencies, TwoSamplesTailIsTheLargerNotTheMinimum) {
  // Regression for the floor(p*(n-1)) indexing bug: at n=2 it reported the
  // minimum as p95/p99.
  noc::TrafficReport r;
  noc::finalize_latencies(r, {10, 20});
  EXPECT_EQ(r.latency_samples, 2u);
  EXPECT_DOUBLE_EQ(r.mean_latency, 15.0);
  EXPECT_EQ(r.p50_latency, 10u);
  EXPECT_EQ(r.p95_latency, 20u);
  EXPECT_EQ(r.p99_latency, 20u);
  EXPECT_EQ(r.max_latency, 20u);
}

TEST(TrafficLatencies, HundredSamplesExactValues) {
  std::vector<std::uint64_t> lat(100);
  for (std::uint64_t i = 0; i < 100; ++i) lat[i] = 100 - i;  // 100..1
  noc::TrafficReport r;
  // The report's mean divides by the measured sample count, not by
  // `completed` — a warm-started run (completed > samples) used to deflate
  // the mean.
  r.completed = 100000;
  noc::finalize_latencies(r, lat);
  EXPECT_EQ(r.latency_samples, 100u);
  EXPECT_DOUBLE_EQ(r.mean_latency, 50.5);
  EXPECT_EQ(r.p50_latency, 50u);
  EXPECT_EQ(r.p95_latency, 95u);
  EXPECT_EQ(r.p99_latency, 99u);
  EXPECT_EQ(r.max_latency, 100u);
}

// ------------------------------------------- satellite: Rng::below(0)

TEST(RngBelow, ZeroBoundThrowsInsteadOfReturningZero) {
  Rng rng(1);
  EXPECT_THROW(rng.below(0), Error);
  // The bound above 0 still works after the failed call.
  EXPECT_LT(rng.below(10), 10u);
}

// -------------------------------- satellite: transient settle detection

TEST(TransientSettle, TruncatedRingDoesNotCountAsSettled) {
  // Underdamped loop: big swing, slow loop, tiny decap.  At 98 ns the
  // output is ringing through the band when the horizon ends; the old
  // last-entry logic called that "settled" at the final in-band crossing.
  const pdn::LdoParams ldo;
  pdn::TransientParams p;
  p.decap_f = 2e-9;
  p.loop_tau_s = 40e-9;
  p.loop_gain = 30.0;
  p.dt_s = 0.5e-9;
  const pdn::TransientResult truncated =
      pdn::simulate_load_step(ldo, p, 0.05, 0.25, 50e-9, 98e-9);
  EXPECT_LT(truncated.settle_time_s, 0.0)
      << "mid-ring horizon end must not report a settle time";
}

TEST(TransientSettle, LongHorizonStillSettles) {
  // Same ringing loop with room to decay: the dwell requirement is met and
  // a real settle time comes back.
  const pdn::LdoParams ldo;
  pdn::TransientParams p;
  p.decap_f = 2e-9;
  p.loop_tau_s = 40e-9;
  p.loop_gain = 30.0;
  p.dt_s = 0.5e-9;
  const pdn::TransientResult settled =
      pdn::simulate_load_step(ldo, p, 0.05, 0.25, 50e-9, 2000e-9);
  EXPECT_GE(settled.settle_time_s, 0.0);
}

TEST(TransientSettle, ExplicitDwellOverridesDefault) {
  const pdn::LdoParams ldo;
  pdn::TransientParams p;  // well-damped defaults
  p.settle_dwell_s = 1e-9;
  const pdn::TransientResult r =
      pdn::simulate_load_step(ldo, p, 0.09, 0.29, 100e-9, 400e-9);
  EXPECT_GE(r.settle_time_s, 0.0);
  EXPECT_LT(r.settle_time_s, 33e-9);
}

// ------------------------------------- satellite: WSP_THREADS parsing

TEST(ThreadCountParse, AcceptsPlainPositiveIntegers) {
  EXPECT_EQ(exec::parse_thread_count("1"), 1);
  EXPECT_EQ(exec::parse_thread_count("8"), 8);
  EXPECT_EQ(exec::parse_thread_count(" 16 "), 16);
  EXPECT_EQ(exec::parse_thread_count("65536"), 65536);
}

TEST(ThreadCountParse, RejectsGarbageZeroNegativeAndOverflow) {
  EXPECT_EQ(exec::parse_thread_count(nullptr), std::nullopt);
  EXPECT_EQ(exec::parse_thread_count(""), std::nullopt);
  EXPECT_EQ(exec::parse_thread_count("x"), std::nullopt);
  EXPECT_EQ(exec::parse_thread_count("4x"), std::nullopt);  // old atoi: 4
  EXPECT_EQ(exec::parse_thread_count("4 2"), std::nullopt);
  EXPECT_EQ(exec::parse_thread_count("0"), std::nullopt);
  EXPECT_EQ(exec::parse_thread_count("-3"), std::nullopt);
  EXPECT_EQ(exec::parse_thread_count("65537"), std::nullopt);
  EXPECT_EQ(exec::parse_thread_count("99999999999999999999"), std::nullopt);
}

/// Env fixture: sets WSP_THREADS for one test and restores the prior value
/// (or unsets) on teardown, so the suite can run in any order.
class WspThreadsEnv : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* prev = std::getenv("WSP_THREADS");
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
  }
  void TearDown() override {
    if (had_prev_) {
      ::setenv("WSP_THREADS", prev_.c_str(), 1);
    } else {
      ::unsetenv("WSP_THREADS");
    }
    exec::set_shared_threads(0);
  }
  bool had_prev_ = false;
  std::string prev_;
};

TEST_F(WspThreadsEnv, ValidValueSelectsThatManyThreads) {
  ::setenv("WSP_THREADS", "3", 1);
  exec::set_shared_threads(0);  // drop any cached pool/override
  EXPECT_EQ(exec::default_thread_count(), 3);
}

TEST_F(WspThreadsEnv, GarbageFallsBackToHardwareDefault) {
  ::unsetenv("WSP_THREADS");
  exec::set_shared_threads(0);
  const int hardware = exec::default_thread_count();
  ::setenv("WSP_THREADS", "4x", 1);
  EXPECT_EQ(exec::default_thread_count(), hardware)
      << "malformed WSP_THREADS must fall back, not atoi-truncate to 4";
  ::setenv("WSP_THREADS", "0", 1);
  EXPECT_EQ(exec::default_thread_count(), hardware);
  ::setenv("WSP_THREADS", "-2", 1);
  EXPECT_EQ(exec::default_thread_count(), hardware);
}

}  // namespace
}  // namespace wsp
