// wsp::ckpt core: the framed container format and its strictness contract.
//
// Everything the checkpoint layer promises at the byte level is asserted
// here: CRC-32 against the published test vector, Writer/Reader
// round-trips for every primitive, the seal/open frame (magic, container
// version, payload kind, state version, size, CRC), and — the robustness
// half — that every malformed input path throws a *typed* ckpt::Error
// (Truncated / BadMagic / BadCrc / VersionMismatch / SchemaMismatch /
// TopologyMismatch / Io) instead of crashing or reading out of bounds.
// Atomic file emission (write-temp-then-rename) and the wsp_common
// plain-data serialisers (FaultMap, LinkFaultSet) round-trip here too.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "wsp/ckpt/checkpoint.hpp"
#include "wsp/common/fault_map.hpp"

namespace wsp {
namespace {

using ckpt::ErrorKind;

ckpt::ErrorKind kind_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const ckpt::Error& e) {
    return e.kind();
  }
  ADD_FAILURE() << "expected ckpt::Error, nothing thrown";
  return ErrorKind::Io;
}

std::vector<std::uint8_t> sample_frame() {
  ckpt::Writer w;
  w.tag(ckpt::fourcc("SMPL"));
  w.u64(0xDEADBEEFCAFEF00Dull);
  w.str("payload");
  return ckpt::seal(ckpt::fourcc("TEST"), 3, w);
}

TEST(Crc32, KnownVectors) {
  const char* check = "123456789";
  EXPECT_EQ(ckpt::crc32(reinterpret_cast<const std::uint8_t*>(check), 9),
            0xCBF43926u);
  EXPECT_EQ(ckpt::crc32(nullptr, 0), 0u);
  const std::uint8_t zero = 0;
  EXPECT_EQ(ckpt::crc32(&zero, 1), 0xD202EF8Du);
}

TEST(WriterReader, EveryPrimitiveRoundTrips) {
  ckpt::Writer w;
  w.u8(0xAB);
  w.u16(0xCDEF);
  w.u32(0x01234567u);
  w.u64(0x89ABCDEF01234567ull);
  w.i32(-42);
  w.i64(-1234567890123456789ll);
  w.f64(-2.5e-308);
  w.b(true);
  w.b(false);
  w.str(std::string("wafer\0scale", 11));  // length-prefixed, NUL-safe
  const std::uint8_t blob[4] = {1, 2, 3, 4};
  w.raw(blob, sizeof blob);
  w.tag(ckpt::fourcc("DONE"));

  ckpt::Reader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xCDEF);
  EXPECT_EQ(r.u32(), 0x01234567u);
  EXPECT_EQ(r.u64(), 0x89ABCDEF01234567ull);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1234567890123456789ll);
  EXPECT_EQ(r.f64(), -2.5e-308);
  EXPECT_TRUE(r.b());
  EXPECT_FALSE(r.b());
  EXPECT_EQ(r.str(), std::string("wafer\0scale", 11));
  std::uint8_t out[4] = {};
  r.raw(out, sizeof out);
  EXPECT_EQ(std::memcmp(out, blob, sizeof blob), 0);
  r.expect_tag(ckpt::fourcc("DONE"), "trailer");
  EXPECT_TRUE(r.done());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(WriterReader, LittleEndianByteOrder) {
  ckpt::Writer w;
  w.u32(0x04030201u);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.bytes()[0], 1);
  EXPECT_EQ(w.bytes()[1], 2);
  EXPECT_EQ(w.bytes()[2], 3);
  EXPECT_EQ(w.bytes()[3], 4);
}

TEST(WriterReader, SpecialDoublesRoundTrip) {
  ckpt::Writer w;
  w.f64(0.0);
  w.f64(-0.0);
  w.f64(1.0 / 3.0);
  ckpt::Reader r(w.bytes());
  EXPECT_EQ(r.f64(), 0.0);
  const double neg_zero = r.f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
  EXPECT_EQ(r.f64(), 1.0 / 3.0);
}

TEST(Reader, ReadPastEndIsTypedTruncation) {
  ckpt::Writer w;
  w.u32(7);
  EXPECT_EQ(kind_of([&] {
              ckpt::Reader r(w.bytes());
              r.u64();  // only 4 bytes available
            }),
            ErrorKind::Truncated);
  EXPECT_EQ(kind_of([&] {
              ckpt::Reader r(w.bytes());
              r.u32();
              r.u8();  // exactly at the end
            }),
            ErrorKind::Truncated);
}

TEST(Reader, WrongTagIsSchemaMismatch) {
  ckpt::Writer w;
  w.tag(ckpt::fourcc("AAAA"));
  EXPECT_EQ(kind_of([&] {
              ckpt::Reader r(w.bytes());
              r.expect_tag(ckpt::fourcc("BBBB"), "section");
            }),
            ErrorKind::SchemaMismatch);
}

TEST(Reader, HostileLengthCannotDriveAllocation) {
  // A corrupt element count far beyond the remaining bytes must be
  // rejected before any allocation is sized from it.
  ckpt::Writer w;
  w.u64(~0ull);  // claims 2^64-1 elements
  w.u32(0);
  EXPECT_EQ(kind_of([&] {
              ckpt::Reader r(w.bytes());
              r.length(8);
            }),
            ErrorKind::Truncated);
  // A count that fits is returned unchanged.
  ckpt::Writer ok;
  ok.u64(3);
  ok.u32(0);
  ok.u32(0);
  ok.u32(0);
  ckpt::Reader r(ok.bytes());
  EXPECT_EQ(r.length(4), 3u);
}

TEST(Frame, SealOpenRoundTrip) {
  ckpt::Writer w;
  w.u64(11);
  w.str("state");
  const std::vector<std::uint8_t> frame =
      ckpt::seal(ckpt::fourcc("TEST"), 7, w);
  ASSERT_EQ(frame.size(), ckpt::kFrameOverhead + w.size());

  const ckpt::Frame f = ckpt::open(frame);
  EXPECT_EQ(f.payload_kind, ckpt::fourcc("TEST"));
  EXPECT_EQ(f.state_version, 7u);
  EXPECT_EQ(f.payload, w.bytes());

  ckpt::Reader r(f.payload);
  EXPECT_EQ(r.u64(), 11u);
  EXPECT_EQ(r.str(), "state");
}

TEST(Frame, EmptyPayloadIsValid) {
  const ckpt::Writer w;
  const ckpt::Frame f = ckpt::open(ckpt::seal(ckpt::fourcc("NULP"), 1, w));
  EXPECT_TRUE(f.payload.empty());
}

TEST(Frame, TruncationAtEveryLengthIsTyped) {
  const std::vector<std::uint8_t> frame = sample_frame();
  for (std::size_t n = 0; n < frame.size(); ++n) {
    EXPECT_EQ(kind_of([&] { ckpt::open(frame.data(), n); }),
              ErrorKind::Truncated)
        << "prefix length " << n;
  }
}

TEST(Frame, BadMagic) {
  std::vector<std::uint8_t> frame = sample_frame();
  frame[0] ^= 0x01;
  EXPECT_EQ(kind_of([&] { ckpt::open(frame); }), ErrorKind::BadMagic);
}

TEST(Frame, UnknownContainerVersion) {
  std::vector<std::uint8_t> frame = sample_frame();
  frame[8] = ckpt::kContainerVersion + 1;  // container version u32 LE @ 8
  EXPECT_EQ(kind_of([&] { ckpt::open(frame); }), ErrorKind::VersionMismatch);
}

TEST(Frame, PayloadBitFlipIsBadCrc) {
  std::vector<std::uint8_t> frame = sample_frame();
  // Flip one bit in every payload byte in turn; each must be caught.
  for (std::size_t i = ckpt::kHeaderSize; i + 4 < frame.size(); ++i) {
    std::vector<std::uint8_t> hit = frame;
    hit[i] ^= 0x40;
    EXPECT_EQ(kind_of([&] { ckpt::open(hit); }), ErrorKind::BadCrc)
        << "payload byte " << (i - ckpt::kHeaderSize);
  }
}

TEST(Frame, CrcFieldBitFlipIsBadCrc) {
  std::vector<std::uint8_t> frame = sample_frame();
  frame.back() ^= 0x80;
  EXPECT_EQ(kind_of([&] { ckpt::open(frame); }), ErrorKind::BadCrc);
}

TEST(Frame, TrailingBytesAreSchemaMismatch) {
  std::vector<std::uint8_t> frame = sample_frame();
  frame.push_back(0);
  EXPECT_EQ(kind_of([&] { ckpt::open(frame); }), ErrorKind::SchemaMismatch);
}

TEST(Frame, OpenExpectRejectsForeignKind) {
  const std::vector<std::uint8_t> frame = sample_frame();
  EXPECT_EQ(ckpt::open_expect(frame, ckpt::fourcc("TEST")).state_version, 3u);
  EXPECT_EQ(
      kind_of([&] { ckpt::open_expect(frame, ckpt::fourcc("NOCS")); }),
      ErrorKind::SchemaMismatch);
}

TEST(Frame, ErrorKindNamesAreStable) {
  EXPECT_STREQ(ckpt::to_string(ErrorKind::BadCrc), "bad crc");
  const ckpt::Error e(ErrorKind::TopologyMismatch, "8x8 vs 16x16");
  EXPECT_NE(std::string(e.what()).find("8x8 vs 16x16"), std::string::npos);
}

// --- atomic file emission ---------------------------------------------------

class TempFile {
 public:
  explicit TempFile(const char* name) : path_(name) {}
  ~TempFile() {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(AtomicWrite, FileRoundTripsAndLeavesNoTemp) {
  const TempFile tmp("CKPT_atomic_test.bin");
  const std::vector<std::uint8_t> frame = sample_frame();
  ckpt::atomic_write_file(tmp.path(), frame.data(), frame.size());
  EXPECT_EQ(ckpt::read_file(tmp.path()), frame);
  std::FILE* leftover = std::fopen((tmp.path() + ".tmp").c_str(), "rb");
  EXPECT_EQ(leftover, nullptr) << "temp file must be renamed away";
  if (leftover) std::fclose(leftover);

  // Overwrite in place: the new content fully replaces the old.
  const std::uint8_t small[3] = {9, 9, 9};
  ckpt::atomic_write_file(tmp.path(), small, sizeof small);
  EXPECT_EQ(ckpt::read_file(tmp.path()).size(), 3u);
}

TEST(AtomicWrite, UnwritableDirectoryIsTypedIo) {
  const std::uint8_t byte = 1;
  EXPECT_EQ(kind_of([&] {
              ckpt::atomic_write_file("no_such_dir/x.bin", &byte, 1);
            }),
            ErrorKind::Io);
  EXPECT_FALSE(ckpt::atomic_write_text("no_such_dir/x.json", "{}"));
}

TEST(AtomicWrite, TextHelperWrites) {
  const TempFile tmp("CKPT_atomic_test.json");
  ASSERT_TRUE(ckpt::atomic_write_text(tmp.path(), "{\"ok\":true}\n"));
  const std::vector<std::uint8_t> bytes = ckpt::read_file(tmp.path());
  EXPECT_EQ(std::string(bytes.begin(), bytes.end()), "{\"ok\":true}\n");
}

TEST(AtomicWrite, ReadMissingFileIsTypedIo) {
  EXPECT_EQ(kind_of([] { ckpt::read_file("CKPT_no_such_file.bin"); }),
            ErrorKind::Io);
}

TEST(FrameFile, SaveLoadRoundTrip) {
  const TempFile tmp("CKPT_frame_test.wsp");
  ckpt::Writer w;
  w.u64(123);
  ckpt::save_frame_file(tmp.path(), ckpt::fourcc("TEST"), 2, w);
  const ckpt::Frame f = ckpt::load_frame_file(tmp.path(), ckpt::fourcc("TEST"));
  EXPECT_EQ(f.state_version, 2u);
  EXPECT_EQ(f.payload, w.bytes());
  EXPECT_EQ(kind_of([&] {
              ckpt::load_frame_file(tmp.path(), ckpt::fourcc("CAMP"));
            }),
            ErrorKind::SchemaMismatch);
  EXPECT_EQ(kind_of([] {
              ckpt::load_frame_file("CKPT_no_such.wsp", ckpt::fourcc("TEST"));
            }),
            ErrorKind::Io);
}

// --- wsp_common plain-data serialisers --------------------------------------

TEST(FaultMapCkpt, RoundTrip) {
  const TileGrid grid(6, 4);
  FaultMap map(grid);
  map.set_faulty({1, 2}, true);
  map.set_faulty({5, 0}, true);
  map.set_faulty({0, 3}, true);

  ckpt::Writer w;
  ckpt::save_fault_map(w, map);
  ckpt::Reader r(w.bytes());
  const FaultMap loaded = ckpt::load_fault_map(r, &grid);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(loaded, map);
}

TEST(FaultMapCkpt, ForeignGridIsTopologyMismatch) {
  const TileGrid grid(6, 4);
  ckpt::Writer w;
  ckpt::save_fault_map(w, FaultMap(grid));
  const TileGrid other(4, 6);
  EXPECT_EQ(kind_of([&] {
              ckpt::Reader r(w.bytes());
              ckpt::load_fault_map(r, &other);
            }),
            ErrorKind::TopologyMismatch);
  // nullptr expected-grid accepts any topology.
  ckpt::Reader r(w.bytes());
  const FaultMap any = ckpt::load_fault_map(r, nullptr);
  EXPECT_EQ(any.grid().width(), 6);
  EXPECT_EQ(any.grid().height(), 4);
}

TEST(LinkFaultsCkpt, RoundTrip) {
  const TileGrid grid(5, 5);
  LinkFaultSet links(grid);
  links.set_failed({2, 2}, Direction::East);
  links.set_failed({0, 4}, Direction::South);

  ckpt::Writer w;
  ckpt::save_link_faults(w, links);
  ckpt::Reader r(w.bytes());
  const LinkFaultSet loaded = ckpt::load_link_faults(r, &grid);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(loaded, links);
  EXPECT_EQ(loaded.failed_count(), 2u);

  const TileGrid other(5, 6);
  EXPECT_EQ(kind_of([&] {
              ckpt::Reader again(w.bytes());
              ckpt::load_link_faults(again, &other);
            }),
            ErrorKind::TopologyMismatch);
}

}  // namespace
}  // namespace wsp
