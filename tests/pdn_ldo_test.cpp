// Tests for the LDO behavioural model and the load-step transient
// simulation (Sec. III requirements).
#include <gtest/gtest.h>

#include "wsp/common/error.hpp"
#include "wsp/pdn/ldo.hpp"
#include "wsp/pdn/transient.hpp"

namespace wsp::pdn {
namespace {

constexpr double kPeakLoadA = 0.29;  // ~350 mW / 1.21 V

TEST(Ldo, RegulatesAcrossTheWholeInputRange) {
  // The paper's key LDO requirement: stable output from 1.4 V to 2.5 V in.
  const Ldo ldo;
  for (double v_in = 1.4; v_in <= 2.5; v_in += 0.05) {
    const LdoOperatingPoint op = ldo.evaluate(v_in, kPeakLoadA);
    EXPECT_TRUE(op.in_regulation) << "v_in=" << v_in;
    EXPECT_GE(op.v_out, 1.0);
    EXPECT_LE(op.v_out, 1.2);
    EXPECT_FALSE(op.in_dropout);
  }
}

TEST(Ldo, EfficiencyIsOutputOverInput) {
  const Ldo ldo;
  const LdoOperatingPoint edge = ldo.evaluate(2.5, kPeakLoadA);
  const LdoOperatingPoint center = ldo.evaluate(1.4, kPeakLoadA);
  // Edge tiles burn more headroom: efficiency ~ V_out / V_in.
  EXPECT_NEAR(edge.efficiency, edge.v_out / 2.5, 0.02);
  EXPECT_NEAR(center.efficiency, center.v_out / 1.4, 0.02);
  EXPECT_GT(center.efficiency, edge.efficiency);
}

TEST(Ldo, PassThroughCurrent) {
  // An LDO's input current equals load + quiescent, independent of V_in —
  // the property that makes the wafer a constant-current load (~290 A).
  const Ldo ldo;
  const double i1 = ldo.evaluate(2.5, kPeakLoadA).i_in;
  const double i2 = ldo.evaluate(1.4, kPeakLoadA).i_in;
  EXPECT_NEAR(i1, i2, 1e-12);
  EXPECT_NEAR(i1, kPeakLoadA + ldo.params().quiescent_a, 1e-12);
}

TEST(Ldo, DropoutBelowHeadroom) {
  const Ldo ldo;
  const LdoOperatingPoint op = ldo.evaluate(1.0, kPeakLoadA);
  EXPECT_TRUE(op.in_dropout);
  EXPECT_FALSE(op.in_regulation);
  EXPECT_LT(op.v_out, 1.0);
}

TEST(Ldo, OverloadFlagsOutOfRegulation) {
  const Ldo ldo;
  const LdoOperatingPoint op = ldo.evaluate(2.0, 0.5);  // > max_load_a
  EXPECT_FALSE(op.in_regulation);
}

TEST(Ldo, PowerLossIsHeadroomTimesCurrent) {
  const Ldo ldo;
  const LdoOperatingPoint op = ldo.evaluate(2.5, kPeakLoadA);
  const double expected =
      (2.5 - op.v_out) * kPeakLoadA + 2.5 * ldo.params().quiescent_a;
  EXPECT_NEAR(op.power_loss_w, expected, 1e-9);
}

TEST(Ldo, LoadStepDroopFormula) {
  // dV = I * t / C: the paper's 200 mA step on 20 nF with a 4 ns loop
  // response droops 40 mV — comfortably inside the 1.0-1.2 V band.
  EXPECT_NEAR(Ldo::load_step_droop(0.2, 20e-9, 4e-9), 0.04, 1e-12);
  EXPECT_THROW(Ldo::load_step_droop(0.2, 0.0, 4e-9), Error);
}

TEST(Ldo, RegulationHoldsWithPaperDecap) {
  const Ldo ldo;
  EXPECT_TRUE(ldo.regulation_holds(1.4, kPeakLoadA, 0.2, 20e-9, 4e-9));
  // With 20x less decap the same step would violate the band.
  EXPECT_FALSE(ldo.regulation_holds(1.4, kPeakLoadA, 0.2, 1e-9, 4e-9));
}

TEST(Ldo, BadParamsRejected) {
  LdoParams p;
  p.dropout_v = 0.0;
  EXPECT_THROW(Ldo{p}, Error);
  p = LdoParams{};
  p.target_v = 1.3;  // outside the guaranteed band
  EXPECT_THROW(Ldo{p}, Error);
  const Ldo ok;
  EXPECT_THROW(ok.evaluate(2.0, -0.1), Error);
}

// ------------------------------------------------------------- transient

TEST(Transient, StepStaysInsideBand) {
  // Worst-case 200 mA step at the paper's 20 nF/tile decap.
  const LdoParams ldo;
  const TransientParams params;
  const TransientResult r =
      simulate_load_step(ldo, params, 0.09, 0.29, 100e-9, 400e-9);
  EXPECT_TRUE(r.stayed_in_band) << "min=" << r.min_v << " max=" << r.max_v;
  EXPECT_GT(r.min_v, 1.0);
  EXPECT_LT(r.max_v, 1.2);
}

TEST(Transient, SettlesWithinAFewCycles) {
  // "up to 200 mA current demand fluctuation within a few cycles":
  // settling must fit inside ~10 cycles at 300 MHz (33 ns).
  const LdoParams ldo;
  const TransientParams params;
  const TransientResult r =
      simulate_load_step(ldo, params, 0.09, 0.29, 100e-9, 400e-9);
  ASSERT_GE(r.settle_time_s, 0.0);
  EXPECT_LT(r.settle_time_s, 33e-9);
}

TEST(Transient, SmallerDecapDroopsMore) {
  const LdoParams ldo;
  TransientParams big;
  TransientParams small = big;
  small.decap_f = 5e-9;
  const TransientResult rb =
      simulate_load_step(ldo, big, 0.09, 0.29, 50e-9, 300e-9);
  const TransientResult rs =
      simulate_load_step(ldo, small, 0.09, 0.29, 50e-9, 300e-9);
  EXPECT_LT(rs.min_v, rb.min_v);
}

TEST(Transient, LoadReleaseOvershoots) {
  // Dropping the load overshoots upward symmetrically.
  const LdoParams ldo;
  const TransientParams params;
  const TransientResult r =
      simulate_load_step(ldo, params, 0.29, 0.09, 50e-9, 300e-9);
  EXPECT_GT(r.max_v, ldo.target_v);
  EXPECT_TRUE(r.stayed_in_band);
}

TEST(Transient, WaveformIsDense) {
  const LdoParams ldo;
  const TransientParams params;
  const TransientResult r =
      simulate_load_step(ldo, params, 0.1, 0.2, 10e-9, 100e-9);
  EXPECT_GT(r.waveform.size(), 1000u);
  // Time axis strictly increasing.
  for (std::size_t i = 1; i < r.waveform.size(); ++i)
    EXPECT_GT(r.waveform[i].t_s, r.waveform[i - 1].t_s);
}

TEST(Transient, RejectsBadIntegrationStep) {
  const LdoParams ldo;
  TransientParams params;
  params.dt_s = 10e-9;  // coarser than the loop time constant
  EXPECT_THROW(
      simulate_load_step(ldo, params, 0.1, 0.2, 10e-9, 100e-9),
      Error);
}

// Property sweep: for any step size up to the rated 200 mA, the paper
// decap keeps the output in band.
class StepSweep : public ::testing::TestWithParam<double> {};

TEST_P(StepSweep, BandHolds) {
  const LdoParams ldo;
  const TransientParams params;
  const double step = GetParam();
  const TransientResult r =
      simulate_load_step(ldo, params, 0.05, 0.05 + step, 50e-9, 300e-9);
  EXPECT_TRUE(r.stayed_in_band) << "step=" << step;
}

INSTANTIATE_TEST_SUITE_P(Steps, StepSweep,
                         ::testing::Values(0.02, 0.05, 0.1, 0.15, 0.2));

}  // namespace
}  // namespace wsp::pdn
