// Snapshot/resume bit-identity for the stateful subsystems.
//
// The determinism contract of wsp::ckpt: save_state at cycle k, load into
// a freshly constructed object, continue stepping — the resumed run must
// be *bit-identical* to the one that never stopped, proven by comparing
// the re-serialised state (every counter, ring, RNG stream and credit
// word goes through the comparison).  The NoC is exercised at 16x16 and
// 32x32 with runtime faults and link-integrity BER in the window between
// snapshot and comparison, and — because the stepper shards onto the
// shared pool — the equality is asserted at thread counts 1, 2 and 8.
// MeshNetwork, ClockSelector, ResistiveGrid, FaultInjector and the obs
// metric types get the same round-trip treatment, plus the typed-error
// paths for topology/schema mismatches.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "wsp/ckpt/checkpoint.hpp"
#include "wsp/clock/selector.hpp"
#include "wsp/common/fault_map.hpp"
#include "wsp/common/rng.hpp"
#include "wsp/exec/thread_pool.hpp"
#include "wsp/noc/mesh_network.hpp"
#include "wsp/noc/noc_system.hpp"
#include "wsp/obs/metrics.hpp"
#include "wsp/pdn/resistive_grid.hpp"
#include "wsp/resilience/fault_injector.hpp"
#include "wsp/resilience/fault_schedule.hpp"

namespace wsp {
namespace {

std::vector<std::uint8_t> noc_bytes(const noc::NocSystem& noc) {
  ckpt::Writer w;
  noc.save_state(w);
  return w.bytes();
}

// One cycle of seeded traffic from the usable tiles (same generator on
// the reference and the resumed run; its Rng rides in the snapshot).
void inject_traffic(noc::NocSystem& noc, const FaultMap& faults, Rng& rng,
                    double rate) {
  const TileGrid& grid = faults.grid();
  grid.for_each([&](TileCoord src) {
    if (faults.is_faulty(src) || !rng.bernoulli(rate)) return;
    const TileCoord dst = grid.coord_of(rng.below(grid.tile_count()));
    if (dst == src || faults.is_faulty(dst)) return;
    noc.issue(src, dst, noc::PacketType::ReadRequest);
  });
}

struct ResumeResult {
  std::vector<std::uint8_t> straight;  ///< state bytes, never stopped
  std::vector<std::uint8_t> resumed;   ///< state bytes via snapshot/load
};

// Runs `total` cycles with a runtime fault landing mid-window, snapshots
// at `snap_cycle`, resumes into a fresh NocSystem and steps it to the same
// end cycle.  Fault cycle is chosen *after* the snapshot so the resumed
// run must reproduce the fault application too.
ResumeResult run_snapshot_resume(int width, int height, std::uint64_t total,
                                 std::uint64_t snap_cycle,
                                 const noc::NocOptions& opt) {
  const TileGrid grid(width, height);
  FaultMap faults(grid);
  const std::uint64_t fault_cycle = snap_cycle + (total - snap_cycle) / 2;

  noc::NocSystem noc(faults, opt);
  Rng rng(99);
  std::vector<noc::CompletedTransaction> done;
  std::vector<std::uint8_t> snapshot_frame;

  for (std::uint64_t c = 0; c < total; ++c) {
    if (noc.now() == snap_cycle) {
      ckpt::Writer w;
      noc.save_state(w);
      for (std::uint64_t word : rng.state()) w.u64(word);
      ckpt::save_fault_map(w, faults);
      snapshot_frame = ckpt::seal(ckpt::fourcc("TSNP"), 1, w);
    }
    if (noc.now() == fault_cycle) {
      for (int y = 1; y < height - 1; ++y)
        faults.set_faulty({width / 2, y}, true);
      noc.apply_fault_state(faults);
    }
    inject_traffic(noc, faults, rng, 0.02);
    noc.step(done);
  }

  ResumeResult out;
  out.straight = noc_bytes(noc);

  // Resume from the frame into brand-new objects and replay the window.
  const ckpt::Frame frame = ckpt::open_expect(snapshot_frame,
                                              ckpt::fourcc("TSNP"));
  ckpt::Reader r(frame.payload);
  noc::NocSystem resumed(FaultMap(grid), opt);
  resumed.load_state(r);
  std::array<std::uint64_t, 4> rng_state{};
  for (std::uint64_t& word : rng_state) word = r.u64();
  Rng resumed_rng(1);
  resumed_rng.set_state(rng_state);
  FaultMap resumed_faults = ckpt::load_fault_map(r, &grid);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(resumed.now(), snap_cycle);

  while (resumed.now() < total) {
    if (resumed.now() == fault_cycle) {
      for (int y = 1; y < height - 1; ++y)
        resumed_faults.set_faulty({width / 2, y}, true);
      resumed.apply_fault_state(resumed_faults);
    }
    inject_traffic(resumed, resumed_faults, resumed_rng, 0.02);
    resumed.step(done);
  }
  out.resumed = noc_bytes(resumed);
  return out;
}

TEST(NocCkpt, ResumeBitIdentical16x16WithTimeouts) {
  noc::NocOptions opt;
  opt.response_timeout = 300;  // arm timeout/retry so deadlines snapshot
  opt.max_retries = 2;
  const ResumeResult r = run_snapshot_resume(16, 16, 2500, 1000, opt);
  ASSERT_FALSE(r.straight.empty());
  EXPECT_EQ(r.resumed, r.straight);
}

TEST(NocCkpt, ResumeBitIdentical32x32DualNetworkAcrossThreadCounts) {
  noc::NocOptions opt;
  opt.response_timeout = 400;
  // The acceptance case: a 32x32 dual-network NoC snapshot mid-run must
  // resume bit-identically to the straight-through run, and the bytes
  // must not depend on the pool width either.
  std::vector<std::vector<std::uint8_t>> states;
  for (const int threads : {1, 2, 8}) {
    exec::set_shared_threads(threads);
    const ResumeResult r = run_snapshot_resume(32, 32, 1200, 512, opt);
    EXPECT_EQ(r.resumed, r.straight) << "threads=" << threads;
    states.push_back(r.straight);
  }
  exec::set_shared_threads(0);
  EXPECT_EQ(states[0], states[1]);
  EXPECT_EQ(states[0], states[2]);
}

TEST(NocCkpt, ResumeBitIdenticalWithLinkIntegrityBer) {
  // BER channel on: per-link RNG streams and retransmit state must ride
  // the snapshot for the resumed channel noise to replay exactly.
  noc::NocOptions opt;
  opt.response_timeout = 300;
  opt.mesh.integrity.enabled = true;
  opt.mesh.integrity.ber.floor_ber = 1e-4;  // noisy enough to matter
  const ResumeResult r = run_snapshot_resume(12, 12, 1600, 700, opt);
  EXPECT_EQ(r.resumed, r.straight);
}

TEST(NocCkpt, CheckpointFileRoundTrip) {
  const TileGrid grid(8, 8);
  FaultMap faults(grid);
  noc::NocOptions opt;
  noc::NocSystem noc(faults, opt);
  Rng rng(5);
  std::vector<noc::CompletedTransaction> done;
  for (int c = 0; c < 400; ++c) {
    inject_traffic(noc, faults, rng, 0.05);
    noc.step(done);
  }

  const std::string path = "CKPT_noc_file_test.wsp";
  noc.save_checkpoint(path);
  noc::NocSystem loaded(FaultMap(grid), opt);
  loaded.load_checkpoint(path);
  std::remove(path.c_str());

  EXPECT_EQ(noc_bytes(loaded), noc_bytes(noc));
  EXPECT_EQ(loaded.now(), noc.now());
  EXPECT_EQ(loaded.inflight_transactions(), noc.inflight_transactions());
  EXPECT_TRUE(loaded.packet_conservation_holds());
}

TEST(NocCkpt, ForeignGridIsTypedError) {
  const TileGrid small(8, 8);
  noc::NocOptions opt;
  noc::NocSystem source(FaultMap(small), opt);
  ckpt::Writer w;
  source.save_state(w);

  const TileGrid big(16, 16);
  noc::NocSystem target(FaultMap(big), opt);
  ckpt::Reader r(w.bytes());
  try {
    target.load_state(r);
    FAIL() << "expected ckpt::Error";
  } catch (const ckpt::Error& e) {
    EXPECT_EQ(e.kind(), ckpt::ErrorKind::TopologyMismatch);
  }
}

TEST(MeshCkpt, ResumeBitIdenticalMidFlight) {
  const TileGrid grid(10, 10);
  FaultMap faults(grid);
  faults.set_faulty({4, 4}, true);
  const noc::MeshOptions opt;

  noc::MeshNetwork mesh(faults, noc::NetworkKind::XY, opt);
  Rng rng(17);
  std::vector<noc::Packet> ejected;
  std::uint64_t next_id = 1;
  auto drive = [&](noc::MeshNetwork& m, Rng& r, int cycles) {
    for (int c = 0; c < cycles; ++c) {
      grid.for_each([&](TileCoord src) {
        if (faults.is_faulty(src) || !r.bernoulli(0.1)) return;
        const TileCoord dst = grid.coord_of(r.below(grid.tile_count()));
        if (dst == src || faults.is_faulty(dst)) return;
        noc::Packet p;
        p.src = src;
        p.dst = dst;
        p.id = next_id++;
        m.inject(p);
      });
      ejected.clear();
      m.step(ejected);
    }
  };
  drive(mesh, rng, 300);  // leave packets in flight

  ckpt::Writer w;
  mesh.save_state(w);
  const std::array<std::uint64_t, 4> rng_state = rng.state();
  const std::uint64_t id_mark = next_id;

  noc::MeshNetwork resumed(faults, noc::NetworkKind::XY, opt);
  ckpt::Reader r(w.bytes());
  resumed.load_state(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(resumed.in_flight(), mesh.in_flight());
  EXPECT_EQ(resumed.recount_in_flight(), resumed.in_flight());

  // Step both 200 more cycles under identical traffic.
  drive(mesh, rng, 200);
  Rng resumed_rng(1);
  resumed_rng.set_state(rng_state);
  next_id = id_mark;
  drive(resumed, resumed_rng, 200);

  ckpt::Writer wa, wb;
  mesh.save_state(wa);
  resumed.save_state(wb);
  EXPECT_EQ(wb.bytes(), wa.bytes());
  EXPECT_TRUE(resumed.conservation_holds());
}

TEST(MeshCkpt, WrongKindIsTypedError) {
  const TileGrid grid(6, 6);
  const FaultMap faults(grid);
  noc::MeshNetwork xy(faults, noc::NetworkKind::XY);
  ckpt::Writer w;
  xy.save_state(w);
  noc::MeshNetwork yx(faults, noc::NetworkKind::YX);
  ckpt::Reader r(w.bytes());
  EXPECT_THROW(yx.load_state(r), ckpt::Error);
}

TEST(ClockCkpt, SelectorResumesMidCount) {
  clock::ClockSelector sel(16);
  sel.begin_auto_select();
  // Feed an asymmetric toggle pattern for 9 steps: E twice as often as N.
  for (int i = 0; i < 9; ++i)
    sel.step({i % 2 == 0, true, false, false});
  ASSERT_EQ(sel.phase(), clock::SelectorPhase::AutoSelect);

  ckpt::Writer w;
  sel.save_state(w);
  clock::ClockSelector resumed(16);
  ckpt::Reader r(w.bytes());
  resumed.load_state(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(resumed.phase(), sel.phase());
  EXPECT_EQ(resumed.count(Direction::East), sel.count(Direction::East));

  // Both must latch the same source on the same future step.
  std::optional<clock::ClockSource> a, b;
  int steps_a = 0, steps_b = 0;
  while (!a) { a = sel.step({true, true, false, false}); ++steps_a; }
  while (!b) { b = resumed.step({true, true, false, false}); ++steps_b; }
  EXPECT_EQ(*a, *b);
  EXPECT_EQ(steps_a, steps_b);
  EXPECT_EQ(*a, clock::ClockSource::ForwardedE);
}

TEST(PdnCkpt, GridResumesWithSolutionSeed) {
  auto build = [] {
    pdn::ResistiveGrid g(24, 24);
    g.fill_conductances(2.0, 1.5);
    for (int x = 0; x < 24; ++x) g.set_dirichlet(x, 0, 2.5);
    for (int y = 4; y < 20; ++y)
      for (int x = 4; x < 20; ++x) g.set_current_sink(x, y, 0.002);
    g.set_shunt(12, 12, 0.05, 0.0);
    return g;
  };

  pdn::ResistiveGrid grid = build();
  grid.solve(1e-6);
  ckpt::Writer w;
  grid.save_state(w);

  pdn::ResistiveGrid resumed(24, 24);
  ckpt::Reader r(w.bytes());
  resumed.load_state(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(resumed.voltages(), grid.voltages());

  // The restored solution seeds the next solve: tightening the tolerance
  // from the snapshot must cost both grids the same iteration count and
  // land on bit-identical voltages.
  const pdn::SolveStats sa = grid.solve(1e-10);
  const pdn::SolveStats sb = resumed.solve(1e-10);
  EXPECT_EQ(sb.iterations, sa.iterations);
  EXPECT_EQ(sb.residual, sa.residual);
  EXPECT_EQ(resumed.voltages(), grid.voltages());

  pdn::ResistiveGrid wrong(24, 25);
  ckpt::Reader r2(w.bytes());
  EXPECT_THROW(wrong.load_state(r2), ckpt::Error);
}

TEST(PdnCkpt, GridResumesUnderMultigrid) {
  // The multigrid hierarchy is derived state: never serialised, rebuilt on
  // demand after a restore.  A snapshot taken mid-campaign must therefore
  // resume byte-for-byte under SolverMethod::Multigrid too — same cycle
  // count, same voltages — with the resumed grid paying only a hierarchy
  // rebuild, not a different iteration history.
  auto build = [] {
    pdn::ResistiveGrid g(24, 24);
    g.fill_conductances(2.0, 1.5);
    for (int x = 0; x < 24; ++x) g.set_dirichlet(x, 0, 2.5);
    for (int y = 4; y < 20; ++y)
      for (int x = 4; x < 20; ++x) g.set_current_sink(x, y, 0.002);
    g.set_shunt(12, 12, 0.05, 0.0);
    return g;
  };
  pdn::SolverConfig cfg;
  cfg.method = pdn::SolverMethod::Multigrid;
  cfg.tol = 1e-6;

  pdn::ResistiveGrid grid = build();
  EXPECT_TRUE(grid.solve(cfg).converged);
  ckpt::Writer w;
  grid.save_state(w);

  pdn::ResistiveGrid resumed(24, 24);
  ckpt::Reader r(w.bytes());
  resumed.load_state(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(resumed.voltages(), grid.voltages());

  cfg.tol = 1e-10;
  const pdn::SolveStats sa = grid.solve(cfg);
  const pdn::SolveStats sb = resumed.solve(cfg);
  EXPECT_TRUE(sa.converged);
  EXPECT_EQ(sb.iterations, sa.iterations);
  EXPECT_EQ(sb.residual, sa.residual);
  EXPECT_EQ(resumed.voltages(), grid.voltages());
}

TEST(InjectorCkpt, ResumeReplaysRemainingSchedule) {
  const TileGrid grid(8, 8);
  Rng rng(31);
  resilience::ScheduleMix mix;
  mix.tile_deaths = 4;
  mix.link_failures = 3;
  mix.ldo_brownouts = 2;
  mix.link_ber_degradations = 2;
  const resilience::FaultSchedule schedule =
      resilience::FaultSchedule::random(grid, mix, 1000, rng);

  resilience::FaultInjector injector(FaultMap(grid), schedule);
  injector.advance_to(500);  // apply roughly half the script

  ckpt::Writer w;
  injector.save_state(w);
  resilience::FaultInjector resumed(FaultMap(grid),
                                    resilience::FaultSchedule{});
  ckpt::Reader r(w.bytes());
  resumed.load_state(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(resumed.faults(), injector.faults());
  EXPECT_EQ(resumed.link_faults(), injector.link_faults());
  EXPECT_EQ(resumed.brownouts(), injector.brownouts());

  // Both runs finish the schedule and must agree on every mutation.
  const auto na = injector.advance_to(2000);
  const auto nb = resumed.advance_to(2000);
  EXPECT_EQ(nb.size(), na.size());
  EXPECT_TRUE(injector.exhausted());
  EXPECT_TRUE(resumed.exhausted());
  ckpt::Writer wa, wb;
  injector.save_state(wa);
  resumed.save_state(wb);
  EXPECT_EQ(wb.bytes(), wa.bytes());
}

TEST(InjectorCkpt, RejectedLoadLeavesInjectorUnchanged) {
  const TileGrid grid(8, 8);
  resilience::FaultSchedule schedule;
  schedule.add({100, RuntimeFaultKind::TileDeath, {3, 3}});
  resilience::FaultInjector source(FaultMap(grid), schedule);
  ckpt::Writer w;
  source.save_state(w);

  const TileGrid other(9, 9);
  resilience::FaultInjector target(FaultMap(other),
                                   resilience::FaultSchedule{});
  ckpt::Writer before;
  target.save_state(before);
  ckpt::Reader r(w.bytes());
  try {
    target.load_state(r);
    FAIL() << "expected ckpt::Error";
  } catch (const ckpt::Error& e) {
    EXPECT_EQ(e.kind(), ckpt::ErrorKind::TopologyMismatch);
  }
  ckpt::Writer after;
  target.save_state(after);
  EXPECT_EQ(after.bytes(), before.bytes()) << "failed load must not mutate";
}

TEST(ObsCkpt, HistogramAndRegistryRoundTrip) {
  obs::MetricsRegistry reg;
  reg.counter("test.count").value = 42;
  reg.gauge("test.gauge").value = -2.75;
  obs::Histogram& h = reg.histogram("test.latency");
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) h.record(rng.below(100000));

  ckpt::Writer w;
  reg.save_state(w);
  obs::MetricsRegistry loaded;
  // Pre-existing metrics absent from the snapshot must be zeroed, and
  // their node addresses must survive the load (handles stay valid).
  obs::Counter& stale = loaded.counter("stale.count");
  stale.value = 9;
  ckpt::Reader r(w.bytes());
  loaded.load_state(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(loaded.counter_value("test.count"), 42u);
  EXPECT_EQ(stale.value, 0u);
  EXPECT_EQ(&stale, &loaded.counter("stale.count"));

  const obs::Histogram& lh = loaded.histogram("test.latency");
  EXPECT_EQ(lh, h);
  EXPECT_EQ(lh.percentile(0.99), h.percentile(0.99));
}

}  // namespace
}  // namespace wsp
