#include "wsp/clock/pll.hpp"
// End-to-end integration: the full bring-up story of the paper, in order.
//
//   assembly (Monte Carlo bonding)  ->  post-assembly JTAG fault isolation
//   ->  clock setup (forwarding over the fault map)  ->  kernel network
//   selection  ->  running a graph workload on the surviving tiles.
#include <gtest/gtest.h>

#include "wsp/clock/duty_cycle.hpp"
#include "wsp/clock/forwarding.hpp"
#include "wsp/io/bonding_yield.hpp"
#include "wsp/noc/connectivity.hpp"
#include "wsp/noc/noc_system.hpp"
#include "wsp/pdn/wafer_pdn.hpp"
#include "wsp/testinfra/dap_chain.hpp"
#include "wsp/workloads/graph_apps.hpp"

namespace wsp {
namespace {

TEST(Integration, FullBringUpOnAssembledWafer) {
  // Use a reduced 8x8 wafer with the paper's per-chiplet I/O counts but a
  // pessimistic pillar yield so the assembly actually has faults to
  // tolerate (the real dual-pillar process is nearly perfect).
  SystemConfig cfg = SystemConfig::reduced(8, 8);
  // Stress the fault-tolerance machinery: per-pad failure 1e-5 over ~2020
  // pads gives ~2% faulty chiplets, so a 64-tile wafer draws a few faults.
  cfg.pillar_bond_yield = 0.99999;

  // --- 1. assembly ---
  // Re-draw until the wafer has faults but is not physically partitioned
  // (a partitioned wafer cannot host a unified-memory computation; the
  // kernel would reject it at bring-up).
  Rng rng(2021);
  io::AssemblyDraw draw = io::simulate_assembly(cfg, 1, rng);
  auto routable = [](const FaultMap& fm) {
    const noc::NetworkSelector sel(fm);
    const auto healthy = fm.healthy_tiles();
    for (std::size_t i = 0; i < healthy.size(); ++i)
      for (std::size_t j = 0; j < healthy.size(); ++j)
        if (i != j && !sel.plan(healthy[i], healthy[j]).reachable)
          return false;
    return true;
  };
  int attempts = 0;
  while ((draw.tile_faults.fault_count() == 0 ||
          draw.tile_faults.fault_count() > 20 ||
          !routable(draw.tile_faults)) &&
         ++attempts < 500)
    draw = io::simulate_assembly(cfg, 1, rng);
  ASSERT_LT(attempts, 500) << "no acceptable assembly draw found";
  const FaultMap& faults = draw.tile_faults;

  // --- 2. post-assembly test: JTAG chain per row isolates faulty tiles ---
  for (int row = 0; row < cfg.array_height; ++row) {
    std::vector<bool> row_faults;
    int first_faulty = -1;
    for (int x = 0; x < cfg.array_width; ++x) {
      const bool f = faults.is_faulty({x, row});
      if (f && first_faulty < 0) first_faulty = x;
      row_faults.push_back(f);
    }
    testinfra::WaferTestChain chain(cfg.array_width, 2, row_faults);
    const auto located = chain.locate_first_faulty();
    if (first_faulty < 0) {
      EXPECT_FALSE(located.has_value()) << "row " << row;
    } else {
      ASSERT_TRUE(located.has_value()) << "row " << row;
      EXPECT_EQ(*located, first_faulty) << "row " << row;
    }
  }

  // --- 3. clock setup from a healthy edge tile ---
  std::vector<TileCoord> generators;
  cfg.grid().for_each([&](TileCoord c) {
    if (generators.empty() && cfg.grid().is_edge(c) && faults.is_healthy(c))
      generators.push_back(c);
  });
  ASSERT_FALSE(generators.empty());
  const clock::ForwardingPlan plan =
      clock::simulate_forwarding(faults, generators);
  EXPECT_TRUE(clock::reachability_matches_bfs(faults, generators, plan));
  const clock::WaferDutyReport duty =
      clock::analyze_plan_duty(plan, cfg.grid(), {});
  EXPECT_EQ(duty.dead_tiles, 0u);  // inversion + DCC keep every clock alive

  // --- 4. the kernel's view: connectivity census over the fault map ---
  const noc::DisconnectionStats census = noc::census_disconnection(faults);
  EXPECT_LE(census.disconnected_dual, census.disconnected_single_xy);

  // --- 5. run BFS on the tiles that are healthy AND clocked ---
  FaultMap usable = faults;
  cfg.grid().for_each([&](TileCoord c) {
    if (faults.is_healthy(c) && !plan.tiles[cfg.grid().index_of(c)].reached)
      usable.set_faulty(c, true);  // unclocked tiles are unusable too
  });
  const workloads::Graph g = workloads::make_grid_graph(16, 16);
  // Source owned by some healthy tile.
  const workloads::GraphAppResult r =
      workloads::run_bfs(cfg, usable, g, 0);
  ASSERT_TRUE(r.quiesced);
  EXPECT_EQ(r.distance, workloads::reference_bfs(g, 0));
}

TEST(Integration, PdnSupportsClockGenerationOnlyAtTheEdge) {
  // Sec. IV's reasoning made quantitative: at peak draw the edge tiles see
  // a stiff supply while center tiles ride the 1.0-1.2 V regulated band,
  // whose ripple exceeds what the PLL tolerates.
  const SystemConfig cfg = SystemConfig::paper_prototype();
  pdn::WaferPdn wafer(cfg, {});
  const pdn::PdnReport report = wafer.solve_uniform(1.0);

  const TileGrid grid = cfg.grid();
  const clock::Pll pll(cfg);
  // Edge tile: near-by off-wafer decap keeps ripple small -> PLL locks.
  const double edge_ripple = 0.02;
  EXPECT_TRUE(pll.generate(100e6, 350e6, edge_ripple).locked);
  // Center tile: the regulated voltage fluctuates across the full band.
  const double center_ripple =
      cfg.regulated_max_v - cfg.regulated_min_v;  // 0.2 Vpp
  EXPECT_FALSE(pll.generate(100e6, 350e6, center_ripple).locked);
  // And the center supply really is the droopy one.
  const double edge_v =
      report.tiles[grid.index_of({0, grid.height() / 2})].supply_v;
  const double center_v =
      report.tiles[grid.index_of({grid.width() / 2, grid.height() / 2})]
          .supply_v;
  EXPECT_GT(edge_v, center_v + 0.5);
}

TEST(Integration, DualNetworkCarriesTrafficAcrossAFaultyWafer) {
  // Five faults on the full 32x32 wafer (the Fig. 6 operating point):
  // every healthy pair with any connectivity must complete round trips.
  SystemConfig cfg = SystemConfig::paper_prototype();
  Rng rng(55);
  const FaultMap faults =
      FaultMap::random_with_count(cfg.grid(), 5, rng);
  noc::NocSystem noc(faults);

  int issued = 0, rejected = 0;
  for (int i = 0; i < 300; ++i) {
    const TileCoord s = cfg.grid().coord_of(rng.below(1024));
    const TileCoord d = cfg.grid().coord_of(rng.below(1024));
    if (faults.is_faulty(s) || faults.is_faulty(d)) continue;
    if (noc.issue(s, d, noc::PacketType::ReadRequest).has_value())
      ++issued;
    else
      ++rejected;
  }
  std::vector<noc::CompletedTransaction> done;
  ASSERT_TRUE(noc.drain(done));
  EXPECT_EQ(static_cast<int>(done.size()), issued);
  // At 5 faults almost everything is routable (Fig. 6: <2% disconnected).
  EXPECT_LT(rejected, issued / 20 + 1);
}

TEST(Integration, SingleLayerWaferStillRunsWorkloads) {
  // Sec. VIII's insurance policy: with one routing layer the machine keeps
  // 2 of 5 banks but the NoC is intact — BFS still runs and verifies.
  const SystemConfig cfg = SystemConfig::reduced(4, 4);
  const FaultMap faults(cfg.grid());
  const workloads::Graph g = workloads::make_grid_graph(8, 8);

  arch::WaferSystem probe(
      cfg, faults,
      [](TileCoord) -> std::unique_ptr<arch::TileHandler> {
        class Noop : public arch::TileHandler {
          void on_message(arch::TileContext&, const arch::Message&) override {}
        };
        return std::make_unique<Noop>();
      },
      {}, /*single_layer_mode=*/true);
  EXPECT_EQ(probe.tile({0, 0}).memory().connected_bytes(),
            2ull * 128 * 1024);

  const workloads::GraphAppResult r = workloads::run_bfs(cfg, faults, g, 0);
  ASSERT_TRUE(r.quiesced);
  EXPECT_EQ(r.distance, workloads::reference_bfs(g, 0));
}

}  // namespace
}  // namespace wsp
