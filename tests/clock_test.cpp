// Tests for Sec. IV: PLL, clock selection FSM, waferscale forwarding
// (Fig. 4) and duty-cycle distortion handling.
#include <gtest/gtest.h>

#include "wsp/clock/duty_cycle.hpp"
#include "wsp/clock/forwarding.hpp"
#include "wsp/clock/pll.hpp"
#include "wsp/clock/selector.hpp"
#include "wsp/common/error.hpp"

namespace wsp::clock {
namespace {

SystemConfig cfg() { return SystemConfig::paper_prototype(); }

// ------------------------------------------------------------------- PLL

TEST(Pll, GeneratesFastClockFromSlowReference) {
  const Pll pll(cfg());
  const PllResult r = pll.generate(50e6, 350e6, 0.01);
  ASSERT_TRUE(r.locked) << r.failure_reason;
  EXPECT_NEAR(r.output_hz, 350e6, 1.0);  // 7 x 50 MHz
}

TEST(Pll, SnapsToNearestIntegerMultiple) {
  const Pll pll(cfg());
  const PllResult r = pll.generate(100e6, 320e6, 0.01);
  ASSERT_TRUE(r.locked);
  EXPECT_NEAR(r.output_hz, 300e6, 1.0);  // round(3.2) = 3
}

TEST(Pll, RejectsInputOutsideCaptureRange) {
  const Pll pll(cfg());
  EXPECT_FALSE(pll.generate(5e6, 300e6, 0.01).locked);    // below 10 MHz
  EXPECT_FALSE(pll.generate(200e6, 300e6, 0.01).locked);  // above 133 MHz
}

TEST(Pll, RejectsTargetsAbove400MHz) {
  const Pll pll(cfg());
  EXPECT_FALSE(pll.generate(100e6, 450e6, 0.01).locked);
}

TEST(Pll, RejectsNoisySupply) {
  // The center-of-wafer regulated supply fluctuates 1.0-1.2 V (0.2 Vpp),
  // which is why only edge tiles can host the generator.
  const Pll pll(cfg());
  EXPECT_FALSE(pll.generate(50e6, 300e6, 0.2).locked);
  EXPECT_TRUE(pll.generate(50e6, 300e6, 0.02).locked);
}

// --------------------------------------------------------------- selector

TEST(ClockSelector, BootsOnJtagClock) {
  const ClockSelector sel;
  EXPECT_EQ(sel.phase(), SelectorPhase::Boot);
  EXPECT_EQ(sel.selected(), ClockSource::Jtag);
  EXPECT_EQ(sel.toggle_threshold(), 16);
}

TEST(ClockSelector, SelectsFirstInputReachingToggleCount) {
  ClockSelector sel(4);
  sel.begin_auto_select();
  // Only the East input toggles.
  for (int i = 0; i < 3; ++i)
    EXPECT_FALSE(sel.step({false, true, false, false}).has_value());
  const auto locked = sel.step({false, true, false, false});
  ASSERT_TRUE(locked.has_value());
  EXPECT_EQ(*locked, ClockSource::ForwardedE);
  EXPECT_EQ(sel.phase(), SelectorPhase::Locked);
}

TEST(ClockSelector, LaterStarterCannotOvertake) {
  ClockSelector sel(4);
  sel.begin_auto_select();
  // South starts 2 steps before West.
  sel.step({false, false, true, false});
  sel.step({false, false, true, false});
  sel.step({false, false, true, true});
  const auto locked = sel.step({false, false, true, true});
  ASSERT_TRUE(locked.has_value());
  EXPECT_EQ(*locked, ClockSource::ForwardedS);
}

TEST(ClockSelector, SimultaneousArrivalBreaksTiesByPortPriority) {
  ClockSelector sel(2);
  sel.begin_auto_select();
  sel.step({true, true, true, true});
  const auto locked = sel.step({true, true, true, true});
  ASSERT_TRUE(locked.has_value());
  EXPECT_EQ(*locked, ClockSource::ForwardedN);  // N has arbiter priority
}

TEST(ClockSelector, SelectionIsSticky) {
  ClockSelector sel(1);
  sel.begin_auto_select();
  ASSERT_TRUE(sel.step({false, false, false, true}).has_value());
  // Later activity on other ports does not change the selection.
  const auto still = sel.step({true, true, true, false});
  ASSERT_TRUE(still.has_value());
  EXPECT_EQ(*still, ClockSource::ForwardedW);
}

TEST(ClockSelector, ForceSelectForEdgeGenerators) {
  ClockSelector sel;
  sel.force_select(ClockSource::Master);
  EXPECT_EQ(sel.phase(), SelectorPhase::Locked);
  EXPECT_EQ(sel.selected(), ClockSource::Master);
}

TEST(ClockSelector, CannotRestartAutoSelectAfterLock) {
  ClockSelector sel;
  sel.force_select(ClockSource::Master);
  EXPECT_THROW(sel.begin_auto_select(), Error);
}

TEST(ClockSelector, DirectionSourceMapping) {
  for (Direction d : kAllDirections)
    EXPECT_EQ(direction_of(forwarded_from(d)), d);
  EXPECT_FALSE(direction_of(ClockSource::Jtag).has_value());
  EXPECT_FALSE(direction_of(ClockSource::Master).has_value());
}

// ------------------------------------------------------------- forwarding

TEST(Forwarding, HealthyWaferFullyClocked) {
  const TileGrid grid(8, 8);
  const FaultMap faults(grid);
  const ForwardingPlan plan = simulate_forwarding(faults, {{0, 0}});
  EXPECT_EQ(plan.reached_count, 64u);
  EXPECT_EQ(plan.unreached_healthy_count, 0u);
  EXPECT_EQ(plan.max_hops, 14);  // Manhattan radius from the corner
}

TEST(Forwarding, HopCountsAreManhattanDistancesOnHealthyWafer) {
  const TileGrid grid(6, 6);
  const FaultMap faults(grid);
  const TileCoord gen{0, 2};
  const ForwardingPlan plan = simulate_forwarding(faults, {gen});
  grid.for_each([&](TileCoord c) {
    const auto& st = plan.tiles[grid.index_of(c)];
    EXPECT_EQ(st.hops_from_generator,
              std::abs(c.x - gen.x) + std::abs(c.y - gen.y));
  });
}

TEST(Forwarding, Fig4_ScenarioReproduced) {
  // The paper's 8x8 example: six faulty tiles, exactly one healthy tile
  // (all four neighbours faulty) cannot receive the forwarded clock.
  const Fig4Scenario sc = make_fig4_scenario();
  EXPECT_EQ(sc.faults.fault_count(), 6u);
  EXPECT_TRUE(sc.faults.all_neighbors_faulty(sc.isolated_tile));
  const ForwardingPlan plan = simulate_forwarding(sc.faults, {sc.generator});
  EXPECT_EQ(plan.unreached_healthy_count, 1u);
  ASSERT_EQ(plan.unreached_healthy.size(), 1u);
  EXPECT_EQ(plan.unreached_healthy[0], sc.isolated_tile);
}

TEST(Forwarding, Fig4_TileWithThreeFaultyNeighborsStillClocked) {
  // The paper's tile "3": three faulty neighbours, one healthy — clocked.
  const Fig4Scenario sc = make_fig4_scenario();
  const TileGrid& grid = sc.faults.grid();
  const TileCoord three_faulty{5, 5};
  int faulty_neighbors = 0;
  for (TileCoord n : grid.neighbors(three_faulty))
    if (sc.faults.is_faulty(n)) ++faulty_neighbors;
  ASSERT_EQ(faulty_neighbors, 3);
  const ForwardingPlan plan = simulate_forwarding(sc.faults, {sc.generator});
  EXPECT_TRUE(plan.tiles[grid.index_of(three_faulty)].reached);
}

TEST(Forwarding, NoSinglePointOfFailureInGeneration) {
  // Any healthy edge tile can generate: pick several and verify coverage.
  const TileGrid grid(8, 8);
  const FaultMap faults(grid);
  for (TileCoord gen : {TileCoord{0, 0}, TileCoord{7, 7}, TileCoord{3, 0},
                        TileCoord{0, 5}}) {
    const ForwardingPlan plan = simulate_forwarding(faults, {gen});
    EXPECT_EQ(plan.reached_count, 64u);
  }
}

TEST(Forwarding, MultipleGeneratorsReduceDepth) {
  const TileGrid grid(16, 16);
  const FaultMap faults(grid);
  const ForwardingPlan one = simulate_forwarding(faults, {{0, 0}});
  const ForwardingPlan four = simulate_forwarding(
      faults, {{0, 0}, {15, 0}, {0, 15}, {15, 15}});
  EXPECT_LT(four.max_hops, one.max_hops);
  EXPECT_EQ(four.reached_count, 256u);
}

TEST(Forwarding, GeneratorMustBeHealthyEdgeTile) {
  const TileGrid grid(8, 8);
  FaultMap faults(grid);
  EXPECT_THROW(simulate_forwarding(faults, {{4, 4}}), Error);  // not edge
  faults.set_faulty({0, 0});
  EXPECT_THROW(simulate_forwarding(faults, {{0, 0}}), Error);  // faulty
  EXPECT_THROW(simulate_forwarding(faults, {}), Error);        // none
}

TEST(Forwarding, InversionParityAlternatesAlongTree) {
  const TileGrid grid(5, 5);
  const FaultMap faults(grid);
  const ForwardingPlan plan = simulate_forwarding(faults, {{0, 0}});
  grid.for_each([&](TileCoord c) {
    const auto& st = plan.tiles[grid.index_of(c)];
    EXPECT_EQ(st.inverted, st.hops_from_generator % 2 != 0);
  });
}

TEST(Forwarding, SelectedInputPointsAtAnEarlierTile) {
  Rng rng(21);
  const TileGrid grid(10, 10);
  const FaultMap faults = FaultMap::random_with_count(grid, 8, rng);
  std::vector<TileCoord> gens;
  grid.for_each([&](TileCoord c) {
    if (grid.is_edge(c) && faults.is_healthy(c) && gens.empty()) gens.push_back(c);
  });
  const ForwardingPlan plan = simulate_forwarding(faults, gens);
  grid.for_each([&](TileCoord c) {
    const auto& st = plan.tiles[grid.index_of(c)];
    if (!st.reached || st.is_generator) return;
    ASSERT_TRUE(st.selected_input.has_value());
    const TileCoord upstream = step(c, *st.selected_input);
    const auto& up = plan.tiles[grid.index_of(upstream)];
    EXPECT_TRUE(up.reached);
    EXPECT_LT(up.lock_time, st.lock_time);
    EXPECT_EQ(st.hops_from_generator, up.hops_from_generator + 1);
  });
}

// Property (the paper's induction argument): forwarding reaches exactly
// the healthy tiles BFS-connected to a generator, for random fault maps.
class ForwardingReachability
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(ForwardingReachability, MatchesBfsOracle) {
  const auto [seed, nfaults] = GetParam();
  Rng rng(seed);
  const TileGrid grid(12, 12);
  FaultMap faults = FaultMap::random_with_count(
      grid, static_cast<std::size_t>(nfaults), rng);
  // Find a healthy edge generator.
  std::vector<TileCoord> gens;
  grid.for_each([&](TileCoord c) {
    if (gens.empty() && grid.is_edge(c) && faults.is_healthy(c))
      gens.push_back(c);
  });
  ASSERT_FALSE(gens.empty());
  const ForwardingPlan plan = simulate_forwarding(faults, gens);
  EXPECT_TRUE(reachability_matches_bfs(faults, gens, plan));
}

INSTANTIATE_TEST_SUITE_P(
    RandomMaps, ForwardingReachability,
    ::testing::Combine(::testing::Values(1, 7, 42, 1234, 777),
                       ::testing::Values(0, 3, 10, 30, 60)));

// ------------------------------------------------------------- duty cycle

TEST(DutyCycle, NaiveForwardingDiesWithinTenTiles) {
  // Paper: "a 5% distortion per tile could kill the clock within just 10
  // tiles".
  DutyCycleOptions opt;
  opt.inverted_forwarding = false;
  opt.dcc_enabled = false;
  opt.distortion_per_hop = 0.05;
  const DutyCycleTrace trace = propagate_duty_cycle(20, opt);
  EXPECT_FALSE(trace.clock_alive);
  EXPECT_LE(trace.died_at_hop, 10);
  EXPECT_GT(trace.died_at_hop, 0);
}

TEST(DutyCycle, InvertedForwardingBoundsExcursion) {
  DutyCycleOptions opt;
  opt.inverted_forwarding = true;
  opt.dcc_enabled = false;
  opt.distortion_per_hop = 0.05;
  // 62 hops: the worst-case forwarding depth on the 32x32 wafer.
  const DutyCycleTrace trace = propagate_duty_cycle(62, opt);
  EXPECT_TRUE(trace.clock_alive);
  EXPECT_LE(trace.worst_excursion, 0.05 + 1e-12);
}

TEST(DutyCycle, DccShrinksResidualDistortion) {
  DutyCycleOptions no_dcc;
  no_dcc.dcc_enabled = false;
  DutyCycleOptions dcc;
  dcc.dcc_enabled = true;
  const DutyCycleTrace a = propagate_duty_cycle(62, no_dcc);
  const DutyCycleTrace b = propagate_duty_cycle(62, dcc);
  EXPECT_LT(b.worst_excursion, a.worst_excursion);
  EXPECT_TRUE(b.clock_alive);
}

TEST(DutyCycle, ZeroHopsIsIdeal) {
  const DutyCycleTrace trace = propagate_duty_cycle(0, {});
  EXPECT_TRUE(trace.clock_alive);
  EXPECT_EQ(trace.duty_per_hop.size(), 1u);
  EXPECT_DOUBLE_EQ(trace.duty_per_hop[0], 0.5);
}

TEST(DutyCycle, WaferReportAllAliveWithPaperDesign) {
  // Full design (inversion + DCC) on a 32x32 wafer: every reached tile
  // has a usable clock.
  const TileGrid grid(32, 32);
  const FaultMap faults(grid);
  const ForwardingPlan plan = simulate_forwarding(faults, {{0, 0}});
  const WaferDutyReport report = analyze_plan_duty(plan, grid, {});
  EXPECT_EQ(report.dead_tiles, 0u);
  EXPECT_LT(report.worst_excursion, 0.06);
}

TEST(DutyCycle, WaferReportNaiveDesignKillsFarTiles) {
  const TileGrid grid(32, 32);
  const FaultMap faults(grid);
  const ForwardingPlan plan = simulate_forwarding(faults, {{0, 0}});
  DutyCycleOptions naive;
  naive.inverted_forwarding = false;
  naive.dcc_enabled = false;
  const WaferDutyReport report = analyze_plan_duty(plan, grid, naive);
  // Everything beyond ~9 hops is dead: the vast majority of the wafer.
  EXPECT_GT(report.dead_tiles, 900u);
}

TEST(DutyCycle, RejectsBadOptions) {
  DutyCycleOptions opt;
  opt.distortion_per_hop = 0.6;
  EXPECT_THROW(propagate_duty_cycle(5, opt), Error);
  opt = {};
  opt.dcc_correction_strength = 1.5;
  EXPECT_THROW(propagate_duty_cycle(5, opt), Error);
  EXPECT_THROW(propagate_duty_cycle(-1, {}), Error);
}

// Property sweep: with inversion enabled the clock survives arbitrarily
// deep forwarding for any per-hop distortion below the pulse limit.
class InversionSurvives : public ::testing::TestWithParam<double> {};

TEST_P(InversionSurvives, DeepChains) {
  DutyCycleOptions opt;
  opt.inverted_forwarding = true;
  opt.dcc_enabled = false;
  opt.distortion_per_hop = GetParam();
  const DutyCycleTrace trace = propagate_duty_cycle(200, opt);
  EXPECT_TRUE(trace.clock_alive) << "d=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Distortions, InversionSurvives,
                         ::testing::Values(0.01, 0.03, 0.05, 0.1, 0.2));

}  // namespace
}  // namespace wsp::clock
