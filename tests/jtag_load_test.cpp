// Bit-accurate JTAG program loading (Sec. VII): the DAP memory-access
// port streams words into core-private SRAMs through the scan chain —
// including the broadcast trick that writes all 14 cores at once — and
// the measured TCK costs ground the analytic load-time model.
#include <gtest/gtest.h>

#include <vector>

#include "wsp/common/rng.hpp"
#include "wsp/mem/sram_bank.hpp"
#include "wsp/testinfra/dap_chain.hpp"
#include "wsp/testinfra/test_time.hpp"

namespace wsp::testinfra {
namespace {

/// A tile chain with real SRAMs behind every DAP.
struct TileWithMemories {
  std::vector<mem::SramBank> banks;
  WaferTestChain chain;

  explicit TileWithMemories(int daps, bool broadcast = false)
      : chain(1, daps, std::vector<bool>(1, false)) {
    banks.reserve(static_cast<std::size_t>(daps));
    for (int d = 0; d < daps; ++d) banks.emplace_back(64 * 1024);
    std::vector<mem::SramBank*> ptrs;
    for (auto& b : banks) ptrs.push_back(&b);
    chain.tile(0).attach_memories(ptrs);
    chain.set_broadcast(broadcast);
  }
};

TEST(JtagLoad, SingleDapWordWrite) {
  TileWithMemories tile(1);
  JtagHost host(tile.chain);
  host.reset();
  host.write_words(0x100, {0xDEADBEEF, 0x12345678}, 1);
  EXPECT_EQ(tile.banks[0].read_word(0x100), 0xDEADBEEFu);
  EXPECT_EQ(tile.banks[0].read_word(0x104), 0x12345678u);
  EXPECT_EQ(tile.banks[0].read_word(0x108), 0u);  // untouched
}

TEST(JtagLoad, ReadBackMatches) {
  TileWithMemories tile(1);
  JtagHost host(tile.chain);
  host.reset();
  const std::vector<std::uint32_t> image{1, 2, 3, 0xCAFEF00D};
  host.write_words(0, image, 1);
  const auto read = host.read_words(0, 4, 1);
  ASSERT_EQ(read.size(), 4u);
  for (int w = 0; w < 4; ++w) EXPECT_EQ(read[w][0], image[w]) << w;
}

TEST(JtagLoad, SerialChainWritesEveryDap) {
  TileWithMemories tile(14);
  JtagHost host(tile.chain);
  host.reset();
  host.write_words(0x40, {0xA5A5A5A5}, 14);
  for (int d = 0; d < 14; ++d)
    EXPECT_EQ(tile.banks[d].read_word(0x40), 0xA5A5A5A5u) << d;
}

TEST(JtagLoad, BroadcastWritesAllFourteenAtOnce) {
  // Fig. 9's optimisation: one DAP's worth of shifting fills all 14
  // private memories.
  TileWithMemories tile(14, /*broadcast=*/true);
  JtagHost host(tile.chain);
  host.reset();
  host.write_words(0, {7, 8, 9}, /*daps_in_path=*/1);
  for (int d = 0; d < 14; ++d) {
    EXPECT_EQ(tile.banks[d].read_word(0), 7u) << d;
    EXPECT_EQ(tile.banks[d].read_word(8), 9u) << d;
  }
}

TEST(JtagLoad, BroadcastTckCostIsFourteenthOfSerial) {
  const std::vector<std::uint32_t> image(64, 0x55AA55AA);

  TileWithMemories serial(14);
  JtagHost h1(serial.chain);
  h1.reset();
  h1.write_words(0, image, 14);

  TileWithMemories bcast(14, true);
  JtagHost h2(bcast.chain);
  h2.reset();
  h2.write_words(0, image, 1);

  // The shift portions scale 14x; fixed per-word state-machine overhead
  // (~10 TCKs) dilutes the end-to-end ratio slightly below that.
  const double ratio = static_cast<double>(h1.tck_count()) /
                       static_cast<double>(h2.tck_count());
  EXPECT_GT(ratio, 10.0);
  EXPECT_LT(ratio, 14.5);
  // Both loads succeeded identically.
  for (int d = 0; d < 14; ++d) {
    EXPECT_EQ(serial.banks[d].read_word(0), 0x55AA55AAu);
    EXPECT_EQ(bcast.banks[d].read_word(0), 0x55AA55AAu);
  }
}

TEST(JtagLoad, MeasuredOverheadGroundsTheAnalyticModel) {
  // The streaming protocol costs ~(32 payload + state-machine) TCKs per
  // word; the analytic model's overhead factor must bracket the measured
  // one from above (it also covers ARM DAP handshakes we do not model).
  TileWithMemories tile(1);
  JtagHost host(tile.chain);
  host.reset();
  const std::vector<std::uint32_t> image(256, 0x01020304);
  const std::uint64_t before = host.tck_count();
  host.write_words(0, image, 1);
  const double tcks_per_bit =
      static_cast<double>(host.tck_count() - before) / (256.0 * 32.0);
  EXPECT_GT(tcks_per_bit, 1.0);
  EXPECT_LT(tcks_per_bit, TestTimeParams{}.protocol_overhead);
}

TEST(JtagLoad, LargeProgramImage) {
  TileWithMemories tile(2);
  JtagHost host(tile.chain);
  host.reset();
  std::vector<std::uint32_t> image;
  Rng rng(9);
  for (int w = 0; w < 1024; ++w)
    image.push_back(static_cast<std::uint32_t>(rng()));
  host.write_words(0, image, 2);
  for (int w = 0; w < 1024; w += 97) {
    EXPECT_EQ(tile.banks[0].read_word(static_cast<std::uint32_t>(w) * 4),
              image[static_cast<std::size_t>(w)]);
    EXPECT_EQ(tile.banks[1].read_word(static_cast<std::uint32_t>(w) * 4),
              image[static_cast<std::size_t>(w)]);
  }
}

TEST(JtagLoad, OutOfRangeWritesAreIgnored) {
  TileWithMemories tile(1);
  JtagHost host(tile.chain);
  host.reset();
  // Address past the 64 KB bank: the DAP guard must drop the write
  // instead of corrupting memory.
  host.write_words(64 * 1024 - 4, {1, 2, 3}, 1);
  EXPECT_EQ(tile.banks[0].read_word(64 * 1024 - 4), 1u);
  // words 2 and 3 fell off the end; nothing else changed
  EXPECT_EQ(tile.banks[0].read_word(0), 0u);
}

TEST(JtagLoad, FaultyDapDoesNotWrite) {
  mem::SramBank bank(64 * 1024);
  DapPort dap(0x1, /*faulty=*/true);
  dap.attach_memory(&bank);
  // Manually drive a write sequence through a single faulty DAP.
  WaferTestChain chain(1, 1, std::vector<bool>(1, true));
  chain.tile(0).dap(0).attach_memory(&bank);
  JtagHost host(chain);
  host.reset();
  host.write_words(0, {0xFFFFFFFF}, 1);
  EXPECT_EQ(bank.read_word(0), 0u);
}

}  // namespace
}  // namespace wsp::testinfra
