// Tests for distributed PageRank: exact agreement with the sequential
// fixed-point reference, across graphs, system sizes and fault maps.
#include <gtest/gtest.h>

#include <numeric>

#include "wsp/common/error.hpp"
#include "wsp/workloads/pagerank.hpp"

namespace wsp::workloads {
namespace {

TEST(PageRank, StarGraphConcentratesRank) {
  // Star: everyone points at vertex 0 (and back).  The hub must end up
  // with far more rank than any leaf.
  Graph g(9);
  for (std::uint32_t v = 1; v < 9; ++v) g.add_undirected_edge(0, v);
  g.finalize();

  const SystemConfig cfg = SystemConfig::reduced(2, 2);
  const FaultMap faults(cfg.grid());
  const PageRankResult r = run_pagerank(cfg, faults, g, {});
  ASSERT_TRUE(r.quiesced);
  EXPECT_EQ(r.rank, reference_pagerank(g, {}));
  for (std::uint32_t v = 1; v < 9; ++v)
    EXPECT_GT(r.rank[0], 3 * r.rank[v]);
}

TEST(PageRank, MatchesReferenceOnRmat) {
  Rng rng(17);
  const Graph g = make_rmat_graph(9, 2500, 1, rng);
  const SystemConfig cfg = SystemConfig::reduced(4, 4);
  const FaultMap faults(cfg.grid());
  const PageRankResult r = run_pagerank(cfg, faults, g, {});
  ASSERT_TRUE(r.quiesced);
  EXPECT_EQ(r.iterations_run, 10);
  EXPECT_EQ(r.rank, reference_pagerank(g, {}));
}

TEST(PageRank, MatchesReferenceWithFaults) {
  Rng rng(29);
  const Graph g = make_random_graph(300, 900, 1, rng);
  const SystemConfig cfg = SystemConfig::reduced(5, 5);
  FaultMap faults(cfg.grid());
  faults.set_faulty({2, 2});
  faults.set_faulty({3, 1});
  const PageRankResult r = run_pagerank(cfg, faults, g, {});
  ASSERT_TRUE(r.quiesced);
  EXPECT_EQ(r.rank, reference_pagerank(g, {}));
}

TEST(PageRank, IterationCountMatters) {
  Rng rng(5);
  const Graph g = make_random_graph(100, 300, 1, rng);
  const SystemConfig cfg = SystemConfig::reduced(2, 2);
  const FaultMap faults(cfg.grid());
  PageRankOptions two;
  two.iterations = 2;
  PageRankOptions ten;
  ten.iterations = 10;
  const PageRankResult r2 = run_pagerank(cfg, faults, g, two);
  const PageRankResult r10 = run_pagerank(cfg, faults, g, ten);
  EXPECT_EQ(r2.rank, reference_pagerank(g, two));
  EXPECT_EQ(r10.rank, reference_pagerank(g, ten));
  EXPECT_NE(r2.rank, r10.rank);
}

TEST(PageRank, RankMassRoughlyConserved) {
  // With damping, total mass converges to ~initial mass (dangling
  // vertices and integer truncation leak a little).
  Rng rng(7);
  const Graph g = make_random_graph(200, 800, 1, rng);
  const SystemConfig cfg = SystemConfig::reduced(3, 3);
  const FaultMap faults(cfg.grid());
  const PageRankResult r = run_pagerank(cfg, faults, g, {});
  const double total = std::accumulate(r.rank.begin(), r.rank.end(), 0.0);
  const double initial = 200.0 * static_cast<double>(PageRankOptions{}.initial_rank);
  EXPECT_GT(total, 0.5 * initial);
  EXPECT_LT(total, 1.1 * initial);
}

TEST(PageRank, ValidatesOptions) {
  Graph g(8);
  g.finalize();
  const SystemConfig cfg = SystemConfig::reduced(2, 2);
  const FaultMap faults(cfg.grid());
  PageRankOptions bad;
  bad.iterations = 0;
  EXPECT_THROW(run_pagerank(cfg, faults, g, bad), Error);
  bad = {};
  bad.damping_permille = 1500;
  EXPECT_THROW(run_pagerank(cfg, faults, g, bad), Error);
  bad = {};
  bad.initial_rank = 1ull << 39;  // mass overflows the payload packing
  EXPECT_THROW(run_pagerank(cfg, faults, g, bad), Error);
}

// Property sweep: exact reference agreement over seeds and shapes.
class PageRankSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(PageRankSweep, ExactMatch) {
  const auto [seed, iters] = GetParam();
  Rng rng(seed);
  const Graph g = make_random_graph(150, 500, 1, rng);
  const SystemConfig cfg = SystemConfig::reduced(4, 4);
  const FaultMap faults(cfg.grid());
  PageRankOptions opt;
  opt.iterations = iters;
  const PageRankResult r = run_pagerank(cfg, faults, g, opt);
  ASSERT_TRUE(r.quiesced);
  EXPECT_EQ(r.rank, reference_pagerank(g, opt));
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndIters, PageRankSweep,
    ::testing::Combine(::testing::Values(101, 202, 303),
                       ::testing::Values(1, 5, 12)));

}  // namespace
}  // namespace wsp::workloads
