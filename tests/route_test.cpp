// Tests for Sec. VIII: reticle step-and-repeat plan and the jog-free
// substrate router.
#include <gtest/gtest.h>

#include "wsp/common/error.hpp"
#include "wsp/route/reticle.hpp"
#include "wsp/route/substrate_router.hpp"

namespace wsp::route {
namespace {

SystemConfig cfg() { return SystemConfig::paper_prototype(); }

// ---------------------------------------------------------------- reticle

TEST(Reticle, PaperReticleIs12x6Tiles) {
  const ReticlePlan plan(cfg());
  EXPECT_EQ(plan.tiles_per_reticle(), 72);  // "Each reticle consists of 72
                                            // tiles (12x6)"
  EXPECT_EQ(plan.reticles_x(), 3);  // ceil(32/12)
  EXPECT_EQ(plan.reticles_y(), 6);  // ceil(32/6)
}

TEST(Reticle, TileToReticleMapping) {
  const ReticlePlan plan(cfg());
  EXPECT_EQ(plan.reticle_of({0, 0}), (ReticleCoord{0, 0}));
  EXPECT_EQ(plan.reticle_of({11, 5}), (ReticleCoord{0, 0}));
  EXPECT_EQ(plan.reticle_of({12, 5}), (ReticleCoord{1, 0}));
  EXPECT_EQ(plan.reticle_of({11, 6}), (ReticleCoord{0, 1}));
  EXPECT_EQ(plan.reticle_of({31, 31}), (ReticleCoord{2, 5}));
}

TEST(Reticle, BoundaryCrossingDetection) {
  const ReticlePlan plan(cfg());
  EXPECT_FALSE(plan.crosses_boundary({0, 0}, {1, 0}));
  EXPECT_TRUE(plan.crosses_boundary({11, 0}, {12, 0}));
  EXPECT_TRUE(plan.crosses_boundary({0, 5}, {0, 6}));
  EXPECT_FALSE(plan.crosses_boundary({12, 6}, {13, 6}));
}

TEST(Reticle, FatWireRuleKeepsPitchConstant) {
  // "links escaping are made fatter (width increases to 3um and spacing
  // reduces to 2um), while keeping the pitch constant".
  const ReticlePlan plan(cfg());
  const WireRule normal = plan.wire_rule(false);
  const WireRule fat = plan.wire_rule(true);
  EXPECT_DOUBLE_EQ(normal.width_m, 2e-6);
  EXPECT_DOUBLE_EQ(normal.space_m, 3e-6);
  EXPECT_DOUBLE_EQ(fat.width_m, 3e-6);
  EXPECT_DOUBLE_EQ(fat.space_m, 2e-6);
  EXPECT_DOUBLE_EQ(normal.pitch(), fat.pitch());
}

TEST(Reticle, EnumerationCoversArrayPlusEdgeRing) {
  const ReticlePlan plan(cfg());
  const auto reticles = plan.enumerate();
  EXPECT_EQ(static_cast<int>(reticles.size()), plan.exposure_count());
  EXPECT_EQ(plan.exposure_count(), (3 + 2) * (6 + 2));
  int populated_tiles = 0;
  int edge_reticles = 0;
  int etch_needed = 0;
  for (const ReticleInfo& r : reticles) {
    if (r.role == ReticleRole::EdgeIo) {
      ++edge_reticles;
      EXPECT_EQ(r.populated_tiles, 0);
    }
    populated_tiles += r.populated_tiles;
    if (r.block_etch_needed) ++etch_needed;
  }
  EXPECT_EQ(populated_tiles, 1024);  // every tile printed exactly once
  EXPECT_EQ(edge_reticles, plan.exposure_count() - 3 * 6);
  // 32 is not a multiple of 12: the right column of array reticles hangs
  // over and needs the block etch; 32 is not a multiple of 6 either.
  EXPECT_GT(etch_needed, 0);
}

TEST(Reticle, ExactFitNeedsNoBlockEtchInside) {
  SystemConfig small = SystemConfig::reduced(24, 12);  // 2x2 reticles exact
  const ReticlePlan plan(small);
  for (const ReticleInfo& r : plan.enumerate()) {
    if (r.role == ReticleRole::Populated) {
      EXPECT_FALSE(r.block_etch_needed);
    }
  }
}

// ----------------------------------------------------------------- router

TEST(Router, FullWaferRoutesWithTwoLayers) {
  const SubstrateRouter router(cfg());
  const RoutingReport report = router.route(2);
  EXPECT_TRUE(report.success());
  EXPECT_TRUE(report.jog_free);
  EXPECT_EQ(report.nets_unroutable, 0u);
  EXPECT_EQ(report.nets_routed, report.nets_requested);
  EXPECT_GT(report.total_wirelength_m, 0.0);
}

TEST(Router, NetCountsMatchTheDesign) {
  const SubstrateRouter router(cfg());
  const RoutingReport report = router.route(2);
  // Inter-tile: 2 * 31 * 32 gaps x 400 bits.
  const std::size_t inter_tile = 2ull * 31 * 32 * 400;
  // Bank buses: 1024 tiles x 5 banks x 80 bits.
  const std::size_t banks = 1024ull * 5 * 80;
  // Edge fan-out: boundary tiles' outward sides x (400 + 12).
  const std::size_t fanout = 4ull * 32 * (400 + 12);
  EXPECT_EQ(report.nets_requested, inter_tile + banks + fanout);
}

TEST(Router, ChannelUtilizationWithinCapacity) {
  const SubstrateRouter router(cfg());
  const RoutingReport report = router.route(2);
  // Layer 1 worst gap: 400 network + 2x80 bank = 560 of 630 tracks.
  EXPECT_NEAR(report.max_gap_utilization_layer1, 560.0 / 630.0, 0.01);
  EXPECT_NEAR(report.max_gap_utilization_layer2, 240.0 / 630.0, 0.01);
  EXPECT_EQ(router.gap_track_capacity(), 630);
}

TEST(Router, StitchedNetsGetFatWireRule) {
  const SubstrateRouter router(cfg());
  const RoutingReport report = router.route(2);
  // Links crossing the 2 internal vertical + 5 internal horizontal reticle
  // boundaries: (2 boundaries x 32 rows + 5 boundaries x 32 cols) x 400.
  EXPECT_EQ(report.stitched_nets, (2ull * 32 + 5ull * 32) * 400);
  for (const RoutedNet& net : report.nets) {
    if (net.stitched) {
      EXPECT_EQ(net.net_class, NetClass::InterTileLink);
    }
  }
}

TEST(Router, SingleLayerFallbackDropsSecondaryBanks) {
  // Sec. VIII: with one routing layer the system still works; only the
  // three secondary banks per tile are lost.
  const SubstrateRouter router(cfg());
  const RoutingReport report = router.route(1);
  EXPECT_EQ(report.nets_unroutable, 1024ull * 3 * 80);
  EXPECT_FALSE(report.success());  // not everything asked for was routed...
  EXPECT_TRUE(report.capacity_ok); // ...but what routed, fits
  // All network and fan-out nets still routed.
  std::size_t network_nets = 0;
  for (const RoutedNet& net : report.nets)
    if (net.net_class == NetClass::InterTileLink) ++network_nets;
  EXPECT_EQ(network_nets, 2ull * 31 * 32 * 400);
}

TEST(Router, EdgeFanoutFitsTheEscapeDensity) {
  const SubstrateRouter router(cfg());
  const auto budget = router.edge_fanout_budget();
  EXPECT_TRUE(budget.fits());
  EXPECT_EQ(budget.wires_per_edge, 32 * 412);
  EXPECT_GT(budget.capacity_per_edge, budget.wires_per_edge);
}

TEST(Router, EveryNetIsShortStraightWire) {
  const SubstrateRouter router(SystemConfig::reduced(8, 8));
  const RoutingReport report = router.route(2);
  for (const RoutedNet& net : report.nets) {
    EXPECT_GT(net.length_m, 0.0);
    if (net.net_class != NetClass::EdgeFanout) {
      // Inter-chiplet links stay within the I/O cell drive range (500 um).
      EXPECT_LE(net.length_m, 500e-6);
    }
  }
}

TEST(Router, RejectsBadLayerCount) {
  const SubstrateRouter router(SystemConfig::reduced(4, 4));
  EXPECT_THROW(router.route(0), Error);
  EXPECT_THROW(router.route(3), Error);
}

TEST(Router, SmallSystemScalesDown) {
  const SubstrateRouter router(SystemConfig::reduced(4, 4));
  const RoutingReport report = router.route(2);
  EXPECT_TRUE(report.success());
  EXPECT_EQ(report.stitched_nets, 0u);  // a 4x4 array fits in one reticle
}

}  // namespace
}  // namespace wsp::route
