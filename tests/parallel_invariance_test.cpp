// Thread-count invariance: the determinism contract of the parallel
// execution layer, asserted end to end.  The red-black PDN solve, the
// whole-wafer PDN/thermal reports, and the Monte Carlo campaign reports
// must be bit-identical at threads = 1, 2, 8 — the contract that keeps
// every seeded experiment replayable regardless of the host machine.
#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

#include "wsp/exec/thread_pool.hpp"
#include "wsp/obs/report.hpp"
#include "wsp/pdn/resistive_grid.hpp"
#include "wsp/pdn/thermal.hpp"
#include "wsp/pdn/wafer_pdn.hpp"
#include "wsp/resilience/campaign.hpp"

namespace wsp {
namespace {

/// Runs fn() with the shared pool at each thread count and returns the
/// results; restores the environment default afterwards.
template <typename F>
auto at_thread_counts(F&& fn) {
  std::vector<decltype(fn())> results;
  for (const int threads : {1, 2, 8}) {
    exec::set_shared_threads(threads);
    results.push_back(fn());
  }
  exec::set_shared_threads(0);
  return results;
}

TEST(ParallelInvariance, RedBlackSolveVoltagesBitIdentical) {
  const auto runs = at_thread_counts([] {
    pdn::ResistiveGrid g(64, 64);
    g.fill_conductances(3.0, 2.0);
    for (int x = 0; x < 64; ++x) {
      g.set_dirichlet(x, 0, 2.5);
      g.set_dirichlet(x, 63, 2.5);
    }
    for (int y = 8; y < 56; ++y)
      for (int x = 4; x < 60; ++x) g.set_current_sink(x, y, 0.003);
    const pdn::SolveStats stats = g.solve(1e-9);
    EXPECT_TRUE(stats.converged);
    return g.voltages();  // compared bit-for-bit via operator==
  });
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

TEST(ParallelInvariance, SolveStatsBitIdentical) {
  const auto runs = at_thread_counts([] {
    pdn::ResistiveGrid g(32, 48);
    g.fill_conductances(1.0, 1.5);
    for (int y = 0; y < 48; ++y) g.set_dirichlet(0, y, 1.0);
    for (int x = 1; x < 32; ++x)
      for (int y = 0; y < 48; ++y) g.set_current_sink(x, y, 1e-4);
    const pdn::SolveStats s = g.solve(1e-10);
    return std::tuple{s.iterations, s.residual, s.max_delta_v, s.converged};
  });
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

TEST(ParallelInvariance, WaferPdnReportBitIdentical) {
  const SystemConfig cfg = SystemConfig::reduced(16, 16);
  const auto runs = at_thread_counts([&] {
    pdn::WaferPdn pdn(cfg, {});
    const pdn::PdnReport r = pdn.solve_uniform(0.9);
    std::vector<double> flat{r.min_supply_v, r.max_supply_v, r.ldo_loss_w,
                             r.delivered_power_w,
                             static_cast<double>(r.tiles_out_of_regulation)};
    for (const pdn::TilePower& t : r.tiles) {
      flat.push_back(t.supply_v);
      flat.push_back(t.regulated_v);
      flat.push_back(t.plane_current_a);
      flat.push_back(t.ldo_loss_w);
    }
    return flat;
  });
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

TEST(ParallelInvariance, ConstantPowerLoadModelBitIdentical) {
  const SystemConfig cfg = SystemConfig::reduced(12, 12);
  pdn::WaferPdnOptions opt;
  opt.load_model = pdn::LoadModel::ConstantPower;
  const auto runs = at_thread_counts([&] {
    pdn::WaferPdn pdn(cfg, opt);
    const pdn::PdnReport r = pdn.solve_uniform(1.0);
    std::vector<double> flat;
    for (const pdn::TilePower& t : r.tiles) flat.push_back(t.supply_v);
    return flat;
  });
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

TEST(ParallelInvariance, ThermalReportBitIdentical) {
  const SystemConfig cfg = SystemConfig::reduced(16, 16);
  const auto runs = at_thread_counts([&] {
    pdn::WaferThermal thermal(cfg, {});
    const pdn::ThermalReport r = thermal.solve_uniform(1.0);
    std::vector<double> flat{r.max_c, r.mean_c,
                             static_cast<double>(r.tiles_over_limit)};
    flat.insert(flat.end(), r.tile_temperature_c.begin(),
                r.tile_temperature_c.end());
    return flat;
  });
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

/// Everything in a trial report that could expose cross-trial interference
/// or scheduling leakage, flattened for exact comparison.
std::vector<std::uint64_t> flatten(
    const std::vector<resilience::DegradationReport>& reports) {
  std::vector<std::uint64_t> flat;
  for (const resilience::DegradationReport& r : reports) {
    flat.push_back(r.initial_usable);
    flat.push_back(r.final_usable);
    flat.push_back(r.total_cycles);
    flat.push_back(r.mesh_dropped);
    flat.push_back(r.noc_stats.issued);
    flat.push_back(r.noc_stats.completed);
    flat.push_back(r.noc_stats.lost);
    flat.push_back(r.noc_stats.timeouts);
    flat.push_back(r.events.size());
    for (const resilience::EventOutcome& e : r.events) {
      flat.push_back(e.applied_cycle);
      flat.push_back(e.usable_after);
      flat.push_back(e.newly_unusable);
      flat.push_back(e.recovery_cycles);
      flat.push_back(static_cast<std::uint64_t>(e.recovered));
    }
    for (const resilience::TrajectoryPoint& p : r.trajectory) {
      flat.push_back(p.cycle);
      flat.push_back(p.usable_tiles);
    }
    flat.push_back(static_cast<std::uint64_t>(r.single_system_image));
    flat.push_back(static_cast<std::uint64_t>(r.drained));
  }
  return flat;
}

TEST(ParallelInvariance, CampaignTrialsBitIdentical) {
  resilience::CampaignOptions o;
  o.config = SystemConfig::reduced(8, 8);
  o.seed = 42;
  o.run_cycles = 400;
  o.fault_horizon = 300;
  o.drain_cycles = 20000;
  o.injection_rate = 0.02;
  o.mix.tile_deaths = 2;
  o.mix.link_failures = 1;
  o.mix.ldo_brownouts = 1;
  const resilience::DegradationCampaign campaign(o);

  const auto runs =
      at_thread_counts([&] { return flatten(campaign.run_trials(5)); });
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

TEST(ParallelInvariance, MetricsRegistryAndRunReportBitIdentical) {
  // The folded campaign registry — and its full RunReport serialisation —
  // must be byte-identical at 1, 2, 8 threads: metrics never read the
  // clock, and publish_metrics folds the (thread-invariant) reports in
  // trial order.
  resilience::CampaignOptions o;
  o.config = SystemConfig::reduced(8, 8);
  o.seed = 42;
  o.run_cycles = 400;
  o.fault_horizon = 300;
  o.drain_cycles = 20000;
  o.injection_rate = 0.02;
  o.mix.tile_deaths = 2;
  o.mix.link_failures = 1;
  const resilience::DegradationCampaign campaign(o);

  const auto runs = at_thread_counts([&] {
    obs::MetricsRegistry registry;
    resilience::publish_metrics(campaign.run_trials(5), registry);
    obs::RunReport report("invariance");
    report.add_metrics("campaign", registry);
    return report.to_json();
  });
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

TEST(ParallelInvariance, CampaignTrialsMatchSequentialSingleRuns) {
  // Trial t of run_trials must equal an independent run() at seed + t —
  // the pool dispatch cannot change what a trial computes.
  resilience::CampaignOptions o;
  o.config = SystemConfig::reduced(8, 8);
  o.seed = 7;
  o.run_cycles = 300;
  o.fault_horizon = 250;
  o.drain_cycles = 20000;
  o.mix.tile_deaths = 2;
  const resilience::DegradationCampaign campaign(o);

  exec::set_shared_threads(8);
  const auto batch = campaign.run_trials(3);
  exec::set_shared_threads(0);

  for (int t = 0; t < 3; ++t) {
    resilience::CampaignOptions solo = o;
    solo.seed = o.seed + static_cast<std::uint64_t>(t);
    const auto single =
        resilience::DegradationCampaign(solo).run();
    EXPECT_EQ(flatten({batch[static_cast<std::size_t>(t)]}),
              flatten({single}));
  }
}

}  // namespace
}  // namespace wsp
