// Thread-count invariance: the determinism contract of the parallel
// execution layer, asserted end to end.  The red-black PDN solve, the
// whole-wafer PDN/thermal reports, the Monte Carlo campaign reports, and
// the sharded NoC stepper must be bit-identical at threads = 1, 2, 8 —
// the contract that keeps every seeded experiment replayable regardless
// of the host machine.  The NoC adds a second axis: the column-band
// shard count is a tuning knob, so results must also be bit-identical
// across shard counts (see DESIGN.md "Sharded NoC simulation").
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "wsp/common/fault_map.hpp"
#include "wsp/common/rng.hpp"
#include "wsp/exec/thread_pool.hpp"
#include "wsp/noc/mesh_network.hpp"
#include "wsp/noc/noc_system.hpp"
#include "wsp/noc/traffic.hpp"
#include "wsp/obs/report.hpp"
#include "wsp/pdn/resistive_grid.hpp"
#include "wsp/pdn/thermal.hpp"
#include "wsp/pdn/wafer_pdn.hpp"
#include "wsp/resilience/campaign.hpp"

namespace wsp {
namespace {

/// Runs fn() with the shared pool at each thread count and returns the
/// results; restores the environment default afterwards.
template <typename F>
auto at_thread_counts(F&& fn) {
  std::vector<decltype(fn())> results;
  for (const int threads : {1, 2, 8}) {
    exec::set_shared_threads(threads);
    results.push_back(fn());
  }
  exec::set_shared_threads(0);
  return results;
}

TEST(ParallelInvariance, RedBlackSolveVoltagesBitIdentical) {
  const auto runs = at_thread_counts([] {
    pdn::ResistiveGrid g(64, 64);
    g.fill_conductances(3.0, 2.0);
    for (int x = 0; x < 64; ++x) {
      g.set_dirichlet(x, 0, 2.5);
      g.set_dirichlet(x, 63, 2.5);
    }
    for (int y = 8; y < 56; ++y)
      for (int x = 4; x < 60; ++x) g.set_current_sink(x, y, 0.003);
    const pdn::SolveStats stats = g.solve(1e-9);
    EXPECT_TRUE(stats.converged);
    return g.voltages();  // compared bit-for-bit via operator==
  });
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

TEST(ParallelInvariance, SolveStatsBitIdentical) {
  const auto runs = at_thread_counts([] {
    pdn::ResistiveGrid g(32, 48);
    g.fill_conductances(1.0, 1.5);
    for (int y = 0; y < 48; ++y) g.set_dirichlet(0, y, 1.0);
    for (int x = 1; x < 32; ++x)
      for (int y = 0; y < 48; ++y) g.set_current_sink(x, y, 1e-4);
    const pdn::SolveStats s = g.solve(1e-10);
    return std::tuple{s.iterations, s.residual, s.max_delta_v, s.converged};
  });
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

TEST(ParallelInvariance, WaferPdnReportBitIdentical) {
  const SystemConfig cfg = SystemConfig::reduced(16, 16);
  const auto runs = at_thread_counts([&] {
    pdn::WaferPdn pdn(cfg, {});
    const pdn::PdnReport r = pdn.solve_uniform(0.9);
    std::vector<double> flat{r.min_supply_v, r.max_supply_v, r.ldo_loss_w,
                             r.delivered_power_w,
                             static_cast<double>(r.tiles_out_of_regulation)};
    for (const pdn::TilePower& t : r.tiles) {
      flat.push_back(t.supply_v);
      flat.push_back(t.regulated_v);
      flat.push_back(t.plane_current_a);
      flat.push_back(t.ldo_loss_w);
    }
    return flat;
  });
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

TEST(ParallelInvariance, ConstantPowerLoadModelBitIdentical) {
  const SystemConfig cfg = SystemConfig::reduced(12, 12);
  pdn::WaferPdnOptions opt;
  opt.load_model = pdn::LoadModel::ConstantPower;
  const auto runs = at_thread_counts([&] {
    pdn::WaferPdn pdn(cfg, opt);
    const pdn::PdnReport r = pdn.solve_uniform(1.0);
    std::vector<double> flat;
    for (const pdn::TilePower& t : r.tiles) flat.push_back(t.supply_v);
    return flat;
  });
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

TEST(ParallelInvariance, ThermalReportBitIdentical) {
  const SystemConfig cfg = SystemConfig::reduced(16, 16);
  const auto runs = at_thread_counts([&] {
    pdn::WaferThermal thermal(cfg, {});
    const pdn::ThermalReport r = thermal.solve_uniform(1.0);
    std::vector<double> flat{r.max_c, r.mean_c,
                             static_cast<double>(r.tiles_over_limit)};
    flat.insert(flat.end(), r.tile_temperature_c.begin(),
                r.tile_temperature_c.end());
    return flat;
  });
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

/// Everything in a trial report that could expose cross-trial interference
/// or scheduling leakage, flattened for exact comparison.
std::vector<std::uint64_t> flatten(
    const std::vector<resilience::DegradationReport>& reports) {
  std::vector<std::uint64_t> flat;
  for (const resilience::DegradationReport& r : reports) {
    flat.push_back(r.initial_usable);
    flat.push_back(r.final_usable);
    flat.push_back(r.total_cycles);
    flat.push_back(r.mesh_dropped);
    flat.push_back(r.noc_stats.issued);
    flat.push_back(r.noc_stats.completed);
    flat.push_back(r.noc_stats.lost);
    flat.push_back(r.noc_stats.timeouts);
    flat.push_back(r.events.size());
    for (const resilience::EventOutcome& e : r.events) {
      flat.push_back(e.applied_cycle);
      flat.push_back(e.usable_after);
      flat.push_back(e.newly_unusable);
      flat.push_back(e.recovery_cycles);
      flat.push_back(static_cast<std::uint64_t>(e.recovered));
    }
    for (const resilience::TrajectoryPoint& p : r.trajectory) {
      flat.push_back(p.cycle);
      flat.push_back(p.usable_tiles);
    }
    flat.push_back(static_cast<std::uint64_t>(r.single_system_image));
    flat.push_back(static_cast<std::uint64_t>(r.drained));
  }
  return flat;
}

TEST(ParallelInvariance, CampaignTrialsBitIdentical) {
  resilience::CampaignOptions o;
  o.config = SystemConfig::reduced(8, 8);
  o.seed = 42;
  o.run_cycles = 400;
  o.fault_horizon = 300;
  o.drain_cycles = 20000;
  o.injection_rate = 0.02;
  o.mix.tile_deaths = 2;
  o.mix.link_failures = 1;
  o.mix.ldo_brownouts = 1;
  const resilience::DegradationCampaign campaign(o);

  const auto runs =
      at_thread_counts([&] { return flatten(campaign.run_trials(5)); });
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

TEST(ParallelInvariance, MetricsRegistryAndRunReportBitIdentical) {
  // The folded campaign registry — and its full RunReport serialisation —
  // must be byte-identical at 1, 2, 8 threads: metrics never read the
  // clock, and publish_metrics folds the (thread-invariant) reports in
  // trial order.
  resilience::CampaignOptions o;
  o.config = SystemConfig::reduced(8, 8);
  o.seed = 42;
  o.run_cycles = 400;
  o.fault_horizon = 300;
  o.drain_cycles = 20000;
  o.injection_rate = 0.02;
  o.mix.tile_deaths = 2;
  o.mix.link_failures = 1;
  const resilience::DegradationCampaign campaign(o);

  const auto runs = at_thread_counts([&] {
    obs::MetricsRegistry registry;
    resilience::publish_metrics(campaign.run_trials(5), registry);
    obs::RunReport report("invariance");
    report.add_metrics("campaign", registry);
    return report.to_json();
  });
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

TEST(ParallelInvariance, CampaignTrialsMatchSequentialSingleRuns) {
  // Trial t of run_trials must equal an independent run() at seed + t —
  // the pool dispatch cannot change what a trial computes.
  resilience::CampaignOptions o;
  o.config = SystemConfig::reduced(8, 8);
  o.seed = 7;
  o.run_cycles = 300;
  o.fault_horizon = 250;
  o.drain_cycles = 20000;
  o.mix.tile_deaths = 2;
  const resilience::DegradationCampaign campaign(o);

  exec::set_shared_threads(8);
  const auto batch = campaign.run_trials(3);
  exec::set_shared_threads(0);

  for (int t = 0; t < 3; ++t) {
    resilience::CampaignOptions solo = o;
    solo.seed = o.seed + static_cast<std::uint64_t>(t);
    const auto single =
        resilience::DegradationCampaign(solo).run();
    EXPECT_EQ(flatten({batch[static_cast<std::size_t>(t)]}),
              flatten({single}));
  }
}

// ------------------------------------------------- sharded NoC invariance

/// Flattened observable output of one seeded mesh workload: the full
/// delivery trace (order included) plus every counter.  Two runs are "the
/// same simulation" iff these vectors are equal element for element.
struct MeshRunResult {
  std::vector<std::uint64_t> trace;
  std::vector<std::uint64_t> stats;
  bool operator==(const MeshRunResult&) const = default;
};

void append_packet(std::vector<std::uint64_t>& trace, const noc::Packet& p) {
  trace.push_back(p.id);
  trace.push_back(static_cast<std::uint64_t>(p.src.x) << 32 |
                  static_cast<std::uint32_t>(p.src.y));
  trace.push_back(static_cast<std::uint64_t>(p.dst.x) << 32 |
                  static_cast<std::uint32_t>(p.dst.y));
  trace.push_back(p.payload);
  trace.push_back(p.injected_cycle);
  trace.push_back(p.delivered_cycle);
}

std::vector<std::uint64_t> flatten(const noc::MeshStats& s) {
  return {s.injected,        s.ejected,        s.dropped_at_fault,
          s.link_traversals, s.cycles,         s.purged_in_dead_router,
          s.corrupted,       s.crc_detected,   s.crc_escapes,
          s.link_retransmits, s.link_error_drops, s.dup_dropped};
}

/// Drives one MeshNetwork with a seeded random workload for 400 cycles:
/// random fault map, optional uniform BER, configurable shard count.
/// Checks the per-cycle packet-conservation invariant as it goes and
/// returns the flattened observable output.
MeshRunResult run_mesh_workload(int shards, std::size_t fault_count,
                                double ber, std::uint64_t seed) {
  const TileGrid grid(12, 12);
  Rng fault_rng(seed);
  const FaultMap faults =
      FaultMap::random_with_count(grid, fault_count, fault_rng);
  noc::MeshOptions opt;
  opt.shards = shards;
  opt.integrity.enabled = ber > 0.0;
  noc::MeshNetwork mesh(faults, noc::NetworkKind::XY, opt);
  if (ber > 0.0) mesh.set_link_ber(noc::LinkBerMap::uniform(grid, ber));

  Rng rng(seed ^ 0xABCDull);
  std::vector<noc::Packet> ejected;
  std::uint64_t next_id = 1;
  MeshRunResult out;
  for (std::uint64_t cycle = 0; cycle < 400; ++cycle) {
    if (cycle < 300) {
      for (int k = 0; k < 4; ++k) {
        noc::Packet p;
        p.src = {static_cast<int>(rng.below(12)),
                 static_cast<int>(rng.below(12))};
        p.dst = {static_cast<int>(rng.below(12)),
                 static_cast<int>(rng.below(12))};
        p.payload = rng();
        p.injected_cycle = cycle;
        p.id = next_id;
        if (mesh.inject(p)) ++next_id;
      }
    }
    ejected.clear();  // reused, cleared-not-shrunk — the supported pattern
    mesh.step(ejected);
    for (const noc::Packet& p : ejected) append_packet(out.trace, p);
    // Per-cycle packet conservation: the incremental in-flight counter
    // must agree with a from-scratch recount of every queue and link
    // ring, and the global conservation identity must hold.
    EXPECT_EQ(mesh.in_flight(), mesh.recount_in_flight())
        << "cycle " << cycle << " shards " << shards;
    EXPECT_TRUE(mesh.conservation_holds())
        << "cycle " << cycle << " shards " << shards;
  }
  out.stats = flatten(mesh.stats());
  return out;
}

TEST(ShardedNocInvariance, BitIdenticalAcrossShardAndThreadCounts) {
  // Property sweep: random fault maps x BER settings, each simulated at
  // every (shard count x thread count) combination.  The delivery trace
  // (order included), every counter, and the per-cycle conservation
  // invariant must match the serial single-shard reference exactly.
  struct Case {
    std::size_t faults;
    double ber;
    std::uint64_t seed;
  };
  const Case cases[] = {
      {0, 0.0, 11},      // clean wafer, integrity off
      {5, 0.0, 22},      // faulty tiles, integrity off
      {0, 1e-4, 33},     // noisy links, retransmit protocol active
      {7, 1e-3, 44},     // faults + heavy noise together
  };
  for (const Case& c : cases) {
    exec::set_shared_threads(1);
    const MeshRunResult reference =
        run_mesh_workload(/*shards=*/1, c.faults, c.ber, c.seed);
    ASSERT_FALSE(reference.trace.empty());
    for (const int shards : {2, 3, 8}) {
      for (const int threads : {1, 2, 8}) {
        exec::set_shared_threads(threads);
        const MeshRunResult run =
            run_mesh_workload(shards, c.faults, c.ber, c.seed);
        EXPECT_EQ(run.trace, reference.trace)
            << "seed " << c.seed << " shards " << shards << " threads "
            << threads;
        EXPECT_EQ(run.stats, reference.stats)
            << "seed " << c.seed << " shards " << shards << " threads "
            << threads;
      }
    }
  }
  exec::set_shared_threads(0);
}

std::vector<std::uint64_t> flatten(const noc::NocStats& s) {
  return {s.issued,   s.completed,   s.unreachable, s.relayed,
          s.latency_sum, s.latency_max, s.timeouts};
}

/// The "noc.*.shards" gauges record the *configured* shard count — they
/// are the one registry entry allowed to differ across shard counts.
/// Zero them so the rest of the report can be compared byte for byte.
std::string normalize_shards_gauge(std::string json) {
  for (const std::string key :
       {std::string("\"noc.xy.shards\":"), std::string("\"noc.yx.shards\":")}) {
    const std::size_t pos = json.find(key);
    if (pos == std::string::npos) continue;
    std::size_t end = pos + key.size();
    while (end < json.size() && json[end] >= '0' && json[end] <= '9') ++end;
    json.replace(pos + key.size(), end - (pos + key.size()), "0");
  }
  return json;
}

TEST(ShardedNocInvariance, NocSystemTrafficAndRegistryBitIdentical) {
  // Full-system check: seeded traffic through NocSystem (both meshes,
  // fused shard dispatch) with a bound MetricsRegistry.  The traffic
  // report, NocStats, and the registry's serialised RunReport must be
  // byte-identical across shard and thread counts.
  Rng fault_rng(99);
  const FaultMap faults =
      FaultMap::random_with_count(TileGrid(16, 16), 4, fault_rng);

  const auto run_at = [&](int shards) {
    noc::NocOptions opt;
    opt.mesh.shards = shards;
    obs::MetricsRegistry registry;
    noc::NocSystem noc{faults, opt, &registry};
    Rng rng(5);
    noc::TrafficConfig cfg;
    cfg.injection_rate = 0.02;
    const noc::TrafficReport r = noc::run_traffic(noc, cfg, 300, rng);
    obs::RunReport report("sharded-invariance");
    report.add_metrics("noc", registry);
    return std::tuple{r.issued, r.completed, r.unreachable, r.mean_latency,
                      flatten(noc.stats()),
                      normalize_shards_gauge(report.to_json())};
  };

  exec::set_shared_threads(1);
  const auto reference = run_at(1);
  for (const int shards : {2, 4, 8}) {
    const auto runs = at_thread_counts([&] { return run_at(shards); });
    EXPECT_EQ(runs[0], reference) << "shards " << shards;
    EXPECT_EQ(runs[1], reference) << "shards " << shards;
    EXPECT_EQ(runs[2], reference) << "shards " << shards;
  }
}

TEST(ShardedNocInvariance, EjectionBufferReuseMatchesFreshBuffers) {
  // Regression for the ejection-vector reuse contract: step() documents
  // that callers may reuse one cleared-not-shrunk buffer across cycles.
  // Run the same seeded workload twice — once handing step() a fresh
  // vector every cycle, once reusing a single buffer that has grown
  // stale capacity — and require identical traces and stats.
  const TileGrid grid(10, 10);
  Rng fault_rng(7);
  const FaultMap faults = FaultMap::random_with_count(grid, 3, fault_rng);

  const auto drive = [&](bool reuse) {
    noc::MeshNetwork mesh(faults, noc::NetworkKind::YX, {});
    Rng rng(123);
    MeshRunResult out;
    std::vector<noc::Packet> reused;
    for (std::uint64_t cycle = 0; cycle < 250; ++cycle) {
      for (int k = 0; k < 3; ++k) {
        noc::Packet p;
        p.src = {static_cast<int>(rng.below(10)),
                 static_cast<int>(rng.below(10))};
        p.dst = {static_cast<int>(rng.below(10)),
                 static_cast<int>(rng.below(10))};
        p.id = cycle * 8 + static_cast<std::uint64_t>(k) + 1;
        p.payload = rng();
        p.injected_cycle = cycle;
        mesh.inject(p);
      }
      if (reuse) {
        reused.clear();
        mesh.step(reused);
        for (const noc::Packet& p : reused) append_packet(out.trace, p);
      } else {
        std::vector<noc::Packet> fresh;
        mesh.step(fresh);
        for (const noc::Packet& p : fresh) append_packet(out.trace, p);
      }
    }
    out.stats = flatten(mesh.stats());
    return out;
  };

  const MeshRunResult with_reuse = drive(true);
  const MeshRunResult with_fresh = drive(false);
  ASSERT_FALSE(with_reuse.trace.empty());
  EXPECT_EQ(with_reuse.trace, with_fresh.trace);
  EXPECT_EQ(with_reuse.stats, with_fresh.stats);
}

TEST(ShardedNocInvariance, ConservationHoldsAcrossRuntimeFaults) {
  // Conservation must survive mid-run fault injection (queue purges free
  // their packets exactly once): kill a tile every 50 cycles and recheck
  // the recount identity each time.
  const TileGrid grid(12, 12);
  FaultMap faults(grid);
  noc::MeshOptions opt;
  opt.shards = 4;
  noc::MeshNetwork mesh(faults, noc::NetworkKind::XY, opt);

  Rng rng(31);
  std::vector<noc::Packet> ejected;
  for (std::uint64_t cycle = 1; cycle <= 200; ++cycle) {
    for (int k = 0; k < 4; ++k) {
      noc::Packet p;
      p.src = {static_cast<int>(rng.below(12)),
               static_cast<int>(rng.below(12))};
      p.dst = {static_cast<int>(rng.below(12)),
               static_cast<int>(rng.below(12))};
      p.id = cycle * 8 + static_cast<std::uint64_t>(k);
      mesh.inject(p);
    }
    ejected.clear();
    mesh.step(ejected);
    if (cycle % 50 == 0) {
      const TileCoord victim{static_cast<int>(rng.below(12)),
                             static_cast<int>(rng.below(12))};
      faults.set_faulty(victim);
      mesh.apply_fault_state(faults, mesh.link_faults());
      EXPECT_EQ(mesh.in_flight(), mesh.recount_in_flight())
          << "after killing tile at cycle " << cycle;
      EXPECT_TRUE(mesh.conservation_holds()) << "cycle " << cycle;
    }
  }
}

}  // namespace
}  // namespace wsp
