// Tests for the architecture layer: intra-tile crossbar, core cluster
// scheduling, and the message-passing WaferSystem runtime.
#include <gtest/gtest.h>

#include "wsp/arch/core_cluster.hpp"
#include "wsp/arch/crossbar.hpp"
#include "wsp/arch/tile.hpp"
#include "wsp/arch/wafer_system.hpp"
#include "wsp/common/error.hpp"

namespace wsp::arch {
namespace {

// ---------------------------------------------------------------- crossbar

TEST(Crossbar, SingleRequestGranted) {
  Crossbar xbar(16, 6);
  const XbarGrants g = xbar.arbitrate({{3, 2}});
  EXPECT_EQ(g.granted_count, 1);
  EXPECT_EQ(g.per_master[3], 2);
}

TEST(Crossbar, OneGrantPerSlavePerCycle) {
  Crossbar xbar(16, 6);
  // Four masters fight for slave 0; one wins.
  const XbarGrants g = xbar.arbitrate({{0, 0}, {1, 0}, {2, 0}, {3, 0}});
  EXPECT_EQ(g.granted_count, 1);
}

TEST(Crossbar, DisjointSlavesAllGranted) {
  // The parallel-banks property: masters hitting different banks all
  // proceed in one cycle.
  Crossbar xbar(16, 6);
  const XbarGrants g =
      xbar.arbitrate({{0, 0}, {1, 1}, {2, 2}, {3, 3}, {4, 4}});
  EXPECT_EQ(g.granted_count, 5);
  for (int m = 0; m < 5; ++m) EXPECT_EQ(g.per_master[m], m);
}

TEST(Crossbar, RoundRobinIsFairUnderSaturation) {
  Crossbar xbar(4, 1);
  std::array<int, 4> wins{};
  for (int c = 0; c < 400; ++c) {
    const XbarGrants g = xbar.arbitrate({{0, 0}, {1, 0}, {2, 0}, {3, 0}});
    for (int m = 0; m < 4; ++m)
      if (g.per_master[m]) ++wins[m];
  }
  for (const int w : wins) EXPECT_EQ(w, 100);
}

TEST(Crossbar, RejectsDuplicateMasterRequests) {
  Crossbar xbar(4, 4);
  EXPECT_THROW(xbar.arbitrate({{0, 1}, {0, 2}}), Error);
  EXPECT_THROW(xbar.arbitrate({{9, 0}}), Error);
  EXPECT_THROW(xbar.arbitrate({{0, 9}}), Error);
}

TEST(Crossbar, GrantAccountingAccumulates) {
  Crossbar xbar(2, 2);
  xbar.arbitrate({{0, 0}, {1, 1}});
  xbar.arbitrate({{0, 1}});
  EXPECT_EQ(xbar.total_grants(), 3u);
  EXPECT_EQ(xbar.slave_grant_counts()[0], 1u);
  EXPECT_EQ(xbar.slave_grant_counts()[1], 2u);
  EXPECT_EQ(xbar.cycles(), 2u);
}

// ------------------------------------------------------------ core cluster

TEST(CoreCluster, ParallelWorkAcrossCores) {
  CoreCluster cores(14);
  // 14 work items of 100 cycles all finish at cycle 100.
  for (int i = 0; i < 14; ++i) EXPECT_EQ(cores.schedule(0, 100), 100u);
  // The 15th must wait for a core.
  EXPECT_EQ(cores.schedule(0, 100), 200u);
  EXPECT_EQ(cores.all_idle_at(), 200u);
}

TEST(CoreCluster, ReadyTimeRespected) {
  CoreCluster cores(2);
  EXPECT_EQ(cores.schedule(50, 10), 60u);
  EXPECT_EQ(cores.next_free_at(), 0u);  // the second core is still free
}

TEST(CoreCluster, UtilizationMath) {
  CoreCluster cores(4);
  cores.schedule(0, 100);
  cores.schedule(0, 100);
  EXPECT_NEAR(cores.utilization(100), 0.5, 1e-12);
  EXPECT_EQ(cores.total_busy_cycles(), 200u);
  EXPECT_EQ(cores.work_items(), 2u);
}

TEST(CoreCluster, RejectsZeroCores) { EXPECT_THROW(CoreCluster(0), Error); }

// ------------------------------------------------------------------ tile

TEST(Tile, ResourcesMatchConfig) {
  const SystemConfig cfg = SystemConfig::paper_prototype();
  Tile tile(cfg, {3, 4});
  EXPECT_EQ(tile.coord(), (TileCoord{3, 4}));
  EXPECT_EQ(tile.cores().core_count(), 14);
  EXPECT_EQ(tile.memory().bank_count(), 5);
  EXPECT_EQ(tile.private_mem(0).capacity(), 64u * 1024);
  EXPECT_EQ(tile.private_mem(13).capacity(), 64u * 1024);
  EXPECT_THROW(tile.private_mem(14), std::out_of_range);
}

// ------------------------------------------------------------ wafer system

/// Ping-pong: tile A sends a counter to B, B increments and returns it,
/// until the counter hits a limit.
class PingPong : public TileHandler {
 public:
  PingPong(TileCoord peer, bool starter, std::uint64_t limit,
           std::uint64_t* final_value)
      : peer_(peer), starter_(starter), limit_(limit), final_(final_value) {}

  void on_start(TileContext& ctx) override {
    if (starter_) ctx.send(peer_, /*tag=*/7, /*payload=*/1);
  }
  void on_message(TileContext& ctx, const Message& m) override {
    ctx.charge(5);
    if (m.payload >= limit_) {
      *final_ = m.payload;
      return;
    }
    ctx.send(peer_, 7, m.payload + 1);
  }

 private:
  TileCoord peer_;
  bool starter_;
  std::uint64_t limit_;
  std::uint64_t* final_;
};

TEST(WaferSystem, PingPongConvergesAndCounts) {
  const SystemConfig cfg = SystemConfig::reduced(4, 4);
  const FaultMap faults(cfg.grid());
  std::uint64_t final_value = 0;
  const TileCoord a{0, 0}, b{3, 3};
  WaferSystem sys(cfg, faults, [&](TileCoord c) -> std::unique_ptr<TileHandler> {
    if (c == a) return std::make_unique<PingPong>(b, true, 20, &final_value);
    if (c == b) return std::make_unique<PingPong>(a, false, 20, &final_value);
    return std::make_unique<PingPong>(c, false, 20, &final_value);
  });
  sys.start();
  ASSERT_TRUE(sys.run_until_quiescent());
  EXPECT_EQ(final_value, 20u);
  const WaferSystemStats st = sys.stats();
  EXPECT_EQ(st.messages_sent, 20u);
  EXPECT_EQ(st.messages_delivered, 20u);
  EXPECT_EQ(st.messages_undeliverable, 0u);
  EXPECT_GT(st.makespan, 0u);
  EXPECT_GE(st.handler_invocations, 20u + 16u);  // messages + on_start
}

/// Broadcast-tree handler: on_start at the root sends to all tiles.
class Scatter : public TileHandler {
 public:
  Scatter(bool root, const TileGrid& grid, std::vector<int>* hits)
      : root_(root), grid_(grid), hits_(hits) {}
  void on_start(TileContext& ctx) override {
    if (!root_) return;
    grid_.for_each([&](TileCoord c) {
      if (!(c == ctx.coord())) ctx.send(c, 1, 99);
    });
  }
  void on_message(TileContext& ctx, const Message& m) override {
    ctx.charge(3);
    (*hits_)[grid_.index_of(ctx.coord())] += static_cast<int>(m.payload);
  }

 private:
  bool root_;
  TileGrid grid_;
  std::vector<int>* hits_;
};

TEST(WaferSystem, ScatterReachesEveryHealthyTile) {
  const SystemConfig cfg = SystemConfig::reduced(5, 5);
  const FaultMap faults(cfg.grid());
  std::vector<int> hits(25, 0);
  WaferSystem sys(cfg, faults, [&](TileCoord c) -> std::unique_ptr<TileHandler> {
    return std::make_unique<Scatter>(c == TileCoord{0, 0}, cfg.grid(), &hits);
  });
  sys.start();
  ASSERT_TRUE(sys.run_until_quiescent());
  for (std::size_t i = 1; i < hits.size(); ++i) EXPECT_EQ(hits[i], 99);
  EXPECT_EQ(hits[0], 0);  // root does not message itself
}

TEST(WaferSystem, MessagesToWalledInTileAreUndeliverable) {
  const SystemConfig cfg = SystemConfig::reduced(8, 8);
  FaultMap faults(cfg.grid());
  for (TileCoord f : {TileCoord{4, 5}, TileCoord{5, 4}, TileCoord{4, 3},
                      TileCoord{3, 4}})
    faults.set_faulty(f);
  std::vector<int> hits(64, 0);
  WaferSystem sys(cfg, faults, [&](TileCoord c) -> std::unique_ptr<TileHandler> {
    return std::make_unique<Scatter>(c == TileCoord{0, 0}, cfg.grid(), &hits);
  });
  sys.start();
  ASSERT_TRUE(sys.run_until_quiescent());
  const WaferSystemStats st = sys.stats();
  // (4,4) is healthy but unreachable; the 4 faulty tiles get no handler
  // and no messages (they are excluded from the scatter destinations via
  // issue() returning unreachable).
  EXPECT_EQ(st.messages_undeliverable, 5u);
  EXPECT_EQ(hits[cfg.grid().index_of({4, 4})], 0);
}

TEST(WaferSystem, HostPostSeedsTheSystem) {
  const SystemConfig cfg = SystemConfig::reduced(4, 4);
  const FaultMap faults(cfg.grid());
  std::vector<int> hits(16, 0);
  WaferSystem sys(cfg, faults, [&](TileCoord) -> std::unique_ptr<TileHandler> {
    return std::make_unique<Scatter>(false, cfg.grid(), &hits);
  });
  sys.start();
  Message m;
  m.src = {0, 0};
  m.dst = {2, 2};
  m.tag = 1;
  m.payload = 7;
  sys.post(m);
  ASSERT_TRUE(sys.run_until_quiescent());
  EXPECT_EQ(hits[cfg.grid().index_of({2, 2})], 7);
}

TEST(WaferSystem, CoreCostDelaysOutgoingMessages) {
  // A handler that charges heavily delays its sends: the paper's model of
  // cores spending cycles on network/relay duties.
  const SystemConfig cfg = SystemConfig::reduced(4, 4);
  const FaultMap faults(cfg.grid());

  class Heavy : public TileHandler {
   public:
    explicit Heavy(std::uint64_t* delivered) : delivered_(delivered) {}
    void on_start(TileContext& ctx) override {
      if (ctx.coord() == TileCoord{0, 0}) {
        ctx.charge(1000);
        ctx.send({3, 3}, 2, 1);
      }
    }
    void on_message(TileContext&, const Message& m) override {
      *delivered_ = m.delivered_cycle;
    }
   private:
    std::uint64_t* delivered_;
  };

  std::uint64_t delivered = 0;
  WaferSystem sys(cfg, faults, [&](TileCoord) {
    return std::make_unique<Heavy>(&delivered);
  });
  sys.start();
  ASSERT_TRUE(sys.run_until_quiescent());
  EXPECT_GT(delivered, 1000u);  // the charge gated the send
}

TEST(WaferSystem, RequiresMatchingFaultMapAndFactory) {
  const SystemConfig cfg = SystemConfig::reduced(4, 4);
  const FaultMap wrong(TileGrid(5, 5));
  auto factory = [](TileCoord) -> std::unique_ptr<TileHandler> {
    return nullptr;
  };
  EXPECT_THROW(WaferSystem(cfg, wrong, factory), Error);
  EXPECT_THROW(WaferSystem(cfg, FaultMap(cfg.grid()), nullptr), Error);
}

TEST(WaferSystem, StartTwiceThrows) {
  const SystemConfig cfg = SystemConfig::reduced(3, 3);
  const FaultMap faults(cfg.grid());
  std::vector<int> hits(9, 0);
  WaferSystem sys(cfg, faults, [&](TileCoord) -> std::unique_ptr<TileHandler> {
    return std::make_unique<Scatter>(false, cfg.grid(), &hits);
  });
  sys.start();
  EXPECT_THROW(sys.start(), Error);
}

}  // namespace
}  // namespace wsp::arch
