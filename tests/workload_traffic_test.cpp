// Workload traffic generator tests: golden delivery-trace digests per
// generator class, bit-identical invariance across thread x shard counts,
// checkpoint mid-phase kill-and-resume, and the generator invariants
// (analytic phase schedules, fault avoidance, seed determinism, run-split
// composition) — plus the coupled CosimLoop running every class on the
// full 32x32 dual-network wafer.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "wsp/ckpt/checkpoint.hpp"
#include "wsp/common/error.hpp"
#include "wsp/cosim/cosim.hpp"
#include "wsp/exec/thread_pool.hpp"
#include "wsp/noc/noc_system.hpp"
#include "wsp/obs/metrics.hpp"
#include "wsp/resilience/campaign.hpp"
#include "wsp/workloads/traffic_gen.hpp"

namespace wsp::workloads {
namespace {

class TempFile {
 public:
  explicit TempFile(const char* name) : path_(name) {}
  ~TempFile() {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

const std::vector<WorkloadClass> kAllClasses = {
    WorkloadClass::Synthetic,     WorkloadClass::AllReduceRing,
    WorkloadClass::HaloExchange,  WorkloadClass::LayerPipeline,
    WorkloadClass::SpikingBurst,  WorkloadClass::GraphWave,
};

const std::vector<WorkloadClass> kDeterministicClasses = {
    WorkloadClass::AllReduceRing,
    WorkloadClass::HaloExchange,
    WorkloadClass::LayerPipeline,
    WorkloadClass::GraphWave,
};

/// One fixed spec per class, sized so a few hundred cycles exercise
/// several full phases (ring steps, halo periods, pipeline layers, burst
/// lifetimes, graph levels) on a 16x16..32x32 wafer.
WorkloadSpec spec_for(WorkloadClass cls) {
  WorkloadSpec s;
  s.cls = cls;
  s.seed = 77;
  s.synthetic.injection_rate = 0.03;
  s.allreduce.chunk_packets = 2;
  s.allreduce.step_cycles = 4;
  s.allreduce.gap_cycles = 8;
  s.allreduce.rect_x0 = 2;
  s.allreduce.rect_y0 = 2;
  s.allreduce.rect_x1 = 9;
  s.allreduce.rect_y1 = 3;
  s.halo.halo_period = 6;
  s.pipeline.stages = 4;
  s.pipeline.comm_cycles = 6;
  s.pipeline.stage_flops = 50000.0;
  s.spiking.background_rate = 0.004;
  s.spiking.burst_interval = 64;
  s.spiking.max_bursts = 4;
  s.spiking.hotspot = {8, 8};
  s.spiking.burst_radius = 2;
  s.spiking.burst_cycles = 24;
  s.spiking.burst_intensity = 0.5;
  s.graph.scale = 7;
  s.graph.edges = 1024;
  s.graph.graph_seed = 9;
  s.graph.compute_gap_cycles = 3;
  return s;
}

std::uint32_t run_digest(WorkloadClass cls, int n, std::uint64_t cycles,
                         int shards = 1, const FaultMap* faults = nullptr) {
  const SystemConfig config = SystemConfig::reduced(n, n);
  const FaultMap fm = faults ? *faults : FaultMap(config.grid());
  noc::NocOptions nopt;
  nopt.mesh.shards = shards;
  noc::NocSystem noc(fm, nopt);
  auto gen = make_generator(spec_for(cls), config, fm);
  return run_workload_traffic(noc, *gen, cycles).delivery_digest;
}

// --- golden delivery-trace digests ------------------------------------------

// Regenerate after an intentional traffic/NoC behaviour change by running
// this suite and copying the "actual" values from the failure output; they
// pin the exact delivery trace (src, dst, issue, complete, relayed per
// completed transaction, in completion order) of a seeded 16x16 run.
struct GoldenDigest {
  WorkloadClass cls;
  std::uint32_t digest;
};

const GoldenDigest kGolden16x16x300[] = {
    {WorkloadClass::Synthetic, 0xf1092abeu},
    {WorkloadClass::AllReduceRing, 0xc55037c4u},
    {WorkloadClass::HaloExchange, 0x8fde92fbu},
    {WorkloadClass::LayerPipeline, 0xfae5b08cu},
    {WorkloadClass::SpikingBurst, 0x50d45998u},
    {WorkloadClass::GraphWave, 0x3547d853u},
};

TEST(GoldenTrace, DeliveryDigestsMatchCheckedInConstants) {
  for (const GoldenDigest& g : kGolden16x16x300) {
    const std::uint32_t actual = run_digest(g.cls, 16, 300);
    EXPECT_EQ(actual, g.digest)
        << to_string(g.cls) << ": actual digest 0x" << std::hex << actual;
  }
}

// --- thread x shard invariance ----------------------------------------------

TEST(Invariance, DigestIdenticalAcrossThreadsAndShards) {
  for (const WorkloadClass cls : kAllClasses) {
    const std::uint32_t base = run_digest(cls, 32, 192, /*shards=*/1);
    for (const int threads : {1, 2, 8}) {
      for (const int shards : {1, 2, 8}) {
        exec::set_shared_threads(threads);
        const std::uint32_t d = run_digest(cls, 32, 192, shards);
        EXPECT_EQ(d, base) << to_string(cls) << " diverged at threads="
                           << threads << " shards=" << shards;
      }
    }
    exec::set_shared_threads(0);
  }
}

// --- checkpoint kill-and-resume ---------------------------------------------

/// Emits `cycles` cycles and returns the concatenated injection stream.
std::vector<Injection> emit_stream(TrafficGenerator& gen,
                                   std::uint64_t cycles) {
  std::vector<Injection> all;
  for (std::uint64_t c = 0; c < cycles; ++c) gen.emit(all);
  return all;
}

TEST(Checkpoint, GeneratorMidPhaseRoundTripResumesBitIdentically) {
  const SystemConfig config = SystemConfig::reduced(16, 16);
  Rng fault_rng(3);
  const FaultMap faults =
      FaultMap::random_with_count(config.grid(), 8, fault_rng);
  for (const WorkloadClass cls : kAllClasses) {
    auto a = make_generator(spec_for(cls), config, faults);
    // 37 cycles ends mid-ring-step, mid-halo-wave, mid-burst and
    // mid-graph-level for the specs above — the kill lands in-phase.
    emit_stream(*a, 37);
    ckpt::Writer w;
    a->save_state(w);

    auto b = make_generator(spec_for(cls), config, faults);
    ckpt::Reader r(w.bytes());
    b->load_state(r);
    EXPECT_TRUE(r.done()) << to_string(cls);
    EXPECT_EQ(emit_stream(*a, 150), emit_stream(*b, 150))
        << to_string(cls) << ": resumed stream diverged";
  }
}

TEST(Checkpoint, LoadingAForeignClassFrameThrowsSchemaMismatch) {
  const SystemConfig config = SystemConfig::reduced(8, 8);
  const FaultMap faults(config.grid());
  auto halo = make_generator(spec_for(WorkloadClass::HaloExchange), config,
                             faults);
  ckpt::Writer w;
  halo->save_state(w);
  auto ring = make_generator(spec_for(WorkloadClass::AllReduceRing), config,
                             faults);
  ckpt::Reader r(w.bytes());
  try {
    ring->load_state(r);
    FAIL() << "foreign generator frame must not load";
  } catch (const ckpt::Error& e) {
    EXPECT_EQ(e.kind(), ckpt::ErrorKind::SchemaMismatch);
  }
}

TEST(Checkpoint, CosimMidEpochKillAndResumePerClass) {
  for (const WorkloadClass cls : kAllClasses) {
    cosim::CosimOptions o;
    o.config = SystemConfig::reduced(16, 16);
    o.seed = 11;
    o.epoch_cycles = 32;
    o.noc.mesh.integrity.enabled = true;
    o.pdn.ldo.line_regulation = 0.1;
    o.ber.floor_ber = 1e-6;
    o.ber.volts_per_decade = 0.003;
    o.workload = spec_for(cls);

    TempFile file("workload_cosim_resume.ckpt");
    cosim::CosimLoop loop(o);
    loop.run(48);  // 1.5 epochs: the kill is mid-epoch, mid-phase
    loop.save_checkpoint(file.path());
    loop.run(48);

    cosim::CosimLoop resumed(o);
    resumed.load_checkpoint(file.path());
    resumed.run(48);

    EXPECT_EQ(resumed.state_fingerprint(), loop.state_fingerprint())
        << to_string(cls);
    EXPECT_EQ(cosim::serialize_report(resumed.report()),
              cosim::serialize_report(loop.report()))
        << to_string(cls);
  }
}

// --- generator invariants ---------------------------------------------------

TEST(Invariants, InjectionCountsMatchTheAnalyticPhaseSchedule) {
  const SystemConfig config = SystemConfig::reduced(16, 16);
  Rng fault_rng(5);
  const FaultMap faults =
      FaultMap::random_with_count(config.grid(), 10, fault_rng);
  for (const WorkloadClass cls : kDeterministicClasses) {
    auto gen = make_generator(spec_for(cls), config, faults);
    std::vector<Injection> buf;
    for (int c = 0; c < 300; ++c) {
      const auto scheduled = gen->next_scheduled_injections();
      ASSERT_TRUE(scheduled.has_value()) << to_string(cls);
      buf.clear();
      gen->emit(buf);
      EXPECT_EQ(buf.size(), *scheduled)
          << to_string(cls) << " at cycle " << c;
    }
  }
}

TEST(Invariants, NoInjectionTargetsAFaultyTile) {
  const SystemConfig config = SystemConfig::reduced(16, 16);
  Rng fault_rng(17);
  FaultMap faults = FaultMap::random_with_count(config.grid(), 20, fault_rng);
  for (const WorkloadClass cls : kAllClasses) {
    auto gen = make_generator(spec_for(cls), config, faults);
    std::vector<Injection> all = emit_stream(*gen, 200);
    // Kill 20 more tiles mid-run; the generator must re-derive around them.
    FaultMap more = faults;
    Rng more_rng(18);
    for (int k = 0; k < 20; ++k) {
      const auto healthy = more.healthy_tiles();
      more.set_faulty(healthy[more_rng.below(healthy.size())]);
    }
    gen->apply_fault_state(more);
    std::vector<Injection> after = emit_stream(*gen, 200);
    for (const Injection& i : all) {
      EXPECT_TRUE(faults.is_healthy(i.src)) << to_string(cls);
      EXPECT_TRUE(faults.is_healthy(i.dst)) << to_string(cls);
    }
    for (const Injection& i : after) {
      EXPECT_TRUE(more.is_healthy(i.src)) << to_string(cls);
      EXPECT_TRUE(more.is_healthy(i.dst)) << to_string(cls);
    }
  }
}

TEST(Invariants, SpikingBurstTotalsAreSeedDeterministic) {
  const SystemConfig config = SystemConfig::reduced(16, 16);
  const FaultMap faults(config.grid());
  const WorkloadSpec spec = spec_for(WorkloadClass::SpikingBurst);
  auto a = make_generator(spec, config, faults);
  auto b = make_generator(spec, config, faults);
  const std::vector<Injection> sa = emit_stream(*a, 400);
  const std::vector<Injection> sb = emit_stream(*b, 400);
  EXPECT_EQ(sa, sb) << "same seed must reproduce the same spike stream";
  EXPECT_GT(sa.size(), 0u);

  WorkloadSpec other = spec;
  other.seed = spec.seed + 1;
  auto c = make_generator(other, config, faults);
  EXPECT_NE(emit_stream(*c, 400), sa)
      << "different seeds should thin differently";
}

TEST(Invariants, RunSplitComposesForEveryGenerator) {
  // run(a); run(b) must be bit-identical to run(a+b) through the whole
  // coupled loop — generators keep no per-call state.
  for (const WorkloadClass cls : kAllClasses) {
    cosim::CosimOptions o;
    o.config = SystemConfig::reduced(16, 16);
    o.seed = 23;
    o.epoch_cycles = 32;
    o.workload = spec_for(cls);
    cosim::CosimLoop split(o);
    split.run(53);
    split.run(75);
    cosim::CosimLoop whole(o);
    whole.run(128);
    EXPECT_EQ(split.state_fingerprint(), whole.state_fingerprint())
        << to_string(cls);
  }
}

// --- the 32x32 coupled wafer ------------------------------------------------

TEST(CoupledWafer, AllClassesBitIdenticalAcrossThreadCountsOn32x32) {
  for (const WorkloadClass cls :
       {WorkloadClass::AllReduceRing, WorkloadClass::LayerPipeline,
        WorkloadClass::SpikingBurst}) {
    cosim::CosimOptions o;
    o.config = SystemConfig::reduced(32, 32);
    o.seed = 29;
    o.epoch_cycles = 64;
    o.noc.mesh.integrity.enabled = true;
    o.pdn.ldo.line_regulation = 0.1;
    o.ber.floor_ber = 1e-6;
    o.ber.volts_per_decade = 0.003;
    o.workload = spec_for(cls);
    // Spread the collective over the wafer for this run.
    o.workload.allreduce.rect_x1 = 31;
    o.workload.allreduce.rect_y1 = 7;
    o.workload.spiking.hotspot = {16, 16};

    std::uint32_t base_fp = 0;
    std::vector<std::uint8_t> base_report;
    for (const int threads : {1, 2, 8}) {
      exec::set_shared_threads(threads);
      cosim::CosimLoop loop(o);
      loop.run_epochs(2);
      const std::uint32_t fp = loop.state_fingerprint();
      const std::vector<std::uint8_t> rep =
          cosim::serialize_report(loop.report());
      if (threads == 1) {
        base_fp = fp;
        base_report = rep;
        // The run must actually exercise the wafer and report tail
        // latency per class through the registry gauges.
        EXPECT_GT(loop.report().noc_stats.completed, 0u) << to_string(cls);
        EXPECT_GT(
            loop.metrics().gauge("cosim.workload_p99_latency").value, 0.0)
            << to_string(cls);
        const noc::TrafficReport lat = loop.latency_summary();
        EXPECT_GE(lat.p99_latency, lat.p50_latency) << to_string(cls);
      } else {
        EXPECT_EQ(fp, base_fp) << to_string(cls) << " threads=" << threads;
        EXPECT_EQ(rep, base_report) << to_string(cls);
      }
    }
    exec::set_shared_threads(0);
  }
}

// --- campaign wiring --------------------------------------------------------

TEST(Campaign, WorkloadDrivenTrialsAreDeterministicAndFingerprinted) {
  resilience::CampaignOptions o;
  o.config = SystemConfig::reduced(8, 8);
  o.seed = 41;
  o.run_cycles = 600;
  o.mix = {1, 1, 0, 0, 0, 0};
  o.workload = spec_for(WorkloadClass::AllReduceRing);
  o.workload.allreduce.rect_x1 = 7;
  o.workload.allreduce.rect_y1 = 7;

  const resilience::DegradationCampaign campaign(o);
  const auto run_bytes = [&] {
    ckpt::Writer w;
    for (const resilience::DegradationReport& r : campaign.run_trials(2))
      resilience::save_report(w, r);
    return w.bytes();
  };
  EXPECT_EQ(run_bytes(), run_bytes());

  resilience::CampaignOptions synth = o;
  synth.workload = WorkloadSpec{};
  EXPECT_NE(campaign.options_fingerprint(),
            resilience::DegradationCampaign(synth).options_fingerprint())
      << "the workload spec must be part of the campaign identity";

  // The workload must actually traffic the wafer during the trial.
  const resilience::DegradationReport r = campaign.run();
  EXPECT_GT(r.noc_stats.issued, 0u);
}

}  // namespace
}  // namespace wsp::workloads
