// Property/fuzz coverage for wsp::ckpt: hostile bytes never crash.
//
// Two properties, hammered with seeded randomness (deterministic, so any
// failure replays):
//   1. Round-trip: snapshot a NoC at a *random* cycle under a *random*
//      fault/BER schedule, resume, and the continued run is bit-identical
//      to the straight-through run — the save/load pair has no
//      state-dependent blind spots.
//   2. Robustness: randomly bit-flipped, truncated, or garbage bytes fed
//      to the frame opener and to every load path either load cleanly or
//      throw a typed ckpt::Error — never crash, never read out of
//      bounds, never allocate from a hostile length.  CI runs this suite
//      under ASan/UBSan (the `checkpoint` label rides the sanitizer job),
//      which turns "no UB" from a claim into a check.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "wsp/ckpt/checkpoint.hpp"
#include "wsp/common/fault_map.hpp"
#include "wsp/common/rng.hpp"
#include "wsp/noc/noc_system.hpp"
#include "wsp/obs/metrics.hpp"
#include "wsp/resilience/campaign.hpp"
#include "wsp/resilience/fault_injector.hpp"
#include "wsp/resilience/fault_schedule.hpp"

namespace wsp {
namespace {

// Feeds `bytes` to `load`; acceptable outcomes are a clean load or a
// typed ckpt::Error.  Anything else (std::bad_alloc from a hostile
// length, a raw wsp::Error, a sanitizer abort) fails the property.
template <typename Load>
void expect_loads_or_typed_error(const std::vector<std::uint8_t>& bytes,
                                 Load&& load) {
  try {
    load(bytes);
  } catch (const ckpt::Error&) {
    // typed rejection: the contract
  }
}

TEST(CkptFuzz, RandomCycleSnapshotsResumeBitIdentical) {
  Rng meta(0xF00D);
  for (int round = 0; round < 6; ++round) {
    const int width = 6 + static_cast<int>(meta.below(6));
    const int height = 6 + static_cast<int>(meta.below(6));
    const TileGrid grid(width, height);
    const std::uint64_t total = 400 + meta.below(400);
    const std::uint64_t snap = 50 + meta.below(total - 100);
    const std::uint64_t traffic_seed = meta();

    noc::NocOptions opt;
    opt.response_timeout = 150 + meta.below(200);
    opt.max_retries = 1 + static_cast<int>(meta.below(3));
    if (meta.bernoulli(0.5)) {
      opt.mesh.integrity.enabled = true;
      opt.mesh.integrity.ber.floor_ber = 1e-5;
    }

    // Random runtime fault schedule, applied through a FaultInjector so
    // the injector state itself rides the snapshot too.
    resilience::ScheduleMix mix;
    mix.tile_deaths = meta.below(3);
    mix.link_failures = meta.below(3);
    mix.packet_corruptions = 0;  // applied by the campaign layer, not here
    Rng sched_rng(meta());
    const resilience::FaultSchedule schedule =
        resilience::FaultSchedule::random(grid, mix, total, sched_rng);

    const auto drive = [&](noc::NocSystem& noc,
                           resilience::FaultInjector& injector, Rng& rng,
                           std::uint64_t until) {
      std::vector<noc::CompletedTransaction> done;
      while (noc.now() < until) {
        if (!injector.advance_to(noc.now()).empty())
          noc.apply_fault_state(injector.faults(), injector.link_faults());
        const FaultMap& faults = injector.faults();
        grid.for_each([&](TileCoord src) {
          if (faults.is_faulty(src) || !rng.bernoulli(0.03)) return;
          const TileCoord dst = grid.coord_of(rng.below(grid.tile_count()));
          if (dst == src || faults.is_faulty(dst)) return;
          noc.issue(src, dst, noc::PacketType::ReadRequest);
        });
        noc.step(done);
      }
    };

    // Straight-through run, snapshotting at the random cycle.
    noc::NocSystem noc(FaultMap(grid), opt);
    resilience::FaultInjector injector(FaultMap(grid), schedule);
    Rng rng(traffic_seed);
    drive(noc, injector, rng, snap);
    ckpt::Writer w;
    noc.save_state(w);
    injector.save_state(w);
    for (std::uint64_t word : rng.state()) w.u64(word);
    const std::vector<std::uint8_t> frame = ckpt::seal(ckpt::fourcc("FUZZ"),
                                                       1, w);
    drive(noc, injector, rng, total);

    // Resume into fresh objects; the continuation must match bit for bit.
    const ckpt::Frame opened = ckpt::open_expect(frame, ckpt::fourcc("FUZZ"));
    ckpt::Reader r(opened.payload);
    noc::NocSystem resumed(FaultMap(grid), opt);
    resumed.load_state(r);
    resilience::FaultInjector resumed_injector(FaultMap(grid),
                                               resilience::FaultSchedule{});
    resumed_injector.load_state(r);
    std::array<std::uint64_t, 4> rng_state{};
    for (std::uint64_t& word : rng_state) word = r.u64();
    ASSERT_TRUE(r.done());
    Rng resumed_rng(1);
    resumed_rng.set_state(rng_state);
    drive(resumed, resumed_injector, resumed_rng, total);

    ckpt::Writer expect, got;
    noc.save_state(expect);
    injector.save_state(expect);
    resumed.save_state(got);
    resumed_injector.save_state(got);
    ASSERT_EQ(got.bytes(), expect.bytes())
        << "round " << round << ": " << width << "x" << height << " snap@"
        << snap << "/" << total;
  }
}

TEST(CkptFuzz, BitFlippedFramesNeverEscapeTheOpener) {
  // A mid-run NoC snapshot is a rich byte soup (rings, pools, RNGs);
  // single-bit damage anywhere in the frame must be caught by the header
  // checks or the CRC — open() either throws ckpt::Error or, for flips in
  // the state_version field only, returns a frame with the flipped
  // version (the payload is still CRC-clean there).
  const TileGrid grid(8, 8);
  noc::NocOptions opt;
  noc::NocSystem noc(FaultMap(grid), opt);
  Rng rng(21);
  std::vector<noc::CompletedTransaction> done;
  for (int c = 0; c < 300; ++c) {
    grid.for_each([&](TileCoord src) {
      if (!rng.bernoulli(0.05)) return;
      const TileCoord dst = grid.coord_of(rng.below(grid.tile_count()));
      if (dst != src) noc.issue(src, dst, noc::PacketType::ReadRequest);
    });
    noc.step(done);
  }
  ckpt::Writer w;
  noc.save_state(w);
  const std::vector<std::uint8_t> frame = ckpt::seal(ckpt::fourcc("NOCS"),
                                                     1, w);

  Rng fuzz(0xB17);
  for (int i = 0; i < 4000; ++i) {
    std::vector<std::uint8_t> hit = frame;
    hit[fuzz.below(hit.size())] ^= static_cast<std::uint8_t>(
        1u << fuzz.below(8));
    expect_loads_or_typed_error(hit, [&](const std::vector<std::uint8_t>& b) {
      const ckpt::Frame f = ckpt::open_expect(b, ckpt::fourcc("NOCS"));
      // Payload survived CRC: loading it must still be crash-free (the
      // flip can only have hit the state_version header field).
      noc::NocSystem target(FaultMap(grid), opt);
      ckpt::Reader r(f.payload);
      target.load_state(r);
    });
  }
}

TEST(CkptFuzz, TruncatedFramesAlwaysTyped) {
  ckpt::Writer w;
  for (int i = 0; i < 64; ++i) w.u64(i * 0x9E3779B97F4A7C15ull);
  const std::vector<std::uint8_t> frame = ckpt::seal(ckpt::fourcc("TRNC"),
                                                     1, w);
  for (std::size_t n = 0; n < frame.size(); ++n)
    EXPECT_THROW(ckpt::open(frame.data(), n), ckpt::Error) << "prefix " << n;
  // And pure garbage of every small size.
  Rng fuzz(0xDEAD);
  for (int i = 0; i < 500; ++i) {
    std::vector<std::uint8_t> garbage(fuzz.below(96));
    for (std::uint8_t& byte : garbage)
      byte = static_cast<std::uint8_t>(fuzz.below(256));
    expect_loads_or_typed_error(garbage,
                                [](const std::vector<std::uint8_t>& b) {
                                  ckpt::open(b.data(), b.size());
                                });
  }
}

TEST(CkptFuzz, CorruptPayloadsNeverCrashSubsystemLoaders) {
  // Damage *inside* an already-opened payload (the CRC layer bypassed on
  // purpose): every subsystem loader must bounds-check its own reads.
  // Outcomes are a clean load (the flip hit a don't-care or plausible
  // value) or ckpt::Error — never UB, per the sanitizer run.
  const TileGrid grid(8, 8);

  Rng sched_rng(3);
  resilience::ScheduleMix mix;
  mix.link_ber_degradations = 2;
  resilience::FaultInjector injector(
      FaultMap(grid),
      resilience::FaultSchedule::random(grid, mix, 500, sched_rng));
  injector.advance_to(250);
  ckpt::Writer inj_w;
  injector.save_state(inj_w);

  obs::MetricsRegistry registry;
  registry.counter("fuzz.count").value = 7;
  Rng hist_rng(9);
  for (int i = 0; i < 200; ++i)
    registry.histogram("fuzz.hist").record(hist_rng.below(1000));
  ckpt::Writer reg_w;
  registry.save_state(reg_w);

  Rng fuzz(0xFACE);
  const auto hammer = [&](const std::vector<std::uint8_t>& payload,
                          auto&& load) {
    for (int i = 0; i < 800; ++i) {
      std::vector<std::uint8_t> hit = payload;
      hit[fuzz.below(hit.size())] ^= static_cast<std::uint8_t>(
          1u << fuzz.below(8));
      expect_loads_or_typed_error(hit, load);
    }
    for (int i = 0; i < 200; ++i) {
      const auto cut = static_cast<std::ptrdiff_t>(fuzz.below(payload.size()));
      expect_loads_or_typed_error(
          std::vector<std::uint8_t>(payload.begin(), payload.begin() + cut),
          load);
    }
  };

  hammer(inj_w.bytes(), [&](const std::vector<std::uint8_t>& b) {
    resilience::FaultInjector target(FaultMap(grid),
                                     resilience::FaultSchedule{});
    ckpt::Reader r(b);
    target.load_state(r);
  });
  hammer(reg_w.bytes(), [&](const std::vector<std::uint8_t>& b) {
    obs::MetricsRegistry target;
    ckpt::Reader r(b);
    target.load_state(r);
  });
}

TEST(CkptFuzz, CorruptCampaignFilesAlwaysTyped) {
  resilience::CampaignOptions o;
  o.config = SystemConfig::reduced(8, 8);
  o.seed = 23;
  o.run_cycles = 800;
  o.fault_horizon = 600;
  const resilience::DegradationCampaign campaign(o);
  const resilience::CampaignReportsFile file{
      campaign.options_fingerprint(), 2, 0, campaign.run_trials(2)};
  const std::string path = "CKPT_fuzz_campaign.wsp";
  resilience::save_campaign_reports(path, file);
  const std::vector<std::uint8_t> bytes = ckpt::read_file(path);

  Rng fuzz(0xCA11);
  for (int i = 0; i < 300; ++i) {
    std::vector<std::uint8_t> hit = bytes;
    if (fuzz.bernoulli(0.5)) {
      hit[fuzz.below(hit.size())] ^= static_cast<std::uint8_t>(
          1u << fuzz.below(8));
    } else {
      hit.resize(fuzz.below(hit.size()));
    }
    ckpt::atomic_write_file(path, hit.data(), hit.size());
    expect_loads_or_typed_error(hit, [&](const std::vector<std::uint8_t>&) {
      resilience::load_campaign_reports(path);
    });
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace wsp
