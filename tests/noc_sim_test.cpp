// Cycle-level NoC tests: single-network mesh behaviour, dual-network
// request/response pairing (Fig. 7), kernel network selection and
// intermediate-tile relaying.
#include <gtest/gtest.h>

#include "wsp/common/error.hpp"
#include "wsp/noc/mesh_network.hpp"
#include "wsp/noc/noc_system.hpp"
#include "wsp/noc/traffic.hpp"

namespace wsp::noc {
namespace {

Packet make_packet(TileCoord src, TileCoord dst, std::uint64_t id) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.id = id;
  p.request_id = id;
  return p;
}

// ------------------------------------------------------------ MeshNetwork

TEST(MeshNetwork, DeliversSinglePacket) {
  MeshNetwork net(FaultMap(TileGrid(8, 8)), NetworkKind::XY);
  ASSERT_TRUE(net.inject(make_packet({0, 0}, {5, 0}, 1)));
  std::vector<Packet> out;
  for (int c = 0; c < 50 && out.empty(); ++c) net.step(out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id, 1u);
  EXPECT_EQ(net.stats().ejected, 1u);
  EXPECT_EQ(net.in_flight(), 0u);
}

TEST(MeshNetwork, LatencyScalesWithHops) {
  // Hop latency = link_latency per hop plus router cycles: a 2x-longer
  // path takes about 2x longer.
  auto latency_for = [](TileCoord dst) {
    MeshNetwork net(FaultMap(TileGrid(16, 16)), NetworkKind::XY,
                    {.input_queue_capacity = 4, .link_latency = 2});
    Packet p = make_packet({0, 0}, dst, 1);
    EXPECT_TRUE(net.inject(p));
    std::vector<Packet> out;
    for (int c = 0; c < 200 && out.empty(); ++c) net.step(out);
    EXPECT_EQ(out.size(), 1u);
    return out[0].delivered_cycle;
  };
  const auto l4 = latency_for({4, 0});
  const auto l8 = latency_for({8, 0});
  EXPECT_GT(l8, l4);
  EXPECT_NEAR(static_cast<double>(l8) / l4, 2.0, 0.5);
}

TEST(MeshNetwork, SelfDeliveryEjectsLocally) {
  MeshNetwork net(FaultMap(TileGrid(4, 4)), NetworkKind::XY);
  ASSERT_TRUE(net.inject(make_packet({2, 2}, {2, 2}, 9)));
  std::vector<Packet> out;
  for (int c = 0; c < 5 && out.empty(); ++c) net.step(out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id, 9u);
}

TEST(MeshNetwork, InOrderDeliveryPerPair) {
  MeshNetwork net(FaultMap(TileGrid(8, 8)), NetworkKind::XY);
  std::vector<Packet> out;
  std::uint64_t id = 1;
  int injected = 0;
  for (int c = 0; c < 400; ++c) {
    if (injected < 50) {
      Packet p = make_packet({0, 3}, {7, 5}, id);
      p.payload = id;
      if (net.inject(p)) {
        ++id;
        ++injected;
      }
    }
    net.step(out);
  }
  for (int c = 0; c < 200; ++c) net.step(out);
  ASSERT_EQ(out.size(), 50u);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i].payload, i + 1) << "out-of-order delivery";
}

TEST(MeshNetwork, BackpressureBlocksInjection) {
  // Tiny queues + a flood toward one destination: injection must
  // eventually refuse instead of dropping.
  MeshNetwork net(FaultMap(TileGrid(4, 4)), NetworkKind::XY,
                  {.input_queue_capacity = 1, .link_latency = 1});
  int accepted = 0;
  std::vector<Packet> out;
  for (int c = 0; c < 10; ++c) {
    if (net.inject(make_packet({0, 0}, {3, 3}, 100 + c))) ++accepted;
  }
  EXPECT_LT(accepted, 10);
  for (int c = 0; c < 200; ++c) net.step(out);
  EXPECT_EQ(out.size(), static_cast<std::size_t>(accepted));
}

TEST(MeshNetwork, DropsPacketRoutedIntoFaultyTile) {
  FaultMap faults(TileGrid(8, 8));
  faults.set_faulty({4, 0});
  MeshNetwork net(faults, NetworkKind::XY);
  // XY route (0,0)->(7,0) runs straight through the dead tile.
  ASSERT_TRUE(net.inject(make_packet({0, 0}, {7, 0}, 1)));
  std::vector<Packet> out;
  for (int c = 0; c < 100; ++c) net.step(out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(net.stats().dropped_at_fault, 1u);
  EXPECT_EQ(net.in_flight(), 0u);
}

TEST(MeshNetwork, CannotInjectAtFaultyTile) {
  FaultMap faults(TileGrid(4, 4));
  faults.set_faulty({1, 1});
  MeshNetwork net(faults, NetworkKind::XY);
  EXPECT_FALSE(net.inject(make_packet({1, 1}, {0, 0}, 1)));
}

TEST(MeshNetwork, ThroughputUnderContention) {
  // All tiles firing at one column still drains: conservation check.
  MeshNetwork net(FaultMap(TileGrid(8, 8)), NetworkKind::XY);
  std::vector<Packet> out;
  std::uint64_t id = 1;
  for (int round = 0; round < 20; ++round) {
    for (int y = 0; y < 8; ++y)
      net.inject(make_packet({0, y}, {7, 7 - y}, id++));
    net.step(out);
  }
  for (int c = 0; c < 500; ++c) net.step(out);
  EXPECT_EQ(out.size() + net.stats().dropped_at_fault,
            net.stats().injected);
  EXPECT_EQ(net.in_flight(), 0u);
}

// ---------------------------------------------------------- NetworkSelector

TEST(NetworkSelector, BalancedPairsUseBothNetworks) {
  const NetworkSelector sel(FaultMap(TileGrid(16, 16)));
  int xy = 0, yx = 0;
  for (int x = 0; x < 16; ++x)
    for (int y = 0; y < 16; ++y) {
      const RoutePlan plan = sel.plan({0, 0}, {x, y});
      if (!plan.reachable) continue;
      ASSERT_EQ(plan.segment_networks.size(), 1u);
      (plan.segment_networks[0] == NetworkKind::XY ? xy : yx)++;
    }
  // Both networks carry a substantial share (paper: "equally utilized").
  EXPECT_GT(xy, 64);
  EXPECT_GT(yx, 64);
}

TEST(NetworkSelector, PlanIsDeterministicPerPair) {
  const NetworkSelector sel(FaultMap(TileGrid(8, 8)));
  const RoutePlan a = sel.plan({1, 2}, {6, 3});
  const RoutePlan b = sel.plan({1, 2}, {6, 3});
  EXPECT_EQ(a.segment_networks, b.segment_networks);
}

TEST(NetworkSelector, PicksTheSurvivingNetwork) {
  FaultMap faults(TileGrid(8, 8));
  faults.set_faulty({4, 0});  // kills XY for (0,0)->(7,3) via corner row
  const NetworkSelector sel(faults);
  const RoutePlan plan = sel.plan({0, 0}, {7, 3});
  ASSERT_TRUE(plan.reachable);
  EXPECT_FALSE(plan.relayed);
  EXPECT_EQ(plan.segment_networks[0], NetworkKind::YX);
}

TEST(NetworkSelector, RelaysWhenBothPathsDie) {
  FaultMap faults(TileGrid(8, 8));
  faults.set_faulty({3, 2});  // same-row blocker
  const NetworkSelector sel(faults);
  const RoutePlan plan = sel.plan({0, 2}, {7, 2});
  ASSERT_TRUE(plan.reachable);
  EXPECT_TRUE(plan.relayed);
  ASSERT_EQ(plan.waypoints.size(), 3u);
  EXPECT_EQ(plan.segment_networks.size(), 2u);
}

// --------------------------------------------------------------- NocSystem

TEST(NocSystem, ReadRoundTripCompletes) {
  NocSystem noc(FaultMap(TileGrid(8, 8)));
  const auto id = noc.issue({1, 1}, {6, 4}, PacketType::ReadRequest, 0xBEEF);
  ASSERT_TRUE(id.has_value());
  std::vector<CompletedTransaction> done;
  ASSERT_TRUE(noc.drain(done));
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].id, *id);
  EXPECT_EQ(done[0].src, (TileCoord{1, 1}));
  EXPECT_EQ(done[0].dst, (TileCoord{6, 4}));
  EXPECT_GT(done[0].latency(), 0u);
  EXPECT_EQ(noc.stats().completed, 1u);
}

TEST(NocSystem, ResponseUsesComplementaryNetwork) {
  // Fig. 7's protocol rule, observable through per-network stats: one
  // transaction puts exactly one packet on each network.
  NocSystem noc(FaultMap(TileGrid(8, 8)));
  ASSERT_TRUE(noc.issue({0, 0}, {5, 5}, PacketType::ReadRequest).has_value());
  std::vector<CompletedTransaction> done;
  ASSERT_TRUE(noc.drain(done));
  EXPECT_EQ(noc.network(NetworkKind::XY).stats().injected +
                noc.network(NetworkKind::YX).stats().injected,
            2u);
  EXPECT_EQ(noc.network(NetworkKind::XY).stats().injected, 1u);
  EXPECT_EQ(noc.network(NetworkKind::YX).stats().injected, 1u);
}

TEST(NocSystem, RoundTripWorksWheneverOnePathExists) {
  // Kill the XY path; two-way communication must still succeed.
  FaultMap faults(TileGrid(8, 8));
  faults.set_faulty({4, 0});
  NocSystem noc(faults);
  const auto id = noc.issue({0, 0}, {7, 3}, PacketType::WriteRequest);
  ASSERT_TRUE(id.has_value());
  std::vector<CompletedTransaction> done;
  ASSERT_TRUE(noc.drain(done));
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(noc.network(NetworkKind::XY).stats().dropped_at_fault, 0u);
  EXPECT_EQ(noc.network(NetworkKind::YX).stats().dropped_at_fault, 0u);
}

TEST(NocSystem, RelayedTransactionCompletesWithExtraLatency) {
  FaultMap faults(TileGrid(8, 8));
  faults.set_faulty({3, 2});
  NocSystem noc(faults);
  std::vector<CompletedTransaction> done;

  // A clean same-distance pair for comparison.
  NocSystem clean(FaultMap(TileGrid(8, 8)));
  ASSERT_TRUE(clean.issue({0, 2}, {7, 2}, PacketType::ReadRequest));
  std::vector<CompletedTransaction> clean_done;
  ASSERT_TRUE(clean.drain(clean_done));

  ASSERT_TRUE(noc.issue({0, 2}, {7, 2}, PacketType::ReadRequest));
  ASSERT_TRUE(noc.drain(done));
  ASSERT_EQ(done.size(), 1u);
  EXPECT_TRUE(done[0].relayed);
  EXPECT_EQ(noc.stats().relayed, 1u);
  // The relay costs extra hops plus core cycles at the intermediate tile.
  EXPECT_GT(done[0].latency(), clean_done[0].latency());
}

TEST(NocSystem, UnreachableDestinationRejected) {
  FaultMap faults(TileGrid(8, 8));
  for (TileCoord f : {TileCoord{4, 5}, TileCoord{5, 4}, TileCoord{4, 3},
                      TileCoord{3, 4}})
    faults.set_faulty(f);
  NocSystem noc(faults);
  EXPECT_FALSE(noc.issue({0, 0}, {4, 4}, PacketType::ReadRequest).has_value());
  EXPECT_EQ(noc.stats().unreachable, 1u);
}

TEST(NocSystem, ManyTransactionsAllComplete) {
  NocSystem noc(FaultMap(TileGrid(8, 8)));
  Rng rng(3);
  const TileGrid grid(8, 8);
  int issued = 0;
  std::vector<CompletedTransaction> done;
  for (int i = 0; i < 500; ++i) {
    const TileCoord s = grid.coord_of(rng.below(64));
    const TileCoord d = grid.coord_of(rng.below(64));
    if (noc.issue(s, d, PacketType::ReadRequest, rng()).has_value())
      ++issued;
    noc.step(done);
  }
  ASSERT_TRUE(noc.drain(done));
  EXPECT_EQ(static_cast<int>(done.size()), issued);
  EXPECT_EQ(noc.stats().completed, static_cast<std::uint64_t>(issued));
}

TEST(NocSystem, RejectsResponseTypeAtIssue) {
  NocSystem noc(FaultMap(TileGrid(4, 4)));
  EXPECT_THROW(noc.issue({0, 0}, {1, 1}, PacketType::ReadResponse), Error);
}

// ----------------------------------------------------------------- traffic

TEST(Traffic, UniformRandomReportIsConsistent) {
  NocSystem noc(FaultMap(TileGrid(8, 8)));
  Rng rng(5);
  TrafficConfig cfg;
  cfg.injection_rate = 0.01;
  const TrafficReport r = run_traffic(noc, cfg, 500, rng);
  EXPECT_EQ(r.issued, r.completed + r.unreachable);
  EXPECT_EQ(r.unreachable, 0u);
  EXPECT_GT(r.mean_latency, 0.0);
  EXPECT_LE(r.mean_latency, static_cast<double>(r.max_latency));
  // Percentiles are ordered and bracket the distribution.
  EXPECT_GT(r.p50_latency, 0u);
  EXPECT_LE(r.p50_latency, r.p95_latency);
  EXPECT_LE(r.p95_latency, r.p99_latency);
  EXPECT_LE(r.p99_latency, r.max_latency);
}

TEST(Traffic, DualNetworksBeatSingleUnderLoad) {
  // The second DoR network roughly doubles usable bandwidth; at an
  // injection rate past single-network saturation, mean latency must be
  // clearly lower with both networks (here: compare the same offered load
  // against a single-network system built by only issuing XY requests —
  // approximated by halving the injection rate for the dual system).
  const TileGrid grid(8, 8);
  Rng rng_a(7), rng_b(7);
  NocSystem dual{FaultMap(grid)};
  TrafficConfig heavy;
  heavy.injection_rate = 0.08;
  const TrafficReport r_dual = run_traffic(dual, heavy, 600, rng_a);
  // All traffic forced through one network by pairing each request with
  // its response on the complement but issuing every pair on XY: emulate
  // by doubling the rate on the dual system and comparing saturation.
  NocSystem stressed{FaultMap(grid)};
  TrafficConfig heavier = heavy;
  heavier.injection_rate = 0.16;
  const TrafficReport r_stressed = run_traffic(stressed, heavier, 600, rng_b);
  // Throughput keeps scaling before saturation: the dual fabric absorbed
  // 2x the offered load with sub-2x latency growth.
  EXPECT_GT(r_stressed.throughput, r_dual.throughput * 1.5);
  EXPECT_LT(r_stressed.mean_latency, r_dual.mean_latency * 4.0);
}

TEST(Traffic, PatternsProduceValidDestinations) {
  const FaultMap faults(TileGrid(8, 8));
  Rng rng(9);
  for (const auto pattern :
       {TrafficPattern::UniformRandom, TrafficPattern::Transpose,
        TrafficPattern::BitComplement, TrafficPattern::Hotspot,
        TrafficPattern::NearNeighbor}) {
    TrafficConfig cfg;
    cfg.pattern = pattern;
    cfg.hotspot = {3, 3};
    for (int i = 0; i < 200; ++i) {
      const TileCoord src = faults.grid().coord_of(rng.below(64));
      const TileCoord dst = pick_destination(faults, src, cfg, rng);
      EXPECT_TRUE(faults.grid().contains(dst)) << to_string(pattern);
    }
  }
}

TEST(Traffic, HotspotConcentratesTraffic) {
  const FaultMap faults(TileGrid(8, 8));
  Rng rng(13);
  TrafficConfig cfg;
  cfg.pattern = TrafficPattern::Hotspot;
  cfg.hotspot_fraction = 0.5;
  cfg.hotspot = {4, 4};
  int hot = 0;
  for (int i = 0; i < 1000; ++i) {
    const TileCoord dst = pick_destination(faults, {0, 0}, cfg, rng);
    if (dst == cfg.hotspot) ++hot;
  }
  EXPECT_NEAR(hot, 500, 70);
}

}  // namespace
}  // namespace wsp::noc
