// PDN <-> NoC co-simulation tests: the coupled epoch loop's physics
// (traffic hotspot -> localized droop -> elevated BER on the hot links),
// its determinism (thread-count and epoch-split invariance, mid-run BER
// swaps), checkpoint kill-and-resume bit-identity, and warm-start
// agreement with cold solves.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "wsp/ckpt/checkpoint.hpp"
#include "wsp/common/error.hpp"
#include "wsp/cosim/cosim.hpp"
#include "wsp/exec/thread_pool.hpp"
#include "wsp/noc/traffic.hpp"
#include "wsp/pdn/wafer_pdn.hpp"

namespace wsp::cosim {
namespace {

class TempFile {
 public:
  explicit TempFile(const char* name) : path_(name) {}
  ~TempFile() {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// The coupled 32x32 configuration the physics assertions run on: a
/// center hotspot, link integrity on, and an amplified voltage->BER
/// mapping so millivolt-scale regulated deltas are measurable within a
/// few epochs.
CosimOptions coupled_32x32(noc::TrafficPattern pattern) {
  CosimOptions o;
  o.config = SystemConfig::reduced(32, 32);
  o.seed = 21;
  o.epoch_cycles = 64;
  o.noc.mesh.integrity.enabled = true;
  o.traffic.pattern = pattern;
  o.traffic.injection_rate = 0.05;
  o.traffic.hotspot = {16, 16};
  o.pdn.ldo.line_regulation = 0.1;
  o.ber.floor_ber = 1e-6;
  o.ber.volts_per_decade = 0.003;
  return o;
}

CosimOptions small_options(std::uint64_t epoch_cycles = 32) {
  CosimOptions o;
  o.config = SystemConfig::reduced(8, 8);
  o.seed = 5;
  o.epoch_cycles = epoch_cycles;
  o.noc.mesh.integrity.enabled = true;
  o.traffic.injection_rate = 0.04;
  o.pdn.ldo.line_regulation = 0.1;
  o.ber.floor_ber = 1e-6;
  o.ber.volts_per_decade = 0.003;
  return o;
}

TEST(ActivityPowerMap, IdleTilesDrawTheFloorAndActivityRamps) {
  const SystemConfig cfg = SystemConfig::reduced(4, 4);
  const FaultMap faults(cfg.grid());
  std::vector<noc::TileActivity> delta(16);
  const ActivityScale scale;
  std::vector<double> idle =
      activity_power_map(delta, faults, cfg.tile_peak_power_w, 64, scale);
  for (const double p : idle)
    EXPECT_DOUBLE_EQ(p, cfg.tile_peak_power_w * scale.idle_fraction);
  // Saturating activity on one tile pins it at peak power.
  delta[5].traversals = 100000;
  std::vector<double> hot =
      activity_power_map(delta, faults, cfg.tile_peak_power_w, 64, scale);
  EXPECT_DOUBLE_EQ(hot[5], cfg.tile_peak_power_w);
  EXPECT_GT(hot[5], idle[5]);
}

TEST(ActivityPowerMap, FaultyTilesDrawNothing) {
  const SystemConfig cfg = SystemConfig::reduced(4, 4);
  FaultMap faults(cfg.grid());
  faults.set_faulty({1, 1}, true);
  std::vector<noc::TileActivity> delta(16);
  delta[cfg.grid().index_of({1, 1})].traversals = 1000;
  const std::vector<double> power =
      activity_power_map(delta, faults, cfg.tile_peak_power_w, 64, {});
  EXPECT_DOUBLE_EQ(power[cfg.grid().index_of({1, 1})], 0.0);
}

TEST(ActivityPowerMap, RejectsBadInputs) {
  const SystemConfig cfg = SystemConfig::reduced(4, 4);
  const FaultMap faults(cfg.grid());
  EXPECT_THROW(activity_power_map(std::vector<noc::TileActivity>(3), faults,
                                  1.0, 64, {}),
               Error);
  EXPECT_THROW(activity_power_map(std::vector<noc::TileActivity>(16), faults,
                                  1.0, 0, {}),
               Error);
  ActivityScale bad;
  bad.flits_per_cycle_at_peak = 0.0;
  EXPECT_THROW(activity_power_map(std::vector<noc::TileActivity>(16), faults,
                                  1.0, 64, bad),
               Error);
}

// ------------------------------------------------------ coupled physics

TEST(CosimLoop, HotspotTrafficDeepensLocalDroop) {
  CosimLoop loop(coupled_32x32(noc::TrafficPattern::Hotspot));
  loop.run_epochs(3);
  const TileGrid grid = loop.options().config.grid();
  const pdn::PdnReport& coupled = loop.last_coupled_pdn();
  const pdn::PdnReport& baseline = loop.last_static_pdn();
  ASSERT_EQ(coupled.tiles.size(), grid.tile_count());
  // The hotspot tile sags measurably below the static idle-floor solve...
  const std::size_t hot = grid.index_of({16, 16});
  const double hot_excess =
      baseline.tiles[hot].supply_v - coupled.tiles[hot].supply_v;
  EXPECT_GT(hot_excess, 0.01);
  // ...and deeper than a far corner tile does (localized droop).
  const std::size_t corner = grid.index_of({1, 1});
  const double corner_excess =
      baseline.tiles[corner].supply_v - coupled.tiles[corner].supply_v;
  EXPECT_GT(hot_excess, corner_excess * 1.5);
  // Epoch reports saw the same coupling.
  EXPECT_GT(loop.epochs().back().max_excess_droop_v, 0.01);
  EXPECT_GT(loop.epochs().back().traversals, 0u);
}

TEST(CosimLoop, HotspotRaisesBerOnHotLinksVsStaticBaseline) {
  CosimLoop loop(coupled_32x32(noc::TrafficPattern::Hotspot));
  loop.run_epochs(3);
  const TileGrid grid = loop.options().config.grid();
  // The map the meshes currently sample (adopted from the last epoch
  // swap): the links at the hotspot run a measurably elevated BER.
  const double hot_ber = loop.noc().link_ber().ber({16, 16}, Direction::East);
  EXPECT_GT(hot_ber, loop.options().ber.floor_ber * 2.0);
  // ...higher than a far corner link in the same run (localized), ...
  EXPECT_GT(hot_ber, loop.noc().link_ber().ber({1, 1}, Direction::East));
  // ...and higher than what the static idle-floor baseline would give the
  // same link — an uncoupled campaign would under-estimate this BER.
  const pdn::PdnReport& baseline = loop.last_static_pdn();
  ASSERT_EQ(baseline.tiles.size(), grid.tile_count());
  std::vector<double> static_v(baseline.tiles.size());
  for (std::size_t i = 0; i < static_v.size(); ++i)
    static_v[i] = baseline.tiles[i].regulated_v;
  const noc::LinkBerMap static_ber = noc::LinkBerMap::from_tile_voltages(
      grid, static_v, loop.options().ber);
  EXPECT_GT(hot_ber, static_ber.ber({16, 16}, Direction::East) * 2.0);
}

/// Mean excess droop (static baseline minus coupled supply) over the tiles
/// of rows [y0, y1].
double band_excess_droop(const CosimLoop& loop, int y0, int y1) {
  const TileGrid grid = loop.options().config.grid();
  const pdn::PdnReport& coupled = loop.last_coupled_pdn();
  const pdn::PdnReport& baseline = loop.last_static_pdn();
  double sum = 0.0;
  int n = 0;
  for (int y = y0; y <= y1; ++y)
    for (int x = 0; x < grid.width(); ++x) {
      const std::size_t i = grid.index_of({x, y});
      sum += baseline.tiles[i].supply_v - coupled.tiles[i].supply_v;
      ++n;
    }
  return sum / n;
}

/// Mean eastbound-link BER currently adopted by the meshes over rows
/// [y0, y1].
double band_mean_ber(const CosimLoop& loop, int y0, int y1) {
  const TileGrid grid = loop.options().config.grid();
  double sum = 0.0;
  int n = 0;
  for (int y = y0; y <= y1; ++y)
    for (int x = 0; x + 1 < grid.width(); ++x) {
      sum += loop.noc().link_ber().ber({x, y}, Direction::East);
      ++n;
    }
  return sum / n;
}

/// Static-baseline mean eastbound BER over rows [y0, y1]: the BER the
/// idle-floor PDN solve would predict for the same links.
double band_static_ber(const CosimLoop& loop, int y0, int y1) {
  const TileGrid grid = loop.options().config.grid();
  const pdn::PdnReport& baseline = loop.last_static_pdn();
  std::vector<double> v(baseline.tiles.size());
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = baseline.tiles[i].regulated_v;
  const noc::LinkBerMap map =
      noc::LinkBerMap::from_tile_voltages(grid, v, loop.options().ber);
  double sum = 0.0;
  int n = 0;
  for (int y = y0; y <= y1; ++y)
    for (int x = 0; x + 1 < grid.width(); ++x) {
      sum += map.ber({x, y}, Direction::East);
      ++n;
    }
  return sum / n;
}

TEST(CosimLoop, AllReduceRingConcentratesDroopAndBerAlongTheRingPath) {
  // Confine the collective to the four-row band 14..17; the ring's
  // sustained all-to-successor traffic must sag the supply and raise link
  // BER along that band, not across the whole wafer.  A load-matched
  // uniform-random run (~the same injections/cycle, spread wafer-wide)
  // droops the same central band too — the IR bowl lives there — but far
  // less *selectively*: the directional claim is the concentration ratio,
  // not the absolute sag, because uniform's long paths burn more total
  // traversal power for the same injected packets.
  CosimOptions o = coupled_32x32(noc::TrafficPattern::UniformRandom);
  o.ber.floor_ber = 1e-9;
  o.ber.nominal_v = 1.107;  // knee just above the band's regulated rail
  o.workload.cls = workloads::WorkloadClass::AllReduceRing;
  o.workload.seed = o.seed;
  o.workload.allreduce.chunk_packets = 4;
  o.workload.allreduce.step_cycles = 4;
  o.workload.allreduce.gap_cycles = 0;
  o.workload.allreduce.rect_x0 = 0;
  o.workload.allreduce.rect_y0 = 14;
  o.workload.allreduce.rect_x1 = 31;
  o.workload.allreduce.rect_y1 = 17;
  CosimLoop ring(o);
  ring.run_epochs(3);

  // The ring band droops hard and locally.
  const double band = band_excess_droop(ring, 14, 17);
  const double outside = band_excess_droop(ring, 0, 10);
  EXPECT_GT(band, 0.05);
  EXPECT_GT(band, outside * 2.5)
      << "ring traffic must droop its own band hardest";

  // 128 ring members injecting 1 pkt/cycle ~= 1024 tiles at rate 0.125.
  CosimOptions u = o;
  u.workload = workloads::WorkloadSpec{};
  u.traffic.injection_rate = 0.0125;
  CosimLoop uniform(u);
  uniform.run_epochs(3);
  const double uniform_ratio = band_excess_droop(uniform, 14, 17) /
                               band_excess_droop(uniform, 0, 10);
  EXPECT_GT(band / outside, uniform_ratio * 1.5)
      << "the ring must concentrate droop on its band far more than "
         "load-matched uniform traffic does";

  // The band's links run an elevated BER: above the run's own remote
  // links and above what the static idle-floor baseline predicts for the
  // very same links (an uncoupled campaign would under-estimate it).
  const double band_ber = band_mean_ber(ring, 14, 17);
  EXPECT_GT(band_ber, band_mean_ber(ring, 0, 10) * 2.0);
  EXPECT_GT(band_ber, band_static_ber(ring, 14, 17) * 2.0);
}

TEST(CosimLoop, SpikingHotspotRecoversToIdleFloorWithinAnEpochOfBurstEnd) {
  // One deterministic burst at the wafer center, dying out before the
  // first epoch boundary; no background firing afterwards.  The coupled
  // power and droop must fall back to the idle floor within an epoch of
  // the burst ending.
  CosimOptions o = coupled_32x32(noc::TrafficPattern::UniformRandom);
  o.workload.cls = workloads::WorkloadClass::SpikingBurst;
  o.workload.seed = o.seed;
  o.workload.spiking.background_rate = 0.0;
  o.workload.spiking.burst_rate = 0.0;
  o.workload.spiking.burst_interval = 1;  // fires at cycle 0 ...
  o.workload.spiking.max_bursts = 1;      // ... and never again
  o.workload.spiking.hotspot = {16, 16};
  o.workload.spiking.burst_radius = 4;
  o.workload.spiking.burst_cycles = 40;  // ends mid-epoch (epoch = 64)
  o.workload.spiking.burst_intensity = 0.8;
  CosimLoop loop(o);
  loop.run_epochs(3);
  ASSERT_EQ(loop.epochs().size(), 3u);

  const TileGrid grid = loop.options().config.grid();
  const double idle_floor_w = grid.tile_count() *
                              loop.options().config.tile_peak_power_w *
                              loop.options().scale.idle_fraction;
  const EpochReport& burst_epoch = loop.epochs()[0];
  const EpochReport& settled = loop.epochs()[2];
  // The burst epoch ran hot ...
  EXPECT_GT(burst_epoch.injections, 0u);
  EXPECT_GT(burst_epoch.total_power_w, idle_floor_w + 0.5);
  EXPECT_GT(burst_epoch.max_excess_droop_v, 0.001);
  // ... and one epoch after the avalanche died, the wafer is back at the
  // idle floor: no injections, idle-floor power, no excess droop.
  EXPECT_EQ(settled.injections, 0u);
  EXPECT_NEAR(settled.total_power_w, idle_floor_w, idle_floor_w * 0.01);
  EXPECT_LT(settled.max_excess_droop_v, 1e-3);
  EXPECT_LT(settled.total_power_w, burst_epoch.total_power_w);
}

// ------------------------------------------------------------ determinism

TEST(CosimLoop, BitIdenticalAcrossThreadCounts) {
  std::uint32_t serial_fp = 0;
  std::vector<std::uint8_t> serial_report;
  for (const int threads : {1, 2, 8}) {
    exec::set_shared_threads(threads);
    CosimLoop loop(small_options());
    loop.run_epochs(4);
    const std::uint32_t fp = loop.state_fingerprint();
    const std::vector<std::uint8_t> bytes = serialize_report(loop.report());
    if (threads == 1) {
      serial_fp = fp;
      serial_report = bytes;
    } else {
      EXPECT_EQ(fp, serial_fp) << "threads=" << threads;
      EXPECT_EQ(bytes, serial_report) << "threads=" << threads;
    }
  }
  exec::set_shared_threads(0);
}

TEST(CosimLoop, RunSplitIsInvariant) {
  CosimLoop straight(small_options());
  straight.run(96);
  CosimLoop split(small_options());
  split.run(17);
  split.run(40);
  split.run(39);
  EXPECT_EQ(split.state_fingerprint(), straight.state_fingerprint());
  EXPECT_EQ(serialize_report(split.report()),
            serialize_report(straight.report()));
}

// --------------------------------------- staged BER swap (NocSystem)

TEST(StagedBerSwap, AdoptsOnlyAtNextCycleBoundary) {
  const SystemConfig cfg = SystemConfig::reduced(4, 4);
  const FaultMap faults(cfg.grid());
  noc::NocOptions opt;
  opt.mesh.integrity.enabled = true;
  noc::NocSystem noc(faults, opt);
  noc.set_link_ber(noc::LinkBerMap::uniform(cfg.grid(), 1e-4));
  // Staged: the meshes keep sampling the old (error-free) map until the
  // next cycle boundary.
  EXPECT_DOUBLE_EQ(noc.link_ber().ber({1, 1}, Direction::East), 0.0);
  std::vector<noc::CompletedTransaction> done;
  noc.step(done);
  EXPECT_DOUBLE_EQ(noc.link_ber().ber({1, 1}, Direction::East), 1e-4);
  // Re-staging before the boundary replaces the staged map: last writer
  // wins, exactly one coherent map per cycle.
  noc.set_link_ber(noc::LinkBerMap::uniform(cfg.grid(), 1e-5));
  noc.set_link_ber(noc::LinkBerMap::uniform(cfg.grid(), 1e-6));
  noc.step(done);
  EXPECT_DOUBLE_EQ(noc.link_ber().ber({1, 1}, Direction::East), 1e-6);
}

TEST(StagedBerSwap, SurvivesFaultStateChangeBeforeTheBoundary) {
  // Regression for the campaign rebind ordering: the BER rebind now runs
  // after clock re-selection and apply_fault_state.  A map staged before
  // (or after) a fault-state change in the same cycle must still land at
  // the next boundary.
  const SystemConfig cfg = SystemConfig::reduced(4, 4);
  FaultMap faults(cfg.grid());
  noc::NocOptions opt;
  opt.mesh.integrity.enabled = true;
  noc::NocSystem noc(faults, opt);
  noc.set_link_ber(noc::LinkBerMap::uniform(cfg.grid(), 1e-4));
  faults.set_faulty({2, 2}, true);
  noc.apply_fault_state(faults);
  std::vector<noc::CompletedTransaction> done;
  noc.step(done);
  EXPECT_DOUBLE_EQ(noc.link_ber().ber({1, 1}, Direction::East), 1e-4);
}

TEST(StagedBerSwap, StagedMapSurvivesCheckpointRoundTrip) {
  const SystemConfig cfg = SystemConfig::reduced(4, 4);
  const FaultMap faults(cfg.grid());
  noc::NocOptions opt;
  opt.mesh.integrity.enabled = true;
  noc::NocSystem a(faults, opt);
  a.set_link_ber(noc::LinkBerMap::uniform(cfg.grid(), 2e-5));
  ckpt::Writer w;
  a.save_state(w);
  noc::NocSystem b(faults, opt);
  ckpt::Reader r(w.bytes());
  b.load_state(r);
  std::vector<noc::CompletedTransaction> done;
  b.step(done);
  EXPECT_DOUBLE_EQ(b.link_ber().ber({1, 1}, Direction::East), 2e-5);
}

TEST(StagedBerSwap, RejectsGridMismatch) {
  const SystemConfig cfg = SystemConfig::reduced(4, 4);
  noc::NocOptions opt;
  opt.mesh.integrity.enabled = true;
  noc::NocSystem noc(FaultMap(cfg.grid()), opt);
  try {
    noc.set_link_ber(noc::LinkBerMap(TileGrid(8, 8)));
    FAIL() << "grid mismatch accepted";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "set_link_ber: BER map grid mismatch");
  }
}

TEST(StagedBerSwap, MidRunSwapIsDeterministicAcrossThreads) {
  // An external mid-run swap adopts at the next cycle boundary — never
  // mid-cycle — so the run stays bit-identical at every thread count.
  const auto run_with_swap = [](int threads) {
    exec::set_shared_threads(threads);
    const SystemConfig cfg = SystemConfig::reduced(8, 8);
    const FaultMap faults(cfg.grid());
    noc::NocOptions opt;
    opt.mesh.integrity.enabled = true;
    noc::NocSystem noc(faults, opt);
    Rng rng(3);
    noc::TrafficConfig traffic;
    traffic.injection_rate = 0.1;
    std::vector<noc::CompletedTransaction> done;
    for (int cycle = 0; cycle < 120; ++cycle) {
      cfg.grid().for_each([&](TileCoord src) {
        if (!rng.bernoulli(traffic.injection_rate)) return;
        const TileCoord dst =
            noc::pick_destination(faults, src, traffic, rng);
        if (dst == src) return;
        (void)noc.issue(src, dst, noc::PacketType::ReadRequest);
      });
      if (cycle == 40)
        noc.set_link_ber(noc::LinkBerMap::uniform(cfg.grid(), 1e-3));
      noc.step(done);
    }
    ckpt::Writer w;
    noc.save_state(w);
    const std::uint32_t fp = ckpt::crc32(w.bytes().data(), w.size());
    exec::set_shared_threads(0);
    return fp;
  };
  const std::uint32_t serial = run_with_swap(1);
  EXPECT_EQ(run_with_swap(2), serial);
  EXPECT_EQ(run_with_swap(8), serial);
}

TEST(CosimLoop, EpochLengthChangesTheCouplingNotTheTrafficRng) {
  // Different epoch lengths re-solve at different boundaries, which feeds
  // back into the BER map: the runs legitimately diverge.  This guards
  // the epoch plumbing: epoch_cycles must matter (a loop that never
  // couples would make these equal).
  CosimOptions a = small_options(16);
  CosimOptions b = small_options(64);
  CosimLoop la(a);
  CosimLoop lb(b);
  la.run(64);
  lb.run(64);
  EXPECT_EQ(la.epochs_completed(), 4u);
  EXPECT_EQ(lb.epochs_completed(), 1u);
}

// ---------------------------------------------------------- checkpointing

TEST(CosimLoop, CheckpointResumeMidEpochIsBitIdentical) {
  TempFile file("cosim_resume_test.ckpt");
  CosimLoop straight(small_options());
  straight.run(150);  // 4 full epochs + 22 cycles into the fifth
  const std::uint32_t want = straight.state_fingerprint();

  CosimLoop killed(small_options());
  killed.run(75);  // mid-epoch: cycle_in_epoch = 11
  killed.save_checkpoint(file.path());

  CosimLoop resumed(small_options());
  resumed.load_checkpoint(file.path());
  EXPECT_EQ(resumed.state_fingerprint(), killed.state_fingerprint());
  resumed.run(75);
  EXPECT_EQ(resumed.state_fingerprint(), want);
  EXPECT_EQ(serialize_report(resumed.report()),
            serialize_report(straight.report()));
}

TEST(CosimLoop, CheckpointRejectsForeignFrame) {
  TempFile file("cosim_foreign_test.ckpt");
  ckpt::Writer w;
  w.u64(42);
  ckpt::save_frame_file(file.path(), ckpt::fourcc("XXXX"), 1, w);
  CosimLoop loop(small_options());
  EXPECT_THROW(loop.load_checkpoint(file.path()), ckpt::Error);
}

// ------------------------------------------------------------- warm start

TEST(WarmStart, WarmAndColdSolvesAgree) {
  const CosimOptions o = small_options();
  pdn::WaferPdn warm_pdn(o.config, o.pdn);
  pdn::WaferPdn cold_pdn(o.config, o.pdn);

  // A drifting sequence of power maps, as an epoch driver would produce.
  const std::size_t tiles = o.config.grid().tile_count();
  std::vector<std::vector<double>> seeds(1);
  for (int epoch = 0; epoch < 4; ++epoch) {
    std::vector<double> power(tiles);
    for (std::size_t i = 0; i < tiles; ++i)
      power[i] = o.config.tile_peak_power_w *
                 (0.3 + 0.1 * static_cast<double>(epoch) +
                  0.01 * static_cast<double>(i % 7));
    std::vector<std::vector<double>> maps{power};
    std::vector<pdn::SolveStats> warm_stats;
    const pdn::PdnReport warm =
        warm_pdn.solve_batch_warm(maps, seeds, &warm_stats)[0];
    const pdn::PdnReport cold = cold_pdn.solve(power);
    ASSERT_TRUE(warm.solver_converged);
    ASSERT_TRUE(cold.solver_converged);
    for (std::size_t i = 0; i < tiles; ++i) {
      EXPECT_NEAR(warm.tiles[i].supply_v, cold.tiles[i].supply_v, 1e-5);
      EXPECT_NEAR(warm.tiles[i].regulated_v, cold.tiles[i].regulated_v, 1e-5);
    }
    if (epoch > 0) {
      // The warm solve re-converges from last epoch's solution in no more
      // V-cycles than a cold start needs.
      std::vector<std::vector<double>> cold_seed(1);
      std::vector<pdn::SolveStats> cold_stats;
      pdn::WaferPdn probe(o.config, o.pdn);
      probe.solve_batch_warm(maps, cold_seed, &cold_stats);
      EXPECT_LE(warm_stats[0].iterations, cold_stats[0].iterations);
    }
  }
}

TEST(WarmStart, BatchColdEqualsSequentialSolves) {
  const CosimOptions o = small_options();
  pdn::WaferPdn pdn_a(o.config, o.pdn);
  pdn::WaferPdn pdn_b(o.config, o.pdn);
  const std::size_t tiles = o.config.grid().tile_count();
  std::vector<std::vector<double>> maps{
      std::vector<double>(tiles, 0.4 * o.config.tile_peak_power_w),
      std::vector<double>(tiles, 0.9 * o.config.tile_peak_power_w)};
  const std::vector<pdn::PdnReport> batch = pdn_a.solve_batch(maps);
  ASSERT_EQ(batch.size(), 2u);
  for (std::size_t m = 0; m < maps.size(); ++m) {
    const pdn::PdnReport single = pdn_b.solve(maps[m]);
    for (std::size_t i = 0; i < tiles; ++i)
      EXPECT_DOUBLE_EQ(batch[m].tiles[i].supply_v, single.tiles[i].supply_v);
  }
}

}  // namespace
}  // namespace wsp::cosim
