// Tests for the Sec. I cost comparison: chiplet assembly vs monolithic
// waferscale with reserved redundancy.
#include <gtest/gtest.h>

#include "wsp/common/error.hpp"
#include "wsp/io/cost_model.hpp"

namespace wsp::io {
namespace {

SystemConfig cfg() { return SystemConfig::paper_prototype(); }

TEST(CostModel, SmallDiesYieldBetterThanTiles) {
  // The foundational chiplet argument: yield falls exponentially with
  // area, so the 7.6 mm^2 compute die out-yields nothing, but the wafer-
  // sized monolithic die only survives via redundancy.
  const CostInputs in;
  const ChipletCost c = estimate_chiplet_cost(cfg(), in);
  EXPECT_GT(c.compute_die_yield, 0.99);
  EXPECT_GT(c.memory_die_yield, c.compute_die_yield);  // smaller die
}

TEST(CostModel, MonolithicNeedsItsSpares) {
  // With generous spares the monolithic wafer yields; squeeze the spare
  // budget below the expected fault rate and the yield collapses — the
  // paper's "redundant cores and network links need to be reserved".
  CostInputs in;
  in.defect_density_per_m2 = 5000.0;  // 0.5 defects/cm^2
  in.monolithic_spare_fraction = 0.10;
  const MonolithicCost generous = estimate_monolithic_cost(cfg(), in);
  EXPECT_GT(generous.system_yield, 0.99);

  in.monolithic_spare_fraction = 0.02;
  const MonolithicCost tight = estimate_monolithic_cost(cfg(), in);
  EXPECT_LT(tight.system_yield, 0.01);
  EXPECT_GT(tight.cost_per_good_system,
            100.0 * generous.cost_per_good_system);
}

TEST(CostModel, ChipletAssemblyYieldIsHighWithDualPillars) {
  const ChipletCost c = estimate_chiplet_cost(cfg());
  // Dual-pillar bonding leaves ~0.03 expected faulty tiles; tolerating a
  // handful makes assembly acceptance essentially certain.
  EXPECT_GT(c.assembly_yield, 0.999);
}

TEST(CostModel, ChipletWinsAtRealisticDefectDensities) {
  for (const double d0 : {1000.0, 3000.0, 5000.0}) {
    CostInputs in;
    in.defect_density_per_m2 = d0;
    const CostComparison cmp = compare_costs(cfg(), in);
    EXPECT_GT(cmp.chiplet_advantage, 1.0) << "D0=" << d0;
  }
}

TEST(CostModel, AdvantageGrowsWithDefectDensity) {
  CostInputs low;
  low.defect_density_per_m2 = 1000.0;
  CostInputs high = low;
  high.defect_density_per_m2 = 8000.0;
  const double adv_low = compare_costs(cfg(), low).chiplet_advantage;
  const double adv_high = compare_costs(cfg(), high).chiplet_advantage;
  EXPECT_GT(adv_high, adv_low);
}

TEST(CostModel, CostsAreAccountedConsistently) {
  const CostInputs in;
  const ChipletCost c = estimate_chiplet_cost(cfg(), in);
  // Silicon + substrate + assembly, inflated only by the (near-one)
  // assembly yield.
  const double parts = c.silicon_cost + in.interconnect_wafer_cost +
                       in.assembly_cost_per_chiplet * 2048;
  EXPECT_NEAR(c.cost_per_good_system, parts / c.assembly_yield, 1e-6);
  EXPECT_GT(c.silicon_cost, 0.0);
}

TEST(CostModel, ValidatesInputs) {
  CostInputs bad;
  bad.monolithic_spare_fraction = 1.0;
  EXPECT_THROW(estimate_monolithic_cost(cfg(), bad), Error);
}

}  // namespace
}  // namespace wsp::io
