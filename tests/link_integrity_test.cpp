// Tests for the link-integrity layer: the voltage-aware BER channel, the
// CRC-8 hop protection and NACK/retransmit protocol inside MeshNetwork,
// predictive link retirement (LinkHealthMonitor + the JTAG scrub path),
// the packet-conservation invariant, and the corruption-stat regression.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <map>
#include <vector>

#include "wsp/common/fault_map.hpp"
#include "wsp/common/rng.hpp"
#include "wsp/noc/link_health.hpp"
#include "wsp/noc/link_integrity.hpp"
#include "wsp/noc/noc_system.hpp"
#include "wsp/resilience/campaign.hpp"
#include "wsp/resilience/fault_injector.hpp"
#include "wsp/resilience/fault_schedule.hpp"
#include "wsp/testinfra/link_scrub.hpp"

namespace wsp {
namespace {

// --------------------------------------------------------------- helpers

struct TrafficResult {
  std::vector<noc::CompletedTransaction> done;
  bool drained = false;
};

/// Seeded uniform-random traffic: `cycles` of injection, then a drain.
TrafficResult run_uniform_traffic(noc::NocSystem& noc, const TileGrid& grid,
                                  std::uint64_t cycles, double rate,
                                  std::uint64_t seed) {
  Rng rng(seed);
  TrafficResult r;
  for (std::uint64_t c = 0; c < cycles; ++c) {
    grid.for_each([&](TileCoord src) {
      if (noc.faults().is_faulty(src)) return;
      if (!rng.bernoulli(rate)) return;
      const TileCoord dst = grid.coord_of(rng.below(grid.tile_count()));
      if (dst == src || noc.faults().is_faulty(dst)) return;
      noc.issue(src, dst, noc::PacketType::ReadRequest);
    });
    noc.step(r.done);
  }
  r.drained = noc.drain(r.done);
  return r;
}

void expect_stats_equal(const noc::NocStats& a, const noc::NocStats& b) {
  EXPECT_EQ(a.issued, b.issued);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.unreachable, b.unreachable);
  EXPECT_EQ(a.relayed, b.relayed);
  EXPECT_EQ(a.latency_sum, b.latency_sum);
  EXPECT_EQ(a.latency_max, b.latency_max);
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.lost, b.lost);
  EXPECT_EQ(a.stale_packets, b.stale_packets);
  EXPECT_EQ(a.replans, b.replans);
  EXPECT_EQ(a.corrupted, b.corrupted);
  EXPECT_EQ(a.crc_detected, b.crc_detected);
  EXPECT_EQ(a.link_retransmits, b.link_retransmits);
  EXPECT_EQ(a.links_retired, b.links_retired);
  EXPECT_EQ(a.escapes, b.escapes);
}

double mean_latency(const std::vector<noc::CompletedTransaction>& done) {
  if (done.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& t : done) sum += static_cast<double>(t.latency());
  return sum / static_cast<double>(done.size());
}

std::uint64_t mesh_dup_dropped(const noc::NocSystem& noc) {
  return noc.network(noc::NetworkKind::XY).stats().dup_dropped +
         noc.network(noc::NetworkKind::YX).stats().dup_dropped;
}

// ----------------------------------------------------------- BER model

TEST(BerModel, Crc8MatchesTheCheckValue) {
  // Standard CRC-8 (poly 0x07, init 0, MSB first) check value.
  const char* msg = "123456789";
  EXPECT_EQ(noc::crc8(reinterpret_cast<const std::uint8_t*>(msg), 9), 0xF4);
}

TEST(BerModel, PacketCrcCoversTheWireImage) {
  noc::Packet p;
  p.src = {1, 2};
  p.dst = {3, 4};
  p.payload = 0xDEADBEEFCAFEF00Dull;
  const std::uint8_t clean = noc::packet_crc(p);
  noc::Packet flipped = p;
  flipped.payload ^= 1;
  EXPECT_NE(noc::packet_crc(flipped), clean);
  // Simulator bookkeeping is not part of the wire image.
  noc::Packet relabeled = p;
  relabeled.id = 999;
  relabeled.injected_cycle = 123;
  EXPECT_EQ(noc::packet_crc(relabeled), clean);
}

TEST(BerModel, VoltageCurveIsMonotoneAndClamped) {
  const noc::BerParams params;
  // At or above nominal: the floor.
  EXPECT_DOUBLE_EQ(noc::ber_from_voltage(params.nominal_v, params),
                   params.floor_ber);
  EXPECT_DOUBLE_EQ(noc::ber_from_voltage(1.3, params), params.floor_ber);
  // One volts_per_decade below nominal costs exactly one decade.
  const double one_down =
      noc::ber_from_voltage(params.nominal_v - params.volts_per_decade,
                            params);
  EXPECT_NEAR(one_down / params.floor_ber, 10.0, 1e-6);
  // Monotone in sag, clamped at max_ber for a collapsed supply.
  double prev = params.floor_ber;
  for (double v = params.nominal_v; v > 0.5; v -= 0.01) {
    const double ber = noc::ber_from_voltage(v, params);
    EXPECT_GE(ber, prev);
    prev = ber;
  }
  EXPECT_DOUBLE_EQ(noc::ber_from_voltage(0.5, params), params.max_ber);
}

TEST(BerModel, PacketErrorProbabilityEdges) {
  EXPECT_DOUBLE_EQ(noc::packet_error_probability(0.0), 0.0);
  EXPECT_DOUBLE_EQ(noc::packet_error_probability(1.0), 1.0);
  const double p = noc::packet_error_probability(1e-4);
  // 1 - (1 - 1e-4)^100 ~= 1 - exp(-0.01) ~= 0.00995.
  EXPECT_NEAR(p, 0.00995, 1e-4);
  EXPECT_GT(noc::packet_error_probability(1e-3), p);
}

TEST(BerModel, LinkBerMapUsesTheWeakerEndpoint) {
  const TileGrid grid(3, 3);
  std::vector<double> v(grid.tile_count(), 1.1);
  v[grid.index_of({1, 1})] = 1.0;  // sagging center tile
  const noc::LinkBerMap map = noc::LinkBerMap::from_tile_voltages(grid, v);
  const double sag_ber = noc::ber_from_voltage(1.0);
  // Every link touching (1,1) is limited by the sagged endpoint — in both
  // travel directions.
  EXPECT_DOUBLE_EQ(map.ber({1, 1}, Direction::East), sag_ber);
  EXPECT_DOUBLE_EQ(map.ber({0, 1}, Direction::East), sag_ber);
  EXPECT_DOUBLE_EQ(map.ber({1, 0}, Direction::North), sag_ber);
  // A link between two healthy tiles sits at the floor.
  EXPECT_DOUBLE_EQ(map.ber({0, 0}, Direction::East),
                   noc::BerParams{}.floor_ber);
  EXPECT_FALSE(map.error_free());
  EXPECT_TRUE(noc::LinkBerMap(grid).error_free());
}

// ------------------------------------------- channel + CRC + retransmit

TEST(LinkIntegrity, CleanChannelIsBitIdenticalToIntegrityOff) {
  const TileGrid grid(6, 6);
  const FaultMap faults(grid);
  noc::NocOptions base;
  base.response_timeout = 400;

  noc::NocOptions with_integrity = base;
  with_integrity.mesh.integrity.enabled = true;  // BER map defaults to 0

  noc::NocSystem off(faults, base);
  noc::NocSystem on(faults, with_integrity);
  const TrafficResult r_off = run_uniform_traffic(off, grid, 2000, 0.03, 42);
  const TrafficResult r_on = run_uniform_traffic(on, grid, 2000, 0.03, 42);

  EXPECT_TRUE(r_off.drained);
  EXPECT_TRUE(r_on.drained);
  expect_stats_equal(off.stats(), on.stats());
  ASSERT_EQ(r_off.done.size(), r_on.done.size());
  for (std::size_t i = 0; i < r_off.done.size(); ++i) {
    EXPECT_EQ(r_off.done[i].id, r_on.done[i].id);
    EXPECT_EQ(r_off.done[i].complete_cycle, r_on.done[i].complete_cycle);
  }
}

TEST(LinkIntegrity, RetransmissionRepairsCorruptionWithoutLoss) {
  const TileGrid grid(6, 6);
  const FaultMap faults(grid);
  noc::NocOptions opt;
  opt.response_timeout = 400;
  opt.mesh.integrity.enabled = true;

  noc::NocSystem noc(faults, opt);
  noc.set_link_ber(noc::LinkBerMap::uniform(grid, 1e-3));
  const TrafficResult r = run_uniform_traffic(noc, grid, 3000, 0.02, 7);

  const noc::NocStats st = noc.stats();
  EXPECT_TRUE(r.drained);
  EXPECT_GT(st.crc_detected, 0u);
  EXPECT_GT(st.link_retransmits, 0u);
  // Hop-level repair keeps the end-to-end machinery out of it entirely.
  EXPECT_EQ(st.lost, 0u);
  EXPECT_EQ(st.completed, st.issued);
  EXPECT_EQ(mesh_dup_dropped(noc), 0u);
  EXPECT_TRUE(noc.packet_conservation_holds());
}

TEST(LinkIntegrity, HopRecoveryBeatsTheEndToEndTimeoutPath) {
  const TileGrid grid(6, 6);
  const FaultMap faults(grid);
  noc::NocOptions opt;
  opt.response_timeout = 300;
  opt.mesh.integrity.enabled = true;

  noc::NocOptions no_retx = opt;
  no_retx.mesh.integrity.retransmit = false;

  noc::NocSystem with(faults, opt);
  noc::NocSystem without(faults, no_retx);
  const auto ber = noc::LinkBerMap::uniform(grid, 1e-3);
  with.set_link_ber(ber);
  without.set_link_ber(ber);

  const TrafficResult r_with = run_uniform_traffic(with, grid, 3000, 0.02, 7);
  const TrafficResult r_without =
      run_uniform_traffic(without, grid, 3000, 0.02, 7);

  const noc::NocStats a = with.stats();
  const noc::NocStats b = without.stats();
  // Without retransmission every detected error is a drop that costs a
  // full timeout round trip (and can exhaust retries into a loss).
  EXPECT_GT(b.timeouts, a.timeouts);
  const std::uint64_t drops =
      without.network(noc::NetworkKind::XY).stats().link_error_drops +
      without.network(noc::NetworkKind::YX).stats().link_error_drops;
  EXPECT_GT(drops, 0u);
  EXPECT_EQ(a.lost, 0u);
  EXPECT_LT(mean_latency(r_with.done), mean_latency(r_without.done));
  EXPECT_TRUE(r_with.drained);
  EXPECT_TRUE(r_without.drained);
}

TEST(LinkIntegrity, EscapesAreRareRelativeToDetections) {
  const TileGrid grid(5, 5);
  const FaultMap faults(grid);
  noc::NocOptions opt;
  opt.response_timeout = 400;
  opt.mesh.integrity.enabled = true;

  noc::NocSystem noc(faults, opt);
  noc.set_link_ber(noc::LinkBerMap::uniform(grid, 2e-3));
  (void)run_uniform_traffic(noc, grid, 4000, 0.03, 11);

  const noc::NocStats st = noc.stats();
  ASSERT_GT(st.crc_detected, 100u);
  // The CRC aliases with probability 1/256; allow a loose margin.
  EXPECT_LT(st.escapes * 32, st.crc_detected);
}

// ------------------------------------------------ conservation invariant

TEST(LinkIntegrity, PacketConservationHoldsAcrossReplans) {
  const TileGrid grid(6, 6);
  FaultMap faults(grid);
  noc::NocOptions opt;
  opt.response_timeout = 300;
  opt.mesh.integrity.enabled = true;

  noc::NocSystem noc(faults, opt);
  noc.set_link_ber(noc::LinkBerMap::uniform(grid, 5e-4));

  Rng rng(23);
  std::vector<noc::CompletedTransaction> done;
  const std::vector<TileCoord> kills = {{2, 3}, {4, 1}, {1, 4}};
  std::size_t next_kill = 0;
  for (std::uint64_t c = 0; c < 3000; ++c) {
    grid.for_each([&](TileCoord src) {
      if (noc.faults().is_faulty(src)) return;
      if (!rng.bernoulli(0.02)) return;
      const TileCoord dst = grid.coord_of(rng.below(grid.tile_count()));
      if (dst == src || noc.faults().is_faulty(dst)) return;
      noc.issue(src, dst, noc::PacketType::ReadRequest);
    });
    noc.step(done);
    ASSERT_TRUE(noc.packet_conservation_holds()) << "cycle " << c;
    if (c > 0 && c % 800 == 0 && next_kill < kills.size()) {
      // Mid-run replan: a tile dies, the selector cache is invalidated,
      // packets buffered inside it are purged — all still conserved.
      faults.set_faulty(kills[next_kill++], true);
      noc.apply_fault_state(faults);
      ASSERT_TRUE(noc.packet_conservation_holds());
    }
  }
  noc.drain(done);
  EXPECT_TRUE(noc.packet_conservation_holds());
  EXPECT_EQ(noc.stats().replans, kills.size());
}

// -------------------------------------------- corruption stat regression

TEST(LinkIntegrity, InjectedCorruptionIsCountedExactlyOnce) {
  const TileGrid grid(4, 4);
  const FaultMap faults(grid);
  noc::NocOptions opt;
  opt.response_timeout = 200;
  noc::NocSystem noc(faults, opt);

  // Converging traffic so some packet is queued (not link-borne) when the
  // corruption sweep runs.
  const TileCoord srcs[] = {{0, 0}, {3, 0}, {0, 3}, {1, 1}, {2, 0}, {0, 2}};
  for (const TileCoord src : srcs)
    ASSERT_TRUE(noc.issue(src, {3, 3}, noc::PacketType::ReadRequest));
  std::vector<noc::CompletedTransaction> done;
  bool corrupted = false;
  for (int cycle = 0; cycle < 50 && !corrupted; ++cycle) {
    noc.step(done);
    grid.for_each([&](TileCoord t) {
      if (!corrupted && noc.inject_corruption(t)) corrupted = true;
    });
  }
  ASSERT_TRUE(corrupted);

  // Exactly one corruption event: the system-level count must equal the
  // sum of the mesh-level counts (the layer that owns the counter), not
  // double it.
  const std::uint64_t mesh_sum =
      noc.network(noc::NetworkKind::XY).stats().corrupted +
      noc.network(noc::NetworkKind::YX).stats().corrupted;
  EXPECT_EQ(noc.stats().corrupted, 1u);
  EXPECT_EQ(mesh_sum, 1u);
  EXPECT_TRUE(noc.packet_conservation_holds());
  noc.drain(done);
  EXPECT_TRUE(noc.packet_conservation_holds());
}

// ------------------------------------------------------- seeded fuzzing

TEST(LinkIntegrity, SeededFuzzNoDuplicatesNoLivelockBitIdentical) {
  const TileGrid grid(5, 5);
  const double bers[] = {0.0, 1e-4, 1e-3};

  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    auto run_once = [&](std::vector<noc::CompletedTransaction>& done) {
      Rng setup(seed * 977);
      FaultMap faults =
          FaultMap::random_with_probability(grid, 0.06, setup);
      noc::NocOptions opt;
      opt.response_timeout = 300;
      opt.mesh.integrity.enabled = true;
      opt.mesh.integrity.seed = seed * 131;
      noc::NocSystem noc(faults, opt);
      noc.set_link_ber(
          noc::LinkBerMap::uniform(grid, bers[seed % 3]));

      Rng rng(seed);
      const TileCoord kill = grid.coord_of(setup.below(grid.tile_count()));
      for (std::uint64_t c = 0; c < 1500; ++c) {
        grid.for_each([&](TileCoord src) {
          if (noc.faults().is_faulty(src)) return;
          if (!rng.bernoulli(0.03)) return;
          const TileCoord dst =
              grid.coord_of(rng.below(grid.tile_count()));
          if (dst == src || noc.faults().is_faulty(dst)) return;
          noc.issue(src, dst, noc::PacketType::ReadRequest);
        });
        noc.step(done);
        if (c == 700 && faults.is_healthy(kill)) {
          faults.set_faulty(kill, true);
          noc.apply_fault_state(faults);
        }
      }
      const bool drained = noc.drain(done);
      // No livelock: with timeouts armed, every transaction resolves.
      EXPECT_TRUE(drained) << "seed " << seed;
      // Link retransmission is idempotent at the receiver.
      EXPECT_EQ(mesh_dup_dropped(noc), 0u) << "seed " << seed;
      EXPECT_TRUE(noc.packet_conservation_holds()) << "seed " << seed;
      return noc.stats();
    };

    std::vector<noc::CompletedTransaction> done1, done2;
    const noc::NocStats s1 = run_once(done1);
    const noc::NocStats s2 = run_once(done2);

    // No transaction completes twice.
    std::map<std::uint64_t, int> counts;
    for (const auto& t : done1) ++counts[t.id];
    for (const auto& [id, n] : counts)
      EXPECT_EQ(n, 1) << "transaction " << id << " completed " << n
                      << " times (seed " << seed << ")";

    // Identical seeds are bit-identical.
    expect_stats_equal(s1, s2);
    ASSERT_EQ(done1.size(), done2.size()) << "seed " << seed;
    for (std::size_t i = 0; i < done1.size(); ++i) {
      EXPECT_EQ(done1[i].id, done2[i].id);
      EXPECT_EQ(done1[i].complete_cycle, done2[i].complete_cycle);
    }
  }
}

// --------------------------------- selector cache across brownout cycles

TEST(NetworkSelector, CacheInvalidatesAcrossBrownoutRestoreCycles) {
  const TileGrid grid(6, 6);
  const FaultMap healthy(grid);
  FaultMap browned(grid);
  browned.set_faulty({3, 2}, true);  // brownout collateral on the row

  noc::NocOptions opt;
  opt.response_timeout = 300;
  noc::NocSystem noc(healthy, opt);

  const TileCoord src{0, 2};
  const TileCoord dst{5, 2};
  std::uint64_t gen = noc.selector().generation();

  std::vector<noc::CompletedTransaction> done;
  for (int cycle = 0; cycle < 2; ++cycle) {
    // Brownout: the direct row is broken; the plan must route around it.
    noc.apply_fault_state(browned);
    EXPECT_GT(noc.selector().generation(), gen);
    gen = noc.selector().generation();
    const noc::RoutePlan degraded = noc.selector().plan(src, dst);
    ASSERT_TRUE(degraded.reachable);
    for (const TileCoord wp : degraded.waypoints)
      EXPECT_FALSE(browned.is_faulty(wp));
    ASSERT_TRUE(noc.issue(src, dst, noc::PacketType::ReadRequest));
    EXPECT_TRUE(noc.drain(done));

    // Restore: no stale degraded route may survive the rebind — the pair
    // goes back to a direct (two-waypoint) plan and traffic through the
    // previously browned tile works again.
    noc.apply_fault_state(healthy);
    EXPECT_GT(noc.selector().generation(), gen);
    gen = noc.selector().generation();
    const noc::RoutePlan restored = noc.selector().plan(src, dst);
    ASSERT_TRUE(restored.reachable);
    EXPECT_FALSE(restored.relayed);
    EXPECT_EQ(restored.waypoints.size(), 2u);
    ASSERT_TRUE(noc.issue(src, {3, 2}, noc::PacketType::ReadRequest));
    EXPECT_TRUE(noc.drain(done));
  }
  // Rebind counter is strictly monotone: 4 applies = 4 increments.
  EXPECT_EQ(noc.selector().generation(), 4u);
}

// ----------------------------------------------------- health monitoring

TEST(LinkHealth, MonitorRetiresASustainedHighBerLink) {
  const TileGrid grid(5, 5);
  const FaultMap faults(grid);
  noc::NocOptions opt;
  opt.response_timeout = 400;
  opt.mesh.integrity.enabled = true;
  noc::NocSystem noc(faults, opt);

  noc::LinkBerMap ber(grid);
  ber.set_ber({2, 2}, Direction::East, 8e-3);  // one marginal link
  noc.set_link_ber(ber);

  noc::LinkHealthMonitor monitor(grid);
  std::vector<noc::CompletedTransaction> done;
  // Hammer the marginal link: (2,2) -> (4,2) rides east along the row.
  for (int i = 0; i < 120; ++i) {
    noc.issue({2, 2}, {4, 2}, noc::PacketType::ReadRequest);
    noc.step(done);
  }
  ASSERT_TRUE(noc.drain(done));

  const auto due = monitor.scrub(noc);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].tile, (TileCoord{2, 2}));
  EXPECT_EQ(due[0].dir, Direction::East);
  EXPECT_GE(due[0].errors, monitor.policy().min_errors);
  EXPECT_GE(due[0].traversals, monitor.policy().min_traversals);
  EXPECT_TRUE(monitor.is_retired({2, 2}, Direction::East));
  // Reported once: a second scrub returns nothing new.
  EXPECT_TRUE(monitor.scrub(noc).empty());

  // Retiring reroutes the pair but keeps it reachable.
  ASSERT_TRUE(noc.retire_link({2, 2}, Direction::East));
  EXPECT_EQ(noc.stats().links_retired, 1u);
  const noc::RoutePlan plan = noc.selector().plan({2, 2}, {4, 2});
  EXPECT_TRUE(plan.reachable);
  ASSERT_TRUE(noc.issue({2, 2}, {4, 2}, noc::PacketType::ReadRequest));
  EXPECT_TRUE(noc.drain(done));
  EXPECT_FALSE(noc.retire_link({2, 2}, Direction::East));  // already gone
}

TEST(LinkHealth, JtagScrubPathMatchesDirectScrub) {
  const TileGrid grid(3, 3);
  const FaultMap faults(grid);
  noc::NocOptions opt;
  opt.response_timeout = 400;
  opt.mesh.integrity.enabled = true;
  noc::NocSystem noc(faults, opt);
  noc.set_link_ber(noc::LinkBerMap::uniform(grid, 5e-3));
  (void)run_uniform_traffic(noc, grid, 1200, 0.05, 3);

  // Firmware deposits each tile's packed counters into its scrub SRAM;
  // the host harvests the whole wafer over the unrolled JTAG chain.
  testinfra::LinkScrubChain chain(grid);
  grid.for_each([&](TileCoord tile) {
    chain.deposit(grid.index_of(tile), noc::pack_scrub_words(noc, tile));
  });
  const auto harvested = chain.scrub();
  ASSERT_EQ(harvested.size(), grid.tile_count());
  EXPECT_GT(chain.tck_count(), 0u);

  // The chain transports the words bit-exactly, per tile.
  bool any_nonzero = false;
  grid.for_each([&](TileCoord tile) {
    const auto direct = noc::pack_scrub_words(noc, tile);
    EXPECT_EQ(harvested[grid.index_of(tile)], direct);
    for (const std::uint32_t w : direct) any_nonzero |= w != 0;
  });
  EXPECT_TRUE(any_nonzero);

  // And the monitor decides identically from either transport.
  noc::LinkHealthMonitor via_jtag(grid);
  noc::LinkHealthMonitor direct(grid);
  std::vector<noc::RetiredLink> from_jtag;
  grid.for_each([&](TileCoord tile) {
    const auto links =
        via_jtag.ingest(tile, harvested[grid.index_of(tile)], noc.now());
    from_jtag.insert(from_jtag.end(), links.begin(), links.end());
  });
  const auto from_direct = direct.scrub(noc);
  ASSERT_EQ(from_jtag.size(), from_direct.size());
  for (std::size_t i = 0; i < from_jtag.size(); ++i) {
    EXPECT_EQ(from_jtag[i].tile, from_direct[i].tile);
    EXPECT_EQ(from_jtag[i].dir, from_direct[i].dir);
    EXPECT_EQ(from_jtag[i].errors, from_direct[i].errors);
    EXPECT_EQ(from_jtag[i].traversals, from_direct[i].traversals);
  }
}

TEST(LinkHealth, ScrubWordSaturates) {
  EXPECT_EQ(noc::pack_scrub_word(0, 0), 0u);
  EXPECT_EQ(noc::pack_scrub_word(3, 100), (3u << 16) | 100u);
  EXPECT_EQ(noc::pack_scrub_word(1u << 20, 1u << 20), 0xFFFFFFFFu);
}

// ------------------------------------------------- campaign integration

TEST(LinkIntegrityCampaign, BerEventRetiresLinkAndKeepsSsi) {
  resilience::CampaignOptions opt;
  opt.config = SystemConfig::reduced(6, 6);
  opt.seed = 5;
  opt.run_cycles = 4000;
  opt.injection_rate = 0.04;
  opt.noc.mesh.integrity.enabled = true;

  // One link's eye collapses at cycle 200: BER jumps five decades above
  // the healthy-plane floor.  No tile ever dies.
  resilience::FaultSchedule schedule;
  resilience::FaultEvent e;
  e.cycle = 200;
  e.kind = RuntimeFaultKind::LinkBerDegradation;
  e.tile = {2, 3};
  e.link = Direction::East;
  e.magnitude = 8e-3;
  schedule.add(e);
  opt.schedule = schedule;

  const resilience::DegradationCampaign campaign(opt);
  const resilience::DegradationReport r1 = campaign.run();

  // The monitor caught the marginal link and retired it pre-failure...
  ASSERT_FALSE(r1.retirements.empty());
  EXPECT_EQ(r1.retirements[0].tile, (TileCoord{2, 3}));
  EXPECT_EQ(r1.retirements[0].dir, Direction::East);
  EXPECT_GE(r1.noc_stats.links_retired, 1u);
  EXPECT_GT(r1.noc_stats.crc_detected, 0u);
  EXPECT_GT(r1.noc_stats.link_retransmits, 0u);
  // ...while the wafer stays a single system image and traffic drains.
  EXPECT_TRUE(r1.single_system_image);
  EXPECT_TRUE(r1.drained);
  EXPECT_EQ(r1.final_usable, r1.initial_usable);

  // Identical seeds remain bit-identical with the integrity layer on.
  const resilience::DegradationReport r2 = campaign.run();
  expect_stats_equal(r1.noc_stats, r2.noc_stats);
  ASSERT_EQ(r1.retirements.size(), r2.retirements.size());
  for (std::size_t i = 0; i < r1.retirements.size(); ++i) {
    EXPECT_EQ(r1.retirements[i].cycle, r2.retirements[i].cycle);
    EXPECT_EQ(r1.retirements[i].errors, r2.retirements[i].errors);
  }
  EXPECT_EQ(r1.trajectory, r2.trajectory);
}

TEST(LinkIntegrityCampaign, RandomScheduleSamplesBerEvents) {
  const TileGrid grid(8, 8);
  resilience::ScheduleMix mix;
  mix.link_ber_degradations = 3;
  Rng rng(17);
  const resilience::FaultSchedule s =
      resilience::FaultSchedule::random(grid, mix, 2000, rng);
  int ber_events = 0;
  for (const resilience::FaultEvent& ev : s.events())
    if (ev.kind == RuntimeFaultKind::LinkBerDegradation) {
      ++ber_events;
      EXPECT_GE(ev.magnitude, 1e-5);
      EXPECT_LE(ev.magnitude, 1e-2);
      EXPECT_TRUE(grid.neighbor(ev.tile, ev.link).has_value());
    }
  EXPECT_EQ(ber_events, 3);
}

}  // namespace
}  // namespace wsp
