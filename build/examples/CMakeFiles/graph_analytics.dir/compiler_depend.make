# Empty compiler generated dependencies file for graph_analytics.
# This may be replaced when dependencies are built.
