file(REMOVE_RECURSE
  "CMakeFiles/bringup_flow.dir/bringup_flow.cpp.o"
  "CMakeFiles/bringup_flow.dir/bringup_flow.cpp.o.d"
  "bringup_flow"
  "bringup_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bringup_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
