# Empty dependencies file for bringup_flow.
# This may be replaced when dependencies are built.
