# Empty compiler generated dependencies file for wsp_workloads.
# This may be replaced when dependencies are built.
