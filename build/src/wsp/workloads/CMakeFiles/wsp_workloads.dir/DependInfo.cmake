
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wsp/workloads/graph.cpp" "src/wsp/workloads/CMakeFiles/wsp_workloads.dir/graph.cpp.o" "gcc" "src/wsp/workloads/CMakeFiles/wsp_workloads.dir/graph.cpp.o.d"
  "/root/repo/src/wsp/workloads/graph_apps.cpp" "src/wsp/workloads/CMakeFiles/wsp_workloads.dir/graph_apps.cpp.o" "gcc" "src/wsp/workloads/CMakeFiles/wsp_workloads.dir/graph_apps.cpp.o.d"
  "/root/repo/src/wsp/workloads/pagerank.cpp" "src/wsp/workloads/CMakeFiles/wsp_workloads.dir/pagerank.cpp.o" "gcc" "src/wsp/workloads/CMakeFiles/wsp_workloads.dir/pagerank.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wsp/common/CMakeFiles/wsp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/wsp/arch/CMakeFiles/wsp_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/wsp/noc/CMakeFiles/wsp_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/wsp/clock/CMakeFiles/wsp_clock.dir/DependInfo.cmake"
  "/root/repo/build/src/wsp/testinfra/CMakeFiles/wsp_testinfra.dir/DependInfo.cmake"
  "/root/repo/build/src/wsp/mem/CMakeFiles/wsp_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
