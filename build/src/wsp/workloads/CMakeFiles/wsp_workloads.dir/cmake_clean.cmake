file(REMOVE_RECURSE
  "CMakeFiles/wsp_workloads.dir/graph.cpp.o"
  "CMakeFiles/wsp_workloads.dir/graph.cpp.o.d"
  "CMakeFiles/wsp_workloads.dir/graph_apps.cpp.o"
  "CMakeFiles/wsp_workloads.dir/graph_apps.cpp.o.d"
  "CMakeFiles/wsp_workloads.dir/pagerank.cpp.o"
  "CMakeFiles/wsp_workloads.dir/pagerank.cpp.o.d"
  "libwsp_workloads.a"
  "libwsp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
