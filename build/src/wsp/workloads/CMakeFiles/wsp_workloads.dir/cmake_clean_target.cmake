file(REMOVE_RECURSE
  "libwsp_workloads.a"
)
