# CMake generated Testfile for 
# Source directory: /root/repo/src/wsp/testinfra
# Build directory: /root/repo/build/src/wsp/testinfra
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
