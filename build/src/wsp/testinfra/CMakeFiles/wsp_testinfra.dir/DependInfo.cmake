
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wsp/testinfra/dap_chain.cpp" "src/wsp/testinfra/CMakeFiles/wsp_testinfra.dir/dap_chain.cpp.o" "gcc" "src/wsp/testinfra/CMakeFiles/wsp_testinfra.dir/dap_chain.cpp.o.d"
  "/root/repo/src/wsp/testinfra/prebond.cpp" "src/wsp/testinfra/CMakeFiles/wsp_testinfra.dir/prebond.cpp.o" "gcc" "src/wsp/testinfra/CMakeFiles/wsp_testinfra.dir/prebond.cpp.o.d"
  "/root/repo/src/wsp/testinfra/tap.cpp" "src/wsp/testinfra/CMakeFiles/wsp_testinfra.dir/tap.cpp.o" "gcc" "src/wsp/testinfra/CMakeFiles/wsp_testinfra.dir/tap.cpp.o.d"
  "/root/repo/src/wsp/testinfra/test_time.cpp" "src/wsp/testinfra/CMakeFiles/wsp_testinfra.dir/test_time.cpp.o" "gcc" "src/wsp/testinfra/CMakeFiles/wsp_testinfra.dir/test_time.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wsp/common/CMakeFiles/wsp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/wsp/mem/CMakeFiles/wsp_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
