file(REMOVE_RECURSE
  "CMakeFiles/wsp_testinfra.dir/dap_chain.cpp.o"
  "CMakeFiles/wsp_testinfra.dir/dap_chain.cpp.o.d"
  "CMakeFiles/wsp_testinfra.dir/prebond.cpp.o"
  "CMakeFiles/wsp_testinfra.dir/prebond.cpp.o.d"
  "CMakeFiles/wsp_testinfra.dir/tap.cpp.o"
  "CMakeFiles/wsp_testinfra.dir/tap.cpp.o.d"
  "CMakeFiles/wsp_testinfra.dir/test_time.cpp.o"
  "CMakeFiles/wsp_testinfra.dir/test_time.cpp.o.d"
  "libwsp_testinfra.a"
  "libwsp_testinfra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsp_testinfra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
