# Empty compiler generated dependencies file for wsp_testinfra.
# This may be replaced when dependencies are built.
