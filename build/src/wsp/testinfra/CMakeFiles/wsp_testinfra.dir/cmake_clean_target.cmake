file(REMOVE_RECURSE
  "libwsp_testinfra.a"
)
