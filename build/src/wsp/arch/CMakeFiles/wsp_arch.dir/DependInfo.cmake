
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wsp/arch/bringup.cpp" "src/wsp/arch/CMakeFiles/wsp_arch.dir/bringup.cpp.o" "gcc" "src/wsp/arch/CMakeFiles/wsp_arch.dir/bringup.cpp.o.d"
  "/root/repo/src/wsp/arch/core_cluster.cpp" "src/wsp/arch/CMakeFiles/wsp_arch.dir/core_cluster.cpp.o" "gcc" "src/wsp/arch/CMakeFiles/wsp_arch.dir/core_cluster.cpp.o.d"
  "/root/repo/src/wsp/arch/crossbar.cpp" "src/wsp/arch/CMakeFiles/wsp_arch.dir/crossbar.cpp.o" "gcc" "src/wsp/arch/CMakeFiles/wsp_arch.dir/crossbar.cpp.o.d"
  "/root/repo/src/wsp/arch/power_map.cpp" "src/wsp/arch/CMakeFiles/wsp_arch.dir/power_map.cpp.o" "gcc" "src/wsp/arch/CMakeFiles/wsp_arch.dir/power_map.cpp.o.d"
  "/root/repo/src/wsp/arch/wafer_system.cpp" "src/wsp/arch/CMakeFiles/wsp_arch.dir/wafer_system.cpp.o" "gcc" "src/wsp/arch/CMakeFiles/wsp_arch.dir/wafer_system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wsp/common/CMakeFiles/wsp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/wsp/mem/CMakeFiles/wsp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/wsp/noc/CMakeFiles/wsp_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/wsp/clock/CMakeFiles/wsp_clock.dir/DependInfo.cmake"
  "/root/repo/build/src/wsp/testinfra/CMakeFiles/wsp_testinfra.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
