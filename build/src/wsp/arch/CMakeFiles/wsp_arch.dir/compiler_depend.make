# Empty compiler generated dependencies file for wsp_arch.
# This may be replaced when dependencies are built.
