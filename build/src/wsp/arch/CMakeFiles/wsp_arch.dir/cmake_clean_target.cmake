file(REMOVE_RECURSE
  "libwsp_arch.a"
)
