file(REMOVE_RECURSE
  "CMakeFiles/wsp_arch.dir/bringup.cpp.o"
  "CMakeFiles/wsp_arch.dir/bringup.cpp.o.d"
  "CMakeFiles/wsp_arch.dir/core_cluster.cpp.o"
  "CMakeFiles/wsp_arch.dir/core_cluster.cpp.o.d"
  "CMakeFiles/wsp_arch.dir/crossbar.cpp.o"
  "CMakeFiles/wsp_arch.dir/crossbar.cpp.o.d"
  "CMakeFiles/wsp_arch.dir/power_map.cpp.o"
  "CMakeFiles/wsp_arch.dir/power_map.cpp.o.d"
  "CMakeFiles/wsp_arch.dir/wafer_system.cpp.o"
  "CMakeFiles/wsp_arch.dir/wafer_system.cpp.o.d"
  "libwsp_arch.a"
  "libwsp_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsp_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
