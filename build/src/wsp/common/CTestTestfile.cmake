# CMake generated Testfile for 
# Source directory: /root/repo/src/wsp/common
# Build directory: /root/repo/build/src/wsp/common
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
