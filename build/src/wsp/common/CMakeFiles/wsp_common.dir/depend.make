# Empty dependencies file for wsp_common.
# This may be replaced when dependencies are built.
