file(REMOVE_RECURSE
  "CMakeFiles/wsp_common.dir/config.cpp.o"
  "CMakeFiles/wsp_common.dir/config.cpp.o.d"
  "CMakeFiles/wsp_common.dir/fault_map.cpp.o"
  "CMakeFiles/wsp_common.dir/fault_map.cpp.o.d"
  "CMakeFiles/wsp_common.dir/geometry.cpp.o"
  "CMakeFiles/wsp_common.dir/geometry.cpp.o.d"
  "libwsp_common.a"
  "libwsp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
