file(REMOVE_RECURSE
  "libwsp_common.a"
)
