# Empty compiler generated dependencies file for wsp_io.
# This may be replaced when dependencies are built.
