file(REMOVE_RECURSE
  "CMakeFiles/wsp_io.dir/bonding_yield.cpp.o"
  "CMakeFiles/wsp_io.dir/bonding_yield.cpp.o.d"
  "CMakeFiles/wsp_io.dir/cost_model.cpp.o"
  "CMakeFiles/wsp_io.dir/cost_model.cpp.o.d"
  "CMakeFiles/wsp_io.dir/pad_layout.cpp.o"
  "CMakeFiles/wsp_io.dir/pad_layout.cpp.o.d"
  "libwsp_io.a"
  "libwsp_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsp_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
