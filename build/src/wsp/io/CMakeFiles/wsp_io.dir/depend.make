# Empty dependencies file for wsp_io.
# This may be replaced when dependencies are built.
