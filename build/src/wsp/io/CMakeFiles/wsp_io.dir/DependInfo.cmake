
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wsp/io/bonding_yield.cpp" "src/wsp/io/CMakeFiles/wsp_io.dir/bonding_yield.cpp.o" "gcc" "src/wsp/io/CMakeFiles/wsp_io.dir/bonding_yield.cpp.o.d"
  "/root/repo/src/wsp/io/cost_model.cpp" "src/wsp/io/CMakeFiles/wsp_io.dir/cost_model.cpp.o" "gcc" "src/wsp/io/CMakeFiles/wsp_io.dir/cost_model.cpp.o.d"
  "/root/repo/src/wsp/io/pad_layout.cpp" "src/wsp/io/CMakeFiles/wsp_io.dir/pad_layout.cpp.o" "gcc" "src/wsp/io/CMakeFiles/wsp_io.dir/pad_layout.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wsp/common/CMakeFiles/wsp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
