file(REMOVE_RECURSE
  "libwsp_io.a"
)
