# Empty dependencies file for wsp_noc.
# This may be replaced when dependencies are built.
