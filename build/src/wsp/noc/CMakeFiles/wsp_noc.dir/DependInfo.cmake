
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wsp/noc/connectivity.cpp" "src/wsp/noc/CMakeFiles/wsp_noc.dir/connectivity.cpp.o" "gcc" "src/wsp/noc/CMakeFiles/wsp_noc.dir/connectivity.cpp.o.d"
  "/root/repo/src/wsp/noc/mesh_network.cpp" "src/wsp/noc/CMakeFiles/wsp_noc.dir/mesh_network.cpp.o" "gcc" "src/wsp/noc/CMakeFiles/wsp_noc.dir/mesh_network.cpp.o.d"
  "/root/repo/src/wsp/noc/noc_system.cpp" "src/wsp/noc/CMakeFiles/wsp_noc.dir/noc_system.cpp.o" "gcc" "src/wsp/noc/CMakeFiles/wsp_noc.dir/noc_system.cpp.o.d"
  "/root/repo/src/wsp/noc/odd_even.cpp" "src/wsp/noc/CMakeFiles/wsp_noc.dir/odd_even.cpp.o" "gcc" "src/wsp/noc/CMakeFiles/wsp_noc.dir/odd_even.cpp.o.d"
  "/root/repo/src/wsp/noc/routing.cpp" "src/wsp/noc/CMakeFiles/wsp_noc.dir/routing.cpp.o" "gcc" "src/wsp/noc/CMakeFiles/wsp_noc.dir/routing.cpp.o.d"
  "/root/repo/src/wsp/noc/traffic.cpp" "src/wsp/noc/CMakeFiles/wsp_noc.dir/traffic.cpp.o" "gcc" "src/wsp/noc/CMakeFiles/wsp_noc.dir/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wsp/common/CMakeFiles/wsp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
