file(REMOVE_RECURSE
  "libwsp_noc.a"
)
