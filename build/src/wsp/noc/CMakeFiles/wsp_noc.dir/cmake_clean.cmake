file(REMOVE_RECURSE
  "CMakeFiles/wsp_noc.dir/connectivity.cpp.o"
  "CMakeFiles/wsp_noc.dir/connectivity.cpp.o.d"
  "CMakeFiles/wsp_noc.dir/mesh_network.cpp.o"
  "CMakeFiles/wsp_noc.dir/mesh_network.cpp.o.d"
  "CMakeFiles/wsp_noc.dir/noc_system.cpp.o"
  "CMakeFiles/wsp_noc.dir/noc_system.cpp.o.d"
  "CMakeFiles/wsp_noc.dir/odd_even.cpp.o"
  "CMakeFiles/wsp_noc.dir/odd_even.cpp.o.d"
  "CMakeFiles/wsp_noc.dir/routing.cpp.o"
  "CMakeFiles/wsp_noc.dir/routing.cpp.o.d"
  "CMakeFiles/wsp_noc.dir/traffic.cpp.o"
  "CMakeFiles/wsp_noc.dir/traffic.cpp.o.d"
  "libwsp_noc.a"
  "libwsp_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsp_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
