# CMake generated Testfile for 
# Source directory: /root/repo/src/wsp/clock
# Build directory: /root/repo/build/src/wsp/clock
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
