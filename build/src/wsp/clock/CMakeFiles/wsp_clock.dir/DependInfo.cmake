
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wsp/clock/duty_cycle.cpp" "src/wsp/clock/CMakeFiles/wsp_clock.dir/duty_cycle.cpp.o" "gcc" "src/wsp/clock/CMakeFiles/wsp_clock.dir/duty_cycle.cpp.o.d"
  "/root/repo/src/wsp/clock/forwarding.cpp" "src/wsp/clock/CMakeFiles/wsp_clock.dir/forwarding.cpp.o" "gcc" "src/wsp/clock/CMakeFiles/wsp_clock.dir/forwarding.cpp.o.d"
  "/root/repo/src/wsp/clock/pll.cpp" "src/wsp/clock/CMakeFiles/wsp_clock.dir/pll.cpp.o" "gcc" "src/wsp/clock/CMakeFiles/wsp_clock.dir/pll.cpp.o.d"
  "/root/repo/src/wsp/clock/selector.cpp" "src/wsp/clock/CMakeFiles/wsp_clock.dir/selector.cpp.o" "gcc" "src/wsp/clock/CMakeFiles/wsp_clock.dir/selector.cpp.o.d"
  "/root/repo/src/wsp/clock/skew.cpp" "src/wsp/clock/CMakeFiles/wsp_clock.dir/skew.cpp.o" "gcc" "src/wsp/clock/CMakeFiles/wsp_clock.dir/skew.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wsp/common/CMakeFiles/wsp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
