file(REMOVE_RECURSE
  "libwsp_clock.a"
)
