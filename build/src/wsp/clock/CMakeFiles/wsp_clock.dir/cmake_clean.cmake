file(REMOVE_RECURSE
  "CMakeFiles/wsp_clock.dir/duty_cycle.cpp.o"
  "CMakeFiles/wsp_clock.dir/duty_cycle.cpp.o.d"
  "CMakeFiles/wsp_clock.dir/forwarding.cpp.o"
  "CMakeFiles/wsp_clock.dir/forwarding.cpp.o.d"
  "CMakeFiles/wsp_clock.dir/pll.cpp.o"
  "CMakeFiles/wsp_clock.dir/pll.cpp.o.d"
  "CMakeFiles/wsp_clock.dir/selector.cpp.o"
  "CMakeFiles/wsp_clock.dir/selector.cpp.o.d"
  "CMakeFiles/wsp_clock.dir/skew.cpp.o"
  "CMakeFiles/wsp_clock.dir/skew.cpp.o.d"
  "libwsp_clock.a"
  "libwsp_clock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsp_clock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
