# Empty compiler generated dependencies file for wsp_clock.
# This may be replaced when dependencies are built.
