file(REMOVE_RECURSE
  "CMakeFiles/wsp_pdn.dir/ldo.cpp.o"
  "CMakeFiles/wsp_pdn.dir/ldo.cpp.o.d"
  "CMakeFiles/wsp_pdn.dir/resistive_grid.cpp.o"
  "CMakeFiles/wsp_pdn.dir/resistive_grid.cpp.o.d"
  "CMakeFiles/wsp_pdn.dir/strategy.cpp.o"
  "CMakeFiles/wsp_pdn.dir/strategy.cpp.o.d"
  "CMakeFiles/wsp_pdn.dir/thermal.cpp.o"
  "CMakeFiles/wsp_pdn.dir/thermal.cpp.o.d"
  "CMakeFiles/wsp_pdn.dir/transient.cpp.o"
  "CMakeFiles/wsp_pdn.dir/transient.cpp.o.d"
  "CMakeFiles/wsp_pdn.dir/wafer_pdn.cpp.o"
  "CMakeFiles/wsp_pdn.dir/wafer_pdn.cpp.o.d"
  "libwsp_pdn.a"
  "libwsp_pdn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsp_pdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
