
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wsp/pdn/ldo.cpp" "src/wsp/pdn/CMakeFiles/wsp_pdn.dir/ldo.cpp.o" "gcc" "src/wsp/pdn/CMakeFiles/wsp_pdn.dir/ldo.cpp.o.d"
  "/root/repo/src/wsp/pdn/resistive_grid.cpp" "src/wsp/pdn/CMakeFiles/wsp_pdn.dir/resistive_grid.cpp.o" "gcc" "src/wsp/pdn/CMakeFiles/wsp_pdn.dir/resistive_grid.cpp.o.d"
  "/root/repo/src/wsp/pdn/strategy.cpp" "src/wsp/pdn/CMakeFiles/wsp_pdn.dir/strategy.cpp.o" "gcc" "src/wsp/pdn/CMakeFiles/wsp_pdn.dir/strategy.cpp.o.d"
  "/root/repo/src/wsp/pdn/thermal.cpp" "src/wsp/pdn/CMakeFiles/wsp_pdn.dir/thermal.cpp.o" "gcc" "src/wsp/pdn/CMakeFiles/wsp_pdn.dir/thermal.cpp.o.d"
  "/root/repo/src/wsp/pdn/transient.cpp" "src/wsp/pdn/CMakeFiles/wsp_pdn.dir/transient.cpp.o" "gcc" "src/wsp/pdn/CMakeFiles/wsp_pdn.dir/transient.cpp.o.d"
  "/root/repo/src/wsp/pdn/wafer_pdn.cpp" "src/wsp/pdn/CMakeFiles/wsp_pdn.dir/wafer_pdn.cpp.o" "gcc" "src/wsp/pdn/CMakeFiles/wsp_pdn.dir/wafer_pdn.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wsp/common/CMakeFiles/wsp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
