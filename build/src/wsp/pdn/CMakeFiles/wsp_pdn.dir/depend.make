# Empty dependencies file for wsp_pdn.
# This may be replaced when dependencies are built.
