file(REMOVE_RECURSE
  "libwsp_pdn.a"
)
