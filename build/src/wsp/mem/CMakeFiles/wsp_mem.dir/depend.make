# Empty dependencies file for wsp_mem.
# This may be replaced when dependencies are built.
