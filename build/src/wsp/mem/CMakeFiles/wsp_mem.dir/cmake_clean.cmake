file(REMOVE_RECURSE
  "CMakeFiles/wsp_mem.dir/address_map.cpp.o"
  "CMakeFiles/wsp_mem.dir/address_map.cpp.o.d"
  "CMakeFiles/wsp_mem.dir/memory_chiplet.cpp.o"
  "CMakeFiles/wsp_mem.dir/memory_chiplet.cpp.o.d"
  "CMakeFiles/wsp_mem.dir/sram_bank.cpp.o"
  "CMakeFiles/wsp_mem.dir/sram_bank.cpp.o.d"
  "CMakeFiles/wsp_mem.dir/technology.cpp.o"
  "CMakeFiles/wsp_mem.dir/technology.cpp.o.d"
  "libwsp_mem.a"
  "libwsp_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsp_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
