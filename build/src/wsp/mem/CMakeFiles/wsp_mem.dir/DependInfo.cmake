
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wsp/mem/address_map.cpp" "src/wsp/mem/CMakeFiles/wsp_mem.dir/address_map.cpp.o" "gcc" "src/wsp/mem/CMakeFiles/wsp_mem.dir/address_map.cpp.o.d"
  "/root/repo/src/wsp/mem/memory_chiplet.cpp" "src/wsp/mem/CMakeFiles/wsp_mem.dir/memory_chiplet.cpp.o" "gcc" "src/wsp/mem/CMakeFiles/wsp_mem.dir/memory_chiplet.cpp.o.d"
  "/root/repo/src/wsp/mem/sram_bank.cpp" "src/wsp/mem/CMakeFiles/wsp_mem.dir/sram_bank.cpp.o" "gcc" "src/wsp/mem/CMakeFiles/wsp_mem.dir/sram_bank.cpp.o.d"
  "/root/repo/src/wsp/mem/technology.cpp" "src/wsp/mem/CMakeFiles/wsp_mem.dir/technology.cpp.o" "gcc" "src/wsp/mem/CMakeFiles/wsp_mem.dir/technology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wsp/common/CMakeFiles/wsp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
