file(REMOVE_RECURSE
  "libwsp_mem.a"
)
