# Empty compiler generated dependencies file for wsp_route.
# This may be replaced when dependencies are built.
