file(REMOVE_RECURSE
  "libwsp_route.a"
)
