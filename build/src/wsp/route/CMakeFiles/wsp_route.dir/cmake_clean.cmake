file(REMOVE_RECURSE
  "CMakeFiles/wsp_route.dir/net_timing.cpp.o"
  "CMakeFiles/wsp_route.dir/net_timing.cpp.o.d"
  "CMakeFiles/wsp_route.dir/reticle.cpp.o"
  "CMakeFiles/wsp_route.dir/reticle.cpp.o.d"
  "CMakeFiles/wsp_route.dir/substrate_router.cpp.o"
  "CMakeFiles/wsp_route.dir/substrate_router.cpp.o.d"
  "libwsp_route.a"
  "libwsp_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsp_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
