
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wsp/route/net_timing.cpp" "src/wsp/route/CMakeFiles/wsp_route.dir/net_timing.cpp.o" "gcc" "src/wsp/route/CMakeFiles/wsp_route.dir/net_timing.cpp.o.d"
  "/root/repo/src/wsp/route/reticle.cpp" "src/wsp/route/CMakeFiles/wsp_route.dir/reticle.cpp.o" "gcc" "src/wsp/route/CMakeFiles/wsp_route.dir/reticle.cpp.o.d"
  "/root/repo/src/wsp/route/substrate_router.cpp" "src/wsp/route/CMakeFiles/wsp_route.dir/substrate_router.cpp.o" "gcc" "src/wsp/route/CMakeFiles/wsp_route.dir/substrate_router.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wsp/common/CMakeFiles/wsp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
