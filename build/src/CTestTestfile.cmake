# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("wsp/common")
subdirs("wsp/pdn")
subdirs("wsp/clock")
subdirs("wsp/io")
subdirs("wsp/noc")
subdirs("wsp/mem")
subdirs("wsp/arch")
subdirs("wsp/testinfra")
subdirs("wsp/route")
subdirs("wsp/workloads")
