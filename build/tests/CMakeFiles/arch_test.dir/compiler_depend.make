# Empty compiler generated dependencies file for arch_test.
# This may be replaced when dependencies are built.
