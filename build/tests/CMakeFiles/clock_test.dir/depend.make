# Empty dependencies file for clock_test.
# This may be replaced when dependencies are built.
