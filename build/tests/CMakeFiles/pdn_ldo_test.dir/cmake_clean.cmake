file(REMOVE_RECURSE
  "CMakeFiles/pdn_ldo_test.dir/pdn_ldo_test.cpp.o"
  "CMakeFiles/pdn_ldo_test.dir/pdn_ldo_test.cpp.o.d"
  "pdn_ldo_test"
  "pdn_ldo_test.pdb"
  "pdn_ldo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdn_ldo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
