# Empty dependencies file for pdn_ldo_test.
# This may be replaced when dependencies are built.
