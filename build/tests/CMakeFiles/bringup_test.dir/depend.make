# Empty dependencies file for bringup_test.
# This may be replaced when dependencies are built.
