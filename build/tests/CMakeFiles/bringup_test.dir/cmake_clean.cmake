file(REMOVE_RECURSE
  "CMakeFiles/bringup_test.dir/bringup_test.cpp.o"
  "CMakeFiles/bringup_test.dir/bringup_test.cpp.o.d"
  "bringup_test"
  "bringup_test.pdb"
  "bringup_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bringup_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
