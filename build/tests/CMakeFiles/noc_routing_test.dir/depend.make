# Empty dependencies file for noc_routing_test.
# This may be replaced when dependencies are built.
