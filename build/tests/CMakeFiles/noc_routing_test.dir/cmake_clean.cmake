file(REMOVE_RECURSE
  "CMakeFiles/noc_routing_test.dir/noc_routing_test.cpp.o"
  "CMakeFiles/noc_routing_test.dir/noc_routing_test.cpp.o.d"
  "noc_routing_test"
  "noc_routing_test.pdb"
  "noc_routing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noc_routing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
