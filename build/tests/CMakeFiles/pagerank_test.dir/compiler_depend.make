# Empty compiler generated dependencies file for pagerank_test.
# This may be replaced when dependencies are built.
