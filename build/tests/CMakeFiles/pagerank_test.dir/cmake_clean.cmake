file(REMOVE_RECURSE
  "CMakeFiles/pagerank_test.dir/pagerank_test.cpp.o"
  "CMakeFiles/pagerank_test.dir/pagerank_test.cpp.o.d"
  "pagerank_test"
  "pagerank_test.pdb"
  "pagerank_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pagerank_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
