# Empty dependencies file for jtag_load_test.
# This may be replaced when dependencies are built.
