file(REMOVE_RECURSE
  "CMakeFiles/jtag_load_test.dir/jtag_load_test.cpp.o"
  "CMakeFiles/jtag_load_test.dir/jtag_load_test.cpp.o.d"
  "jtag_load_test"
  "jtag_load_test.pdb"
  "jtag_load_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jtag_load_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
