# Empty dependencies file for noc_odd_even_test.
# This may be replaced when dependencies are built.
