file(REMOVE_RECURSE
  "CMakeFiles/noc_odd_even_test.dir/noc_odd_even_test.cpp.o"
  "CMakeFiles/noc_odd_even_test.dir/noc_odd_even_test.cpp.o.d"
  "noc_odd_even_test"
  "noc_odd_even_test.pdb"
  "noc_odd_even_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noc_odd_even_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
