# Empty dependencies file for testinfra_test.
# This may be replaced when dependencies are built.
