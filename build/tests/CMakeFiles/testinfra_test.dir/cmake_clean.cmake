file(REMOVE_RECURSE
  "CMakeFiles/testinfra_test.dir/testinfra_test.cpp.o"
  "CMakeFiles/testinfra_test.dir/testinfra_test.cpp.o.d"
  "testinfra_test"
  "testinfra_test.pdb"
  "testinfra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testinfra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
