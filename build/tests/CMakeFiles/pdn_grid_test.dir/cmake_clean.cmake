file(REMOVE_RECURSE
  "CMakeFiles/pdn_grid_test.dir/pdn_grid_test.cpp.o"
  "CMakeFiles/pdn_grid_test.dir/pdn_grid_test.cpp.o.d"
  "pdn_grid_test"
  "pdn_grid_test.pdb"
  "pdn_grid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdn_grid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
