# Empty compiler generated dependencies file for pdn_grid_test.
# This may be replaced when dependencies are built.
