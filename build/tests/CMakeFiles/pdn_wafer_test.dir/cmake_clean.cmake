file(REMOVE_RECURSE
  "CMakeFiles/pdn_wafer_test.dir/pdn_wafer_test.cpp.o"
  "CMakeFiles/pdn_wafer_test.dir/pdn_wafer_test.cpp.o.d"
  "pdn_wafer_test"
  "pdn_wafer_test.pdb"
  "pdn_wafer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdn_wafer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
