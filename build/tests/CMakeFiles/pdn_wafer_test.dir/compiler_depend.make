# Empty compiler generated dependencies file for pdn_wafer_test.
# This may be replaced when dependencies are built.
