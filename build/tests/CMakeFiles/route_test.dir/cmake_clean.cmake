file(REMOVE_RECURSE
  "CMakeFiles/route_test.dir/route_test.cpp.o"
  "CMakeFiles/route_test.dir/route_test.cpp.o.d"
  "route_test"
  "route_test.pdb"
  "route_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
