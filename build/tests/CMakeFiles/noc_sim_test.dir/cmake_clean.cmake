file(REMOVE_RECURSE
  "CMakeFiles/noc_sim_test.dir/noc_sim_test.cpp.o"
  "CMakeFiles/noc_sim_test.dir/noc_sim_test.cpp.o.d"
  "noc_sim_test"
  "noc_sim_test.pdb"
  "noc_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noc_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
