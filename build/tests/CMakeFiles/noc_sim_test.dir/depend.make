# Empty dependencies file for noc_sim_test.
# This may be replaced when dependencies are built.
