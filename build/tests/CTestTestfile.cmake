# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/pdn_grid_test[1]_include.cmake")
include("/root/repo/build/tests/pdn_ldo_test[1]_include.cmake")
include("/root/repo/build/tests/pdn_wafer_test[1]_include.cmake")
include("/root/repo/build/tests/clock_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/noc_routing_test[1]_include.cmake")
include("/root/repo/build/tests/noc_sim_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/arch_test[1]_include.cmake")
include("/root/repo/build/tests/testinfra_test[1]_include.cmake")
include("/root/repo/build/tests/route_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/noc_odd_even_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/jtag_load_test[1]_include.cmake")
include("/root/repo/build/tests/pagerank_test[1]_include.cmake")
include("/root/repo/build/tests/thermal_test[1]_include.cmake")
include("/root/repo/build/tests/bringup_test[1]_include.cmake")
include("/root/repo/build/tests/cost_model_test[1]_include.cmake")
