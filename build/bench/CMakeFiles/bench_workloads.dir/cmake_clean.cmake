file(REMOVE_RECURSE
  "CMakeFiles/bench_workloads.dir/bench_workloads.cpp.o"
  "CMakeFiles/bench_workloads.dir/bench_workloads.cpp.o.d"
  "bench_workloads"
  "bench_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
