file(REMOVE_RECURSE
  "CMakeFiles/bench_pdn_droop.dir/bench_pdn_droop.cpp.o"
  "CMakeFiles/bench_pdn_droop.dir/bench_pdn_droop.cpp.o.d"
  "bench_pdn_droop"
  "bench_pdn_droop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pdn_droop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
