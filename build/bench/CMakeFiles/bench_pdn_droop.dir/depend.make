# Empty dependencies file for bench_pdn_droop.
# This may be replaced when dependencies are built.
