# Empty compiler generated dependencies file for bench_jtag.
# This may be replaced when dependencies are built.
