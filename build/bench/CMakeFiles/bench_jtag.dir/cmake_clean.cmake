file(REMOVE_RECURSE
  "CMakeFiles/bench_jtag.dir/bench_jtag.cpp.o"
  "CMakeFiles/bench_jtag.dir/bench_jtag.cpp.o.d"
  "bench_jtag"
  "bench_jtag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_jtag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
