# Empty compiler generated dependencies file for bench_noc_traffic.
# This may be replaced when dependencies are built.
