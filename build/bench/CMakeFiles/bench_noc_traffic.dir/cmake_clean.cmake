file(REMOVE_RECURSE
  "CMakeFiles/bench_noc_traffic.dir/bench_noc_traffic.cpp.o"
  "CMakeFiles/bench_noc_traffic.dir/bench_noc_traffic.cpp.o.d"
  "bench_noc_traffic"
  "bench_noc_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_noc_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
