
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_noc_traffic.cpp" "bench/CMakeFiles/bench_noc_traffic.dir/bench_noc_traffic.cpp.o" "gcc" "bench/CMakeFiles/bench_noc_traffic.dir/bench_noc_traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wsp/common/CMakeFiles/wsp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/wsp/pdn/CMakeFiles/wsp_pdn.dir/DependInfo.cmake"
  "/root/repo/build/src/wsp/clock/CMakeFiles/wsp_clock.dir/DependInfo.cmake"
  "/root/repo/build/src/wsp/io/CMakeFiles/wsp_io.dir/DependInfo.cmake"
  "/root/repo/build/src/wsp/noc/CMakeFiles/wsp_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/wsp/mem/CMakeFiles/wsp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/wsp/arch/CMakeFiles/wsp_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/wsp/testinfra/CMakeFiles/wsp_testinfra.dir/DependInfo.cmake"
  "/root/repo/build/src/wsp/route/CMakeFiles/wsp_route.dir/DependInfo.cmake"
  "/root/repo/build/src/wsp/workloads/CMakeFiles/wsp_workloads.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
