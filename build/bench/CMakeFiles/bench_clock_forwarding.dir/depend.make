# Empty dependencies file for bench_clock_forwarding.
# This may be replaced when dependencies are built.
