file(REMOVE_RECURSE
  "CMakeFiles/bench_clock_forwarding.dir/bench_clock_forwarding.cpp.o"
  "CMakeFiles/bench_clock_forwarding.dir/bench_clock_forwarding.cpp.o.d"
  "bench_clock_forwarding"
  "bench_clock_forwarding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_clock_forwarding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
