# Empty compiler generated dependencies file for bench_disconnected_paths.
# This may be replaced when dependencies are built.
