file(REMOVE_RECURSE
  "CMakeFiles/bench_disconnected_paths.dir/bench_disconnected_paths.cpp.o"
  "CMakeFiles/bench_disconnected_paths.dir/bench_disconnected_paths.cpp.o.d"
  "bench_disconnected_paths"
  "bench_disconnected_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_disconnected_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
