file(REMOVE_RECURSE
  "CMakeFiles/bench_substrate_route.dir/bench_substrate_route.cpp.o"
  "CMakeFiles/bench_substrate_route.dir/bench_substrate_route.cpp.o.d"
  "bench_substrate_route"
  "bench_substrate_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_substrate_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
