# Empty dependencies file for bench_substrate_route.
# This may be replaced when dependencies are built.
