file(REMOVE_RECURSE
  "CMakeFiles/bench_pdn_strategies.dir/bench_pdn_strategies.cpp.o"
  "CMakeFiles/bench_pdn_strategies.dir/bench_pdn_strategies.cpp.o.d"
  "bench_pdn_strategies"
  "bench_pdn_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pdn_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
