# Empty dependencies file for bench_pdn_strategies.
# This may be replaced when dependencies are built.
