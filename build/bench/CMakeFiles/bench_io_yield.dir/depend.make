# Empty dependencies file for bench_io_yield.
# This may be replaced when dependencies are built.
