file(REMOVE_RECURSE
  "CMakeFiles/bench_io_yield.dir/bench_io_yield.cpp.o"
  "CMakeFiles/bench_io_yield.dir/bench_io_yield.cpp.o.d"
  "bench_io_yield"
  "bench_io_yield.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_io_yield.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
