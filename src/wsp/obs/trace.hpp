// Observability: structured span tracing with Chrome trace_event export.
//
// A process-wide `Tracer` owns one lane per participating thread (the main
// thread plus each `wsp::exec` pool worker).  `WSP_TRACE_SPAN("name")`
// opens a RAII span on the current thread's lane; when tracing is disabled
// (the default) the macro costs a single relaxed atomic load and no
// allocation — hot simulator loops keep their spans compiled in.
//
// Wall-clock time appears ONLY here: span timestamps are steady_clock
// nanoseconds relative to the moment tracing was enabled, and they are
// confined to the exported JSON.  Nothing in `MetricsRegistry` or any
// simulator result ever reads the clock, so traced and untraced runs are
// bit-identical in every recorded value.
//
// Lanes are thread-local ring buffers (fixed capacity, oldest spans
// overwritten), so recording takes no lock.  The registration list is the
// only shared state, guarded by a mutex; export requires the traced
// threads to be quiescent (pool idle), which the thread-pool's job
// handshake already guarantees before `write_chrome_trace` is called.
//
// Export format: Chrome trace_event JSON ("X" complete events, ts/dur in
// microseconds) — open in chrome://tracing or https://ui.perfetto.dev.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace wsp::obs {

/// One recorded span.  `name` must be a string literal (or otherwise
/// outlive the Tracer): spans are recorded by pointer to stay allocation-
/// free on the hot path.
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t ts_ns = 0;   // span start, ns since tracing was enabled
  std::uint64_t dur_ns = 0;  // span duration, ns
};

class Tracer {
 public:
  /// Spans retained per lane; older spans are overwritten ring-style.
  static constexpr std::size_t kLaneCapacity = std::size_t{1} << 14;

  static Tracer& instance();

  /// Enables recording and (re)sets the time origin.  Idempotent.
  void enable();
  /// Stops recording.  Recorded spans remain until clear().
  void disable();
  /// Drops all recorded spans from every lane (registration survives).
  void clear();

  static bool enabled() {
    return enabled_flag_.load(std::memory_order_relaxed);
  }

  /// Names the calling thread's lane in the exported trace (e.g.
  /// "wsp-pool-worker-3").  Creates the lane if needed.
  void set_thread_lane_name(const std::string& name);

  /// Serialises every lane's spans as Chrome trace_event JSON.  Caller
  /// must ensure traced threads are quiescent (pool idle / joined).
  std::string chrome_trace_json();

  /// chrome_trace_json() written to `path`; returns false on I/O failure.
  bool write_chrome_trace(const std::string& path);

  /// Total spans recorded across all lanes (for tests).
  std::uint64_t recorded_spans();

  // -- internal, used by TraceSpan --------------------------------------
  void record(const char* name, std::uint64_t ts_ns, std::uint64_t dur_ns);
  std::uint64_t now_ns() const;
  struct Lane;

 private:
  Tracer() = default;
  Lane& local_lane();

  static std::atomic<bool> enabled_flag_;
};

/// RAII span: measures from construction to destruction on the current
/// thread's lane.  No-op (one relaxed load) while tracing is disabled; a
/// span that straddles enable()/disable() is recorded only if tracing was
/// on at BOTH endpoints.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (Tracer::enabled()) {
      name_ = name;
      start_ns_ = Tracer::instance().now_ns();
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr && Tracer::enabled()) {
      Tracer& t = Tracer::instance();
      const std::uint64_t end = t.now_ns();
      t.record(name_, start_ns_, end - start_ns_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
};

#define WSP_OBS_CONCAT_INNER(a, b) a##b
#define WSP_OBS_CONCAT(a, b) WSP_OBS_CONCAT_INNER(a, b)
/// Scoped trace span: `WSP_TRACE_SPAN("pdn.sor.solve");`
#define WSP_TRACE_SPAN(name) \
  ::wsp::obs::TraceSpan WSP_OBS_CONCAT(wsp_trace_span_, __LINE__)(name)

/// Example/bench helper: enables tracing for the enclosing scope when the
/// WSP_TRACE environment variable is set to anything but "" or "0", and on
/// destruction writes TRACE_<tag>.json (override path with
/// WSP_TRACE_FILE).  Does nothing when WSP_TRACE is unset.
class ScopedTrace {
 public:
  explicit ScopedTrace(std::string tag);
  ~ScopedTrace();
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

  bool active() const { return active_; }
  const std::string& path() const { return path_; }

 private:
  std::string tag_;
  std::string path_;
  bool active_ = false;
};

}  // namespace wsp::obs
