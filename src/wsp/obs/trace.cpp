#include "wsp/obs/trace.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <mutex>
#include <sstream>
#include <vector>

namespace wsp::obs {

std::atomic<bool> Tracer::enabled_flag_{false};

namespace {

std::uint64_t steady_epoch_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Origin is atomic so a worker that observes `enabled_flag_` mid-run reads
// a coherent origin without locking (TSan-clean even across enable()).
std::atomic<std::uint64_t> g_origin_ns{0};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

struct Tracer::Lane {
  std::string name;
  std::vector<TraceEvent> events;  // ring once kLaneCapacity is reached
  std::size_t cursor = 0;          // next overwrite position when full
  std::uint64_t total = 0;         // spans ever recorded on this lane
};

namespace {
// Lane registry.  std::deque keeps lane addresses stable so each thread
// caches a raw pointer; the mutex guards registration and export only —
// recording touches nothing shared.  The registry is intentionally
// immortal (never destroyed): pool workers may outlive any particular
// static destruction order, and an atexit teardown would race their
// lane writes.  It stays reachable through the static pointer, so leak
// checkers don't flag it.
struct LaneRegistry {
  std::mutex mutex;
  std::deque<Tracer::Lane> lanes;
};

LaneRegistry& lane_registry() {
  static LaneRegistry* registry = new LaneRegistry;
  return *registry;
}

thread_local Tracer::Lane* tls_lane = nullptr;
}  // namespace

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

Tracer::Lane& Tracer::local_lane() {
  if (tls_lane == nullptr) {
    LaneRegistry& reg = lane_registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.lanes.emplace_back();
    reg.lanes.back().name = "thread-" + std::to_string(reg.lanes.size() - 1);
    tls_lane = &reg.lanes.back();
  }
  return *tls_lane;
}

void Tracer::enable() {
  g_origin_ns.store(steady_epoch_ns(), std::memory_order_relaxed);
  enabled_flag_.store(true, std::memory_order_release);
}

void Tracer::disable() {
  enabled_flag_.store(false, std::memory_order_release);
}

void Tracer::clear() {
  LaneRegistry& reg = lane_registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (Lane& lane : reg.lanes) {
    lane.events.clear();
    lane.cursor = 0;
    lane.total = 0;
  }
}

void Tracer::set_thread_lane_name(const std::string& name) {
  Lane& lane = local_lane();
  LaneRegistry& reg = lane_registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  lane.name = name;
}

std::uint64_t Tracer::now_ns() const {
  return steady_epoch_ns() - g_origin_ns.load(std::memory_order_relaxed);
}

void Tracer::record(const char* name, std::uint64_t ts_ns,
                    std::uint64_t dur_ns) {
  Lane& lane = local_lane();
  TraceEvent ev{name, ts_ns, dur_ns};
  if (lane.events.size() < kLaneCapacity) {
    lane.events.push_back(ev);
  } else {
    lane.events[lane.cursor] = ev;
    lane.cursor = (lane.cursor + 1) % kLaneCapacity;
  }
  ++lane.total;
}

std::uint64_t Tracer::recorded_spans() {
  LaneRegistry& reg = lane_registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::uint64_t total = 0;
  for (const Lane& lane : reg.lanes) total += lane.total;
  return total;
}

std::string Tracer::chrome_trace_json() {
  LaneRegistry& reg = lane_registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  int tid = 0;
  for (const Lane& lane : reg.lanes) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
        << ",\"args\":{\"name\":\"" << json_escape(lane.name) << "\"}}";
    for (const TraceEvent& ev : lane.events) {
      // Chrome expects microseconds; keep sub-µs precision as a fraction.
      out << ",{\"name\":\"" << json_escape(ev.name ? ev.name : "?")
          << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << tid
          << ",\"ts\":" << static_cast<double>(ev.ts_ns) / 1000.0
          << ",\"dur\":" << static_cast<double>(ev.dur_ns) / 1000.0 << "}";
    }
    ++tid;
  }
  out << "],\"displayTimeUnit\":\"ms\"}";
  return out.str();
}

bool Tracer::write_chrome_trace(const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  f << chrome_trace_json() << "\n";
  return static_cast<bool>(f);
}

ScopedTrace::ScopedTrace(std::string tag) : tag_(std::move(tag)) {
  const char* env = std::getenv("WSP_TRACE");
  active_ = env != nullptr && env[0] != '\0' &&
            !(env[0] == '0' && env[1] == '\0');
  if (!active_) return;
  const char* file = std::getenv("WSP_TRACE_FILE");
  path_ = file != nullptr && file[0] != '\0' ? file
                                             : "TRACE_" + tag_ + ".json";
  Tracer::instance().set_thread_lane_name("main");
  Tracer::instance().clear();
  Tracer::instance().enable();
}

ScopedTrace::~ScopedTrace() {
  if (!active_) return;
  Tracer::instance().disable();
  Tracer::instance().write_chrome_trace(path_);
}

}  // namespace wsp::obs
