// Observability: unified machine-readable run report.
//
// A `RunReport` gathers everything one simulator run produced — bench
// measurements (from bench/bench_json.hpp), named scalar results, and full
// `MetricsRegistry` dumps per subsystem — into a single JSON document
// (`RUNREPORT_<name>.json`), so CI and analysis scripts read one file
// instead of scraping per-subsystem stdout.  Serialisation is fully
// deterministic: sections and names are emitted in sorted order
// (std::map), doubles with %.17g round-trip precision, no timestamps.
// Validated in CI against schemas/runreport.schema.json.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "wsp/obs/metrics.hpp"

namespace wsp::obs {

/// %.17g — shortest text that round-trips the exact double.
std::string json_double(double v);

class RunReport {
 public:
  static constexpr int kSchemaVersion = 1;

  /// Mirrors bench/bench_json.hpp's Measurement so wsp_obs stays free of
  /// bench includes; bench mains convert when assembling the report.
  struct BenchEntry {
    std::string name;
    double wall_ms = 0.0;
    std::uint64_t iterations = 0;
    int threads = 1;
    double speedup_vs_serial = 0.0;  // 0 when not measured
  };

  explicit RunReport(std::string name) : name_(std::move(name)) {}

  void add_bench(const BenchEntry& entry) { bench_.push_back(entry); }
  void add_scalar(const std::string& section, const std::string& name,
                  double value) {
    scalars_[section][name] = value;
  }
  /// Snapshots `registry` under `section` (counters, gauges, histogram
  /// count/sum/min/max/mean/p50/p95/p99 + non-empty buckets).
  void add_metrics(const std::string& section,
                   const MetricsRegistry& registry);

  std::string to_json() const;
  /// to_json() written to `path`; returns false on I/O failure.
  bool write(const std::string& path) const;
  /// write() to RUNREPORT_<name>.json in the working directory (override
  /// path with the WSP_RUNREPORT_FILE environment variable); returns the
  /// path written, empty on failure.
  std::string write_default() const;

 private:
  struct HistogramSnapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    double mean = 0.0;
    std::uint64_t p50 = 0;
    std::uint64_t p95 = 0;
    std::uint64_t p99 = 0;
    bool exact = true;
    std::map<int, std::uint64_t> buckets;  // only non-empty buckets
  };
  struct MetricsSnapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramSnapshot> histograms;
  };

  std::string name_;
  std::vector<BenchEntry> bench_;
  std::map<std::string, std::map<std::string, double>> scalars_;
  std::map<std::string, MetricsSnapshot> metrics_;
};

}  // namespace wsp::obs
