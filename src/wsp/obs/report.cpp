#include "wsp/obs/report.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "wsp/ckpt/checkpoint.hpp"

namespace wsp::obs {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string json_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // JSON has no inf/nan literals; clamp to null-adjacent sentinels.
  std::string s(buf);
  if (s.find("inf") != std::string::npos ||
      s.find("nan") != std::string::npos) {
    return "null";
  }
  return s;
}

void RunReport::add_metrics(const std::string& section,
                            const MetricsRegistry& registry) {
  MetricsSnapshot& snap = metrics_[section];
  for (const auto& [name, c] : registry.counters()) {
    snap.counters[name] = c.value;
  }
  for (const auto& [name, g] : registry.gauges()) {
    snap.gauges[name] = g.value;
  }
  for (const auto& [name, h] : registry.histograms()) {
    HistogramSnapshot hs;
    hs.count = h.count();
    hs.sum = h.sum();
    hs.min = h.min();
    hs.max = h.max();
    hs.mean = h.mean();
    hs.p50 = h.percentile(0.50);
    hs.p95 = h.percentile(0.95);
    hs.p99 = h.percentile(0.99);
    hs.exact = h.exact();
    for (int b = 0; b < Histogram::kBucketCount; ++b) {
      if (h.buckets()[b] != 0) hs.buckets[b] = h.buckets()[b];
    }
    snap.histograms[name] = std::move(hs);
  }
}

std::string RunReport::to_json() const {
  std::ostringstream out;
  out << "{\"report\":\"" << json_escape(name_) << "\"";
  out << ",\"schema_version\":" << kSchemaVersion;

  out << ",\"bench\":[";
  for (std::size_t i = 0; i < bench_.size(); ++i) {
    const BenchEntry& b = bench_[i];
    if (i) out << ",";
    out << "{\"name\":\"" << json_escape(b.name) << "\""
        << ",\"wall_ms\":" << json_double(b.wall_ms)
        << ",\"iterations\":" << b.iterations
        << ",\"threads\":" << b.threads
        << ",\"speedup_vs_serial\":" << json_double(b.speedup_vs_serial)
        << "}";
  }
  out << "]";

  out << ",\"scalars\":{";
  bool first_section = true;
  for (const auto& [section, values] : scalars_) {
    if (!first_section) out << ",";
    first_section = false;
    out << "\"" << json_escape(section) << "\":{";
    bool first = true;
    for (const auto& [name, value] : values) {
      if (!first) out << ",";
      first = false;
      out << "\"" << json_escape(name) << "\":" << json_double(value);
    }
    out << "}";
  }
  out << "}";

  out << ",\"metrics\":{";
  first_section = true;
  for (const auto& [section, snap] : metrics_) {
    if (!first_section) out << ",";
    first_section = false;
    out << "\"" << json_escape(section) << "\":{";

    out << "\"counters\":{";
    bool first = true;
    for (const auto& [name, value] : snap.counters) {
      if (!first) out << ",";
      first = false;
      out << "\"" << json_escape(name) << "\":" << value;
    }
    out << "}";

    out << ",\"gauges\":{";
    first = true;
    for (const auto& [name, value] : snap.gauges) {
      if (!first) out << ",";
      first = false;
      out << "\"" << json_escape(name) << "\":" << json_double(value);
    }
    out << "}";

    out << ",\"histograms\":{";
    first = true;
    for (const auto& [name, h] : snap.histograms) {
      if (!first) out << ",";
      first = false;
      out << "\"" << json_escape(name) << "\":{"
          << "\"count\":" << h.count << ",\"sum\":" << h.sum
          << ",\"min\":" << h.min << ",\"max\":" << h.max
          << ",\"mean\":" << json_double(h.mean) << ",\"p50\":" << h.p50
          << ",\"p95\":" << h.p95 << ",\"p99\":" << h.p99
          << ",\"exact\":" << (h.exact ? "true" : "false") << ",\"buckets\":{";
      bool first_bucket = true;
      for (const auto& [bucket, count] : h.buckets) {
        if (!first_bucket) out << ",";
        first_bucket = false;
        out << "\"" << bucket << "\":" << count;
      }
      out << "}}";
    }
    out << "}}";
  }
  out << "}}";
  return out.str();
}

bool RunReport::write(const std::string& path) const {
  // Temp-then-rename so a run killed mid-write never leaves a truncated
  // JSON artifact for downstream tooling to choke on.
  return ckpt::atomic_write_text(path, to_json() + "\n");
}

std::string RunReport::write_default() const {
  const char* env = std::getenv("WSP_RUNREPORT_FILE");
  const std::string path = env != nullptr && env[0] != '\0'
                               ? env
                               : "RUNREPORT_" + name_ + ".json";
  return write(path) ? path : std::string{};
}

}  // namespace wsp::obs
