// Observability: named metrics with deterministic contents.
//
// The simulator's subsystems (NoC meshes, PDN solver, degradation
// campaigns, scrub chains) used to keep hand-rolled per-struct counters and
// re-derive percentiles ad hoc; this registry gives them one seam.  Three
// metric kinds:
//
//   * Counter   — monotonically increasing u64 (events).
//   * Gauge     — last-written double (levels: residuals, voltages).
//   * Histogram — fixed 65-bucket log2 value distribution (bucket 0 holds
//                 the value 0, bucket k holds [2^(k-1), 2^k)), plus exact
//                 retained samples up to a cap so p50/p95/p99 extraction is
//                 *exact* (nearest-rank over the real sample set) rather
//                 than bucket-resolution.  Past the cap, percentiles
//                 degrade deterministically to the bucket upper bound.
//
// Determinism contract: metrics record simulation quantities only — cycle
// counts, iteration counts, amperes — never wall-clock time (wall time
// lives exclusively in the trace export, wsp/obs/trace.hpp).  Registry
// iteration order is name-sorted (std::map), so two runs that perform the
// same recordings serialise byte-identically regardless of thread count or
// registration order.  A registry is single-writer by design: it is owned
// by one simulator object (or one campaign trial) and must not be shared
// across concurrently running owners — parallel campaign trials each fill
// their own and the results are folded in trial order afterwards.
#pragma once

#include <bit>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace wsp::ckpt {
class Writer;
class Reader;
}  // namespace wsp::ckpt

namespace wsp::obs {

/// Monotonic event counter.
struct Counter {
  std::uint64_t value = 0;
  void add(std::uint64_t n = 1) { value += n; }
  friend bool operator==(const Counter&, const Counter&) = default;
};

/// Last-written level.
struct Gauge {
  double value = 0.0;
  void set(double v) { value = v; }
  friend bool operator==(const Gauge&, const Gauge&) = default;
};

/// Nearest-rank percentile over `samples` (mutated in place by
/// nth_element).  p in [0, 1]; rank = max(1, ceil(p * n)).  Exact for every
/// n >= 1: n == 1 returns the sole element for every p, and p == 1 returns
/// the maximum.  Empty input returns 0.
std::uint64_t nearest_rank_percentile(std::vector<std::uint64_t>& samples,
                                      double p);

/// Log2-bucketed value distribution with exact percentile extraction.
class Histogram {
 public:
  /// 0 | [1,2) | [2,4) | ... | [2^63, 2^64): 65 fixed buckets.
  static constexpr int kBucketCount = 65;
  /// Samples retained verbatim for exact percentiles; beyond this the
  /// histogram keeps only bucket counts (recording stays O(1) memory).
  static constexpr std::size_t kExactSampleCap = std::size_t{1} << 20;

  static int bucket_of(std::uint64_t value) {
    return value == 0 ? 0 : std::bit_width(value);
  }
  /// Largest value the bucket covers (inclusive).
  static std::uint64_t bucket_upper_bound(int bucket);

  void record(std::uint64_t value);

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ ? min_ : 0; }
  std::uint64_t max() const { return max_; }
  double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }
  /// True while every recorded value is still retained (percentiles exact).
  bool exact() const { return samples_.size() == count_; }

  /// Nearest-rank percentile, p in [0, 1].  Exact while `exact()`;
  /// afterwards the deterministic bucket upper bound at that rank.
  std::uint64_t percentile(double p) const;

  const std::uint64_t* buckets() const { return buckets_; }

  /// Adds `other`'s recordings to this histogram (bucket-wise; retained
  /// samples are concatenated up to the cap).
  void merge(const Histogram& other);

  friend bool operator==(const Histogram& a, const Histogram& b);

  /// Checkpoint hooks: the full distribution state (buckets, aggregates,
  /// retained samples) round-trips, so percentiles after a resume are the
  /// ones an uninterrupted run would report.
  void save_state(ckpt::Writer& w) const;
  void load_state(ckpt::Reader& r);

 private:
  std::uint64_t buckets_[kBucketCount] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  std::vector<std::uint64_t> samples_;
};

/// Named metrics with stable addresses and name-sorted iteration.
///
/// `counter("noc.issued")` creates on first use and always returns the same
/// object (std::map nodes never move), so subsystems resolve their handles
/// once at construction and increment through the pointer on the hot path.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  /// Value of a counter, 0 when absent (read-only lookup, no creation).
  std::uint64_t counter_value(const std::string& name) const;

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Name-sorted views — the deterministic iteration order.
  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// Folds `other` into this registry: counters add, gauges take `other`'s
  /// value (last writer wins), histograms merge.  Fold order is the
  /// caller's responsibility where determinism matters (e.g. campaign
  /// trials fold in trial order).
  void merge(const MetricsRegistry& other);

  friend bool operator==(const MetricsRegistry& a, const MetricsRegistry& b) {
    return a.counters_ == b.counters_ && a.gauges_ == b.gauges_ &&
           a.histograms_ == b.histograms_;
  }

  /// Checkpoint hooks.  load_state updates metrics *in place* and never
  /// erases a map node: subsystems cache Counter*/Gauge* handles resolved
  /// at construction, and those addresses must survive a load.  Metrics
  /// present in the snapshot are overwritten, metrics absent from it are
  /// zeroed, missing ones are created.
  void save_state(ckpt::Writer& w) const;
  void load_state(ckpt::Reader& r);

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace wsp::obs
