#include "wsp/obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "wsp/ckpt/checkpoint.hpp"

namespace wsp::obs {

std::uint64_t nearest_rank_percentile(std::vector<std::uint64_t>& samples,
                                      double p) {
  if (samples.empty()) return 0;
  const auto n = samples.size();
  const double clamped = std::min(std::max(p, 0.0), 1.0);
  auto rank = static_cast<std::size_t>(
      std::ceil(clamped * static_cast<double>(n)));
  rank = std::min(std::max<std::size_t>(rank, 1), n);
  auto nth = samples.begin() + static_cast<std::ptrdiff_t>(rank - 1);
  std::nth_element(samples.begin(), nth, samples.end());
  return *nth;
}

std::uint64_t Histogram::bucket_upper_bound(int bucket) {
  if (bucket <= 0) return 0;
  if (bucket >= 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << bucket) - 1;
}

void Histogram::record(std::uint64_t value) {
  ++buckets_[bucket_of(value)];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  sum_ += value;
  ++count_;
  if (samples_.size() < kExactSampleCap) samples_.push_back(value);
}

std::uint64_t Histogram::percentile(double p) const {
  if (count_ == 0) return 0;
  if (exact()) {
    std::vector<std::uint64_t> scratch(samples_);
    return nearest_rank_percentile(scratch, p);
  }
  // Bucket-resolution fallback: walk buckets to the nearest-rank position
  // and report that bucket's upper bound (clamped to the observed max).
  const double clamped = std::min(std::max(p, 0.0), 1.0);
  auto rank = static_cast<std::uint64_t>(
      std::ceil(clamped * static_cast<double>(count_)));
  rank = std::min(std::max<std::uint64_t>(rank, 1), count_);
  std::uint64_t seen = 0;
  for (int b = 0; b < kBucketCount; ++b) {
    seen += buckets_[b];
    if (seen >= rank) return std::min(bucket_upper_bound(b), max_);
  }
  return max_;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  for (int b = 0; b < kBucketCount; ++b) buckets_[b] += other.buckets_[b];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  sum_ += other.sum_;
  count_ += other.count_;
  const std::size_t room = kExactSampleCap - std::min(kExactSampleCap,
                                                      samples_.size());
  const std::size_t take = std::min(room, other.samples_.size());
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.begin() + static_cast<std::ptrdiff_t>(take));
}

bool operator==(const Histogram& a, const Histogram& b) {
  return a.count_ == b.count_ && a.sum_ == b.sum_ && a.min() == b.min() &&
         a.max_ == b.max_ && a.samples_ == b.samples_ &&
         std::equal(a.buckets_, a.buckets_ + Histogram::kBucketCount,
                    b.buckets_);
}

void Histogram::save_state(ckpt::Writer& w) const {
  w.tag(ckpt::fourcc("HIST"));
  for (int b = 0; b < kBucketCount; ++b) w.u64(buckets_[b]);
  w.u64(count_);
  w.u64(sum_);
  w.u64(min_);
  w.u64(max_);
  w.u64(samples_.size());
  for (std::uint64_t s : samples_) w.u64(s);
}

void Histogram::load_state(ckpt::Reader& r) {
  r.expect_tag(ckpt::fourcc("HIST"), "Histogram");
  for (int b = 0; b < kBucketCount; ++b) buckets_[b] = r.u64();
  count_ = r.u64();
  sum_ = r.u64();
  min_ = r.u64();
  max_ = r.u64();
  std::size_t n = r.length(8);
  if (n > kExactSampleCap || n > count_)
    throw ckpt::Error(ckpt::ErrorKind::SchemaMismatch,
                      "Histogram retained-sample count is implausible");
  samples_.assign(n, 0);
  for (auto& s : samples_) s = r.u64();
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) counters_[name].value += c.value;
  for (const auto& [name, g] : other.gauges_) gauges_[name].value = g.value;
  for (const auto& [name, h] : other.histograms_) histograms_[name].merge(h);
}

void MetricsRegistry::save_state(ckpt::Writer& w) const {
  w.tag(ckpt::fourcc("MREG"));
  w.u64(counters_.size());
  for (const auto& [name, c] : counters_) {
    w.str(name);
    w.u64(c.value);
  }
  w.u64(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    w.str(name);
    w.f64(g.value);
  }
  w.u64(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    w.str(name);
    h.save_state(w);
  }
}

void MetricsRegistry::load_state(ckpt::Reader& r) {
  r.expect_tag(ckpt::fourcc("MREG"), "MetricsRegistry");
  // In-place restore: zero what the snapshot lacks, overwrite what it has,
  // create what this registry lacks.  Never erase — cached handle
  // addresses must stay valid.
  for (auto& [name, c] : counters_) c.value = 0;
  for (auto& [name, g] : gauges_) g.value = 0.0;
  for (auto& [name, h] : histograms_) h = Histogram{};
  std::size_t nc = r.length(1);
  for (std::size_t i = 0; i < nc; ++i) {
    std::string name = r.str();
    counters_[name].value = r.u64();
  }
  std::size_t ng = r.length(1);
  for (std::size_t i = 0; i < ng; ++i) {
    std::string name = r.str();
    gauges_[name].value = r.f64();
  }
  std::size_t nh = r.length(1);
  for (std::size_t i = 0; i < nh; ++i) {
    std::string name = r.str();
    histograms_[name].load_state(r);
  }
}

}  // namespace wsp::obs
