// Deterministic data-parallel loops over index ranges.
//
// Chunk boundaries are a pure function of the range length (kMaxChunks
// contiguous chunks, or fewer for short ranges) — never of the thread
// count.  parallel_for therefore produces identical memory writes for any
// pool size as long as the body writes only to locations indexed by its own
// range, and parallel_reduce produces bit-identical results because the
// per-chunk partials are combined serially in chunk order.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "wsp/exec/thread_pool.hpp"

namespace wsp::exec {

/// Upper bound on chunks per loop: enough granularity that a claimed-chunk
/// imbalance cannot idle most of an 8–16 thread pool, small enough that the
/// per-chunk dispatch cost stays invisible.
inline constexpr std::size_t kMaxChunks = 64;

/// Chunk count for a range of `n` items with at least `min_grain` items per
/// chunk — a pure function of (n, min_grain), never of the thread count
/// (the determinism contract).  Ranges smaller than one grain collapse to a
/// single chunk, which run_chunks executes inline: small problems (an 8x8
/// campaign PDN grid) skip the dispatch cost entirely.
inline std::size_t chunk_count_for(std::size_t n, std::size_t min_grain = 1) {
  if (min_grain < 1) min_grain = 1;
  const std::size_t by_grain = n / min_grain;
  if (by_grain <= 1) return n > 0 ? 1 : 0;
  return by_grain < kMaxChunks ? by_grain : kMaxChunks;
}

/// Half-open sub-range [begin, end) of chunk `c` out of `chunks` over `n`.
inline std::pair<std::size_t, std::size_t> chunk_bounds(std::size_t n,
                                                        std::size_t chunks,
                                                        std::size_t c) {
  return {n * c / chunks, n * (c + 1) / chunks};
}

/// Runs body(begin, end) over [0, n) split into deterministic contiguous
/// chunks of at least `min_grain` items.  The body must only write state
/// indexed by its own sub-range.
template <typename Body>
void parallel_for(ThreadPool& pool, std::size_t n, Body&& body,
                  std::size_t min_grain = 1) {
  if (n == 0) return;
  const std::size_t chunks = chunk_count_for(n, min_grain);
  pool.run_chunks(chunks, [&](std::size_t c) {
    const auto [b, e] = chunk_bounds(n, chunks, c);
    body(b, e);
  });
}

/// Convenience: shared-pool parallel_for.
template <typename Body>
void parallel_for(std::size_t n, Body&& body, std::size_t min_grain = 1) {
  parallel_for(shared_pool(), n, std::forward<Body>(body), min_grain);
}

/// Map-reduce over [0, n): `map(begin, end)` returns a partial T per chunk;
/// partials are combined with `combine(acc, partial)` serially in chunk
/// order starting from `init`, so the result is bit-identical for every
/// thread count.
template <typename T, typename Map, typename Combine>
T parallel_reduce(ThreadPool& pool, std::size_t n, T init, Map&& map,
                  Combine&& combine, std::size_t min_grain = 1) {
  if (n == 0) return init;
  const std::size_t chunks = chunk_count_for(n, min_grain);
  std::vector<T> partials(chunks, init);
  pool.run_chunks(chunks, [&](std::size_t c) {
    const auto [b, e] = chunk_bounds(n, chunks, c);
    partials[c] = map(b, e);
  });
  T acc = std::move(init);
  for (std::size_t c = 0; c < chunks; ++c) acc = combine(acc, partials[c]);
  return acc;
}

/// Convenience: shared-pool parallel_reduce.
template <typename T, typename Map, typename Combine>
T parallel_reduce(std::size_t n, T init, Map&& map, Combine&& combine,
                  std::size_t min_grain = 1) {
  return parallel_reduce(shared_pool(), n, std::move(init),
                         std::forward<Map>(map), std::forward<Combine>(combine),
                         min_grain);
}

}  // namespace wsp::exec
