// Parallel-execution substrate for the simulation hot paths.
//
// Design goals, in priority order:
//   1. Determinism: every construct here must produce bit-identical results
//      regardless of the number of worker threads.  Chunk *boundaries* are a
//      pure function of the iteration count (never of the thread count), and
//      reductions combine per-chunk partials serially in chunk order.  Which
//      thread executes which chunk is the only scheduling freedom, and the
//      callers guarantee chunks write disjoint state.
//   2. Simplicity: a fixed-size pool, no work stealing, no task graph.  One
//      blocking `run_chunks` primitive; `parallel_for` / `parallel_reduce`
//      are thin wrappers.
//   3. Graceful degradation: thread count 1 (or a nested call from inside a
//      worker) executes inline on the calling thread with zero overhead and
//      zero deadlock risk.
//
// Thread count resolution: `set_shared_threads(n)` wins, else the
// WSP_THREADS environment variable, else std::thread::hardware_concurrency.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace wsp::exec {

/// Fixed-size pool of worker threads executing indexed chunks of one job at
/// a time.  The calling thread participates, so `ThreadPool(n)` applies n
/// threads of compute with n-1 workers.
class ThreadPool {
 public:
  /// `threads` <= 1 creates no workers (all run_chunks calls are inline).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total compute threads (workers + the calling thread).
  int thread_count() const { return static_cast<int>(workers_.size()) + 1; }

  /// Executes fn(0) ... fn(chunk_count-1), each exactly once, distributed
  /// over the pool; blocks until all chunks complete.  The first exception
  /// thrown by any chunk is rethrown here (remaining chunks still run).
  /// Reentrant calls from inside a chunk execute inline on that thread.
  void run_chunks(std::size_t chunk_count,
                  const std::function<void(std::size_t)>& fn);

  /// True on a thread currently executing a chunk (worker or participating
  /// caller) — nested parallel constructs use this to degrade to serial.
  static bool on_worker_thread();

 private:
  // One dispatched job.  Heap-shared so a worker that wakes late and grabs
  // an already-finished job only touches an exhausted counter, never a
  // dangling frame.
  struct Job {
    std::function<void(std::size_t)> fn;
    std::size_t chunk_count = 0;
    std::atomic<std::size_t> next{0};  // next chunk index to claim
    std::size_t done = 0;              // completed chunks (pool mutex)
    std::exception_ptr error;          // first failure (pool mutex)
  };

  void worker_loop();
  void execute(Job& job);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable job_done_;
  std::shared_ptr<Job> current_;  // guarded by mutex_
  std::uint64_t generation_ = 0;  // bumped per dispatched job
  bool stopping_ = false;
};

/// Strict parser for WSP_THREADS-style thread counts.  Accepts a single
/// base-10 positive integer with optional surrounding whitespace, in
/// [1, 65536]; returns nullopt for anything else — empty text, garbage,
/// trailing junk ("4x"), zero, negative, or out-of-range values.  The old
/// atoi semantics silently read "4x" as 4 and turned garbage into the
/// hardware default with no indication anything was wrong.
std::optional<int> parse_thread_count(const char* text);

/// Threads the *next* construction of the shared pool uses: the explicit
/// override if set, else a well-formed WSP_THREADS, else
/// hardware_concurrency (min 1).  A malformed WSP_THREADS value is
/// rejected with a one-time stderr warning naming the fallback.
int default_thread_count();

/// Process-wide pool used by the simulation hot paths (PDN solver, Monte
/// Carlo campaigns).  Built lazily with default_thread_count() threads.
ThreadPool& shared_pool();

/// Rebuilds the shared pool with `threads` threads (<=0 resets to the
/// environment default).  Not safe to call while the pool is running a job;
/// intended for benches/tests sweeping thread counts.
void set_shared_threads(int threads);

/// Thread count of the shared pool as currently configured.
int shared_threads();

}  // namespace wsp::exec
