#include "wsp/exec/thread_pool.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "wsp/obs/trace.hpp"

namespace wsp::exec {

namespace {
thread_local bool tls_on_worker = false;

/// RAII flag so the participating caller also counts as a worker for
/// nested-call detection.
struct WorkerScope {
  bool prev;
  WorkerScope() : prev(tls_on_worker) { tls_on_worker = true; }
  ~WorkerScope() { tls_on_worker = prev; }
};
}  // namespace

ThreadPool::ThreadPool(int threads) {
  const int workers = std::max(0, threads - 1);
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i)
    workers_.emplace_back([this, i] {
      // Each worker owns one trace lane so exported spans show per-worker
      // occupancy (one Chrome-trace row per pool thread).
      obs::Tracer::instance().set_thread_lane_name(
          "wsp-pool-worker-" + std::to_string(i + 1));
      worker_loop();
    });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

bool ThreadPool::on_worker_thread() { return tls_on_worker; }

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(
          lock, [&] { return stopping_ || generation_ != seen; });
      if (stopping_) return;
      seen = generation_;
      job = current_;
    }
    if (job) {
      WorkerScope scope;
      execute(*job);
    }
  }
}

void ThreadPool::execute(Job& job) {
  std::size_t completed = 0;
  std::exception_ptr first_error;
  for (std::size_t i = job.next.fetch_add(1); i < job.chunk_count;
       i = job.next.fetch_add(1)) {
    try {
      // Span scope closes before the done-count handshake below, so every
      // recorded write on this lane happens-before the dispatcher's mutex
      // acquire — the trace export after quiesce is race-free.
      WSP_TRACE_SPAN("exec.chunk");
      job.fn(i);
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
    ++completed;
  }
  if (completed > 0 || first_error) {
    std::lock_guard<std::mutex> lock(mutex_);
    job.done += completed;
    if (first_error && !job.error) job.error = first_error;
    if (job.done == job.chunk_count) job_done_.notify_all();
  }
}

void ThreadPool::run_chunks(std::size_t chunk_count,
                            const std::function<void(std::size_t)>& fn) {
  if (chunk_count == 0) return;
  // Serial paths: no workers, a single chunk, or a nested call from inside
  // a chunk (running inline avoids self-deadlock and keeps the outermost
  // parallel level in charge of the partitioning).
  if (workers_.empty() || chunk_count == 1 || tls_on_worker) {
    WorkerScope scope;
    for (std::size_t i = 0; i < chunk_count; ++i) fn(i);
    return;
  }

  auto job = std::make_shared<Job>();
  job->fn = fn;
  job->chunk_count = chunk_count;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    current_ = job;
    ++generation_;
  }
  work_ready_.notify_all();

  {
    WorkerScope scope;
    execute(*job);
  }

  std::unique_lock<std::mutex> lock(mutex_);
  job_done_.wait(lock, [&] { return job->done == job->chunk_count; });
  if (current_ == job) current_.reset();
  if (job->error) std::rethrow_exception(job->error);
}

namespace {

std::mutex g_shared_mutex;
std::unique_ptr<ThreadPool> g_shared_pool;
int g_override_threads = 0;  // 0 = use environment / hardware default

int hardware_default() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

int env_thread_count() {
  const char* env = std::getenv("WSP_THREADS");
  if (env == nullptr || env[0] == '\0') return hardware_default();
  if (const auto n = parse_thread_count(env)) return *n;
  // Malformed value: fall back loudly, once — a silently ignored
  // WSP_THREADS=4x (old atoi read it as 4) corrupts every thread sweep.
  static bool warned = false;
  const int fallback = hardware_default();
  if (!warned) {
    warned = true;
    std::fprintf(stderr,
                 "wsp: ignoring invalid WSP_THREADS='%s' "
                 "(expected an integer in [1, 65536]); using %d threads\n",
                 env, fallback);
  }
  return fallback;
}

}  // namespace

std::optional<int> parse_thread_count(const char* text) {
  if (text == nullptr) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long n = std::strtol(text, &end, 10);
  if (end == text || errno == ERANGE) return std::nullopt;
  // Only trailing whitespace may follow the number ("4x" is garbage, not 4).
  for (; *end != '\0'; ++end) {
    if (!std::isspace(static_cast<unsigned char>(*end))) return std::nullopt;
  }
  if (n < 1 || n > 65536) return std::nullopt;
  return static_cast<int>(n);
}

int default_thread_count() {
  std::lock_guard<std::mutex> lock(g_shared_mutex);
  return g_override_threads > 0 ? g_override_threads : env_thread_count();
}

ThreadPool& shared_pool() {
  std::lock_guard<std::mutex> lock(g_shared_mutex);
  if (!g_shared_pool) {
    const int n =
        g_override_threads > 0 ? g_override_threads : env_thread_count();
    g_shared_pool = std::make_unique<ThreadPool>(n);
  }
  return *g_shared_pool;
}

void set_shared_threads(int threads) {
  std::lock_guard<std::mutex> lock(g_shared_mutex);
  g_override_threads = threads > 0 ? threads : 0;
  g_shared_pool.reset();  // rebuilt lazily at the next shared_pool() call
}

int shared_threads() {
  std::lock_guard<std::mutex> lock(g_shared_mutex);
  if (g_shared_pool) return g_shared_pool->thread_count();
  return g_override_threads > 0 ? g_override_threads : env_thread_count();
}

}  // namespace wsp::exec
