#include "wsp/noc/odd_even.hpp"

#include <algorithm>
#include <cstdlib>
#include <queue>
#include <set>
#include <vector>

namespace wsp::noc {

RouteChoices odd_even_route(TileCoord src, TileCoord cur, TileCoord dst) {
  RouteChoices out;
  const int ex = dst.x - cur.x;
  const int ey = dst.y - cur.y;
  if (ex == 0 && ey == 0) {
    out.eject = true;
    return out;
  }

  const bool odd_column = (cur.x & 1) != 0;
  const Direction vertical = ey > 0 ? Direction::North : Direction::South;

  if (ex == 0) {
    out.add(vertical);
  } else if (ex > 0) {  // eastbound
    if (ey == 0) {
      out.add(Direction::East);
    } else {
      // EN/ES turns only in odd columns (or the source column).
      if (odd_column || cur.x == src.x) out.add(vertical);
      // Keep going east unless the turn at the destination column would
      // land in an even column one hop away (Chiu's ex != 1 condition).
      if ((dst.x & 1) != 0 || ex != 1) out.add(Direction::East);
    }
  } else {  // westbound: NW/SW turns only in even columns
    out.add(Direction::West);
    if (ey != 0 && !odd_column) out.add(vertical);
  }

  // Adaptive selection heuristic: offer the dimension with the larger
  // remaining distance first.
  if (out.count == 2 && std::abs(ey) > std::abs(ex))
    std::swap(out.dirs[0], out.dirs[1]);
  return out;
}

bool odd_even_connected(const FaultMap& faults, TileCoord src,
                        TileCoord dst) {
  const TileGrid& grid = faults.grid();
  if (!grid.contains(src) || !grid.contains(dst)) return false;
  if (faults.is_faulty(src) || faults.is_faulty(dst)) return false;
  if (src == dst) return true;

  std::vector<char> visited(grid.tile_count(), 0);
  std::queue<TileCoord> frontier;
  visited[grid.index_of(src)] = 1;
  frontier.push(src);
  while (!frontier.empty()) {
    const TileCoord cur = frontier.front();
    frontier.pop();
    const RouteChoices choices = odd_even_route(src, cur, dst);
    if (choices.eject) return true;
    for (int i = 0; i < choices.count; ++i) {
      const TileCoord next = step(cur, choices.dirs[i]);
      if (next == dst) return true;
      if (!grid.contains(next) || faults.is_faulty(next)) continue;
      char& seen = visited[grid.index_of(next)];
      if (!seen) {
        seen = 1;
        frontier.push(next);
      }
    }
  }
  return false;
}

OddEvenStats census_odd_even(const FaultMap& faults) {
  OddEvenStats stats;
  const std::vector<TileCoord> healthy = faults.healthy_tiles();
  for (const TileCoord src : healthy) {
    for (const TileCoord dst : healthy) {
      if (src == dst) continue;
      ++stats.healthy_pairs;
      if (!odd_even_connected(faults, src, dst)) ++stats.disconnected;
    }
  }
  return stats;
}

bool channel_dependency_graph_is_acyclic(int width, int height) {
  const TileGrid grid(width, height);
  // Channel id: tile index * 4 + direction of travel.
  const auto channel = [&](TileCoord from, Direction d) {
    return grid.index_of(from) * 4 + static_cast<std::size_t>(d);
  };
  const std::size_t channels = grid.tile_count() * 4;
  std::vector<std::set<std::size_t>> deps(channels);

  // A dependency c1 -> c2 exists when some (src, dst) routing can use
  // channel c1 into a tile and continue on channel c2 out of it.
  grid.for_each([&](TileCoord src) {
    grid.for_each([&](TileCoord dst) {
      if (src == dst) return;
      // Walk all allowed minimal paths with BFS over (tile, in-channel).
      std::set<std::pair<std::size_t, int>> seen;  // (tile, in-channel id)
      std::queue<std::pair<TileCoord, int>> frontier;
      frontier.push({src, -1});
      while (!frontier.empty()) {
        const auto [cur, in_ch] = frontier.front();
        frontier.pop();
        const RouteChoices choices = odd_even_route(src, cur, dst);
        if (choices.eject) continue;
        for (int i = 0; i < choices.count; ++i) {
          const Direction d = choices.dirs[i];
          const TileCoord next = step(cur, d);
          if (!grid.contains(next)) continue;
          const auto out_ch = static_cast<int>(channel(cur, d));
          if (in_ch >= 0)
            deps[static_cast<std::size_t>(in_ch)].insert(
                static_cast<std::size_t>(out_ch));
          const auto key = std::make_pair(grid.index_of(next), out_ch);
          if (seen.insert(key).second) frontier.push({next, out_ch});
        }
      }
    });
  });

  // Cycle detection by iterative DFS colouring.
  std::vector<char> color(channels, 0);  // 0 white, 1 grey, 2 black
  std::vector<std::size_t> stack;
  for (std::size_t start = 0; start < channels; ++start) {
    if (color[start] != 0) continue;
    stack.push_back(start);
    while (!stack.empty()) {
      const std::size_t c = stack.back();
      if (color[c] == 0) {
        color[c] = 1;
        for (const std::size_t next : deps[c]) {
          if (color[next] == 1) return false;  // back edge: cycle
          if (color[next] == 0) stack.push_back(next);
        }
      } else {
        color[c] = 2;
        stack.pop_back();
      }
    }
  }
  return true;
}

}  // namespace wsp::noc
