#include "wsp/noc/mesh_network.hpp"

#include <algorithm>
#include <bit>
#include <string>

#include "wsp/ckpt/checkpoint.hpp"
#include "wsp/common/error.hpp"
#include "wsp/exec/thread_pool.hpp"
#include "wsp/noc/odd_even.hpp"
#include "wsp/obs/trace.hpp"

namespace wsp::noc {

namespace {

/// Default column-band count: one band per ~4 columns so a full-wafer
/// 32x32 mesh splits eight ways, while small test grids stay single-band
/// (one band means the phased stepper runs inline with no pool dispatch).
/// Pure function of the grid width — never of the thread count.
int default_shards(int width) {
  if (width < 16) return 1;
  return std::clamp(width / 4, 1, 16);
}

}  // namespace

MeshNetwork::MeshNetwork(const FaultMap& faults, NetworkKind kind,
                         const MeshOptions& options,
                         obs::MetricsRegistry* metrics)
    : faults_(faults),
      link_faults_(faults.grid()),
      grid_(faults.grid()),
      kind_(kind),
      options_(options),
      cap_(static_cast<std::size_t>(options.input_queue_capacity)),
      owned_metrics_(metrics ? nullptr : new obs::MetricsRegistry),
      metrics_(metrics ? metrics : owned_metrics_.get()),
      ber_(faults.grid()) {
  const std::string prefix =
      kind == NetworkKind::XY ? "noc.xy." : "noc.yx.";
  ctr_.injected = &metrics_->counter(prefix + "injected");
  ctr_.ejected = &metrics_->counter(prefix + "ejected");
  ctr_.dropped_at_fault = &metrics_->counter(prefix + "dropped_at_fault");
  ctr_.link_traversals = &metrics_->counter(prefix + "link_traversals");
  ctr_.cycles = &metrics_->counter(prefix + "cycles");
  ctr_.purged_in_dead_router =
      &metrics_->counter(prefix + "purged_in_dead_router");
  ctr_.corrupted = &metrics_->counter(prefix + "corrupted");
  ctr_.crc_detected = &metrics_->counter(prefix + "crc_detected");
  ctr_.crc_escapes = &metrics_->counter(prefix + "crc_escapes");
  ctr_.link_retransmits = &metrics_->counter(prefix + "link_retransmits");
  ctr_.link_error_drops = &metrics_->counter(prefix + "link_error_drops");
  ctr_.dup_dropped = &metrics_->counter(prefix + "dup_dropped");
  require(options.input_queue_capacity >= 1,
          "input queues need capacity >= 1");
  require(options.input_queue_capacity <= 4096,
          "input queue capacity too large");
  require(options.link_latency >= 1, "links take at least one cycle");
  require(options.integrity.max_retransmits >= 0,
          "retransmit budget cannot be negative");
  require(options.shards >= 0, "shard count cannot be negative");

  const std::size_t n = grid_.tile_count();
  q_slots_.assign(n * kPortCount * cap_, 0);
  tiles_.assign(n, TileState{});
  link_.assign(n * 4, LinkState{0, 0, 0, static_cast<std::uint16_t>(cap_)});
  ring_slab_.assign(n * 4 * cap_, LinkTransfer{});
  neighbor_.assign(n * 4, -1);
  in_ring_.assign(n * 4, -1);
  tile_faulty_.assign(n, 0);
  link_ok_.assign(n * 4, 0);
  tile_activity_.assign(n, TileActivity{});
  for (std::size_t t = 0; t < n; ++t) {
    const TileCoord c = grid_.coord_of(t);
    for (std::size_t d = 0; d < 4; ++d)
      if (const auto nb = grid_.neighbor(c, static_cast<Direction>(d)))
        neighbor_[t * 4 + d] =
            static_cast<std::int32_t>(grid_.index_of(*nb));
  }
  for (std::size_t t = 0; t < n; ++t) {
    for (std::size_t p = 0; p < 4; ++p) {
      const std::int32_t src = neighbor_[t * 4 + p];
      if (src < 0) continue;
      const auto out =
          static_cast<std::size_t>(opposite(static_cast<Direction>(p)));
      in_ring_[t * 4 + p] = src * 4 + static_cast<std::int32_t>(out);
    }
  }

  const int w = static_cast<int>(grid_.width());
  int s = options.shards > 0 ? options.shards : default_shards(w);
  s = std::clamp(s, 1, std::max(1, w));
  shards_ = static_cast<std::size_t>(s);
  shard_x0_.resize(shards_ + 1);
  for (std::size_t i = 0; i <= shards_; ++i)
    shard_x0_[i] = static_cast<int>(static_cast<std::size_t>(w) * i / shards_);
  scratch_.resize(shards_);
  metrics_->gauge(prefix + "shards").set(static_cast<double>(shards_));

  if (options_.integrity.enabled) {
    link_errors_.assign(n, {});
    link_traversals_.assign(n, {});
    tx_seq_.assign(n, {});
    rx_seq_.assign(n, {});
    link_next_free_.assign(n, {});
    // One independent stream per directed link, so the order shards happen
    // to sample channels in can never change what any one link draws.
    link_rng_.reserve(n * 4);
    const std::uint64_t base = options.integrity.seed ^
                               (static_cast<std::uint64_t>(kind) << 32);
    for (std::size_t lid = 0; lid < n * 4; ++lid)
      link_rng_.emplace_back(base + 0x9E3779B97F4A7C15ull * (lid + 1));
  }
  rebuild_topology();
}

void MeshNetwork::rebuild_topology() {
  const std::size_t n = grid_.tile_count();
  for (std::size_t t = 0; t < n; ++t)
    tile_faulty_[t] = faults_.is_faulty(grid_.coord_of(t)) ? 1 : 0;
  for (std::size_t t = 0; t < n; ++t) {
    const TileCoord c = grid_.coord_of(t);
    for (std::size_t d = 0; d < 4; ++d) {
      const std::int32_t nb = neighbor_[t * 4 + d];
      link_ok_[t * 4 + d] =
          (nb >= 0 && !tile_faulty_[static_cast<std::size_t>(nb)] &&
           !link_faults_.is_failed(c, static_cast<Direction>(d)))
              ? 1
              : 0;
    }
  }

  if (options_.adaptive_odd_even) {
    have_route9_ = false;
    return;
  }
  // DoR only reads the sign pair (sign(dst.x - x), sign(dst.y - y)), so
  // the per-(src, dst) decision table factors into 9 cases per tile; fold
  // link health in so the hot path is a single byte load.
  have_route9_ = true;
  for (std::size_t here = 0; here < n; ++here) {
    if (tile_faulty_[here]) continue;  // never arbitrates; row unread
    std::uint8_t* row = tiles_[here].route9;
    for (int sx = -1; sx <= 1; ++sx) {
      for (int sy = -1; sy <= 1; ++sy) {
        std::uint8_t code = kRouteEject;
        if (kind_ == NetworkKind::XY ? sx != 0 : (sx != 0 && sy == 0)) {
          code = static_cast<std::uint8_t>(sx > 0 ? Direction::East
                                                  : Direction::West);
        } else if (sy != 0) {
          code = static_cast<std::uint8_t>(sy > 0 ? Direction::North
                                                  : Direction::South);
        }
        if (code < 4 && !link_ok_[here * 4 + code]) code = kRouteDrop;
        row[(sx + 1) * 3 + (sy + 1)] = code;
      }
    }
  }
}

MeshStats MeshNetwork::stats() const {
  MeshStats s;
  s.injected = ctr_.injected->value;
  s.ejected = ctr_.ejected->value;
  s.dropped_at_fault = ctr_.dropped_at_fault->value;
  s.link_traversals = ctr_.link_traversals->value;
  s.cycles = ctr_.cycles->value;
  s.purged_in_dead_router = ctr_.purged_in_dead_router->value;
  s.corrupted = ctr_.corrupted->value;
  s.crc_detected = ctr_.crc_detected->value;
  s.crc_escapes = ctr_.crc_escapes->value;
  s.link_retransmits = ctr_.link_retransmits->value;
  s.link_error_drops = ctr_.link_error_drops->value;
  s.dup_dropped = ctr_.dup_dropped->value;
  return s;
}

bool MeshNetwork::can_inject(TileCoord src) const {
  if (!grid_.contains(src)) return false;
  const std::size_t t = grid_.index_of(src);
  return !tile_faulty_[t] &&
         tiles_[t].q_size[static_cast<std::size_t>(Port::Local)] < cap_;
}

bool MeshNetwork::inject(const Packet& packet) {
  if (!can_inject(packet.src)) return false;
  const std::size_t t = grid_.index_of(packet.src);
  const std::uint32_t idx = pool_alloc(packet);
  pool_[idx].network = kind_;
  q_push(t, static_cast<std::size_t>(Port::Local), idx);
  ctr_.injected->add();
  ++tile_activity_[t].injections;
  ++in_flight_;
  return true;
}

MeshNetwork::ChannelOutcome MeshNetwork::channel_admit(LinkTransfer t,
                                                       std::uint64_t now,
                                                       ShardScratch& sc) {
  const auto port = static_cast<std::size_t>(t.dst_port);

  if (options_.integrity.enabled) {
    const double p = ber_.packet_error_prob_at(t.src_tile, t.dir);
    if (p > 0.0) {
      Rng& rng = link_rng_[static_cast<std::size_t>(t.src_tile) * 4 + t.dir];
      if (rng.uniform() < p) {
        // The channel flipped at least one of the 100 wire bits.
        if (rng.uniform() < kCrcEscapeProbability) {
          // Aliased to a valid codeword: delivered with poisoned payload.
          ++sc.d_crc_escapes;
          pool_[t.pkt].payload ^= 1;
        } else {
          ++sc.d_crc_detected;
          ++link_errors_[t.src_tile][t.dir];
          if (options_.integrity.retransmit &&
              t.retransmits < static_cast<std::uint8_t>(
                                  options_.integrity.max_retransmits)) {
            // Go-back-N: the receiving hop NACKs; the sender replays this
            // frame (one NACK flight + one resend flight) and every frame
            // behind it on the same link, preserving per-link order.  The
            // downstream credit stays reserved for the whole retry.
            ++sc.d_link_retransmits;
            ++sc.d_link_traversals;
            // Charged to the landing tile (the unique writer in this
            // phase); the sender's tile may belong to another shard.
            ++tile_activity_[t.dst_tile].retransmits;
            ++link_traversals_[t.src_tile][t.dir];
            ++t.retransmits;
            std::uint64_t slot =
                now + 2 * static_cast<std::uint64_t>(options_.link_latency);
            t.arrival_cycle = slot;
            const std::size_t link =
                static_cast<std::size_t>(t.src_tile) * 4 + t.dir;
            for (std::size_t i = 0; i < link_[link].count; ++i)
              ring_at(link, i).arrival_cycle = ++slot;
            link_next_free_[t.src_tile][t.dir] =
                std::max(link_next_free_[t.src_tile][t.dir], slot + 1);
            ring_push_front(link, t);
            return ChannelOutcome::Retried;
          }
          // Budget exhausted (or retransmission disabled): drop here and
          // let the end-to-end timeout recover.  Both ends skip the lost
          // sequence number as part of the final NACK handshake.
          ++sc.d_link_error_drops;
          rx_seq_[t.dst_tile][port] =
              static_cast<std::uint8_t>((t.seq + 1) & 0xF);
          --link_[static_cast<std::size_t>(t.src_tile) * 4 + t.dir].pending;
          --sc.d_in_flight;
          sc.freed.push_back(t.pkt);
          return ChannelOutcome::Dropped;
        }
      }
    }
    // Receiver-side sequence check keeps delivery idempotent: anything but
    // the expected number is a stale replay and is rejected.
    if (t.seq != rx_seq_[t.dst_tile][port]) {
      ++sc.d_dup_dropped;
      --link_[static_cast<std::size_t>(t.src_tile) * 4 + t.dir].pending;
      --sc.d_in_flight;
      sc.freed.push_back(t.pkt);
      return ChannelOutcome::Dropped;
    }
    rx_seq_[t.dst_tile][port] = static_cast<std::uint8_t>((t.seq + 1) & 0xF);
  }

  --link_[static_cast<std::size_t>(t.src_tile) * 4 + t.dir].pending;
  q_push(t.dst_tile, port, t.pkt);
  return ChannelOutcome::Accept;
}

void MeshNetwork::phase_land(int s) {
  const std::uint64_t now = ctr_.cycles->value;
  ShardScratch& sc = scratch_[static_cast<std::size_t>(s)];
  const int w = static_cast<int>(grid_.width());
  const int h = static_cast<int>(grid_.height());
  const int x0 = shard_x0_[static_cast<std::size_t>(s)];
  const int x1 = shard_x0_[static_cast<std::size_t>(s) + 1];

  for (int y = 0; y < h; ++y) {
    for (int x = x0; x < x1; ++x) {
      const std::size_t t =
          static_cast<std::size_t>(y) * static_cast<std::size_t>(w) +
          static_cast<std::size_t>(x);
      // Drain every due transfer on each incoming link.  Arrivals on one
      // link are monotone, so the per-ring scan stops at the first future
      // frame; a Retried outcome re-queues at now + 2*latency, which also
      // fails the `<= now` test and ends the scan.  A frame arriving at a
      // tile that died while it was on the wire is lost here.
      for (std::size_t p = 0; p < 4; ++p) {
        const std::int32_t r = in_ring_[t * 4 + p];
        if (r < 0) continue;
        const auto link = static_cast<std::size_t>(r);
        while (link_[link].count != 0 &&
               ring_front(link).arrival_cycle <= now) {
          LinkTransfer tr = ring_front(link);
          ring_pop(link);
          if (tile_faulty_[t]) {
            if (options_.integrity.enabled)
              rx_seq_[t][p] = static_cast<std::uint8_t>((tr.seq + 1) & 0xF);
            --link_[link].pending;
            ++sc.d_dropped_at_fault;
            --sc.d_in_flight;
            sc.freed.push_back(tr.pkt);
            continue;
          }
          channel_admit(tr, now, sc);
        }
        // Freeze this cycle's credit snapshot on the upstream link record.
        // Its unique source router reads (and on grant, decrements) it
        // during phase_route; a slot freed by this cycle's pops becomes
        // visible to the sender one cycle later.
        link_[link].space = static_cast<std::uint16_t>(
            cap_ - tiles_[t].q_size[p] - link_[link].pending);
      }
    }
  }
}

void MeshNetwork::phase_route(int s) {
  const std::uint64_t now = ctr_.cycles->value;
  ShardScratch& sc = scratch_[static_cast<std::size_t>(s)];
  const int w = static_cast<int>(grid_.width());
  const int h = static_cast<int>(grid_.height());
  const int x0 = shard_x0_[static_cast<std::size_t>(s)];
  const int x1 = shard_x0_[static_cast<std::size_t>(s) + 1];
  const bool have_table = have_route9_;

  for (int y = 0; y < h; ++y) {
    for (int x = x0; x < x1; ++x) {
      const std::size_t t =
          static_cast<std::size_t>(y) * static_cast<std::size_t>(w) +
          static_cast<std::size_t>(x);
      if (tile_faulty_[t]) continue;
      TileState& ts = tiles_[t];
      if (ts.occ == 0) continue;

      // Desired output per input port (-1: empty input or stalled), and a
      // bitmask of outputs some input actually wants so the grant loop
      // below skips idle outputs.
      std::array<int, kPortCount> want{};
      unsigned out_mask = 0;
      for (std::size_t in = 0; in < kPortCount; ++in) {
        if (ts.q_size[in] == 0) {
          want[in] = -1;
          continue;
        }
        const Packet& head = pool_[q_front_idx(t, in)];

        if (have_table) {
          // DoR only looks at the sign of the remaining offset, so the
          // whole (src,dst) route function factors through nine cases per
          // tile (see rebuild_topology).  Off-grid destinations fall into
          // a non-zero sign case and drop at the wafer edge via link
          // health, same as the direct next_hop computation.
          const int sx = (head.dst.x > x) - (head.dst.x < x);
          const int sy = (head.dst.y > y) - (head.dst.y < y);
          const std::uint8_t r =
              ts.route9[(sx + 1) * 3 + (sy + 1)];
          if (r == kRouteEject) {
            want[in] = static_cast<int>(Port::Local);
            out_mask |= 1u << static_cast<unsigned>(Port::Local);
            continue;
          }
          if (r == kRouteDrop) {
            // The single DoR direction is dead (the kernel's fault-map
            // discipline exists to prevent this).
            want[in] = -1;
            sc.freed.push_back(q_front_idx(t, in));
            q_pop(t, in);
            ++sc.d_dropped_at_fault;
            --sc.d_in_flight;
            continue;
          }
          if (link_[t * 4 + r].space > 0) {
            want[in] = static_cast<int>(r);
            out_mask |= 1u << r;
          } else {
            want[in] = -1;
          }
          continue;
        }

        // No table (adaptive routing, or a grid too large for one):
        // candidate outputs in preference order — a single DoR direction,
        // or the odd-even minimal-adaptive choice set.
        const TileCoord here = grid_.coord_of(t);
        RouteChoices cand;
        if (options_.adaptive_odd_even) {
          cand = odd_even_route(head.src, here, head.dst);
        } else {
          const RouteDecision d = next_hop(here, head.dst, kind_);
          cand.eject = d.eject;
          if (!d.eject) cand.dirs[cand.count++] = d.dir;
        }
        if (cand.eject) {
          want[in] = static_cast<int>(Port::Local);
          out_mask |= 1u << static_cast<unsigned>(Port::Local);
          continue;
        }
        // Pick the first candidate that is healthy and has downstream
        // credit; a healthy-but-full candidate stalls the input for this
        // cycle, a route with no healthy candidate at all drops the packet.
        want[in] = -1;
        bool any_healthy = false;
        for (int i = 0; i < cand.count; ++i) {
          const auto dir = static_cast<std::size_t>(cand.dirs[i]);
          if (!link_ok_[t * 4 + dir]) continue;
          any_healthy = true;
          if (link_[t * 4 + dir].space > 0) {
            want[in] = static_cast<int>(dir);
            out_mask |= 1u << static_cast<unsigned>(dir);
            break;
          }
        }
        if (!any_healthy) {
          sc.freed.push_back(q_front_idx(t, in));
          q_pop(t, in);
          ++sc.d_dropped_at_fault;
          --sc.d_in_flight;
        }
      }

      // Each output grants at most one input per cycle, rotating priority,
      // against the frozen credit snapshot.  countr_zero walks the wanted
      // outputs in ascending index order, identical to the full 0..4 scan.
      while (out_mask != 0) {
        const auto out =
            static_cast<std::size_t>(std::countr_zero(out_mask));
        out_mask &= out_mask - 1;
        if (out != static_cast<std::size_t>(Port::Local)) {
          if (!link_ok_[t * 4 + out]) continue;
          if (link_[t * 4 + out].space == 0) continue;
        }

        int winner = -1;
        for (std::size_t k = 0; k < kPortCount; ++k) {
          const std::size_t in = (ts.rr[out] + k) % kPortCount;
          if (want[in] == static_cast<int>(out)) {
            winner = static_cast<int>(in);
            break;
          }
        }
        if (winner < 0) continue;
        ts.rr[out] = static_cast<std::uint8_t>((winner + 1) % kPortCount);

        const std::uint32_t idx = q_front_idx(t, static_cast<std::size_t>(winner));
        q_pop(t, static_cast<std::size_t>(winner));

        if (out == static_cast<std::size_t>(Port::Local)) {
          pool_[idx].delivered_cycle = now;
          sc.ejected.emplace_back(static_cast<std::uint32_t>(t), idx);
          ++sc.d_ejected;
          --sc.d_in_flight;
        } else {
          ++link_[t * 4 + out].pending;
          --link_[t * 4 + out].space;
          ++sc.d_link_traversals;
          ++tile_activity_[t].traversals;
          LinkTransfer tr;
          tr.arrival_cycle =
              now + static_cast<std::uint64_t>(options_.link_latency);
          tr.pkt = idx;
          tr.dst_tile =
              static_cast<std::uint32_t>(neighbor_[t * 4 + out]);
          tr.dst_port =
              static_cast<Port>(opposite(static_cast<Direction>(out)));
          tr.src_tile = static_cast<std::uint32_t>(t);
          tr.dir = static_cast<std::uint8_t>(out);
          if (options_.integrity.enabled) {
            tr.seq = tx_seq_[t][out];
            tx_seq_[t][out] =
                static_cast<std::uint8_t>((tx_seq_[t][out] + 1) & 0xF);
            ++link_traversals_[t][out];
            // The per-link watermark keeps frames granted after a
            // retransmission from overtaking the replayed window.
            tr.arrival_cycle =
                std::max(tr.arrival_cycle, link_next_free_[t][out]);
            link_next_free_[t][out] = tr.arrival_cycle + 1;
          }
          ring_push_back(t * 4 + out, tr);
        }
      }
    }
  }
}

void MeshNetwork::phase_commit(std::vector<Packet>& ejected) {
  std::size_t total = 0;
  for (ShardScratch& sc : scratch_) {
    ctr_.ejected->add(sc.d_ejected);
    ctr_.dropped_at_fault->add(sc.d_dropped_at_fault);
    ctr_.link_traversals->add(sc.d_link_traversals);
    ctr_.crc_detected->add(sc.d_crc_detected);
    ctr_.crc_escapes->add(sc.d_crc_escapes);
    ctr_.link_retransmits->add(sc.d_link_retransmits);
    ctr_.link_error_drops->add(sc.d_link_error_drops);
    ctr_.dup_dropped->add(sc.d_dup_dropped);
    in_flight_ = static_cast<std::size_t>(
        static_cast<std::int64_t>(in_flight_) + sc.d_in_flight);
    sc.d_ejected = sc.d_dropped_at_fault = sc.d_link_traversals = 0;
    sc.d_crc_detected = sc.d_crc_escapes = sc.d_link_retransmits = 0;
    sc.d_link_error_drops = sc.d_dup_dropped = 0;
    sc.d_in_flight = 0;
    for (const std::uint32_t f : sc.freed) pool_free_.push_back(f);
    sc.freed.clear();
    total += sc.ejected.size();
  }

  if (total > 0) {
    // Only the Local port ejects and each output grants once per cycle, so
    // tile indices are unique: sorting restores the global tile order the
    // serial sweep produced (shards interleave per row).
    if (shards_ == 1) {
      for (const auto& [tile, pkt] : scratch_[0].ejected) {
        ejected.push_back(pool_[pkt]);
        pool_free_.push_back(pkt);
      }
      scratch_[0].ejected.clear();
    } else {
      eject_merge_.clear();
      for (ShardScratch& sc : scratch_) {
        for (const auto& e : sc.ejected) eject_merge_.push_back(e);
        sc.ejected.clear();
      }
      std::sort(eject_merge_.begin(), eject_merge_.end(),
                [](const std::pair<std::uint32_t, std::uint32_t>& a,
                   const std::pair<std::uint32_t, std::uint32_t>& b) {
                  return a.first < b.first;
                });
      for (const auto& [tile, pkt] : eject_merge_) {
        ejected.push_back(pool_[pkt]);
        pool_free_.push_back(pkt);
      }
    }
  }

  ctr_.cycles->add();
  assert(conservation_holds());
}

void MeshNetwork::step(std::vector<Packet>& ejected) {
  WSP_TRACE_SPAN("noc.mesh.step");
  const int s = shard_count();
  if (s > 1 && !exec::ThreadPool::on_worker_thread()) {
    exec::ThreadPool& pool = exec::shared_pool();
    pool.run_chunks(static_cast<std::size_t>(s), [this](std::size_t c) {
      phase_land(static_cast<int>(c));
    });
    pool.run_chunks(static_cast<std::size_t>(s), [this](std::size_t c) {
      phase_route(static_cast<int>(c));
    });
  } else {
    for (int c = 0; c < s; ++c) phase_land(c);
    for (int c = 0; c < s; ++c) phase_route(c);
  }
  phase_commit(ejected);
}

std::size_t MeshNetwork::recount_in_flight() const {
  std::size_t total = 0;
  for (const TileState& ts : tiles_)
    for (std::size_t p = 0; p < kPortCount; ++p) total += ts.q_size[p];
  for (const LinkState& l : link_) total += l.count;
  return total;
}

void MeshNetwork::apply_fault_state(const FaultMap& faults,
                                    const LinkFaultSet& links) {
  require(faults.grid().width() == grid_.width() &&
              faults.grid().height() == grid_.height(),
          "apply_fault_state: fault map grid mismatch");
  faults_ = faults;
  link_faults_ = links;
  rebuild_topology();

  // Packets buffered inside a router that just died are gone: the tile no
  // longer arbitrates, so they would otherwise sit in its queues forever.
  const std::size_t n = grid_.tile_count();
  for (std::size_t t = 0; t < n; ++t) {
    TileState& ts = tiles_[t];
    if (!tile_faulty_[t] || ts.occ == 0) continue;
    for (std::size_t p = 0; p < kPortCount; ++p) {
      const std::uint16_t sz = ts.q_size[p];
      if (sz == 0) continue;
      for (std::size_t i = 0; i < sz; ++i) {
        std::size_t slot = static_cast<std::size_t>(ts.q_head[p]) + i;
        if (slot >= cap_) slot -= cap_;
        pool_free_.push_back(q_slots_[qbase(t, p) + slot]);
      }
      ctr_.purged_in_dead_router->add(sz);
      in_flight_ -= sz;
      ts.q_size[p] = 0;
      ts.q_head[p] = 0;
    }
    ts.occ = 0;
  }
}

std::optional<std::uint64_t> MeshNetwork::corrupt_head_packet(TileCoord tile) {
  if (!grid_.contains(tile)) return std::nullopt;
  const std::size_t t = grid_.index_of(tile);
  for (std::size_t p = 0; p < kPortCount; ++p) {
    if (tiles_[t].q_size[p] == 0) continue;
    const std::uint32_t idx = q_front_idx(t, p);
    const std::uint64_t id = pool_[idx].id;
    pool_free_.push_back(idx);
    q_pop(t, p);
    --in_flight_;
    ctr_.corrupted->add();
    return id;
  }
  return std::nullopt;
}

void MeshNetwork::set_link_ber(const LinkBerMap& ber) {
  require(ber.grid().width() == grid_.width() &&
              ber.grid().height() == grid_.height(),
          "set_link_ber: BER map grid mismatch");
  ber_ = ber;
}

std::uint64_t MeshNetwork::link_error_count(TileCoord from,
                                            Direction d) const {
  if (link_errors_.empty() || !grid_.contains(from)) return 0;
  return link_errors_[grid_.index_of(from)][static_cast<std::size_t>(d)];
}

std::uint64_t MeshNetwork::link_traversal_count(TileCoord from,
                                                Direction d) const {
  if (link_traversals_.empty() || !grid_.contains(from)) return 0;
  return link_traversals_[grid_.index_of(from)][static_cast<std::size_t>(d)];
}

// --- checkpointing ----------------------------------------------------------

namespace {

void save_packet(ckpt::Writer& w, const Packet& p) {
  w.i32(p.src.x);
  w.i32(p.src.y);
  w.i32(p.dst.x);
  w.i32(p.dst.y);
  w.u8(static_cast<std::uint8_t>(p.type));
  w.u8(static_cast<std::uint8_t>(p.network));
  w.u64(p.payload);
  w.u32(p.address);
  w.u64(p.id);
  w.u64(p.request_id);
  w.u64(p.injected_cycle);
  w.u64(p.delivered_cycle);
  w.u32(p.attempt);
}

Packet load_packet(ckpt::Reader& r) {
  Packet p;
  p.src.x = r.i32();
  p.src.y = r.i32();
  p.dst.x = r.i32();
  p.dst.y = r.i32();
  const std::uint8_t type = r.u8();
  const std::uint8_t network = r.u8();
  if (type > static_cast<std::uint8_t>(PacketType::WriteAck) || network > 1)
    throw ckpt::Error(ckpt::ErrorKind::SchemaMismatch,
                      "packet type/network enum out of range");
  p.type = static_cast<PacketType>(type);
  p.network = static_cast<NetworkKind>(network);
  p.payload = r.u64();
  p.address = r.u32();
  p.id = r.u64();
  p.request_id = r.u64();
  p.injected_cycle = r.u64();
  p.delivered_cycle = r.u64();
  p.attempt = r.u32();
  return p;
}

void save_ber_map(ckpt::Writer& w, const LinkBerMap& ber) {
  w.tag(ckpt::fourcc("BERM"));
  w.i32(ber.grid().width());
  w.i32(ber.grid().height());
  ber.grid().for_each([&](TileCoord c) {
    for (int d = 0; d < 4; ++d)
      w.f64(ber.ber(c, static_cast<Direction>(d)));
  });
}

LinkBerMap load_ber_map(ckpt::Reader& r, const TileGrid& expected) {
  r.expect_tag(ckpt::fourcc("BERM"), "LinkBerMap");
  const int w = r.i32();
  const int h = r.i32();
  if (w != expected.width() || h != expected.height())
    throw ckpt::Error(ckpt::ErrorKind::TopologyMismatch,
                      "BER map grid does not match live topology");
  LinkBerMap ber(expected);
  expected.for_each([&](TileCoord c) {
    for (int d = 0; d < 4; ++d) {
      const double v = r.f64();
      if (v != 0.0) ber.set_ber(c, static_cast<Direction>(d), v);
    }
  });
  return ber;
}

constexpr std::uint32_t kMeshTag = ckpt::fourcc("MESH");
// v2: per-tile activity totals ("TACT" block) for epoch co-simulation.
constexpr std::uint32_t kMeshStateVersion = 2;

}  // namespace

void MeshNetwork::save_state(ckpt::Writer& w) const {
  w.tag(kMeshTag);
  w.u32(kMeshStateVersion);
  w.i32(grid_.width());
  w.i32(grid_.height());
  w.u8(static_cast<std::uint8_t>(kind_));
  // Behavioural options are part of the schema: resuming under different
  // queue capacities or a different channel model would not reproduce the
  // saver's future.  (`shards` is excluded on purpose — see header.)
  w.i32(options_.input_queue_capacity);
  w.i32(options_.link_latency);
  w.b(options_.adaptive_odd_even);
  w.b(options_.integrity.enabled);
  w.b(options_.integrity.retransmit);
  w.i32(options_.integrity.max_retransmits);
  w.u64(options_.integrity.seed);
  w.f64(options_.integrity.ber.nominal_v);
  w.f64(options_.integrity.ber.floor_ber);
  w.f64(options_.integrity.ber.volts_per_decade);
  w.f64(options_.integrity.ber.max_ber);

  ckpt::save_fault_map(w, faults_);
  ckpt::save_link_faults(w, link_faults_);
  save_ber_map(w, ber_);

  w.u64(pool_.size());
  for (const Packet& p : pool_) save_packet(w, p);
  w.u64(pool_free_.size());
  for (std::uint32_t f : pool_free_) w.u32(f);

  w.tag(ckpt::fourcc("TILE"));
  for (const TileState& ts : tiles_) {
    for (std::size_t p = 0; p < kPortCount; ++p) w.u16(ts.q_head[p]);
    for (std::size_t p = 0; p < kPortCount; ++p) w.u16(ts.q_size[p]);
    for (std::size_t p = 0; p < kPortCount; ++p) w.u8(ts.rr[p]);
    w.u16(ts.occ);
  }
  for (std::uint32_t slot : q_slots_) w.u32(slot);

  w.tag(ckpt::fourcc("LINK"));
  for (const LinkState& l : link_) {
    w.u16(l.head);
    w.u16(l.count);
    w.u16(l.pending);
    w.u16(l.space);
  }
  for (const LinkTransfer& t : ring_slab_) {
    w.u64(t.arrival_cycle);
    w.u32(t.pkt);
    w.u32(t.dst_tile);
    w.u32(t.src_tile);
    w.u8(static_cast<std::uint8_t>(t.dst_port));
    w.u8(t.dir);
    w.u8(t.seq);
    w.u8(t.retransmits);
  }

  w.tag(ckpt::fourcc("CNTR"));
  w.u64(ctr_.injected->value);
  w.u64(ctr_.ejected->value);
  w.u64(ctr_.dropped_at_fault->value);
  w.u64(ctr_.link_traversals->value);
  w.u64(ctr_.cycles->value);
  w.u64(ctr_.purged_in_dead_router->value);
  w.u64(ctr_.corrupted->value);
  w.u64(ctr_.crc_detected->value);
  w.u64(ctr_.crc_escapes->value);
  w.u64(ctr_.link_retransmits->value);
  w.u64(ctr_.link_error_drops->value);
  w.u64(ctr_.dup_dropped->value);
  w.u64(in_flight_);

  w.tag(ckpt::fourcc("TACT"));
  for (const TileActivity& a : tile_activity_) {
    w.u64(a.injections);
    w.u64(a.traversals);
    w.u64(a.retransmits);
  }

  w.b(options_.integrity.enabled);
  if (options_.integrity.enabled) {
    w.tag(ckpt::fourcc("INTG"));
    for (const Rng& rng : link_rng_)
      for (std::uint64_t word : rng.state()) w.u64(word);
    for (const auto& a : link_errors_)
      for (std::uint64_t v : a) w.u64(v);
    for (const auto& a : link_traversals_)
      for (std::uint64_t v : a) w.u64(v);
    for (const auto& a : tx_seq_)
      for (std::uint8_t v : a) w.u8(v);
    for (const auto& a : rx_seq_)
      for (std::uint8_t v : a) w.u8(v);
    for (const auto& a : link_next_free_)
      for (std::uint64_t v : a) w.u64(v);
  }
}

void MeshNetwork::load_state(ckpt::Reader& r) {
  r.expect_tag(kMeshTag, "MeshNetwork");
  const std::uint32_t version = r.u32();
  if (version != kMeshStateVersion)
    throw ckpt::Error(ckpt::ErrorKind::VersionMismatch,
                      "MeshNetwork state version " + std::to_string(version));
  const int gw = r.i32();
  const int gh = r.i32();
  if (gw != grid_.width() || gh != grid_.height())
    throw ckpt::Error(ckpt::ErrorKind::TopologyMismatch,
                      "mesh snapshot grid " + std::to_string(gw) + "x" +
                          std::to_string(gh) + " vs live " +
                          std::to_string(grid_.width()) + "x" +
                          std::to_string(grid_.height()));
  if (r.u8() != static_cast<std::uint8_t>(kind_))
    throw ckpt::Error(ckpt::ErrorKind::SchemaMismatch,
                      "mesh snapshot is for the other DoR network");
  const bool options_match =
      r.i32() == options_.input_queue_capacity &&
      r.i32() == options_.link_latency &&
      r.b() == options_.adaptive_odd_even &&
      r.b() == options_.integrity.enabled &&
      r.b() == options_.integrity.retransmit &&
      r.i32() == options_.integrity.max_retransmits &&
      r.u64() == options_.integrity.seed &&
      r.f64() == options_.integrity.ber.nominal_v &&
      r.f64() == options_.integrity.ber.floor_ber &&
      r.f64() == options_.integrity.ber.volts_per_decade &&
      r.f64() == options_.integrity.ber.max_ber;
  if (!options_match)
    throw ckpt::Error(ckpt::ErrorKind::SchemaMismatch,
                      "mesh behavioural options differ from the snapshot");

  faults_ = ckpt::load_fault_map(r, &grid_);
  link_faults_ = ckpt::load_link_faults(r, &grid_);
  ber_ = load_ber_map(r, grid_);

  const std::size_t n = grid_.tile_count();
  const std::size_t pool_size = r.length(66);  // bytes per packed Packet
  pool_.assign(pool_size, Packet{});
  for (Packet& p : pool_) p = load_packet(r);
  const std::size_t free_size = r.length(4);
  if (free_size > pool_size)
    throw ckpt::Error(ckpt::ErrorKind::SchemaMismatch,
                      "pool free list larger than the pool");
  pool_free_.assign(free_size, 0);
  for (std::uint32_t& f : pool_free_) {
    f = r.u32();
    if (f >= pool_size)
      throw ckpt::Error(ckpt::ErrorKind::SchemaMismatch,
                        "pool free-list index out of range");
  }

  r.expect_tag(ckpt::fourcc("TILE"), "TileState");
  for (TileState& ts : tiles_) {
    std::uint32_t occ = 0;
    for (std::size_t p = 0; p < kPortCount; ++p) {
      ts.q_head[p] = r.u16();
      if (ts.q_head[p] >= cap_)
        throw ckpt::Error(ckpt::ErrorKind::SchemaMismatch,
                          "input queue head beyond capacity");
    }
    for (std::size_t p = 0; p < kPortCount; ++p) {
      ts.q_size[p] = r.u16();
      if (ts.q_size[p] > cap_)
        throw ckpt::Error(ckpt::ErrorKind::SchemaMismatch,
                          "input queue occupancy beyond capacity");
      occ += ts.q_size[p];
    }
    for (std::size_t p = 0; p < kPortCount; ++p) {
      ts.rr[p] = r.u8();
      if (ts.rr[p] >= kPortCount)
        throw ckpt::Error(ckpt::ErrorKind::SchemaMismatch,
                          "rotating priority out of range");
    }
    ts.occ = r.u16();
    if (ts.occ != occ)
      throw ckpt::Error(ckpt::ErrorKind::SchemaMismatch,
                        "tile occupancy disagrees with its queues");
  }
  for (std::uint32_t& slot : q_slots_) slot = r.u32();

  r.expect_tag(ckpt::fourcc("LINK"), "LinkState");
  for (LinkState& l : link_) {
    l.head = r.u16();
    l.count = r.u16();
    l.pending = r.u16();
    l.space = r.u16();
    if (l.head >= cap_ || l.count > cap_)
      throw ckpt::Error(ckpt::ErrorKind::SchemaMismatch,
                        "link ring head/count beyond capacity");
  }
  for (LinkTransfer& t : ring_slab_) {
    t.arrival_cycle = r.u64();
    t.pkt = r.u32();
    t.dst_tile = r.u32();
    t.src_tile = r.u32();
    t.dst_port = static_cast<Port>(r.u8());
    t.dir = r.u8();
    t.seq = r.u8();
    t.retransmits = r.u8();
  }

  r.expect_tag(ckpt::fourcc("CNTR"), "mesh counters");
  ctr_.injected->value = r.u64();
  ctr_.ejected->value = r.u64();
  ctr_.dropped_at_fault->value = r.u64();
  ctr_.link_traversals->value = r.u64();
  ctr_.cycles->value = r.u64();
  ctr_.purged_in_dead_router->value = r.u64();
  ctr_.corrupted->value = r.u64();
  ctr_.crc_detected->value = r.u64();
  ctr_.crc_escapes->value = r.u64();
  ctr_.link_retransmits->value = r.u64();
  ctr_.link_error_drops->value = r.u64();
  ctr_.dup_dropped->value = r.u64();
  in_flight_ = static_cast<std::size_t>(r.u64());

  r.expect_tag(ckpt::fourcc("TACT"), "tile activity");
  for (TileActivity& a : tile_activity_) {
    a.injections = r.u64();
    a.traversals = r.u64();
    a.retransmits = r.u64();
  }

  if (r.b() != options_.integrity.enabled)
    throw ckpt::Error(ckpt::ErrorKind::SchemaMismatch,
                      "integrity-state presence flag disagrees");
  if (options_.integrity.enabled) {
    r.expect_tag(ckpt::fourcc("INTG"), "link-integrity state");
    for (Rng& rng : link_rng_) {
      std::array<std::uint64_t, 4> s;
      for (auto& word : s) word = r.u64();
      rng.set_state(s);
    }
    for (auto& a : link_errors_)
      for (auto& v : a) v = r.u64();
    for (auto& a : link_traversals_)
      for (auto& v : a) v = r.u64();
    for (auto& a : tx_seq_)
      for (auto& v : a) v = r.u8();
    for (auto& a : rx_seq_)
      for (auto& v : a) v = r.u8();
    for (auto& a : link_next_free_)
      for (auto& v : a) v = r.u64();
  }

  // Derived tables (tile_faulty_, link_ok_, route9) come from the fault
  // state just restored; apply_fault_state is wrong here — its purge side
  // effects belong to fault *transitions*, not to state restoration.
  rebuild_topology();

  // Cross-field sanity on the fully restored mesh: every occupied queue
  // slot and in-flight ring frame must reference a live pool slot, the
  // rings' occupancy must match in_flight_, and conservation must hold.
  std::size_t live = 0;
  for (std::size_t t = 0; t < n; ++t) {
    for (std::size_t p = 0; p < kPortCount; ++p) {
      for (std::size_t i = 0; i < tiles_[t].q_size[p]; ++i) {
        std::size_t slot = static_cast<std::size_t>(tiles_[t].q_head[p]) + i;
        if (slot >= cap_) slot -= cap_;
        if (q_slots_[qbase(t, p) + slot] >= pool_size)
          throw ckpt::Error(ckpt::ErrorKind::SchemaMismatch,
                            "queued packet index out of pool range");
        ++live;
      }
    }
  }
  for (std::size_t link = 0; link < link_.size(); ++link) {
    for (std::size_t i = 0; i < link_[link].count; ++i) {
      const LinkTransfer& t = ring_at(link, i);
      if (t.pkt >= pool_size || t.dst_tile >= n || t.src_tile >= n ||
          static_cast<std::size_t>(t.dst_port) >= kPortCount || t.dir >= 4)
        throw ckpt::Error(ckpt::ErrorKind::SchemaMismatch,
                          "in-flight link frame references out of range");
      ++live;
    }
  }
  if (live != in_flight_ || !conservation_holds())
    throw ckpt::Error(ckpt::ErrorKind::SchemaMismatch,
                      "restored mesh fails packet conservation");
}

}  // namespace wsp::noc
