#include "wsp/noc/mesh_network.hpp"

#include "wsp/common/error.hpp"
#include "wsp/noc/odd_even.hpp"

namespace wsp::noc {

MeshNetwork::MeshNetwork(const FaultMap& faults, NetworkKind kind,
                         const MeshOptions& options)
    : faults_(faults),
      link_faults_(faults.grid()),
      grid_(faults.grid()),
      kind_(kind),
      options_(options),
      routers_(grid_.tile_count()),
      pending_toward_(grid_.tile_count()) {
  require(options.input_queue_capacity >= 1,
          "input queues need capacity >= 1");
  require(options.link_latency >= 1, "links take at least one cycle");
}

bool MeshNetwork::queue_has_space(std::size_t tile, Port port) const {
  const auto p = static_cast<std::size_t>(port);
  return routers_[tile].in_q[p].size() +
             pending_toward_[tile][p] <
         static_cast<std::size_t>(options_.input_queue_capacity);
}

bool MeshNetwork::can_inject(TileCoord src) const {
  if (!grid_.contains(src) || faults_.is_faulty(src)) return false;
  return queue_has_space(grid_.index_of(src),
                         Port::Local);
}

bool MeshNetwork::inject(const Packet& packet) {
  if (!can_inject(packet.src)) return false;
  const auto tile = grid_.index_of(packet.src);
  Packet p = packet;
  p.network = kind_;
  routers_[tile].in_q[static_cast<std::size_t>(Port::Local)].push_back(p);
  ++stats_.injected;
  ++in_flight_;
  return true;
}

void MeshNetwork::step(std::vector<Packet>& ejected) {
  const std::uint64_t now = stats_.cycles;

  // Phase 1: land in-transit packets due this cycle.  All transfers share
  // the same latency, so the deque stays sorted by arrival cycle.  A
  // packet arriving at a tile that died while it was on the wire is lost.
  while (!in_transit_.empty() && in_transit_.front().arrival_cycle <= now) {
    LinkTransfer& t = in_transit_.front();
    --pending_toward_[t.dst_tile][static_cast<std::size_t>(t.dst_port)];
    if (faults_.is_faulty(grid_.coord_of(t.dst_tile))) {
      ++stats_.dropped_at_fault;
      --in_flight_;
    } else {
      routers_[t.dst_tile]
          .in_q[static_cast<std::size_t>(t.dst_port)]
          .push_back(t.packet);
    }
    in_transit_.pop_front();
  }

  // Phase 2: per-router arbitration.  Each input head wants exactly one
  // output; each output grants at most one input per cycle, rotating
  // priority, subject to downstream credit.
  for (std::size_t tile = 0; tile < routers_.size(); ++tile) {
    const TileCoord here = grid_.coord_of(tile);
    if (faults_.is_faulty(here)) continue;
    RouterState& router = routers_[tile];

    // Desired output per input port (-1: empty input or stalled).
    std::array<int, kPortCount> want{};
    for (std::size_t in = 0; in < kPortCount; ++in) {
      auto& q = router.in_q[in];
      if (q.empty()) {
        want[in] = -1;
        continue;
      }
      const Packet& head = q.front();

      // Candidate outputs in preference order: a single DoR direction, or
      // the odd-even minimal-adaptive choice set.
      RouteChoices cand;
      if (options_.adaptive_odd_even) {
        cand = odd_even_route(head.src, here, head.dst);
      } else {
        const RouteDecision d = next_hop(here, head.dst, kind_);
        cand.eject = d.eject;
        if (!d.eject) cand.dirs[cand.count++] = d.dir;
      }
      if (cand.eject) {
        want[in] = static_cast<int>(Port::Local);
        continue;
      }

      // Pick the first candidate that is healthy and has downstream
      // credit; a healthy-but-full candidate stalls the input for this
      // cycle, a route with no healthy candidate at all drops the packet
      // (the kernel's fault-map discipline exists to prevent this).
      want[in] = -1;
      bool any_healthy = false;
      for (int i = 0; i < cand.count; ++i) {
        const auto n = grid_.neighbor(here, cand.dirs[i]);
        if (!n || faults_.is_faulty(*n) ||
            link_faults_.is_failed(here, cand.dirs[i]))
          continue;
        any_healthy = true;
        if (queue_has_space(grid_.index_of(*n),
                            port_from(opposite(cand.dirs[i])))) {
          want[in] = static_cast<int>(port_from(cand.dirs[i]));
          break;
        }
      }
      if (!any_healthy) {
        q.pop_front();
        ++stats_.dropped_at_fault;
        --in_flight_;
      }
    }

    for (std::size_t out = 0; out < kPortCount; ++out) {
      // Downstream capacity for direction outputs.
      std::size_t dst_tile = 0;
      Port dst_port = Port::Local;
      if (out != static_cast<std::size_t>(Port::Local)) {
        const auto dir = static_cast<Direction>(out);
        const auto n = grid_.neighbor(here, dir);
        if (!n || faults_.is_faulty(*n) || link_faults_.is_failed(here, dir))
          continue;
        dst_tile = grid_.index_of(*n);
        dst_port = port_from(opposite(dir));
        if (!queue_has_space(dst_tile, dst_port)) continue;
      }

      // Rotating-priority arbitration among inputs wanting this output.
      int winner = -1;
      for (std::size_t k = 0; k < kPortCount; ++k) {
        const std::size_t in = (router.rr_ptr[out] + k) % kPortCount;
        if (want[in] == static_cast<int>(out)) {
          winner = static_cast<int>(in);
          break;
        }
      }
      if (winner < 0) continue;
      router.rr_ptr[out] = static_cast<std::uint8_t>((winner + 1) % kPortCount);

      Packet packet = router.in_q[static_cast<std::size_t>(winner)].front();
      router.in_q[static_cast<std::size_t>(winner)].pop_front();

      if (out == static_cast<std::size_t>(Port::Local)) {
        packet.delivered_cycle = now;
        ejected.push_back(packet);
        ++stats_.ejected;
        --in_flight_;
      } else {
        ++pending_toward_[dst_tile][static_cast<std::size_t>(dst_port)];
        ++stats_.link_traversals;
        in_transit_.push_back(LinkTransfer{
            packet, dst_tile, dst_port,
            now + static_cast<std::uint64_t>(options_.link_latency)});
      }
    }
  }

  ++stats_.cycles;
}

void MeshNetwork::apply_fault_state(const FaultMap& faults,
                                    const LinkFaultSet& links) {
  require(faults.grid().width() == grid_.width() &&
              faults.grid().height() == grid_.height(),
          "apply_fault_state: fault map grid mismatch");
  faults_ = faults;
  link_faults_ = links;

  // Packets buffered inside a router that just died are gone: the tile no
  // longer arbitrates, so they would otherwise sit in its queues forever.
  for (std::size_t tile = 0; tile < routers_.size(); ++tile) {
    if (!faults_.is_faulty(grid_.coord_of(tile))) continue;
    for (auto& q : routers_[tile].in_q) {
      stats_.purged_in_dead_router += q.size();
      in_flight_ -= q.size();
      q.clear();
    }
  }
}

std::optional<std::uint64_t> MeshNetwork::corrupt_head_packet(TileCoord tile) {
  if (!grid_.contains(tile)) return std::nullopt;
  RouterState& router = routers_[grid_.index_of(tile)];
  for (auto& q : router.in_q) {
    if (q.empty()) continue;
    const std::uint64_t id = q.front().id;
    q.pop_front();
    --in_flight_;
    ++stats_.corrupted;
    return id;
  }
  return std::nullopt;
}

}  // namespace wsp::noc
