#include "wsp/noc/mesh_network.hpp"

#include <algorithm>
#include <cassert>
#include <string>

#include "wsp/common/error.hpp"
#include "wsp/noc/odd_even.hpp"

namespace wsp::noc {

MeshNetwork::MeshNetwork(const FaultMap& faults, NetworkKind kind,
                         const MeshOptions& options,
                         obs::MetricsRegistry* metrics)
    : faults_(faults),
      link_faults_(faults.grid()),
      grid_(faults.grid()),
      kind_(kind),
      options_(options),
      routers_(grid_.tile_count()),
      pending_toward_(grid_.tile_count()),
      owned_metrics_(metrics ? nullptr : new obs::MetricsRegistry),
      metrics_(metrics ? metrics : owned_metrics_.get()),
      ber_(faults.grid()),
      chan_rng_(options.integrity.seed ^ static_cast<std::uint64_t>(kind)) {
  const std::string prefix =
      kind == NetworkKind::XY ? "noc.xy." : "noc.yx.";
  ctr_.injected = &metrics_->counter(prefix + "injected");
  ctr_.ejected = &metrics_->counter(prefix + "ejected");
  ctr_.dropped_at_fault = &metrics_->counter(prefix + "dropped_at_fault");
  ctr_.link_traversals = &metrics_->counter(prefix + "link_traversals");
  ctr_.cycles = &metrics_->counter(prefix + "cycles");
  ctr_.purged_in_dead_router =
      &metrics_->counter(prefix + "purged_in_dead_router");
  ctr_.corrupted = &metrics_->counter(prefix + "corrupted");
  ctr_.crc_detected = &metrics_->counter(prefix + "crc_detected");
  ctr_.crc_escapes = &metrics_->counter(prefix + "crc_escapes");
  ctr_.link_retransmits = &metrics_->counter(prefix + "link_retransmits");
  ctr_.link_error_drops = &metrics_->counter(prefix + "link_error_drops");
  ctr_.dup_dropped = &metrics_->counter(prefix + "dup_dropped");
  require(options.input_queue_capacity >= 1,
          "input queues need capacity >= 1");
  require(options.link_latency >= 1, "links take at least one cycle");
  require(options.integrity.max_retransmits >= 0,
          "retransmit budget cannot be negative");
  if (options_.integrity.enabled) {
    link_errors_.assign(grid_.tile_count(), {});
    link_traversals_.assign(grid_.tile_count(), {});
    tx_seq_.assign(grid_.tile_count(), {});
    rx_seq_.assign(grid_.tile_count(), {});
    link_next_free_.assign(grid_.tile_count(), {});
  }
}

MeshStats MeshNetwork::stats() const {
  MeshStats s;
  s.injected = ctr_.injected->value;
  s.ejected = ctr_.ejected->value;
  s.dropped_at_fault = ctr_.dropped_at_fault->value;
  s.link_traversals = ctr_.link_traversals->value;
  s.cycles = ctr_.cycles->value;
  s.purged_in_dead_router = ctr_.purged_in_dead_router->value;
  s.corrupted = ctr_.corrupted->value;
  s.crc_detected = ctr_.crc_detected->value;
  s.crc_escapes = ctr_.crc_escapes->value;
  s.link_retransmits = ctr_.link_retransmits->value;
  s.link_error_drops = ctr_.link_error_drops->value;
  s.dup_dropped = ctr_.dup_dropped->value;
  return s;
}

bool MeshNetwork::queue_has_space(std::size_t tile, Port port) const {
  const auto p = static_cast<std::size_t>(port);
  return routers_[tile].in_q[p].size() +
             pending_toward_[tile][p] <
         static_cast<std::size_t>(options_.input_queue_capacity);
}

bool MeshNetwork::can_inject(TileCoord src) const {
  if (!grid_.contains(src) || faults_.is_faulty(src)) return false;
  return queue_has_space(grid_.index_of(src),
                         Port::Local);
}

bool MeshNetwork::inject(const Packet& packet) {
  if (!can_inject(packet.src)) return false;
  const auto tile = grid_.index_of(packet.src);
  Packet p = packet;
  p.network = kind_;
  routers_[tile].in_q[static_cast<std::size_t>(Port::Local)].push_back(p);
  ctr_.injected->add();
  ++in_flight_;
  return true;
}

MeshNetwork::ChannelOutcome MeshNetwork::channel_admit(LinkTransfer t,
                                                       std::uint64_t now) {
  const auto port = static_cast<std::size_t>(t.dst_port);

  if (options_.integrity.enabled) {
    const double p = ber_.packet_error_prob_at(t.src_tile, t.dir);
    if (p > 0.0 && chan_rng_.uniform() < p) {
      // The channel flipped at least one of the 100 wire bits.
      if (chan_rng_.uniform() < kCrcEscapeProbability) {
        // Aliased to a valid codeword: delivered with poisoned payload.
        ctr_.crc_escapes->add();
        t.packet.payload ^= 1;
      } else {
        ctr_.crc_detected->add();
        ++link_errors_[t.src_tile][t.dir];
        if (options_.integrity.retransmit &&
            t.retransmits <
                static_cast<std::uint8_t>(options_.integrity.max_retransmits)) {
          // Go-back-N: the receiving hop NACKs; the sender replays this
          // frame (one NACK flight + one resend flight) and every frame
          // behind it on the same link, preserving per-link order.  The
          // downstream credit stays reserved for the whole retry.
          ctr_.link_retransmits->add();
          ctr_.link_traversals->add();
          ++link_traversals_[t.src_tile][t.dir];
          ++t.retransmits;
          std::uint64_t slot =
              now + 2 * static_cast<std::uint64_t>(options_.link_latency);
          t.arrival_cycle = slot;
          for (auto& f : in_transit_)
            if (f.src_tile == t.src_tile && f.dir == t.dir)
              f.arrival_cycle = ++slot;
          link_next_free_[t.src_tile][t.dir] =
              std::max(link_next_free_[t.src_tile][t.dir], slot + 1);
          in_transit_.push_back(std::move(t));
          std::stable_sort(in_transit_.begin(), in_transit_.end(),
                           [](const LinkTransfer& a, const LinkTransfer& b) {
                             return a.arrival_cycle < b.arrival_cycle;
                           });
          return ChannelOutcome::Retried;
        }
        // Budget exhausted (or retransmission disabled): drop here and let
        // the end-to-end timeout recover.  Both ends skip the lost
        // sequence number as part of the final NACK handshake.
        ctr_.link_error_drops->add();
        rx_seq_[t.dst_tile][port] =
            static_cast<std::uint8_t>((t.seq + 1) & 0xF);
        --pending_toward_[t.dst_tile][port];
        --in_flight_;
        return ChannelOutcome::Dropped;
      }
    }
    // Receiver-side sequence check keeps delivery idempotent: anything but
    // the expected number is a stale replay and is rejected.
    if (t.seq != rx_seq_[t.dst_tile][port]) {
      ctr_.dup_dropped->add();
      --pending_toward_[t.dst_tile][port];
      --in_flight_;
      return ChannelOutcome::Dropped;
    }
    rx_seq_[t.dst_tile][port] = static_cast<std::uint8_t>((t.seq + 1) & 0xF);
  }

  --pending_toward_[t.dst_tile][port];
  routers_[t.dst_tile].in_q[port].push_back(std::move(t.packet));
  return ChannelOutcome::Accept;
}

void MeshNetwork::step(std::vector<Packet>& ejected) {
  const std::uint64_t now = ctr_.cycles->value;

  // Phase 1: land in-transit packets due this cycle.  The deque is kept
  // sorted by arrival cycle (retransmissions re-sort it).  A packet
  // arriving at a tile that died while it was on the wire is lost.
  while (!in_transit_.empty() && in_transit_.front().arrival_cycle <= now) {
    LinkTransfer t = std::move(in_transit_.front());
    in_transit_.pop_front();
    if (faults_.is_faulty(grid_.coord_of(t.dst_tile))) {
      const auto port = static_cast<std::size_t>(t.dst_port);
      if (options_.integrity.enabled)
        rx_seq_[t.dst_tile][port] =
            static_cast<std::uint8_t>((t.seq + 1) & 0xF);
      --pending_toward_[t.dst_tile][port];
      ctr_.dropped_at_fault->add();
      --in_flight_;
      continue;
    }
    channel_admit(std::move(t), now);
  }

  // Phase 2: per-router arbitration.  Each input head wants exactly one
  // output; each output grants at most one input per cycle, rotating
  // priority, subject to downstream credit.
  for (std::size_t tile = 0; tile < routers_.size(); ++tile) {
    const TileCoord here = grid_.coord_of(tile);
    if (faults_.is_faulty(here)) continue;
    RouterState& router = routers_[tile];

    // Desired output per input port (-1: empty input or stalled).
    std::array<int, kPortCount> want{};
    for (std::size_t in = 0; in < kPortCount; ++in) {
      auto& q = router.in_q[in];
      if (q.empty()) {
        want[in] = -1;
        continue;
      }
      const Packet& head = q.front();

      // Candidate outputs in preference order: a single DoR direction, or
      // the odd-even minimal-adaptive choice set.
      RouteChoices cand;
      if (options_.adaptive_odd_even) {
        cand = odd_even_route(head.src, here, head.dst);
      } else {
        const RouteDecision d = next_hop(here, head.dst, kind_);
        cand.eject = d.eject;
        if (!d.eject) cand.dirs[cand.count++] = d.dir;
      }
      if (cand.eject) {
        want[in] = static_cast<int>(Port::Local);
        continue;
      }

      // Pick the first candidate that is healthy and has downstream
      // credit; a healthy-but-full candidate stalls the input for this
      // cycle, a route with no healthy candidate at all drops the packet
      // (the kernel's fault-map discipline exists to prevent this).
      want[in] = -1;
      bool any_healthy = false;
      for (int i = 0; i < cand.count; ++i) {
        const auto n = grid_.neighbor(here, cand.dirs[i]);
        if (!n || faults_.is_faulty(*n) ||
            link_faults_.is_failed(here, cand.dirs[i]))
          continue;
        any_healthy = true;
        if (queue_has_space(grid_.index_of(*n),
                            port_from(opposite(cand.dirs[i])))) {
          want[in] = static_cast<int>(port_from(cand.dirs[i]));
          break;
        }
      }
      if (!any_healthy) {
        q.pop_front();
        ctr_.dropped_at_fault->add();
        --in_flight_;
      }
    }

    for (std::size_t out = 0; out < kPortCount; ++out) {
      // Downstream capacity for direction outputs.
      std::size_t dst_tile = 0;
      Port dst_port = Port::Local;
      if (out != static_cast<std::size_t>(Port::Local)) {
        const auto dir = static_cast<Direction>(out);
        const auto n = grid_.neighbor(here, dir);
        if (!n || faults_.is_faulty(*n) || link_faults_.is_failed(here, dir))
          continue;
        dst_tile = grid_.index_of(*n);
        dst_port = port_from(opposite(dir));
        if (!queue_has_space(dst_tile, dst_port)) continue;
      }

      // Rotating-priority arbitration among inputs wanting this output.
      int winner = -1;
      for (std::size_t k = 0; k < kPortCount; ++k) {
        const std::size_t in = (router.rr_ptr[out] + k) % kPortCount;
        if (want[in] == static_cast<int>(out)) {
          winner = static_cast<int>(in);
          break;
        }
      }
      if (winner < 0) continue;
      router.rr_ptr[out] = static_cast<std::uint8_t>((winner + 1) % kPortCount);

      Packet packet = router.in_q[static_cast<std::size_t>(winner)].front();
      router.in_q[static_cast<std::size_t>(winner)].pop_front();

      if (out == static_cast<std::size_t>(Port::Local)) {
        packet.delivered_cycle = now;
        ejected.push_back(packet);
        ctr_.ejected->add();
        --in_flight_;
      } else {
        ++pending_toward_[dst_tile][static_cast<std::size_t>(dst_port)];
        ctr_.link_traversals->add();
        LinkTransfer t{
            packet, dst_tile, dst_port,
            now + static_cast<std::uint64_t>(options_.link_latency)};
        if (options_.integrity.enabled) {
          t.src_tile = tile;
          t.dir = static_cast<std::uint8_t>(out);
          t.seq = tx_seq_[tile][out];
          tx_seq_[tile][out] =
              static_cast<std::uint8_t>((tx_seq_[tile][out] + 1) & 0xF);
          ++link_traversals_[tile][out];
          // The per-link watermark keeps frames granted after a
          // retransmission from overtaking the replayed window.
          t.arrival_cycle =
              std::max(t.arrival_cycle, link_next_free_[tile][out]);
          link_next_free_[tile][out] = t.arrival_cycle + 1;
        }
        if (in_transit_.empty() ||
            in_transit_.back().arrival_cycle <= t.arrival_cycle) {
          in_transit_.push_back(std::move(t));
        } else {
          const auto it = std::upper_bound(
              in_transit_.begin(), in_transit_.end(), t.arrival_cycle,
              [](std::uint64_t a, const LinkTransfer& x) {
                return a < x.arrival_cycle;
              });
          in_transit_.insert(it, std::move(t));
        }
      }
    }
  }

  ctr_.cycles->add();
  assert(conservation_holds());
}

void MeshNetwork::apply_fault_state(const FaultMap& faults,
                                    const LinkFaultSet& links) {
  require(faults.grid().width() == grid_.width() &&
              faults.grid().height() == grid_.height(),
          "apply_fault_state: fault map grid mismatch");
  faults_ = faults;
  link_faults_ = links;

  // Packets buffered inside a router that just died are gone: the tile no
  // longer arbitrates, so they would otherwise sit in its queues forever.
  for (std::size_t tile = 0; tile < routers_.size(); ++tile) {
    if (!faults_.is_faulty(grid_.coord_of(tile))) continue;
    for (auto& q : routers_[tile].in_q) {
      ctr_.purged_in_dead_router->add(q.size());
      in_flight_ -= q.size();
      q.clear();
    }
  }
}

std::optional<std::uint64_t> MeshNetwork::corrupt_head_packet(TileCoord tile) {
  if (!grid_.contains(tile)) return std::nullopt;
  RouterState& router = routers_[grid_.index_of(tile)];
  for (auto& q : router.in_q) {
    if (q.empty()) continue;
    const std::uint64_t id = q.front().id;
    q.pop_front();
    --in_flight_;
    ctr_.corrupted->add();
    return id;
  }
  return std::nullopt;
}

void MeshNetwork::set_link_ber(const LinkBerMap& ber) {
  require(ber.grid().width() == grid_.width() &&
              ber.grid().height() == grid_.height(),
          "set_link_ber: BER map grid mismatch");
  ber_ = ber;
}

std::uint64_t MeshNetwork::link_error_count(TileCoord from,
                                            Direction d) const {
  if (link_errors_.empty() || !grid_.contains(from)) return 0;
  return link_errors_[grid_.index_of(from)][static_cast<std::size_t>(d)];
}

std::uint64_t MeshNetwork::link_traversal_count(TileCoord from,
                                                Direction d) const {
  if (link_traversals_.empty() || !grid_.contains(from)) return 0;
  return link_traversals_[grid_.index_of(from)][static_cast<std::size_t>(d)];
}

}  // namespace wsp::noc
