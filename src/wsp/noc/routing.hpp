// Dimension-ordered routing on the waferscale mesh (Sec. VI).
//
// Deadlock freedom comes from dimension order: the X-Y network always
// exhausts horizontal hops before turning, the Y-X network the opposite.
// With both networks, every source/destination pair that is not in the
// same row or column has two tile-disjoint paths (apart from endpoints),
// which is the basis of the fault-tolerance result in Fig. 6.
#pragma once

#include <optional>
#include <vector>

#include "wsp/common/fault_map.hpp"
#include "wsp/common/geometry.hpp"
#include "wsp/noc/packet.hpp"

namespace wsp::noc {

/// Output chosen by a router for a packet: a mesh direction, or local
/// ejection when the packet has arrived.
struct RouteDecision {
  bool eject = false;
  Direction dir = Direction::North;
};

/// The DoR next-hop function evaluated at `current` for a packet headed to
/// `dst` on network `kind`.
RouteDecision next_hop(TileCoord current, TileCoord dst, NetworkKind kind);

/// Complete tile sequence of the DoR path from `src` to `dst` (inclusive
/// of both endpoints).
std::vector<TileCoord> dor_path(TileCoord src, TileCoord dst,
                                NetworkKind kind);

/// True when every tile of the DoR path (endpoints included) is healthy.
bool path_is_healthy(const FaultMap& faults, TileCoord src, TileCoord dst,
                     NetworkKind kind);

/// Healthy-path availability between a pair under the dual-network scheme.
struct PairConnectivity {
  bool xy_ok = false;
  bool yx_ok = false;
  bool connected() const { return xy_ok || yx_ok; }
};
PairConnectivity pair_connectivity(const FaultMap& faults, TileCoord src,
                                   TileCoord dst);

/// Searches for an intermediate tile I such that src->I and I->dst are both
/// connected (on any network): the kernel-software escape hatch of Sec. VI
/// for pairs whose direct paths are all faulty.  Returns the intermediate
/// with the smallest added hop count, or nullopt when none exists.
std::optional<TileCoord> find_intermediate(const FaultMap& faults,
                                           TileCoord src, TileCoord dst);

/// Manhattan hop count between two tiles.
inline int hop_distance(TileCoord a, TileCoord b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

}  // namespace wsp::noc
