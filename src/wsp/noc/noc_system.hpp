// The full waferscale NoC: two DoR networks plus the kernel-software
// routing policy (Sec. VI, Fig. 7).
//
// Protocol rules reproduced from the paper:
//   * Requests and responses travel on complementary networks: a request
//     sent X-Y is answered Y-X, so the pair traverses the same tiles
//     (two-way communication works whenever one non-faulty path exists)
//     and request/response deadlock is impossible.
//   * The kernel consults the post-assembly fault map: if only one of the
//     two paths between a pair is healthy it uses that one; if both are
//     healthy it load-balances pairs across the networks — but *all*
//     packets of one source/destination pair stay on one network so
//     packets arrive in order.
//   * If neither direct path is healthy, the kernel routes via an
//     intermediate tile whose core forwards the packets (two chained
//     transactions), costing extra hops and core cycles.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <queue>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "wsp/obs/metrics.hpp"

#include "wsp/common/fault_map.hpp"
#include "wsp/noc/connectivity.hpp"
#include "wsp/noc/mesh_network.hpp"
#include "wsp/noc/packet.hpp"

namespace wsp::noc {

/// The kernel's per-pair network choice.
struct RoutePlan {
  /// Tile sequence of transaction segments: {src, dst} for a direct route,
  /// {src, mid, dst} when relayed through an intermediate tile.
  std::vector<TileCoord> waypoints;
  /// Network of the *request* on each segment (responses use the
  /// complement).  networks[i] covers waypoints[i] -> waypoints[i+1].
  std::vector<NetworkKind> segment_networks;
  bool reachable = false;
  bool relayed = false;
};

/// Kernel-software network selection from the fault map (Sec. VI).
///
/// Plans are memoised per (src, dst) pair; `rebind()` adopts a new fault
/// state at runtime and invalidates every cached plan, so the next packet
/// of each pair replans with the usual fallback ladder X-Y -> Y-X ->
/// relayed.  When a LinkFaultSet is bound, a path is only used if it also
/// avoids every failed directed link.
class NetworkSelector {
 public:
  explicit NetworkSelector(const FaultMap& faults);
  NetworkSelector(const FaultMap& faults, const LinkFaultSet& links);

  /// Route plan for src -> dst.  Balanced pairs alternate networks via a
  /// deterministic parity hash so both networks are equally utilised while
  /// any one pair always uses a single network (in-order delivery).
  RoutePlan plan(TileCoord src, TileCoord dst) const;

  /// Adopts a new fault state (runtime fault injection) and drops all
  /// cached plans.  The grids must match the original fault map's.
  void rebind(const FaultMap& faults, const LinkFaultSet& links);
  void rebind(const FaultMap& faults) {
    rebind(faults, LinkFaultSet(faults.grid()));
  }

  /// Number of rebinds so far; bumping it is what invalidates the cache.
  std::uint64_t generation() const { return generation_; }

  const ConnectivityAnalyzer& connectivity() const { return analyzer_; }
  const LinkFaultSet& links() const { return links_; }

 private:
  ConnectivityAnalyzer analyzer_;
  LinkFaultSet links_;
  std::uint64_t generation_ = 0;
  mutable std::unordered_map<std::uint64_t, RoutePlan> cache_;

  /// True when the request path a->b on `kind` is healthy tile-wise *and*
  /// crosses no failed link in either travel direction (the response rides
  /// the complementary network back over the same tiles).
  bool segment_clear(TileCoord a, TileCoord b, NetworkKind kind) const;
  RoutePlan compute_plan(TileCoord src, TileCoord dst) const;
};

/// Completed round-trip record.
struct CompletedTransaction {
  std::uint64_t id = 0;
  TileCoord src;
  TileCoord dst;
  PacketType request_type = PacketType::ReadRequest;
  std::uint64_t issue_cycle = 0;
  std::uint64_t complete_cycle = 0;
  bool relayed = false;
  std::uint64_t latency() const { return complete_cycle - issue_cycle; }
};

struct NocOptions {
  MeshOptions mesh{};
  /// Cycles the destination tile takes to produce a response (memory
  /// access through the intra-tile crossbar).
  int service_latency = 4;
  /// Core cycles an intermediate tile spends relaying one packet.
  int relay_latency = 8;
  /// End-to-end round-trip timeout in cycles; 0 disables the timeout/
  /// retry machinery (assembly-time behaviour: a static fault map never
  /// strands a planned transaction).  Enable for runtime fault injection.
  std::uint64_t response_timeout = 0;
  /// Bounded retries after a timeout; each retry replans against the
  /// *current* fault map, so transactions stranded by a runtime fault
  /// recover over the surviving network.
  int max_retries = 3;
  /// First retry waits this many cycles; each further retry doubles it
  /// (exponential backoff, so a congested wafer is not hammered).
  std::uint64_t retry_backoff_base = 32;
};

/// Value snapshot of the system-level counters.  The counters themselves
/// live in an obs::MetricsRegistry (system counters under "noc.", per-mesh
/// counters under "noc.xy." / "noc.yx.", round-trip latencies in the
/// "noc.latency" histogram); this struct is the stable public shape
/// assembled on demand by NocSystem::stats().
struct NocStats {
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t unreachable = 0;  ///< rejected: no plan exists
  std::uint64_t relayed = 0;
  std::uint64_t latency_sum = 0;
  std::uint64_t latency_max = 0;
  // Runtime-resilience accounting (all zero when response_timeout == 0):
  std::uint64_t timeouts = 0;      ///< round trips that missed the deadline
  std::uint64_t retries = 0;       ///< re-issues after a timeout
  std::uint64_t lost = 0;          ///< permanently lost (retries exhausted
                                   ///< or no surviving route on replan)
  std::uint64_t stale_packets = 0; ///< late arrivals of superseded attempts
  std::uint64_t replans = 0;       ///< fault-map changes applied mid-run
  std::uint64_t corrupted = 0;     ///< packets killed by injected corruption
  // Link-integrity accounting (aggregated from both meshes; all zero when
  // NocOptions::mesh.integrity is off):
  std::uint64_t crc_detected = 0;      ///< wire corruptions caught by CRC
  std::uint64_t link_retransmits = 0;  ///< hop-level NACK/retransmit events
  std::uint64_t links_retired = 0;     ///< links predictively retired
  std::uint64_t escapes = 0;           ///< corruptions the CRC aliased on
  double mean_latency() const {
    return completed ? static_cast<double>(latency_sum) / completed : 0.0;
  }
};

/// Dual-network waferscale NoC with request/response semantics.
class NocSystem {
 public:
  /// `metrics`: registry all NoC counters bind into (shared with both
  /// meshes).  When null the system owns a private registry — existing
  /// callers are unaffected.  Must outlive the NocSystem.
  NocSystem(const FaultMap& faults, const NocOptions& options = {},
            obs::MetricsRegistry* metrics = nullptr);

  /// Issues a read/write transaction.  Returns the transaction id, or
  /// nullopt when the kernel has no route (caller sees an unreachable
  /// tile) — also counted in stats().unreachable.
  std::optional<std::uint64_t> issue(TileCoord src, TileCoord dst,
                                     PacketType type,
                                     std::uint64_t payload = 0,
                                     std::uint32_t address = 0);

  /// Advances one cycle; completed transactions are appended to `done`.
  void step(std::vector<CompletedTransaction>& done);

  /// Runs until all in-flight transactions complete or `max_cycles` pass.
  /// Returns true when everything drained.
  bool drain(std::vector<CompletedTransaction>& done,
             std::uint64_t max_cycles = 1'000'000);

  /// Invoked when a request packet reaches its *final* destination tile
  /// (before the response is generated).  Used by higher layers (e.g. the
  /// message-passing runtime in wsp/arch) to observe one-way deliveries.
  using DeliveryListener = std::function<void(const Packet&)>;
  void set_delivery_listener(DeliveryListener listener) {
    delivery_listener_ = std::move(listener);
  }

  std::uint64_t now() const { return cycle_; }
  /// System-level stats.  Corruption and link-integrity counters are owned
  /// by the meshes (the layer that observes the wire) and aggregated here,
  /// so each event is counted exactly once.
  NocStats stats() const;
  /// Registry holding every NoC counter (system + both meshes): the bound
  /// one, or the internally owned fallback.
  obs::MetricsRegistry& metrics() const { return *metrics_; }
  const NetworkSelector& selector() const { return selector_; }
  const MeshNetwork& network(NetworkKind k) const {
    return k == NetworkKind::XY ? xy_ : yx_;
  }
  std::size_t inflight_transactions() const { return live_.size(); }
  bool is_inflight(std::uint64_t id) const { return live_.count(id) != 0; }
  const FaultMap& faults() const { return faults_; }

  /// Adopts a new fault state mid-run (runtime fault injection): replaces
  /// the kernel's fault map, invalidates the selector's cached plans, and
  /// propagates the state to both mesh networks (purging packets stranded
  /// in dead routers).  Transactions stranded by the change recover via
  /// the timeout/retry machinery — enable options.response_timeout.
  void apply_fault_state(const FaultMap& faults, const LinkFaultSet& links);
  void apply_fault_state(const FaultMap& faults) {
    apply_fault_state(faults, links_);
  }

  /// Transient-fault model: corrupts (drops) one buffered packet at
  /// `tile`, preferring the XY network.  Returns true when a packet was
  /// killed; the owning transaction recovers via timeout + retry.
  bool inject_corruption(TileCoord tile);

  /// Stages the per-link BER map both meshes sample (takes effect only
  /// when NocOptions::mesh.integrity.enabled).  Re-call after every PDN
  /// re-solve so supply sag shows up on the wire.
  ///
  /// Defined swap semantics vs in-flight packets: the staged map is
  /// adopted at the *next cycle boundary* (the top of the following
  /// step()), never mid-cycle — so every link samples one coherent map per
  /// cycle regardless of shard/thread interleaving, and an epoch driver
  /// that calls this between steps gets an exact epoch-boundary swap.
  /// Calling it again before the next step simply replaces the staged map
  /// (last writer wins).  The grids must match (throws wsp::Error).
  void set_link_ber(const LinkBerMap& ber);
  /// Map the meshes are currently sampling (the staged map before the next
  /// cycle boundary is NOT yet visible here).
  const LinkBerMap& link_ber() const { return xy_.link_ber(); }

  /// Sums both meshes' cumulative per-tile activity counters into `out`
  /// (assigned, sized to the tile count).  Epoch-coupled drivers diff
  /// successive snapshots to get per-epoch activity.
  void accumulate_tile_activity(std::vector<TileActivity>& out) const;

  /// Predictively retires the directed link leaving `from` toward `d`:
  /// marks it failed in the LinkFaultSet, rebinds the selector (dropping
  /// every cached plan) and propagates to both meshes.  Returns false when
  /// the link leaves the array or is already retired.  Counted in
  /// stats().links_retired and stats().replans.
  bool retire_link(TileCoord from, Direction d);

  /// Detected CRC errors / traversal attempts charged to the directed link
  /// leaving `from`, summed over both meshes (LinkHealthMonitor input).
  std::uint64_t link_error_count(TileCoord from, Direction d) const;
  std::uint64_t link_traversal_count(TileCoord from, Direction d) const;

  /// Packet-conservation invariant of both meshes (see
  /// MeshNetwork::conservation_holds).
  bool packet_conservation_holds() const {
    return xy_.conservation_holds() && yx_.conservation_holds();
  }

  /// Checkpoint hooks (wsp::ckpt).  Captures the full transaction layer —
  /// live transactions, timeout deadlines, deferred and ready injections,
  /// id/sequence allocators, counters and the latency histogram — plus
  /// both meshes via their own hooks, so load + step is bit-identical to
  /// never having stopped.  The delivery listener is NOT captured (it is
  /// an arbitrary std::function); the owner re-attaches it after loading.
  /// load_state targets a system constructed over the same grid and
  /// options; mismatches throw ckpt::Error.
  void save_state(ckpt::Writer& w) const;
  void load_state(ckpt::Reader& r);

  /// Frames save_state into a "NOCS" container and writes it atomically.
  void save_checkpoint(const std::string& path) const;
  /// Loads a "NOCS" container produced by save_checkpoint into this
  /// system.  Throws ckpt::Error on any corruption or mismatch.
  void load_checkpoint(const std::string& path);

 private:
  struct LiveTransaction {
    RoutePlan plan;
    PacketType type;
    std::uint64_t payload;
    std::uint32_t address;
    std::uint64_t issue_cycle = 0;
    /// Current segment index; requests walk 0..n-1 forward, responses walk
    /// back.  `returning` flips at the final destination.
    std::size_t segment = 0;
    bool returning = false;
    std::uint32_t attempts = 0;  ///< retry generation currently in flight
  };
  struct Deadline {
    std::uint64_t due_cycle;
    std::uint64_t id;
    std::uint32_t attempt;  ///< stale when != live attempt (lazy deletion)
    friend bool operator>(const Deadline& a, const Deadline& b) {
      return std::tie(a.due_cycle, a.id) > std::tie(b.due_cycle, b.id);
    }
  };
  struct PendingInjection {
    std::uint64_t due_cycle;
    std::uint64_t seq;  ///< insertion order: makes heap order deterministic
    Packet packet;
    friend bool operator>(const PendingInjection& a,
                          const PendingInjection& b) {
      return std::tie(a.due_cycle, a.seq) > std::tie(b.due_cycle, b.seq);
    }
  };

  /// Registry-backed system counters resolved once at construction (the
  /// meshes bind their own under "noc.xy." / "noc.yx.").
  struct Counters {
    obs::Counter* issued = nullptr;
    obs::Counter* completed = nullptr;
    obs::Counter* unreachable = nullptr;
    obs::Counter* relayed = nullptr;
    obs::Counter* timeouts = nullptr;
    obs::Counter* retries = nullptr;
    obs::Counter* lost = nullptr;
    obs::Counter* stale_packets = nullptr;
    obs::Counter* replans = nullptr;
    obs::Counter* links_retired = nullptr;
    obs::Histogram* latency = nullptr;  ///< round-trip cycles per completion
  };

  FaultMap faults_;
  LinkFaultSet links_;
  NocOptions options_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  Counters ctr_;
  NetworkSelector selector_;
  MeshNetwork xy_;
  MeshNetwork yx_;
  std::uint64_t cycle_ = 0;
  std::uint64_t next_id_ = 1;
  std::unordered_map<std::uint64_t, LiveTransaction> live_;
  std::priority_queue<Deadline, std::vector<Deadline>, std::greater<>>
      deadlines_;  ///< min-heap; entries are lazily invalidated by retries
  std::priority_queue<PendingInjection, std::vector<PendingInjection>,
                      std::greater<>> pending_;  ///< min-heap by due cycle
  std::uint64_t pending_seq_ = 0;
  /// Packets due for injection, queued per (network, source tile) so a
  /// full local FIFO only stalls its own tile's queue head instead of
  /// forcing a whole-heap retry every cycle.  std::map keeps the per-cycle
  /// service order deterministic.
  std::array<std::map<std::size_t, std::deque<Packet>>, 2> ready_;
  std::size_t ready_count_ = 0;
  DeliveryListener delivery_listener_;
  /// Per-cycle ejection buffer, cleared (never shrunk) each step so the
  /// steady-state hot loop allocates nothing.
  std::vector<Packet> eject_scratch_;
  /// BER map staged by set_link_ber, adopted by both meshes at the top of
  /// the next step() (cycle-boundary swap; see set_link_ber).
  std::optional<LinkBerMap> staged_ber_;

  MeshNetwork& net(NetworkKind k) { return k == NetworkKind::XY ? xy_ : yx_; }
  std::size_t grid_index_of(TileCoord c) const {
    return faults_.grid().index_of(c);
  }
  void schedule(std::uint64_t due, const Packet& p);
  void handle_ejection(const Packet& p,
                       std::vector<CompletedTransaction>& done);
  void arm_deadline(std::uint64_t id, const LiveTransaction& txn,
                    std::uint64_t from_cycle);
  void process_timeouts();
  void lose_transaction(std::uint64_t id);
  static PacketType response_type(PacketType request) {
    return request == PacketType::ReadRequest ? PacketType::ReadResponse
                                              : PacketType::WriteAck;
  }
};

}  // namespace wsp::noc
