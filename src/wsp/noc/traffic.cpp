#include "wsp/noc/traffic.hpp"

#include <algorithm>

namespace wsp::noc {

const char* to_string(TrafficPattern p) {
  switch (p) {
    case TrafficPattern::UniformRandom: return "uniform-random";
    case TrafficPattern::Transpose: return "transpose";
    case TrafficPattern::BitComplement: return "bit-complement";
    case TrafficPattern::Hotspot: return "hotspot";
    case TrafficPattern::NearNeighbor: return "near-neighbor";
  }
  return "?";
}

TileCoord pick_destination(const FaultMap& faults, TileCoord src,
                           const TrafficConfig& config, Rng& rng) {
  const TileGrid& grid = faults.grid();
  switch (config.pattern) {
    case TrafficPattern::UniformRandom: {
      for (int attempt = 0; attempt < 64; ++attempt) {
        const TileCoord d = grid.coord_of(rng.below(grid.tile_count()));
        if (faults.is_healthy(d) && !(d == src)) return d;
      }
      return src;
    }
    case TrafficPattern::Transpose: {
      TileCoord d{src.y % grid.width(), src.x % grid.height()};
      return d;
    }
    case TrafficPattern::BitComplement:
      return {grid.width() - 1 - src.x, grid.height() - 1 - src.y};
    case TrafficPattern::Hotspot: {
      if (rng.uniform() < config.hotspot_fraction) return config.hotspot;
      TrafficConfig uniform = config;
      uniform.pattern = TrafficPattern::UniformRandom;
      return pick_destination(faults, src, uniform, rng);
    }
    case TrafficPattern::NearNeighbor: {
      for (int attempt = 0; attempt < 64; ++attempt) {
        const int dx = static_cast<int>(rng.below(5)) - 2;
        const int dy = static_cast<int>(rng.below(5)) - 2;
        const TileCoord d{src.x + dx, src.y + dy};
        if (grid.contains(d) && faults.is_healthy(d) && !(d == src)) return d;
      }
      return src;
    }
  }
  return src;
}

TrafficReport run_traffic(NocSystem& noc, const TrafficConfig& config,
                          std::uint64_t cycles, Rng& rng) {
  const FaultMap& faults = noc.selector().connectivity().faults();
  const std::vector<TileCoord> healthy = faults.healthy_tiles();

  const NocStats before = noc.stats();
  const std::uint64_t start = noc.now();
  std::vector<CompletedTransaction> done;

  for (std::uint64_t c = 0; c < cycles; ++c) {
    for (const TileCoord src : healthy) {
      if (!rng.bernoulli(config.injection_rate)) continue;
      const TileCoord dst = pick_destination(faults, src, config, rng);
      if (dst == src) continue;
      (void)noc.issue(src, dst,
                      rng.bernoulli(0.5) ? PacketType::ReadRequest
                                         : PacketType::WriteRequest,
                      rng(), static_cast<std::uint32_t>(rng()));
    }
    noc.step(done);
  }
  noc.drain(done);

  const NocStats after = noc.stats();
  TrafficReport report;
  report.cycles = cycles;
  report.issued = after.issued - before.issued;
  report.completed = after.completed - before.completed;
  report.unreachable = after.unreachable - before.unreachable;
  report.offered_load =
      cycles ? static_cast<double>(report.issued) / cycles : 0.0;
  report.throughput =
      cycles ? static_cast<double>(report.completed) / cycles : 0.0;

  std::uint64_t lat_sum = 0;
  std::vector<std::uint64_t> latencies;
  latencies.reserve(done.size());
  for (const auto& t : done) {
    if (t.issue_cycle < start) continue;
    lat_sum += t.latency();
    latencies.push_back(t.latency());
    report.max_latency = std::max(report.max_latency, t.latency());
  }
  report.mean_latency =
      report.completed ? static_cast<double>(lat_sum) / report.completed : 0.0;
  if (!latencies.empty()) {
    auto percentile = [&](double p) {
      const auto k = static_cast<std::size_t>(
          p * static_cast<double>(latencies.size() - 1));
      std::nth_element(latencies.begin(), latencies.begin() + k,
                       latencies.end());
      return latencies[k];
    };
    report.p50_latency = percentile(0.50);
    report.p95_latency = percentile(0.95);
    report.p99_latency = percentile(0.99);
  }
  return report;
}

}  // namespace wsp::noc
