#include "wsp/noc/traffic.hpp"

#include <algorithm>

#include "wsp/obs/metrics.hpp"
#include "wsp/obs/trace.hpp"

namespace wsp::noc {

void finalize_latencies(TrafficReport& report,
                        std::vector<std::uint64_t> latencies) {
  report.latency_samples = latencies.size();
  if (latencies.empty()) {
    // No measured samples: every latency statistic is exactly zero.  The
    // old code skipped the percentile block but still divided the sum by
    // `completed`, which could be non-zero when only pre-window
    // transactions completed — reporting a mean over samples it never saw.
    report.mean_latency = 0.0;
    report.p50_latency = 0;
    report.p95_latency = 0;
    report.p99_latency = 0;
    report.max_latency = 0;
    return;
  }
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  for (const std::uint64_t v : latencies) {
    sum += v;
    max = std::max(max, v);
  }
  // Mean over the measured samples, NOT over `completed`: completions of
  // transactions issued before the window are counted by `completed` but
  // contribute no latency sample, so dividing by `completed` deflated the
  // mean on every warm-started run.
  report.mean_latency =
      static_cast<double>(sum) / static_cast<double>(latencies.size());
  report.max_latency = max;
  // Nearest-rank percentiles.  The old index `floor(p * (n-1))` collapsed
  // small samples (n = 2 reported the MINIMUM as p95/p99) and biased every
  // percentile low by one rank at common sizes.
  report.p50_latency = obs::nearest_rank_percentile(latencies, 0.50);
  report.p95_latency = obs::nearest_rank_percentile(latencies, 0.95);
  report.p99_latency = obs::nearest_rank_percentile(latencies, 0.99);
}

const char* to_string(TrafficPattern p) {
  switch (p) {
    case TrafficPattern::UniformRandom: return "uniform-random";
    case TrafficPattern::Transpose: return "transpose";
    case TrafficPattern::BitComplement: return "bit-complement";
    case TrafficPattern::Hotspot: return "hotspot";
    case TrafficPattern::NearNeighbor: return "near-neighbor";
  }
  return "?";
}

TileCoord pick_destination(const FaultMap& faults, TileCoord src,
                           const TrafficConfig& config, Rng& rng) {
  const TileGrid& grid = faults.grid();
  switch (config.pattern) {
    case TrafficPattern::UniformRandom: {
      for (int attempt = 0; attempt < 64; ++attempt) {
        const TileCoord d = grid.coord_of(rng.below(grid.tile_count()));
        if (faults.is_healthy(d) && !(d == src)) return d;
      }
      return src;
    }
    case TrafficPattern::Transpose: {
      TileCoord d{src.y % grid.width(), src.x % grid.height()};
      return d;
    }
    case TrafficPattern::BitComplement:
      return {grid.width() - 1 - src.x, grid.height() - 1 - src.y};
    case TrafficPattern::Hotspot: {
      if (rng.uniform() < config.hotspot_fraction) return config.hotspot;
      TrafficConfig uniform = config;
      uniform.pattern = TrafficPattern::UniformRandom;
      return pick_destination(faults, src, uniform, rng);
    }
    case TrafficPattern::NearNeighbor: {
      for (int attempt = 0; attempt < 64; ++attempt) {
        const int dx = static_cast<int>(rng.below(5)) - 2;
        const int dy = static_cast<int>(rng.below(5)) - 2;
        const TileCoord d{src.x + dx, src.y + dy};
        if (grid.contains(d) && faults.is_healthy(d) && !(d == src)) return d;
      }
      return src;
    }
  }
  return src;
}

TrafficReport run_traffic(NocSystem& noc, const TrafficConfig& config,
                          std::uint64_t cycles, Rng& rng) {
  const FaultMap& faults = noc.selector().connectivity().faults();
  const std::vector<TileCoord> healthy = faults.healthy_tiles();

  const NocStats before = noc.stats();
  const std::uint64_t start = noc.now();
  std::vector<CompletedTransaction> done;

  WSP_TRACE_SPAN("noc.traffic.run");
  for (std::uint64_t c = 0; c < cycles; ++c) {
    for (const TileCoord src : healthy) {
      if (!rng.bernoulli(config.injection_rate)) continue;
      const TileCoord dst = pick_destination(faults, src, config, rng);
      if (dst == src) continue;
      (void)noc.issue(src, dst,
                      rng.bernoulli(0.5) ? PacketType::ReadRequest
                                         : PacketType::WriteRequest,
                      rng(), static_cast<std::uint32_t>(rng()));
    }
    noc.step(done);
  }
  noc.drain(done);

  const NocStats after = noc.stats();
  TrafficReport report;
  report.cycles = cycles;
  report.issued = after.issued - before.issued;
  report.completed = after.completed - before.completed;
  report.unreachable = after.unreachable - before.unreachable;
  report.offered_load =
      cycles ? static_cast<double>(report.issued) / cycles : 0.0;
  report.throughput =
      cycles ? static_cast<double>(report.completed) / cycles : 0.0;

  std::vector<std::uint64_t> latencies;
  latencies.reserve(done.size());
  for (const auto& t : done) {
    if (t.issue_cycle < start) continue;
    latencies.push_back(t.latency());
  }
  finalize_latencies(report, std::move(latencies));
  return report;
}

}  // namespace wsp::noc
