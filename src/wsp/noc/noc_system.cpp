#include "wsp/noc/noc_system.hpp"

#include <algorithm>

#include "wsp/ckpt/checkpoint.hpp"
#include "wsp/common/error.hpp"
#include "wsp/exec/thread_pool.hpp"
#include "wsp/noc/routing.hpp"
#include "wsp/obs/trace.hpp"

namespace wsp::noc {

namespace {

/// Direction of the single-step move a -> b (adjacent tiles).
Direction direction_between(TileCoord a, TileCoord b) {
  if (b.x > a.x) return Direction::East;
  if (b.x < a.x) return Direction::West;
  if (b.y > a.y) return Direction::North;
  return Direction::South;
}

}  // namespace

NetworkSelector::NetworkSelector(const FaultMap& faults)
    : analyzer_(faults), links_(faults.grid()) {}

NetworkSelector::NetworkSelector(const FaultMap& faults,
                                 const LinkFaultSet& links)
    : analyzer_(faults), links_(links) {
  require(links.grid().width() == faults.grid().width() &&
              links.grid().height() == faults.grid().height(),
          "link fault set grid mismatch");
}

void NetworkSelector::rebind(const FaultMap& faults,
                             const LinkFaultSet& links) {
  const TileGrid& old = analyzer_.faults().grid();
  require(faults.grid().width() == old.width() &&
              faults.grid().height() == old.height(),
          "rebind: fault map grid mismatch");
  require(links.grid().width() == old.width() &&
              links.grid().height() == old.height(),
          "rebind: link fault set grid mismatch");
  analyzer_ = ConnectivityAnalyzer(faults);
  links_ = links;
  cache_.clear();
  ++generation_;
}

bool NetworkSelector::segment_clear(TileCoord a, TileCoord b,
                                    NetworkKind kind) const {
  const bool tiles_ok = kind == NetworkKind::XY
                            ? analyzer_.xy_connected(a, b)
                            : analyzer_.yx_connected(a, b);
  if (!tiles_ok) return false;
  if (links_.empty()) return true;
  // The request runs a -> b on `kind`; the response runs b -> a on the
  // complement, over the same tiles in reverse.  Both travel directions of
  // every link on the path must therefore be alive.
  const std::vector<TileCoord> path = dor_path(a, b, kind);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const Direction d = direction_between(path[i], path[i + 1]);
    if (links_.is_failed(path[i], d) ||
        links_.is_failed(path[i + 1], opposite(d)))
      return false;
  }
  return true;
}

RoutePlan NetworkSelector::compute_plan(TileCoord src, TileCoord dst) const {
  RoutePlan plan;
  const FaultMap& faults = analyzer_.faults();
  if (!faults.grid().contains(src) || !faults.grid().contains(dst) ||
      faults.is_faulty(src) || faults.is_faulty(dst))
    return plan;

  auto choose = [&](TileCoord a, TileCoord b) -> std::optional<NetworkKind> {
    const bool xy = segment_clear(a, b, NetworkKind::XY);
    const bool yx = segment_clear(a, b, NetworkKind::YX);
    if (xy && yx) {
      // Both paths healthy: balance pairs across the networks with a
      // deterministic parity hash; one pair always maps to one network so
      // its packets stay in order.
      const unsigned h = static_cast<unsigned>(a.x + 3 * a.y + 5 * b.x +
                                               7 * b.y);
      return (h & 1u) ? NetworkKind::YX : NetworkKind::XY;
    }
    if (xy) return NetworkKind::XY;
    if (yx) return NetworkKind::YX;
    return std::nullopt;
  };

  if (const auto direct = choose(src, dst)) {
    plan.waypoints = {src, dst};
    plan.segment_networks = {*direct};
    plan.reachable = true;
    return plan;
  }

  // No direct path on either network: relay through an intermediate tile.
  auto relay_via = [&](TileCoord mid) -> bool {
    if (mid == src || mid == dst) return false;
    const auto first = choose(src, mid);
    const auto second = choose(mid, dst);
    if (!first || !second) return false;
    plan.waypoints = {src, mid, dst};
    plan.segment_networks = {*first, *second};
    plan.reachable = true;
    plan.relayed = true;
    return true;
  };
  if (const auto mid = find_intermediate(faults, src, dst)) {
    if (relay_via(*mid)) return plan;
  }
  // find_intermediate only knows about tile faults; with failed links its
  // candidate may sit on a broken row/column.  Search the remaining
  // intermediates link-aware, in added-hop order (index as tiebreak) so
  // the plan stays deterministic and minimal.
  if (!links_.empty()) {
    const int direct = hop_distance(src, dst);
    std::vector<std::pair<int, std::size_t>> candidates;
    faults.grid().for_each([&](TileCoord c) {
      if (faults.is_faulty(c) || c == src || c == dst) return;
      candidates.emplace_back(hop_distance(src, c) + hop_distance(c, dst) -
                                  direct,
                              faults.grid().index_of(c));
    });
    std::sort(candidates.begin(), candidates.end());
    for (const auto& [added, index] : candidates) {
      (void)added;
      if (relay_via(faults.grid().coord_of(index))) return plan;
    }
  }
  return plan;
}

RoutePlan NetworkSelector::plan(TileCoord src, TileCoord dst) const {
  const TileGrid& grid = analyzer_.faults().grid();
  if (!grid.contains(src) || !grid.contains(dst)) return {};
  const std::uint64_t key =
      (static_cast<std::uint64_t>(grid.index_of(src)) << 32) |
      static_cast<std::uint64_t>(grid.index_of(dst));
  const auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  RoutePlan p = compute_plan(src, dst);
  cache_.emplace(key, p);
  return p;
}

NocSystem::NocSystem(const FaultMap& faults, const NocOptions& options,
                     obs::MetricsRegistry* metrics)
    : faults_(faults),
      links_(faults.grid()),
      options_(options),
      owned_metrics_(metrics ? nullptr : new obs::MetricsRegistry),
      metrics_(metrics ? metrics : owned_metrics_.get()),
      selector_(faults),
      xy_(faults, NetworkKind::XY, options.mesh, metrics_),
      yx_(faults, NetworkKind::YX, options.mesh, metrics_) {
  ctr_.issued = &metrics_->counter("noc.issued");
  ctr_.completed = &metrics_->counter("noc.completed");
  ctr_.unreachable = &metrics_->counter("noc.unreachable");
  ctr_.relayed = &metrics_->counter("noc.relayed");
  ctr_.timeouts = &metrics_->counter("noc.timeouts");
  ctr_.retries = &metrics_->counter("noc.retries");
  ctr_.lost = &metrics_->counter("noc.lost");
  ctr_.stale_packets = &metrics_->counter("noc.stale_packets");
  ctr_.replans = &metrics_->counter("noc.replans");
  ctr_.links_retired = &metrics_->counter("noc.links_retired");
  ctr_.latency = &metrics_->histogram("noc.latency");
  require(options.service_latency >= 1, "service latency must be >= 1");
  require(options.relay_latency >= 1, "relay latency must be >= 1");
  require(options.max_retries >= 0, "max_retries cannot be negative");
  require(options.response_timeout == 0 || options.retry_backoff_base >= 1,
          "retry backoff must be >= 1 cycle");
}

void NocSystem::schedule(std::uint64_t due, const Packet& p) {
  pending_.push(PendingInjection{due, pending_seq_++, p});
}

void NocSystem::arm_deadline(std::uint64_t id, const LiveTransaction& txn,
                             std::uint64_t from_cycle) {
  if (options_.response_timeout == 0) return;
  deadlines_.push(
      Deadline{from_cycle + options_.response_timeout, id, txn.attempts});
}

std::optional<std::uint64_t> NocSystem::issue(TileCoord src, TileCoord dst,
                                              PacketType type,
                                              std::uint64_t payload,
                                              std::uint32_t address) {
  require(is_request(type), "issue() takes a request packet type");
  RoutePlan plan = selector_.plan(src, dst);
  if (!plan.reachable) {
    ctr_.unreachable->add();
    return std::nullopt;
  }

  const std::uint64_t id = next_id_++;
  LiveTransaction txn;
  txn.plan = std::move(plan);
  txn.type = type;
  txn.payload = payload;
  txn.address = address;
  txn.issue_cycle = cycle_;

  Packet p;
  p.src = txn.plan.waypoints[0];
  p.dst = txn.plan.waypoints[1];
  p.type = type;
  p.network = txn.plan.segment_networks[0];
  p.payload = payload;
  p.address = address;
  p.id = id;
  p.request_id = id;
  p.injected_cycle = cycle_;

  if (txn.plan.relayed) ctr_.relayed->add();
  arm_deadline(id, txn, cycle_);
  live_.emplace(id, std::move(txn));
  schedule(cycle_, p);
  ctr_.issued->add();
  return id;
}

void NocSystem::lose_transaction(std::uint64_t id) {
  ctr_.lost->add();
  live_.erase(id);
}

void NocSystem::process_timeouts() {
  if (options_.response_timeout == 0) return;
  while (!deadlines_.empty() && deadlines_.top().due_cycle <= cycle_) {
    const Deadline d = deadlines_.top();
    deadlines_.pop();
    const auto it = live_.find(d.id);
    if (it == live_.end()) continue;           // already completed or lost
    LiveTransaction& txn = it->second;
    if (txn.attempts != d.attempt) continue;   // superseded by a retry

    ctr_.timeouts->add();
    if (static_cast<int>(txn.attempts) >= options_.max_retries) {
      lose_transaction(d.id);
      continue;
    }

    // Replan against the *current* fault map: the route that stranded this
    // transaction may be dead, but the pair may still be reachable via the
    // other network or a relay tile.
    RoutePlan fresh =
        selector_.plan(txn.plan.waypoints.front(), txn.plan.waypoints.back());
    if (!fresh.reachable) {
      lose_transaction(d.id);
      continue;
    }

    ++txn.attempts;
    ctr_.retries->add();
    txn.plan = std::move(fresh);
    txn.segment = 0;
    txn.returning = false;

    Packet p;
    p.src = txn.plan.waypoints[0];
    p.dst = txn.plan.waypoints[1];
    p.type = txn.type;
    p.network = txn.plan.segment_networks[0];
    p.payload = txn.payload;
    p.address = txn.address;
    p.id = d.id;
    p.request_id = d.id;
    p.injected_cycle = cycle_;
    p.attempt = txn.attempts;

    const std::uint64_t backoff = options_.retry_backoff_base
                                  << (txn.attempts - 1);
    schedule(cycle_ + backoff, p);
    arm_deadline(d.id, txn, cycle_ + backoff);
  }
}

void NocSystem::handle_ejection(const Packet& p,
                                std::vector<CompletedTransaction>& done) {
  const auto it = live_.find(p.id);
  if (it == live_.end()) {
    // Transaction already declared lost (or completed via a faster
    // attempt); this packet is a straggler from a superseded send.
    ctr_.stale_packets->add();
    return;
  }
  LiveTransaction& txn = it->second;
  if (p.attempt != txn.attempts) {
    ctr_.stale_packets->add();
    return;
  }
  const auto& wp = txn.plan.waypoints;
  const auto& nets = txn.plan.segment_networks;

  if (!txn.returning) {
    if (txn.segment + 2 == wp.size()) {
      // Reached the final destination: the tile services the request and
      // answers on the complementary network along the same tiles.
      if (delivery_listener_) delivery_listener_(p);
      txn.returning = true;
      Packet resp;
      resp.src = wp[txn.segment + 1];
      resp.dst = wp[txn.segment];
      resp.type = response_type(txn.type);
      resp.network = complementary(nets[txn.segment]);
      resp.payload = txn.payload;
      resp.address = txn.address;
      resp.id = p.id;
      resp.request_id = p.id;
      resp.injected_cycle = cycle_;
      resp.attempt = txn.attempts;
      schedule(cycle_ + static_cast<std::uint64_t>(options_.service_latency),
               resp);
    } else {
      // Relay tile: the core re-injects the request toward the next
      // waypoint after spending relay cycles on it.
      ++txn.segment;
      Packet fwd = p;
      fwd.src = wp[txn.segment];
      fwd.dst = wp[txn.segment + 1];
      fwd.network = nets[txn.segment];
      schedule(cycle_ + static_cast<std::uint64_t>(options_.relay_latency),
               fwd);
    }
    return;
  }

  // Response arriving back at the origin of the current segment.
  if (txn.segment == 0) {
    CompletedTransaction ct;
    ct.id = p.id;
    ct.src = wp.front();
    ct.dst = wp.back();
    ct.request_type = txn.type;
    ct.issue_cycle = txn.issue_cycle;
    ct.complete_cycle = cycle_;
    ct.relayed = txn.plan.relayed;
    done.push_back(ct);
    ctr_.completed->add();
    ctr_.latency->record(ct.latency());
    live_.erase(it);
    return;
  }

  --txn.segment;
  Packet resp = p;
  resp.src = wp[txn.segment + 1];
  resp.dst = wp[txn.segment];
  resp.network = complementary(nets[txn.segment]);
  schedule(cycle_ + static_cast<std::uint64_t>(options_.relay_latency), resp);
}

void NocSystem::step(std::vector<CompletedTransaction>& done) {
  WSP_TRACE_SPAN("noc.step");
  // Cycle-boundary BER swap: a map staged by set_link_ber becomes visible
  // to both meshes here, before any packet moves this cycle — never
  // mid-cycle between shard phases (see the set_link_ber contract).
  if (staged_ber_) {
    xy_.set_link_ber(*staged_ber_);
    yx_.set_link_ber(*staged_ber_);
    staged_ber_.reset();
  }
  // Move everything due into the per-tile ready queues, then drain each
  // tile's queue head-first while its local FIFO accepts packets.  A
  // packet whose source tile died while it waited is dropped here — its
  // transaction recovers (or is declared lost) via the timeout machinery.
  while (!pending_.empty() && pending_.top().due_cycle <= cycle_) {
    const Packet& p = pending_.top().packet;
    if (!faults_.is_faulty(p.src)) {
      ready_[static_cast<std::size_t>(p.network)]
          [grid_index_of(p.src)].push_back(p);
      ++ready_count_;
    }
    pending_.pop();
  }
  for (auto& per_net : ready_) {
    for (auto it = per_net.begin(); it != per_net.end();) {
      std::deque<Packet>& q = it->second;
      while (!q.empty() && net(q.front().network).inject(q.front())) {
        q.pop_front();
        --ready_count_;
      }
      it = q.empty() ? per_net.erase(it) : std::next(it);
    }
  }

  // Step both meshes through the sharded phase protocol with one fused
  // pool dispatch per phase: chunk c covers an XY shard for c < sx and a
  // YX shard otherwise, so every shard of both networks lands (then
  // routes) inside a single barrier.  Commits run serially, XY before YX —
  // the same ejection order the sequential xy_.step(); yx_.step() had.
  const std::size_t sx = static_cast<std::size_t>(xy_.shard_count());
  const std::size_t sy = static_cast<std::size_t>(yx_.shard_count());
  if (sx + sy > 2 && !exec::ThreadPool::on_worker_thread()) {
    exec::ThreadPool& pool = exec::shared_pool();
    pool.run_chunks(sx + sy, [&](std::size_t c) {
      if (c < sx)
        xy_.phase_land(static_cast<int>(c));
      else
        yx_.phase_land(static_cast<int>(c - sx));
    });
    pool.run_chunks(sx + sy, [&](std::size_t c) {
      if (c < sx)
        xy_.phase_route(static_cast<int>(c));
      else
        yx_.phase_route(static_cast<int>(c - sx));
    });
  } else {
    for (std::size_t c = 0; c < sx; ++c)
      xy_.phase_land(static_cast<int>(c));
    for (std::size_t c = 0; c < sy; ++c)
      yx_.phase_land(static_cast<int>(c));
    for (std::size_t c = 0; c < sx; ++c)
      xy_.phase_route(static_cast<int>(c));
    for (std::size_t c = 0; c < sy; ++c)
      yx_.phase_route(static_cast<int>(c));
  }
  eject_scratch_.clear();
  xy_.phase_commit(eject_scratch_);
  yx_.phase_commit(eject_scratch_);
  for (const Packet& p : eject_scratch_) handle_ejection(p, done);
  process_timeouts();
  ++cycle_;
}

bool NocSystem::drain(std::vector<CompletedTransaction>& done,
                      std::uint64_t max_cycles) {
  const std::uint64_t limit = cycle_ + max_cycles;
  while ((!live_.empty() || !pending_.empty() || ready_count_ > 0) &&
         cycle_ < limit)
    step(done);
  return live_.empty() && pending_.empty() && ready_count_ == 0;
}

void NocSystem::apply_fault_state(const FaultMap& faults,
                                  const LinkFaultSet& links) {
  require(faults.grid().width() == faults_.grid().width() &&
              faults.grid().height() == faults_.grid().height(),
          "apply_fault_state: fault map grid mismatch");
  faults_ = faults;
  links_ = links;
  selector_.rebind(faults_, links_);
  xy_.apply_fault_state(faults_, links_);
  yx_.apply_fault_state(faults_, links_);

  // Packets waiting at the injection boundary of a dead tile can never
  // enter the mesh; drop them now so the ready queues keep draining.
  for (auto& per_net : ready_) {
    for (auto it = per_net.begin(); it != per_net.end();) {
      if (faults_.is_faulty(faults_.grid().coord_of(it->first))) {
        ready_count_ -= it->second.size();
        it = per_net.erase(it);
      } else {
        ++it;
      }
    }
  }
  ctr_.replans->add();
}

bool NocSystem::inject_corruption(TileCoord tile) {
  // The mesh owns the `corrupted` counter (it observes the kill); counting
  // here as well would double-book the event in the aggregated stats().
  auto killed = xy_.corrupt_head_packet(tile);
  if (!killed) killed = yx_.corrupt_head_packet(tile);
  return killed.has_value();
}

NocStats NocSystem::stats() const {
  NocStats s;
  s.issued = ctr_.issued->value;
  s.completed = ctr_.completed->value;
  s.unreachable = ctr_.unreachable->value;
  s.relayed = ctr_.relayed->value;
  s.latency_sum = ctr_.latency->sum();
  s.latency_max = ctr_.latency->max();
  s.timeouts = ctr_.timeouts->value;
  s.retries = ctr_.retries->value;
  s.lost = ctr_.lost->value;
  s.stale_packets = ctr_.stale_packets->value;
  s.replans = ctr_.replans->value;
  s.links_retired = ctr_.links_retired->value;
  const MeshStats a = xy_.stats();
  const MeshStats b = yx_.stats();
  s.corrupted = a.corrupted + b.corrupted;
  s.crc_detected = a.crc_detected + b.crc_detected;
  s.link_retransmits = a.link_retransmits + b.link_retransmits;
  s.escapes = a.crc_escapes + b.crc_escapes;
  return s;
}

void NocSystem::set_link_ber(const LinkBerMap& ber) {
  require(ber.grid().width() == faults_.grid().width() &&
              ber.grid().height() == faults_.grid().height(),
          "set_link_ber: BER map grid mismatch");
  staged_ber_ = ber;
}

void NocSystem::accumulate_tile_activity(
    std::vector<TileActivity>& out) const {
  const std::vector<TileActivity>& a = xy_.tile_activity();
  const std::vector<TileActivity>& b = yx_.tile_activity();
  out.assign(a.size(), TileActivity{});
  for (std::size_t t = 0; t < a.size(); ++t) {
    out[t].injections = a[t].injections + b[t].injections;
    out[t].traversals = a[t].traversals + b[t].traversals;
    out[t].retransmits = a[t].retransmits + b[t].retransmits;
  }
}

bool NocSystem::retire_link(TileCoord from, Direction d) {
  if (!faults_.grid().contains(from) || !faults_.grid().neighbor(from, d))
    return false;
  if (links_.is_failed(from, d)) return false;
  links_.set_failed(from, d);
  selector_.rebind(faults_, links_);
  xy_.apply_fault_state(faults_, links_);
  yx_.apply_fault_state(faults_, links_);
  ctr_.links_retired->add();
  ctr_.replans->add();
  return true;
}

std::uint64_t NocSystem::link_error_count(TileCoord from, Direction d) const {
  return xy_.link_error_count(from, d) + yx_.link_error_count(from, d);
}

std::uint64_t NocSystem::link_traversal_count(TileCoord from,
                                              Direction d) const {
  return xy_.link_traversal_count(from, d) + yx_.link_traversal_count(from, d);
}

// --- checkpointing ----------------------------------------------------------

namespace {

constexpr std::uint32_t kNocTag = ckpt::fourcc("NOCS");
// v2: staged (not-yet-adopted) BER map ("SBER" block) — the cycle-boundary
// swap means a snapshot taken between set_link_ber and the next step must
// carry the pending map to resume bit-identically.
constexpr std::uint32_t kNocStateVersion = 2;

void save_coord(ckpt::Writer& w, TileCoord c) {
  w.i32(c.x);
  w.i32(c.y);
}

TileCoord load_coord(ckpt::Reader& r, const TileGrid& grid) {
  TileCoord c;
  c.x = r.i32();
  c.y = r.i32();
  if (!grid.contains(c))
    throw ckpt::Error(ckpt::ErrorKind::SchemaMismatch,
                      "tile coordinate outside the grid");
  return c;
}

void save_full_packet(ckpt::Writer& w, const Packet& p) {
  w.i32(p.src.x);
  w.i32(p.src.y);
  w.i32(p.dst.x);
  w.i32(p.dst.y);
  w.u8(static_cast<std::uint8_t>(p.type));
  w.u8(static_cast<std::uint8_t>(p.network));
  w.u64(p.payload);
  w.u32(p.address);
  w.u64(p.id);
  w.u64(p.request_id);
  w.u64(p.injected_cycle);
  w.u64(p.delivered_cycle);
  w.u32(p.attempt);
}

Packet load_full_packet(ckpt::Reader& r) {
  Packet p;
  p.src.x = r.i32();
  p.src.y = r.i32();
  p.dst.x = r.i32();
  p.dst.y = r.i32();
  const std::uint8_t type = r.u8();
  const std::uint8_t network = r.u8();
  if (type > static_cast<std::uint8_t>(PacketType::WriteAck) || network > 1)
    throw ckpt::Error(ckpt::ErrorKind::SchemaMismatch,
                      "packet type/network enum out of range");
  p.type = static_cast<PacketType>(type);
  p.network = static_cast<NetworkKind>(network);
  p.payload = r.u64();
  p.address = r.u32();
  p.id = r.u64();
  p.request_id = r.u64();
  p.injected_cycle = r.u64();
  p.delivered_cycle = r.u64();
  p.attempt = r.u32();
  return p;
}

}  // namespace

void NocSystem::save_state(ckpt::Writer& w) const {
  w.tag(kNocTag);
  w.u32(kNocStateVersion);
  w.i32(faults_.grid().width());
  w.i32(faults_.grid().height());
  w.i32(options_.service_latency);
  w.i32(options_.relay_latency);
  w.u64(options_.response_timeout);
  w.i32(options_.max_retries);
  w.u64(options_.retry_backoff_base);

  ckpt::save_fault_map(w, faults_);
  ckpt::save_link_faults(w, links_);

  w.u64(cycle_);
  w.u64(next_id_);
  w.u64(pending_seq_);

  // Live transactions, sorted by id so the byte stream is independent of
  // unordered_map iteration order.
  std::vector<std::uint64_t> ids;
  ids.reserve(live_.size());
  for (const auto& [id, txn] : live_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  w.tag(ckpt::fourcc("LIVE"));
  w.u64(ids.size());
  for (std::uint64_t id : ids) {
    const LiveTransaction& txn = live_.at(id);
    w.u64(id);
    w.u64(txn.plan.waypoints.size());
    for (TileCoord c : txn.plan.waypoints) save_coord(w, c);
    w.u64(txn.plan.segment_networks.size());
    for (NetworkKind k : txn.plan.segment_networks)
      w.u8(static_cast<std::uint8_t>(k));
    w.b(txn.plan.reachable);
    w.b(txn.plan.relayed);
    w.u8(static_cast<std::uint8_t>(txn.type));
    w.u64(txn.payload);
    w.u32(txn.address);
    w.u64(txn.issue_cycle);
    w.u64(txn.segment);
    w.b(txn.returning);
    w.u32(txn.attempts);
  }

  // Both priority queues drain (off a copy) in comparator order, which is
  // a total order here — Deadline keys (due_cycle, id) and
  // PendingInjection keys (due_cycle, seq) are unique — so the serialised
  // order, and the observable pop order after a re-push on load, are
  // independent of the heap's internal layout.
  w.tag(ckpt::fourcc("DDLN"));
  {
    auto copy = deadlines_;
    w.u64(copy.size());
    while (!copy.empty()) {
      const Deadline& d = copy.top();
      w.u64(d.due_cycle);
      w.u64(d.id);
      w.u32(d.attempt);
      copy.pop();
    }
  }
  w.tag(ckpt::fourcc("PEND"));
  {
    auto copy = pending_;
    w.u64(copy.size());
    while (!copy.empty()) {
      const PendingInjection& p = copy.top();
      w.u64(p.due_cycle);
      w.u64(p.seq);
      save_full_packet(w, p.packet);
      copy.pop();
    }
  }

  w.tag(ckpt::fourcc("REDY"));
  for (const auto& per_net : ready_) {
    w.u64(per_net.size());
    for (const auto& [tile, q] : per_net) {
      w.u64(tile);
      w.u64(q.size());
      for (const Packet& p : q) save_full_packet(w, p);
    }
  }

  w.tag(ckpt::fourcc("CNTR"));
  w.u64(ctr_.issued->value);
  w.u64(ctr_.completed->value);
  w.u64(ctr_.unreachable->value);
  w.u64(ctr_.relayed->value);
  w.u64(ctr_.timeouts->value);
  w.u64(ctr_.retries->value);
  w.u64(ctr_.lost->value);
  w.u64(ctr_.stale_packets->value);
  w.u64(ctr_.replans->value);
  w.u64(ctr_.links_retired->value);
  ctr_.latency->save_state(w);

  w.tag(ckpt::fourcc("SBER"));
  w.b(staged_ber_.has_value());
  if (staged_ber_) {
    faults_.grid().for_each([&](TileCoord c) {
      for (int d = 0; d < 4; ++d)
        w.f64(staged_ber_->ber(c, static_cast<Direction>(d)));
    });
  }

  xy_.save_state(w);
  yx_.save_state(w);
}

void NocSystem::load_state(ckpt::Reader& r) {
  r.expect_tag(kNocTag, "NocSystem");
  const std::uint32_t version = r.u32();
  if (version != kNocStateVersion)
    throw ckpt::Error(ckpt::ErrorKind::VersionMismatch,
                      "NocSystem state version " + std::to_string(version));
  const TileGrid& grid = faults_.grid();
  const int gw = r.i32();
  const int gh = r.i32();
  if (gw != grid.width() || gh != grid.height())
    throw ckpt::Error(ckpt::ErrorKind::TopologyMismatch,
                      "NoC snapshot grid " + std::to_string(gw) + "x" +
                          std::to_string(gh) + " vs live " +
                          std::to_string(grid.width()) + "x" +
                          std::to_string(grid.height()));
  const bool options_match = r.i32() == options_.service_latency &&
                             r.i32() == options_.relay_latency &&
                             r.u64() == options_.response_timeout &&
                             r.i32() == options_.max_retries &&
                             r.u64() == options_.retry_backoff_base;
  if (!options_match)
    throw ckpt::Error(ckpt::ErrorKind::SchemaMismatch,
                      "NoC options differ from the snapshot");

  faults_ = ckpt::load_fault_map(r, &grid);
  links_ = ckpt::load_link_faults(r, &grid);

  cycle_ = r.u64();
  next_id_ = r.u64();
  pending_seq_ = r.u64();

  r.expect_tag(ckpt::fourcc("LIVE"), "live transactions");
  live_.clear();
  const std::size_t live_count = r.length(8);
  for (std::size_t i = 0; i < live_count; ++i) {
    const std::uint64_t id = r.u64();
    LiveTransaction txn;
    const std::size_t nwp = r.length(8);
    txn.plan.waypoints.reserve(nwp);
    for (std::size_t k = 0; k < nwp; ++k)
      txn.plan.waypoints.push_back(load_coord(r, grid));
    const std::size_t nseg = r.length(1);
    if (nwp < 2 || nseg + 1 != nwp)
      throw ckpt::Error(ckpt::ErrorKind::SchemaMismatch,
                        "route plan waypoint/segment shape is invalid");
    txn.plan.segment_networks.reserve(nseg);
    for (std::size_t k = 0; k < nseg; ++k) {
      const std::uint8_t net = r.u8();
      if (net > 1)
        throw ckpt::Error(ckpt::ErrorKind::SchemaMismatch,
                          "segment network enum out of range");
      txn.plan.segment_networks.push_back(static_cast<NetworkKind>(net));
    }
    txn.plan.reachable = r.b();
    txn.plan.relayed = r.b();
    const std::uint8_t type = r.u8();
    if (type > static_cast<std::uint8_t>(PacketType::WriteAck))
      throw ckpt::Error(ckpt::ErrorKind::SchemaMismatch,
                        "transaction type enum out of range");
    txn.type = static_cast<PacketType>(type);
    txn.payload = r.u64();
    txn.address = r.u32();
    txn.issue_cycle = r.u64();
    txn.segment = static_cast<std::size_t>(r.u64());
    txn.returning = r.b();
    txn.attempts = r.u32();
    if (txn.segment + 1 >= nwp)
      throw ckpt::Error(ckpt::ErrorKind::SchemaMismatch,
                        "transaction segment index out of range");
    if (!live_.emplace(id, std::move(txn)).second)
      throw ckpt::Error(ckpt::ErrorKind::SchemaMismatch,
                        "duplicate live transaction id");
  }

  r.expect_tag(ckpt::fourcc("DDLN"), "deadlines");
  deadlines_ = {};
  const std::size_t ndl = r.length(20);
  for (std::size_t i = 0; i < ndl; ++i) {
    Deadline d;
    d.due_cycle = r.u64();
    d.id = r.u64();
    d.attempt = r.u32();
    deadlines_.push(d);
  }

  r.expect_tag(ckpt::fourcc("PEND"), "pending injections");
  pending_ = {};
  const std::size_t npend = r.length(16);
  for (std::size_t i = 0; i < npend; ++i) {
    PendingInjection p;
    p.due_cycle = r.u64();
    p.seq = r.u64();
    p.packet = load_full_packet(r);
    pending_.push(p);
  }

  r.expect_tag(ckpt::fourcc("REDY"), "ready queues");
  ready_count_ = 0;
  for (auto& per_net : ready_) {
    per_net.clear();
    const std::size_t ntiles = r.length(16);
    for (std::size_t i = 0; i < ntiles; ++i) {
      const std::size_t tile = static_cast<std::size_t>(r.u64());
      if (tile >= grid.tile_count())
        throw ckpt::Error(ckpt::ErrorKind::SchemaMismatch,
                          "ready-queue tile index out of range");
      const std::size_t nq = r.length(66);
      std::deque<Packet>& q = per_net[tile];
      for (std::size_t k = 0; k < nq; ++k) q.push_back(load_full_packet(r));
      ready_count_ += nq;
    }
  }

  r.expect_tag(ckpt::fourcc("CNTR"), "NoC counters");
  ctr_.issued->value = r.u64();
  ctr_.completed->value = r.u64();
  ctr_.unreachable->value = r.u64();
  ctr_.relayed->value = r.u64();
  ctr_.timeouts->value = r.u64();
  ctr_.retries->value = r.u64();
  ctr_.lost->value = r.u64();
  ctr_.stale_packets->value = r.u64();
  ctr_.replans->value = r.u64();
  ctr_.links_retired->value = r.u64();
  ctr_.latency->load_state(r);

  r.expect_tag(ckpt::fourcc("SBER"), "staged BER map");
  if (r.b()) {
    LinkBerMap staged(grid);
    grid.for_each([&](TileCoord c) {
      for (int d = 0; d < 4; ++d) {
        const double v = r.f64();
        if (v != 0.0) staged.set_ber(c, static_cast<Direction>(d), v);
      }
    });
    staged_ber_ = std::move(staged);
  } else {
    staged_ber_.reset();
  }

  xy_.load_state(r);
  yx_.load_state(r);

  // The selector's plan cache memoises a pure function of the fault state;
  // rebinding rebuilds connectivity from the restored maps and drops the
  // cache, which replans identically on demand.
  selector_.rebind(faults_, links_);
  eject_scratch_.clear();
}

void NocSystem::save_checkpoint(const std::string& path) const {
  ckpt::Writer w;
  save_state(w);
  ckpt::save_frame_file(path, kNocTag, kNocStateVersion, w);
}

void NocSystem::load_checkpoint(const std::string& path) {
  const ckpt::Frame frame = ckpt::load_frame_file(path, kNocTag);
  ckpt::Reader r(frame.payload);
  load_state(r);
  if (!r.done())
    throw ckpt::Error(ckpt::ErrorKind::SchemaMismatch,
                      "trailing bytes after NoC state");
}

}  // namespace wsp::noc
