#include "wsp/noc/noc_system.hpp"

#include <algorithm>

#include "wsp/common/error.hpp"
#include "wsp/exec/thread_pool.hpp"
#include "wsp/noc/routing.hpp"
#include "wsp/obs/trace.hpp"

namespace wsp::noc {

namespace {

/// Direction of the single-step move a -> b (adjacent tiles).
Direction direction_between(TileCoord a, TileCoord b) {
  if (b.x > a.x) return Direction::East;
  if (b.x < a.x) return Direction::West;
  if (b.y > a.y) return Direction::North;
  return Direction::South;
}

}  // namespace

NetworkSelector::NetworkSelector(const FaultMap& faults)
    : analyzer_(faults), links_(faults.grid()) {}

NetworkSelector::NetworkSelector(const FaultMap& faults,
                                 const LinkFaultSet& links)
    : analyzer_(faults), links_(links) {
  require(links.grid().width() == faults.grid().width() &&
              links.grid().height() == faults.grid().height(),
          "link fault set grid mismatch");
}

void NetworkSelector::rebind(const FaultMap& faults,
                             const LinkFaultSet& links) {
  const TileGrid& old = analyzer_.faults().grid();
  require(faults.grid().width() == old.width() &&
              faults.grid().height() == old.height(),
          "rebind: fault map grid mismatch");
  require(links.grid().width() == old.width() &&
              links.grid().height() == old.height(),
          "rebind: link fault set grid mismatch");
  analyzer_ = ConnectivityAnalyzer(faults);
  links_ = links;
  cache_.clear();
  ++generation_;
}

bool NetworkSelector::segment_clear(TileCoord a, TileCoord b,
                                    NetworkKind kind) const {
  const bool tiles_ok = kind == NetworkKind::XY
                            ? analyzer_.xy_connected(a, b)
                            : analyzer_.yx_connected(a, b);
  if (!tiles_ok) return false;
  if (links_.empty()) return true;
  // The request runs a -> b on `kind`; the response runs b -> a on the
  // complement, over the same tiles in reverse.  Both travel directions of
  // every link on the path must therefore be alive.
  const std::vector<TileCoord> path = dor_path(a, b, kind);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const Direction d = direction_between(path[i], path[i + 1]);
    if (links_.is_failed(path[i], d) ||
        links_.is_failed(path[i + 1], opposite(d)))
      return false;
  }
  return true;
}

RoutePlan NetworkSelector::compute_plan(TileCoord src, TileCoord dst) const {
  RoutePlan plan;
  const FaultMap& faults = analyzer_.faults();
  if (!faults.grid().contains(src) || !faults.grid().contains(dst) ||
      faults.is_faulty(src) || faults.is_faulty(dst))
    return plan;

  auto choose = [&](TileCoord a, TileCoord b) -> std::optional<NetworkKind> {
    const bool xy = segment_clear(a, b, NetworkKind::XY);
    const bool yx = segment_clear(a, b, NetworkKind::YX);
    if (xy && yx) {
      // Both paths healthy: balance pairs across the networks with a
      // deterministic parity hash; one pair always maps to one network so
      // its packets stay in order.
      const unsigned h = static_cast<unsigned>(a.x + 3 * a.y + 5 * b.x +
                                               7 * b.y);
      return (h & 1u) ? NetworkKind::YX : NetworkKind::XY;
    }
    if (xy) return NetworkKind::XY;
    if (yx) return NetworkKind::YX;
    return std::nullopt;
  };

  if (const auto direct = choose(src, dst)) {
    plan.waypoints = {src, dst};
    plan.segment_networks = {*direct};
    plan.reachable = true;
    return plan;
  }

  // No direct path on either network: relay through an intermediate tile.
  auto relay_via = [&](TileCoord mid) -> bool {
    if (mid == src || mid == dst) return false;
    const auto first = choose(src, mid);
    const auto second = choose(mid, dst);
    if (!first || !second) return false;
    plan.waypoints = {src, mid, dst};
    plan.segment_networks = {*first, *second};
    plan.reachable = true;
    plan.relayed = true;
    return true;
  };
  if (const auto mid = find_intermediate(faults, src, dst)) {
    if (relay_via(*mid)) return plan;
  }
  // find_intermediate only knows about tile faults; with failed links its
  // candidate may sit on a broken row/column.  Search the remaining
  // intermediates link-aware, in added-hop order (index as tiebreak) so
  // the plan stays deterministic and minimal.
  if (!links_.empty()) {
    const int direct = hop_distance(src, dst);
    std::vector<std::pair<int, std::size_t>> candidates;
    faults.grid().for_each([&](TileCoord c) {
      if (faults.is_faulty(c) || c == src || c == dst) return;
      candidates.emplace_back(hop_distance(src, c) + hop_distance(c, dst) -
                                  direct,
                              faults.grid().index_of(c));
    });
    std::sort(candidates.begin(), candidates.end());
    for (const auto& [added, index] : candidates) {
      (void)added;
      if (relay_via(faults.grid().coord_of(index))) return plan;
    }
  }
  return plan;
}

RoutePlan NetworkSelector::plan(TileCoord src, TileCoord dst) const {
  const TileGrid& grid = analyzer_.faults().grid();
  if (!grid.contains(src) || !grid.contains(dst)) return {};
  const std::uint64_t key =
      (static_cast<std::uint64_t>(grid.index_of(src)) << 32) |
      static_cast<std::uint64_t>(grid.index_of(dst));
  const auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  RoutePlan p = compute_plan(src, dst);
  cache_.emplace(key, p);
  return p;
}

NocSystem::NocSystem(const FaultMap& faults, const NocOptions& options,
                     obs::MetricsRegistry* metrics)
    : faults_(faults),
      links_(faults.grid()),
      options_(options),
      owned_metrics_(metrics ? nullptr : new obs::MetricsRegistry),
      metrics_(metrics ? metrics : owned_metrics_.get()),
      selector_(faults),
      xy_(faults, NetworkKind::XY, options.mesh, metrics_),
      yx_(faults, NetworkKind::YX, options.mesh, metrics_) {
  ctr_.issued = &metrics_->counter("noc.issued");
  ctr_.completed = &metrics_->counter("noc.completed");
  ctr_.unreachable = &metrics_->counter("noc.unreachable");
  ctr_.relayed = &metrics_->counter("noc.relayed");
  ctr_.timeouts = &metrics_->counter("noc.timeouts");
  ctr_.retries = &metrics_->counter("noc.retries");
  ctr_.lost = &metrics_->counter("noc.lost");
  ctr_.stale_packets = &metrics_->counter("noc.stale_packets");
  ctr_.replans = &metrics_->counter("noc.replans");
  ctr_.links_retired = &metrics_->counter("noc.links_retired");
  ctr_.latency = &metrics_->histogram("noc.latency");
  require(options.service_latency >= 1, "service latency must be >= 1");
  require(options.relay_latency >= 1, "relay latency must be >= 1");
  require(options.max_retries >= 0, "max_retries cannot be negative");
  require(options.response_timeout == 0 || options.retry_backoff_base >= 1,
          "retry backoff must be >= 1 cycle");
}

void NocSystem::schedule(std::uint64_t due, const Packet& p) {
  pending_.push(PendingInjection{due, pending_seq_++, p});
}

void NocSystem::arm_deadline(std::uint64_t id, const LiveTransaction& txn,
                             std::uint64_t from_cycle) {
  if (options_.response_timeout == 0) return;
  deadlines_.push(
      Deadline{from_cycle + options_.response_timeout, id, txn.attempts});
}

std::optional<std::uint64_t> NocSystem::issue(TileCoord src, TileCoord dst,
                                              PacketType type,
                                              std::uint64_t payload,
                                              std::uint32_t address) {
  require(is_request(type), "issue() takes a request packet type");
  RoutePlan plan = selector_.plan(src, dst);
  if (!plan.reachable) {
    ctr_.unreachable->add();
    return std::nullopt;
  }

  const std::uint64_t id = next_id_++;
  LiveTransaction txn;
  txn.plan = std::move(plan);
  txn.type = type;
  txn.payload = payload;
  txn.address = address;
  txn.issue_cycle = cycle_;

  Packet p;
  p.src = txn.plan.waypoints[0];
  p.dst = txn.plan.waypoints[1];
  p.type = type;
  p.network = txn.plan.segment_networks[0];
  p.payload = payload;
  p.address = address;
  p.id = id;
  p.request_id = id;
  p.injected_cycle = cycle_;

  if (txn.plan.relayed) ctr_.relayed->add();
  arm_deadline(id, txn, cycle_);
  live_.emplace(id, std::move(txn));
  schedule(cycle_, p);
  ctr_.issued->add();
  return id;
}

void NocSystem::lose_transaction(std::uint64_t id) {
  ctr_.lost->add();
  live_.erase(id);
}

void NocSystem::process_timeouts() {
  if (options_.response_timeout == 0) return;
  while (!deadlines_.empty() && deadlines_.top().due_cycle <= cycle_) {
    const Deadline d = deadlines_.top();
    deadlines_.pop();
    const auto it = live_.find(d.id);
    if (it == live_.end()) continue;           // already completed or lost
    LiveTransaction& txn = it->second;
    if (txn.attempts != d.attempt) continue;   // superseded by a retry

    ctr_.timeouts->add();
    if (static_cast<int>(txn.attempts) >= options_.max_retries) {
      lose_transaction(d.id);
      continue;
    }

    // Replan against the *current* fault map: the route that stranded this
    // transaction may be dead, but the pair may still be reachable via the
    // other network or a relay tile.
    RoutePlan fresh =
        selector_.plan(txn.plan.waypoints.front(), txn.plan.waypoints.back());
    if (!fresh.reachable) {
      lose_transaction(d.id);
      continue;
    }

    ++txn.attempts;
    ctr_.retries->add();
    txn.plan = std::move(fresh);
    txn.segment = 0;
    txn.returning = false;

    Packet p;
    p.src = txn.plan.waypoints[0];
    p.dst = txn.plan.waypoints[1];
    p.type = txn.type;
    p.network = txn.plan.segment_networks[0];
    p.payload = txn.payload;
    p.address = txn.address;
    p.id = d.id;
    p.request_id = d.id;
    p.injected_cycle = cycle_;
    p.attempt = txn.attempts;

    const std::uint64_t backoff = options_.retry_backoff_base
                                  << (txn.attempts - 1);
    schedule(cycle_ + backoff, p);
    arm_deadline(d.id, txn, cycle_ + backoff);
  }
}

void NocSystem::handle_ejection(const Packet& p,
                                std::vector<CompletedTransaction>& done) {
  const auto it = live_.find(p.id);
  if (it == live_.end()) {
    // Transaction already declared lost (or completed via a faster
    // attempt); this packet is a straggler from a superseded send.
    ctr_.stale_packets->add();
    return;
  }
  LiveTransaction& txn = it->second;
  if (p.attempt != txn.attempts) {
    ctr_.stale_packets->add();
    return;
  }
  const auto& wp = txn.plan.waypoints;
  const auto& nets = txn.plan.segment_networks;

  if (!txn.returning) {
    if (txn.segment + 2 == wp.size()) {
      // Reached the final destination: the tile services the request and
      // answers on the complementary network along the same tiles.
      if (delivery_listener_) delivery_listener_(p);
      txn.returning = true;
      Packet resp;
      resp.src = wp[txn.segment + 1];
      resp.dst = wp[txn.segment];
      resp.type = response_type(txn.type);
      resp.network = complementary(nets[txn.segment]);
      resp.payload = txn.payload;
      resp.address = txn.address;
      resp.id = p.id;
      resp.request_id = p.id;
      resp.injected_cycle = cycle_;
      resp.attempt = txn.attempts;
      schedule(cycle_ + static_cast<std::uint64_t>(options_.service_latency),
               resp);
    } else {
      // Relay tile: the core re-injects the request toward the next
      // waypoint after spending relay cycles on it.
      ++txn.segment;
      Packet fwd = p;
      fwd.src = wp[txn.segment];
      fwd.dst = wp[txn.segment + 1];
      fwd.network = nets[txn.segment];
      schedule(cycle_ + static_cast<std::uint64_t>(options_.relay_latency),
               fwd);
    }
    return;
  }

  // Response arriving back at the origin of the current segment.
  if (txn.segment == 0) {
    CompletedTransaction ct;
    ct.id = p.id;
    ct.src = wp.front();
    ct.dst = wp.back();
    ct.request_type = txn.type;
    ct.issue_cycle = txn.issue_cycle;
    ct.complete_cycle = cycle_;
    ct.relayed = txn.plan.relayed;
    done.push_back(ct);
    ctr_.completed->add();
    ctr_.latency->record(ct.latency());
    live_.erase(it);
    return;
  }

  --txn.segment;
  Packet resp = p;
  resp.src = wp[txn.segment + 1];
  resp.dst = wp[txn.segment];
  resp.network = complementary(nets[txn.segment]);
  schedule(cycle_ + static_cast<std::uint64_t>(options_.relay_latency), resp);
}

void NocSystem::step(std::vector<CompletedTransaction>& done) {
  WSP_TRACE_SPAN("noc.step");
  // Move everything due into the per-tile ready queues, then drain each
  // tile's queue head-first while its local FIFO accepts packets.  A
  // packet whose source tile died while it waited is dropped here — its
  // transaction recovers (or is declared lost) via the timeout machinery.
  while (!pending_.empty() && pending_.top().due_cycle <= cycle_) {
    const Packet& p = pending_.top().packet;
    if (!faults_.is_faulty(p.src)) {
      ready_[static_cast<std::size_t>(p.network)]
          [grid_index_of(p.src)].push_back(p);
      ++ready_count_;
    }
    pending_.pop();
  }
  for (auto& per_net : ready_) {
    for (auto it = per_net.begin(); it != per_net.end();) {
      std::deque<Packet>& q = it->second;
      while (!q.empty() && net(q.front().network).inject(q.front())) {
        q.pop_front();
        --ready_count_;
      }
      it = q.empty() ? per_net.erase(it) : std::next(it);
    }
  }

  // Step both meshes through the sharded phase protocol with one fused
  // pool dispatch per phase: chunk c covers an XY shard for c < sx and a
  // YX shard otherwise, so every shard of both networks lands (then
  // routes) inside a single barrier.  Commits run serially, XY before YX —
  // the same ejection order the sequential xy_.step(); yx_.step() had.
  const std::size_t sx = static_cast<std::size_t>(xy_.shard_count());
  const std::size_t sy = static_cast<std::size_t>(yx_.shard_count());
  if (sx + sy > 2 && !exec::ThreadPool::on_worker_thread()) {
    exec::ThreadPool& pool = exec::shared_pool();
    pool.run_chunks(sx + sy, [&](std::size_t c) {
      if (c < sx)
        xy_.phase_land(static_cast<int>(c));
      else
        yx_.phase_land(static_cast<int>(c - sx));
    });
    pool.run_chunks(sx + sy, [&](std::size_t c) {
      if (c < sx)
        xy_.phase_route(static_cast<int>(c));
      else
        yx_.phase_route(static_cast<int>(c - sx));
    });
  } else {
    for (std::size_t c = 0; c < sx; ++c)
      xy_.phase_land(static_cast<int>(c));
    for (std::size_t c = 0; c < sy; ++c)
      yx_.phase_land(static_cast<int>(c));
    for (std::size_t c = 0; c < sx; ++c)
      xy_.phase_route(static_cast<int>(c));
    for (std::size_t c = 0; c < sy; ++c)
      yx_.phase_route(static_cast<int>(c));
  }
  eject_scratch_.clear();
  xy_.phase_commit(eject_scratch_);
  yx_.phase_commit(eject_scratch_);
  for (const Packet& p : eject_scratch_) handle_ejection(p, done);
  process_timeouts();
  ++cycle_;
}

bool NocSystem::drain(std::vector<CompletedTransaction>& done,
                      std::uint64_t max_cycles) {
  const std::uint64_t limit = cycle_ + max_cycles;
  while ((!live_.empty() || !pending_.empty() || ready_count_ > 0) &&
         cycle_ < limit)
    step(done);
  return live_.empty() && pending_.empty() && ready_count_ == 0;
}

void NocSystem::apply_fault_state(const FaultMap& faults,
                                  const LinkFaultSet& links) {
  require(faults.grid().width() == faults_.grid().width() &&
              faults.grid().height() == faults_.grid().height(),
          "apply_fault_state: fault map grid mismatch");
  faults_ = faults;
  links_ = links;
  selector_.rebind(faults_, links_);
  xy_.apply_fault_state(faults_, links_);
  yx_.apply_fault_state(faults_, links_);

  // Packets waiting at the injection boundary of a dead tile can never
  // enter the mesh; drop them now so the ready queues keep draining.
  for (auto& per_net : ready_) {
    for (auto it = per_net.begin(); it != per_net.end();) {
      if (faults_.is_faulty(faults_.grid().coord_of(it->first))) {
        ready_count_ -= it->second.size();
        it = per_net.erase(it);
      } else {
        ++it;
      }
    }
  }
  ctr_.replans->add();
}

bool NocSystem::inject_corruption(TileCoord tile) {
  // The mesh owns the `corrupted` counter (it observes the kill); counting
  // here as well would double-book the event in the aggregated stats().
  auto killed = xy_.corrupt_head_packet(tile);
  if (!killed) killed = yx_.corrupt_head_packet(tile);
  return killed.has_value();
}

NocStats NocSystem::stats() const {
  NocStats s;
  s.issued = ctr_.issued->value;
  s.completed = ctr_.completed->value;
  s.unreachable = ctr_.unreachable->value;
  s.relayed = ctr_.relayed->value;
  s.latency_sum = ctr_.latency->sum();
  s.latency_max = ctr_.latency->max();
  s.timeouts = ctr_.timeouts->value;
  s.retries = ctr_.retries->value;
  s.lost = ctr_.lost->value;
  s.stale_packets = ctr_.stale_packets->value;
  s.replans = ctr_.replans->value;
  s.links_retired = ctr_.links_retired->value;
  const MeshStats a = xy_.stats();
  const MeshStats b = yx_.stats();
  s.corrupted = a.corrupted + b.corrupted;
  s.crc_detected = a.crc_detected + b.crc_detected;
  s.link_retransmits = a.link_retransmits + b.link_retransmits;
  s.escapes = a.crc_escapes + b.crc_escapes;
  return s;
}

void NocSystem::set_link_ber(const LinkBerMap& ber) {
  xy_.set_link_ber(ber);
  yx_.set_link_ber(ber);
}

bool NocSystem::retire_link(TileCoord from, Direction d) {
  if (!faults_.grid().contains(from) || !faults_.grid().neighbor(from, d))
    return false;
  if (links_.is_failed(from, d)) return false;
  links_.set_failed(from, d);
  selector_.rebind(faults_, links_);
  xy_.apply_fault_state(faults_, links_);
  yx_.apply_fault_state(faults_, links_);
  ctr_.links_retired->add();
  ctr_.replans->add();
  return true;
}

std::uint64_t NocSystem::link_error_count(TileCoord from, Direction d) const {
  return xy_.link_error_count(from, d) + yx_.link_error_count(from, d);
}

std::uint64_t NocSystem::link_traversal_count(TileCoord from,
                                              Direction d) const {
  return xy_.link_traversal_count(from, d) + yx_.link_traversal_count(from, d);
}

}  // namespace wsp::noc
