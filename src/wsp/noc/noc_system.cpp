#include "wsp/noc/noc_system.hpp"

#include <algorithm>

#include "wsp/common/error.hpp"

namespace wsp::noc {

NetworkSelector::NetworkSelector(const FaultMap& faults) : analyzer_(faults) {}

RoutePlan NetworkSelector::plan(TileCoord src, TileCoord dst) const {
  RoutePlan plan;
  const FaultMap& faults = analyzer_.faults();
  if (!faults.grid().contains(src) || !faults.grid().contains(dst) ||
      faults.is_faulty(src) || faults.is_faulty(dst))
    return plan;

  auto choose = [&](TileCoord a, TileCoord b) -> std::optional<NetworkKind> {
    const bool xy = analyzer_.xy_connected(a, b);
    const bool yx = analyzer_.yx_connected(a, b);
    if (xy && yx) {
      // Both paths healthy: balance pairs across the networks with a
      // deterministic parity hash; one pair always maps to one network so
      // its packets stay in order.
      const unsigned h = static_cast<unsigned>(a.x + 3 * a.y + 5 * b.x +
                                               7 * b.y);
      return (h & 1u) ? NetworkKind::YX : NetworkKind::XY;
    }
    if (xy) return NetworkKind::XY;
    if (yx) return NetworkKind::YX;
    return std::nullopt;
  };

  if (const auto direct = choose(src, dst)) {
    plan.waypoints = {src, dst};
    plan.segment_networks = {*direct};
    plan.reachable = true;
    return plan;
  }

  // No direct path on either network: relay through an intermediate tile.
  if (const auto mid = find_intermediate(faults, src, dst)) {
    const auto first = choose(src, *mid);
    const auto second = choose(*mid, dst);
    if (first && second) {
      plan.waypoints = {src, *mid, dst};
      plan.segment_networks = {*first, *second};
      plan.reachable = true;
      plan.relayed = true;
      return plan;
    }
  }
  return plan;
}

NocSystem::NocSystem(const FaultMap& faults, const NocOptions& options)
    : faults_(faults),
      options_(options),
      selector_(faults),
      xy_(faults, NetworkKind::XY, options.mesh),
      yx_(faults, NetworkKind::YX, options.mesh) {
  require(options.service_latency >= 1, "service latency must be >= 1");
  require(options.relay_latency >= 1, "relay latency must be >= 1");
}

void NocSystem::schedule(std::uint64_t due, const Packet& p) {
  pending_.push(PendingInjection{due, pending_seq_++, p});
}

std::optional<std::uint64_t> NocSystem::issue(TileCoord src, TileCoord dst,
                                              PacketType type,
                                              std::uint64_t payload,
                                              std::uint32_t address) {
  require(is_request(type), "issue() takes a request packet type");
  RoutePlan plan = selector_.plan(src, dst);
  if (!plan.reachable) {
    ++stats_.unreachable;
    return std::nullopt;
  }

  const std::uint64_t id = next_id_++;
  LiveTransaction txn;
  txn.plan = std::move(plan);
  txn.type = type;
  txn.payload = payload;
  txn.address = address;
  txn.issue_cycle = cycle_;

  Packet p;
  p.src = txn.plan.waypoints[0];
  p.dst = txn.plan.waypoints[1];
  p.type = type;
  p.network = txn.plan.segment_networks[0];
  p.payload = payload;
  p.address = address;
  p.id = id;
  p.request_id = id;
  p.injected_cycle = cycle_;

  if (txn.plan.relayed) ++stats_.relayed;
  live_.emplace(id, std::move(txn));
  schedule(cycle_, p);
  ++stats_.issued;
  return id;
}

void NocSystem::handle_ejection(const Packet& p,
                                std::vector<CompletedTransaction>& done) {
  const auto it = live_.find(p.id);
  require(it != live_.end(), "ejected packet belongs to no live transaction");
  LiveTransaction& txn = it->second;
  const auto& wp = txn.plan.waypoints;
  const auto& nets = txn.plan.segment_networks;

  if (!txn.returning) {
    if (txn.segment + 2 == wp.size()) {
      // Reached the final destination: the tile services the request and
      // answers on the complementary network along the same tiles.
      if (delivery_listener_) delivery_listener_(p);
      txn.returning = true;
      Packet resp;
      resp.src = wp[txn.segment + 1];
      resp.dst = wp[txn.segment];
      resp.type = response_type(txn.type);
      resp.network = complementary(nets[txn.segment]);
      resp.payload = txn.payload;
      resp.address = txn.address;
      resp.id = p.id;
      resp.request_id = p.id;
      resp.injected_cycle = cycle_;
      schedule(cycle_ + static_cast<std::uint64_t>(options_.service_latency),
               resp);
    } else {
      // Relay tile: the core re-injects the request toward the next
      // waypoint after spending relay cycles on it.
      ++txn.segment;
      Packet fwd = p;
      fwd.src = wp[txn.segment];
      fwd.dst = wp[txn.segment + 1];
      fwd.network = nets[txn.segment];
      schedule(cycle_ + static_cast<std::uint64_t>(options_.relay_latency),
               fwd);
    }
    return;
  }

  // Response arriving back at the origin of the current segment.
  if (txn.segment == 0) {
    CompletedTransaction ct;
    ct.id = p.id;
    ct.src = wp.front();
    ct.dst = wp.back();
    ct.request_type = txn.type;
    ct.issue_cycle = txn.issue_cycle;
    ct.complete_cycle = cycle_;
    ct.relayed = txn.plan.relayed;
    done.push_back(ct);
    ++stats_.completed;
    stats_.latency_sum += ct.latency();
    stats_.latency_max = std::max(stats_.latency_max, ct.latency());
    live_.erase(it);
    return;
  }

  --txn.segment;
  Packet resp = p;
  resp.src = wp[txn.segment + 1];
  resp.dst = wp[txn.segment];
  resp.network = complementary(nets[txn.segment]);
  schedule(cycle_ + static_cast<std::uint64_t>(options_.relay_latency), resp);
}

void NocSystem::step(std::vector<CompletedTransaction>& done) {
  // Move everything due into the per-tile ready queues, then drain each
  // tile's queue head-first while its local FIFO accepts packets.
  while (!pending_.empty() && pending_.top().due_cycle <= cycle_) {
    const Packet& p = pending_.top().packet;
    ready_[static_cast<std::size_t>(p.network)]
        [grid_index_of(p.src)].push_back(p);
    ++ready_count_;
    pending_.pop();
  }
  for (auto& per_net : ready_) {
    for (auto it = per_net.begin(); it != per_net.end();) {
      std::deque<Packet>& q = it->second;
      while (!q.empty() && net(q.front().network).inject(q.front())) {
        q.pop_front();
        --ready_count_;
      }
      it = q.empty() ? per_net.erase(it) : std::next(it);
    }
  }

  std::vector<Packet> ejected;
  xy_.step(ejected);
  yx_.step(ejected);
  for (const Packet& p : ejected) handle_ejection(p, done);
  ++cycle_;
}

bool NocSystem::drain(std::vector<CompletedTransaction>& done,
                      std::uint64_t max_cycles) {
  const std::uint64_t limit = cycle_ + max_cycles;
  while ((!live_.empty() || !pending_.empty() || ready_count_ > 0) &&
         cycle_ < limit)
    step(done);
  return live_.empty() && pending_.empty() && ready_count_ == 0;
}

}  // namespace wsp::noc
