#include "wsp/noc/link_integrity.hpp"

#include <algorithm>
#include <cmath>

#include "wsp/common/error.hpp"

namespace wsp::noc {

double ber_from_voltage(double v, const BerParams& params) {
  // Log-linear eye-margin model: each volts_per_decade of supply lost
  // below nominal costs one decade of BER, clamped to the usable range.
  const double decades = (params.nominal_v - v) / params.volts_per_decade;
  if (decades <= 0.0) return params.floor_ber;
  const double ber = params.floor_ber * std::pow(10.0, decades);
  return std::min(ber, params.max_ber);
}

double packet_error_probability(double ber) {
  if (ber <= 0.0) return 0.0;
  if (ber >= 1.0) return 1.0;
  // 1 - (1-ber)^bits, computed in log space so tiny BERs don't underflow.
  return -std::expm1(static_cast<double>(kPacketWireBits) *
                     std::log1p(-ber));
}

std::uint8_t crc8(const std::uint8_t* data, std::size_t size) {
  std::uint8_t crc = 0;
  for (std::size_t i = 0; i < size; ++i) {
    crc ^= data[i];
    for (int bit = 0; bit < 8; ++bit)
      crc = (crc & 0x80u) ? static_cast<std::uint8_t>((crc << 1) ^ 0x07u)
                          : static_cast<std::uint8_t>(crc << 1);
  }
  return crc;
}

std::uint8_t packet_crc(const Packet& packet) {
  // Byte-aligned wire image: coordinates, type, then the 64-bit payload
  // little-endian.  The simulator's bookkeeping fields (ids, timestamps)
  // are not wire bits and stay outside the polynomial.
  std::uint8_t image[13];
  image[0] = static_cast<std::uint8_t>(packet.src.x);
  image[1] = static_cast<std::uint8_t>(packet.src.y);
  image[2] = static_cast<std::uint8_t>(packet.dst.x);
  image[3] = static_cast<std::uint8_t>(packet.dst.y);
  image[4] = static_cast<std::uint8_t>(packet.type);
  for (int b = 0; b < 8; ++b)
    image[5 + b] = static_cast<std::uint8_t>(packet.payload >> (8 * b));
  return crc8(image, sizeof image);
}

LinkBerMap LinkBerMap::uniform(const TileGrid& grid, double ber) {
  LinkBerMap map(grid);
  grid.for_each([&](TileCoord c) {
    for (const Direction d : kAllDirections) map.set_ber(c, d, ber);
  });
  return map;
}

LinkBerMap LinkBerMap::from_tile_voltages(const TileGrid& grid,
                                          const std::vector<double>& v_out,
                                          const BerParams& params) {
  require(v_out.size() == grid.tile_count(),
          "from_tile_voltages: one voltage per tile required");
  LinkBerMap map(grid);
  grid.for_each([&](TileCoord c) {
    for (const Direction d : kAllDirections) {
      const auto n = grid.neighbor(c, d);
      if (!n) continue;
      const double v = std::min(v_out[grid.index_of(c)],
                                v_out[grid.index_of(*n)]);
      map.set_ber(c, d, ber_from_voltage(v, params));
    }
  });
  return map;
}

void LinkBerMap::set_ber(TileCoord from, Direction d, double ber) {
  if (ber_.empty() || !grid_.contains(from) || !grid_.neighbor(from, d))
    return;
  const std::size_t i = index_of(from, d);
  ber_[i] = std::clamp(ber, 0.0, 1.0);
  pkt_p_[i] = packet_error_probability(ber_[i]);
  if (pkt_p_[i] > 0.0) any_ = true;
}

}  // namespace wsp::noc
