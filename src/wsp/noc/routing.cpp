#include "wsp/noc/routing.hpp"

#include <cmath>
#include <cstdlib>
#include <limits>

namespace wsp::noc {

const char* to_string(NetworkKind k) {
  return k == NetworkKind::XY ? "XY" : "YX";
}

RouteDecision next_hop(TileCoord current, TileCoord dst, NetworkKind kind) {
  if (current == dst) return {.eject = true};
  const bool x_done = current.x == dst.x;
  const bool y_done = current.y == dst.y;

  // First dimension of the network's order that still differs.
  bool move_x;
  if (kind == NetworkKind::XY)
    move_x = !x_done;
  else
    move_x = y_done;  // YX: only move in X once Y is resolved

  RouteDecision d;
  if (move_x)
    d.dir = dst.x > current.x ? Direction::East : Direction::West;
  else
    d.dir = dst.y > current.y ? Direction::North : Direction::South;
  return d;
}

std::vector<TileCoord> dor_path(TileCoord src, TileCoord dst,
                                NetworkKind kind) {
  std::vector<TileCoord> path;
  path.reserve(static_cast<std::size_t>(hop_distance(src, dst)) + 1);
  TileCoord cur = src;
  path.push_back(cur);
  while (cur != dst) {
    const RouteDecision d = next_hop(cur, dst, kind);
    cur = step(cur, d.dir);
    path.push_back(cur);
  }
  return path;
}

bool path_is_healthy(const FaultMap& faults, TileCoord src, TileCoord dst,
                     NetworkKind kind) {
  TileCoord cur = src;
  if (faults.is_faulty(cur)) return false;
  while (cur != dst) {
    const RouteDecision d = next_hop(cur, dst, kind);
    cur = step(cur, d.dir);
    if (!faults.grid().contains(cur) || faults.is_faulty(cur)) return false;
  }
  return true;
}

PairConnectivity pair_connectivity(const FaultMap& faults, TileCoord src,
                                   TileCoord dst) {
  return {
      .xy_ok = path_is_healthy(faults, src, dst, NetworkKind::XY),
      .yx_ok = path_is_healthy(faults, src, dst, NetworkKind::YX),
  };
}

std::optional<TileCoord> find_intermediate(const FaultMap& faults,
                                           TileCoord src, TileCoord dst) {
  const TileGrid& grid = faults.grid();
  std::optional<TileCoord> best;
  int best_extra = std::numeric_limits<int>::max();
  const int direct = hop_distance(src, dst);

  grid.for_each([&](TileCoord mid) {
    if (faults.is_faulty(mid) || mid == src || mid == dst) return;
    const int extra = hop_distance(src, mid) + hop_distance(mid, dst) - direct;
    if (extra >= best_extra) return;
    if (pair_connectivity(faults, src, mid).connected() &&
        pair_connectivity(faults, mid, dst).connected()) {
      best = mid;
      best_extra = extra;
    }
  });
  return best;
}

}  // namespace wsp::noc
