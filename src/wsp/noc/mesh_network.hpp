// Cycle-level simulator of one DoR mesh network (Sec. VI).
//
// Each healthy tile carries one router per network with five ports
// (N, E, S, W, Local).  Packets are bus-wide (100 bits = one packet per
// link per cycle), so a router moves whole packets: every cycle each
// output port grants one waiting input packet (rotating priority),
// respecting downstream buffer credits, and ships it across the
// inter-chiplet link.  Links cross chiplet boundaries through asynchronous
// FIFOs (the BaseJump BSG IP in the real design), modelled as extra link
// latency — which is also why duty-cycle/jitter accumulation on the
// forwarded clock is tolerable (Sec. IV footnote 3).
//
// Faulty tiles have no functional router: nothing is ever granted toward
// them, and a packet whose DoR route demands one is dropped and counted
// (the kernel's fault-map discipline is what prevents this in practice).
//
// Link integrity (wsp/noc/link_integrity.hpp): when enabled, every link
// traversal samples the per-link BER channel.  A corrupted packet is
// caught by the hop CRC with probability 1 - 2^-8; the receiving hop
// NACKs it and the sender retransmits go-back-N style (frames behind the
// corrupted one on the same link are resent after it, so per-link — and
// therefore per-pair — ordering survives).  A packet that exhausts its
// bounded retransmit budget is dropped and recovers via the end-to-end
// timeout.  Escapes (corruption the CRC aliases on) are delivered with a
// poisoned payload and counted — detected-not-silent, quantified.
//
// ---------------------------------------------------------------------------
// Sharded stepping (see DESIGN.md "Sharded NoC simulation")
//
// The mesh is partitioned into fixed column bands — a pure function of the
// grid width and the configured shard count, never of the thread count —
// and each cycle runs as two data-parallel phases separated by barriers:
//
//   phase_land   per shard: pop every due LinkTransfer off the per-link
//                rings whose destination tile lies in the shard, run it
//                through the BER channel (per-link RNG streams), push it
//                into the destination input queue, then refresh the
//                shard's credit snapshot (free slots per input port).
//   phase_route  per shard: arbitrate every router in the shard against
//                the frozen credit snapshot; grants pop the local input
//                queue and push onto the *outgoing* per-link ring.
//   phase_commit serial: fold the per-shard counter deltas in shard
//                order, merge per-shard ejections into global tile-index
//                order, advance the cycle counter.
//
// Every mutable word has exactly one writer per phase (a directed link's
// ring is popped only by its destination shard in phase_land and pushed
// only by its source shard in phase_route; a credit word is decremented
// only by the unique upstream router), so the result is bit-identical for
// every thread count *and* every shard count.  Router arbitration reads
// only the frozen start-of-cycle credit snapshot: a slot freed by a pop
// becomes visible to the upstream sender one cycle later, which is also
// how real credit-return wires behave.  The pre-sharding stepper instead
// let routers late in the serial sweep observe pops made earlier in the
// same sweep — a sweep-order artifact this refactor removes.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "wsp/common/fault_map.hpp"
#include "wsp/common/rng.hpp"
#include "wsp/noc/link_integrity.hpp"
#include "wsp/noc/packet.hpp"
#include "wsp/noc/routing.hpp"
#include "wsp/obs/metrics.hpp"

namespace wsp::ckpt {
class Writer;
class Reader;
}  // namespace wsp::ckpt

namespace wsp::noc {

/// Router ports.  The first four alias the mesh directions.
enum class Port : std::uint8_t {
  North = 0, East = 1, South = 2, West = 3, Local = 4,
};
inline constexpr std::size_t kPortCount = 5;

constexpr Port port_from(Direction d) { return static_cast<Port>(d); }

struct MeshOptions {
  int input_queue_capacity = 4;  ///< packets per input FIFO
  int link_latency = 2;          ///< cycles per hop (wire + async FIFO sync)
  /// Route with the minimal-adaptive odd-even turn model instead of
  /// dimension order (the paper's future-work scheme, see
  /// wsp/noc/odd_even.hpp).  Deadlock-free without virtual channels; the
  /// adaptivity steers around congestion and faulty tiles.
  bool adaptive_odd_even = false;
  /// Column-band shard count for the parallel stepper; 0 picks one band
  /// per ~4 columns (capped at 16).  The partition is a pure function of
  /// (grid width, this value) and the simulation result is bit-identical
  /// for every shard count — the knob only tunes parallel grain.
  int shards = 0;
  /// Hop-level BER channel + CRC/NACK protocol (off by default).
  LinkIntegrityOptions integrity{};
};

/// Cumulative per-tile activity counters for epoch-coupled co-simulation
/// (wsp::cosim).  Totals since construction, never reset: an epoch driver
/// diffs successive snapshots, so resuming from a checkpoint reproduces the
/// same deltas.  `retransmits` are charged to the *landing* tile of the
/// corrupted hop (the receiver pays the NACK/resend cost) — that tile is
/// uniquely owned by the landing shard, which is what keeps the increment
/// race-free under the unique-writer-per-phase discipline.
struct TileActivity {
  std::uint64_t injections = 0;   ///< packets entering at this source
  std::uint64_t traversals = 0;   ///< link grants leaving this tile
  std::uint64_t retransmits = 0;  ///< hop retransmits landing at this tile
};

/// Value snapshot of one mesh's counters.  The counters themselves live in
/// an obs::MetricsRegistry (under "noc.xy." / "noc.yx."); this struct is
/// the stable public shape assembled on demand by MeshNetwork::stats().
struct MeshStats {
  std::uint64_t injected = 0;
  std::uint64_t ejected = 0;
  std::uint64_t dropped_at_fault = 0;  ///< routed into a faulty tile/link
  std::uint64_t link_traversals = 0;
  std::uint64_t cycles = 0;
  // Runtime-fault accounting (wsp::resilience):
  std::uint64_t purged_in_dead_router = 0;  ///< buffered in a tile that died
  std::uint64_t corrupted = 0;              ///< killed by injected corruption
  // Link-integrity accounting (all zero when integrity is off):
  std::uint64_t crc_detected = 0;      ///< wire corruptions caught by CRC
  std::uint64_t crc_escapes = 0;       ///< corruptions the CRC aliased on
  std::uint64_t link_retransmits = 0;  ///< hop-level NACK/retransmit events
  std::uint64_t link_error_drops = 0;  ///< retransmit budget exhausted
  std::uint64_t dup_dropped = 0;       ///< receiver-side sequence rejects
};

/// One DoR network spanning the wafer.
class MeshNetwork {
 public:
  /// `metrics`: registry the mesh binds its counters into (names prefixed
  /// "noc.xy." / "noc.yx." by kind).  When null the mesh owns a private
  /// registry, so standalone meshes keep working unchanged.  The registry
  /// must outlive the mesh; binding a registry makes MeshNetwork move-only.
  MeshNetwork(const FaultMap& faults, NetworkKind kind,
              const MeshOptions& options = {},
              obs::MetricsRegistry* metrics = nullptr);

  NetworkKind kind() const { return kind_; }
  const TileGrid& grid() const { return grid_; }
  MeshStats stats() const;
  std::uint64_t now() const { return ctr_.cycles->value; }

  /// Registry holding this mesh's counters (the bound one, or the
  /// internally owned fallback).
  obs::MetricsRegistry& metrics() const { return *metrics_; }

  /// True when the local injection FIFO at `src` can take a packet.
  bool can_inject(TileCoord src) const;

  /// Injects a packet at its source tile.  Returns false (and does
  /// nothing) when the local FIFO is full or the tile is faulty.
  bool inject(const Packet& packet);

  /// Advances one cycle; appends packets ejected at their destination this
  /// cycle to `ejected`.  The buffer is append-only and identity-agnostic:
  /// callers may (and should) reuse one cleared-not-shrunk vector across
  /// cycles — results are identical either way.
  void step(std::vector<Packet>& ejected);

  // --- sharded stepping interface -----------------------------------------
  // step() is sugar for: phase_land for every shard, barrier, phase_route
  // for every shard, barrier, phase_commit.  NocSystem drives the phases
  // directly so both meshes' shards share one thread-pool dispatch.  The
  // two land/route phase calls of one cycle may run concurrently across
  // shards; commit is serial.

  /// Number of column-band shards (>= 1; pure function of grid + options).
  int shard_count() const { return static_cast<int>(shards_); }
  /// Lands due transfers into shard `s`'s tiles and refreshes its credit
  /// snapshot.  Safe to run concurrently with other shards' phase_land.
  void phase_land(int s);
  /// Arbitrates shard `s`'s routers against the frozen credit snapshot.
  /// Safe to run concurrently with other shards' phase_route; requires
  /// every shard's phase_land of this cycle to have completed.
  void phase_route(int s);
  /// Folds per-shard deltas (shard order), merges ejections into global
  /// tile-index order onto `ejected`, advances the cycle.  Serial.
  void phase_commit(std::vector<Packet>& ejected);

  /// Total packets buffered in routers or in flight on links.
  std::size_t in_flight() const { return in_flight_; }

  /// Test support: recounts in-flight packets the slow way (input queues +
  /// per-link rings).  Equal to in_flight() whenever the mesh is between
  /// cycles — the cross-shard packet-conservation invariant.
  std::size_t recount_in_flight() const;

  /// Adopts a new fault state mid-run (runtime fault injection).  Packets
  /// buffered inside routers of newly dead tiles are purged and counted in
  /// stats().purged_in_dead_router; packets in flight on a link toward a
  /// dead tile are dropped on arrival.  The grids must match.
  void apply_fault_state(const FaultMap& faults, const LinkFaultSet& links);

  const LinkFaultSet& link_faults() const { return link_faults_; }

  /// Transient-fault model: corrupts (drops) the oldest packet buffered at
  /// `tile`, scanning input ports in fixed order.  Returns the id of the
  /// killed packet, or nullopt when nothing is buffered there.  The lost
  /// packet surfaces upstream as a transaction timeout.
  std::optional<std::uint64_t> corrupt_head_packet(TileCoord tile);

  /// Per-tile activity totals (see TileActivity), indexed by tile.  Always
  /// maintained — the counters ride increments the hot path already takes,
  /// so they cost one extra cache line per active tile, not a branch.
  const std::vector<TileActivity>& tile_activity() const {
    return tile_activity_;
  }

  /// Binds the per-link BER map the channel model samples (no-op effect
  /// unless options.integrity.enabled).  Grids must match.
  void set_link_ber(const LinkBerMap& ber);
  const LinkBerMap& link_ber() const { return ber_; }

  /// Detected CRC errors charged to the directed link leaving `from`.
  std::uint64_t link_error_count(TileCoord from, Direction d) const;
  /// Traversal attempts (retransmissions included) on the same link.
  std::uint64_t link_traversal_count(TileCoord from, Direction d) const;

  /// Packet-conservation invariant: every injected packet is ejected,
  /// dropped at a fault, purged in a dead router, killed by corruption,
  /// dropped after exhausting its retransmit budget, rejected by the
  /// receiver sequence check, or still in flight.  Checked by tests at
  /// every drain point and asserted each cycle in debug builds.
  bool conservation_holds() const {
    return ctr_.injected->value ==
           ctr_.ejected->value + ctr_.dropped_at_fault->value +
               ctr_.purged_in_dead_router->value + ctr_.corrupted->value +
               ctr_.link_error_drops->value + ctr_.dup_dropped->value +
               in_flight_;
  }

  /// Checkpoint hooks (wsp::ckpt).  The snapshot captures the complete
  /// mutable state — packet pool, input queues, per-link rings, packed
  /// credit words, per-link RNG streams, retransmit protocol state, BER
  /// map, fault state and counters — so a load followed by step() is
  /// bit-identical to never having stopped, at every thread and shard
  /// count.  Derived tables (route9, link_ok_, neighbour maps) are
  /// rebuilt, not stored.  load_state targets a mesh constructed over the
  /// same grid, kind and behavioural options as the saver; anything else
  /// throws ckpt::Error (TopologyMismatch / SchemaMismatch).  The shard
  /// count is deliberately *not* part of the schema: results are
  /// shard-count-invariant, so a snapshot may be resumed under a
  /// different parallel grain.
  void save_state(ckpt::Writer& w) const;
  void load_state(ckpt::Reader& r);

 private:
  /// One frame on a directed link.  Carries a pool_ index instead of the
  /// 80-byte Packet so a hop moves 24 bytes of ring slab, not 80+ — the
  /// payload stays put in the (L2-resident) pool until ejection.
  struct LinkTransfer {
    std::uint64_t arrival_cycle = 0;
    std::uint32_t pkt = 0;         ///< pool_ index of the payload packet
    std::uint32_t dst_tile = 0;
    std::uint32_t src_tile = 0;    ///< link source (counter keying)
    Port dst_port = Port::North;
    // Link-integrity protocol state:
    std::uint8_t dir = 0;          ///< outgoing Direction at the source
    std::uint8_t seq = 0;          ///< 4-bit per-link sequence number
    std::uint8_t retransmits = 0;  ///< budget consumed by this traversal
  };

  /// Registry-backed counters resolved once at construction; incrementing
  /// through the pointers keeps the hot path equivalent to the old plain
  /// struct fields while the registry is the single source of truth.
  struct Counters {
    obs::Counter* injected = nullptr;
    obs::Counter* ejected = nullptr;
    obs::Counter* dropped_at_fault = nullptr;
    obs::Counter* link_traversals = nullptr;
    obs::Counter* cycles = nullptr;
    obs::Counter* purged_in_dead_router = nullptr;
    obs::Counter* corrupted = nullptr;
    obs::Counter* crc_detected = nullptr;
    obs::Counter* crc_escapes = nullptr;
    obs::Counter* link_retransmits = nullptr;
    obs::Counter* link_error_drops = nullptr;
    obs::Counter* dup_dropped = nullptr;
  };

  /// Per-shard accumulators: counter deltas, this cycle's ejections, and
  /// pool slots freed by drops, all folded serially (in shard order) by
  /// phase_commit so the registry, in_flight_ and the pool free list are
  /// only ever written single-threaded.  Ejections carry their tile index
  /// so the merge restores global tile order.
  struct ShardScratch {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> ejected;  // (tile, pool idx)
    std::vector<std::uint32_t> freed;  ///< pool slots released by drops
    std::uint64_t d_ejected = 0;
    std::uint64_t d_dropped_at_fault = 0;
    std::uint64_t d_link_traversals = 0;
    std::uint64_t d_crc_detected = 0;
    std::uint64_t d_crc_escapes = 0;
    std::uint64_t d_link_retransmits = 0;
    std::uint64_t d_link_error_drops = 0;
    std::uint64_t d_dup_dropped = 0;
    std::int64_t d_in_flight = 0;
  };

  // Route-table codes for route9_[tile * 9 + case]:
  //   0..3  forward out that Direction (the link is currently usable)
  //   4     eject (here == dst)
  //   5     the DoR direction is dead — drop at this router
  static constexpr std::uint8_t kRouteEject = 4;
  static constexpr std::uint8_t kRouteDrop = 5;

  FaultMap faults_;
  LinkFaultSet link_faults_;
  TileGrid grid_;
  NetworkKind kind_;
  MeshOptions options_;
  std::size_t cap_ = 0;  ///< input_queue_capacity as size_t

  /// In-flight packet payloads.  Queues and link rings hold 4-byte indices
  /// into this pool, so the per-cycle working set is proportional to the
  /// packets actually in flight (tens of KB at realistic loads) instead of
  /// the multi-MB queue/ring slabs that dominated cache misses when the
  /// slabs stored whole Packets.  Slots are allocated only by inject()
  /// (serial, between cycles — the vector never reallocates inside a
  /// phase) and freed serially by phase_commit in shard order; a pool
  /// entry is written during a phase only by the shard that owns the
  /// packet's current position, preserving the unique-writer property.
  std::vector<Packet> pool_;
  std::vector<std::uint32_t> pool_free_;

  /// All per-tile router state one arbitration pass reads, packed into a
  /// single cache line so the phase_route want/grant loops touch one line
  /// per router instead of five parallel arrays.  Written only by the
  /// shard that owns the tile (land pushes into its queues, route pops).
  /// route9: precomputed DoR decision per sign-pair case — dimension-order
  /// routing only reads (sign(dst.x - x), sign(dst.y - y)), so the full
  /// (src, dst) table factors into 9 cases with link health folded in,
  /// rebuilt only on fault events (meaningless when routing adaptively:
  /// odd-even stays dynamic because its choice set depends on the packet
  /// source).  Case index: (sign(dx) + 1) * 3 + (sign(dy) + 1).
  struct alignas(64) TileState {
    std::uint16_t q_head[kPortCount];  ///< FIFO head slot
    std::uint16_t q_size[kPortCount];  ///< FIFO occupancy
    std::uint8_t rr[kPortCount];       ///< per-output rotating priority
    std::uint8_t route9[9];
    /// Packets buffered anywhere in the tile's five FIFOs: routers with
    /// zero occupancy skip arbitration entirely, which is most of the
    /// wafer at realistic loads.
    std::uint16_t occ;
  };
  std::vector<TileState> tiles_;  ///< indexed by tile

  /// Fixed-capacity FIFO storage of pool indices, indexed by
  /// (tile * kPortCount + port) * cap_ + slot.
  std::vector<std::uint32_t> q_slots_;
  /// Hot state of the directed link leaving (tile, direction), one 8-byte
  /// record per link so a router's credit check, grant bookkeeping and
  /// ring push all hit the same cache line — a tile's four outgoing links
  /// are 32 contiguous bytes.  `pending` counts credits reserved by
  /// granted-but-not-landed transfers; `space` is the frozen free-slot
  /// snapshot of the *downstream* input FIFO the sender arbitrates
  /// against.  Per field the unique-writer-per-phase property holds:
  /// phase_land (destination shard) pops the ring and refreshes
  /// pending/space, phase_route (source shard) pushes the ring and
  /// consumes space.
  struct LinkState {
    std::uint16_t head = 0;     ///< ring head slot
    std::uint16_t count = 0;    ///< frames in flight on the link
    std::uint16_t pending = 0;  ///< credits reserved downstream
    std::uint16_t space = 0;    ///< frozen downstream credit snapshot
  };
  std::vector<LinkState> link_;  ///< indexed by (tile * 4 + direction)

  // In-flight transfers of the directed link leaving (tile, direction),
  // as fixed-capacity rings in one slab (link id * cap_ + slot).  Every
  // frame on the wire holds a reserved downstream credit, so a ring never
  // exceeds the input queue capacity; push_front re-queues a NACKed frame
  // at the head of its go-back-N window.  The dense LinkState records keep
  // the per-cycle emptiness scan off the (much larger) slab.
  std::vector<LinkTransfer> ring_slab_;

  // Topology/health tables rebuilt only on fault / link-retirement events:
  std::vector<std::int32_t> neighbor_;   ///< tile*4+dir -> tile index or -1
  /// Incoming ring id per (tile, input port): the directed link whose
  /// transfers land at that port, or -1 at the array edge.
  std::vector<std::int32_t> in_ring_;
  std::vector<std::uint8_t> tile_faulty_;
  std::vector<std::uint8_t> link_ok_;    ///< neighbor alive && link alive
  /// True when tiles_[t].route9 is valid (DoR); false under adaptive
  /// odd-even, which routes dynamically.
  bool have_route9_ = false;

  // Shard layout (fixed at construction):
  std::size_t shards_ = 1;
  std::vector<int> shard_x0_;  ///< shards_+1 column boundaries
  std::vector<ShardScratch> scratch_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> eject_merge_;

  /// Per-tile activity totals (injections serial; traversals written only
  /// by the routing shard that owns the tile; retransmits only by the
  /// landing shard that owns the destination tile).
  std::vector<TileActivity> tile_activity_;

  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  Counters ctr_;
  std::size_t in_flight_ = 0;

  // Link-integrity state (allocated only when integrity is enabled).
  LinkBerMap ber_;
  /// One channel-sampling stream per directed link: sampling order across
  /// links then cannot matter, which is what lets shards land concurrently.
  std::vector<Rng> link_rng_;
  std::vector<std::array<std::uint64_t, 4>> link_errors_;
  std::vector<std::array<std::uint64_t, 4>> link_traversals_;
  std::vector<std::array<std::uint8_t, 4>> tx_seq_;  ///< by (src, out dir)
  std::vector<std::array<std::uint8_t, 4>> rx_seq_;  ///< by (dst, in port)
  /// Earliest free arrival slot per directed link: keeps frames granted
  /// after a retransmission from overtaking it (go-back-N ordering).
  std::vector<std::array<std::uint64_t, 4>> link_next_free_;

  std::uint32_t pool_alloc(const Packet& p) {
    if (!pool_free_.empty()) {
      const std::uint32_t idx = pool_free_.back();
      pool_free_.pop_back();
      pool_[idx] = p;
      return idx;
    }
    pool_.push_back(p);
    return static_cast<std::uint32_t>(pool_.size() - 1);
  }

  std::size_t qbase(std::size_t tile, std::size_t port) const {
    return (tile * kPortCount + port) * cap_;
  }
  /// Pool index of the FIFO head packet.
  std::uint32_t q_front_idx(std::size_t tile, std::size_t port) const {
    return q_slots_[qbase(tile, port) + tiles_[tile].q_head[port]];
  }
  void q_push(std::size_t tile, std::size_t port, std::uint32_t pkt) {
    TileState& ts = tiles_[tile];
    std::size_t slot =
        static_cast<std::size_t>(ts.q_head[port]) + ts.q_size[port];
    if (slot >= cap_) slot -= cap_;
    q_slots_[qbase(tile, port) + slot] = pkt;
    ++ts.q_size[port];
    ++ts.occ;
  }
  void q_pop(std::size_t tile, std::size_t port) {
    TileState& ts = tiles_[tile];
    const std::size_t next = static_cast<std::size_t>(ts.q_head[port]) + 1;
    ts.q_head[port] = static_cast<std::uint16_t>(next == cap_ ? 0 : next);
    --ts.q_size[port];
    --ts.occ;
  }

  LinkTransfer& ring_front(std::size_t link) {
    return ring_slab_[link * cap_ + link_[link].head];
  }
  /// i-th in-flight frame of `link` from the front (0 = front).
  LinkTransfer& ring_at(std::size_t link, std::size_t i) {
    std::size_t slot = link_[link].head + i;
    if (slot >= cap_) slot -= cap_;
    return ring_slab_[link * cap_ + slot];
  }
  void ring_pop(std::size_t link) {
    const std::size_t next = static_cast<std::size_t>(link_[link].head) + 1;
    link_[link].head = static_cast<std::uint16_t>(next == cap_ ? 0 : next);
    --link_[link].count;
  }
  void ring_push_back(std::size_t link, const LinkTransfer& t) {
    assert(link_[link].count < cap_);
    std::size_t slot = link_[link].head + link_[link].count;
    if (slot >= cap_) slot -= cap_;
    ring_slab_[link * cap_ + slot] = t;
    ++link_[link].count;
  }
  void ring_push_front(std::size_t link, const LinkTransfer& t) {
    assert(link_[link].count < cap_);
    link_[link].head = static_cast<std::uint16_t>(
        link_[link].head == 0 ? cap_ - 1 : link_[link].head - 1);
    ring_slab_[link * cap_ + link_[link].head] = t;
    ++link_[link].count;
  }

  void rebuild_topology();

  enum class ChannelOutcome {
    Accept,   ///< survived the channel (possibly as a counted escape)
    Retried,  ///< CRC caught it; re-queued on the wire, credit kept
    Dropped,  ///< budget exhausted / retransmit off / sequence reject
  };
  /// Runs the landing transfer through the BER channel + CRC + sequence
  /// protocol.  May re-queue `t` at the head of its link ring (Retried).
  ChannelOutcome channel_admit(LinkTransfer t, std::uint64_t now,
                               ShardScratch& sc);
};

}  // namespace wsp::noc
