// Cycle-level simulator of one DoR mesh network (Sec. VI).
//
// Each healthy tile carries one router per network with five ports
// (N, E, S, W, Local).  Packets are bus-wide (100 bits = one packet per
// link per cycle), so a router moves whole packets: every cycle each
// output port grants one waiting input packet (rotating priority),
// respecting downstream buffer credits, and ships it across the
// inter-chiplet link.  Links cross chiplet boundaries through asynchronous
// FIFOs (the BaseJump BSG IP in the real design), modelled as extra link
// latency — which is also why duty-cycle/jitter accumulation on the
// forwarded clock is tolerable (Sec. IV footnote 3).
//
// Faulty tiles have no functional router: nothing is ever granted toward
// them, and a packet whose DoR route demands one is dropped and counted
// (the kernel's fault-map discipline is what prevents this in practice).
//
// Link integrity (wsp/noc/link_integrity.hpp): when enabled, every link
// traversal samples the per-link BER channel.  A corrupted packet is
// caught by the hop CRC with probability 1 - 2^-8; the receiving hop
// NACKs it and the sender retransmits go-back-N style (frames behind the
// corrupted one on the same link are resent after it, so per-link — and
// therefore per-pair — ordering survives).  A packet that exhausts its
// bounded retransmit budget is dropped and recovers via the end-to-end
// timeout.  Escapes (corruption the CRC aliases on) are delivered with a
// poisoned payload and counted — detected-not-silent, quantified.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "wsp/common/fault_map.hpp"
#include "wsp/common/rng.hpp"
#include "wsp/noc/link_integrity.hpp"
#include "wsp/noc/packet.hpp"
#include "wsp/noc/routing.hpp"
#include "wsp/obs/metrics.hpp"

namespace wsp::noc {

/// Router ports.  The first four alias the mesh directions.
enum class Port : std::uint8_t {
  North = 0, East = 1, South = 2, West = 3, Local = 4,
};
inline constexpr std::size_t kPortCount = 5;

constexpr Port port_from(Direction d) { return static_cast<Port>(d); }

struct MeshOptions {
  int input_queue_capacity = 4;  ///< packets per input FIFO
  int link_latency = 2;          ///< cycles per hop (wire + async FIFO sync)
  /// Route with the minimal-adaptive odd-even turn model instead of
  /// dimension order (the paper's future-work scheme, see
  /// wsp/noc/odd_even.hpp).  Deadlock-free without virtual channels; the
  /// adaptivity steers around congestion and faulty tiles.
  bool adaptive_odd_even = false;
  /// Hop-level BER channel + CRC/NACK protocol (off by default).
  LinkIntegrityOptions integrity{};
};

/// Value snapshot of one mesh's counters.  The counters themselves live in
/// an obs::MetricsRegistry (under "noc.xy." / "noc.yx."); this struct is
/// the stable public shape assembled on demand by MeshNetwork::stats().
struct MeshStats {
  std::uint64_t injected = 0;
  std::uint64_t ejected = 0;
  std::uint64_t dropped_at_fault = 0;  ///< routed into a faulty tile/link
  std::uint64_t link_traversals = 0;
  std::uint64_t cycles = 0;
  // Runtime-fault accounting (wsp::resilience):
  std::uint64_t purged_in_dead_router = 0;  ///< buffered in a tile that died
  std::uint64_t corrupted = 0;              ///< killed by injected corruption
  // Link-integrity accounting (all zero when integrity is off):
  std::uint64_t crc_detected = 0;      ///< wire corruptions caught by CRC
  std::uint64_t crc_escapes = 0;       ///< corruptions the CRC aliased on
  std::uint64_t link_retransmits = 0;  ///< hop-level NACK/retransmit events
  std::uint64_t link_error_drops = 0;  ///< retransmit budget exhausted
  std::uint64_t dup_dropped = 0;       ///< receiver-side sequence rejects
};

/// One DoR network spanning the wafer.
class MeshNetwork {
 public:
  /// `metrics`: registry the mesh binds its counters into (names prefixed
  /// "noc.xy." / "noc.yx." by kind).  When null the mesh owns a private
  /// registry, so standalone meshes keep working unchanged.  The registry
  /// must outlive the mesh; binding a registry makes MeshNetwork move-only.
  MeshNetwork(const FaultMap& faults, NetworkKind kind,
              const MeshOptions& options = {},
              obs::MetricsRegistry* metrics = nullptr);

  NetworkKind kind() const { return kind_; }
  const TileGrid& grid() const { return grid_; }
  MeshStats stats() const;
  std::uint64_t now() const { return ctr_.cycles->value; }

  /// Registry holding this mesh's counters (the bound one, or the
  /// internally owned fallback).
  obs::MetricsRegistry& metrics() const { return *metrics_; }

  /// True when the local injection FIFO at `src` can take a packet.
  bool can_inject(TileCoord src) const;

  /// Injects a packet at its source tile.  Returns false (and does
  /// nothing) when the local FIFO is full or the tile is faulty.
  bool inject(const Packet& packet);

  /// Advances one cycle; appends packets ejected at their destination this
  /// cycle to `ejected`.
  void step(std::vector<Packet>& ejected);

  /// Total packets buffered in routers or in flight on links.
  std::size_t in_flight() const { return in_flight_; }

  /// Adopts a new fault state mid-run (runtime fault injection).  Packets
  /// buffered inside routers of newly dead tiles are purged and counted in
  /// stats().purged_in_dead_router; packets in flight on a link toward a
  /// dead tile are dropped on arrival.  The grids must match.
  void apply_fault_state(const FaultMap& faults, const LinkFaultSet& links);

  const LinkFaultSet& link_faults() const { return link_faults_; }

  /// Transient-fault model: corrupts (drops) the oldest packet buffered at
  /// `tile`, scanning input ports in fixed order.  Returns the id of the
  /// killed packet, or nullopt when nothing is buffered there.  The lost
  /// packet surfaces upstream as a transaction timeout.
  std::optional<std::uint64_t> corrupt_head_packet(TileCoord tile);

  /// Binds the per-link BER map the channel model samples (no-op effect
  /// unless options.integrity.enabled).  Grids must match.
  void set_link_ber(const LinkBerMap& ber);
  const LinkBerMap& link_ber() const { return ber_; }

  /// Detected CRC errors charged to the directed link leaving `from`.
  std::uint64_t link_error_count(TileCoord from, Direction d) const;
  /// Traversal attempts (retransmissions included) on the same link.
  std::uint64_t link_traversal_count(TileCoord from, Direction d) const;

  /// Packet-conservation invariant: every injected packet is ejected,
  /// dropped at a fault, purged in a dead router, killed by corruption,
  /// dropped after exhausting its retransmit budget, rejected by the
  /// receiver sequence check, or still in flight.  Checked by tests at
  /// every drain point and asserted each cycle in debug builds.
  bool conservation_holds() const {
    return ctr_.injected->value ==
           ctr_.ejected->value + ctr_.dropped_at_fault->value +
               ctr_.purged_in_dead_router->value + ctr_.corrupted->value +
               ctr_.link_error_drops->value + ctr_.dup_dropped->value +
               in_flight_;
  }

 private:
  struct RouterState {
    std::array<std::deque<Packet>, kPortCount> in_q;
    std::array<std::uint8_t, kPortCount> rr_ptr{};  ///< per-output rotation
  };
  struct LinkTransfer {
    Packet packet;
    std::size_t dst_tile;
    Port dst_port;
    std::uint64_t arrival_cycle;
    // Link-integrity protocol state:
    std::size_t src_tile = 0;      ///< link source (counter keying)
    std::uint8_t dir = 0;          ///< outgoing Direction at the source
    std::uint8_t seq = 0;          ///< 4-bit per-link sequence number
    std::uint8_t retransmits = 0;  ///< budget consumed by this traversal
  };

  /// Registry-backed counters resolved once at construction; incrementing
  /// through the pointers keeps the hot path equivalent to the old plain
  /// struct fields while the registry is the single source of truth.
  struct Counters {
    obs::Counter* injected = nullptr;
    obs::Counter* ejected = nullptr;
    obs::Counter* dropped_at_fault = nullptr;
    obs::Counter* link_traversals = nullptr;
    obs::Counter* cycles = nullptr;
    obs::Counter* purged_in_dead_router = nullptr;
    obs::Counter* corrupted = nullptr;
    obs::Counter* crc_detected = nullptr;
    obs::Counter* crc_escapes = nullptr;
    obs::Counter* link_retransmits = nullptr;
    obs::Counter* link_error_drops = nullptr;
    obs::Counter* dup_dropped = nullptr;
  };

  FaultMap faults_;
  LinkFaultSet link_faults_;
  TileGrid grid_;
  NetworkKind kind_;
  MeshOptions options_;
  std::vector<RouterState> routers_;
  /// Credits reserved by granted-but-not-landed transfers, per input FIFO.
  std::vector<std::array<std::uint16_t, kPortCount>> pending_toward_;
  std::deque<LinkTransfer> in_transit_;  ///< sorted by arrival cycle
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  Counters ctr_;
  std::size_t in_flight_ = 0;

  // Link-integrity state (allocated only when integrity is enabled).
  LinkBerMap ber_;
  Rng chan_rng_;  ///< channel-sampling stream, separate from traffic RNGs
  std::vector<std::array<std::uint64_t, 4>> link_errors_;
  std::vector<std::array<std::uint64_t, 4>> link_traversals_;
  std::vector<std::array<std::uint8_t, 4>> tx_seq_;  ///< by (src, out dir)
  std::vector<std::array<std::uint8_t, 4>> rx_seq_;  ///< by (dst, in port)
  /// Earliest free arrival slot per directed link: keeps frames granted
  /// after a retransmission from overtaking it (go-back-N ordering).
  std::vector<std::array<std::uint64_t, 4>> link_next_free_;

  bool queue_has_space(std::size_t tile, Port port) const;

  enum class ChannelOutcome {
    Accept,   ///< survived the channel (possibly as a counted escape)
    Retried,  ///< CRC caught it; re-queued on the wire, credit kept
    Dropped,  ///< budget exhausted / retransmit off / sequence reject
  };
  /// Runs the landing transfer through the BER channel + CRC + sequence
  /// protocol.  May re-queue `t` into in_transit_ (Retried).
  ChannelOutcome channel_admit(LinkTransfer t, std::uint64_t now);
};

}  // namespace wsp::noc
