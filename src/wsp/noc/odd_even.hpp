// Odd-even turn-model adaptive routing — the paper's stated future work
// ("In the future, we will incorporate sophisticated routing schemes
// [18, 19] for improved waferscale fault tolerance as well as
// performance", Sec. VI; [18] is Wu's odd-even-based fault-tolerant
// protocol).
//
// The odd-even turn model (Chiu) restricts where turns may happen instead
// of fixing the dimension order: EN/ES turns are only allowed in odd
// columns (or the source column), NW/SW turns only in even columns.  The
// restriction breaks all cyclic channel dependencies, so *minimal
// adaptive* routing is deadlock-free without virtual channels — and the
// adaptivity lets packets steer around faulty tiles that would kill a
// dimension-ordered path.
//
// This module provides the ROUTE function (the set of allowed minimal
// output directions at a tile), a fault-aware reachability analysis
// (can src reach dst by *some* allowed minimal path avoiding faults?),
// and a Fig. 6-style census so the scheme can be compared head-to-head
// with the prototype's single- and dual-DoR networks.
#pragma once

#include <array>
#include <cstdint>

#include "wsp/common/fault_map.hpp"
#include "wsp/noc/routing.hpp"

namespace wsp::noc {

/// Allowed output directions for a packet at `cur`, in preference order.
struct RouteChoices {
  bool eject = false;
  int count = 0;
  std::array<Direction, 2> dirs{};  ///< minimal routing: at most 2 options

  void add(Direction d) { dirs[count++] = d; }
};

/// Chiu's odd-even ROUTE function: minimal allowed directions from `cur`
/// toward `dst` for a packet injected at `src` (the source column relaxes
/// the first-turn rule).  Preference order favours the dimension with the
/// larger remaining distance (a common adaptive selection heuristic).
RouteChoices odd_even_route(TileCoord src, TileCoord cur, TileCoord dst);

/// True when some minimal odd-even path from `src` to `dst` avoids every
/// faulty tile (endpoints must be healthy).  BFS over the allowed-turn
/// graph.
bool odd_even_connected(const FaultMap& faults, TileCoord src, TileCoord dst);

/// Fig. 6-style census for minimal-adaptive odd-even routing.
struct OddEvenStats {
  std::size_t healthy_pairs = 0;
  std::size_t disconnected = 0;
  double pct() const {
    return healthy_pairs ? 100.0 * disconnected / healthy_pairs : 0.0;
  }
};
OddEvenStats census_odd_even(const FaultMap& faults);

/// Verifies the turn model's deadlock-freedom structurally: builds the
/// channel-dependency graph induced by odd_even_route over a WxH mesh and
/// reports whether it is acyclic (used by the property tests; DoR passes
/// too, a fully adaptive router would not).
bool channel_dependency_graph_is_acyclic(int width, int height);

}  // namespace wsp::noc
