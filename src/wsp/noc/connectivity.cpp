#include "wsp/noc/connectivity.hpp"

namespace wsp::noc {

ConnectivityAnalyzer::ConnectivityAnalyzer(const FaultMap& faults)
    : faults_(faults),
      width_(faults.grid().width()),
      height_(faults.grid().height()) {
  const auto n = faults.grid().tile_count();
  row_run_.assign(n, -1);
  col_run_.assign(n, -1);

  int next_run = 0;
  for (int y = 0; y < height_; ++y) {
    bool in_run = false;
    for (int x = 0; x < width_; ++x) {
      if (faults_.is_healthy({x, y})) {
        if (!in_run) {
          ++next_run;
          in_run = true;
        }
        row_run_[static_cast<std::size_t>(y) * width_ + x] = next_run;
      } else {
        in_run = false;
      }
    }
  }
  for (int x = 0; x < width_; ++x) {
    bool in_run = false;
    for (int y = 0; y < height_; ++y) {
      if (faults_.is_healthy({x, y})) {
        if (!in_run) {
          ++next_run;
          in_run = true;
        }
        col_run_[static_cast<std::size_t>(x) * height_ + y] = next_run;
      } else {
        in_run = false;
      }
    }
  }
}

bool ConnectivityAnalyzer::xy_connected(TileCoord src, TileCoord dst) const {
  if (faults_.is_faulty(src) || faults_.is_faulty(dst)) return false;
  // Row segment in src's row from src.x to dst.x, then column segment in
  // dst's column from src.y to dst.y.  Each is healthy iff its endpoints
  // share a maximal healthy run.
  const TileCoord corner{dst.x, src.y};
  if (faults_.is_faulty(corner)) return false;
  return row_run(src) == row_run(corner) && col_run(corner) == col_run(dst);
}

bool ConnectivityAnalyzer::yx_connected(TileCoord src, TileCoord dst) const {
  if (faults_.is_faulty(src) || faults_.is_faulty(dst)) return false;
  const TileCoord corner{src.x, dst.y};
  if (faults_.is_faulty(corner)) return false;
  return col_run(src) == col_run(corner) && row_run(corner) == row_run(dst);
}

DisconnectionStats census_disconnection(const FaultMap& faults) {
  const ConnectivityAnalyzer an(faults);
  const std::vector<TileCoord> healthy = faults.healthy_tiles();

  DisconnectionStats stats;
  for (const TileCoord src : healthy) {
    for (const TileCoord dst : healthy) {
      if (src == dst) continue;
      ++stats.healthy_pairs;
      const bool xy = an.xy_connected(src, dst);
      const bool yx = an.yx_connected(src, dst);
      // Round trip on one network: the response comes back on the same
      // network via its own dimension-ordered path.
      if (!xy || !an.xy_connected(dst, src))
        ++stats.disconnected_single_roundtrip;
      if (!xy) ++stats.disconnected_single_xy;
      if (!xy && !yx) {
        ++stats.disconnected_dual;
        if (src.x == dst.x || src.y == dst.y)
          ++stats.disconnected_dual_same_row_col;
      }
    }
  }
  return stats;
}

std::vector<Fig6Point> fig6_sweep(const TileGrid& grid,
                                  const std::vector<std::size_t>& fault_counts,
                                  int trials, Rng& rng) {
  std::vector<Fig6Point> points;
  points.reserve(fault_counts.size());
  for (const std::size_t n : fault_counts) {
    Fig6Point p;
    p.fault_count = n;
    for (int t = 0; t < trials; ++t) {
      const FaultMap faults = FaultMap::random_with_count(grid, n, rng);
      const DisconnectionStats stats = census_disconnection(faults);
      p.mean_single_pct += stats.single_pct();
      p.mean_single_roundtrip_pct += stats.single_roundtrip_pct();
      p.mean_dual_pct += stats.dual_pct();
    }
    p.mean_single_pct /= trials;
    p.mean_single_roundtrip_pct /= trials;
    p.mean_dual_pct /= trials;
    points.push_back(p);
  }
  return points;
}

}  // namespace wsp::noc
