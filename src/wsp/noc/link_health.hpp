// Predictive link retirement from accumulated CRC-error telemetry.
//
// Every router hop that catches a CRC error charges it to the directed
// link the frame crossed (MeshNetwork::link_error_count).  Firmware scrubs
// those counters periodically — in hardware over the same DAP/JTAG chain
// used for SRAM repair (wsp/testinfra/link_scrub.hpp) — and retires a link
// whose observed error rate says it is dying *before* it fails hard: the
// link goes into the kernel's LinkFaultSet and the PR-1 replan machinery
// routes around it while traffic still flows.  Retirement is one-way; a
// marginal link that recovers its margin is not trusted again.
//
// The scrub word format is what the hardware path carries: one 32-bit word
// per direction, detected errors in the high half and traversal attempts
// in the low half, both saturating.  The monitor makes its decisions from
// those packed words whether they arrived via JTAG or were read directly
// from the simulator, so the two paths retire identically.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "wsp/common/geometry.hpp"

namespace wsp::noc {

class NocSystem;

/// When to give up on a link.  Rate alone is too twitchy at low traffic
/// (one error in three traversals is noise), so retirement requires a
/// minimum observation count on both axes.
struct LinkRetirementPolicy {
  std::uint64_t scrub_period = 64;   ///< cycles between counter scrubs
  std::uint64_t min_traversals = 16; ///< don't judge an idle link
  std::uint64_t min_errors = 4;      ///< don't judge a single glitch
  double retire_error_rate = 0.02;   ///< errors/traversals that retires
};

/// One retirement decision, for the campaign report.
struct RetiredLink {
  TileCoord tile;                ///< link source
  Direction dir = Direction::North;
  std::uint64_t cycle = 0;       ///< scrub cycle that triggered it
  std::uint64_t errors = 0;      ///< counter values at that scrub
  std::uint64_t traversals = 0;
};

/// Packs one direction's counters into the 32-bit scrub word the DAP
/// chain carries: errors<<16 | traversals, each half saturating at 0xFFFF.
std::uint32_t pack_scrub_word(std::uint64_t errors, std::uint64_t traversals);

/// The four scrub words of one tile (kAllDirections order), read straight
/// from the NoC's per-link counters — what the tile deposits in its SRAM
/// for the JTAG host to collect.
std::array<std::uint32_t, 4> pack_scrub_words(const NocSystem& noc,
                                              TileCoord tile);

/// Accumulates scrubbed per-link error telemetry and flags links for
/// retirement.  The monitor only *decides*; the caller retires the link in
/// the NoC (NocSystem::retire_link) and publishes the fault notice
/// (FaultInjector::retire_link) so observers hear about it.
class LinkHealthMonitor {
 public:
  explicit LinkHealthMonitor(const TileGrid& grid,
                             const LinkRetirementPolicy& policy = {});

  /// Scrubs every tile's counters directly from the simulator and returns
  /// the links newly due for retirement (each link is reported once).
  std::vector<RetiredLink> scrub(const NocSystem& noc);

  /// Feeds one tile's scrub words as collected over the hardware path
  /// (wsp/testinfra/link_scrub.hpp).  Same decision logic as scrub().
  std::vector<RetiredLink> ingest(TileCoord tile,
                                  const std::array<std::uint32_t, 4>& words,
                                  std::uint64_t cycle);

  /// Every retirement decision so far, in decision order.
  const std::vector<RetiredLink>& retired() const { return retired_; }
  bool is_retired(TileCoord tile, Direction d) const;

  const LinkRetirementPolicy& policy() const { return policy_; }
  const TileGrid& grid() const { return grid_; }

 private:
  TileGrid grid_;
  LinkRetirementPolicy policy_;
  std::vector<std::array<bool, 4>> flagged_;  ///< already reported
  std::vector<RetiredLink> retired_;
};

}  // namespace wsp::noc
