#include "wsp/noc/link_health.hpp"

#include <algorithm>

#include "wsp/common/error.hpp"
#include "wsp/noc/noc_system.hpp"

namespace wsp::noc {

namespace {
constexpr std::uint64_t kHalfMax = 0xFFFFu;
}  // namespace

std::uint32_t pack_scrub_word(std::uint64_t errors, std::uint64_t traversals) {
  const auto e = static_cast<std::uint32_t>(std::min(errors, kHalfMax));
  const auto t = static_cast<std::uint32_t>(std::min(traversals, kHalfMax));
  return (e << 16) | t;
}

std::array<std::uint32_t, 4> pack_scrub_words(const NocSystem& noc,
                                              TileCoord tile) {
  std::array<std::uint32_t, 4> words{};
  for (std::size_t i = 0; i < kAllDirections.size(); ++i)
    words[i] = pack_scrub_word(
        noc.link_error_count(tile, kAllDirections[i]),
        noc.link_traversal_count(tile, kAllDirections[i]));
  return words;
}

LinkHealthMonitor::LinkHealthMonitor(const TileGrid& grid,
                                     const LinkRetirementPolicy& policy)
    : grid_(grid), policy_(policy), flagged_(grid.tile_count()) {
  require(policy.scrub_period >= 1, "scrub period must be >= 1 cycle");
  require(policy.retire_error_rate > 0.0,
          "retirement threshold must be positive");
}

std::vector<RetiredLink> LinkHealthMonitor::ingest(
    TileCoord tile, const std::array<std::uint32_t, 4>& words,
    std::uint64_t cycle) {
  std::vector<RetiredLink> due;
  if (!grid_.contains(tile)) return due;
  const std::size_t index = grid_.index_of(tile);
  for (std::size_t i = 0; i < kAllDirections.size(); ++i) {
    if (flagged_[index][i]) continue;
    const std::uint64_t errors = words[i] >> 16;
    const std::uint64_t traversals = words[i] & kHalfMax;
    if (traversals < policy_.min_traversals ||
        errors < policy_.min_errors)
      continue;
    if (static_cast<double>(errors) <
        policy_.retire_error_rate * static_cast<double>(traversals))
      continue;
    flagged_[index][i] = true;
    const RetiredLink r{tile, kAllDirections[i], cycle, errors, traversals};
    retired_.push_back(r);
    due.push_back(r);
  }
  return due;
}

std::vector<RetiredLink> LinkHealthMonitor::scrub(const NocSystem& noc) {
  std::vector<RetiredLink> due;
  grid_.for_each([&](TileCoord tile) {
    const auto links = ingest(tile, pack_scrub_words(noc, tile), noc.now());
    due.insert(due.end(), links.begin(), links.end());
  });
  return due;
}

bool LinkHealthMonitor::is_retired(TileCoord tile, Direction d) const {
  if (!grid_.contains(tile)) return false;
  return flagged_[grid_.index_of(tile)][static_cast<std::size_t>(d)];
}

}  // namespace wsp::noc
