// Link-level data integrity: the voltage-aware BER channel and the CRC-8
// hop protection carved out of the 100-bit packet budget.
//
// The paper assumes the fine-pitch Si-IF links (Secs. IV/VI) are
// error-free.  Real waferscale links are not: the eye margin of a
// source-synchronous link collapses as the local supply sags, so a tile
// whose LDO is merely *marginal* — still regulating, but low in the band —
// becomes error-prone long before it fails hard.  This header models that
// coupling:
//
//   * `ber_from_voltage` maps the weaker endpoint's regulated supply to a
//     bit-error rate on a log-linear curve (the standard eye-margin model:
//     every `volts_per_decade` of lost margin costs one decade of BER).
//   * `LinkBerMap` holds the per-directed-link BER derived from a PDN
//     solve; it is re-derived whenever the plane is re-solved, so a
//     brownout raises BER *before* the degradation layer kills tiles.
//   * CRC-8 (poly 0x07) over the packet image gives hop-level detection.
//     The 100-bit budget pays for it by narrowing the request address
//     field: 8 CRC bits + a 4-bit link sequence number (see packet.hpp).
//     A corrupted packet escapes the check with probability ~2^-8; the
//     simulator models detection probabilistically (equivalent in
//     distribution to flipping wire bits and re-running the polynomial,
//     at a fraction of the cost) and counts the escapes it knows about.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "wsp/common/geometry.hpp"
#include "wsp/noc/packet.hpp"

namespace wsp::noc {

/// Voltage -> BER curve of one Si-IF link endpoint (eye-margin model).
struct BerParams {
  double nominal_v = 1.1;          ///< LDO target output: BER floor here
  double floor_ber = 1e-12;        ///< BER at or above nominal supply
  double volts_per_decade = 0.025; ///< margin lost per decade of BER
  double max_ber = 0.05;           ///< channel is unusable past this
};

/// BER for a link whose weaker endpoint sees regulated supply `v`.
double ber_from_voltage(double v, const BerParams& params = {});

/// Probability that a `kPacketWireBits`-bit packet takes at least one bit
/// error crossing a link with bit-error rate `ber`.
double packet_error_probability(double ber);

/// Probability a corrupted packet slips past the CRC-8 check (the
/// fraction of random error patterns that alias to a valid codeword).
inline constexpr double kCrcEscapeProbability = 1.0 / 256.0;

/// CRC-8, polynomial x^8+x^2+x+1 (0x07), init 0, MSB first.  Check value
/// over "123456789" is 0xF4.
std::uint8_t crc8(const std::uint8_t* data, std::size_t size);

/// CRC-8 over the packet's wire image (coordinates, type, payload) — the
/// field a router verifies at every hop.
std::uint8_t packet_crc(const Packet& packet);

/// Per-directed-link bit-error rate, keyed like LinkFaultSet by
/// (source tile, outgoing direction).  Links leaving the array carry no
/// BER.  Default-constructed maps (and maps fresh from a grid) are
/// error-free: the channel model is pay-for-what-you-use.
class LinkBerMap {
 public:
  LinkBerMap() : grid_(1, 1) {}
  explicit LinkBerMap(const TileGrid& grid)
      : grid_(grid),
        ber_(grid.tile_count() * 4, 0.0),
        pkt_p_(grid.tile_count() * 4, 0.0) {}

  /// Every in-array link at the same BER (benchmark sweeps).
  static LinkBerMap uniform(const TileGrid& grid, double ber);

  /// Derives each link's BER from the *weaker* endpoint's regulated
  /// voltage (`v_out` indexed by TileGrid::index_of): the low-supply side
  /// limits both its transmit swing and its receive sensing margin.
  static LinkBerMap from_tile_voltages(const TileGrid& grid,
                                       const std::vector<double>& v_out,
                                       const BerParams& params = {});

  const TileGrid& grid() const { return grid_; }

  double ber(TileCoord from, Direction d) const {
    if (ber_.empty() || !grid_.contains(from)) return 0.0;
    return ber_[index_of(from, d)];
  }

  /// Per-traversal packet corruption probability (precomputed).
  double packet_error_prob(TileCoord from, Direction d) const {
    if (pkt_p_.empty() || !grid_.contains(from)) return 0.0;
    return pkt_p_[index_of(from, d)];
  }
  double packet_error_prob_at(std::size_t tile, std::size_t dir) const {
    return pkt_p_.empty() ? 0.0 : pkt_p_[tile * 4 + dir];
  }

  /// Raises/sets one link's BER (marginal-link fault injection).  Links
  /// that leave the array are ignored.
  void set_ber(TileCoord from, Direction d, double ber);

  /// True when every link is error-free — lets the mesh skip channel
  /// sampling (and its RNG draws) entirely.
  bool error_free() const { return !any_; }

 private:
  TileGrid grid_;
  std::vector<double> ber_;    ///< tile-major, 4 directions per tile
  std::vector<double> pkt_p_;  ///< 1-(1-ber)^kPacketWireBits, same keying
  bool any_ = false;

  std::size_t index_of(TileCoord c, Direction d) const {
    return grid_.index_of(c) * 4 + static_cast<std::size_t>(d);
  }
};

/// Knobs of the hop-level integrity protocol (shared by both meshes).
struct LinkIntegrityOptions {
  /// Master switch: BER channel sampling + CRC check at every hop.  Off
  /// reproduces the pre-integrity simulator bit for bit.
  bool enabled = false;
  /// Hop-level NACK/retransmit.  When false, a detected CRC error drops
  /// the packet at the receiving hop and recovery falls back to the
  /// end-to-end timeout — the ablation arm of the BER sweep.
  bool retransmit = true;
  /// Bounded retransmit budget per link traversal; a packet that exhausts
  /// it is dropped (counted in link_error_drops) and recovers end to end.
  int max_retransmits = 4;
  /// Seed of the channel-sampling RNG stream (independent of traffic).
  std::uint64_t seed = 0xB17E5;
  BerParams ber{};
};

}  // namespace wsp::noc
