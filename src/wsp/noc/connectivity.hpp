// Waferscale network connectivity under faults — the Fig. 6 analysis.
//
// Question (Sec. VI): if a handful of the 2048 chiplets fail, what fraction
// of source/destination tile pairs lose their route?  With a single DoR
// network every pair has exactly one path; the paper's Monte Carlo shows
// >12 % of pairs disconnected at just 5 faulty chiplets.  With two
// independent DoR networks (X-Y and Y-X) most pairs have two tile-disjoint
// paths and the number collapses to <2 %; the remaining casualties are
// mostly same-row/same-column pairs, whose two paths coincide.
//
// `ConnectivityAnalyzer` answers pair-connectivity queries in O(1) after an
// O(tiles) preprocessing pass: a DoR path is healthy iff its row segment
// and its column segment each lie inside a single maximal healthy run of
// that row/column, so two run-id lookups decide each path.
#pragma once

#include <cstddef>
#include <vector>

#include "wsp/common/fault_map.hpp"
#include "wsp/common/rng.hpp"
#include "wsp/noc/routing.hpp"

namespace wsp::noc {

/// O(1) pair-connectivity queries over a fixed fault map.
class ConnectivityAnalyzer {
 public:
  explicit ConnectivityAnalyzer(const FaultMap& faults);

  bool xy_connected(TileCoord src, TileCoord dst) const;
  bool yx_connected(TileCoord src, TileCoord dst) const;
  bool dual_connected(TileCoord src, TileCoord dst) const {
    return xy_connected(src, dst) || yx_connected(src, dst);
  }

  const FaultMap& faults() const { return faults_; }

 private:
  FaultMap faults_;
  int width_;
  int height_;
  // Maximal healthy-run ids; -1 on faulty tiles.  Two tiles in the same
  // row (column) are joined by a healthy straight segment iff their run
  // ids match.
  std::vector<int> row_run_;  // indexed y*width+x
  std::vector<int> col_run_;  // indexed x*height+y

  int row_run(TileCoord c) const { return row_run_[static_cast<std::size_t>(c.y) * width_ + c.x]; }
  int col_run(TileCoord c) const { return col_run_[static_cast<std::size_t>(c.x) * height_ + c.y]; }
};

/// Disconnection census over all ordered pairs of distinct healthy tiles.
struct DisconnectionStats {
  std::size_t healthy_pairs = 0;
  std::size_t disconnected_single_xy = 0;  ///< pairs with no healthy XY path
  /// Pairs whose round trip fails on a single XY network: with one
  /// network the response B->A takes a *different* L-shaped path than the
  /// request A->B, so both must be healthy.  (With two networks the
  /// response rides the complement over the same tiles, so the dual
  /// figure needs no such correction — one reason the paper's two-network
  /// scheme wins by even more than one-way path counting suggests.)
  std::size_t disconnected_single_roundtrip = 0;
  std::size_t disconnected_dual = 0;       ///< pairs with neither path
  /// Disconnected pairs that are in the same row or column (the paper notes
  /// these dominate the dual-network residue).
  std::size_t disconnected_dual_same_row_col = 0;

  double single_pct() const {
    return healthy_pairs ? 100.0 * disconnected_single_xy / healthy_pairs : 0.0;
  }
  double single_roundtrip_pct() const {
    return healthy_pairs
               ? 100.0 * disconnected_single_roundtrip / healthy_pairs
               : 0.0;
  }
  double dual_pct() const {
    return healthy_pairs ? 100.0 * disconnected_dual / healthy_pairs : 0.0;
  }
};

/// Exhaustive census for one fault map.
DisconnectionStats census_disconnection(const FaultMap& faults);

/// One point of the Fig. 6 curve.
struct Fig6Point {
  std::size_t fault_count = 0;
  double mean_single_pct = 0.0;            ///< one DoR network, one-way
  double mean_single_roundtrip_pct = 0.0;  ///< one DoR network, round trip
  double mean_dual_pct = 0.0;              ///< two DoR networks
};

/// Monte Carlo sweep reproducing Fig. 6: for each entry of `fault_counts`,
/// averages the disconnection percentages over `trials` random fault maps.
std::vector<Fig6Point> fig6_sweep(const TileGrid& grid,
                                  const std::vector<std::size_t>& fault_counts,
                                  int trials, Rng& rng);

}  // namespace wsp::noc
