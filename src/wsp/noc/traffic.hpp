// Synthetic traffic patterns for NoC evaluation.
//
// The paper evaluates the network design qualitatively (resiliency) and at
// the system level (graph workloads on the FPGA emulation); these standard
// patterns drive the cycle-level simulator for the latency/throughput
// benches and for the 1-network-vs-2-network ablation.
#pragma once

#include <cstdint>
#include <vector>

#include "wsp/common/fault_map.hpp"
#include "wsp/common/rng.hpp"
#include "wsp/noc/noc_system.hpp"

namespace wsp::noc {

enum class TrafficPattern : std::uint8_t {
  UniformRandom,  ///< destination uniform over healthy tiles
  Transpose,      ///< (x, y) -> (y, x)
  BitComplement,  ///< (x, y) -> (W-1-x, H-1-y)
  Hotspot,        ///< a fraction of traffic targets one hot tile
  NearNeighbor,   ///< destination uniform over tiles within distance 2
};

const char* to_string(TrafficPattern p);

struct TrafficConfig {
  TrafficPattern pattern = TrafficPattern::UniformRandom;
  /// Probability per healthy tile per cycle of issuing one transaction.
  double injection_rate = 0.02;
  double hotspot_fraction = 0.3;  ///< for Hotspot: share aimed at the spot
  TileCoord hotspot{0, 0};
};

struct TrafficReport {
  std::uint64_t cycles = 0;
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t unreachable = 0;
  /// Round-trip latency samples measured (transactions issued inside the
  /// window); the latency fields below summarise exactly these.
  std::uint64_t latency_samples = 0;
  double mean_latency = 0.0;
  std::uint64_t p50_latency = 0;  ///< round-trip latency percentiles
  std::uint64_t p95_latency = 0;
  std::uint64_t p99_latency = 0;
  std::uint64_t max_latency = 0;
  double throughput = 0.0;  ///< completed transactions per cycle
  double offered_load = 0.0;  ///< issued transactions per cycle
};

/// Fills the latency fields of `report` from `latencies` (consumed):
/// mean over the sample count, nearest-rank p50/p95/p99
/// (rank = max(1, ceil(p*n)) — exact at every n, including n = 1 and 2),
/// and max.  Zeroes all latency fields when the sample set is empty.
void finalize_latencies(TrafficReport& report,
                        std::vector<std::uint64_t> latencies);

/// Runs `warm + measured` cycles of randomised traffic against `noc` and
/// reports steady-state statistics over the measured window (plus a drain
/// phase so every issued transaction completes).
TrafficReport run_traffic(NocSystem& noc, const TrafficConfig& config,
                          std::uint64_t cycles, Rng& rng);

/// Picks a destination for `src` under `config`.
TileCoord pick_destination(const FaultMap& faults, TileCoord src,
                           const TrafficConfig& config, Rng& rng);

}  // namespace wsp::noc
