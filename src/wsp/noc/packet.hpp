// Network packet (Sec. VI).
//
// The inter-tile links are 400 bits wide per tile side, divided into four
// parallel buses: ingress + egress for each of the two DoR networks.  A
// whole packet is 100 bits, exactly one bus width, so a packet moves one
// hop per cycle — there is no flit segmentation in this design, which keeps
// the router trivial (a key "keep it simple enough for 3-4 grad students"
// decision of the paper).
//
// Link-integrity budget (wsp/noc/link_integrity.hpp): 12 of the 100 bits
// are an integrity field — a CRC-8 checked at every hop plus a 4-bit
// per-link sequence number for the NACK/retransmit protocol — paid for by
// narrowing the request address field (the per-tile address window shrinks
// accordingly; responses lose spare payload bits).  The simulator keeps
// its bookkeeping fields full width and models the integrity field's
// *effect* (hop detection, per-link ordering, bounded retransmission)
// rather than its bit packing.
#pragma once

#include <cstdint>

#include "wsp/common/geometry.hpp"

namespace wsp::noc {

/// Which DoR network a packet travels on.
enum class NetworkKind : std::uint8_t {
  XY = 0,  ///< route X first, then Y
  YX = 1,  ///< route Y first, then X
};

constexpr NetworkKind complementary(NetworkKind k) {
  return k == NetworkKind::XY ? NetworkKind::YX : NetworkKind::XY;
}

const char* to_string(NetworkKind k);

/// Wire width of one packet — one full bus, one hop per cycle.
inline constexpr int kPacketWireBits = 100;

/// Memory-style transaction types carried by the mesh.  Requests and their
/// responses always travel on complementary networks (baked into the router
/// hardware) so a request/response pair traverses the same physical tiles
/// and deadlock between the two message classes is impossible.
enum class PacketType : std::uint8_t {
  ReadRequest = 0,
  WriteRequest = 1,
  ReadResponse = 2,
  WriteAck = 3,
};

constexpr bool is_request(PacketType t) {
  return t == PacketType::ReadRequest || t == PacketType::WriteRequest;
}

/// One 100-bit packet.  The simulator carries bookkeeping fields (ids,
/// timestamps) that the hardware wouldn't, purely for measurement.
struct Packet {
  TileCoord src;
  TileCoord dst;
  PacketType type = PacketType::ReadRequest;
  NetworkKind network = NetworkKind::XY;
  std::uint64_t payload = 0;   ///< 64-bit data payload
  std::uint32_t address = 0;   ///< target address (bank/offset encoding)

  // --- simulator bookkeeping (not part of the 100 wire bits) ---
  std::uint64_t id = 0;            ///< unique per injected packet
  std::uint64_t request_id = 0;    ///< for responses: id of the request
  std::uint64_t injected_cycle = 0;
  std::uint64_t delivered_cycle = 0;
  std::uint32_t attempt = 0;       ///< retry generation (0 = first send)
};

}  // namespace wsp::noc
