// Chaos harness for the fleet dispatcher: seeded fault injection into the
// dispatcher's *own* worker processes.
//
// The paper's thesis — a 2048-chiplet wafer keeps computing through faulty
// links and chiplets — has to hold one level up: the simulation campaign
// must keep computing through dead, hung, and slow workers.  The chaos
// engine makes that a testable property instead of an operational anecdote
// by injecting the three canonical worker failures from inside the
// supervision loop:
//
//   * Kill   — SIGKILL, the node-crash / OOM-killer case.  No flush, no
//              handler; only the crash-safe shard snapshot survives.
//   * Stall  — SIGSTOP, the livelock / NFS-hang / cgroup-freeze case.  The
//              worker is alive to the kernel but its heartbeat payload
//              freezes; the dispatcher must notice and escalate.
//   * Resume — SIGCONT after a configured stall, the transient-hiccup case
//              (the worker comes back and should be allowed to finish).
//
// Two trigger families: probabilistic per-tick draws from a seeded
// wsp::Rng, and deterministic "first attempt, after N completed trials"
// triggers that guarantee a mid-shard injection regardless of machine
// speed — a fast box must not dodge the test by finishing before the dice
// land.  The acceptance property lives in tests/fleet_test.cpp and
// tools/fleet_chaos_gate.py: any chaos schedule yields a merged report
// byte-identical to the undisturbed single-process run for every
// non-quarantined shard.
#pragma once

#include <cstdint>
#include <set>

#include "wsp/common/rng.hpp"

namespace wsp::fleet {

/// What the chaos engine decided to do to one worker at one tick.
enum class ChaosAction : std::uint8_t { None, Kill, Stall, Resume };

struct FleetChaosOptions {
  bool enabled = false;
  std::uint64_t seed = 1;
  /// Per supervision tick, per live (unstalled) worker: SIGKILL draw.
  double kill_probability = 0.0;
  /// Per supervision tick, per live (unstalled) worker: SIGSTOP draw.
  double stall_probability = 0.0;
  /// Seconds a stalled worker stays stopped before chaos SIGCONTs it;
  /// <= 0 never resumes, so the heartbeat deadline must fire and the
  /// dispatcher's SIGCONT+SIGTERM / SIGKILL escalation is exercised.
  double stall_resume_s = 0.0;
  /// Deterministic trigger: SIGKILL each shard's attempt-1 worker as soon
  /// as its heartbeat reports >= this many completed trials (0 = off).
  /// The retry then resumes from the snapshot and re-does only the tail.
  std::uint64_t first_attempt_kill_after = 0;
  /// Same deterministic trigger with SIGSTOP (0 = off).  Combined with
  /// stall_resume_s <= 0 this forces the escalation path on every shard.
  std::uint64_t first_attempt_stall_after = 0;
  /// Upper bound on probabilistically injected events, so a hot RNG cannot
  /// grind a campaign through its whole retry budget.  Deterministic
  /// triggers are exempt (they fire exactly once per shard by design).
  int max_events = 64;
};

struct ChaosStats {
  int kills = 0;    ///< SIGKILLs injected
  int stalls = 0;   ///< SIGSTOPs injected
  int resumes = 0;  ///< SIGCONTs injected
};

/// Seeded decision engine, queried once per supervision tick per live
/// worker.  All randomness flows from one wsp::Rng, so a chaos schedule is
/// reproducible given the same seed and the same query sequence; the
/// query sequence itself is wall-clock dependent, which is exactly the
/// point — the *output* of the campaign must be invariant anyway.
class ChaosEngine {
 public:
  explicit ChaosEngine(const FleetChaosOptions& options)
      : options_(options), rng_(options.seed) {}

  /// Decision for one worker: `stalled_for_s` is how long it has been
  /// SIGSTOPped (0 when running).  The dispatcher applies the signal.
  ChaosAction decide(int shard, int attempt, std::uint64_t completed,
                     bool stalled, double stalled_for_s);

  const ChaosStats& stats() const { return stats_; }

 private:
  FleetChaosOptions options_;
  Rng rng_;
  ChaosStats stats_;
  int events_ = 0;
  std::set<int> deterministically_killed_;
  std::set<int> deterministically_stalled_;
};

}  // namespace wsp::fleet
