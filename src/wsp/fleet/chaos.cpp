#include "wsp/fleet/chaos.hpp"

namespace wsp::fleet {

ChaosAction ChaosEngine::decide(int shard, int attempt,
                                std::uint64_t completed, bool stalled,
                                double stalled_for_s) {
  if (!options_.enabled) return ChaosAction::None;

  if (stalled) {
    if (options_.stall_resume_s > 0.0 &&
        stalled_for_s >= options_.stall_resume_s) {
      ++stats_.resumes;
      return ChaosAction::Resume;
    }
    return ChaosAction::None;  // stay frozen; the dispatcher must act
  }

  // Deterministic mid-shard triggers, first attempt only: the retry has to
  // be able to finish, otherwise every shard would grind to quarantine.
  if (attempt == 1) {
    if (options_.first_attempt_kill_after > 0 &&
        completed >= options_.first_attempt_kill_after &&
        deterministically_killed_.insert(shard).second) {
      ++stats_.kills;
      return ChaosAction::Kill;
    }
    if (options_.first_attempt_stall_after > 0 &&
        completed >= options_.first_attempt_stall_after &&
        deterministically_stalled_.insert(shard).second) {
      ++stats_.stalls;
      return ChaosAction::Stall;
    }
  }

  if (events_ >= options_.max_events) return ChaosAction::None;
  if (options_.kill_probability > 0.0 &&
      rng_.bernoulli(options_.kill_probability)) {
    ++events_;
    ++stats_.kills;
    return ChaosAction::Kill;
  }
  if (options_.stall_probability > 0.0 &&
      rng_.bernoulli(options_.stall_probability)) {
    ++events_;
    ++stats_.stalls;
    return ChaosAction::Stall;
  }
  return ChaosAction::None;
}

}  // namespace wsp::fleet
