// Fault-tolerant fleet dispatcher: supervised multi-process campaigns.
//
// `wsp::ckpt` made a campaign crash-safe within one process; this module
// makes the *fleet* fail-operational.  A FleetDispatcher splits a
// DegradationCampaign's trial range into shards, forks (and optionally
// execs) one worker process per shard, and treats worker failure as a
// first-class event rather than an operational surprise.  The supervision
// state machine per shard:
//
//            +------------------------------- retry (backoff) ------+
//            v                                                      |
//   Pending --launch--> Running --exit 0 + valid CAMP--> Completed  |
//                          |                                        |
//                          +-- signal death / bad exit / corrupt ---+
//                          |        output / deadline escalation
//                          |
//                          +-- attempts exhausted --> Quarantined (poison)
//
// Liveness is judged from two independent signals: waitpid status (did the
// process die?) and the worker's heartbeat file (is a live process still
// making progress?).  A worker whose heartbeat payload freezes past the
// deadline — SIGSTOPped, deadlocked, NFS-hung — is escalated SIGCONT+
// SIGTERM (cooperative flush, exit 75) and, after a grace period, SIGKILL.
// Every re-dispatch resumes from the shard's crash-safe snapshot, so a
// retry re-does only the tail of the shard, and exponential backoff keeps
// a flapping host from monopolising the queue.
//
// Shards that fail max_attempts times are quarantined as poison: the run
// still terminates, the merged report covers every completed shard in
// trial order, and {shards_quarantined > 0} + a partial-coverage status is
// the honest answer instead of a hang or a silent gap.
//
// Stragglers: once nothing is pending, the slowest running shard can be
// re-issued to an idle slot (its own snapshot/output files).  Whichever
// copy finishes first wins; if both finish, the two CAMP partials must be
// byte-identical — determinism turns speculative duplication into a free
// correctness assertion.
//
// Determinism argument, spelled out once: trial t is a pure function of
// (campaign options, seed + t).  Kills, retries, stalls, duplication and
// shard scheduling change only *which process* computes a trial and *when*
// — never the trial's bytes.  Hence the acceptance property (enforced by
// tests/fleet_test.cpp and tools/fleet_chaos_gate.py): for any chaos
// schedule, the merged report is byte-identical to the undisturbed
// single-process run over all non-quarantined shards.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "wsp/fleet/chaos.hpp"
#include "wsp/fleet/worker.hpp"
#include "wsp/obs/metrics.hpp"
#include "wsp/resilience/campaign.hpp"

namespace wsp::fleet {

/// One shard of the fleet plan: a contiguous trial block.
struct ShardSpec {
  int shard = 0;
  int first = 0;
  int count = 0;
  friend bool operator==(const ShardSpec&, const ShardSpec&) = default;
};

/// How the dispatcher turns a ShardSpec into a running process.
struct WorkerCommand {
  /// Executable to exec in the forked child.  Empty selects in-process
  /// mode: the child calls `entry` and _exits with its return value —
  /// no exec, which is what unit tests want.  In-process children run the
  /// campaign on the calling thread; callers must keep the shared exec
  /// pool single-threaded around the dispatch (fork does not carry worker
  /// threads into the child).
  std::string program;
  /// Fixed argv after the program name, before the generated worker tail
  /// (typically {"--worker"}).
  std::vector<std::string> args;
  /// In-process worker body (fork-only mode).
  std::function<int(const WorkerShardArgs&)> entry;
  /// Optional per-shard argv suffix (exec mode), e.g. {"--poison"} to turn
  /// one shard into a poison shard for the chaos gate.
  std::function<std::vector<std::string>(int shard)> extra_args;
};

struct FleetOptions {
  int trials = 0;
  /// Work-queue policy: explicit shard count, or 0 to derive
  /// ceil(trials / trials_per_shard).
  int shards = 0;
  int trials_per_shard = 4;
  /// Concurrent worker processes (the fleet width).
  int max_workers = 4;
  /// Directory for shard snapshot/heartbeat/output files ("." = cwd).
  std::string work_dir = ".";
  double poll_interval_s = 0.02;
  /// No-heartbeat-progress deadline per worker.  Must exceed the worst
  /// single-trial latency — the heartbeat bumps once per trial.
  double heartbeat_timeout_s = 30.0;
  /// Hard per-attempt wall-clock deadline (0 = none).
  double attempt_deadline_s = 0.0;
  /// Grace between the cooperative SIGTERM and the SIGKILL escalation.
  double term_grace_s = 2.0;
  /// Dispatch attempts per shard before it is quarantined as poison.
  int max_attempts = 3;
  /// Exponential backoff before attempt k+1: base * 2^(k-1), capped.
  double backoff_base_s = 0.1;
  double backoff_cap_s = 5.0;
  /// Straggler re-issue: once nothing is pending, a shard running longer
  /// than straggler_factor x the median completed-attempt wall time (and
  /// at least straggler_min_s) is duplicated once into an idle slot.
  /// <= 0 disables.
  double straggler_factor = 0.0;
  double straggler_min_s = 1.0;
  FleetChaosOptions chaos{};
};

/// Per-attempt backoff delay (attempt is 1-based; attempt 1 has none).
double backoff_delay_s(const FleetOptions& options, int attempt);

/// Terminal record of one shard.
struct ShardOutcome {
  int shard = 0;
  int first = 0;
  int count = 0;
  int attempts = 0;  ///< dispatch attempts consumed (primaries only)
  bool completed = false;
  bool quarantined = false;
  int kills = 0;  ///< dispatcher SIGKILL escalations on this shard
  bool straggler_reissued = false;
  bool duplicate_won = false;  ///< the re-issued copy finished first
};

/// What the fleet produced, complete or degraded.
struct FleetReport {
  /// Merged trial reports from completed shards, in trial order.  Covers
  /// [0, trials) exactly when complete(); otherwise the quarantined
  /// ranges are absent and callers must treat coverage as partial.
  std::vector<resilience::DegradationReport> reports;
  std::vector<ShardOutcome> shards;
  int trials = 0;
  int shards_total = 0;
  int shards_completed = 0;
  int shards_quarantined = 0;
  int retries = 0;       ///< primary re-dispatches beyond first attempts
  int worker_kills = 0;  ///< SIGKILL escalations (hung/stalled workers)
  int stragglers_reissued = 0;
  ChaosStats chaos;
  bool complete() const { return shards_quarantined == 0; }
};

class FleetDispatcher {
 public:
  FleetDispatcher(const resilience::DegradationCampaign& campaign,
                  const FleetOptions& options);

  /// The contiguous-block shard plan (sizes differ by at most one trial).
  std::vector<ShardSpec> plan() const;

  /// Drives every shard to Completed or Quarantined and collects the
  /// merge.  Never hangs: heartbeat deadlines bound each attempt and
  /// max_attempts bounds the retries.  Throws wsp::Error only on
  /// infrastructure failure (fork failure, a straggler byte-compare
  /// mismatch — i.e. a determinism bug — or unreadable completed output);
  /// worker failures are data, not exceptions.
  FleetReport run(const WorkerCommand& command) const;

  const FleetOptions& options() const { return options_; }

 private:
  const resilience::DegradationCampaign& campaign_;
  FleetOptions options_;
};

/// Folds a fleet run into `registry` under the "fleet." namespace:
/// counters {shards_total, shards_completed, shards_quarantined, retries,
/// worker_kills, stragglers_reissued, chaos.{kills,stalls,resumes}}, an
/// attempts-per-shard histogram, and a coverage gauge.
void publish_fleet_metrics(const FleetReport& report,
                           obs::MetricsRegistry& registry);

}  // namespace wsp::fleet
