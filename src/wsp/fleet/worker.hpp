// Fleet worker protocol: the process a dispatcher forks/execs per shard.
//
// A worker owns one contiguous trial range of a DegradationCampaign.  Its
// whole contract is file-shaped, so the dispatcher never needs a pipe or a
// socket:
//
//   * args.ckpt       — crash-safe "CAMP" snapshot, written after every
//                       trial; a re-dispatched attempt resumes from it and
//                       re-does only the tail.
//   * args.heartbeat  — "HBEA" liveness beacon, atomically bumped at start
//                       and at every checkpoint; the dispatcher's only
//                       progress signal.
//   * args.out        — the finished "CAMP" partial, written *last*; its
//                       existence plus exit code 0 means the shard is done.
//
// On SIGTERM (dispatcher preemption) the worker flushes one final snapshot
// at the next trial boundary and exits kWorkerExitPreempted — completed
// trials are never lost.  On SIGKILL nothing runs, and the snapshot on
// disk is the resume point; both paths reproduce the uninterrupted run bit
// for bit because trial t is a pure function of (options, seed + t).
//
// The argv tail produced by worker_argv / consumed by parse_worker_argv is
// the exec-mode wire format; in-process (fork-only) dispatch passes the
// struct directly.
#pragma once

#include <string>
#include <vector>

#include "wsp/resilience/campaign.hpp"

namespace wsp::fleet {

/// Worker exit codes the dispatcher branches on.
inline constexpr int kWorkerExitOk = 0;
inline constexpr int kWorkerExitError = 1;    ///< typed failure, retryable
inline constexpr int kWorkerExitBadArgs = 2;  ///< malformed argv tail
/// Cooperative SIGTERM preemption (EX_TEMPFAIL): the final snapshot is on
/// disk, re-dispatch resumes the tail.
inline constexpr int kWorkerExitPreempted = 75;

/// One shard assignment, as handed to a worker.
struct WorkerShardArgs {
  int shard = 0;         ///< shard index in the fleet plan
  int attempt = 1;       ///< dispatch attempt (1-based)
  int first = 0;         ///< first trial of the range
  int count = 0;         ///< trials in the range
  int total_trials = 0;  ///< trials in the whole campaign
  bool duplicate = false;  ///< straggler re-issue copy (own ckpt/out files)
  std::string out;         ///< finished CAMP partial (written last)
  std::string ckpt;        ///< crash-safe snapshot (resume seam)
  std::string heartbeat;   ///< HBEA liveness beacon
};

/// Serialises `args` into the argv tail a dispatcher appends after the
/// worker command's fixed prefix (e.g. "--worker").
std::vector<std::string> worker_argv(const WorkerShardArgs& args);

/// Parses the tail back.  Strict: an unknown flag, a missing value, or a
/// missing required field throws wsp::Error — a worker launched with a
/// garbled command line must die loudly (kWorkerExitBadArgs), not run the
/// wrong trials.
WorkerShardArgs parse_worker_argv(const std::vector<std::string>& argv);

/// Runs one shard to completion: writes the initial heartbeat, resumes
/// run_trial_range_checkpointed from args.ckpt (checkpoint + heartbeat
/// after every trial, SIGTERM flush armed), then writes the CAMP partial
/// to args.out.  Returns a kWorkerExit* code; never throws.
int run_worker(const resilience::DegradationCampaign& campaign,
               const WorkerShardArgs& args);

}  // namespace wsp::fleet
