#include "wsp/fleet/worker.hpp"

#include <cstdio>
#include <utility>

#include "wsp/ckpt/checkpoint.hpp"
#include "wsp/common/error.hpp"

namespace wsp::fleet {

std::vector<std::string> worker_argv(const WorkerShardArgs& args) {
  std::vector<std::string> argv = {
      "--shard",     std::to_string(args.shard),
      "--attempt",   std::to_string(args.attempt),
      "--first",     std::to_string(args.first),
      "--count",     std::to_string(args.count),
      "--total",     std::to_string(args.total_trials),
      "--out",       args.out,
      "--ckpt",      args.ckpt,
      "--heartbeat", args.heartbeat,
  };
  if (args.duplicate) argv.push_back("--duplicate");
  return argv;
}

WorkerShardArgs parse_worker_argv(const std::vector<std::string>& argv) {
  WorkerShardArgs args;
  bool have_count = false, have_total = false, have_out = false;
  const auto to_int = [](const std::string& flag, const std::string& text) {
    std::size_t used = 0;
    int v = 0;
    try {
      v = std::stoi(text, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    require(used == text.size() && !text.empty(),
            "worker argv: " + flag + " wants an integer, got '" + text + "'");
    return v;
  };
  for (std::size_t i = 0; i < argv.size(); ++i) {
    const std::string& arg = argv[i];
    if (arg == "--duplicate") {
      args.duplicate = true;
      continue;
    }
    require(i + 1 < argv.size(), "worker argv: " + arg + " wants a value");
    const std::string& value = argv[++i];
    if (arg == "--shard") args.shard = to_int(arg, value);
    else if (arg == "--attempt") args.attempt = to_int(arg, value);
    else if (arg == "--first") args.first = to_int(arg, value);
    else if (arg == "--count") { args.count = to_int(arg, value); have_count = true; }
    else if (arg == "--total") { args.total_trials = to_int(arg, value); have_total = true; }
    else if (arg == "--out") { args.out = value; have_out = true; }
    else if (arg == "--ckpt") args.ckpt = value;
    else if (arg == "--heartbeat") args.heartbeat = value;
    else throw Error("worker argv: unknown flag " + arg);
  }
  require(have_count && have_total && have_out,
          "worker argv: --count, --total and --out are required");
  require(!args.ckpt.empty() && !args.heartbeat.empty(),
          "worker argv: --ckpt and --heartbeat are required");
  return args;
}

int run_worker(const resilience::DegradationCampaign& campaign,
               const WorkerShardArgs& args) {
  try {
    require(args.count >= 1 && args.first >= 0 &&
                args.first + args.count <= args.total_trials,
            "worker shard range is malformed");
    // Beacon sequence: strictly increasing within this attempt, so the
    // dispatcher sees progress even across a resume that loads every trial
    // from the snapshot without running anything new.
    std::uint64_t sequence = 0;
    const auto beat = [&](std::uint64_t completed) {
      ckpt::save_heartbeat(args.heartbeat,
                           {static_cast<std::uint32_t>(args.shard),
                            static_cast<std::uint32_t>(args.attempt),
                            completed, sequence++});
    };
    beat(0);  // alive before the first (possibly long) trial

    resilience::CampaignCheckpointOptions ck;
    ck.path = args.ckpt;
    ck.every_trials = 1;
    ck.flush_on_sigterm = true;
    ck.after_checkpoint = [&](int completed) {
      beat(static_cast<std::uint64_t>(completed));
    };
    std::vector<resilience::DegradationReport> reports =
        campaign.run_trial_range_checkpointed(args.first, args.count,
                                              args.total_trials, ck);
    resilience::save_campaign_reports(
        args.out, {campaign.options_fingerprint(), args.total_trials,
                   args.first, std::move(reports)});
    return kWorkerExitOk;
  } catch (const resilience::CampaignPreempted&) {
    return kWorkerExitPreempted;  // snapshot flushed; dispatcher resumes us
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fleet worker shard %d attempt %d: %s\n", args.shard,
                 args.attempt, e.what());
    return kWorkerExitError;
  }
}

}  // namespace wsp::fleet
