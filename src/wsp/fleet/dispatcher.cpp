#include "wsp/fleet/dispatcher.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <utility>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "wsp/ckpt/checkpoint.hpp"
#include "wsp/common/error.hpp"

namespace wsp::fleet {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

/// One live worker process under supervision.
struct LiveWorker {
  pid_t pid = -1;
  int shard = 0;
  int attempt = 1;
  bool duplicate = false;
  WorkerShardArgs args;
  Clock::time_point started;
  Clock::time_point last_progress;  ///< last heartbeat advance (or spawn)
  bool beat_seen = false;
  std::uint64_t last_sequence = 0;
  std::uint64_t completed = 0;  ///< trials per the latest heartbeat
  bool stalled = false;         ///< chaos SIGSTOP outstanding
  Clock::time_point stall_started;
  bool term_sent = false;  ///< escalation started
  Clock::time_point term_time;
  bool hard_killed = false;  ///< SIGKILL escalation delivered
};

enum class ShardState { Pending, Running, Completed, Quarantined };

/// Supervision bookkeeping for one shard.
struct ShardCtl {
  ShardSpec spec;
  ShardState state = ShardState::Pending;
  Clock::time_point eligible_at;  ///< backoff gate for the next launch
  int attempts = 0;               ///< primary attempts launched
  int kills = 0;                  ///< SIGKILL escalations on this shard
  bool duplicate_used = false;    ///< one straggler re-issue max
  bool straggler_reissued = false;
  bool duplicate_won = false;
  std::string winner_out;           ///< CAMP path of the first finisher
  resilience::CampaignReportsFile result;  ///< loaded winning partial
  int live_copies = 0;
};

}  // namespace

double backoff_delay_s(const FleetOptions& options, int attempt) {
  if (attempt <= 1) return 0.0;
  double delay = options.backoff_base_s;
  for (int i = 2; i < attempt; ++i) delay *= 2.0;
  return std::min(delay, options.backoff_cap_s);
}

FleetDispatcher::FleetDispatcher(const resilience::DegradationCampaign& campaign,
                                 const FleetOptions& options)
    : campaign_(campaign), options_(options) {
  require(options_.trials >= 1, "fleet needs at least one trial");
  require(options_.shards >= 0, "shard count must be non-negative");
  require(options_.shards > 0 || options_.trials_per_shard >= 1,
          "trials_per_shard must be >= 1 when shards is derived");
  require(options_.max_workers >= 1, "fleet needs at least one worker slot");
  require(options_.max_attempts >= 1, "max_attempts must be >= 1");
  require(options_.poll_interval_s > 0.0, "poll interval must be positive");
  require(options_.heartbeat_timeout_s > 0.0,
          "heartbeat timeout must be positive");
  require(options_.term_grace_s >= 0.0, "term grace must be non-negative");
  require(options_.backoff_base_s >= 0.0 && options_.backoff_cap_s >= 0.0,
          "backoff must be non-negative");
  require(!options_.work_dir.empty(), "work_dir must be set");
}

std::vector<ShardSpec> FleetDispatcher::plan() const {
  const int trials = options_.trials;
  int shards = options_.shards > 0
                   ? options_.shards
                   : (trials + options_.trials_per_shard - 1) /
                         options_.trials_per_shard;
  shards = std::min(std::max(shards, 1), trials);  // no empty shards
  std::vector<ShardSpec> plan(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    const int first = i * trials / shards;
    const int last = (i + 1) * trials / shards;
    plan[static_cast<std::size_t>(i)] = {i, first, last - first};
  }
  return plan;
}

FleetReport FleetDispatcher::run(const WorkerCommand& command) const {
  require(!command.program.empty() || command.entry,
          "WorkerCommand needs a program to exec or an in-process entry");
  const std::vector<ShardSpec> shards = plan();
  const std::uint32_t fp = campaign_.options_fingerprint();
  const Clock::time_point t0 = Clock::now();

  std::vector<ShardCtl> ctl(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    ctl[i].spec = shards[i];
    ctl[i].eligible_at = t0;
  }

  const auto shard_path = [&](int shard, bool duplicate, const char* suffix) {
    return options_.work_dir + "/fleet_shard" + std::to_string(shard) +
           (duplicate ? ".dup" : "") + suffix;
  };
  const auto make_args = [&](const ShardCtl& sc, int attempt, bool duplicate) {
    WorkerShardArgs args;
    args.shard = sc.spec.shard;
    args.attempt = attempt;
    args.first = sc.spec.first;
    args.count = sc.spec.count;
    args.total_trials = options_.trials;
    args.duplicate = duplicate;
    args.out = shard_path(sc.spec.shard, duplicate, ".wsp");
    args.ckpt = shard_path(sc.spec.shard, duplicate, ".ckpt");
    args.heartbeat = shard_path(sc.spec.shard, duplicate, ".hb");
    return args;
  };

  const auto spawn = [&](const WorkerShardArgs& args) -> pid_t {
    const pid_t pid = ::fork();
    require(pid >= 0, "fleet: fork failed");
    if (pid != 0) return pid;
    // --- child ---
    if (command.program.empty()) {
      int code = kWorkerExitError;
      try {
        code = command.entry(args);
      } catch (...) {
      }
      _exit(code);  // no atexit/flush: mirror a real worker process exit
    }
    std::vector<std::string> argv_text;
    argv_text.push_back(command.program);
    argv_text.insert(argv_text.end(), command.args.begin(),
                     command.args.end());
    const std::vector<std::string> tail = worker_argv(args);
    argv_text.insert(argv_text.end(), tail.begin(), tail.end());
    if (command.extra_args)
      for (const std::string& extra : command.extra_args(args.shard))
        argv_text.push_back(extra);
    std::vector<char*> argv;
    argv.reserve(argv_text.size() + 1);
    for (std::string& s : argv_text) argv.push_back(s.data());
    argv.push_back(nullptr);
    ::execv(command.program.c_str(), argv.data());
    std::perror("fleet: execv");
    _exit(127);
  };

  // Validates a finished worker's CAMP partial: wrong fingerprint, wrong
  // range, or unreadable bytes all demote "exit 0" to a failed attempt —
  // the dispatcher believes files, not exit codes.
  const auto load_valid_output = [&](const WorkerShardArgs& args,
                                     const ShardSpec& spec,
                                     resilience::CampaignReportsFile* out) {
    try {
      resilience::CampaignReportsFile file =
          resilience::load_campaign_reports(args.out);
      if (file.fingerprint != fp || file.first_trial != spec.first ||
          static_cast<int>(file.reports.size()) != spec.count ||
          file.total_trials != options_.trials)
        return false;
      *out = std::move(file);
      return true;
    } catch (const ckpt::Error&) {
      return false;
    }
  };

  std::vector<LiveWorker> live;
  int worker_kills = 0;
  int stragglers_reissued = 0;
  ChaosEngine chaos(options_.chaos);
  std::vector<double> attempt_durations;  // completed attempts (stragglers)

  // Whatever throws below, never leak worker processes.
  const auto kill_everything = [&]() noexcept {
    for (LiveWorker& w : live) {
      ::kill(w.pid, SIGCONT);
      ::kill(w.pid, SIGKILL);
      ::waitpid(w.pid, nullptr, 0);
    }
    live.clear();
  };

  try {
    int terminal = 0;
    while (terminal < static_cast<int>(ctl.size())) {
      const Clock::time_point now = Clock::now();

      // --- 1. reap exits -------------------------------------------------
      for (std::size_t i = 0; i < live.size();) {
        int status = 0;
        const pid_t r = ::waitpid(live[i].pid, &status, WNOHANG);
        if (r == 0) {
          ++i;
          continue;
        }
        const LiveWorker w = live[i];
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
        ShardCtl& sc = ctl[static_cast<std::size_t>(w.shard)];
        --sc.live_copies;

        resilience::CampaignReportsFile loaded;
        const bool success = r == w.pid && WIFEXITED(status) &&
                             WEXITSTATUS(status) == kWorkerExitOk &&
                             load_valid_output(w.args, sc.spec, &loaded);
        if (success) {
          attempt_durations.push_back(seconds_between(w.started, now));
          if (sc.state == ShardState::Completed) {
            // Both copies of a re-issued shard finished: determinism says
            // their partials must match byte for byte.  A mismatch is a
            // library bug, not a worker failure — fail the whole run.
            require(ckpt::read_file(sc.winner_out) ==
                        ckpt::read_file(w.args.out),
                    "fleet: duplicate of shard " +
                        std::to_string(w.shard) +
                        " produced different bytes — determinism violation");
          } else {
            sc.state = ShardState::Completed;
            sc.winner_out = w.args.out;
            sc.result = std::move(loaded);
            sc.duplicate_won = w.duplicate;
            ++terminal;
            // A slower copy still running is now redundant; reclaim the
            // slot (bookkeeping kill, not a supervision escalation).
            for (LiveWorker& other : live)
              if (other.shard == w.shard) {
                ::kill(other.pid, SIGCONT);
                ::kill(other.pid, SIGKILL);
              }
          }
        } else if (sc.state != ShardState::Completed) {
          // Failed attempt: signal death (chaos or escalation), non-zero
          // exit, cooperative preemption, or a corrupt/missing partial.
          if (sc.live_copies > 0) {
            // The other copy is still computing the same trials; let it.
          } else if (sc.attempts < options_.max_attempts) {
            sc.state = ShardState::Pending;
            sc.eligible_at =
                now + std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double>(
                              backoff_delay_s(options_, sc.attempts + 1)));
          } else {
            sc.state = ShardState::Quarantined;  // poison shard
            ++terminal;
          }
        }
      }

      // --- 2. heartbeat supervision, chaos, escalation -------------------
      for (LiveWorker& w : live) {
        ShardCtl& sc = ctl[static_cast<std::size_t>(w.shard)];
        if (sc.state == ShardState::Completed) continue;  // dying loser

        try {
          const ckpt::Heartbeat hb = ckpt::load_heartbeat(w.args.heartbeat);
          // Only this attempt's beacon counts: the file outlives attempts,
          // and crediting a dead attempt's last beat would mask a worker
          // that hung before its first write.
          if (hb.shard == static_cast<std::uint32_t>(w.shard) &&
              hb.attempt == static_cast<std::uint32_t>(w.attempt) &&
              (!w.beat_seen || hb.sequence > w.last_sequence)) {
            w.beat_seen = true;
            w.last_sequence = hb.sequence;
            w.completed = hb.completed;
            w.last_progress = now;
          }
        } catch (const ckpt::Error&) {
          // Not written yet (or mid-replace): spawn time anchors the clock.
        }

        if (options_.chaos.enabled && !w.term_sent) {
          const double stalled_for =
              w.stalled ? seconds_between(w.stall_started, now) : 0.0;
          switch (chaos.decide(w.shard, w.attempt, w.completed, w.stalled,
                               stalled_for)) {
            case ChaosAction::Kill:
              ::kill(w.pid, SIGKILL);
              break;
            case ChaosAction::Stall:
              ::kill(w.pid, SIGSTOP);
              w.stalled = true;
              w.stall_started = now;
              break;
            case ChaosAction::Resume:
              ::kill(w.pid, SIGCONT);
              w.stalled = false;
              break;
            case ChaosAction::None:
              break;
          }
        }

        const bool overdue =
            seconds_between(w.last_progress, now) >
                options_.heartbeat_timeout_s ||
            (options_.attempt_deadline_s > 0.0 &&
             seconds_between(w.started, now) > options_.attempt_deadline_s);
        if (overdue && !w.term_sent) {
          // SIGCONT first: a SIGSTOPped worker cannot run its flush-on-
          // SIGTERM path while frozen.
          ::kill(w.pid, SIGCONT);
          ::kill(w.pid, SIGTERM);
          w.stalled = false;
          w.term_sent = true;
          w.term_time = now;
        } else if (w.term_sent && !w.hard_killed &&
                   seconds_between(w.term_time, now) >
                       options_.term_grace_s) {
          ::kill(w.pid, SIGKILL);
          w.hard_killed = true;
          ++worker_kills;
          ++sc.kills;
        }
      }

      // --- 3. launch: fill idle slots from the work queue ----------------
      while (static_cast<int>(live.size()) < options_.max_workers) {
        ShardCtl* next = nullptr;
        for (ShardCtl& sc : ctl)
          if (sc.state == ShardState::Pending && sc.eligible_at <= now &&
              (!next || sc.spec.shard < next->spec.shard))
            next = &sc;
        if (!next) break;
        ++next->attempts;
        LiveWorker w;
        w.shard = next->spec.shard;
        w.attempt = next->attempts;
        w.args = make_args(*next, next->attempts, /*duplicate=*/false);
        w.pid = spawn(w.args);
        w.started = now;
        w.last_progress = now;
        live.push_back(std::move(w));
        next->state = ShardState::Running;
        ++next->live_copies;
      }

      // --- 4. straggler re-issue -----------------------------------------
      if (options_.straggler_factor > 0.0 && !attempt_durations.empty() &&
          static_cast<int>(live.size()) < options_.max_workers) {
        bool any_pending = false;
        for (const ShardCtl& sc : ctl)
          if (sc.state == ShardState::Pending) any_pending = true;
        if (!any_pending) {
          std::vector<double> durations = attempt_durations;
          std::nth_element(durations.begin(),
                           durations.begin() +
                               static_cast<std::ptrdiff_t>(durations.size() / 2),
                           durations.end());
          const double median = durations[durations.size() / 2];
          const double threshold = std::max(
              options_.straggler_min_s, options_.straggler_factor * median);
          LiveWorker* slowest = nullptr;
          for (LiveWorker& w : live) {
            ShardCtl& sc = ctl[static_cast<std::size_t>(w.shard)];
            if (w.duplicate || sc.duplicate_used || w.term_sent ||
                sc.state != ShardState::Running)
              continue;
            if (seconds_between(w.started, now) <= threshold) continue;
            if (!slowest || w.started < slowest->started) slowest = &w;
          }
          if (slowest) {
            ShardCtl& sc = ctl[static_cast<std::size_t>(slowest->shard)];
            LiveWorker dup;
            dup.shard = sc.spec.shard;
            dup.attempt = sc.attempts;
            dup.duplicate = true;
            dup.args = make_args(sc, sc.attempts, /*duplicate=*/true);
            dup.pid = spawn(dup.args);
            dup.started = now;
            dup.last_progress = now;
            live.push_back(std::move(dup));
            sc.duplicate_used = true;
            sc.straggler_reissued = true;
            ++sc.live_copies;
            ++stragglers_reissued;
          }
        }
      }

      if (terminal < static_cast<int>(ctl.size()))
        std::this_thread::sleep_for(
            std::chrono::duration<double>(options_.poll_interval_s));
    }
    kill_everything();  // redundant losers of completed shards, if any
  } catch (...) {
    kill_everything();
    throw;
  }

  // --- collect -------------------------------------------------------------
  FleetReport report;
  report.trials = options_.trials;
  report.shards_total = static_cast<int>(ctl.size());
  std::vector<resilience::CampaignReportsFile> files;
  for (ShardCtl& sc : ctl) {
    ShardOutcome outcome;
    outcome.shard = sc.spec.shard;
    outcome.first = sc.spec.first;
    outcome.count = sc.spec.count;
    outcome.attempts = sc.attempts;
    outcome.completed = sc.state == ShardState::Completed;
    outcome.quarantined = sc.state == ShardState::Quarantined;
    outcome.kills = sc.kills;
    outcome.straggler_reissued = sc.straggler_reissued;
    outcome.duplicate_won = sc.duplicate_won;
    report.shards.push_back(outcome);
    report.retries += std::max(0, sc.attempts - 1);
    if (outcome.completed) {
      ++report.shards_completed;
      files.push_back(std::move(sc.result));
    } else {
      ++report.shards_quarantined;
    }
  }
  report.worker_kills = worker_kills;
  report.stragglers_reissued = stragglers_reissued;
  report.chaos = chaos.stats();

  if (report.complete()) {
    // Full coverage: the strict merge validates the tiling end to end and
    // returns trials in exactly run_trials order.
    report.reports = resilience::merge_campaign_reports(std::move(files), fp);
  } else {
    // Degraded coverage: quarantined ranges are holes, so the strict merge
    // would (rightly) reject the tiling.  Completed shards are already
    // fingerprint/range-validated and non-overlapping by construction;
    // concatenate them in trial order and let the caller see the gap.
    std::sort(files.begin(), files.end(),
              [](const resilience::CampaignReportsFile& a,
                 const resilience::CampaignReportsFile& b) {
                return a.first_trial < b.first_trial;
              });
    for (resilience::CampaignReportsFile& f : files)
      for (resilience::DegradationReport& r : f.reports)
        report.reports.push_back(std::move(r));
  }
  return report;
}

void publish_fleet_metrics(const FleetReport& report,
                           obs::MetricsRegistry& registry) {
  registry.counter("fleet.shards_total")
      .add(static_cast<std::uint64_t>(report.shards_total));
  registry.counter("fleet.shards_completed")
      .add(static_cast<std::uint64_t>(report.shards_completed));
  registry.counter("fleet.shards_quarantined")
      .add(static_cast<std::uint64_t>(report.shards_quarantined));
  registry.counter("fleet.retries")
      .add(static_cast<std::uint64_t>(report.retries));
  registry.counter("fleet.worker_kills")
      .add(static_cast<std::uint64_t>(report.worker_kills));
  registry.counter("fleet.stragglers_reissued")
      .add(static_cast<std::uint64_t>(report.stragglers_reissued));
  registry.counter("fleet.chaos.kills")
      .add(static_cast<std::uint64_t>(report.chaos.kills));
  registry.counter("fleet.chaos.stalls")
      .add(static_cast<std::uint64_t>(report.chaos.stalls));
  registry.counter("fleet.chaos.resumes")
      .add(static_cast<std::uint64_t>(report.chaos.resumes));
  obs::Histogram& attempts = registry.histogram("fleet.attempts");
  int covered = 0;
  for (const ShardOutcome& s : report.shards) {
    attempts.record(static_cast<std::uint64_t>(s.attempts));
    if (s.completed) covered += s.count;
  }
  registry.gauge("fleet.coverage_pct")
      .set(report.trials > 0
               ? 100.0 * static_cast<double>(covered) /
                     static_cast<double>(report.trials)
               : 0.0);
}

}  // namespace wsp::fleet
