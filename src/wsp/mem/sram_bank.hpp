// Cycle-level SRAM bank model (Sec. II).
//
// Each memory chiplet holds five 128 KB single-port SRAM banks.  A bank
// services one 32-bit access per cycle; all five banks of a chiplet operate
// in parallel, which is where the system's 6.144 TB/s aggregate shared-
// memory bandwidth comes from (1024 tiles x 5 banks x 4 B x 300 MHz).
//
// Storage is allocated lazily in 4 KB pages so that a full 2048-chiplet
// system (512 MB+ of modelled SRAM) can be instantiated without committing
// memory for untouched banks.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace wsp::mem {

/// One SRAM bank with lazily allocated backing storage.
class SramBank {
 public:
  explicit SramBank(std::uint32_t capacity_bytes);

  std::uint32_t capacity() const { return capacity_; }

  /// 32-bit word access.  Offsets must be word-aligned and in range
  /// (throws wsp::Error otherwise — the memory controller guarantees this).
  std::uint32_t read_word(std::uint32_t offset) const;
  void write_word(std::uint32_t offset, std::uint32_t value);

  std::uint8_t read_byte(std::uint32_t offset) const;
  void write_byte(std::uint32_t offset, std::uint8_t value);

  // --- cycle-level port model -------------------------------------------
  /// Marks the bank busy for this cycle; returns false when the single
  /// port was already claimed (the crossbar must retry next cycle).
  bool claim_port(std::uint64_t cycle);
  /// Accesses performed so far (for bandwidth accounting).
  std::uint64_t access_count() const { return accesses_; }

  /// Bytes of backing store actually allocated (diagnostics).
  std::uint64_t resident_bytes() const;

 private:
  static constexpr std::uint32_t kPageBytes = 4096;

  std::uint32_t capacity_;
  mutable std::vector<std::unique_ptr<std::uint8_t[]>> pages_;
  std::uint64_t last_claim_cycle_ = ~0ull;
  std::uint64_t accesses_ = 0;

  std::uint8_t* page_for(std::uint32_t offset, bool create) const;
};

}  // namespace wsp::mem
