#include "wsp/mem/sram_bank.hpp"

#include <cstring>

#include "wsp/common/error.hpp"

namespace wsp::mem {

SramBank::SramBank(std::uint32_t capacity_bytes) : capacity_(capacity_bytes) {
  require(capacity_bytes > 0 && capacity_bytes % kPageBytes == 0,
          "bank capacity must be a positive multiple of the page size");
  pages_.resize(capacity_bytes / kPageBytes);
}

std::uint8_t* SramBank::page_for(std::uint32_t offset, bool create) const {
  const std::uint32_t page = offset / kPageBytes;
  auto& slot = pages_[page];
  if (!slot) {
    if (!create) return nullptr;
    slot = std::make_unique<std::uint8_t[]>(kPageBytes);
    std::memset(slot.get(), 0, kPageBytes);
  }
  return slot.get();
}

std::uint32_t SramBank::read_word(std::uint32_t offset) const {
  require(offset % 4 == 0 && offset + 4 <= capacity_,
          "unaligned or out-of-range word read");
  const std::uint8_t* page = page_for(offset, false);
  if (!page) return 0;  // untouched SRAM reads as zero in the model
  std::uint32_t value;
  std::memcpy(&value, page + offset % kPageBytes, 4);
  return value;
}

void SramBank::write_word(std::uint32_t offset, std::uint32_t value) {
  require(offset % 4 == 0 && offset + 4 <= capacity_,
          "unaligned or out-of-range word write");
  std::uint8_t* page = page_for(offset, true);
  std::memcpy(page + offset % kPageBytes, &value, 4);
}

std::uint8_t SramBank::read_byte(std::uint32_t offset) const {
  require(offset < capacity_, "out-of-range byte read");
  const std::uint8_t* page = page_for(offset, false);
  return page ? page[offset % kPageBytes] : 0;
}

void SramBank::write_byte(std::uint32_t offset, std::uint8_t value) {
  require(offset < capacity_, "out-of-range byte write");
  page_for(offset, true)[offset % kPageBytes] = value;
}

bool SramBank::claim_port(std::uint64_t cycle) {
  if (last_claim_cycle_ == cycle) return false;
  last_claim_cycle_ = cycle;
  ++accesses_;
  return true;
}

std::uint64_t SramBank::resident_bytes() const {
  std::uint64_t bytes = 0;
  for (const auto& p : pages_)
    if (p) bytes += kPageBytes;
  return bytes;
}

}  // namespace wsp::mem
