// Memory-technology exploration (Sec. II-c).
//
// The prototype implements its memory chiplet in the same TSMC 40nm-LP
// node as the compute chiplet purely "for ease of design", and the paper
// notes it "can be easily implemented in a newer or denser memory
// technology for higher memory capacity and/or area savings" — the whole
// point of heterogeneous chiplet integration on the Si-IF.  This module
// quantifies that option: given a bit-cell technology, how much capacity
// fits in the same 3.15 x 1.1 mm chiplet footprint, and what the system
// totals become.
#pragma once

#include <string>
#include <vector>

#include "wsp/common/config.hpp"

namespace wsp::mem {

/// A candidate memory technology for the memory chiplet.
struct MemoryTechnology {
  std::string name;
  double bit_density_bits_per_m2;  ///< usable density incl. periphery
  double access_energy_j_per_bit;
  double max_frequency_hz;         ///< bank port frequency
  bool requires_refresh = false;   ///< DRAM-class technologies
};

/// Technology presets (public density figures, order-of-magnitude).
MemoryTechnology sram_40nm();    ///< the prototype's baseline
MemoryTechnology sram_22nm();
MemoryTechnology sram_7nm();
MemoryTechnology edram_22nm();   ///< embedded DRAM
MemoryTechnology dram_1x();      ///< commodity DRAM die as the chiplet

/// System-level outcome of re-implementing the memory chiplet in `tech`,
/// keeping the chiplet footprint and bank organisation of the prototype.
struct MemoryTechOutcome {
  MemoryTechnology tech;
  std::uint64_t chiplet_bytes = 0;      ///< capacity per memory chiplet
  std::uint64_t bank_bytes = 0;         ///< capacity per bank (5 banks)
  std::uint64_t system_shared_bytes = 0;///< 4 shared banks x 1024 tiles
  double shared_bandwidth_bytes_per_s = 0.0;
  double capacity_vs_baseline = 0.0;    ///< x over the 40nm prototype
};

/// Evaluates `tech` in the prototype's memory-chiplet footprint.  The
/// memory array gets `array_area_fraction` of the die (the rest is I/O,
/// feedthroughs and decap, as in the prototype).
MemoryTechOutcome evaluate_memory_technology(
    const SystemConfig& config, const MemoryTechnology& tech,
    double array_area_fraction = 0.6);

/// Convenience: evaluates all presets.
std::vector<MemoryTechOutcome> memory_technology_survey(
    const SystemConfig& config);

}  // namespace wsp::mem
