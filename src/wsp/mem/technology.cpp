#include "wsp/mem/technology.hpp"

#include <algorithm>

#include "wsp/common/error.hpp"

namespace wsp::mem {

// Densities are usable (periphery-included) figures; the 40nm baseline is
// calibrated so that the prototype's 5 x 128 KB fits its measured chiplet
// footprint exactly, and the others scale by published bit-cell ratios.
MemoryTechnology sram_40nm() {
  return {"SRAM 40nm (prototype)", 2.522e12, 0.20e-12, 400e6, false};
}
MemoryTechnology sram_22nm() {
  return {"SRAM 22nm", 7.6e12, 0.12e-12, 500e6, false};
}
MemoryTechnology sram_7nm() {
  return {"SRAM 7nm", 2.8e13, 0.05e-12, 1000e6, false};
}
MemoryTechnology edram_22nm() {
  return {"eDRAM 22nm", 3.2e13, 0.35e-12, 300e6, true};
}
MemoryTechnology dram_1x() {
  return {"DRAM 1x-nm die", 1.6e14, 1.0e-12, 200e6, true};
}

MemoryTechOutcome evaluate_memory_technology(const SystemConfig& config,
                                             const MemoryTechnology& tech,
                                             double array_area_fraction) {
  require(array_area_fraction > 0.0 && array_area_fraction <= 1.0,
          "array area fraction must be in (0,1]");
  require(tech.bit_density_bits_per_m2 > 0.0, "density must be positive");

  MemoryTechOutcome out;
  out.tech = tech;

  const double footprint = config.geometry.memory_chiplet_width_m *
                           config.geometry.memory_chiplet_height_m;
  const double bits = tech.bit_density_bits_per_m2 * footprint *
                      array_area_fraction;
  // Keep the prototype's 5-bank organisation; banks page-aligned so the
  // cycle-level SramBank model can instantiate them directly.
  const auto raw_bank_bytes = static_cast<std::uint64_t>(
      bits / 8.0 / config.banks_per_memory_chiplet);
  out.bank_bytes = raw_bank_bytes / 4096 * 4096;
  out.chiplet_bytes = out.bank_bytes * config.banks_per_memory_chiplet;
  out.system_shared_bytes = static_cast<std::uint64_t>(config.total_tiles()) *
                            config.shared_banks_per_tile * out.bank_bytes;

  const double port_hz = std::min(config.nominal_freq_hz, tech.max_frequency_hz);
  out.shared_bandwidth_bytes_per_s = static_cast<double>(config.total_tiles()) *
                                     config.banks_per_memory_chiplet *
                                     config.bank_port_bytes * port_hz;

  const double baseline_bytes =
      static_cast<double>(config.banks_per_memory_chiplet) *
      static_cast<double>(config.bank_bytes);
  out.capacity_vs_baseline =
      static_cast<double>(out.chiplet_bytes) / baseline_bytes;
  return out;
}

std::vector<MemoryTechOutcome> memory_technology_survey(
    const SystemConfig& config) {
  std::vector<MemoryTechOutcome> out;
  for (const MemoryTechnology& tech :
       {sram_40nm(), sram_22nm(), sram_7nm(), edram_22nm(), dram_1x()})
    out.push_back(evaluate_memory_technology(config, tech));
  return out;
}

}  // namespace wsp::mem
