#include "wsp/mem/address_map.hpp"

#include "wsp/common/error.hpp"

namespace wsp::mem {

GlobalAddressMap::GlobalAddressMap(const SystemConfig& config,
                                   AddressLayout layout)
    : grid_(config.grid()),
      layout_(layout),
      banks_(config.shared_banks_per_tile),
      bank_bytes_(config.bank_bytes),
      shared_bytes_(config.total_shared_memory_bytes()) {}

std::optional<MemoryLocation> GlobalAddressMap::decode(
    std::uint64_t address) const {
  if (address >= shared_bytes_) return std::nullopt;

  const std::uint64_t per_tile = tile_bytes();
  const std::uint64_t tile_index = address / per_tile;
  const std::uint64_t within_tile = address % per_tile;

  MemoryLocation loc;
  loc.tile = grid_.coord_of(static_cast<std::size_t>(tile_index));

  if (layout_ == AddressLayout::TileMajor) {
    loc.bank = static_cast<int>(within_tile / bank_bytes_);
    loc.offset = static_cast<std::uint32_t>(within_tile % bank_bytes_);
  } else {
    // Word-interleaved across the shared banks of the tile.
    const std::uint64_t word = within_tile / word_bytes_;
    const std::uint64_t byte_in_word = within_tile % word_bytes_;
    loc.bank = static_cast<int>(word % static_cast<std::uint64_t>(banks_));
    loc.offset = static_cast<std::uint32_t>(
        (word / static_cast<std::uint64_t>(banks_)) * word_bytes_ +
        byte_in_word);
  }
  return loc;
}

std::uint64_t GlobalAddressMap::encode(const MemoryLocation& loc) const {
  require(grid_.contains(loc.tile), "encode: tile out of bounds");
  require(loc.bank >= 0 && loc.bank < banks_, "encode: bad bank index");
  require(loc.offset < bank_bytes_, "encode: offset past bank end");

  const std::uint64_t tile_index = grid_.index_of(loc.tile);
  std::uint64_t within_tile;
  if (layout_ == AddressLayout::TileMajor) {
    within_tile = static_cast<std::uint64_t>(loc.bank) * bank_bytes_ +
                  loc.offset;
  } else {
    const std::uint64_t word = loc.offset / word_bytes_;
    const std::uint64_t byte_in_word = loc.offset % word_bytes_;
    within_tile = (word * static_cast<std::uint64_t>(banks_) +
                   static_cast<std::uint64_t>(loc.bank)) *
                      word_bytes_ +
                  byte_in_word;
  }
  return tile_index * tile_bytes() + within_tile;
}

std::uint64_t GlobalAddressMap::tile_base(TileCoord tile) const {
  require(grid_.contains(tile), "tile_base: tile out of bounds");
  return grid_.index_of(tile) * tile_bytes();
}

}  // namespace wsp::mem
