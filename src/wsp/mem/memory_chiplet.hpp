// Memory chiplet (Sec. II-c).
//
// Five 128 KB SRAM banks: four addressable through the global shared
// address space, one private to the tile (cores and the network routers on
// the same tile).  The chiplet also provides buffered feedthroughs for the
// north-south inter-tile links (the compute chiplet's N/S network wiring
// physically crosses it) and two banks of decoupling capacitors for the
// tile's LDO.
//
// In single-routing-layer fallback mode (Sec. VIII) only the two
// essential-set banks are connected: accesses to the others fail, costing
// 60 % of the memory capacity while the processor stays fully functional.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "wsp/common/config.hpp"
#include "wsp/mem/sram_bank.hpp"

namespace wsp::mem {

/// Result of a bank access attempt.
enum class AccessStatus : std::uint8_t {
  Ok,
  BankBusy,        ///< single port already claimed this cycle
  BankUnconnected, ///< bank lost to single-layer fallback
  BadAddress,
};

struct AccessResult {
  AccessStatus status = AccessStatus::Ok;
  std::uint32_t data = 0;
  bool ok() const { return status == AccessStatus::Ok; }
};

class MemoryChiplet {
 public:
  /// `single_layer_mode` connects only the first two banks (Sec. VIII).
  MemoryChiplet(const SystemConfig& config, bool single_layer_mode = false);

  int bank_count() const { return static_cast<int>(banks_.size()); }
  int shared_bank_count() const { return shared_banks_; }
  /// Index of the tile-private bank (the last one).
  int local_bank_index() const { return bank_count() - 1; }

  bool bank_connected(int bank) const;
  /// Bytes of connected capacity (shared + local).
  std::uint64_t connected_bytes() const;

  /// Cycle-accurate 32-bit read/write through a bank port.
  AccessResult read(int bank, std::uint32_t offset, std::uint64_t cycle);
  AccessResult write(int bank, std::uint32_t offset, std::uint32_t value,
                     std::uint64_t cycle);

  /// Functional (zero-time) access for program loading and checking.
  std::uint32_t peek(int bank, std::uint32_t offset) const;
  void poke(int bank, std::uint32_t offset, std::uint32_t value);

  const SramBank& bank(int index) const { return banks_[index]; }

  /// Decoupling capacitance contributed by the chiplet's two decap banks
  /// (part of the tile's ~20 nF budget).
  double decap_farads() const { return decap_f_; }

  /// Buffered feedthrough count for the north-south network links.
  int feedthrough_count() const { return feedthroughs_; }

 private:
  std::vector<SramBank> banks_;
  int shared_banks_;
  int connected_banks_;
  double decap_f_;
  int feedthroughs_;

  bool valid_bank(int bank) const {
    return bank >= 0 && bank < bank_count();
  }
};

}  // namespace wsp::mem
