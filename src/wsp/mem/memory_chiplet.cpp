#include "wsp/mem/memory_chiplet.hpp"

#include "wsp/common/error.hpp"

namespace wsp::mem {

MemoryChiplet::MemoryChiplet(const SystemConfig& config,
                             bool single_layer_mode)
    : shared_banks_(config.shared_banks_per_tile),
      connected_banks_(single_layer_mode ? 2
                                         : config.banks_per_memory_chiplet),
      // Half the tile decap budget lives on the memory chiplet's two decap
      // banks; the other half is on the compute chiplet.
      decap_f_(config.decap_per_tile_f / 2.0),
      feedthroughs_(config.link_width_bits_per_side) {
  banks_.reserve(static_cast<std::size_t>(config.banks_per_memory_chiplet));
  for (int b = 0; b < config.banks_per_memory_chiplet; ++b)
    banks_.emplace_back(static_cast<std::uint32_t>(config.bank_bytes));
}

bool MemoryChiplet::bank_connected(int bank) const {
  return valid_bank(bank) && bank < connected_banks_;
}

std::uint64_t MemoryChiplet::connected_bytes() const {
  std::uint64_t bytes = 0;
  for (int b = 0; b < bank_count(); ++b)
    if (bank_connected(b)) bytes += banks_[b].capacity();
  return bytes;
}

AccessResult MemoryChiplet::read(int bank, std::uint32_t offset,
                                 std::uint64_t cycle) {
  if (!valid_bank(bank) || offset % 4 != 0 ||
      offset + 4 > banks_[bank].capacity())
    return {AccessStatus::BadAddress, 0};
  if (!bank_connected(bank)) return {AccessStatus::BankUnconnected, 0};
  if (!banks_[bank].claim_port(cycle)) return {AccessStatus::BankBusy, 0};
  return {AccessStatus::Ok, banks_[bank].read_word(offset)};
}

AccessResult MemoryChiplet::write(int bank, std::uint32_t offset,
                                  std::uint32_t value, std::uint64_t cycle) {
  if (!valid_bank(bank) || offset % 4 != 0 ||
      offset + 4 > banks_[bank].capacity())
    return {AccessStatus::BadAddress, 0};
  if (!bank_connected(bank)) return {AccessStatus::BankUnconnected, 0};
  if (!banks_[bank].claim_port(cycle)) return {AccessStatus::BankBusy, 0};
  banks_[bank].write_word(offset, value);
  return {AccessStatus::Ok, value};
}

std::uint32_t MemoryChiplet::peek(int bank, std::uint32_t offset) const {
  require(valid_bank(bank), "peek: bad bank index");
  return banks_[bank].read_word(offset);
}

void MemoryChiplet::poke(int bank, std::uint32_t offset,
                         std::uint32_t value) {
  require(valid_bank(bank), "poke: bad bank index");
  banks_[bank].write_word(offset, value);
}

}  // namespace wsp::mem
