// Global shared-memory address map (Sec. II).
//
// The system is a unified-memory machine: any core on any tile can address
// the 512 MB of globally shared SRAM (4 of the 5 banks on each of the 1024
// memory chiplets).  A physical address therefore decodes to
// (tile, bank, offset); the NoC carries accesses to remote tiles.
//
// Two decodings are provided:
//   * TileMajor — consecutive addresses fill one tile's banks before moving
//     to the next tile (natural for partitioned data, e.g. per-tile graph
//     partitions).
//   * BankInterleaved — consecutive 32-bit words rotate across the shared
//     banks of one tile, exposing the 4-banks-in-parallel bandwidth.
#pragma once

#include <cstdint>
#include <optional>

#include "wsp/common/config.hpp"

namespace wsp::mem {

/// Decoded location of a shared-memory word.
struct MemoryLocation {
  TileCoord tile;
  int bank = 0;             ///< shared-bank index, 0-based
  std::uint32_t offset = 0; ///< byte offset within the bank
};

enum class AddressLayout : std::uint8_t { TileMajor, BankInterleaved };

/// Bidirectional address <-> location mapping over the shared space.
class GlobalAddressMap {
 public:
  GlobalAddressMap(const SystemConfig& config,
                   AddressLayout layout = AddressLayout::TileMajor);

  std::uint64_t shared_bytes() const { return shared_bytes_; }
  int shared_banks_per_tile() const { return banks_; }
  std::uint64_t bank_bytes() const { return bank_bytes_; }

  /// Decodes a byte address; nullopt when out of the shared space.
  std::optional<MemoryLocation> decode(std::uint64_t address) const;

  /// Inverse of decode.  Throws wsp::Error for an invalid location.
  std::uint64_t encode(const MemoryLocation& loc) const;

  /// First byte address owned by `tile` under TileMajor layout (useful for
  /// placing per-tile partitions).
  std::uint64_t tile_base(TileCoord tile) const;

  /// Bytes of shared memory owned by one tile.
  std::uint64_t tile_bytes() const { return banks_ * bank_bytes_; }

 private:
  TileGrid grid_;
  AddressLayout layout_;
  int banks_;
  std::uint64_t bank_bytes_;
  std::uint64_t shared_bytes_;
  std::uint64_t word_bytes_ = 4;
};

}  // namespace wsp::mem
