#include "wsp/route/reticle.hpp"

namespace wsp::route {

namespace {
int ceil_div(int a, int b) { return (a + b - 1) / b; }
}  // namespace

ReticlePlan::ReticlePlan(const SystemConfig& config)
    : config_(config),
      tiles_x_(config.reticle_tiles_x),
      tiles_y_(config.reticle_tiles_y),
      reticles_x_(ceil_div(config.array_width, config.reticle_tiles_x)),
      reticles_y_(ceil_div(config.array_height, config.reticle_tiles_y)) {
  config_.validate();
}

ReticleCoord ReticlePlan::reticle_of(TileCoord c) const {
  return {c.x / tiles_x_, c.y / tiles_y_};
}

bool ReticlePlan::crosses_boundary(TileCoord a, TileCoord b) const {
  return !(reticle_of(a) == reticle_of(b));
}

WireRule ReticlePlan::wire_rule(bool stitched) const {
  if (stitched)
    return {config_.stitch_wire_width_m, config_.stitch_wire_space_m};
  return {config_.intra_reticle_wire_width_m,
          config_.intra_reticle_wire_space_m};
}

std::vector<ReticleInfo> ReticlePlan::enumerate() const {
  // The populated array plus one ring of edge-I/O reticles on all sides.
  std::vector<ReticleInfo> out;
  for (int ry = -1; ry <= reticles_y_; ++ry) {
    for (int rx = -1; rx <= reticles_x_; ++rx) {
      ReticleInfo info;
      info.coord = {rx, ry};
      info.tile_slots = tiles_per_reticle();
      const bool in_array =
          rx >= 0 && rx < reticles_x_ && ry >= 0 && ry < reticles_y_;
      if (!in_array) {
        info.role = ReticleRole::EdgeIo;
        info.populated_tiles = 0;
        info.block_etch_needed = false;  // pads here become connectors
        out.push_back(info);
        continue;
      }
      // Slots may hang past the array edge when the array size is not a
      // multiple of the reticle size.
      const int x0 = rx * tiles_x_;
      const int y0 = ry * tiles_y_;
      const int x1 = std::min(x0 + tiles_x_, config_.array_width);
      const int y1 = std::min(y0 + tiles_y_, config_.array_height);
      info.role = ReticleRole::Populated;
      info.populated_tiles = (x1 - x0) * (y1 - y0);
      info.block_etch_needed = info.populated_tiles < info.tile_slots;
      out.push_back(info);
    }
  }
  return out;
}

int ReticlePlan::exposure_count() const {
  return (reticles_x_ + 2) * (reticles_y_ + 2);
}

}  // namespace wsp::route
