#include "wsp/route/substrate_router.hpp"

#include <algorithm>
#include <cmath>

#include "wsp/common/error.hpp"

namespace wsp::route {

SubstrateRouter::SubstrateRouter(const SystemConfig& config)
    : config_(config), reticles_(config) {
  config_.validate();
}

int SubstrateRouter::gap_track_capacity() const {
  // A tile-gap routing channel spans the chiplet width; tracks at the
  // substrate wiring pitch.
  return static_cast<int>(std::floor(config_.geometry.compute_chiplet_width_m /
                                     config_.wiring_pitch_m));
}

int SubstrateRouter::bank_bus_width() const {
  // The compute chiplet's remaining I/O budget divided over the banks
  // (matches wsp::io::compute_chiplet_demand).
  const int used = 4 * config_.link_width_bits_per_side + 4 * 2 + 12;
  return (config_.ios_per_compute_chiplet - used) /
         config_.banks_per_memory_chiplet;
}

SubstrateRouter::EdgeBudget SubstrateRouter::edge_fanout_budget() const {
  EdgeBudget b;
  // Each boundary tile fans its outward-facing link plus test signals out
  // to the wafer edge.
  b.wires_per_edge =
      config_.array_width * (config_.link_width_bits_per_side + 12);
  const double edge_len =
      config_.geometry.tile_pitch_x_m() * config_.array_width;
  // Fan-out escapes on a single layer at the substrate wiring pitch.
  b.capacity_per_edge =
      static_cast<int>(std::floor(edge_len / config_.wiring_pitch_m));
  return b;
}

RoutingReport SubstrateRouter::route(int available_layers) const {
  require(available_layers == 1 || available_layers == 2,
          "the substrate has one or two signal layers");

  RoutingReport report;
  const TileGrid grid = config_.grid();
  const auto& geom = config_.geometry;
  const int link_bits = config_.link_width_bits_per_side;
  const int bank_bits = bank_bus_width();
  const int capacity = gap_track_capacity();

  // Link lengths.  Horizontal links cross one inter-chiplet gap; vertical
  // links pass through the memory chiplet's buffered feedthroughs, so the
  // substrate wire is gap + pad-escape on both ends.
  const double escape = 8.0 * config_.io_pitch_m;  // across the pad columns
  const double h_len = geom.inter_chiplet_gap_m + 2.0 * escape;
  const double v_len = geom.inter_chiplet_gap_m + 2.0 * escape;
  const double bank_len = geom.inter_chiplet_gap_m + 2.0 * escape;

  // Per-gap track usage: [layer-1, layer-2] for the worst gap per class.
  int gap1_l1 = 0, gap1_l2 = 0;  // compute<->memory gap inside a tile
  int gap2_l1 = 0;               // tile<->tile gaps

  auto add_net = [&](NetClass cls, TileCoord a, TileCoord b, int bit,
                     int layer, double len) {
    ++report.nets_requested;
    if (layer > available_layers) {
      ++report.nets_unroutable;
      return;
    }
    const bool stitched =
        cls == NetClass::InterTileLink && reticles_.crosses_boundary(a, b);
    report.nets.push_back({cls, a, b, bit, layer, len, stitched});
    ++report.nets_routed;
    report.total_wirelength_m += len;
    if (stitched) ++report.stitched_nets;
  };

  grid.for_each([&](TileCoord c) {
    // East links (each internal horizontal gap handled once).
    if (c.x + 1 < grid.width()) {
      for (int bit = 0; bit < link_bits; ++bit)
        add_net(NetClass::InterTileLink, c, {c.x + 1, c.y}, bit, 1, h_len);
    }
    // North links.
    if (c.y + 1 < grid.height()) {
      for (int bit = 0; bit < link_bits; ++bit)
        add_net(NetClass::InterTileLink, c, {c.x, c.y + 1}, bit, 1, v_len);
    }
    // Bank buses: essential banks on layer 1, the rest on layer 2.
    for (int bank = 0; bank < config_.banks_per_memory_chiplet; ++bank) {
      const int layer = bank < 2 ? 1 : 2;
      for (int bit = 0; bit < bank_bits; ++bit)
        add_net(NetClass::BankBus, c, c, bank * bank_bits + bit, layer,
                bank_len);
    }
    // Edge fan-out from boundary tiles to the wafer-edge connectors.
    const bool edge = grid.is_edge(c);
    if (edge) {
      int outward_sides = 0;
      if (c.x == 0 || c.x == grid.width() - 1) ++outward_sides;
      if (c.y == 0 || c.y == grid.height() - 1) ++outward_sides;
      for (int s = 0; s < outward_sides; ++s)
        for (int bit = 0; bit < link_bits + 12; ++bit)
          add_net(NetClass::EdgeFanout, c, c, bit, 1,
                  config_.edge_io_margin_m);
    }
  });

  // Channel occupancy (uniform by construction, so one gap of each class
  // represents the worst case).
  gap2_l1 = link_bits;                  // tile-to-tile gap: network only
  gap1_l1 = link_bits + 2 * bank_bits;  // intra-tile gap: network + 2 banks
  gap1_l2 = (config_.banks_per_memory_chiplet - 2) * bank_bits;

  report.max_gap_utilization_layer1 =
      static_cast<double>(std::max(gap1_l1, gap2_l1)) / capacity;
  report.max_gap_utilization_layer2 =
      available_layers >= 2 ? static_cast<double>(gap1_l2) / capacity : 0.0;
  report.capacity_ok = report.max_gap_utilization_layer1 <= 1.0 &&
                       report.max_gap_utilization_layer2 <= 1.0 &&
                       edge_fanout_budget().fits();
  report.jog_free = true;  // every net above is a single straight segment
  return report;
}

}  // namespace wsp::route
