// Lightweight jog-free substrate router (Sec. VIII).
//
// Commercial routers blow up on a >15,000 mm^2 four-layer design, so the
// paper's team wrote their own minimal router: inter-chiplet connections
// are routed jog-free (straight segments between facing pads across the
// ~100 um chiplet gap), which is sufficient because chiplet-assembly
// substrates have low wiring density and regular geometry.  This module
// is that router:
//
//   * every inter-tile network link becomes one straight wire in the gap
//     between the two tiles, on signal layer 1 (the pads sit in the
//     essential column set);
//   * intra-tile compute<->memory bank buses route on layer 1 for the two
//     essential banks and layer 2 for the other three (their pads sit in
//     the deeper column set, whose escape must fly over the outer pad
//     columns);
//   * edge-tile I/Os fan out across the edge-I/O reticles to the wafer-
//     edge connector pads;
//   * wires crossing a reticle stitch boundary use the fat-wire rule.
//
// The router checks per-gap track capacity, computes wirelength, and
// reports whether the design routes with two layers or just one (the
// single-layer fallback drops the layer-2 nets: 3 of 5 banks).
#pragma once

#include <cstdint>
#include <vector>

#include "wsp/common/config.hpp"
#include "wsp/route/reticle.hpp"

namespace wsp::route {

enum class NetClass : std::uint8_t {
  InterTileLink,   ///< mesh network wire between adjacent tiles
  BankBus,         ///< compute->memory chiplet bank connection
  EdgeFanout,      ///< edge tile to wafer-edge connector
};

/// One routed straight wire.
struct RoutedNet {
  NetClass net_class = NetClass::InterTileLink;
  TileCoord a;          ///< owning / source tile
  TileCoord b;          ///< destination tile (== a for intra-tile nets)
  int bit = 0;          ///< bit lane within the bus
  int layer = 1;        ///< 1 or 2
  double length_m = 0.0;
  bool stitched = false;  ///< crosses a reticle boundary (fat-wire rule)
};

struct RoutingReport {
  std::vector<RoutedNet> nets;
  std::size_t nets_requested = 0;
  std::size_t nets_routed = 0;
  std::size_t nets_unroutable = 0;  ///< layer-2 nets in single-layer mode
  double total_wirelength_m = 0.0;
  std::size_t stitched_nets = 0;
  /// Worst per-gap track utilisation (used / capacity) per layer.
  double max_gap_utilization_layer1 = 0.0;
  double max_gap_utilization_layer2 = 0.0;
  bool capacity_ok = true;  ///< no gap exceeds its track capacity
  bool jog_free = true;     ///< every net is a single straight segment
  bool success() const { return capacity_ok && nets_unroutable == 0; }
};

class SubstrateRouter {
 public:
  explicit SubstrateRouter(const SystemConfig& config);

  /// Routes the full substrate with `available_layers` signal layers
  /// (2 = nominal, 1 = single-layer fallback of Sec. VIII).
  RoutingReport route(int available_layers = 2) const;

  /// Track capacity of one tile-gap channel on one layer.
  int gap_track_capacity() const;

  /// Wires that must escape each wafer edge (for connector budgeting),
  /// and the wafer-edge wire capacity at the escape density.
  struct EdgeBudget {
    int wires_per_edge = 0;
    int capacity_per_edge = 0;
    bool fits() const { return wires_per_edge <= capacity_per_edge; }
  };
  EdgeBudget edge_fanout_budget() const;

  const ReticlePlan& reticles() const { return reticles_; }

 private:
  SystemConfig config_;
  ReticlePlan reticles_;

  int bank_bus_width() const;
};

}  // namespace wsp::route
