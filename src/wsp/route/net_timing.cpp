#include "wsp/route/net_timing.hpp"

#include <algorithm>

#include "wsp/common/error.hpp"

namespace wsp::route {

NetTiming analyze_wire(double length_m, const WireRule& rule,
                       const WireElectrical& electrical) {
  require(length_m > 0.0, "wire length must be positive");
  require(rule.width_m > 0.0, "wire width must be positive");

  NetTiming t;
  t.wire_resistance_ohm = electrical.resistivity_ohm_m * length_m /
                          (rule.width_m * electrical.thickness_m);
  t.wire_capacitance_f = electrical.capacitance_f_per_m * length_m;
  // Elmore: driver charges everything, the distributed wire adds half its
  // own RC.
  t.elmore_delay_s =
      electrical.driver_resistance_ohm *
          (t.wire_capacitance_f + electrical.load_capacitance_f) +
      0.5 * t.wire_resistance_ohm * t.wire_capacitance_f;
  // Conservative signalling rate: a bit period of four Elmore delays
  // (full swing + margin).
  t.max_rate_hz = 1.0 / (4.0 * t.elmore_delay_s);
  return t;
}

TimingReport analyze_routing_timing(const SystemConfig& config,
                                    const RoutingReport& routing,
                                    const WireElectrical& electrical) {
  const ReticlePlan reticles(config);
  TimingReport report;
  double worst_len[3] = {0.0, 0.0, 0.0};
  bool worst_stitched[3] = {false, false, false};
  for (const RoutedNet& net : routing.nets) {
    const auto cls = static_cast<std::size_t>(net.net_class);
    if (net.length_m > worst_len[cls]) {
      worst_len[cls] = net.length_m;
      worst_stitched[cls] = net.stitched;
    }
  }
  auto timing_of = [&](std::size_t cls) {
    if (worst_len[cls] <= 0.0) return NetTiming{};
    return analyze_wire(worst_len[cls],
                        reticles.wire_rule(worst_stitched[cls]), electrical);
  };
  report.worst_inter_tile =
      timing_of(static_cast<std::size_t>(NetClass::InterTileLink));
  report.worst_bank_bus =
      timing_of(static_cast<std::size_t>(NetClass::BankBus));
  report.worst_edge_fanout =
      timing_of(static_cast<std::size_t>(NetClass::EdgeFanout));

  report.inter_tile_meets_rate =
      report.worst_inter_tile.max_rate_hz >= config.io_signaling_rate_hz;
  report.bank_bus_meets_rate =
      report.worst_bank_bus.max_rate_hz >= config.io_signaling_rate_hz;
  report.edge_fanout_rate_hz = report.worst_edge_fanout.max_rate_hz;
  return report;
}

}  // namespace wsp::route
