// Electrical timing of routed substrate nets (Sec. V + VIII).
//
// Si-IF wires are fine (2-3 um wide, 2 um thick) and unbuffered — the
// substrate is passive — so every net is a lumped-driver + distributed-RC
// line.  The paper's claim that simple cascaded-inverter I/Os drive
// 200-500 um links at 1 GHz falls out of exactly this model; it also
// quantifies why the multi-millimetre edge fan-out wires need lower
// signalling rates (fine for JTAG/config, which is all they carry).
#pragma once

#include "wsp/common/config.hpp"
#include "wsp/route/reticle.hpp"
#include "wsp/route/substrate_router.hpp"

namespace wsp::route {

/// Electrical parameters of the Si-IF wiring and the I/O drivers.
struct WireElectrical {
  double resistivity_ohm_m = 1.72e-8;   ///< copper
  double thickness_m = 2e-6;            ///< Si-IF signal-layer metal
  double capacitance_f_per_m = 2e-10;   ///< ~0.2 fF/um to neighbours+plane
  double driver_resistance_ohm = 1000;  ///< cascaded-inverter output
  double load_capacitance_f = 5e-15;    ///< receiver (two min inverters)
};

/// Timing of one net.
struct NetTiming {
  double wire_resistance_ohm = 0.0;
  double wire_capacitance_f = 0.0;
  double elmore_delay_s = 0.0;
  double max_rate_hz = 0.0;  ///< conservative: one bit per 4 delays
};

/// Elmore timing for a straight wire of `length_m` at `rule`'s width.
NetTiming analyze_wire(double length_m, const WireRule& rule,
                       const WireElectrical& electrical = {});

/// Summary over a routing report: the slowest net of each class and
/// whether every class meets its required signalling rate.
struct TimingReport {
  NetTiming worst_inter_tile;
  NetTiming worst_bank_bus;
  NetTiming worst_edge_fanout;
  bool inter_tile_meets_rate = false;  ///< vs config.io_signaling_rate_hz
  bool bank_bus_meets_rate = false;
  double edge_fanout_rate_hz = 0.0;    ///< whatever the long wires allow
};
TimingReport analyze_routing_timing(const SystemConfig& config,
                                    const RoutingReport& routing,
                                    const WireElectrical& electrical = {});

}  // namespace wsp::route
