// Reticle step-and-repeat plan for the waferscale substrate (Sec. VIII).
//
// The wafer is far larger than one reticle, so the Si-IF substrate is
// fabricated by stitching identical reticles of 12x6 tiles.  Wires that
// cross a reticle boundary are drawn *fatter* (3 um wide / 2 um space
// instead of 2 um / 3 um, same 5 um pitch) to tolerate stitching
// misalignment.  Reticles beyond the populated tile array carry the edge
// fan-out wiring and connector pads; their unused chiplet-slot pads are
// removed by a block-etch step.
#pragma once

#include <vector>

#include "wsp/common/config.hpp"
#include "wsp/common/geometry.hpp"

namespace wsp::route {

/// Position of a reticle in the stepping grid.
struct ReticleCoord {
  int rx = 0;
  int ry = 0;
  friend constexpr bool operator==(const ReticleCoord&,
                                   const ReticleCoord&) = default;
};

enum class ReticleRole : std::uint8_t {
  Populated,  ///< carries bonded chiplets
  EdgeIo,     ///< unpopulated; carries fan-out wiring and connector pads
};

struct ReticleInfo {
  ReticleCoord coord;
  ReticleRole role = ReticleRole::Populated;
  int tile_slots = 0;       ///< chiplet-slot pairs printed in this reticle
  int populated_tiles = 0;  ///< slots actually carrying chiplets
  bool block_etch_needed = false;  ///< unused pads must be etched away
};

/// Wire geometry rule applied to a routed segment.
struct WireRule {
  double width_m = 0.0;
  double space_m = 0.0;
  double pitch() const { return width_m + space_m; }
};

class ReticlePlan {
 public:
  explicit ReticlePlan(const SystemConfig& config);

  int reticles_x() const { return reticles_x_; }
  int reticles_y() const { return reticles_y_; }
  int tiles_per_reticle() const { return tiles_x_ * tiles_y_; }

  /// Reticle containing tile `c`.
  ReticleCoord reticle_of(TileCoord c) const;

  /// True when tiles `a` and `b` (assumed adjacent) sit in different
  /// reticles, i.e. a wire between them crosses a stitch boundary.
  bool crosses_boundary(TileCoord a, TileCoord b) const;

  /// Wire rule for a segment: `stitched` selects the fat-wire rule.
  WireRule wire_rule(bool stitched) const;

  /// All reticles of the stepping plan, including the edge-I/O ring.
  std::vector<ReticleInfo> enumerate() const;

  /// Number of reticle exposures to print the whole substrate.
  int exposure_count() const;

 private:
  SystemConfig config_;
  int tiles_x_;
  int tiles_y_;
  int reticles_x_;  ///< reticle columns covering the populated array
  int reticles_y_;
};

}  // namespace wsp::route
