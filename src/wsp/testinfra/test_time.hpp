// Analytic test / program-load time model (Sec. VII).
//
// Loading every memory on the wafer through JTAG is the boot-time
// bottleneck.  The paper's numbers: a single 1024-tile daisy chain takes
// about 2.5 hours; splitting the array into 32 row chains with independent
// TMS/TCK (runnable at up to 10 MHz thanks to the reduced broadcast load)
// parallelises loading to "roughly under 5 minutes" (32x).  Within a tile,
// broadcast mode cuts the shifted bit count 14x when all cores run the
// same program — the paper observed that most cores of irregular
// workloads do.
#pragma once

#include <cstdint>

#include "wsp/common/config.hpp"

namespace wsp::testinfra {

struct TestTimeParams {
  /// JTAG protocol overhead: TCKs spent per payload bit (state moves,
  /// addressing, update cycles of the DAP memory-access protocol).
  double protocol_overhead = 7.0;
  /// Max TCK as a function of chain fan-out: TMS/TCK are broadcast to all
  /// tiles of a chain, and the achievable frequency degrades with load.
  /// f = max_tck / (1 + load_derate * (tiles_in_chain - 1)); with the
  /// default 0 the frequency is load-independent (the paper's headline
  /// numbers assume 10 MHz either way; the derate lets users explore it).
  double tck_load_derate = 0.0;
};

struct LoadTimeReport {
  std::uint64_t total_payload_bits = 0;
  double tck_hz = 0.0;
  int chains = 1;
  bool broadcast = false;
  double seconds = 0.0;
  double hours() const { return seconds / 3600.0; }
  double minutes() const { return seconds / 60.0; }
};

/// Total bits to fill every memory on the wafer: per tile, 14 x 64 KB
/// private SRAM + 5 x 128 KB banks.
std::uint64_t total_memory_payload_bits(const SystemConfig& config);

/// Time to load all wafer memory with `chains` parallel JTAG chains.
/// `broadcast` assumes all cores of a tile receive the same program image
/// (private memories shift once per tile instead of 14 times).
LoadTimeReport memory_load_time(const SystemConfig& config, int chains,
                                bool broadcast,
                                const TestTimeParams& params = {});

/// Shift-latency reduction of intra-tile broadcast for a program of
/// `program_bits` (paper: 14x, one DAP visible instead of fourteen).
double broadcast_speedup(const SystemConfig& config);

}  // namespace wsp::testinfra
