#include "wsp/testinfra/dap_chain.hpp"

#include <algorithm>

#include "wsp/common/error.hpp"

namespace wsp::testinfra {

bool DapPort::tck(bool tms, bool tdi) {
  // Actions are decided by the state the controller is *leaving*: capture
  // loads on the edge leaving Capture-xR, shifting happens on every edge
  // leaving Shift-xR (including the final one into Exit1), matching the
  // 1149.1 timing (n rising edges shift exactly n bits).
  const TapState prev = tap_.state();
  const TapState next = tap_.step(tms);

  switch (prev) {
    case TapState::CaptureDr:
      dr_length_ = selected_dr_length();
      switch (ir_) {
        case kIrIdcode: dr_shift_ = idcode_; break;
        case kIrMemRead:
          dr_shift_ = (memory_ && mem_addr_ + 4 <= memory_->capacity())
                          ? memory_->read_word(mem_addr_)
                          : 0;
          break;
        case kIrMemAddr: dr_shift_ = mem_addr_; break;
        default: dr_shift_ = 0; break;
      }
      break;
    case TapState::ShiftDr:
      tdo_ = (dr_shift_ & 1u) != 0;
      dr_shift_ >>= 1;
      if (tdi) dr_shift_ |= (1ull << (dr_length_ - 1));
      break;
    case TapState::CaptureIr:
      ir_shift_ = 0b0001;  // mandated capture pattern ...01
      break;
    case TapState::ShiftIr:
      tdo_ = (ir_shift_ & 1u) != 0;
      ir_shift_ = static_cast<std::uint8_t>(
          (ir_shift_ >> 1) |
          (static_cast<std::uint8_t>(tdi) << (kIrBits - 1)));
      break;
    default:
      break;
  }

  if (next == TapState::UpdateIr) ir_ = ir_shift_ & 0xF;
  if (next == TapState::UpdateDr && !faulty_) {
    // Memory-access side effects commit on Update-DR.
    if (ir_ == kIrMemAddr) {
      mem_addr_ = static_cast<std::uint32_t>(dr_shift_);
    } else if (ir_ == kIrMemData && memory_ &&
               mem_addr_ + 4 <= memory_->capacity()) {
      memory_->write_word(mem_addr_, static_cast<std::uint32_t>(dr_shift_));
      mem_addr_ += 4;  // auto-increment for streaming program load
    } else if (ir_ == kIrMemRead) {
      mem_addr_ += 4;  // advance the streaming read pointer
    }
  }
  if (next == TapState::TestLogicReset) ir_ = kIrIdcode;

  return faulty_ ? false : tdo_;
}

TileTestChain::TileTestChain(int dap_count, std::uint32_t base_idcode,
                             bool tile_faulty)
    : faulty_(tile_faulty) {
  require(dap_count >= 1, "a tile chain needs at least one DAP");
  require(dap_count <= 16, "DAP index must fit the IDCODE field");
  daps_.reserve(static_cast<std::size_t>(dap_count));
  // Per-DAP IDCODE: the tile's base code with the DAP index in bits 7:4
  // (matches WaferTestChain::expected_idcode).  A faulty tile's DAPs are
  // dead: stuck TDO and no memory-port side effects.
  for (int d = 0; d < dap_count; ++d)
    daps_.emplace_back(base_idcode | (static_cast<std::uint32_t>(d) << 4),
                       tile_faulty);
}

bool TileTestChain::tck(bool tms, bool tdi) {
  bool out;
  if (broadcast_) {
    // TDItile fans out to every DAP; TDOtile comes from the first core.
    out = false;
    for (std::size_t d = 0; d < daps_.size(); ++d) {
      const bool o = daps_[d].tck(tms, tdi);
      if (d == 0) out = o;
    }
  } else {
    bool cur = tdi;
    for (auto& dap : daps_) cur = dap.tck(tms, cur);
    out = cur;
  }
  return faulty_ ? false : out;
}

WaferTestChain::WaferTestChain(int tiles, int daps_per_tile,
                               const std::vector<bool>& faulty) {
  require(tiles >= 1, "chain needs at least one tile");
  require(faulty.size() == static_cast<std::size_t>(tiles),
          "fault vector size mismatch");
  tiles_.reserve(static_cast<std::size_t>(tiles));
  for (int t = 0; t < tiles; ++t)
    tiles_.emplace_back(daps_per_tile, expected_idcode(t, 0),
                        faulty[static_cast<std::size_t>(t)]);
}

std::uint32_t WaferTestChain::expected_idcode(int t, int d) const {
  // Vendor-style IDCODE: part number encodes the tile position, the low
  // bits the DAP index; bit 0 is always 1 per IEEE 1149.1.
  return 0x0AF00001u | (static_cast<std::uint32_t>(t) << 12) |
         (static_cast<std::uint32_t>(d) << 4);
}

void WaferTestChain::set_unrolled(int n) {
  require(n >= 0 && n < tile_count(), "unroll depth out of range");
  unrolled_ = n;
}

void WaferTestChain::set_broadcast(bool on) {
  for (auto& t : tiles_) t.set_broadcast(on);
}

bool WaferTestChain::tck(bool tms, bool tdi) {
  // Active prefix: `unrolled_` forwarding tiles plus one loop-back tile.
  const int depth = std::min(unrolled_ + 1, tile_count());
  bool cur = tdi;
  for (int t = 0; t < depth; ++t)
    cur = tiles_[static_cast<std::size_t>(t)].tck(tms, cur);
  // The loop-back tile's TDOtile returns to the controller through the
  // upstream tiles' TDI-bypass wiring (combinational).
  return cur;
}

void TileTestChain::attach_memories(
    const std::vector<mem::SramBank*>& banks) {
  require(banks.size() == daps_.size(),
          "one memory per DAP expected");
  for (std::size_t d = 0; d < daps_.size(); ++d)
    daps_[d].attach_memory(banks[d]);
}

bool JtagHost::clock(bool tms, bool tdi) {
  ++tcks_;
  return chain_->tck(tms, tdi);
}

void JtagHost::reset() {
  for (int i = 0; i < 5; ++i) clock(true, false);
}

void JtagHost::enter_shift_dr() {
  clock(false, false);  // -> Run-Test/Idle
  clock(true, false);   // -> Select-DR-Scan
  clock(false, false);  // -> Capture-DR
  clock(false, false);  // capture happens; -> Shift-DR
}

std::vector<bool> JtagHost::shift_dr(const std::vector<bool>& bits) {
  require(!bits.empty(), "shift_dr needs at least one bit");
  std::vector<bool> out;
  out.reserve(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const bool last = i + 1 == bits.size();
    out.push_back(clock(last, bits[i]));  // final shift exits to Exit1-DR
  }
  clock(true, false);   // -> Update-DR
  clock(false, false);  // -> Run-Test/Idle
  return out;
}

void JtagHost::enter_shift_ir() {
  clock(false, false);  // -> Run-Test/Idle
  clock(true, false);   // -> Select-DR-Scan
  clock(true, false);   // -> Select-IR-Scan
  clock(false, false);  // -> Capture-IR
  clock(false, false);  // capture happens; -> Shift-IR
}

std::vector<bool> JtagHost::shift_ir(const std::vector<bool>& bits) {
  require(!bits.empty(), "shift_ir needs at least one bit");
  std::vector<bool> out;
  out.reserve(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const bool last = i + 1 == bits.size();
    out.push_back(clock(last, bits[i]));
  }
  clock(true, false);   // -> Update-IR
  clock(false, false);  // -> Run-Test/Idle
  return out;
}

namespace {
void append_word_bits(std::vector<bool>& bits, std::uint64_t value,
                      int width, int repeats) {
  for (int r = 0; r < repeats; ++r)
    for (int b = 0; b < width; ++b)
      bits.push_back(((value >> b) & 1ull) != 0);
}
}  // namespace

void JtagHost::set_ir_all(std::uint8_t ir, int daps_in_path) {
  require(daps_in_path >= 1, "empty scan path");
  enter_shift_ir();
  std::vector<bool> bits;
  bits.reserve(static_cast<std::size_t>(daps_in_path) * kIrBits);
  append_word_bits(bits, ir, kIrBits, daps_in_path);
  (void)shift_ir(bits);
}

void JtagHost::write_words(std::uint32_t base_addr,
                           const std::vector<std::uint32_t>& words,
                           int daps_in_path) {
  set_ir_all(kIrMemAddr, daps_in_path);
  enter_shift_dr();
  std::vector<bool> addr_bits;
  append_word_bits(addr_bits, base_addr, kWordBits, daps_in_path);
  (void)shift_dr(addr_bits);

  set_ir_all(kIrMemData, daps_in_path);
  for (const std::uint32_t word : words) {
    enter_shift_dr();
    std::vector<bool> bits;
    append_word_bits(bits, word, kWordBits, daps_in_path);
    (void)shift_dr(bits);  // Update-DR writes + auto-increments everywhere
  }
}

std::vector<std::vector<std::uint32_t>> JtagHost::read_words(
    std::uint32_t base_addr, int count, int daps_in_path) {
  set_ir_all(kIrMemAddr, daps_in_path);
  enter_shift_dr();
  std::vector<bool> addr_bits;
  append_word_bits(addr_bits, base_addr, kWordBits, daps_in_path);
  (void)shift_dr(addr_bits);

  set_ir_all(kIrMemRead, daps_in_path);
  std::vector<std::vector<std::uint32_t>> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int w = 0; w < count; ++w) {
    enter_shift_dr();  // Capture-DR loads the current word everywhere
    const std::vector<bool> zeros(
        static_cast<std::size_t>(daps_in_path) * kWordBits, false);
    const std::vector<bool> raw = shift_dr(zeros);
    std::vector<std::uint32_t> per_dap;
    per_dap.reserve(static_cast<std::size_t>(daps_in_path));
    for (int d = 0; d < daps_in_path; ++d) {
      std::uint32_t v = 0;
      for (int b = 0; b < kWordBits; ++b)
        if (raw[static_cast<std::size_t>(d) * kWordBits + b]) v |= 1u << b;
      per_dap.push_back(v);
    }
    out.push_back(std::move(per_dap));
  }
  return out;
}

std::vector<std::uint32_t> JtagHost::read_idcodes(int dap_count) {
  require(dap_count >= 1, "need at least one DAP in the path");
  reset();  // every IR now selects IDCODE
  enter_shift_dr();
  const std::vector<bool> zeros(
      static_cast<std::size_t>(dap_count) * kIdcodeBits, false);
  const std::vector<bool> raw = shift_dr(zeros);

  std::vector<std::uint32_t> codes;
  codes.reserve(static_cast<std::size_t>(dap_count));
  for (int d = 0; d < dap_count; ++d) {
    std::uint32_t v = 0;
    for (int b = 0; b < kIdcodeBits; ++b)
      if (raw[static_cast<std::size_t>(d) * kIdcodeBits + b])
        v |= (1u << b);
    codes.push_back(v);
  }
  return codes;
}

std::optional<int> WaferTestChain::locate_first_faulty(
    std::uint64_t* tck_budget) {
  JtagHost host(*this);
  const int daps_per_tile = tiles_.front().daps_in_path();

  std::optional<int> first_faulty;
  for (int k = 0; k < tile_count(); ++k) {
    set_unrolled(k);
    // Active depth is k+1 tiles; the DAP nearest TDO (tile k's last DAP)
    // shifts out first, so the newly appended tile occupies the first
    // `daps_per_tile` result slots.
    const int path_daps = (k + 1) * daps_per_tile;
    const std::vector<std::uint32_t> codes = host.read_idcodes(path_daps);
    bool ok = true;
    for (int d = 0; d < daps_per_tile; ++d) {
      const int dap_index = daps_per_tile - 1 - d;  // last DAP out first
      if (codes[static_cast<std::size_t>(d)] !=
          expected_idcode(k, dap_index)) {
        ok = false;
        break;
      }
    }
    if (!ok) {
      first_faulty = k;
      set_unrolled(std::max(0, k - 1));  // park at the last good prefix
      break;
    }
  }
  if (tck_budget) *tck_budget += host.tck_count();
  return first_faulty;
}

}  // namespace wsp::testinfra
