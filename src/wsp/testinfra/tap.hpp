// IEEE 1149.1 TAP controller finite-state machine (Sec. VII).
//
// The ARM Cortex-M3 Debug Access Port speaks "JTAG minus boundary scan":
// the standard 16-state TAP controller driven by TMS on each TCK rising
// edge, with instruction-register and data-register scan paths.  Every
// test feature of the waferscale system — program loading, fault
// isolation, the broadcast and unrolling tricks — rides on this FSM, so it
// is modelled bit-accurately.
#pragma once

#include <cstdint>

namespace wsp::testinfra {

/// The 16 TAP controller states of IEEE 1149.1.
enum class TapState : std::uint8_t {
  TestLogicReset, RunTestIdle,
  SelectDrScan, CaptureDr, ShiftDr, Exit1Dr, PauseDr, Exit2Dr, UpdateDr,
  SelectIrScan, CaptureIr, ShiftIr, Exit1Ir, PauseIr, Exit2Ir, UpdateIr,
};

const char* to_string(TapState s);

/// Next state on a TCK rising edge with the given TMS value.
TapState tap_next_state(TapState state, bool tms);

/// A TAP controller instance (one per DAP).
class TapController {
 public:
  TapState state() const { return state_; }

  /// Advances one TCK rising edge; returns the new state.
  TapState step(bool tms) { return state_ = tap_next_state(state_, tms); }

  /// Synchronous reset: five TCKs with TMS high reach Test-Logic-Reset
  /// from any state (a property test asserts this invariant).
  void reset() { state_ = TapState::TestLogicReset; }

 private:
  TapState state_ = TapState::TestLogicReset;
};

}  // namespace wsp::testinfra
