#include "wsp/testinfra/prebond.hpp"

#include "wsp/common/error.hpp"

namespace wsp::testinfra {

bool probeable(double pitch_m, const ProbePadRules& rules) {
  return pitch_m >= rules.min_probe_pitch_m;
}

ProbePadPlan plan_probe_pads(int signal_count, const ProbePadRules& rules) {
  require(signal_count >= 0, "signal count cannot be negative");
  ProbePadPlan plan;
  plan.probe_pad_count = signal_count;
  plan.probe_pad_pitch_m = rules.min_probe_pitch_m;
  plan.area_m2 = static_cast<double>(signal_count) *
                 rules.min_probe_pitch_m * rules.min_probe_pitch_m;
  plan.probed_pads_bonded = false;
  return plan;
}

KgdBenefit kgd_benefit(const SystemConfig& config, double die_defect_rate,
                       double chiplet_bond_yield) {
  require(die_defect_rate >= 0.0 && die_defect_rate <= 1.0,
          "die defect rate must be a probability");
  require(chiplet_bond_yield >= 0.0 && chiplet_bond_yield <= 1.0,
          "bond yield must be a probability");
  KgdBenefit b;
  b.faulty_chiplet_rate_with_kgd = 1.0 - chiplet_bond_yield;
  b.faulty_chiplet_rate_without_kgd =
      1.0 - chiplet_bond_yield * (1.0 - die_defect_rate);
  const double chiplets = static_cast<double>(config.total_chiplets());
  b.expected_faulty_with_kgd = chiplets * b.faulty_chiplet_rate_with_kgd;
  b.expected_faulty_without_kgd =
      chiplets * b.faulty_chiplet_rate_without_kgd;
  return b;
}

}  // namespace wsp::testinfra
