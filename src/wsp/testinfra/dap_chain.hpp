// DAP models, the 14-DAP intra-tile chain with broadcast mode, and the
// multi-tile chain with progressive loop-back unrolling
// (Sec. VII, Figs. 9 and 10).
//
// Intra-tile: the 14 core DAPs are daisy-chained so one JTAG interface
// serves the whole tile.  A broadcast mode feeds TDItile to *all* DAP TDI
// pins and takes TDOtile from the first core — when every core runs the
// same program (the common case for the paper's workloads), program
// loading shifts one DAP's worth of bits instead of fourteen (14x faster).
//
// Inter-tile: tiles chain along a row.  Each tile's TDOtile either
// forwards to the next tile or loops back toward the external controller
// through the upstream tiles' TDI-bypass wiring.  On power-up every tile
// is in loop-back mode; the chain is unrolled tile by tile, testing each
// newly appended tile, which pin-points the first faulty chiplet in the
// chain (and works for partially assembled wafers during bonding).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "wsp/mem/sram_bank.hpp"
#include "wsp/testinfra/tap.hpp"

namespace wsp::testinfra {

/// IR opcodes of the simplified DAP (4-bit IR, per ARM convention the IR
/// capture pattern is 0b0001).
inline constexpr std::uint8_t kIrBypass = 0xF;
inline constexpr std::uint8_t kIrIdcode = 0xE;
/// Memory-access registers: address (auto-incrementing) and data.  These
/// model the DAP's memory-access port used for program/data loading —
/// an Update-DR on the data register writes one word into the attached
/// SRAM, a Capture-DR reads one back.
inline constexpr std::uint8_t kIrMemAddr = 0x8;
inline constexpr std::uint8_t kIrMemData = 0x9;  ///< write on Update-DR
inline constexpr std::uint8_t kIrMemRead = 0xA;  ///< capture on Capture-DR
inline constexpr int kIrBits = 4;
inline constexpr int kIdcodeBits = 32;
inline constexpr int kWordBits = 32;

/// One core's Debug Access Port: TAP controller + IR + IDCODE/BYPASS DRs.
/// A faulty DAP drives its TDO stuck-at-0.
class DapPort {
 public:
  explicit DapPort(std::uint32_t idcode, bool faulty = false)
      : idcode_(idcode), faulty_(faulty) {}

  std::uint32_t idcode() const { return idcode_; }
  bool faulty() const { return faulty_; }
  TapState state() const { return tap_.state(); }
  std::uint8_t ir() const { return ir_; }

  /// Binds the memory the DAP's memory-access port reads/writes (a core's
  /// private SRAM in the real chip).  Not owned.
  void attach_memory(mem::SramBank* memory) { memory_ = memory; }
  std::uint32_t mem_address() const { return mem_addr_; }

  /// One TCK rising edge.  Returns the TDO value presented downstream.
  bool tck(bool tms, bool tdi);

 private:
  TapController tap_;
  std::uint32_t idcode_;
  bool faulty_;
  std::uint8_t ir_ = kIrIdcode;        ///< reset value selects IDCODE
  std::uint8_t ir_shift_ = 0;
  std::uint64_t dr_shift_ = 0;
  int dr_length_ = kIdcodeBits;
  bool tdo_ = false;
  mem::SramBank* memory_ = nullptr;
  std::uint32_t mem_addr_ = 0;

  int selected_dr_length() const {
    switch (ir_) {
      case kIrIdcode: return kIdcodeBits;
      case kIrMemAddr:
      case kIrMemData:
      case kIrMemRead: return kWordBits;
      default: return 1;  // everything else behaves as BYPASS
    }
  }
};

/// The 14-DAP chain inside one tile, with broadcast mode (Fig. 9).
class TileTestChain {
 public:
  TileTestChain(int dap_count, std::uint32_t base_idcode,
                bool tile_faulty = false);

  int dap_count() const { return static_cast<int>(daps_.size()); }
  bool faulty() const { return faulty_; }

  /// Broadcast mode: TDI to all DAPs, TDO from the first core.
  void set_broadcast(bool on) { broadcast_ = on; }
  bool broadcast() const { return broadcast_; }

  /// One TCK edge through the tile chain: returns TDOtile.
  bool tck(bool tms, bool tdi);

  /// Serial scan-path bit length currently presented by the tile
  /// (broadcast mode shows a single DAP).
  int daps_in_path() const { return broadcast_ ? 1 : dap_count(); }

  const DapPort& dap(int i) const { return daps_[static_cast<std::size_t>(i)]; }
  DapPort& dap(int i) { return daps_[static_cast<std::size_t>(i)]; }

  /// Binds each DAP's memory-access port to a core-private SRAM.
  void attach_memories(const std::vector<mem::SramBank*>& banks);

 private:
  std::vector<DapPort> daps_;
  bool broadcast_ = false;
  bool faulty_ = false;
};

/// Multi-tile JTAG chain with progressive unrolling (Fig. 10).
class WaferTestChain {
 public:
  /// `faulty[i]` marks tile i's chiplet as bad (its TDO sticks at 0).
  WaferTestChain(int tiles, int daps_per_tile,
                 const std::vector<bool>& faulty);

  int tile_count() const { return static_cast<int>(tiles_.size()); }

  /// Number of tiles currently in forward mode; the chain's active depth
  /// is `unrolled() + 1` (the next tile is in loop-back).
  int unrolled() const { return unrolled_; }
  /// Moves the first `n` tiles to forward mode (0 <= n < tile_count).
  void set_unrolled(int n);

  /// Broadcast mode applied to every tile.
  void set_broadcast(bool on);

  /// One TCK edge through the active chain prefix; returns TDOloop.
  bool tck(bool tms, bool tdi);

  /// Expected IDCODE of tile `t`, dap `d`.
  std::uint32_t expected_idcode(int t, int d) const;

  TileTestChain& tile(int t) { return tiles_[static_cast<std::size_t>(t)]; }

  /// Runs the progressive unrolling procedure of Fig. 10: unrolls the
  /// chain one tile at a time, reading the newly appended tile's IDCODEs,
  /// and returns the index of the first faulty tile (nullopt when the
  /// whole chain is good).  Leaves the chain unrolled up to the last good
  /// tile.  `tck_budget`, if non-null, accumulates TCK cycles spent.
  std::optional<int> locate_first_faulty(std::uint64_t* tck_budget = nullptr);

 private:
  std::vector<TileTestChain> tiles_;
  int unrolled_ = 0;

  friend class JtagHost;
};

/// Host-side JTAG driver: wiggles TMS/TDI against a WaferTestChain and
/// implements the standard scan operations.
class JtagHost {
 public:
  explicit JtagHost(WaferTestChain& chain) : chain_(&chain) {}

  std::uint64_t tck_count() const { return tcks_; }

  /// Five TMS-high clocks: synchronous reset into Test-Logic-Reset.
  void reset();

  /// From Run-Test/Idle (or reset), enter Shift-DR.
  void enter_shift_dr();
  /// From Run-Test/Idle (or reset), enter Shift-IR.
  void enter_shift_ir();

  /// Shifts `bits.size()` bits through the DR path (LSB-first of the
  /// vector), leaving Shift-DR on the last bit (exit via Exit1->Update).
  /// Returns the bits captured from TDO.
  std::vector<bool> shift_dr(const std::vector<bool>& bits);
  /// Same through the IR path.
  std::vector<bool> shift_ir(const std::vector<bool>& bits);

  /// Loads instruction `ir` into every DAP of the current scan path.
  void set_ir_all(std::uint8_t ir, int daps_in_path);

  /// Streams `words` into every DAP's attached memory starting at
  /// `base_addr` (all DAPs in the path receive the same image — the
  /// paper's broadcast-style program load; with one DAP in the path it is
  /// a plain single-core load).
  void write_words(std::uint32_t base_addr,
                   const std::vector<std::uint32_t>& words,
                   int daps_in_path);

  /// Streaming read-back: returns `count` words per DAP starting at
  /// `base_addr`; result[i] holds word i of every DAP in TDO-first order.
  std::vector<std::vector<std::uint32_t>> read_words(std::uint32_t base_addr,
                                                     int count,
                                                     int daps_in_path);

  /// Reads the IDCODEs visible on the current chain (after reset, every
  /// DAP's IR selects IDCODE).  `dap_count` is the number of DAPs in the
  /// scan path.  Ordering: the DAP nearest TDO comes out first.
  std::vector<std::uint32_t> read_idcodes(int dap_count);

 private:
  WaferTestChain* chain_;
  std::uint64_t tcks_ = 0;

  bool clock(bool tms, bool tdi);
};

}  // namespace wsp::testinfra
