#include "wsp/testinfra/test_time.hpp"

#include "wsp/common/error.hpp"

namespace wsp::testinfra {

std::uint64_t total_memory_payload_bits(const SystemConfig& config) {
  const std::uint64_t private_bits =
      static_cast<std::uint64_t>(config.cores_per_tile) *
      config.private_mem_per_core_bytes * 8ull;
  const std::uint64_t bank_bits =
      static_cast<std::uint64_t>(config.banks_per_memory_chiplet) *
      config.bank_bytes * 8ull;
  return static_cast<std::uint64_t>(config.total_tiles()) *
         (private_bits + bank_bits);
}

LoadTimeReport memory_load_time(const SystemConfig& config, int chains,
                                bool broadcast,
                                const TestTimeParams& params) {
  require(chains >= 1 && chains <= config.array_height,
          "chains are organised per tile row");
  require(params.protocol_overhead >= 1.0,
          "protocol overhead cannot be below 1 TCK per bit");

  LoadTimeReport r;
  r.chains = chains;
  r.broadcast = broadcast;

  std::uint64_t bits = total_memory_payload_bits(config);
  if (broadcast) {
    // Broadcast shifts one private image per tile instead of one per core.
    const std::uint64_t private_bits =
        static_cast<std::uint64_t>(config.total_tiles()) *
        config.cores_per_tile * config.private_mem_per_core_bytes * 8ull;
    const std::uint64_t one_copy =
        private_bits / static_cast<std::uint64_t>(config.cores_per_tile);
    bits = bits - private_bits + one_copy;
  }
  r.total_payload_bits = bits;

  const int tiles_per_chain =
      config.total_tiles() / chains;  // rows x width / chains
  r.tck_hz = config.jtag_tck_hz /
             (1.0 + params.tck_load_derate * (tiles_per_chain - 1));

  // Chains run in parallel; bits spread evenly across chains.
  const double bits_per_chain =
      static_cast<double>(bits) / static_cast<double>(chains);
  r.seconds = bits_per_chain * params.protocol_overhead / r.tck_hz;
  return r;
}

double broadcast_speedup(const SystemConfig& config) {
  return static_cast<double>(config.cores_per_tile);
}

}  // namespace wsp::testinfra
