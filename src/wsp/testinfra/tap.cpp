#include "wsp/testinfra/tap.hpp"

namespace wsp::testinfra {

const char* to_string(TapState s) {
  switch (s) {
    case TapState::TestLogicReset: return "Test-Logic-Reset";
    case TapState::RunTestIdle: return "Run-Test/Idle";
    case TapState::SelectDrScan: return "Select-DR-Scan";
    case TapState::CaptureDr: return "Capture-DR";
    case TapState::ShiftDr: return "Shift-DR";
    case TapState::Exit1Dr: return "Exit1-DR";
    case TapState::PauseDr: return "Pause-DR";
    case TapState::Exit2Dr: return "Exit2-DR";
    case TapState::UpdateDr: return "Update-DR";
    case TapState::SelectIrScan: return "Select-IR-Scan";
    case TapState::CaptureIr: return "Capture-IR";
    case TapState::ShiftIr: return "Shift-IR";
    case TapState::Exit1Ir: return "Exit1-IR";
    case TapState::PauseIr: return "Pause-IR";
    case TapState::Exit2Ir: return "Exit2-IR";
    case TapState::UpdateIr: return "Update-IR";
  }
  return "?";
}

TapState tap_next_state(TapState state, bool tms) {
  switch (state) {
    case TapState::TestLogicReset:
      return tms ? TapState::TestLogicReset : TapState::RunTestIdle;
    case TapState::RunTestIdle:
      return tms ? TapState::SelectDrScan : TapState::RunTestIdle;
    case TapState::SelectDrScan:
      return tms ? TapState::SelectIrScan : TapState::CaptureDr;
    case TapState::CaptureDr:
      return tms ? TapState::Exit1Dr : TapState::ShiftDr;
    case TapState::ShiftDr:
      return tms ? TapState::Exit1Dr : TapState::ShiftDr;
    case TapState::Exit1Dr:
      return tms ? TapState::UpdateDr : TapState::PauseDr;
    case TapState::PauseDr:
      return tms ? TapState::Exit2Dr : TapState::PauseDr;
    case TapState::Exit2Dr:
      return tms ? TapState::UpdateDr : TapState::ShiftDr;
    case TapState::UpdateDr:
      return tms ? TapState::SelectDrScan : TapState::RunTestIdle;
    case TapState::SelectIrScan:
      return tms ? TapState::TestLogicReset : TapState::CaptureIr;
    case TapState::CaptureIr:
      return tms ? TapState::Exit1Ir : TapState::ShiftIr;
    case TapState::ShiftIr:
      return tms ? TapState::Exit1Ir : TapState::ShiftIr;
    case TapState::Exit1Ir:
      return tms ? TapState::UpdateIr : TapState::PauseIr;
    case TapState::PauseIr:
      return tms ? TapState::Exit2Ir : TapState::PauseIr;
    case TapState::Exit2Ir:
      return tms ? TapState::UpdateIr : TapState::ShiftIr;
    case TapState::UpdateIr:
      return tms ? TapState::SelectDrScan : TapState::RunTestIdle;
  }
  return TapState::TestLogicReset;
}

}  // namespace wsp::testinfra
