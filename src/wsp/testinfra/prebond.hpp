// Pre-bond (known-good-die) testing model (Sec. VII-A, Fig. 8).
//
// Fine-pitch pads (10 um pitch, 7 um width) cannot be probe-tested: probe
// cards need >=50 um pitch, and a probe landing scrubs the pad surface,
// ruining the planarity that direct Cu-Cu bonding depends on.  The design
// therefore duplicates the JTAG + auxiliary signals on *larger probe pads*
// that are used only before bonding; the fine-pitch copies of those
// signals are bonded, the probed pads are not.
//
// This module checks the probe-pad geometry constraints and quantifies the
// KGD benefit: how many assembly faults pre-bond screening avoids.
#pragma once

#include "wsp/common/config.hpp"

namespace wsp::testinfra {

struct ProbePadRules {
  double min_probe_pitch_m = 50e-6;  ///< probe-card capability
  double fine_pitch_m = 10e-6;
  double fine_pad_width_m = 7e-6;
};

/// True when a pad at `pitch_m` can be probe-card tested.
bool probeable(double pitch_m, const ProbePadRules& rules = {});

struct ProbePadPlan {
  int probe_pad_count = 0;       ///< duplicated JTAG + auxiliary signals
  double probe_pad_pitch_m = 0;
  double area_m2 = 0.0;          ///< extra chiplet area for probe pads
  bool probed_pads_bonded = false;  ///< must stay false (planarity rule)
};

/// Probe-pad plan for one chiplet: duplicates `signal_count` signals at
/// the minimum probeable pitch with square pads of that pitch.
ProbePadPlan plan_probe_pads(int signal_count,
                             const ProbePadRules& rules = {});

/// Known-good-die economics: with pre-bond screening, dies with
/// manufacturing defects (probability `die_defect_rate`) never reach
/// assembly, so the assembled wafer only suffers bonding faults.  Without
/// screening both defect classes land on the wafer.
struct KgdBenefit {
  double faulty_chiplet_rate_with_kgd = 0.0;     ///< bonding faults only
  double faulty_chiplet_rate_without_kgd = 0.0;  ///< bonding + die defects
  double expected_faulty_with_kgd = 0.0;         ///< over the full wafer
  double expected_faulty_without_kgd = 0.0;
};
KgdBenefit kgd_benefit(const SystemConfig& config, double die_defect_rate,
                       double chiplet_bond_yield);

}  // namespace wsp::testinfra
