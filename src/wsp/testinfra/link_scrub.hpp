// Hardware collection path for link-health telemetry (Sec. VII machinery
// reused at runtime).
//
// Each tile's firmware periodically deposits its four per-direction link
// scrub words (packed CRC-error / traversal counters, see
// wsp/noc/link_health.hpp) into a small scrub region of its local SRAM.
// The external maintenance host then harvests the whole wafer's telemetry
// over the same DAP/JTAG chain used for bring-up and SRAM repair: the
// multi-tile chain is fully unrolled (one DAP per tile in the scan path)
// and a streaming read returns every tile's words in one pass.
//
// This module stays NoC-agnostic on purpose — it moves 32-bit words over
// the chain; what the words mean (and what to retire because of them) is
// the LinkHealthMonitor's business.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "wsp/common/geometry.hpp"
#include "wsp/mem/sram_bank.hpp"
#include "wsp/obs/metrics.hpp"
#include "wsp/testinfra/dap_chain.hpp"

namespace wsp::testinfra {

/// Words per tile in the scrub region: one per mesh direction.
inline constexpr int kScrubWordsPerTile = 4;

/// One scrub SRAM per tile bound to a fully unrolled wafer JTAG chain.
class LinkScrubChain {
 public:
  /// `base_addr` is the byte offset of the scrub region in each tile's
  /// SRAM (word-aligned).
  explicit LinkScrubChain(const TileGrid& grid, std::uint32_t base_addr = 0);

  std::size_t tile_count() const { return srams_.size(); }
  std::uint32_t base_addr() const { return base_addr_; }
  std::uint64_t tck_count() const { return host_.tck_count(); }

  /// Firmware side: tile `tile_index` writes its packed counters into its
  /// scrub region (a plain local SRAM store, no JTAG involved).
  void deposit(std::size_t tile_index,
               const std::array<std::uint32_t, kScrubWordsPerTile>& words);

  /// Host side: harvests every tile's scrub region over the JTAG chain in
  /// one streaming read.  Result is indexed by tile (grid index order),
  /// regardless of the chain's TDO-first shift order.
  std::vector<std::array<std::uint32_t, kScrubWordsPerTile>> scrub();

  /// Binds harvest telemetry into `registry` under the "scrub." namespace:
  /// counters scrub.harvests (scrub() calls), scrub.words (32-bit words
  /// harvested) and scrub.tck_cycles (JTAG clock cycles spent, summed over
  /// harvests).  Pass nullptr to unbind (the default: no recording).  The
  /// registry must outlive the chain.
  void bind_metrics(obs::MetricsRegistry* registry);

 private:
  std::uint32_t base_addr_;
  std::vector<mem::SramBank> srams_;
  WaferTestChain chain_;
  JtagHost host_;

  // Registry-backed harvest telemetry (all null while unbound).
  struct Metrics {
    obs::Counter* harvests = nullptr;
    obs::Counter* words = nullptr;
    obs::Counter* tck_cycles = nullptr;
  } metrics_;
};

}  // namespace wsp::testinfra
