#include "wsp/testinfra/link_scrub.hpp"

#include "wsp/common/error.hpp"

namespace wsp::testinfra {

namespace {
// One SRAM page per tile: the smallest bank the repair machinery accepts.
constexpr std::uint32_t kScrubSramBytes = 4096;
}  // namespace

LinkScrubChain::LinkScrubChain(const TileGrid& grid, std::uint32_t base_addr)
    : base_addr_(base_addr),
      chain_(static_cast<int>(grid.tile_count()), /*daps_per_tile=*/1,
             std::vector<bool>(grid.tile_count(), false)),
      host_(chain_) {
  require(base_addr % 4 == 0, "scrub region must be word-aligned");
  require(base_addr + 4 * kScrubWordsPerTile <= kScrubSramBytes,
          "scrub region exceeds the scrub SRAM");
  srams_.reserve(grid.tile_count());
  for (std::size_t t = 0; t < grid.tile_count(); ++t) {
    srams_.emplace_back(kScrubSramBytes);
    chain_.tile(static_cast<int>(t)).attach_memories({&srams_.back()});
  }
  // All telemetry reads use the full chain: every tile in forward mode.
  chain_.set_unrolled(static_cast<int>(grid.tile_count()) - 1);
}

void LinkScrubChain::deposit(
    std::size_t tile_index,
    const std::array<std::uint32_t, kScrubWordsPerTile>& words) {
  require(tile_index < srams_.size(), "deposit: tile index out of range");
  for (int w = 0; w < kScrubWordsPerTile; ++w)
    srams_[tile_index].write_word(
        base_addr_ + 4 * static_cast<std::uint32_t>(w),
        words[static_cast<std::size_t>(w)]);
}

std::vector<std::array<std::uint32_t, kScrubWordsPerTile>>
LinkScrubChain::scrub() {
  const int tiles = static_cast<int>(srams_.size());
  host_.reset();
  const auto raw = host_.read_words(base_addr_, kScrubWordsPerTile, tiles);
  // The DAP nearest TDO (the last tile of the chain) shifts out first:
  // slot d of each word row belongs to tile (tiles - 1 - d).
  std::vector<std::array<std::uint32_t, kScrubWordsPerTile>> out(
      srams_.size());
  for (int w = 0; w < kScrubWordsPerTile; ++w)
    for (int d = 0; d < tiles; ++d)
      out[static_cast<std::size_t>(tiles - 1 - d)]
         [static_cast<std::size_t>(w)] = raw[static_cast<std::size_t>(w)]
                                            [static_cast<std::size_t>(d)];
  return out;
}

}  // namespace wsp::testinfra
