#include "wsp/testinfra/link_scrub.hpp"

#include "wsp/common/error.hpp"
#include "wsp/obs/trace.hpp"

namespace wsp::testinfra {

namespace {
// One SRAM page per tile: the smallest bank the repair machinery accepts.
constexpr std::uint32_t kScrubSramBytes = 4096;
}  // namespace

LinkScrubChain::LinkScrubChain(const TileGrid& grid, std::uint32_t base_addr)
    : base_addr_(base_addr),
      chain_(static_cast<int>(grid.tile_count()), /*daps_per_tile=*/1,
             std::vector<bool>(grid.tile_count(), false)),
      host_(chain_) {
  require(base_addr % 4 == 0, "scrub region must be word-aligned");
  require(base_addr + 4 * kScrubWordsPerTile <= kScrubSramBytes,
          "scrub region exceeds the scrub SRAM");
  srams_.reserve(grid.tile_count());
  for (std::size_t t = 0; t < grid.tile_count(); ++t) {
    srams_.emplace_back(kScrubSramBytes);
    chain_.tile(static_cast<int>(t)).attach_memories({&srams_.back()});
  }
  // All telemetry reads use the full chain: every tile in forward mode.
  chain_.set_unrolled(static_cast<int>(grid.tile_count()) - 1);
}

void LinkScrubChain::deposit(
    std::size_t tile_index,
    const std::array<std::uint32_t, kScrubWordsPerTile>& words) {
  require(tile_index < srams_.size(), "deposit: tile index out of range");
  for (int w = 0; w < kScrubWordsPerTile; ++w)
    srams_[tile_index].write_word(
        base_addr_ + 4 * static_cast<std::uint32_t>(w),
        words[static_cast<std::size_t>(w)]);
}

void LinkScrubChain::bind_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    metrics_ = Metrics{};
    return;
  }
  metrics_.harvests = &registry->counter("scrub.harvests");
  metrics_.words = &registry->counter("scrub.words");
  metrics_.tck_cycles = &registry->counter("scrub.tck_cycles");
}

std::vector<std::array<std::uint32_t, kScrubWordsPerTile>>
LinkScrubChain::scrub() {
  WSP_TRACE_SPAN("scrub.harvest");
  const int tiles = static_cast<int>(srams_.size());
  const std::uint64_t tck_before = host_.tck_count();
  host_.reset();
  const auto raw = host_.read_words(base_addr_, kScrubWordsPerTile, tiles);
  // The DAP nearest TDO (the last tile of the chain) shifts out first:
  // slot d of each word row belongs to tile (tiles - 1 - d).
  std::vector<std::array<std::uint32_t, kScrubWordsPerTile>> out(
      srams_.size());
  for (int w = 0; w < kScrubWordsPerTile; ++w)
    for (int d = 0; d < tiles; ++d)
      out[static_cast<std::size_t>(tiles - 1 - d)]
         [static_cast<std::size_t>(w)] = raw[static_cast<std::size_t>(w)]
                                            [static_cast<std::size_t>(d)];
  if (metrics_.harvests != nullptr) {
    metrics_.harvests->add();
    metrics_.words->add(static_cast<std::uint64_t>(tiles) *
                        kScrubWordsPerTile);
    metrics_.tck_cycles->add(host_.tck_count() - tck_before);
  }
  return out;
}

}  // namespace wsp::testinfra
