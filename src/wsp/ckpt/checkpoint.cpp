#include "wsp/ckpt/checkpoint.hpp"

#include <array>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

namespace wsp::ckpt {
namespace {

constexpr std::array<std::uint8_t, 8> kMagic = {'W', 'S', 'P', 'C',
                                                'K', 'P', 'T', '\0'};

// Reflected IEEE 802.3 table, generated once on first use.
const std::uint32_t* crc_table() {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table.data();
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         static_cast<std::uint64_t>(get_u32(p + 4)) << 32;
}

}  // namespace

const char* to_string(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::Io: return "io error";
    case ErrorKind::Truncated: return "truncated";
    case ErrorKind::BadMagic: return "bad magic";
    case ErrorKind::BadCrc: return "bad crc";
    case ErrorKind::VersionMismatch: return "version mismatch";
    case ErrorKind::SchemaMismatch: return "schema mismatch";
    case ErrorKind::TopologyMismatch: return "topology mismatch";
  }
  return "unknown";
}

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) {
  const std::uint32_t* table = crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i)
    c = table[(c ^ data[i]) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

void Writer::u16(std::uint16_t v) {
  bytes_.push_back(static_cast<std::uint8_t>(v));
  bytes_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) { put_u32(bytes_, v); }

void Writer::u64(std::uint64_t v) {
  put_u32(bytes_, static_cast<std::uint32_t>(v));
  put_u32(bytes_, static_cast<std::uint32_t>(v >> 32));
}

void Writer::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void Writer::str(const std::string& s) {
  u64(s.size());
  raw(s.data(), s.size());
}

void Writer::raw(const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  bytes_.insert(bytes_.end(), p, p + size);
}

std::uint8_t Reader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t Reader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(
      data_[pos_] | static_cast<std::uint16_t>(data_[pos_ + 1]) << 8);
  pos_ += 2;
  return v;
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = get_u32(data_ + pos_);
  pos_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v = get_u64(data_ + pos_);
  pos_ += 8;
  return v;
}

double Reader::f64() {
  std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

bool Reader::b() {
  std::uint8_t v = u8();
  if (v > 1)
    throw Error(ErrorKind::SchemaMismatch, "bool field is neither 0 nor 1");
  return v != 0;
}

std::string Reader::str() {
  std::size_t n = length(1);
  need(n);
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

void Reader::raw(void* out, std::size_t size) {
  need(size);
  std::memcpy(out, data_ + pos_, size);
  pos_ += size;
}

void Reader::expect_tag(std::uint32_t t, const char* what) {
  std::uint32_t got = u32();
  if (got != t)
    throw Error(ErrorKind::SchemaMismatch,
                std::string("section tag mismatch at ") + what);
}

std::size_t Reader::length(std::size_t min_element_size) {
  std::uint64_t n = u64();
  if (min_element_size == 0) min_element_size = 1;
  if (n > remaining() / min_element_size)
    throw Error(ErrorKind::Truncated,
                "declared element count exceeds remaining payload");
  return static_cast<std::size_t>(n);
}

std::vector<std::uint8_t> seal(std::uint32_t payload_kind,
                               std::uint32_t state_version,
                               const Writer& payload) {
  const auto& body = payload.bytes();
  std::vector<std::uint8_t> out;
  out.reserve(kFrameOverhead + body.size());
  for (std::uint8_t byte : kMagic) out.push_back(byte);
  put_u32(out, kContainerVersion);
  put_u32(out, payload_kind);
  put_u32(out, state_version);
  std::uint64_t size = body.size();
  put_u32(out, static_cast<std::uint32_t>(size));
  put_u32(out, static_cast<std::uint32_t>(size >> 32));
  out.insert(out.end(), body.begin(), body.end());
  put_u32(out, crc32(body.data(), body.size()));
  return out;
}

Frame open(const std::uint8_t* data, std::size_t size) {
  if (size < kFrameOverhead)
    throw Error(ErrorKind::Truncated, "file smaller than frame header");
  if (std::memcmp(data, kMagic.data(), kMagic.size()) != 0)
    throw Error(ErrorKind::BadMagic, "not a wsp::ckpt container");
  std::uint32_t container = get_u32(data + 8);
  if (container != kContainerVersion)
    throw Error(ErrorKind::VersionMismatch,
                "container version " + std::to_string(container) +
                    " (expected " + std::to_string(kContainerVersion) + ")");
  Frame frame;
  frame.payload_kind = get_u32(data + 12);
  frame.state_version = get_u32(data + 16);
  std::uint64_t payload_size = get_u64(data + 20);
  if (payload_size > size - kFrameOverhead)
    throw Error(ErrorKind::Truncated, "payload shorter than declared size");
  if (payload_size < size - kFrameOverhead)
    throw Error(ErrorKind::SchemaMismatch, "trailing bytes after frame");
  const std::uint8_t* payload = data + kHeaderSize;
  std::uint32_t declared_crc =
      get_u32(payload + static_cast<std::size_t>(payload_size));
  if (crc32(payload, static_cast<std::size_t>(payload_size)) != declared_crc)
    throw Error(ErrorKind::BadCrc, "payload checksum failure");
  frame.payload.assign(payload,
                       payload + static_cast<std::size_t>(payload_size));
  return frame;
}

Frame open_expect(const std::vector<std::uint8_t>& bytes,
                  std::uint32_t expected_kind) {
  Frame frame = open(bytes);
  if (frame.payload_kind != expected_kind)
    throw Error(ErrorKind::SchemaMismatch,
                "payload kind mismatch (snapshot is from a different "
                "subsystem)");
  return frame;
}

void atomic_write_file(const std::string& path, const void* data,
                       std::size_t size) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) throw Error(ErrorKind::Io, "cannot open " + tmp + " for writing");
  bool ok = size == 0 || std::fwrite(data, 1, size, f) == size;
  ok = (std::fflush(f) == 0) && ok;
  // Durability guarantee, not just atomicity: fsync the temp file *before*
  // the rename so its bytes reach stable storage before the new name does.
  // Rename alone only orders the metadata — after a power loss a journaled
  // filesystem may replay the rename but not the data, leaving the real
  // name pointing at a hole.  With the fsync-then-rename ordering (plus the
  // parent-directory fsync below, which persists the rename itself), a
  // snapshot that survives kill -9 also survives power loss: at any
  // interruption point `path` holds either the complete old contents or
  // the complete new contents.
  ok = (::fsync(fileno(f)) == 0) && ok;
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    throw Error(ErrorKind::Io, "short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw Error(ErrorKind::Io, "cannot rename " + tmp + " to " + path);
  }
  // Persist the rename: fsync the parent directory.  Best-effort — some
  // filesystems reject directory fsync (EINVAL), and by this point the
  // data itself is durable; the worst a lost rename can cost is falling
  // back to the previous complete snapshot.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash + 1);
  const int dfd = ::open(dir.c_str(), O_RDONLY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

bool atomic_write_text(const std::string& path,
                       const std::string& text) noexcept {
  try {
    atomic_write_file(path, text.data(), text.size());
    return true;
  } catch (const Error&) {
    return false;
  }
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) throw Error(ErrorKind::Io, "cannot open " + path);
  std::vector<std::uint8_t> bytes;
  std::array<std::uint8_t, 1 << 16> buf;
  std::size_t n;
  while ((n = std::fread(buf.data(), 1, buf.size(), f)) > 0)
    bytes.insert(bytes.end(), buf.data(), buf.data() + n);
  bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) throw Error(ErrorKind::Io, "read failure on " + path);
  return bytes;
}

void save_frame_file(const std::string& path, std::uint32_t payload_kind,
                     std::uint32_t state_version, const Writer& payload) {
  auto bytes = seal(payload_kind, state_version, payload);
  atomic_write_file(path, bytes.data(), bytes.size());
}

Frame load_frame_file(const std::string& path, std::uint32_t expected_kind) {
  return open_expect(read_file(path), expected_kind);
}

namespace {
constexpr std::uint32_t kHeartbeatKind = fourcc("HBEA");
constexpr std::uint32_t kHeartbeatVersion = 1;
}  // namespace

void save_heartbeat(const std::string& path, const Heartbeat& hb) {
  Writer w;
  w.u32(hb.shard);
  w.u32(hb.attempt);
  w.u64(hb.completed);
  w.u64(hb.sequence);
  save_frame_file(path, kHeartbeatKind, kHeartbeatVersion, w);
}

Heartbeat load_heartbeat(const std::string& path) {
  const Frame frame = load_frame_file(path, kHeartbeatKind);
  if (frame.state_version != kHeartbeatVersion)
    throw Error(ErrorKind::VersionMismatch,
                "heartbeat schema revision unknown");
  Reader r(frame.payload);
  Heartbeat hb;
  hb.shard = r.u32();
  hb.attempt = r.u32();
  hb.completed = r.u64();
  hb.sequence = r.u64();
  if (!r.done())
    throw Error(ErrorKind::SchemaMismatch, "trailing bytes after heartbeat");
  return hb;
}

void save_fault_map(Writer& w, const FaultMap& map) {
  w.tag(fourcc("FMAP"));
  w.i32(map.grid().width());
  w.i32(map.grid().height());
  map.grid().for_each(
      [&](TileCoord c) { w.b(map.is_faulty(c)); });
}

FaultMap load_fault_map(Reader& r, const TileGrid* expected) {
  r.expect_tag(fourcc("FMAP"), "FaultMap");
  int w = r.i32();
  int h = r.i32();
  if (w < 1 || h < 1 ||
      static_cast<std::size_t>(w) * static_cast<std::size_t>(h) >
          r.remaining())
    throw Error(ErrorKind::SchemaMismatch, "implausible FaultMap grid");
  TileGrid grid(w, h);
  if (expected && (w != expected->width() || h != expected->height()))
    throw Error(ErrorKind::TopologyMismatch,
                "FaultMap grid " + std::to_string(w) + "x" +
                    std::to_string(h) + " does not match live topology");
  FaultMap map(grid);
  grid.for_each([&](TileCoord c) { map.set_faulty(c, r.b()); });
  return map;
}

void save_link_faults(Writer& w, const LinkFaultSet& links) {
  w.tag(fourcc("LFLT"));
  w.i32(links.grid().width());
  w.i32(links.grid().height());
  links.grid().for_each([&](TileCoord c) {
    for (int d = 0; d < 4; ++d)
      w.b(links.is_failed(c, static_cast<Direction>(d)));
  });
}

LinkFaultSet load_link_faults(Reader& r, const TileGrid* expected) {
  r.expect_tag(fourcc("LFLT"), "LinkFaultSet");
  int w = r.i32();
  int h = r.i32();
  if (w < 1 || h < 1 ||
      static_cast<std::size_t>(w) * static_cast<std::size_t>(h) >
          r.remaining() / 4)
    throw Error(ErrorKind::SchemaMismatch, "implausible LinkFaultSet grid");
  TileGrid grid(w, h);
  if (expected && (w != expected->width() || h != expected->height()))
    throw Error(ErrorKind::TopologyMismatch,
                "LinkFaultSet grid " + std::to_string(w) + "x" +
                    std::to_string(h) + " does not match live topology");
  LinkFaultSet links(grid);
  grid.for_each([&](TileCoord c) {
    for (int d = 0; d < 4; ++d)
      links.set_failed(c, static_cast<Direction>(d), r.b());
  });
  return links;
}

}  // namespace wsp::ckpt
