// Deterministic checkpoint/replay: the versioned binary snapshot format.
//
// Long-horizon experiments (Monte Carlo degradation campaigns, rare-event
// BER sweeps) die with the process unless their state can leave it.  This
// module is the seam: every stateful subsystem exposes
// `save_state(ckpt::Writer&)` / `load_state(ckpt::Reader&)` hooks that
// serialise its complete simulation state — packet pools, per-link rings,
// RNG streams, solver voltages, metric counters — into a framed container:
//
//   offset  size  field
//   0       8     magic "WSPCKPT\0"
//   8       4     container version (u32 LE, currently 1)
//   12      4     payload kind (fourcc: which subsystem wrote it)
//   16      4     payload state version (per-subsystem schema revision)
//   20      8     payload size in bytes (u64 LE)
//   28      n     payload
//   28+n    4     CRC-32 (IEEE 802.3) of the payload
//
// Every multi-byte field is little-endian by construction (byte shifts,
// never memcpy-of-struct), so snapshots are portable across hosts.
//
// Strictness contract: loading never exhibits UB.  Truncation, corruption,
// a wrong magic, a wrong container/payload version, or a snapshot taken on
// a different topology all throw `ckpt::Error` with a typed `ErrorKind` —
// the Reader bounds-checks every read and the frame CRC is verified before
// any payload byte is interpreted.
//
// Emission contract: `atomic_write_file` writes to `<path>.tmp` and
// renames, so a crash mid-write never leaves a truncated snapshot under
// the real name.  `atomic_write_text` is the same discipline for the JSON
// artifact emitters (RunReport, BENCH_*.json).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "wsp/common/error.hpp"
#include "wsp/common/fault_map.hpp"

namespace wsp::ckpt {

/// What went wrong while loading (or emitting) a snapshot.
enum class ErrorKind : std::uint8_t {
  Io,                ///< file missing / unreadable / unwritable
  Truncated,         ///< fewer bytes than the format promises
  BadMagic,          ///< not a wsp::ckpt container at all
  BadCrc,            ///< payload bytes fail the CRC-32 check
  VersionMismatch,   ///< container or payload schema revision unknown
  SchemaMismatch,    ///< wrong payload kind, options, or internal shape
  TopologyMismatch,  ///< snapshot taken on a different grid/topology
};

const char* to_string(ErrorKind kind);

/// Typed load/emit failure.  Everything the loader can reject throws this
/// (never a raw wsp::Error, never UB), so callers can branch on kind().
class Error : public wsp::Error {
 public:
  Error(ErrorKind kind, const std::string& what)
      : wsp::Error(std::string("ckpt: ") + to_string(kind) + ": " + what),
        kind_(kind) {}
  ErrorKind kind() const { return kind_; }

 private:
  ErrorKind kind_;
};

/// CRC-32 (IEEE 802.3, reflected, init/xorout 0xFFFFFFFF) — the frame
/// integrity check.  crc32("123456789") == 0xCBF43926.
std::uint32_t crc32(const std::uint8_t* data, std::size_t size);

/// Four-character payload-kind tag, e.g. fourcc("NOCS").
constexpr std::uint32_t fourcc(const char (&s)[5]) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(s[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(s[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(s[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(s[3])) << 24;
}

/// Append-only little-endian byte sink.  All save_state hooks write
/// through this, so the payload encoding is uniform across subsystems.
class Writer {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void b(bool v) { u8(v ? 1 : 0); }
  void str(const std::string& s);
  void raw(const void* data, std::size_t size);

  /// Section marker: a fourcc the matching Reader::expect_tag verifies, so
  /// a schema drift fails loudly at the section boundary instead of
  /// silently misinterpreting downstream bytes.
  void tag(std::uint32_t t) { u32(t); }

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::size_t size() const { return bytes_.size(); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked little-endian byte source.  Every read validates the
/// remaining length first and throws Error{Truncated} on shortfall, so a
/// malformed payload can never read out of bounds.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit Reader(const std::vector<std::uint8_t>& bytes)
      : Reader(bytes.data(), bytes.size()) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  bool b();
  std::string str();
  void raw(void* out, std::size_t size);

  /// Verifies the next u32 equals `t`; throws Error{SchemaMismatch} naming
  /// `what` otherwise.
  void expect_tag(std::uint32_t t, const char* what);

  std::size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }

  /// Reads a u64 element count and validates it against the remaining
  /// bytes (each element occupying at least `min_element_size` bytes), so
  /// a corrupt length can never drive a multi-gigabyte allocation.
  std::size_t length(std::size_t min_element_size = 1);

 private:
  void need(std::size_t n) const {
    if (size_ - pos_ < n)
      throw Error(ErrorKind::Truncated, "payload ends mid-field");
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

inline constexpr std::uint32_t kContainerVersion = 1;
inline constexpr std::size_t kHeaderSize = 28;  ///< magic..payload_size
inline constexpr std::size_t kFrameOverhead = kHeaderSize + 4;  ///< + CRC

/// An opened container: kind + schema revision + verified payload bytes.
struct Frame {
  std::uint32_t payload_kind = 0;
  std::uint32_t state_version = 0;
  std::vector<std::uint8_t> payload;
};

/// Wraps a payload in the magic/version/CRC-32 frame.
std::vector<std::uint8_t> seal(std::uint32_t payload_kind,
                               std::uint32_t state_version,
                               const Writer& payload);

/// Validates and unwraps a frame.  Throws Error with kind Truncated /
/// BadMagic / VersionMismatch / SchemaMismatch (trailing bytes) / BadCrc.
Frame open(const std::uint8_t* data, std::size_t size);
inline Frame open(const std::vector<std::uint8_t>& bytes) {
  return open(bytes.data(), bytes.size());
}

/// Like open(), but additionally requires the payload kind to match —
/// loading a NoC snapshot into a campaign resume is a SchemaMismatch, not
/// a crash three fields later.
Frame open_expect(const std::vector<std::uint8_t>& bytes,
                  std::uint32_t expected_kind);

// --- file emission / ingestion ---------------------------------------------

/// Writes `size` bytes to `<path>.tmp`, flushes, fsyncs, and renames over
/// `path`, then fsyncs the parent directory.  An interrupted run — process
/// kill *or* power loss — leaves either the old file or the new one, never
/// a truncated hybrid: the data is on stable storage before the name is.
/// Throws Error{Io} on failure (the temp is removed).
void atomic_write_file(const std::string& path, const void* data,
                       std::size_t size);

/// atomic_write_file for text artifacts (RunReport / BENCH_*.json share
/// this helper).  Returns false instead of throwing — the JSON emitters
/// report I/O failure by return value.
bool atomic_write_text(const std::string& path,
                       const std::string& text) noexcept;

/// Whole file as bytes; throws Error{Io} when missing or unreadable.
std::vector<std::uint8_t> read_file(const std::string& path);

/// seal() + atomic_write_file in one call.
void save_frame_file(const std::string& path, std::uint32_t payload_kind,
                     std::uint32_t state_version, const Writer& payload);

/// read_file() + open_expect() in one call.
Frame load_frame_file(const std::string& path, std::uint32_t expected_kind);

// --- worker heartbeat frames ------------------------------------------------

/// Liveness beacon a fleet worker atomically rewrites at every checkpoint
/// (a tiny "HBEA" frame).  The dispatcher reads it each supervision tick to
/// distinguish a slow-but-alive worker (sequence advancing) from a hung or
/// SIGSTOPped one (payload frozen).  atomic_write_file gives every bump a
/// fresh mtime *and* a torn-read-proof payload — the dispatcher never sees
/// half a heartbeat.
struct Heartbeat {
  std::uint32_t shard = 0;      ///< shard index in the fleet plan
  std::uint32_t attempt = 0;    ///< dispatch attempt this worker is (1-based)
  std::uint64_t completed = 0;  ///< trials completed so far within the shard
  std::uint64_t sequence = 0;   ///< strictly increasing per write
  friend bool operator==(const Heartbeat&, const Heartbeat&) = default;
};

void save_heartbeat(const std::string& path, const Heartbeat& hb);
/// Throws Error{Io} when the file is missing (worker not yet started), plus
/// the usual typed frame errors on truncation/corruption.
Heartbeat load_heartbeat(const std::string& path);

// --- serialisation of wsp_common plain-data types ---------------------------
// These live here (not in wsp_common) because wsp_ckpt depends on
// wsp_common, never the reverse.  Reconstructed through the public API, so
// the types themselves stay serialisation-agnostic.

void save_fault_map(Writer& w, const FaultMap& map);
/// Throws Error{TopologyMismatch} when the serialised grid differs from
/// `expected` (pass nullptr to accept any grid).
FaultMap load_fault_map(Reader& r, const TileGrid* expected = nullptr);

void save_link_faults(Writer& w, const LinkFaultSet& links);
LinkFaultSet load_link_faults(Reader& r, const TileGrid* expected = nullptr);

}  // namespace wsp::ckpt
