#include "wsp/cosim/cosim.hpp"

#include <algorithm>
#include <limits>

#include "wsp/ckpt/checkpoint.hpp"
#include "wsp/common/error.hpp"
#include "wsp/obs/trace.hpp"

namespace wsp::cosim {

std::vector<double> activity_power_map(
    const std::vector<noc::TileActivity>& delta, const FaultMap& faults,
    double tile_peak_power_w, std::uint64_t epoch_cycles,
    const ActivityScale& scale) {
  const TileGrid& grid = faults.grid();
  require(delta.size() == grid.tile_count(),
          "activity_power_map: delta size must equal the tile count");
  require(epoch_cycles >= 1, "activity_power_map: epoch_cycles must be >= 1");
  require(tile_peak_power_w >= 0.0,
          "activity_power_map: tile peak power must be non-negative");
  require(scale.idle_fraction >= 0.0 && scale.idle_fraction <= 1.0,
          "activity_power_map: idle_fraction must be in [0,1]");
  require(scale.flits_per_cycle_at_peak > 0.0,
          "activity_power_map: flits_per_cycle_at_peak must be positive");
  const double denom =
      static_cast<double>(epoch_cycles) * scale.flits_per_cycle_at_peak;
  std::vector<double> power(delta.size(), 0.0);
  grid.for_each([&](TileCoord c) {
    if (faults.is_faulty(c)) return;  // dead tiles draw nothing
    const std::size_t i = grid.index_of(c);
    const noc::TileActivity& a = delta[i];
    const double weighted =
        static_cast<double>(a.injections) * scale.injection_weight +
        static_cast<double>(a.traversals) * scale.traversal_weight +
        static_cast<double>(a.retransmits) * scale.retransmit_weight;
    const double util = std::min(1.0, weighted / denom);
    power[i] =
        tile_peak_power_w * (scale.idle_fraction +
                             util * (1.0 - scale.idle_fraction));
  });
  return power;
}

// --- ActivityTracker --------------------------------------------------------

const std::vector<noc::TileActivity>& ActivityTracker::harvest(
    const noc::NocSystem& noc) {
  noc.accumulate_tile_activity(scratch_);
  if (prev_.size() != scratch_.size())
    prev_.assign(scratch_.size(), noc::TileActivity{});
  delta_.resize(scratch_.size());
  for (std::size_t i = 0; i < scratch_.size(); ++i) {
    delta_[i].injections = scratch_[i].injections - prev_[i].injections;
    delta_[i].traversals = scratch_[i].traversals - prev_[i].traversals;
    delta_[i].retransmits = scratch_[i].retransmits - prev_[i].retransmits;
  }
  std::swap(prev_, scratch_);
  return delta_;
}

void ActivityTracker::save_state(ckpt::Writer& w) const {
  w.tag(ckpt::fourcc("ATRK"));
  w.u64(prev_.size());
  for (const noc::TileActivity& a : prev_) {
    w.u64(a.injections);
    w.u64(a.traversals);
    w.u64(a.retransmits);
  }
}

void ActivityTracker::load_state(ckpt::Reader& r) {
  r.expect_tag(ckpt::fourcc("ATRK"), "activity tracker");
  const std::size_t n = r.length(24);
  prev_.resize(n);
  for (noc::TileActivity& a : prev_) {
    a.injections = r.u64();
    a.traversals = r.u64();
    a.retransmits = r.u64();
  }
}

// --- report serialisation ---------------------------------------------------

namespace {

void save_epoch(ckpt::Writer& w, const EpochReport& e) {
  w.u64(e.epoch);
  w.u64(e.end_cycle);
  w.u64(e.injections);
  w.u64(e.traversals);
  w.u64(e.retransmits);
  w.f64(e.total_power_w);
  w.f64(e.min_supply_v);
  w.f64(e.min_regulated_v);
  w.f64(e.max_excess_droop_v);
  w.i32(e.coupled_iterations);
  w.f64(e.mean_ber);
  w.f64(e.max_ber);
}

EpochReport load_epoch(ckpt::Reader& r) {
  EpochReport e;
  e.epoch = r.u64();
  e.end_cycle = r.u64();
  e.injections = r.u64();
  e.traversals = r.u64();
  e.retransmits = r.u64();
  e.total_power_w = r.f64();
  e.min_supply_v = r.f64();
  e.min_regulated_v = r.f64();
  e.max_excess_droop_v = r.f64();
  e.coupled_iterations = r.i32();
  e.mean_ber = r.f64();
  e.max_ber = r.f64();
  return e;
}

}  // namespace

std::vector<std::uint8_t> serialize_report(const CosimReport& report) {
  ckpt::Writer w;
  w.u64(report.cycles);
  w.f64(report.worst_min_supply_v);
  w.f64(report.worst_excess_droop_v);
  w.f64(report.peak_mean_ber);
  const noc::NocStats& s = report.noc_stats;
  w.u64(s.issued);
  w.u64(s.completed);
  w.u64(s.unreachable);
  w.u64(s.relayed);
  w.u64(s.latency_sum);
  w.u64(s.latency_max);
  w.u64(s.timeouts);
  w.u64(s.retries);
  w.u64(s.lost);
  w.u64(s.crc_detected);
  w.u64(s.link_retransmits);
  w.u64(s.escapes);
  w.u64(report.epochs.size());
  for (const EpochReport& e : report.epochs) save_epoch(w, e);
  return w.bytes();
}

// --- CosimLoop --------------------------------------------------------------

CosimLoop::CosimLoop(const CosimOptions& options)
    : CosimLoop(options, FaultMap(options.config.grid())) {}

CosimLoop::CosimLoop(const CosimOptions& options, const FaultMap& faults)
    : options_(options),
      faults_(faults),
      noc_(faults_, options_.noc, &metrics_),
      pdn_(options_.config, options_.pdn) {
  options_.config.validate();
  require(options_.epoch_cycles >= 1, "cosim epoch must be >= 1 cycle");
  require(faults_.grid().width() == options_.config.grid().width() &&
              faults_.grid().height() == options_.config.grid().height(),
          "cosim fault map grid must match the config grid");
  require(options_.pdn.load_model == pdn::LoadModel::ConstantCurrent,
          "cosim requires LoadModel::ConstantCurrent (batched re-solve)");
  pdn_.bind_metrics(&metrics_);
  // The workload generator.  Synthetic (the default) wraps the legacy
  // traffic config + seed so pre-seam option sets reproduce the old
  // injection stream bit for bit; any other class uses the spec verbatim.
  workloads::WorkloadSpec spec = options_.workload;
  if (spec.cls == workloads::WorkloadClass::Synthetic) {
    spec.synthetic = options_.traffic;
    spec.seed = options_.seed;
  }
  gen_ = workloads::make_generator(spec, options_.config, faults_);
  // Two warm-start seed buffers persisted across epochs: the coupled map
  // and the static idle-floor reference solved alongside it.
  seeds_.assign(2, {});
  power_maps_.assign(2, {});
  static_power_ = activity_power_map(
      std::vector<noc::TileActivity>(faults_.grid().tile_count()), faults_,
      options_.config.tile_peak_power_w, options_.epoch_cycles,
      options_.scale);
  power_maps_[1] = static_power_;
}

void CosimLoop::inject_traffic() {
  inject_buf_.clear();
  gen_->emit(inject_buf_);
  for (const workloads::Injection& inj : inject_buf_) {
    if (inj.dst == inj.src) continue;
    (void)noc_.issue(inj.src, inj.dst, inj.type, inj.payload);
  }
}

void CosimLoop::step_cycle() {
  inject_traffic();
  done_.clear();
  noc_.step(done_);
  for (const noc::CompletedTransaction& t : done_)
    latencies_.push_back(t.latency());
  if (++cycle_in_epoch_ == options_.epoch_cycles) {
    cycle_in_epoch_ = 0;
    couple();
  }
}

void CosimLoop::run(std::uint64_t cycles) {
  for (std::uint64_t i = 0; i < cycles; ++i) step_cycle();
}

void CosimLoop::run_epochs(std::uint64_t epochs) {
  run(epochs * options_.epoch_cycles);
}

void CosimLoop::couple() {
  WSP_TRACE_SPAN("cosim.epoch");
  const TileGrid& grid = faults_.grid();
  const std::vector<noc::TileActivity>& delta = tracker_.harvest(noc_);

  EpochReport e;
  e.epoch = epochs_.size();
  e.end_cycle = noc_.now();
  for (const noc::TileActivity& a : delta) {
    e.injections += a.injections;
    e.traversals += a.traversals;
    e.retransmits += a.retransmits;
  }

  power_maps_[0] = activity_power_map(delta, faults_,
                                      options_.config.tile_peak_power_w,
                                      options_.epoch_cycles, options_.scale);
  for (const double p : power_maps_[0]) e.total_power_w += p;

  std::vector<pdn::SolveStats> stats;
  const std::vector<pdn::PdnReport> reports =
      pdn_.solve_batch_warm(power_maps_, seeds_, &stats);
  const pdn::PdnReport& coupled = reports[0];
  const pdn::PdnReport& baseline = reports[1];
  e.min_supply_v = coupled.min_supply_v;
  e.coupled_iterations = stats[0].iterations;

  std::vector<double> regulated(grid.tile_count(), 0.0);
  double min_reg = std::numeric_limits<double>::infinity();
  double excess = 0.0;
  for (std::size_t i = 0; i < regulated.size(); ++i) {
    regulated[i] = coupled.tiles[i].regulated_v;
    min_reg = std::min(min_reg, regulated[i]);
    excess = std::max(excess,
                      baseline.tiles[i].supply_v - coupled.tiles[i].supply_v);
  }
  e.min_regulated_v = regulated.empty() ? 0.0 : min_reg;
  e.max_excess_droop_v = excess;

  if (options_.noc.mesh.integrity.enabled) {
    const noc::LinkBerMap ber =
        noc::LinkBerMap::from_tile_voltages(grid, regulated, options_.ber);
    double sum = 0.0;
    std::size_t links = 0;
    grid.for_each([&](TileCoord c) {
      for (Direction d : kAllDirections) {
        if (!grid.contains(step(c, d))) continue;
        const double b = ber.ber(c, d);
        sum += b;
        e.max_ber = std::max(e.max_ber, b);
        ++links;
      }
    });
    e.mean_ber = links ? sum / static_cast<double>(links) : 0.0;
    // Staged: both meshes adopt it at the top of the next step(), i.e.
    // exactly at the first cycle of the next epoch.
    noc_.set_link_ber(ber);
  }

  last_coupled_ = coupled;
  last_static_ = baseline;
  epochs_.push_back(e);
  publish_gauges(e);
}

void CosimLoop::publish_gauges(const EpochReport& e) {
  metrics_.gauge("cosim.epochs").set(static_cast<double>(epochs_.size()));
  metrics_.gauge("cosim.min_supply_v").set(e.min_supply_v);
  metrics_.gauge("cosim.min_regulated_v").set(e.min_regulated_v);
  metrics_.gauge("cosim.max_excess_droop_v").set(e.max_excess_droop_v);
  metrics_.gauge("cosim.mean_ber").set(e.mean_ber);
  metrics_.gauge("cosim.epoch_retransmits")
      .set(static_cast<double>(e.retransmits));
  // Per-class tail latency alongside the droop gauges, so one RunReport
  // section carries both halves of the workload/power story.
  std::vector<std::uint64_t> sorted = latencies_;
  metrics_.gauge("cosim.workload_p50_latency")
      .set(static_cast<double>(obs::nearest_rank_percentile(sorted, 0.50)));
  metrics_.gauge("cosim.workload_p95_latency")
      .set(static_cast<double>(obs::nearest_rank_percentile(sorted, 0.95)));
  metrics_.gauge("cosim.workload_p99_latency")
      .set(static_cast<double>(obs::nearest_rank_percentile(sorted, 0.99)));
}

noc::TrafficReport CosimLoop::latency_summary() const {
  noc::TrafficReport report;
  report.cycles = noc_.now();
  const noc::NocStats s = noc_.stats();
  report.issued = s.issued;
  report.completed = s.completed;
  report.unreachable = s.unreachable;
  report.offered_load =
      report.cycles ? static_cast<double>(s.issued) / report.cycles : 0.0;
  report.throughput =
      report.cycles ? static_cast<double>(s.completed) / report.cycles : 0.0;
  noc::finalize_latencies(report, latencies_);
  return report;
}

CosimReport CosimLoop::report() const {
  CosimReport r;
  r.epochs = epochs_;
  r.noc_stats = noc_.stats();
  r.cycles = noc_.now();
  r.worst_min_supply_v = std::numeric_limits<double>::infinity();
  for (const EpochReport& e : epochs_) {
    r.worst_min_supply_v = std::min(r.worst_min_supply_v, e.min_supply_v);
    r.worst_excess_droop_v =
        std::max(r.worst_excess_droop_v, e.max_excess_droop_v);
    r.peak_mean_ber = std::max(r.peak_mean_ber, e.mean_ber);
  }
  if (epochs_.empty()) r.worst_min_supply_v = 0.0;
  return r;
}

// --- checkpointing ----------------------------------------------------------

namespace {
constexpr std::uint32_t kCosimKind = ckpt::fourcc("COSM");
// v2: the raw traffic-RNG words were replaced by the workload generator's
// own tagged frame, and the completed-transaction latency record was added.
constexpr std::uint32_t kCosimStateVersion = 2;
}  // namespace

void CosimLoop::save_state(ckpt::Writer& w) const {
  w.tag(ckpt::fourcc("CLOP"));
  gen_->save_state(w);
  w.u64(cycle_in_epoch_);
  w.tag(ckpt::fourcc("WLAT"));
  w.u64(latencies_.size());
  for (const std::uint64_t l : latencies_) w.u64(l);
  tracker_.save_state(w);
  w.tag(ckpt::fourcc("SEED"));
  w.u64(seeds_.size());
  for (const std::vector<double>& seed : seeds_) {
    w.u64(seed.size());
    for (const double v : seed) w.f64(v);
  }
  w.tag(ckpt::fourcc("EPRP"));
  w.u64(epochs_.size());
  for (const EpochReport& e : epochs_) save_epoch(w, e);
  noc_.save_state(w);
}

void CosimLoop::load_state(ckpt::Reader& r) {
  r.expect_tag(ckpt::fourcc("CLOP"), "cosim loop");
  gen_->load_state(r);
  cycle_in_epoch_ = r.u64();
  r.expect_tag(ckpt::fourcc("WLAT"), "workload latencies");
  const std::size_t n_lat = r.length(8);
  latencies_.resize(n_lat);
  for (std::uint64_t& l : latencies_) l = r.u64();
  tracker_.load_state(r);
  r.expect_tag(ckpt::fourcc("SEED"), "warm-start seeds");
  const std::size_t n_seeds = r.length(8);
  seeds_.assign(n_seeds, {});
  for (std::vector<double>& seed : seeds_) {
    const std::size_t n = r.length(8);
    seed.resize(n);
    for (double& v : seed) v = r.f64();
  }
  require(seeds_.size() == 2, "cosim snapshot must hold two seed buffers");
  r.expect_tag(ckpt::fourcc("EPRP"), "epoch reports");
  const std::size_t n_epochs = r.length(92);
  epochs_.clear();
  epochs_.reserve(n_epochs);
  for (std::size_t i = 0; i < n_epochs; ++i)
    epochs_.push_back(load_epoch(r));
  noc_.load_state(r);
  if (!epochs_.empty()) publish_gauges(epochs_.back());
}

void CosimLoop::save_checkpoint(const std::string& path) const {
  ckpt::Writer w;
  save_state(w);
  ckpt::save_frame_file(path, kCosimKind, kCosimStateVersion, w);
}

void CosimLoop::load_checkpoint(const std::string& path) {
  const ckpt::Frame frame = ckpt::load_frame_file(path, kCosimKind);
  if (frame.state_version != kCosimStateVersion)
    throw ckpt::Error(ckpt::ErrorKind::VersionMismatch,
                      "cosim snapshot schema revision unknown");
  ckpt::Reader r(frame.payload);
  load_state(r);
  if (!r.done())
    throw ckpt::Error(ckpt::ErrorKind::SchemaMismatch,
                      "trailing bytes after cosim snapshot");
}

std::uint32_t CosimLoop::state_fingerprint() const {
  ckpt::Writer w;
  save_state(w);
  return ckpt::crc32(w.bytes().data(), w.size());
}

}  // namespace wsp::cosim
