// PDN <-> NoC epoch-stepped co-simulation (the closed loop the paper's
// power-delivery and network chapters each describe half of).
//
// A static PDN solve assumes a fixed activity factor; a static BER map
// assumes a fixed droop profile.  In reality the two are coupled: traffic
// concentrates switching power where packets flow, the power planes sag
// under that load, the sagged supply shrinks link eye margins, and the
// resulting retransmits are themselves traffic.  `CosimLoop` closes the
// loop deterministically with an epoch-stepped relaxation:
//
//   every cycle   : inject workload traffic (wsp::workloads generators:
//                   collectives, layer pipelines, spiking bursts, graph
//                   waves, or the legacy synthetic patterns), step the
//                   dual-mesh NoC
//                   (cheap per-tile activity counters accumulate for free)
//   every N cycles: diff the activity counters against the previous epoch
//                   -> per-tile power map -> re-solve the wafer PDN
//                   (warm-started, batched with an uncoupled static
//                   reference RHS) -> derive per-link BER from the
//                   regulated tile voltages -> stage it on the NoC, which
//                   adopts it at the next cycle boundary.
//
// Determinism: every stage is individually bit-identical for any thread
// count (serial injection RNG, unique-writer mesh phases, batched
// multigrid), the coupling points are fixed cycle boundaries, and the BER
// swap is staged-not-immediate — so the whole loop is bit-identical at any
// thread count and checkpoint-resumable mid-epoch.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include <memory>

#include "wsp/common/config.hpp"
#include "wsp/common/fault_map.hpp"
#include "wsp/common/rng.hpp"
#include "wsp/noc/link_integrity.hpp"
#include "wsp/noc/noc_system.hpp"
#include "wsp/noc/traffic.hpp"
#include "wsp/obs/metrics.hpp"
#include "wsp/pdn/wafer_pdn.hpp"
#include "wsp/workloads/traffic_gen.hpp"

namespace wsp::ckpt {
class Writer;
class Reader;
}  // namespace wsp::ckpt

namespace wsp::cosim {

/// Maps epoch activity deltas to per-tile utilisation and power.
/// Utilisation is the weighted flit-event rate normalised by the tile's
/// peak sustainable rate; power interpolates between the idle floor and
/// tile peak power (the same idle+util*(peak-idle) shape as
/// wsp::arch::tile_power_map, but driven by measured NoC activity instead
/// of a workload trace).
struct ActivityScale {
  /// Fraction of peak power a healthy idle tile draws (clock tree,
  /// leakage, idle cores).
  double idle_fraction = 0.3;
  double injection_weight = 1.0;   ///< weight per packet injected at a tile
  double traversal_weight = 1.0;   ///< weight per link grant leaving a tile
  double retransmit_weight = 2.0;  ///< weight per retransmit landing at a
                                   ///< tile (NACK + resend both burn power)
  /// Weighted flit events per cycle that count as 100% utilisation.
  double flits_per_cycle_at_peak = 2.0;
};

/// Converts one epoch's per-tile activity deltas into a per-tile power map
/// (watts, indexed by TileGrid::index_of).  Faulty tiles draw zero; healthy
/// tiles draw idle_fraction*peak at zero activity, ramping linearly to peak
/// at `scale.flits_per_cycle_at_peak` weighted events per cycle (clamped).
/// `epoch_cycles` must be >= 1.  The result is a valid WaferPdn::solve /
/// solve_batch power map by construction.
std::vector<double> activity_power_map(
    const std::vector<noc::TileActivity>& delta, const FaultMap& faults,
    double tile_peak_power_w, std::uint64_t epoch_cycles,
    const ActivityScale& scale = {});

/// Diffs the NoC's cumulative per-tile activity counters into per-epoch
/// deltas.  The previous snapshot is checkpoint state (save_state /
/// load_state), so a resumed run's first harvest sees exactly the activity
/// an uninterrupted run would.
class ActivityTracker {
 public:
  /// Per-tile activity since the previous harvest (or since construction /
  /// load_state).  The returned reference is valid until the next call.
  const std::vector<noc::TileActivity>& harvest(const noc::NocSystem& noc);

  void save_state(ckpt::Writer& w) const;
  void load_state(ckpt::Reader& r);

 private:
  std::vector<noc::TileActivity> prev_;
  std::vector<noc::TileActivity> delta_;
  std::vector<noc::TileActivity> scratch_;
};

struct CosimOptions {
  SystemConfig config = SystemConfig::reduced(8, 8);
  /// Cycles per coupling epoch (the relaxation step of the fixed-point
  /// iteration).  Must be >= 1.
  std::uint64_t epoch_cycles = 64;
  std::uint64_t seed = 1;
  ActivityScale scale{};
  /// Voltage->BER mapping for the per-epoch link BER map.  Takes effect
  /// only when noc.mesh.integrity.enabled.
  noc::BerParams ber{};
  pdn::WaferPdnOptions pdn{};
  noc::NocOptions noc{};
  noc::TrafficConfig traffic{};
  /// Workload driving the loop.  The default (Synthetic) reproduces the
  /// legacy behaviour bit for bit: the generator wraps `traffic` seeded by
  /// `seed` (the spec's own synthetic/seed fields are ignored for that
  /// class).  Any other class runs the spec verbatim — all-reduce rings,
  /// halo exchange, layer pipelines, spiking bursts or graph waves drive
  /// the coupled loop instead of uniform-random injection.
  workloads::WorkloadSpec workload{};
};

/// One epoch's coupled measurements, recorded at each epoch boundary.
struct EpochReport {
  std::uint64_t epoch = 0;      ///< 0-based epoch index
  std::uint64_t end_cycle = 0;  ///< NoC cycle at the boundary
  // Epoch activity deltas summed over tiles:
  std::uint64_t injections = 0;
  std::uint64_t traversals = 0;
  std::uint64_t retransmits = 0;
  double total_power_w = 0.0;  ///< coupled power map total
  // Coupled PDN solve:
  double min_supply_v = 0.0;
  double min_regulated_v = 0.0;
  /// Max over tiles of (static-reference supply - coupled supply): the
  /// droop the measured traffic adds on top of the idle-floor baseline.
  double max_excess_droop_v = 0.0;
  int coupled_iterations = 0;  ///< V-cycles the (warm) coupled solve took
  // BER map derived from the coupled regulated voltages (0 when link
  // integrity is disabled):
  double mean_ber = 0.0;
  double max_ber = 0.0;

  friend bool operator==(const EpochReport&, const EpochReport&) = default;
};

/// Aggregate view assembled by CosimLoop::report().
struct CosimReport {
  std::vector<EpochReport> epochs;
  noc::NocStats noc_stats;
  std::uint64_t cycles = 0;
  double worst_min_supply_v = 0.0;   ///< min over epochs
  double worst_excess_droop_v = 0.0; ///< max over epochs
  double peak_mean_ber = 0.0;        ///< max over epochs
};

/// Serialises the fields a comparison cares about into a byte string —
/// the "final report bytes" used by the bit-identity tests and benches.
std::vector<std::uint8_t> serialize_report(const CosimReport& report);

/// The deterministic coupled driver.  Owns the NoC, the PDN model, the
/// traffic RNG and the warm-start seed buffers.
class CosimLoop {
 public:
  /// Fault-free wafer.
  explicit CosimLoop(const CosimOptions& options);
  /// Degraded wafer: `faults` marks unusable tiles (they inject nothing,
  /// draw no power, and the NoC routes around them).
  CosimLoop(const CosimOptions& options, const FaultMap& faults);

  /// Advances one NoC cycle; at each epoch_cycles boundary runs the
  /// coupling step (harvest -> power -> warm PDN re-solve -> BER stage).
  void step_cycle();

  /// Advances `cycles` cycles.  run(a); run(b); is bit-identical to
  /// run(a+b) — the loop keeps no per-call state.
  void run(std::uint64_t cycles);

  /// Advances `epochs` whole epochs (epochs * epoch_cycles cycles).
  void run_epochs(std::uint64_t epochs);

  std::uint64_t now() const { return noc_.now(); }
  std::uint64_t epochs_completed() const { return epochs_.size(); }
  const std::vector<EpochReport>& epochs() const { return epochs_; }
  CosimReport report() const;

  /// Full per-tile PDN reports of the most recent epoch's coupled solve
  /// and its static idle-floor reference (empty tiles before the first
  /// epoch).  Derived caches, not checkpoint state: after load_state they
  /// are empty until the next epoch boundary.
  const pdn::PdnReport& last_coupled_pdn() const { return last_coupled_; }
  const pdn::PdnReport& last_static_pdn() const { return last_static_; }

  const noc::NocSystem& noc() const { return noc_; }
  const CosimOptions& options() const { return options_; }
  /// The workload generator injecting every cycle's traffic.
  workloads::TrafficGenerator& generator() { return *gen_; }
  const workloads::TrafficGenerator& generator() const { return *gen_; }
  /// Round-trip latencies of every transaction completed so far (issue
  /// order-independent: appended in completion order, which is itself
  /// bit-identical across thread/shard counts).  Checkpoint state, so a
  /// resumed run reports the same percentiles an uninterrupted one does.
  const std::vector<std::uint64_t>& latencies() const { return latencies_; }
  /// Nearest-rank latency percentiles + counts over latencies(), published
  /// per workload class (report.cycles is the cycles run so far).
  noc::TrafficReport latency_summary() const;
  /// Registry holding the NoC counters plus the per-epoch cosim gauges
  /// (cosim.epochs, cosim.min_supply_v, cosim.max_excess_droop_v,
  /// cosim.min_regulated_v, cosim.mean_ber, cosim.epoch_retransmits) and
  /// the per-class workload latency gauges (cosim.workload_p50_latency,
  /// _p95_, _p99_ — nearest-rank over every completed round trip).
  obs::MetricsRegistry& metrics() { return metrics_; }

  /// Checkpoint hooks: the workload generator's frame, epoch cursor,
  /// latency record, activity snapshot, warm-start seeds, epoch reports
  /// and the full NoC state round-trip, so
  /// load + run is bit-identical to never having stopped — mid-epoch
  /// included.  load_state targets a loop constructed with equal options
  /// and faults; mismatches throw ckpt::Error.
  void save_state(ckpt::Writer& w) const;
  void load_state(ckpt::Reader& r);
  /// Frames save_state into a "COSM" container, written atomically.
  void save_checkpoint(const std::string& path) const;
  void load_checkpoint(const std::string& path);
  /// CRC-32 over the save_state byte image — the cheap bit-identity probe
  /// the thread-invariance tests and benches compare.
  std::uint32_t state_fingerprint() const;

 private:
  CosimOptions options_;
  FaultMap faults_;
  obs::MetricsRegistry metrics_;
  noc::NocSystem noc_;
  pdn::WaferPdn pdn_;
  std::unique_ptr<workloads::TrafficGenerator> gen_;
  ActivityTracker tracker_;
  /// Warm-start seeds persisted across epochs: [0] coupled map, [1] static
  /// idle-floor reference (solved in the same batch for the excess-droop
  /// comparison, converging instantly once warm).
  std::vector<std::vector<double>> seeds_;
  /// Batch staged per epoch: [0] coupled map (rewritten each epoch),
  /// [1] static idle-floor reference (constant).
  std::vector<std::vector<double>> power_maps_;
  std::vector<double> static_power_;  ///< idle-floor reference map
  pdn::PdnReport last_coupled_;  ///< derived cache (see last_coupled_pdn)
  pdn::PdnReport last_static_;
  std::vector<EpochReport> epochs_;
  std::uint64_t cycle_in_epoch_ = 0;
  std::vector<noc::CompletedTransaction> done_;
  std::vector<workloads::Injection> inject_buf_;
  std::vector<std::uint64_t> latencies_;

  void inject_traffic();
  void couple();  ///< the epoch-boundary coupling step
  void publish_gauges(const EpochReport& e);
};

}  // namespace wsp::cosim
