// Duty-cycle distortion along the forwarding chain (Sec. IV).
//
// Every hop of the forwarded clock passes through buffers, the forwarding
// mux and the inter-chiplet I/O drivers, whose pull-up/pull-down imbalance
// distorts the duty cycle.  The paper's numbers: ~5 % distortion per tile
// would kill a naively-forwarded clock within ~10 tiles (50 % + 10 x 5 % =
// 100 %: one half-cycle vanishes).  Two countermeasures are modelled:
//
//   * Inverted forwarding — each tile forwards the *inverse* of its clock,
//     so the distortion alternates between the two half-cycles instead of
//     accumulating monotonically: the excursion stays bounded at one hop's
//     worth.
//   * A duty-cycle-correction (DCC) unit per tile that pulls any residual
//     distortion back toward 50 % (an all-digital corrector, [16]).
//
// The model tracks duty cycle (high-phase fraction) along a forwarding
// path; a clock "dies" when either half-cycle shrinks below the minimum
// pulse width the downstream logic can register.
#pragma once

#include <vector>

#include "wsp/clock/forwarding.hpp"

namespace wsp::clock {

struct DutyCycleOptions {
  double distortion_per_hop = 0.05;  ///< duty shift added by one tile (+5 %)
  bool inverted_forwarding = true;   ///< forward the inverted clock
  bool dcc_enabled = true;           ///< per-tile duty-cycle corrector
  /// DCC pulls the duty toward 0.5 by this fraction of the residual error.
  double dcc_correction_strength = 0.8;
  /// Minimum surviving half-cycle fraction; below this the clock is dead.
  double min_pulse_fraction = 0.05;
};

/// Duty-cycle state after each hop of a forwarding path.
struct DutyCycleTrace {
  std::vector<double> duty_per_hop;  ///< duty after hop i (index 0 = source)
  bool clock_alive = true;           ///< survived the whole path
  int died_at_hop = -1;              ///< first dead hop, -1 if alive
  double worst_excursion = 0.0;      ///< max |duty - 0.5| along the path
};

/// Propagates the duty cycle along a chain of `hops` tiles.
DutyCycleTrace propagate_duty_cycle(int hops, const DutyCycleOptions& options);

/// Per-tile duty cycle over a whole forwarding plan: walks every tile's
/// path depth and reports the duty it receives plus whether any healthy
/// reached tile ends up with a dead clock.
struct WaferDutyReport {
  std::vector<double> duty;   ///< indexed by tile, 0.5 = ideal; <0 unreached
  std::vector<char> alive;    ///< clock usable at this tile
  std::size_t dead_tiles = 0;
  double worst_excursion = 0.0;
};
WaferDutyReport analyze_plan_duty(const ForwardingPlan& plan,
                                  const TileGrid& grid,
                                  const DutyCycleOptions& options);

}  // namespace wsp::clock
