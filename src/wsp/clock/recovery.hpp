// Runtime clock recovery: re-selection after tiles or generators die
// (wsp::resilience degradation layer for Sec. IV's forwarding network).
//
// The assembly-time story locks every tile's selector once and for all.
// If a tile on the forwarding tree later dies — or an edge generator stops
// toggling — every tile downstream of it loses its clock.  The hardware
// remedy is the same circuit that performed the original selection: the
// affected selectors are reset over JTAG into the auto-select phase and
// re-latch onto the first *still-toggling* neighbour to reach the toggle
// threshold.  This module simulates that re-selection wave, reusing the
// cycle-level ClockSelector FSM, and reports which tiles re-latched and
// which are newly orphaned (healthy but cut off from every surviving
// generator).
#pragma once

#include <vector>

#include "wsp/clock/forwarding.hpp"
#include "wsp/common/fault_map.hpp"
#include "wsp/common/geometry.hpp"

namespace wsp::clock {

/// Outcome of a clock re-selection wave.
struct ReclockReport {
  /// Updated forwarding plan (counts and unreached lists recomputed).
  ForwardingPlan plan;
  /// Tiles whose chain to a surviving generator broke (healthy tiles only).
  std::vector<TileCoord> invalidated;
  /// Invalidated tiles that re-latched onto a surviving neighbour.
  std::vector<TileCoord> relatched;
  /// Invalidated tiles that could not re-latch: healthy but cut off from
  /// every surviving generator (the runtime analogue of Fig. 4's yellow
  /// tile).  The bring-up layer marks these unusable.
  std::vector<TileCoord> newly_orphaned;
  std::size_t surviving_generator_count = 0;
  /// Selector sampling steps until the last re-latch locked (0 when
  /// nothing was invalidated) — the clock-recovery latency.
  int relatch_steps = 0;
};

/// Simulates re-selection after `faults` (the *updated* map) struck a wafer
/// whose clock network was configured per `old_plan`.  `generators` must be
/// the surviving generator tiles — a generator hit by ClockGenLoss or tile
/// death is simply omitted (an empty list orphans every dependent tile).
/// Tiles upstream-connected to surviving generators keep their selection
/// untouched; only broken chains re-run the ClockSelector FSM.
ReclockReport reselect_after_faults(const ForwardingPlan& old_plan,
                                    const FaultMap& faults,
                                    const std::vector<TileCoord>& generators,
                                    const ForwardingOptions& options = {});

}  // namespace wsp::clock
