// Clock skew across the forwarding network (Sec. IV, footnote 3).
//
// Forwarding accumulates one buffer/I/O delay per hop, so two
// neighbouring tiles can sit at very different forwarding depths — up to
// the full tree depth apart where two forwarding fronts meet.  The paper
// dismisses this deliberately: "the half-cycle phase delay and any jitter
// introduced is not a concern since our inter-chiplet communication uses
// asynchronous FIFOs".  This module quantifies the skew that decision
// absorbs: per-link depth differences, the worst seam on the wafer, and
// the resulting phase uncertainty in nanoseconds.
#pragma once

#include <cstdint>
#include <vector>

#include "wsp/clock/forwarding.hpp"

namespace wsp::clock {

struct SkewReport {
  /// Worst neighbouring-tile hop gap.  Because the auto-selection races
  /// pick the *earliest* clock, forwarding depth equals graph distance
  /// from the generators, and adjacent tiles' distances can differ by at
  /// most 1 — a pleasant theorem this analysis verifies (a fixed,
  /// configured forwarding tree would not enjoy it).
  int max_adjacent_depth_delta = 0;
  double mean_adjacent_depth_delta = 0.0;
  std::size_t links_measured = 0;
  /// Links whose endpoints' forwarding parities differ (the inverted
  /// clock makes their edges nominally half a cycle apart).
  std::size_t odd_parity_links = 0;
  /// Worst tile-to-tile phase uncertainty in seconds given a per-hop
  /// insertion delay: max_delta x hop_delay.
  double worst_skew_s = 0.0;
  /// Deepest forwarding depth, and the wafer-global skew between the
  /// earliest and latest clocked tiles (matters for wafer-global
  /// synchronous events, not for the async-FIFO links).
  int max_depth = 0;
  double global_spread_s = 0.0;
};

/// Analyses skew over a forwarding plan.  `per_hop_delay_s` is the
/// insertion delay of one forwarding stage (buffers + mux + I/O driver).
SkewReport analyze_skew(const ForwardingPlan& plan, const TileGrid& grid,
                        double per_hop_delay_s);

/// True when synchronous (skew-sensitive) inter-tile links would be safe:
/// worst skew below `budget_s`.  The prototype's asynchronous-FIFO links
/// need no such budget — this predicate quantifies what going synchronous
/// would have required.
bool synchronous_links_feasible(const SkewReport& report, double budget_s);

}  // namespace wsp::clock
