// Per-tile clock selection FSM (Sec. IV, Fig. 3).
//
// Each compute chiplet can choose its functional clock from six sources:
// the software-controlled JTAG/test clock (default at boot), the slow
// master clock, or one of four clocks forwarded by the neighbouring tiles.
// During the clock-setup phase the selector counts toggles on each
// forwarded input and latches onto the first input to reach a pre-defined
// toggle count (default 16).  Once latched, the selection is final and the
// chosen clock is also forwarded (inverted) to all four neighbours.
//
// This class is a cycle-level simulation of that circuitry: callers feed it
// the per-input toggle activity each sampling step and it reproduces the
// selection behaviour, including the deterministic tie-break (the hardware
// arbiter priority follows the port order N, E, S, W).
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "wsp/common/geometry.hpp"

namespace wsp::ckpt {
class Writer;
class Reader;
}  // namespace wsp::ckpt

namespace wsp::clock {

/// Clock sources selectable by the tile mux.
enum class ClockSource : std::uint8_t {
  Jtag = 0,       ///< software-controlled test clock (boot default)
  Master = 1,     ///< slow off-wafer master clock
  ForwardedN = 2,
  ForwardedE = 3,
  ForwardedS = 4,
  ForwardedW = 5,
};

/// Forwarded-clock source corresponding to a mesh direction.
constexpr ClockSource forwarded_from(Direction d) {
  switch (d) {
    case Direction::North: return ClockSource::ForwardedN;
    case Direction::East:  return ClockSource::ForwardedE;
    case Direction::South: return ClockSource::ForwardedS;
    case Direction::West:  return ClockSource::ForwardedW;
  }
  return ClockSource::ForwardedN;  // unreachable
}

/// Direction a forwarded source arrives from; nullopt for Jtag/Master.
std::optional<Direction> direction_of(ClockSource s);

const char* to_string(ClockSource s);

/// Selection FSM phases.
enum class SelectorPhase : std::uint8_t {
  Boot,      ///< JTAG clock selected (power-up default)
  AutoSelect,///< counting toggles on the forwarded inputs
  Locked,    ///< functional clock chosen; forwarding active
};

class ClockSelector {
 public:
  /// `toggle_threshold` is the pre-defined toggle count (paper default 16).
  explicit ClockSelector(int toggle_threshold = 16);

  SelectorPhase phase() const { return phase_; }
  ClockSource selected() const { return selected_; }
  int toggle_threshold() const { return threshold_; }

  /// Enters the auto-selection phase (initiated over JTAG during setup).
  void begin_auto_select();

  /// Forces a specific source (used for edge tiles configured over JTAG to
  /// take the master clock / PLL path instead of a forwarded clock).
  void force_select(ClockSource source);

  /// Advances one sampling step of the auto-selection phase.  `toggled[d]`
  /// is true when the forwarded input from direction d toggled during this
  /// step.  Returns the locked source once selection completes.
  std::optional<ClockSource> step(const std::array<bool, 4>& toggled);

  /// Toggle count currently accumulated for direction `d`.
  int count(Direction d) const {
    return counts_[static_cast<std::size_t>(d)];
  }

  /// Checkpoint hooks (wsp::ckpt): the full FSM state — phase, latched
  /// source, per-input toggle counts — round-trips, so a resumed selector
  /// latches exactly when the uninterrupted one would.
  void save_state(ckpt::Writer& w) const;
  void load_state(ckpt::Reader& r);

 private:
  int threshold_;
  SelectorPhase phase_ = SelectorPhase::Boot;
  ClockSource selected_ = ClockSource::Jtag;
  std::array<int, 4> counts_{};
};

}  // namespace wsp::clock
