#include "wsp/clock/pll.hpp"

#include <cmath>

namespace wsp::clock {

PllResult Pll::generate(double input_hz, double target_hz,
                        double supply_ripple_v) const {
  PllResult r;
  if (input_hz < input_min_hz_ || input_hz > input_max_hz_) {
    r.failure_reason = "input clock outside PLL capture range";
    return r;
  }
  if (target_hz > output_max_hz_) {
    r.failure_reason = "target exceeds PLL maximum output frequency";
    return r;
  }
  if (supply_ripple_v > kPllMaxSupplyRippleV) {
    r.failure_reason = "reference supply too noisy for reliable lock";
    return r;
  }
  // Integer feedback divider: the PLL realises the closest achievable
  // multiple of the input frequency (at least 1x).
  const double ratio = std::max(1.0, std::round(target_hz / input_hz));
  const double out = input_hz * ratio;
  if (out > output_max_hz_) {
    r.failure_reason = "no feasible divider for the requested frequency";
    return r;
  }
  r.locked = true;
  r.output_hz = out;
  return r;
}

}  // namespace wsp::clock
