#include "wsp/clock/forwarding.hpp"

#include <algorithm>
#include <queue>
#include <tuple>

#include "wsp/common/error.hpp"

namespace wsp::clock {

namespace {

/// Entry in the setup-phase race queue: (lock time, arbiter priority of the
/// winning input, linear tile index).  Priority makes pops deterministic.
struct RaceEntry {
  double lock_time;
  int tie_break;
  std::size_t tile;
  friend bool operator>(const RaceEntry& a, const RaceEntry& b) {
    return std::tie(a.lock_time, a.tie_break, a.tile) >
           std::tie(b.lock_time, b.tie_break, b.tile);
  }
};

}  // namespace

ForwardingPlan simulate_forwarding(const FaultMap& faults,
                                   const std::vector<TileCoord>& generators,
                                   const ForwardingOptions& options) {
  const TileGrid& grid = faults.grid();
  require(!generators.empty(), "at least one clock generator is required");
  require(options.toggle_threshold > 0, "toggle threshold must be positive");
  require(options.hop_latency_periods >= 0.0,
          "hop latency cannot be negative");

  ForwardingPlan plan;
  plan.tiles.assign(grid.tile_count(), {});

  std::priority_queue<RaceEntry, std::vector<RaceEntry>, std::greater<>> queue;

  for (TileCoord g : generators) {
    require(grid.contains(g), "generator tile out of bounds");
    require(grid.is_edge(g),
            "clock generators must be edge tiles (PLL needs the stable edge "
            "supply)");
    require(faults.is_healthy(g), "a faulty tile cannot generate the clock");
    const auto i = grid.index_of(g);
    TileClockState& st = plan.tiles[i];
    st.is_generator = true;
    st.reached = true;
    st.lock_time = 0.0;
    st.hops_from_generator = 0;
    st.inverted = false;
    queue.push({0.0, -1, i});
  }

  // Dijkstra over lock times.  A tile locks `toggle_threshold` periods
  // after its earliest toggling input appears, which is the upstream
  // tile's lock time plus one hop latency.
  while (!queue.empty()) {
    const RaceEntry e = queue.top();
    queue.pop();
    const TileClockState& src = plan.tiles[e.tile];
    if (e.lock_time > src.lock_time) continue;  // stale entry
    const TileCoord c = grid.coord_of(e.tile);

    for (Direction d : kAllDirections) {
      const auto n = grid.neighbor(c, d);
      if (!n || faults.is_faulty(*n)) continue;
      const auto ni = grid.index_of(*n);
      TileClockState& dst = plan.tiles[ni];
      if (dst.is_generator) continue;

      const double arrival = src.lock_time + options.hop_latency_periods;
      const double lock = arrival + options.toggle_threshold;
      // The new input wins if strictly earlier, or ties with a
      // higher-priority arbiter port (the input direction *at the
      // destination* is the opposite of d).
      const int tie = static_cast<int>(opposite(d));
      const bool better =
          !dst.reached || lock < dst.lock_time ||
          (lock == dst.lock_time && dst.selected_input &&
           tie < static_cast<int>(*dst.selected_input));
      if (!better) continue;

      dst.reached = true;
      dst.lock_time = lock;
      dst.selected_input = opposite(d);
      dst.hops_from_generator = src.hops_from_generator + 1;
      dst.inverted = (dst.hops_from_generator % 2) != 0;
      queue.push({lock, tie, ni});
    }
  }

  for (std::size_t i = 0; i < plan.tiles.size(); ++i) {
    const TileCoord c = grid.coord_of(i);
    const TileClockState& st = plan.tiles[i];
    if (st.reached) {
      ++plan.reached_count;
      plan.max_hops = std::max(plan.max_hops, st.hops_from_generator);
    } else if (faults.is_healthy(c)) {
      ++plan.unreached_healthy_count;
      plan.unreached_healthy.push_back(c);
    }
  }
  return plan;
}

bool reachability_matches_bfs(const FaultMap& faults,
                              const std::vector<TileCoord>& generators,
                              const ForwardingPlan& plan) {
  const TileGrid& grid = faults.grid();
  std::vector<char> reachable(grid.tile_count(), 0);
  std::queue<TileCoord> frontier;
  for (TileCoord g : generators) {
    if (faults.is_healthy(g)) {
      reachable[grid.index_of(g)] = 1;
      frontier.push(g);
    }
  }
  while (!frontier.empty()) {
    const TileCoord c = frontier.front();
    frontier.pop();
    for (TileCoord n : grid.neighbors(c)) {
      if (faults.is_faulty(n)) continue;
      char& seen = reachable[grid.index_of(n)];
      if (!seen) {
        seen = 1;
        frontier.push(n);
      }
    }
  }
  for (std::size_t i = 0; i < plan.tiles.size(); ++i)
    if (plan.tiles[i].reached != static_cast<bool>(reachable[i])) return false;
  return true;
}

Fig4Scenario make_fig4_scenario() {
  TileGrid grid(8, 8);
  FaultMap faults(grid);
  const TileCoord isolated{4, 4};
  // Four faults box in the isolated tile; two more faults elsewhere bring
  // the total to the paper's six while leaving the rest of the healthy
  // region connected (one tile keeps three faulty neighbours but still
  // receives the clock through its single healthy neighbour, like the
  // paper's tile 3).
  for (TileCoord f : {TileCoord{4, 5}, TileCoord{5, 4}, TileCoord{4, 3},
                      TileCoord{3, 4}, TileCoord{5, 6}, TileCoord{2, 2}})
    faults.set_faulty(f, true);
  return Fig4Scenario{std::move(faults), TileCoord{0, 3}, isolated};
}

}  // namespace wsp::clock
