// PLL model (Sec. IV).
//
// Each compute chiplet contains a PLL that multiplies an input clock in
// [10 MHz, 133 MHz] up to at most 400 MHz.  The IP needs a stable reference
// supply, which — because the LDO regulation away from the edge fluctuates
// between 1.0 V and 1.2 V — is only available on edge tiles with nearby
// off-wafer decoupling.  Hence the paper's scheme: generate the fast clock
// at an edge tile and forward it everywhere else.
#pragma once

#include "wsp/common/config.hpp"

namespace wsp::clock {

/// Supply stability requirement for reliable PLL lock, expressed as the
/// maximum tolerable reference ripple (volts peak-to-peak).
inline constexpr double kPllMaxSupplyRippleV = 0.05;

struct PllResult {
  bool locked = false;
  double output_hz = 0.0;
  const char* failure_reason = nullptr;
};

/// Behavioural PLL: checks input range, multiplication feasibility and
/// supply stability, and returns the generated clock.
class Pll {
 public:
  explicit Pll(const SystemConfig& config)
      : input_min_hz_(config.pll_input_min_hz),
        input_max_hz_(config.pll_input_max_hz),
        output_max_hz_(config.pll_output_max_hz) {}

  /// Attempts to generate `target_hz` from `input_hz` given the observed
  /// peak-to-peak ripple on the reference supply.
  PllResult generate(double input_hz, double target_hz,
                     double supply_ripple_v) const;

  double input_min_hz() const { return input_min_hz_; }
  double input_max_hz() const { return input_max_hz_; }
  double output_max_hz() const { return output_max_hz_; }

 private:
  double input_min_hz_;
  double input_max_hz_;
  double output_max_hz_;
};

}  // namespace wsp::clock
