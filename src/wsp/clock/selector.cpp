#include "wsp/clock/selector.hpp"

#include "wsp/ckpt/checkpoint.hpp"
#include "wsp/common/error.hpp"

namespace wsp::clock {

std::optional<Direction> direction_of(ClockSource s) {
  switch (s) {
    case ClockSource::ForwardedN: return Direction::North;
    case ClockSource::ForwardedE: return Direction::East;
    case ClockSource::ForwardedS: return Direction::South;
    case ClockSource::ForwardedW: return Direction::West;
    default: return std::nullopt;
  }
}

const char* to_string(ClockSource s) {
  switch (s) {
    case ClockSource::Jtag: return "JTAG";
    case ClockSource::Master: return "MASTER";
    case ClockSource::ForwardedN: return "FWD_N";
    case ClockSource::ForwardedE: return "FWD_E";
    case ClockSource::ForwardedS: return "FWD_S";
    case ClockSource::ForwardedW: return "FWD_W";
  }
  return "?";
}

ClockSelector::ClockSelector(int toggle_threshold)
    : threshold_(toggle_threshold) {
  require(toggle_threshold > 0, "toggle threshold must be positive");
}

void ClockSelector::begin_auto_select() {
  require(phase_ == SelectorPhase::Boot,
          "auto-selection can only start from the boot phase");
  phase_ = SelectorPhase::AutoSelect;
  counts_.fill(0);
}

void ClockSelector::force_select(ClockSource source) {
  phase_ = SelectorPhase::Locked;
  selected_ = source;
}

std::optional<ClockSource> ClockSelector::step(
    const std::array<bool, 4>& toggled) {
  if (phase_ == SelectorPhase::Locked) return selected_;
  if (phase_ != SelectorPhase::AutoSelect) return std::nullopt;

  // Count this step's toggles on all inputs, then check thresholds in the
  // fixed arbiter priority order (N, E, S, W) so simultaneous arrivals
  // resolve deterministically, as the hardware mux does.
  for (std::size_t d = 0; d < 4; ++d)
    if (toggled[d]) ++counts_[d];

  for (Direction d : kAllDirections) {
    if (counts_[static_cast<std::size_t>(d)] >= threshold_) {
      phase_ = SelectorPhase::Locked;
      selected_ = forwarded_from(d);
      return selected_;
    }
  }
  return std::nullopt;
}

void ClockSelector::save_state(ckpt::Writer& w) const {
  w.tag(ckpt::fourcc("CSEL"));
  w.i32(threshold_);
  w.u8(static_cast<std::uint8_t>(phase_));
  w.u8(static_cast<std::uint8_t>(selected_));
  for (int c : counts_) w.i32(c);
}

void ClockSelector::load_state(ckpt::Reader& r) {
  r.expect_tag(ckpt::fourcc("CSEL"), "ClockSelector");
  const int threshold = r.i32();
  if (threshold != threshold_)
    throw ckpt::Error(ckpt::ErrorKind::SchemaMismatch,
                      "selector toggle threshold differs from the snapshot");
  const std::uint8_t phase = r.u8();
  const std::uint8_t selected = r.u8();
  if (phase > static_cast<std::uint8_t>(SelectorPhase::Locked) ||
      selected > static_cast<std::uint8_t>(ClockSource::ForwardedW))
    throw ckpt::Error(ckpt::ErrorKind::SchemaMismatch,
                      "selector phase/source enum out of range");
  phase_ = static_cast<SelectorPhase>(phase);
  selected_ = static_cast<ClockSource>(selected);
  for (int& c : counts_) c = r.i32();
}

}  // namespace wsp::clock
