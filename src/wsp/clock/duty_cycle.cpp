#include "wsp/clock/duty_cycle.hpp"

#include <algorithm>
#include <cmath>

#include "wsp/common/error.hpp"

namespace wsp::clock {

namespace {

/// Applies one hop's distortion to a duty cycle, given the inversion
/// parity at the *receiving* end of the hop.
///
/// The circuit imbalance always stretches the same physical phase (say the
/// high phase of the wire signal).  Without inversion the logical high
/// phase is always the physical high phase, so the stretch accumulates.
/// With inverted forwarding the logical phase alternates with parity, so
/// consecutive hops stretch opposite halves of the logical cycle.
double apply_hop(double duty, double distortion, bool inverted_hop) {
  return duty + (inverted_hop ? -distortion : distortion);
}

bool is_alive(double duty, double min_pulse) {
  return duty >= min_pulse && duty <= 1.0 - min_pulse;
}

}  // namespace

DutyCycleTrace propagate_duty_cycle(int hops,
                                    const DutyCycleOptions& options) {
  require(hops >= 0, "hop count cannot be negative");
  require(options.distortion_per_hop >= 0.0 &&
              options.distortion_per_hop < 0.5,
          "distortion per hop must be in [0, 0.5)");
  require(options.dcc_correction_strength >= 0.0 &&
              options.dcc_correction_strength <= 1.0,
          "DCC strength must be in [0,1]");

  DutyCycleTrace trace;
  trace.duty_per_hop.reserve(static_cast<std::size_t>(hops) + 1);
  double duty = 0.5;
  trace.duty_per_hop.push_back(duty);

  for (int h = 1; h <= hops; ++h) {
    const bool inverted_hop = options.inverted_forwarding && (h % 2 == 0);
    duty = apply_hop(duty, options.distortion_per_hop, inverted_hop);
    duty = std::clamp(duty, 0.0, 1.0);
    if (options.dcc_enabled)
      duty = 0.5 + (duty - 0.5) * (1.0 - options.dcc_correction_strength);

    trace.duty_per_hop.push_back(duty);
    trace.worst_excursion =
        std::max(trace.worst_excursion, std::abs(duty - 0.5));
    if (trace.clock_alive && !is_alive(duty, options.min_pulse_fraction)) {
      trace.clock_alive = false;
      trace.died_at_hop = h;
    }
    if (!trace.clock_alive && (duty <= 0.0 || duty >= 1.0)) {
      // Once a half-cycle fully vanishes nothing downstream can revive it.
      break;
    }
  }
  return trace;
}

WaferDutyReport analyze_plan_duty(const ForwardingPlan& plan,
                                  const TileGrid& grid,
                                  const DutyCycleOptions& options) {
  WaferDutyReport report;
  report.duty.assign(grid.tile_count(), -1.0);
  report.alive.assign(grid.tile_count(), 0);

  // The duty at a tile depends only on its depth in the forwarding tree,
  // so memoise per depth.
  const int max_hops = plan.max_hops;
  const DutyCycleTrace trace = propagate_duty_cycle(max_hops, options);

  for (std::size_t i = 0; i < plan.tiles.size(); ++i) {
    const TileClockState& st = plan.tiles[i];
    if (!st.reached) continue;
    const auto depth = static_cast<std::size_t>(st.hops_from_generator);
    const double duty = depth < trace.duty_per_hop.size()
                            ? trace.duty_per_hop[depth]
                            : (trace.duty_per_hop.empty()
                                   ? 0.5
                                   : trace.duty_per_hop.back());
    report.duty[i] = duty;
    const bool alive =
        duty >= options.min_pulse_fraction &&
        duty <= 1.0 - options.min_pulse_fraction &&
        (trace.clock_alive ||
         st.hops_from_generator < trace.died_at_hop);
    report.alive[i] = alive ? 1 : 0;
    if (!alive) ++report.dead_tiles;
    report.worst_excursion =
        std::max(report.worst_excursion, std::abs(duty - 0.5));
  }
  return report;
}

}  // namespace wsp::clock
