#include "wsp/clock/recovery.hpp"

#include <algorithm>
#include <array>
#include <queue>

#include "wsp/clock/selector.hpp"
#include "wsp/common/error.hpp"

namespace wsp::clock {

ReclockReport reselect_after_faults(const ForwardingPlan& old_plan,
                                    const FaultMap& faults,
                                    const std::vector<TileCoord>& generators,
                                    const ForwardingOptions& options) {
  const TileGrid& grid = faults.grid();
  require(old_plan.tiles.size() == grid.tile_count(),
          "reselect_after_faults: plan does not match the fault map's grid");
  require(options.toggle_threshold > 0, "toggle threshold must be positive");

  ReclockReport report;
  report.plan = old_plan;
  auto& tiles = report.plan.tiles;

  // --- 1. Which selections survive?  Walk the old forwarding tree down
  // from the surviving generators; a tile keeps its clock iff it is still
  // healthy and its whole upstream chain roots at a surviving generator.
  std::vector<char> valid(grid.tile_count(), 0);
  std::queue<std::size_t> frontier;
  for (TileCoord g : generators) {
    require(grid.contains(g), "surviving generator out of bounds");
    const auto i = grid.index_of(g);
    require(old_plan.tiles[i].is_generator,
            "surviving generator was not a generator in the old plan");
    if (faults.is_faulty(g)) continue;  // a dead tile generates nothing
    if (!valid[i]) {
      valid[i] = 1;
      frontier.push(i);
      ++report.surviving_generator_count;
    }
  }
  std::vector<std::vector<std::size_t>> children(grid.tile_count());
  for (std::size_t i = 0; i < tiles.size(); ++i) {
    const TileClockState& st = old_plan.tiles[i];
    if (!st.reached || st.is_generator || !st.selected_input) continue;
    if (const auto up = grid.neighbor(grid.coord_of(i), *st.selected_input))
      children[grid.index_of(*up)].push_back(i);
  }
  while (!frontier.empty()) {
    const std::size_t i = frontier.front();
    frontier.pop();
    for (std::size_t c : children[i]) {
      if (valid[c] || faults.is_faulty(grid.coord_of(c))) continue;
      valid[c] = 1;
      frontier.push(c);
    }
  }

  // --- 2. Invalidate broken chains.  Dead tiles lose their state outright;
  // healthy tiles whose chain broke (including a generator that lost its
  // clock source: it re-latches like any other tile) enter the re-selection
  // wave.  Linear-index order keeps everything deterministic.
  for (std::size_t i = 0; i < tiles.size(); ++i) {
    const TileCoord c = grid.coord_of(i);
    if (!old_plan.tiles[i].reached) continue;  // was never clocked
    if (faults.is_faulty(c)) {
      tiles[i] = TileClockState{};
      continue;
    }
    if (valid[i]) continue;  // selection survives untouched
    tiles[i] = TileClockState{};
    report.invalidated.push_back(c);
  }

  // --- 3. Re-selection wave, reusing the ClockSelector FSM: invalidated
  // selectors are reset into auto-select and fed, step by step, the toggle
  // activity of their neighbours.  Valid tiles toggle from the start; a
  // tile that re-latches starts toggling its own outputs the next step.
  std::vector<char> toggling = valid;
  std::vector<ClockSelector> selectors;
  selectors.reserve(report.invalidated.size());
  for (std::size_t k = 0; k < report.invalidated.size(); ++k) {
    selectors.emplace_back(options.toggle_threshold);
    selectors.back().begin_auto_select();
  }
  std::vector<char> latched(report.invalidated.size(), 0);

  // If no tile latches for threshold+1 consecutive steps, none ever will:
  // counts only advance on toggling neighbours, and the toggling set only
  // grows when something latches.
  const int quiet_limit = options.toggle_threshold + 1;
  int quiet = 0;
  int step_no = 0;
  while (quiet < quiet_limit &&
         report.relatched.size() < report.invalidated.size()) {
    ++step_no;
    std::vector<std::size_t> newly;
    for (std::size_t k = 0; k < report.invalidated.size(); ++k) {
      if (latched[k]) continue;
      const TileCoord c = report.invalidated[k];
      std::array<bool, 4> toggled{};
      for (Direction d : kAllDirections) {
        const auto n = grid.neighbor(c, d);
        toggled[static_cast<std::size_t>(d)] =
            n && toggling[grid.index_of(*n)];
      }
      const auto source = selectors[k].step(toggled);
      if (!source) continue;
      const auto dir = direction_of(*source);
      const auto up = grid.neighbor(c, *dir);
      const TileClockState& upstream = tiles[grid.index_of(*up)];
      TileClockState& st = tiles[grid.index_of(c)];
      st.reached = true;
      st.selected_input = *dir;
      st.hops_from_generator = upstream.hops_from_generator + 1;
      st.inverted = !upstream.inverted;
      // Race-equivalent lock time: threshold periods after the upstream
      // clock (re)appeared at this tile's input.
      st.lock_time = upstream.lock_time + options.hop_latency_periods +
                     options.toggle_threshold;
      newly.push_back(k);
      report.relatched.push_back(c);
    }
    for (std::size_t k : newly) {
      latched[k] = 1;
      toggling[grid.index_of(report.invalidated[k])] = 1;
    }
    if (newly.empty()) {
      ++quiet;
    } else {
      quiet = 0;
      report.relatch_steps = step_no;
    }
  }

  // --- 4. Whoever did not re-latch is newly orphaned: healthy but cut off
  // from every surviving generator.
  for (std::size_t k = 0; k < report.invalidated.size(); ++k)
    if (!latched[k]) report.newly_orphaned.push_back(report.invalidated[k]);

  // --- 5. Recount the plan's aggregates.
  report.plan.reached_count = 0;
  report.plan.unreached_healthy_count = 0;
  report.plan.unreached_healthy.clear();
  report.plan.max_hops = 0;
  for (std::size_t i = 0; i < tiles.size(); ++i) {
    const TileCoord c = grid.coord_of(i);
    if (tiles[i].reached) {
      ++report.plan.reached_count;
      report.plan.max_hops =
          std::max(report.plan.max_hops, tiles[i].hops_from_generator);
    } else if (faults.is_healthy(c)) {
      ++report.plan.unreached_healthy_count;
      report.plan.unreached_healthy.push_back(c);
    }
  }
  return report;
}

}  // namespace wsp::clock
