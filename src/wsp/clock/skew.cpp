#include "wsp/clock/skew.hpp"

#include <algorithm>
#include <cstdlib>

namespace wsp::clock {

SkewReport analyze_skew(const ForwardingPlan& plan, const TileGrid& grid,
                        double per_hop_delay_s) {
  SkewReport report;
  double delta_sum = 0.0;
  grid.for_each([&](TileCoord c) {
    const TileClockState& here = plan.tiles[grid.index_of(c)];
    if (!here.reached) return;
    // Count each link once: east and north neighbours only.
    for (const Direction d : {Direction::East, Direction::North}) {
      const auto n = grid.neighbor(c, d);
      if (!n) continue;
      const TileClockState& there = plan.tiles[grid.index_of(*n)];
      if (!there.reached) continue;
      const int delta =
          std::abs(here.hops_from_generator - there.hops_from_generator);
      report.max_adjacent_depth_delta =
          std::max(report.max_adjacent_depth_delta, delta);
      delta_sum += delta;
      ++report.links_measured;
      if (here.inverted != there.inverted) ++report.odd_parity_links;
    }
  });
  if (report.links_measured > 0)
    report.mean_adjacent_depth_delta =
        delta_sum / static_cast<double>(report.links_measured);
  report.worst_skew_s = report.max_adjacent_depth_delta * per_hop_delay_s;
  grid.for_each([&](TileCoord c) {
    const TileClockState& st = plan.tiles[grid.index_of(c)];
    if (st.reached)
      report.max_depth = std::max(report.max_depth, st.hops_from_generator);
  });
  report.global_spread_s = report.max_depth * per_hop_delay_s;
  return report;
}

bool synchronous_links_feasible(const SkewReport& report, double budget_s) {
  return report.worst_skew_s <= budget_s;
}

}  // namespace wsp::clock
