#include "wsp/arch/core_cluster.hpp"

#include <algorithm>

#include "wsp/common/error.hpp"

namespace wsp::arch {

CoreCluster::CoreCluster(int core_count) : core_count_(core_count) {
  require(core_count >= 1, "a tile needs at least one core");
  for (int i = 0; i < core_count; ++i) free_at_.push(0);
}

std::uint64_t CoreCluster::schedule(std::uint64_t ready_cycle,
                                    std::uint64_t cost) {
  const std::uint64_t core_free = free_at_.top();
  free_at_.pop();
  const std::uint64_t start = std::max(ready_cycle, core_free);
  const std::uint64_t end = start + cost;
  free_at_.push(end);
  busy_cycles_ += cost;
  ++work_items_;
  latest_completion_ = std::max(latest_completion_, end);
  return end;
}

std::uint64_t CoreCluster::all_idle_at() const { return latest_completion_; }

std::uint64_t CoreCluster::next_free_at() const { return free_at_.top(); }

double CoreCluster::utilization(std::uint64_t horizon_cycle) const {
  if (horizon_cycle == 0) return 0.0;
  const double capacity =
      static_cast<double>(horizon_cycle) * static_cast<double>(core_count());
  return std::min(1.0, static_cast<double>(busy_cycles_) / capacity);
}

}  // namespace wsp::arch
