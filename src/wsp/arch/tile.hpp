// One tile of the waferscale array (Sec. II).
//
// A tile pairs a compute chiplet (14 cores + private SRAMs + routers +
// LDO + clock circuitry) with a memory chiplet (5 shared/local banks).
// The NoC routers are simulated globally in wsp/noc; this struct holds the
// tile-local resources the architecture simulator charges work against.
#pragma once

#include <vector>

#include "wsp/arch/core_cluster.hpp"
#include "wsp/common/config.hpp"
#include "wsp/mem/memory_chiplet.hpp"
#include "wsp/mem/sram_bank.hpp"

namespace wsp::arch {

class Tile {
 public:
  Tile(const SystemConfig& config, TileCoord coord,
       bool single_layer_mode = false)
      : coord_(coord),
        cores_(config.cores_per_tile),
        memory_(config, single_layer_mode) {
    private_mem_.reserve(static_cast<std::size_t>(config.cores_per_tile));
    for (int c = 0; c < config.cores_per_tile; ++c)
      private_mem_.emplace_back(
          static_cast<std::uint32_t>(config.private_mem_per_core_bytes));
  }

  TileCoord coord() const { return coord_; }
  CoreCluster& cores() { return cores_; }
  const CoreCluster& cores() const { return cores_; }
  mem::MemoryChiplet& memory() { return memory_; }
  const mem::MemoryChiplet& memory() const { return memory_; }
  mem::SramBank& private_mem(int core) { return private_mem_.at(core); }

 private:
  TileCoord coord_;
  CoreCluster cores_;
  mem::MemoryChiplet memory_;
  std::vector<mem::SramBank> private_mem_;
};

}  // namespace wsp::arch
