#include "wsp/arch/power_map.hpp"

#include <algorithm>

#include "wsp/common/error.hpp"

namespace wsp::arch {

std::vector<double> tile_power_map(const WaferSystem& system,
                                   const PowerMapOptions& options) {
  require(options.idle_fraction >= 0.0 && options.idle_fraction <= 1.0,
          "idle fraction must be in [0,1]");
  const SystemConfig& cfg = system.config();
  const TileGrid grid = cfg.grid();
  const std::uint64_t horizon = std::max<std::uint64_t>(1, system.stats().cycles);

  std::vector<double> power(grid.tile_count(), options.faulty_tile_w);
  grid.for_each([&](TileCoord c) {
    if (system.faults().is_faulty(c)) return;
    const double util = system.tile(c).cores().utilization(horizon);
    power[grid.index_of(c)] =
        cfg.tile_peak_power_w *
        (options.idle_fraction + (1.0 - options.idle_fraction) * util);
  });
  return power;
}

}  // namespace wsp::arch
