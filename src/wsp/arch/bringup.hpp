// Wafer bring-up orchestration: the end-to-end sequence the paper's
// sections describe, as one library call.
//
//   1. post-assembly JTAG screening (per-row chains, progressive
//      unrolling) confirms/locates the faulty tiles;
//   2. clock setup: healthy edge generators, forwarding, duty-cycle and
//      skew checks;
//   3. the kernel's connectivity census over the fault map;
//   4. boot-time estimate for loading all memories.
//
// The result says which tiles are *usable* — healthy, clocked, and
// reachable — which is exactly the fault map the kernel then schedules
// against.  examples/bringup_flow.cpp narrates the same sequence
// interactively; this API makes it scriptable and testable.
#pragma once

#include <optional>
#include <vector>

#include "wsp/clock/duty_cycle.hpp"
#include "wsp/clock/forwarding.hpp"
#include "wsp/clock/skew.hpp"
#include "wsp/common/config.hpp"
#include "wsp/common/fault_map.hpp"
#include "wsp/noc/connectivity.hpp"
#include "wsp/testinfra/test_time.hpp"

namespace wsp::arch {

struct BringupOptions {
  /// Generators to configure; empty = pick the first healthy edge tile.
  std::vector<TileCoord> clock_generators;
  clock::DutyCycleOptions duty{};
  double clock_hop_delay_s = 150e-12;
  bool use_broadcast_loading = true;
};

struct BringupReport {
  /// Tiles detected faulty by the JTAG screen (== the input fault map by
  /// construction of the simulation; real hardware learns it here).
  std::size_t faulty_tiles = 0;
  std::uint64_t screening_tcks = 0;

  clock::ForwardingPlan clock_plan;
  clock::WaferDutyReport duty;
  clock::SkewReport skew;

  noc::DisconnectionStats connectivity;

  testinfra::LoadTimeReport boot_load;

  /// Healthy + clocked tiles; what the kernel may schedule on.
  FaultMap usable{TileGrid(1, 1)};
  std::size_t usable_tiles = 0;
  /// True when every usable pair can communicate (directly or relayed):
  /// the wafer can host a single unified-memory image.
  bool single_system_image = false;
};

/// Runs the full bring-up sequence against an assembled wafer's fault map.
BringupReport run_bringup(const SystemConfig& config, const FaultMap& faults,
                          const BringupOptions& options = {});

}  // namespace wsp::arch
