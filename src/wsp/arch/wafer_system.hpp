// Whole-wafer system simulator: tiles + NoC + a message-driven programming
// model (Sec. II).
//
// The paper validated the architecture by emulating a reduced-size
// multi-tile system on FPGAs and running graph workloads (BFS, SSSP).
// This simulator plays that role in software: applications install a
// per-tile handler; tiles exchange messages over the cycle-level dual-DoR
// NoC (requests on one network, acks on the complement, exactly as the
// hardware does); handler work occupies the tile's 14 cores.  The model is
// an actor/message-passing view of the unified-memory machine — each
// message stands for a remote memory transaction or an explicit core-to-
// core notification.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "wsp/arch/tile.hpp"
#include "wsp/common/config.hpp"
#include "wsp/common/fault_map.hpp"
#include "wsp/noc/noc_system.hpp"

namespace wsp::arch {

/// An application-level message between tiles.
struct Message {
  TileCoord src;
  TileCoord dst;
  std::uint32_t tag = 0;
  std::uint64_t payload = 0;
  std::uint64_t sent_cycle = 0;
  std::uint64_t delivered_cycle = 0;
};

class WaferSystem;

/// Execution context passed to handlers; collects the invocation's core
/// cost and outgoing messages (which enter the network when the handler's
/// core work completes).
class TileContext {
 public:
  TileCoord coord() const { return tile_->coord(); }
  std::uint64_t now() const { return now_; }
  Tile& tile() { return *tile_; }
  mem::MemoryChiplet& memory() { return tile_->memory(); }

  /// Accounts `cycles` of core work for this invocation.
  void charge(std::uint64_t cycles) { charged_ += cycles; }

  /// Queues a message to `dst`; it is injected when this invocation's core
  /// work finishes.  Also charges one cycle for the store to the network
  /// adapter.
  void send(TileCoord dst, std::uint32_t tag, std::uint64_t payload);

 private:
  friend class WaferSystem;
  Tile* tile_ = nullptr;
  std::uint64_t now_ = 0;
  std::uint64_t charged_ = 0;
  std::vector<Message> outgoing_;
};

/// Application logic living on one tile.
class TileHandler {
 public:
  virtual ~TileHandler() = default;
  /// Invoked once on every healthy tile when the system starts.
  virtual void on_start(TileContext&) {}
  /// Invoked for every message delivered to this tile.
  virtual void on_message(TileContext&, const Message&) = 0;
};

/// Factory producing the handler instance for each healthy tile.
using HandlerFactory =
    std::function<std::unique_ptr<TileHandler>(TileCoord)>;

struct WaferSystemStats {
  std::uint64_t cycles = 0;           ///< NoC cycles simulated
  std::uint64_t makespan = 0;         ///< cycle all work (cores+NoC) done
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_undeliverable = 0;  ///< no route to destination
  std::uint64_t handler_invocations = 0;
  std::uint64_t core_busy_cycles = 0;
  double mean_core_utilization = 0.0;
};

class WaferSystem {
 public:
  WaferSystem(const SystemConfig& config, const FaultMap& faults,
              HandlerFactory factory,
              const noc::NocOptions& noc_options = {},
              bool single_layer_mode = false);

  const SystemConfig& config() const { return config_; }
  const FaultMap& faults() const { return faults_; }
  Tile& tile(TileCoord c);
  const Tile& tile(TileCoord c) const;
  noc::NocSystem& noc() { return noc_; }

  /// Runs on_start on every healthy tile (cycle 0).
  void start();

  /// Advances until no messages are pending/in flight, or `max_cycles`
  /// NoC cycles elapse.  Returns true when the system quiesced.
  bool run_until_quiescent(std::uint64_t max_cycles = 10'000'000);

  /// Host-side message injection (e.g. seeding a workload from the edge
  /// controller).  Enters the network at the current cycle.
  void post(const Message& message);

  WaferSystemStats stats() const;

 private:
  struct PendingSend {
    std::uint64_t ready_cycle;
    std::uint64_t seq;  ///< insertion order: deterministic heap order
    Message message;
    friend bool operator>(const PendingSend& a, const PendingSend& b) {
      return std::tie(a.ready_cycle, a.seq) > std::tie(b.ready_cycle, b.seq);
    }
  };

  SystemConfig config_;
  FaultMap faults_;
  noc::NocSystem noc_;
  std::vector<std::unique_ptr<Tile>> tiles_;
  std::vector<std::unique_ptr<TileHandler>> handlers_;
  std::priority_queue<PendingSend, std::vector<PendingSend>, std::greater<>>
      sends_;  ///< min-heap by ready cycle
  std::uint64_t send_seq_ = 0;
  std::unordered_map<std::uint64_t, Message> in_flight_;  ///< txn id -> msg
  WaferSystemStats stats_;
  bool started_ = false;

  void queue_send(std::uint64_t ready, const Message& m);
  void issue_due_sends();
  void invoke(TileCoord where, const Message* message);
  void on_delivery(const noc::Packet& packet);
};

}  // namespace wsp::arch
