#include "wsp/arch/wafer_system.hpp"

#include <algorithm>

#include "wsp/common/error.hpp"

namespace wsp::arch {

void TileContext::send(TileCoord dst, std::uint32_t tag,
                       std::uint64_t payload) {
  charge(1);  // store to the network adapter through the crossbar
  Message m;
  m.src = tile_->coord();
  m.dst = dst;
  m.tag = tag;
  m.payload = payload;
  outgoing_.push_back(m);
}

WaferSystem::WaferSystem(const SystemConfig& config, const FaultMap& faults,
                         HandlerFactory factory,
                         const noc::NocOptions& noc_options,
                         bool single_layer_mode)
    : config_(config), faults_(faults), noc_(faults, noc_options) {
  config_.validate();
  require(static_cast<int>(faults.grid().width()) == config.array_width &&
              static_cast<int>(faults.grid().height()) == config.array_height,
          "fault map does not match the configured array");
  require(factory != nullptr, "a handler factory is required");

  const TileGrid grid = config_.grid();
  tiles_.resize(grid.tile_count());
  handlers_.resize(grid.tile_count());
  grid.for_each([&](TileCoord c) {
    const auto i = grid.index_of(c);
    tiles_[i] = std::make_unique<Tile>(config_, c, single_layer_mode);
    if (faults_.is_healthy(c)) handlers_[i] = factory(c);
  });

  noc_.set_delivery_listener(
      [this](const noc::Packet& p) { on_delivery(p); });
}

Tile& WaferSystem::tile(TileCoord c) {
  require(config_.grid().contains(c), "tile out of bounds");
  return *tiles_[config_.grid().index_of(c)];
}

const Tile& WaferSystem::tile(TileCoord c) const {
  require(config_.grid().contains(c), "tile out of bounds");
  return *tiles_[config_.grid().index_of(c)];
}

void WaferSystem::queue_send(std::uint64_t ready, const Message& m) {
  sends_.push(PendingSend{ready, send_seq_++, m});
}

void WaferSystem::invoke(TileCoord where, const Message* message) {
  const auto i = config_.grid().index_of(where);
  TileHandler* handler = handlers_[i].get();
  if (!handler) return;  // faulty tile: no software runs here

  TileContext ctx;
  ctx.tile_ = tiles_[i].get();
  ctx.now_ = noc_.now();
  if (message)
    handler->on_message(ctx, *message);
  else
    handler->on_start(ctx);
  ++stats_.handler_invocations;

  // The invocation occupies a core; its sends enter the network when the
  // core work retires.
  const std::uint64_t cost = std::max<std::uint64_t>(1, ctx.charged_);
  const std::uint64_t done = ctx.tile_->cores().schedule(ctx.now_, cost);
  for (Message& m : ctx.outgoing_) {
    m.sent_cycle = done;
    queue_send(done, m);
  }
}

void WaferSystem::on_delivery(const noc::Packet& packet) {
  const auto it = in_flight_.find(packet.id);
  if (it == in_flight_.end()) return;  // not an application message
  Message m = it->second;
  in_flight_.erase(it);
  m.delivered_cycle = noc_.now();
  ++stats_.messages_delivered;
  invoke(m.dst, &m);
}

void WaferSystem::issue_due_sends() {
  while (!sends_.empty() && sends_.top().ready_cycle <= noc_.now()) {
    const Message m = sends_.top().message;
    sends_.pop();
    ++stats_.messages_sent;
    const auto id = noc_.issue(m.src, m.dst, noc::PacketType::WriteRequest,
                               m.payload, m.tag);
    if (!id) {
      ++stats_.messages_undeliverable;
      continue;
    }
    in_flight_.emplace(*id, m);
  }
}

void WaferSystem::start() {
  require(!started_, "system already started");
  started_ = true;
  config_.grid().for_each([&](TileCoord c) {
    if (faults_.is_healthy(c)) invoke(c, nullptr);
  });
}

void WaferSystem::post(const Message& message) {
  queue_send(noc_.now(), message);
}

bool WaferSystem::run_until_quiescent(std::uint64_t max_cycles) {
  const std::uint64_t limit = noc_.now() + max_cycles;
  std::vector<noc::CompletedTransaction> done;
  while (noc_.now() < limit) {
    issue_due_sends();
    if (sends_.empty() && in_flight_.empty() &&
        noc_.inflight_transactions() == 0)
      return true;
    noc_.step(done);
  }
  return sends_.empty() && in_flight_.empty() &&
         noc_.inflight_transactions() == 0;
}

WaferSystemStats WaferSystem::stats() const {
  WaferSystemStats s = stats_;
  s.cycles = noc_.now();
  s.makespan = noc_.now();
  double util_sum = 0.0;
  std::size_t healthy = 0;
  for (std::size_t i = 0; i < tiles_.size(); ++i) {
    if (!handlers_[i]) continue;
    ++healthy;
    const CoreCluster& cores = tiles_[i]->cores();
    s.core_busy_cycles += cores.total_busy_cycles();
    s.makespan = std::max(s.makespan, cores.all_idle_at());
    util_sum += cores.utilization(std::max<std::uint64_t>(1, noc_.now()));
  }
  s.mean_core_utilization = healthy ? util_sum / healthy : 0.0;
  return s;
}

}  // namespace wsp::arch
