#include "wsp/arch/crossbar.hpp"

#include "wsp/common/error.hpp"

namespace wsp::arch {

Crossbar::Crossbar(int masters, int slaves)
    : masters_(masters),
      slaves_(slaves),
      rr_(static_cast<std::size_t>(slaves), 0),
      slave_grants_(static_cast<std::size_t>(slaves), 0) {
  require(masters >= 1 && slaves >= 1,
          "crossbar needs at least one master and one slave");
}

XbarGrants Crossbar::arbitrate(const std::vector<XbarRequest>& requests) {
  XbarGrants grants;
  grants.per_master.assign(static_cast<std::size_t>(masters_), std::nullopt);

  // Requests per slave, in master order.
  std::vector<std::vector<int>> waiting(static_cast<std::size_t>(slaves_));
  std::vector<char> master_seen(static_cast<std::size_t>(masters_), 0);
  for (const XbarRequest& r : requests) {
    require(r.master >= 0 && r.master < masters_, "bad master index");
    require(r.slave >= 0 && r.slave < slaves_, "bad slave index");
    require(!master_seen[r.master], "a master may issue one request/cycle");
    master_seen[r.master] = 1;
    waiting[static_cast<std::size_t>(r.slave)].push_back(r.master);
  }

  for (int s = 0; s < slaves_; ++s) {
    const auto& w = waiting[static_cast<std::size_t>(s)];
    if (w.empty()) continue;
    // Rotating priority: grant the first waiting master at or after rr_[s]
    // in cyclic master order.
    int winner = -1;
    for (int k = 0; k < masters_ && winner < 0; ++k) {
      const int candidate = (rr_[s] + k) % masters_;
      for (const int m : w)
        if (m == candidate) {
          winner = m;
          break;
        }
    }
    rr_[s] = (winner + 1) % masters_;
    grants.per_master[static_cast<std::size_t>(winner)] = s;
    ++grants.granted_count;
    ++slave_grants_[static_cast<std::size_t>(s)];
    ++total_grants_;
  }
  ++cycles_;
  return grants;
}

}  // namespace wsp::arch
