#include "wsp/arch/bringup.hpp"

#include "wsp/common/error.hpp"
#include "wsp/noc/noc_system.hpp"
#include "wsp/testinfra/dap_chain.hpp"

namespace wsp::arch {

BringupReport run_bringup(const SystemConfig& config, const FaultMap& faults,
                          const BringupOptions& options) {
  config.validate();
  const TileGrid grid = config.grid();
  require(grid.width() == faults.grid().width() &&
              grid.height() == faults.grid().height(),
          "fault map does not match the configuration");

  BringupReport report;
  report.faulty_tiles = faults.fault_count();

  // --- 1. JTAG screening: one chain per row, progressive unrolling ---
  for (int row = 0; row < config.array_height; ++row) {
    std::vector<bool> row_faults;
    row_faults.reserve(static_cast<std::size_t>(config.array_width));
    for (int x = 0; x < config.array_width; ++x)
      row_faults.push_back(faults.is_faulty({x, row}));
    testinfra::WaferTestChain chain(config.array_width,
                                    config.cores_per_tile, row_faults);
    if (options.use_broadcast_loading) chain.set_broadcast(true);
    (void)chain.locate_first_faulty(&report.screening_tcks);
  }

  // --- 2. clock setup ---
  std::vector<TileCoord> generators = options.clock_generators;
  if (generators.empty()) {
    grid.for_each([&](TileCoord c) {
      if (generators.empty() && grid.is_edge(c) && faults.is_healthy(c))
        generators.push_back(c);
    });
  }
  require(!generators.empty(), "no healthy edge tile to generate the clock");
  report.clock_plan = clock::simulate_forwarding(faults, generators);
  report.duty =
      clock::analyze_plan_duty(report.clock_plan, grid, options.duty);
  report.skew =
      clock::analyze_skew(report.clock_plan, grid, options.clock_hop_delay_s);

  // --- 3. usable set: healthy, clocked, and with a live duty cycle ---
  report.usable = faults;
  grid.for_each([&](TileCoord c) {
    const auto i = grid.index_of(c);
    if (faults.is_healthy(c) &&
        (!report.clock_plan.tiles[i].reached || !report.duty.alive[i]))
      report.usable.set_faulty(c, true);
  });
  report.usable_tiles = report.usable.healthy_count();

  // --- 4. the kernel's connectivity view over the usable map ---
  report.connectivity = noc::census_disconnection(report.usable);

  // Single-system-image check: every usable pair routable, directly or
  // through one relay.
  const noc::NetworkSelector selector(report.usable);
  report.single_system_image = true;
  const auto usable_tiles = report.usable.healthy_tiles();
  for (std::size_t i = 0;
       i < usable_tiles.size() && report.single_system_image; ++i) {
    for (std::size_t j = 0; j < usable_tiles.size(); ++j) {
      if (i == j) continue;
      if (!selector.plan(usable_tiles[i], usable_tiles[j]).reachable) {
        report.single_system_image = false;
        break;
      }
    }
  }

  // --- 5. boot-time estimate ---
  report.boot_load = testinfra::memory_load_time(
      config, config.jtag_chains, options.use_broadcast_loading);
  return report;
}

}  // namespace wsp::arch
