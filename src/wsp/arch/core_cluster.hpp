// Core timing model (Sec. II-b).
//
// Each compute chiplet carries 14 independently programmable ARM
// Cortex-M3-class cores with 64 KB of private SRAM each.  For the system
// simulator the cores are a *timing* resource: work items (message
// handlers, relay duties, kernel tasks) occupy a core for a number of
// cycles; the cluster tracks when each core frees up and accumulates
// utilisation statistics.  Microarchitectural detail is out of scope, as
// it is in the paper.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

namespace wsp::arch {

/// Scheduler over the identical cores of one tile.
class CoreCluster {
 public:
  explicit CoreCluster(int core_count);

  int core_count() const { return core_count_; }

  /// Schedules a `cost`-cycle work item that becomes runnable at
  /// `ready_cycle`; it runs on the earliest-available core.  Returns the
  /// cycle at which the work completes.
  std::uint64_t schedule(std::uint64_t ready_cycle, std::uint64_t cost);

  /// Cycle at which every scheduled work item has finished.
  std::uint64_t all_idle_at() const;

  /// Earliest cycle at which at least one core is free.
  std::uint64_t next_free_at() const;

  std::uint64_t total_busy_cycles() const { return busy_cycles_; }
  std::uint64_t work_items() const { return work_items_; }

  /// Mean core utilisation over [0, horizon_cycle].
  double utilization(std::uint64_t horizon_cycle) const;

 private:
  int core_count_;
  // Min-heap over per-core next-free cycles.
  std::priority_queue<std::uint64_t, std::vector<std::uint64_t>,
                      std::greater<>> free_at_;
  std::uint64_t busy_cycles_ = 0;
  std::uint64_t work_items_ = 0;
  std::uint64_t latest_completion_ = 0;
};

}  // namespace wsp::arch
