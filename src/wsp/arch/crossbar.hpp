// Intra-tile crossbar interconnect (Sec. II-b).
//
// Inside a tile, the 14 cores, the two network-router adapters and the
// memory controllers are connected by a chiplet-level crossbar (the ARM
// BusMatrix IP in the real design).  Any master can reach any slave; each
// slave port grants one master per cycle with rotating priority, so all
// five memory banks can be accessed in parallel as long as the masters
// spread across banks.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace wsp::arch {

/// A master's request for one slave port this cycle.
struct XbarRequest {
  int master = 0;
  int slave = 0;
};

/// Grant decisions for one cycle: grants[m] holds the slave granted to
/// master m, or nullopt when the master lost arbitration (or asked for
/// nothing).
struct XbarGrants {
  std::vector<std::optional<int>> per_master;
  int granted_count = 0;
};

class Crossbar {
 public:
  Crossbar(int masters, int slaves);

  int masters() const { return masters_; }
  int slaves() const { return slaves_; }

  /// Arbitrates one cycle of requests.  Each master may appear at most
  /// once (a core issues one access per cycle); each slave grants at most
  /// one master, rotating priority per slave.
  XbarGrants arbitrate(const std::vector<XbarRequest>& requests);

  /// Cumulative grants per slave (bandwidth accounting).
  const std::vector<std::uint64_t>& slave_grant_counts() const {
    return slave_grants_;
  }
  std::uint64_t total_grants() const { return total_grants_; }
  std::uint64_t cycles() const { return cycles_; }

 private:
  int masters_;
  int slaves_;
  std::vector<int> rr_;  ///< per-slave rotating priority pointer
  std::vector<std::uint64_t> slave_grants_;
  std::uint64_t total_grants_ = 0;
  std::uint64_t cycles_ = 0;
};

}  // namespace wsp::arch
