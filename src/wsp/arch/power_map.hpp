// Workload-driven power maps: closing the loop between the architecture
// simulator and the PDN model.
//
// The paper's Fig. 2 droop is computed at uniform peak draw — the worst
// case.  Real workloads load the wafer unevenly (graph kernels in
// particular), so the droop profile follows the activity map.  This
// helper converts a finished WaferSystem run into a per-tile power vector
// that wsp::pdn::WaferPdn::solve() consumes directly.
#pragma once

#include <vector>

#include "wsp/arch/wafer_system.hpp"

namespace wsp::arch {

struct PowerMapOptions {
  /// Fraction of peak power a healthy-but-idle tile draws (clock tree,
  /// leakage, SRAM retention).
  double idle_fraction = 0.3;
  /// Power drawn by a faulty tile: its LDO is disabled during bring-up.
  double faulty_tile_w = 0.0;
};

/// Per-tile power (watts, indexed by TileGrid::index_of) for the run the
/// system has executed so far: idle + utilisation x (peak - idle).
std::vector<double> tile_power_map(const WaferSystem& system,
                                   const PowerMapOptions& options = {});

}  // namespace wsp::arch
