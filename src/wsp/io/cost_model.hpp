// Cost comparison: chiplet assembly vs monolithic waferscale (Sec. I).
//
// The paper's introduction makes two economic claims: (1) monolithic
// waferscale chips must reserve redundant cores and links to yield at
// all, and (2) pre-tested known-good-die chiplet assembly "can
// potentially provide better cost-performance trade-offs".  This module
// turns those claims into numbers:
//
//   * Monolithic: one whole-wafer die.  Defects arrive at density D0;
//     each tile-sized region survives with Poisson probability
//     e^(-D0 * A_tile).  The design reserves a spare-tile fraction; the
//     wafer is good when enough tiles survive (normal approximation to
//     the binomial).  Cost per good system = wafer cost / system yield,
//     and the spares are dead area even when it works.
//
//   * Chiplet: small dies yield individually (same D0 — small area is
//     the whole trick), are screened before assembly (KGD, Sec. VII),
//     and bond with the dual-pillar yield of Sec. V.  Cost per good
//     system = chiplet silicon (scrap included) + interconnect wafer +
//     assembly, divided by the assembly-level yield.
#pragma once

#include "wsp/common/config.hpp"

namespace wsp::io {

struct CostInputs {
  double defect_density_per_m2 = 1000.0;  ///< ~0.1 defects/cm^2, mature node
  double active_wafer_cost = 5000.0;      ///< processed logic wafer (40nm-class)
  double interconnect_wafer_cost = 1000.0;///< the passive Si-IF substrate
  double wafer_area_m2 = 0.070;           ///< 300 mm wafer usable area
  double assembly_cost_per_chiplet = 0.25;///< pick/place/bond amortised
  /// Spare-tile fraction a monolithic design reserves (the paper:
  /// "redundant cores and network links need to be reserved").
  double monolithic_spare_fraction = 0.10;
};

struct MonolithicCost {
  double tile_yield = 0.0;         ///< one tile-sized region survives
  double expected_faulty_tiles = 0.0;
  double system_yield = 0.0;       ///< enough tiles survive the spares
  double cost_per_good_system = 0.0;
  double spare_area_fraction = 0.0;
};

struct ChipletCost {
  double compute_die_yield = 0.0;  ///< small die survives fabrication
  double memory_die_yield = 0.0;
  double dies_per_wafer = 0.0;
  double silicon_cost = 0.0;       ///< good chiplets incl. scrap share
  double assembly_yield = 0.0;     ///< all bonds good (dual pillar)
  double cost_per_good_system = 0.0;
};

struct CostComparison {
  MonolithicCost monolithic;
  ChipletCost chiplet;
  double chiplet_advantage = 0.0;  ///< monolithic / chiplet cost ratio
};

MonolithicCost estimate_monolithic_cost(const SystemConfig& config,
                                        const CostInputs& inputs = {});
ChipletCost estimate_chiplet_cost(const SystemConfig& config,
                                  const CostInputs& inputs = {});
CostComparison compare_costs(const SystemConfig& config,
                             const CostInputs& inputs = {});

}  // namespace wsp::io
