// Cu-pillar bonding yield: the dual-pillar redundancy story of Sec. V.
//
// Die-to-wafer bonding succeeds per pillar with probability >99.99 %.  A
// chiplet with >2000 I/O pads bonded with one pillar each would only yield
// 0.9999^2000 ~ 81.46 %; across 2048 chiplets that is ~380 expected faulty
// chiplets per wafer.  Landing *two* pillars on every pad drops the per-pad
// failure probability to (1e-4)^2 and lifts per-chiplet yield to 99.998 %
// (expected faulty chiplets: ~1 per wafer, actually ~0.04).
//
// Both the closed-form model and a Monte Carlo assembly simulator are
// provided; property tests cross-validate them, and the NoC fault-map
// studies consume the Monte Carlo sampler.
#pragma once

#include <cstddef>

#include "wsp/common/config.hpp"
#include "wsp/common/fault_map.hpp"
#include "wsp/common/rng.hpp"

namespace wsp::io {

/// Closed-form yield figures for one chiplet type.
struct ChipletYield {
  double pad_failure_prob = 0.0;   ///< per-pad failure after redundancy
  double chiplet_yield = 0.0;      ///< all pads bond correctly
};

/// Closed-form yield figures for the whole assembly.
struct AssemblyYield {
  ChipletYield compute;
  ChipletYield memory;
  double tile_yield = 0.0;           ///< both chiplets of a tile bond
  double expected_faulty_chiplets = 0.0;  ///< over the full wafer
  double expected_faulty_tiles = 0.0;
  double all_good_probability = 0.0; ///< a wafer with zero faulty chiplets
};

/// Per-pad failure probability with `pillars_per_pad` redundant pillars,
/// each failing independently with probability (1 - pillar_yield).
double pad_failure_probability(double pillar_yield, int pillars_per_pad);

/// Probability that a chiplet with `pad_count` pads bonds with no bad pad.
double chiplet_bond_yield(double pillar_yield, int pillars_per_pad,
                          int pad_count);

/// Full-assembly closed-form yield for `config`, using `pillars_per_pad`
/// (pass 1 to evaluate the non-redundant baseline the paper compares to).
AssemblyYield analyze_assembly_yield(const SystemConfig& config,
                                     int pillars_per_pad);

/// Outcome of one Monte Carlo assembly.
struct AssemblyDraw {
  FaultMap tile_faults;               ///< tiles with >=1 badly-bonded chiplet
  std::size_t faulty_compute_chiplets = 0;
  std::size_t faulty_memory_chiplets = 0;
};

/// Samples one wafer assembly: every pad of every chiplet bonds with the
/// redundant-pillar success probability; a tile is faulty when either of
/// its chiplets has any bad pad.
AssemblyDraw simulate_assembly(const SystemConfig& config,
                               int pillars_per_pad, Rng& rng);

/// Monte Carlo estimate (mean over `trials`) of faulty chiplets per wafer.
double estimate_faulty_chiplets(const SystemConfig& config,
                                int pillars_per_pad, int trials, Rng& rng);

}  // namespace wsp::io
