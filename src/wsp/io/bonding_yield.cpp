#include "wsp/io/bonding_yield.hpp"

#include <cmath>

#include "wsp/common/error.hpp"

namespace wsp::io {

namespace {

/// Exact Binomial(n, p) sample for small p via geometric skipping: the
/// index gap between consecutive failures is Geometric(p), so we jump from
/// failure to failure instead of testing every pad individually.  O(np)
/// expected work — effectively O(1) for p ~ 1e-8.
std::size_t sample_binomial_small_p(std::size_t n, double p, wsp::Rng& rng) {
  if (p <= 0.0 || n == 0) return 0;
  if (p >= 1.0) return n;
  std::size_t failures = 0;
  const double log1mp = std::log1p(-p);
  double pos = 0.0;
  while (true) {
    // u in (0,1]; skip >= 1.
    const double u = 1.0 - rng.uniform();
    pos += std::floor(std::log(u) / log1mp) + 1.0;
    if (pos > static_cast<double>(n)) break;
    ++failures;
  }
  return failures;
}

}  // namespace

double pad_failure_probability(double pillar_yield, int pillars_per_pad) {
  require(pillar_yield >= 0.0 && pillar_yield <= 1.0,
          "pillar yield must be a probability");
  require(pillars_per_pad >= 1, "at least one pillar per pad");
  // A pad fails only when every redundant pillar on it fails.
  return std::pow(1.0 - pillar_yield, pillars_per_pad);
}

double chiplet_bond_yield(double pillar_yield, int pillars_per_pad,
                          int pad_count) {
  require(pad_count >= 0, "pad count cannot be negative");
  const double q = pad_failure_probability(pillar_yield, pillars_per_pad);
  return std::pow(1.0 - q, pad_count);
}

AssemblyYield analyze_assembly_yield(const SystemConfig& config,
                                     int pillars_per_pad) {
  AssemblyYield y;
  const double p = config.pillar_bond_yield;
  y.compute.pad_failure_prob = pad_failure_probability(p, pillars_per_pad);
  y.memory.pad_failure_prob = y.compute.pad_failure_prob;
  y.compute.chiplet_yield =
      chiplet_bond_yield(p, pillars_per_pad, config.ios_per_compute_chiplet);
  y.memory.chiplet_yield =
      chiplet_bond_yield(p, pillars_per_pad, config.ios_per_memory_chiplet);
  y.tile_yield = y.compute.chiplet_yield * y.memory.chiplet_yield;

  const double tiles = config.total_tiles();
  y.expected_faulty_chiplets =
      tiles * ((1.0 - y.compute.chiplet_yield) + (1.0 - y.memory.chiplet_yield));
  y.expected_faulty_tiles = tiles * (1.0 - y.tile_yield);
  y.all_good_probability = std::pow(y.tile_yield, tiles);
  return y;
}

AssemblyDraw simulate_assembly(const SystemConfig& config,
                               int pillars_per_pad, Rng& rng) {
  const TileGrid grid = config.grid();
  AssemblyDraw draw{FaultMap(grid), 0, 0};
  const double q =
      pad_failure_probability(config.pillar_bond_yield, pillars_per_pad);

  grid.for_each([&](TileCoord c) {
    const std::size_t bad_compute = sample_binomial_small_p(
        static_cast<std::size_t>(config.ios_per_compute_chiplet), q, rng);
    const std::size_t bad_memory = sample_binomial_small_p(
        static_cast<std::size_t>(config.ios_per_memory_chiplet), q, rng);
    if (bad_compute > 0) ++draw.faulty_compute_chiplets;
    if (bad_memory > 0) ++draw.faulty_memory_chiplets;
    if (bad_compute > 0 || bad_memory > 0)
      draw.tile_faults.set_faulty(c, true);
  });
  return draw;
}

double estimate_faulty_chiplets(const SystemConfig& config,
                                int pillars_per_pad, int trials, Rng& rng) {
  require(trials > 0, "need at least one Monte Carlo trial");
  double total = 0.0;
  for (int t = 0; t < trials; ++t) {
    const AssemblyDraw draw = simulate_assembly(config, pillars_per_pad, rng);
    total += static_cast<double>(draw.faulty_compute_chiplets +
                                 draw.faulty_memory_chiplets);
  }
  return total / trials;
}

}  // namespace wsp::io
