#include "wsp/io/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "wsp/common/error.hpp"
#include "wsp/io/bonding_yield.hpp"

namespace wsp::io {

namespace {

/// Standard normal CDF.
double phi(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

/// Poisson defect-limited yield of an area.
double area_yield(double defect_density, double area_m2) {
  return std::exp(-defect_density * area_m2);
}

}  // namespace

MonolithicCost estimate_monolithic_cost(const SystemConfig& config,
                                        const CostInputs& inputs) {
  require(inputs.monolithic_spare_fraction >= 0.0 &&
              inputs.monolithic_spare_fraction < 1.0,
          "spare fraction must be in [0,1)");
  MonolithicCost cost;
  const double tile_area = config.geometry.tile_active_area_m2();
  cost.tile_yield = area_yield(inputs.defect_density_per_m2, tile_area);

  const auto n = static_cast<double>(config.total_tiles());
  cost.expected_faulty_tiles = n * (1.0 - cost.tile_yield);
  cost.spare_area_fraction = inputs.monolithic_spare_fraction;

  // The system works when at least n x (1 - spares) tiles survive
  // (normal approximation to the binomial).
  const double need = n * (1.0 - inputs.monolithic_spare_fraction);
  const double mean = n * cost.tile_yield;
  const double sd =
      std::sqrt(std::max(1e-12, n * cost.tile_yield * (1.0 - cost.tile_yield)));
  cost.system_yield = std::clamp(phi((mean - need) / sd), 1e-9, 1.0);

  // One whole processed wafer per attempt.
  cost.cost_per_good_system = inputs.active_wafer_cost / cost.system_yield;
  return cost;
}

ChipletCost estimate_chiplet_cost(const SystemConfig& config,
                                  const CostInputs& inputs) {
  ChipletCost cost;
  const auto& g = config.geometry;
  const double compute_area = g.compute_chiplet_width_m * g.compute_chiplet_height_m;
  const double memory_area = g.memory_chiplet_width_m * g.memory_chiplet_height_m;
  cost.compute_die_yield =
      area_yield(inputs.defect_density_per_m2, compute_area);
  cost.memory_die_yield =
      area_yield(inputs.defect_density_per_m2, memory_area);

  // KGD screening (Sec. VII) means only good dies are bonded; the scrap
  // is paid for in the per-good-die silicon cost.
  constexpr double kWaferUtilization = 0.9;  // sawing / edge loss
  const double compute_dies =
      inputs.wafer_area_m2 * kWaferUtilization / compute_area;
  const double memory_dies =
      inputs.wafer_area_m2 * kWaferUtilization / memory_area;
  cost.dies_per_wafer = compute_dies;  // reported for the larger die

  const double cost_per_compute =
      inputs.active_wafer_cost / (compute_dies * cost.compute_die_yield);
  const double cost_per_memory =
      inputs.active_wafer_cost / (memory_dies * cost.memory_die_yield);
  const auto tiles = static_cast<double>(config.total_tiles());
  cost.silicon_cost = tiles * (cost_per_compute + cost_per_memory);

  // Assembly succeeds when the wafer ends up with few enough faulty
  // tiles for the fault-tolerant design to absorb (Fig. 6: a handful of
  // faults cost <2% of pairs).  Poisson acceptance with the dual-pillar
  // bonding fault rate.
  const AssemblyYield bond = analyze_assembly_yield(config, config.pillars_per_pad);
  const double lambda = bond.expected_faulty_tiles;
  constexpr int kToleratedFaultyTiles = 5;
  double acceptance = 0.0;
  double term = std::exp(-lambda);
  for (int k = 0; k <= kToleratedFaultyTiles; ++k) {
    acceptance += term;
    term *= lambda / (k + 1);
  }
  cost.assembly_yield = std::clamp(acceptance, 1e-9, 1.0);

  const double assembled =
      cost.silicon_cost + inputs.interconnect_wafer_cost +
      inputs.assembly_cost_per_chiplet * config.total_chiplets();
  cost.cost_per_good_system = assembled / cost.assembly_yield;
  return cost;
}

CostComparison compare_costs(const SystemConfig& config,
                             const CostInputs& inputs) {
  CostComparison cmp;
  cmp.monolithic = estimate_monolithic_cost(config, inputs);
  cmp.chiplet = estimate_chiplet_cost(config, inputs);
  cmp.chiplet_advantage = cmp.monolithic.cost_per_good_system /
                          cmp.chiplet.cost_per_good_system;
  return cmp;
}

}  // namespace wsp::io
