// Fine-pitch I/O cell model (Sec. V).
//
// Si-IF links are 200-500 um long, so the paper drives them with simple
// cascaded-inverter transmitters and two-minimum-inverter receivers that
// fit entirely under the 10 um-pitch pad (150 um^2 including stripped-down
// 100 V-HBM ESD protection).  Headline numbers reproduced here: 1 GHz
// signalling up to 500 um, 0.063 pJ/bit, total I/O area per compute chiplet
// only ~0.4 mm^2.
#pragma once

#include <cstdint>

#include "wsp/common/config.hpp"

namespace wsp::io {

/// ESD protection classes relevant to the design choice in Sec. V.
enum class EsdClass : std::uint8_t {
  PackagedHbm2kV,   ///< conventional packaged-part requirement
  BareDieHbm100V,   ///< bare-die chiplet-to-wafer requirement (what we use)
};

/// Electrical/geometric description of one I/O cell.
struct IoCellSpec {
  double cell_area_m2 = 150e-12;       ///< pad + transceiver + ESD
  double energy_per_bit_j = 0.063e-12;
  double max_rate_hz = 1e9;            ///< at or below max_link_length
  double max_link_length_m = 500e-6;
  EsdClass esd = EsdClass::BareDieHbm100V;

  static IoCellSpec from_config(const SystemConfig& config) {
    return IoCellSpec{
        .cell_area_m2 = config.io_cell_area_m2,
        .energy_per_bit_j = config.io_energy_per_bit_j,
        .max_rate_hz = config.io_signaling_rate_hz,
        .max_link_length_m = config.max_link_length_m,
        .esd = EsdClass::BareDieHbm100V,
    };
  }

  /// Achievable signalling rate for a link of `length_m`: full rate up to
  /// the rated length, then RC-limited rolloff (rate ~ 1/length for the
  /// inverter driving a distributed RC wire).
  double achievable_rate_hz(double length_m) const {
    if (length_m <= max_link_length_m) return max_rate_hz;
    return max_rate_hz * (max_link_length_m / length_m);
  }

  /// Energy to move `bits` across one link.
  double transfer_energy_j(std::uint64_t bits) const {
    return static_cast<double>(bits) * energy_per_bit_j;
  }

  /// Total I/O cell area for `io_count` I/Os (the paper quotes ~0.4 mm^2
  /// for the 2020-I/O compute chiplet).
  double total_area_m2(int io_count) const {
    return cell_area_m2 * io_count;
  }
};

}  // namespace wsp::io
