// Chiplet pad placement and the two-column-set escape plan
// (Sec. V Fig. 5, Sec. VIII Fig. 8).
//
// Pads sit in columns along each chiplet edge at the 10 um Cu-pillar pitch,
// oriented so the two redundant pillars of a pad land orthogonal to the
// edge (maximising I/O density per mm of edge).  Each side carries two
// *sets* of columns:
//
//   * Set 1 (essential), the two columns closest to the edge: all network
//     link I/Os plus two of the five memory banks — routable with a single
//     substrate metal layer.
//   * Set 2 (secondary), further columns: the remaining three banks and
//     non-essential signals — needs the second routing layer.
//
// If the substrate yields only one good signal layer, connecting set 1
// alone still gives a fully working processor, at the cost of 60 % of the
// memory capacity (3 of 5 banks per tile unreachable).
//
// Larger probe pads for pre-bond test (Sec. VII-A, Fig. 8) are modelled in
// wsp/testinfra/prebond.hpp; this file covers the bonded fine-pitch pads.
#pragma once

#include <cstdint>
#include <vector>

#include "wsp/common/config.hpp"
#include "wsp/common/geometry.hpp"

namespace wsp::io {

/// What a pad carries.
enum class SignalClass : std::uint8_t {
  NetworkLink,   ///< inter-tile mesh wiring (essential)
  MemoryBank,    ///< SRAM bank data/address (bank index in `bank`)
  TestJtag,      ///< JTAG/debug signals (essential)
  ClockForward,  ///< forwarded-clock in/out (essential)
  PowerSense,    ///< supply sense / misc (secondary)
};

/// Which escape set (routing layer) a pad belongs to.
enum class PadSet : std::uint8_t { Essential = 1, Secondary = 2 };

struct Pad {
  double x_m = 0.0;       ///< position on the chiplet, origin bottom-left
  double y_m = 0.0;
  Direction edge = Direction::North;  ///< chiplet edge the pad escapes from
  int column = 0;         ///< 0 = closest to the edge
  PadSet set = PadSet::Essential;
  SignalClass signal = SignalClass::NetworkLink;
  int bank = -1;          ///< memory bank index when signal == MemoryBank
};

/// Demand to place on a chiplet's perimeter.
struct PadDemand {
  int network_per_side = 0;   ///< network wires escaping each side
  int clock_per_side = 0;     ///< forwarded-clock wires per side
  int jtag_total = 0;         ///< test signals (placed on the west side)
  std::vector<int> bank_ios;  ///< I/Os per memory bank, in bank order
  int essential_banks = 2;    ///< banks whose I/Os go in set 1
  int misc_secondary = 0;     ///< non-essential signals for set 2
};

/// Result of generating a layout.
struct PadLayout {
  std::vector<Pad> pads;
  int columns_used = 0;          ///< deepest column index + 1
  int essential_count = 0;
  int secondary_count = 0;
  bool feasible = false;         ///< everything fit on the perimeter
  double io_area_m2 = 0.0;       ///< total I/O cell area
  double edge_density_per_m = 0.0;  ///< escape wires per metre of edge
};

/// Pads that fit in one column along an edge of `edge_len_m` at `pitch_m`.
int pads_per_column(double edge_len_m, double pitch_m);

/// Escape wiring density per metre of chiplet edge achievable with
/// `layers` signal layers at `wiring_pitch_m` (the paper: 2 layers at 5 um
/// pitch = 400 wires/mm).
double edge_escape_density_per_m(int layers, double wiring_pitch_m);

/// Generates a perimeter pad layout for a chiplet of the given dimensions.
/// Essential signals (network, clock, JTAG, the first `essential_banks`
/// banks) fill columns 0-1; everything else goes in deeper columns.
PadLayout generate_pad_layout(double width_m, double height_m,
                              double pitch_m, const PadDemand& demand,
                              double cell_area_m2);

/// The compute-chiplet demand implied by the prototype config (network
/// links on all four sides, clock forwarding, JTAG, memory-controller
/// connections to the five banks).
PadDemand compute_chiplet_demand(const SystemConfig& config);

/// Summary of running with only one good routing layer (Sec. VIII).
struct SingleLayerImpact {
  int banks_connected = 0;
  int banks_lost = 0;
  double memory_capacity_fraction_lost = 0.0;  ///< paper: 0.60
  bool network_intact = true;  ///< the processor still fully works
};
SingleLayerImpact single_layer_impact(const SystemConfig& config);

}  // namespace wsp::io
