#include "wsp/io/pad_layout.hpp"

#include <algorithm>
#include <cmath>

#include "wsp/common/error.hpp"

namespace wsp::io {

namespace {

constexpr int kEssentialColumns = 2;  ///< set-1 columns per side
constexpr int kMaxColumns = 8;        ///< perimeter depth budget

/// Mutable placement cursor for one chiplet side.
struct SideCursor {
  Direction edge;
  double edge_len;
  int per_column;
  int placed = 0;  ///< pads placed so far on this side (column-major)

  int column() const { return placed / per_column; }
  int slot() const { return placed % per_column; }
};

/// Computes the pad position for `side` at (column, slot).  Columns stack
/// inward from the edge with a depth of two pillar pitches (the two
/// redundant pillars sit orthogonal to the edge).
Pad make_pad(const SideCursor& side, double width, double height,
             double pitch, SignalClass signal, int bank) {
  const double along = (side.slot() + 0.5) * pitch;
  const double depth = (side.column() + 0.5) * 2.0 * pitch;
  Pad pad;
  pad.edge = side.edge;
  pad.column = side.column();
  pad.set = side.column() < kEssentialColumns ? PadSet::Essential
                                              : PadSet::Secondary;
  pad.signal = signal;
  pad.bank = bank;
  switch (side.edge) {
    case Direction::North: pad.x_m = along; pad.y_m = height - depth; break;
    case Direction::South: pad.x_m = along; pad.y_m = depth; break;
    case Direction::East:  pad.x_m = width - depth; pad.y_m = along; break;
    case Direction::West:  pad.x_m = depth; pad.y_m = along; break;
  }
  return pad;
}

}  // namespace

int pads_per_column(double edge_len_m, double pitch_m) {
  require(edge_len_m > 0.0 && pitch_m > 0.0,
          "edge length and pitch must be positive");
  // Guard against representation error (3.15e-3 / 10e-6 = 314.9999...).
  return static_cast<int>(std::floor(edge_len_m / pitch_m + 1e-9));
}

double edge_escape_density_per_m(int layers, double wiring_pitch_m) {
  require(layers >= 1 && wiring_pitch_m > 0.0, "invalid escape parameters");
  return static_cast<double>(layers) / wiring_pitch_m;
}

PadLayout generate_pad_layout(double width_m, double height_m,
                              double pitch_m, const PadDemand& demand,
                              double cell_area_m2) {
  PadLayout layout;

  SideCursor sides[4] = {
      {Direction::North, width_m, pads_per_column(width_m, pitch_m)},
      {Direction::East, height_m, pads_per_column(height_m, pitch_m)},
      {Direction::South, width_m, pads_per_column(width_m, pitch_m)},
      {Direction::West, height_m, pads_per_column(height_m, pitch_m)},
  };
  auto& north = sides[0];
  auto& west = sides[3];

  bool overflow = false;
  auto place = [&](SideCursor& side, SignalClass signal, int count,
                   int bank = -1) {
    for (int i = 0; i < count; ++i) {
      if (side.column() >= kMaxColumns) {
        overflow = true;
        return;
      }
      layout.pads.push_back(
          make_pad(side, width_m, height_m, pitch_m, signal, bank));
      ++side.placed;
    }
  };

  // Essential signals first so they land in columns 0-1: network links and
  // forwarded clock on every side, JTAG on the west side, then the
  // essential memory banks on the north side (facing the memory chiplet).
  for (auto& side : sides) {
    place(side, SignalClass::NetworkLink, demand.network_per_side);
    place(side, SignalClass::ClockForward, demand.clock_per_side);
  }
  place(west, SignalClass::TestJtag, demand.jtag_total);

  const int bank_count = static_cast<int>(demand.bank_ios.size());
  for (int b = 0; b < std::min(demand.essential_banks, bank_count); ++b)
    place(north, SignalClass::MemoryBank, demand.bank_ios[b], b);

  // Secondary set: remaining banks and misc, stacked behind on the north /
  // east sides.
  for (int b = demand.essential_banks; b < bank_count; ++b) {
    // Skip ahead to the secondary columns if still in the essential ones.
    while (north.column() < kEssentialColumns && north.column() < kMaxColumns)
      north.placed = (north.column() + 1) * north.per_column;
    place(north, SignalClass::MemoryBank, demand.bank_ios[b], b);
  }
  place(sides[1], SignalClass::PowerSense, demand.misc_secondary);

  for (const Pad& pad : layout.pads) {
    layout.columns_used = std::max(layout.columns_used, pad.column + 1);
    if (pad.set == PadSet::Essential)
      ++layout.essential_count;
    else
      ++layout.secondary_count;
  }
  // Essential demand must genuinely fit in set 1 for the single-layer
  // fallback to work.
  bool essential_fits = true;
  for (const Pad& pad : layout.pads) {
    const bool is_essential_signal =
        pad.signal == SignalClass::NetworkLink ||
        pad.signal == SignalClass::ClockForward ||
        pad.signal == SignalClass::TestJtag ||
        (pad.signal == SignalClass::MemoryBank && pad.bank >= 0 &&
         pad.bank < demand.essential_banks);
    if (is_essential_signal && pad.set != PadSet::Essential)
      essential_fits = false;
  }
  layout.feasible = !overflow && essential_fits;
  layout.io_area_m2 = cell_area_m2 * static_cast<double>(layout.pads.size());

  const double perimeter = 2.0 * (width_m + height_m);
  layout.edge_density_per_m =
      perimeter > 0.0 ? static_cast<double>(layout.essential_count) / perimeter
                      : 0.0;
  return layout;
}

PadDemand compute_chiplet_demand(const SystemConfig& config) {
  PadDemand d;
  d.network_per_side = config.link_width_bits_per_side;
  d.clock_per_side = 2;  // forwarded clock in + out
  d.jtag_total = 12;     // TDI/TDO/TMS/TCK/TRST + tile chain extensions
  // Remaining compute-chiplet I/O budget is the memory-controller interface
  // to the five banks, split evenly.
  const int used = 4 * d.network_per_side + 4 * d.clock_per_side +
                   d.jtag_total;
  const int remaining = config.ios_per_compute_chiplet - used;
  const int banks = config.banks_per_memory_chiplet;
  d.bank_ios.assign(static_cast<std::size_t>(banks), remaining / banks);
  d.bank_ios[0] += remaining % banks;
  d.essential_banks = 2;
  d.misc_secondary = 0;
  return d;
}

SingleLayerImpact single_layer_impact(const SystemConfig& config) {
  SingleLayerImpact impact;
  impact.banks_connected = 2;  // the essential-set banks
  impact.banks_lost = config.banks_per_memory_chiplet - impact.banks_connected;
  impact.memory_capacity_fraction_lost =
      static_cast<double>(impact.banks_lost) /
      static_cast<double>(config.banks_per_memory_chiplet);
  impact.network_intact = true;  // all network I/Os live in set 1
  return impact;
}

}  // namespace wsp::io
