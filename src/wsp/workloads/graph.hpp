// Graphs and graph generators for the paper's workload validation
// (Sec. II: "graph applications such as breadth-first search (BFS),
// single-source shortest path (SSSP)").
#pragma once

#include <cstdint>
#include <vector>

#include "wsp/common/rng.hpp"

namespace wsp::workloads {

/// Directed graph in CSR form with per-edge weights.
class Graph {
 public:
  explicit Graph(std::uint32_t vertex_count);

  std::uint32_t vertex_count() const {
    return static_cast<std::uint32_t>(offsets_.size() - 1);
  }
  std::uint64_t edge_count() const { return targets_.size(); }

  /// Builder: add edges, then call finalize() before reading adjacency.
  void add_edge(std::uint32_t from, std::uint32_t to, std::uint32_t weight = 1);
  void add_undirected_edge(std::uint32_t a, std::uint32_t b,
                           std::uint32_t weight = 1);
  void finalize();
  bool finalized() const { return finalized_; }

  /// Out-neighbours of `v` (valid after finalize()).
  struct EdgeRange {
    const std::uint32_t* targets;
    const std::uint32_t* weights;
    std::size_t count;
  };
  EdgeRange out_edges(std::uint32_t v) const;
  std::uint32_t out_degree(std::uint32_t v) const;

 private:
  struct PendingEdge {
    std::uint32_t from, to, weight;
  };
  std::vector<PendingEdge> pending_;
  std::vector<std::uint64_t> offsets_;
  std::vector<std::uint32_t> targets_;
  std::vector<std::uint32_t> weights_;
  bool finalized_ = false;
};

/// 2-D grid graph (w x h vertices, 4-neighbour, undirected, unit weights):
/// the stencil-like topology that maps naturally onto the tile array.
Graph make_grid_graph(std::uint32_t w, std::uint32_t h);

/// Erdos-Renyi G(n, m) multigraph-free random graph, undirected, with
/// weights uniform in [1, max_weight].
Graph make_random_graph(std::uint32_t n, std::uint64_t m,
                        std::uint32_t max_weight, Rng& rng);

/// R-MAT power-law graph (a=0.57 b=c=0.19), the standard proxy for the
/// irregular graph workloads the paper's introduction motivates.
Graph make_rmat_graph(int scale, std::uint64_t edges,
                      std::uint32_t max_weight, Rng& rng);

}  // namespace wsp::workloads
