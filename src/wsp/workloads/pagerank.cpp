#include "wsp/workloads/pagerank.hpp"

#include <memory>

#include "wsp/common/error.hpp"
#include "wsp/workloads/graph_apps.hpp"

namespace wsp::workloads {

namespace {

constexpr std::uint32_t kContributionTag = 10;
constexpr std::uint32_t kIterateTag = 11;

struct PrContext {
  const Graph* graph;
  const VertexPartition* partition;
  PageRankOptions options;
};

class PageRankHandler : public arch::TileHandler {
 public:
  PageRankHandler(std::shared_ptr<const PrContext> pr, TileCoord coord)
      : pr_(std::move(pr)) {
    std::tie(begin_, end_) = pr_->partition->range(coord);
    rank_.assign(end_ - begin_, pr_->options.initial_rank);
    accum_.assign(end_ - begin_, 0);
  }

  std::uint64_t rank_of(std::uint32_t v) const { return rank_[v - begin_]; }

  void on_message(arch::TileContext& ctx, const arch::Message& m) override {
    if (m.tag == kContributionTag) {
      const auto vertex = static_cast<std::uint32_t>(m.payload >> 40);
      const std::uint64_t value = m.payload & ((1ull << 40) - 1);
      accum_[vertex - begin_] += value;
      ctx.charge(2);
      return;
    }
    if (m.tag != kIterateTag) return;

    // Apply the damped update for the iteration that just completed
    // (skipped on the first tick: nothing has been scattered yet).
    const auto& opt = pr_->options;
    if (tick_ > 0) {
      const std::uint64_t base =
          opt.initial_rank / 1000 * (1000 - opt.damping_permille);
      for (std::uint64_t& a : accum_) {
        a = base + a / 1000 * opt.damping_permille;
      }
      rank_.swap(accum_);
      std::fill(accum_.begin(), accum_.end(), 0);
      ctx.charge(2 * rank_.size());
    }
    ++tick_;
    if (tick_ > opt.iterations) return;  // final tick: apply only

    // Scatter rank/degree along out-edges.
    for (std::uint32_t v = begin_; v < end_; ++v) {
      const Graph::EdgeRange edges = pr_->graph->out_edges(v);
      if (edges.count == 0) continue;
      const std::uint64_t share =
          rank_[v - begin_] / static_cast<std::uint64_t>(edges.count);
      ctx.charge(edges.count);
      for (std::size_t e = 0; e < edges.count; ++e) {
        const std::uint32_t u = edges.targets[e];
        if (u >= begin_ && u < end_) {
          accum_[u - begin_] += share;
        } else {
          ctx.send(pr_->partition->owner(u), kContributionTag,
                   (static_cast<std::uint64_t>(u) << 40) | share);
        }
      }
    }
  }

 private:
  std::shared_ptr<const PrContext> pr_;
  std::uint32_t begin_ = 0;
  std::uint32_t end_ = 0;
  int tick_ = 0;
  std::vector<std::uint64_t> rank_;
  std::vector<std::uint64_t> accum_;
};

}  // namespace

PageRankResult run_pagerank(const SystemConfig& config,
                            const FaultMap& faults, const Graph& graph,
                            const PageRankOptions& options,
                            const noc::NocOptions& noc_options) {
  require(graph.finalized(), "graph must be finalized");
  require(options.iterations >= 1, "need at least one iteration");
  require(options.damping_permille <= 1000, "damping is a permille value");
  // Contribution payloads pack (vertex << 40 | share): the total rank
  // mass bounds any single share, so it must fit in 40 bits.
  require(options.initial_rank * graph.vertex_count() < (1ull << 40),
          "rank mass too large for the payload packing");
  require(graph.vertex_count() < (1u << 24), "vertex id must fit 24 bits");

  auto partition = std::make_shared<VertexPartition>(graph, faults);
  auto pr = std::make_shared<PrContext>();
  pr->graph = &graph;
  pr->partition = partition.get();
  pr->options = options;

  std::vector<PageRankHandler*> handlers(faults.grid().tile_count(), nullptr);
  arch::WaferSystem system(
      config, faults,
      [&](TileCoord c) {
        auto h = std::make_unique<PageRankHandler>(pr, c);
        handlers[faults.grid().index_of(c)] = h.get();
        return h;
      },
      noc_options);
  system.start();

  PageRankResult result;
  // iterations+1 ticks: tick k scatters iteration k's contributions and
  // tick k+1 applies them; the final tick applies only.
  for (int tick = 0; tick <= options.iterations; ++tick) {
    for (const TileCoord c : faults.healthy_tiles()) {
      arch::Message m;
      m.src = c;
      m.dst = c;
      m.tag = kIterateTag;
      system.post(m);
    }
    result.quiesced = system.run_until_quiescent();
    if (!result.quiesced) break;
    ++result.iterations_run;
  }
  result.iterations_run = std::max(0, result.iterations_run - 1);

  result.rank.assign(graph.vertex_count(), 0);
  for (std::uint32_t v = 0; v < graph.vertex_count(); ++v) {
    const TileCoord owner = partition->owner(v);
    const auto* h = handlers[faults.grid().index_of(owner)];
    if (h) result.rank[v] = h->rank_of(v);
  }
  result.stats = system.stats();
  return result;
}

std::vector<std::uint64_t> reference_pagerank(const Graph& graph,
                                              const PageRankOptions& options) {
  const std::uint32_t n = graph.vertex_count();
  std::vector<std::uint64_t> rank(n, options.initial_rank);
  std::vector<std::uint64_t> accum(n, 0);
  const std::uint64_t base =
      options.initial_rank / 1000 * (1000 - options.damping_permille);
  for (int it = 0; it < options.iterations; ++it) {
    std::fill(accum.begin(), accum.end(), 0);
    for (std::uint32_t v = 0; v < n; ++v) {
      const Graph::EdgeRange edges = graph.out_edges(v);
      if (edges.count == 0) continue;
      const std::uint64_t share =
          rank[v] / static_cast<std::uint64_t>(edges.count);
      for (std::size_t e = 0; e < edges.count; ++e)
        accum[edges.targets[e]] += share;
    }
    for (std::uint32_t v = 0; v < n; ++v)
      rank[v] = base + accum[v] / 1000 * options.damping_permille;
  }
  return rank;
}

}  // namespace wsp::workloads
