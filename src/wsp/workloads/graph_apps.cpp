#include "wsp/workloads/graph_apps.hpp"

#include <algorithm>
#include <queue>

#include "wsp/arch/power_map.hpp"
#include "wsp/common/error.hpp"

namespace wsp::workloads {

VertexPartition::VertexPartition(const Graph& graph, const FaultMap& faults)
    : vertex_count_(graph.vertex_count()),
      owners_(faults.healthy_tiles()),
      grid_(faults.grid()) {
  require(!owners_.empty(), "no healthy tiles to own vertices");
  const std::uint32_t k = static_cast<std::uint32_t>(owners_.size());
  const std::uint32_t base = vertex_count_ / k;
  const std::uint32_t extra = vertex_count_ % k;
  starts_.resize(owners_.size() + 1);
  std::uint32_t v = 0;
  for (std::uint32_t i = 0; i < k; ++i) {
    starts_[i] = v;
    v += base + (i < extra ? 1 : 0);
  }
  starts_[k] = vertex_count_;

  tile_slot_.assign(grid_.tile_count(), -1);
  for (std::size_t i = 0; i < owners_.size(); ++i)
    tile_slot_[grid_.index_of(owners_[i])] = static_cast<int>(i);
}

TileCoord VertexPartition::owner(std::uint32_t vertex) const {
  require(vertex < vertex_count_, "vertex out of range");
  const auto it =
      std::upper_bound(starts_.begin(), starts_.end(), vertex) - 1;
  return owners_[static_cast<std::size_t>(it - starts_.begin())];
}

std::pair<std::uint32_t, std::uint32_t> VertexPartition::range(
    TileCoord tile) const {
  const int slot = tile_slot_[grid_.index_of(tile)];
  if (slot < 0) return {0, 0};
  return {starts_[static_cast<std::size_t>(slot)],
          starts_[static_cast<std::size_t>(slot) + 1]};
}

namespace {

constexpr std::uint32_t kRelaxTag = 1;

std::uint64_t pack(std::uint32_t vertex, std::uint32_t dist) {
  return (static_cast<std::uint64_t>(vertex) << 32) | dist;
}

/// Shared immutable context for all tile handlers of one run.
struct AppContext {
  const Graph* graph;
  const VertexPartition* partition;
  GraphAppCosts costs;
  bool use_weights;
  std::uint32_t source;
  std::uint32_t words_per_bank;
  int shared_banks;
};

class GraphAppHandler : public arch::TileHandler {
 public:
  GraphAppHandler(std::shared_ptr<const AppContext> app, TileCoord coord)
      : app_(std::move(app)) {
    std::tie(begin_, end_) = app_->partition->range(coord);
  }

  void on_start(arch::TileContext& ctx) override {
    // Initialise the owned slice of the distance array in the shared banks.
    for (std::uint32_t v = begin_; v < end_; ++v)
      store_dist(ctx, v, kUnreachedDistance);
    ctx.charge(end_ - begin_);
    if (app_->source >= begin_ && app_->source < end_)
      relax_local(ctx, app_->source, 0);
  }

  void on_message(arch::TileContext& ctx, const arch::Message& m) override {
    if (m.tag != kRelaxTag) return;
    ctx.charge(app_->costs.per_message_base);
    const auto vertex = static_cast<std::uint32_t>(m.payload >> 32);
    const auto dist = static_cast<std::uint32_t>(m.payload & 0xFFFFFFFFu);
    relax_local(ctx, vertex, dist);
  }

 private:
  std::shared_ptr<const AppContext> app_;
  std::uint32_t begin_ = 0;
  std::uint32_t end_ = 0;

  std::uint32_t load_dist(arch::TileContext& ctx, std::uint32_t v) const {
    const std::uint32_t w = v - begin_;
    return ctx.memory().peek(
        static_cast<int>(w / app_->words_per_bank),
        (w % app_->words_per_bank) * 4);
  }
  void store_dist(arch::TileContext& ctx, std::uint32_t v,
                  std::uint32_t d) const {
    const std::uint32_t w = v - begin_;
    ctx.memory().poke(static_cast<int>(w / app_->words_per_bank),
                      (w % app_->words_per_bank) * 4, d);
  }

  /// Label-correcting relaxation of the locally owned worklist; remote
  /// neighbours become RELAX messages.
  void relax_local(arch::TileContext& ctx, std::uint32_t vertex,
                   std::uint32_t dist) {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> work;
    work.emplace_back(vertex, dist);
    while (!work.empty()) {
      const auto [v, d] = work.back();
      work.pop_back();
      if (d >= load_dist(ctx, v)) continue;
      store_dist(ctx, v, d);
      const Graph::EdgeRange edges = app_->graph->out_edges(v);
      ctx.charge(app_->costs.per_edge * edges.count + 1);
      for (std::size_t e = 0; e < edges.count; ++e) {
        const std::uint32_t u = edges.targets[e];
        const std::uint32_t nd =
            d + (app_->use_weights ? edges.weights[e] : 1u);
        if (u >= begin_ && u < end_) {
          work.emplace_back(u, nd);
        } else {
          ctx.send(app_->partition->owner(u), kRelaxTag, pack(u, nd));
        }
      }
    }
  }
};

}  // namespace

GraphAppResult run_graph_app(const SystemConfig& config,
                             const FaultMap& faults, const Graph& graph,
                             std::uint32_t source, bool use_weights,
                             const GraphAppCosts& costs,
                             const noc::NocOptions& noc_options) {
  require(graph.finalized(), "graph must be finalized");
  require(source < graph.vertex_count(), "source out of range");

  auto partition = std::make_shared<VertexPartition>(graph, faults);
  auto app = std::make_shared<AppContext>();
  app->graph = &graph;
  app->partition = partition.get();
  app->costs = costs;
  app->use_weights = use_weights;
  app->source = source;
  app->words_per_bank = static_cast<std::uint32_t>(config.bank_bytes / 4);
  app->shared_banks = config.shared_banks_per_tile;

  // Capacity: each tile's distance slice must fit its shared banks.
  const std::uint64_t per_tile_capacity =
      static_cast<std::uint64_t>(app->words_per_bank) *
      static_cast<std::uint64_t>(app->shared_banks);
  const std::uint64_t worst_slice =
      (graph.vertex_count() + partition->tile_count() - 1) /
      partition->tile_count();
  require(worst_slice <= per_tile_capacity,
          "graph too large for the shared banks of the healthy tiles");

  require(faults.is_healthy(partition->owner(source)),
          "source vertex owned by a faulty tile");

  arch::WaferSystem system(
      config, faults,
      [&](TileCoord c) {
        return std::make_unique<GraphAppHandler>(app, c);
      },
      noc_options);

  // Keep the shared context alive for the system's lifetime.
  system.start();
  GraphAppResult result;
  result.quiesced = system.run_until_quiescent();
  result.stats = system.stats();
  result.tile_power_w = arch::tile_power_map(system);

  result.distance.assign(graph.vertex_count(), kUnreachedDistance);
  for (std::uint32_t v = 0; v < graph.vertex_count(); ++v) {
    const TileCoord owner = partition->owner(v);
    const auto [begin, end] = partition->range(owner);
    (void)end;
    const std::uint32_t w = v - begin;
    result.distance[v] = system.tile(owner).memory().peek(
        static_cast<int>(w / app->words_per_bank),
        (w % app->words_per_bank) * 4);
  }
  return result;
}

std::vector<std::uint32_t> reference_bfs(const Graph& graph,
                                         std::uint32_t source) {
  std::vector<std::uint32_t> dist(graph.vertex_count(), kUnreachedDistance);
  std::queue<std::uint32_t> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const std::uint32_t v = frontier.front();
    frontier.pop();
    const Graph::EdgeRange edges = graph.out_edges(v);
    for (std::size_t e = 0; e < edges.count; ++e) {
      const std::uint32_t u = edges.targets[e];
      if (dist[u] == kUnreachedDistance) {
        dist[u] = dist[v] + 1;
        frontier.push(u);
      }
    }
  }
  return dist;
}

std::vector<std::uint32_t> reference_sssp(const Graph& graph,
                                          std::uint32_t source) {
  std::vector<std::uint32_t> dist(graph.vertex_count(), kUnreachedDistance);
  using Entry = std::pair<std::uint64_t, std::uint32_t>;  // (dist, vertex)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[source] = 0;
  heap.push({0, source});
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > dist[v]) continue;
    const Graph::EdgeRange edges = graph.out_edges(v);
    for (std::size_t e = 0; e < edges.count; ++e) {
      const std::uint32_t u = edges.targets[e];
      const std::uint64_t nd = d + edges.weights[e];
      if (nd < dist[u]) {
        dist[u] = static_cast<std::uint32_t>(nd);
        heap.push({nd, u});
      }
    }
  }
  return dist;
}

}  // namespace wsp::workloads
