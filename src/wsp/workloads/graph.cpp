#include "wsp/workloads/graph.hpp"

#include <algorithm>

#include "wsp/common/error.hpp"

namespace wsp::workloads {

Graph::Graph(std::uint32_t vertex_count)
    : offsets_(static_cast<std::size_t>(vertex_count) + 1, 0) {}

void Graph::add_edge(std::uint32_t from, std::uint32_t to,
                     std::uint32_t weight) {
  require(!finalized_, "cannot add edges after finalize()");
  require(from < vertex_count() && to < vertex_count(),
          "edge endpoint out of range");
  pending_.push_back({from, to, weight});
}

void Graph::add_undirected_edge(std::uint32_t a, std::uint32_t b,
                                std::uint32_t weight) {
  add_edge(a, b, weight);
  add_edge(b, a, weight);
}

void Graph::finalize() {
  require(!finalized_, "finalize() called twice");
  std::vector<std::uint64_t> degree(offsets_.size() - 1, 0);
  for (const PendingEdge& e : pending_) ++degree[e.from];
  for (std::size_t v = 0; v < degree.size(); ++v)
    offsets_[v + 1] = offsets_[v] + degree[v];
  targets_.resize(pending_.size());
  weights_.resize(pending_.size());
  std::vector<std::uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const PendingEdge& e : pending_) {
    const std::uint64_t slot = cursor[e.from]++;
    targets_[slot] = e.to;
    weights_[slot] = e.weight;
  }
  pending_.clear();
  pending_.shrink_to_fit();
  finalized_ = true;
}

Graph::EdgeRange Graph::out_edges(std::uint32_t v) const {
  require(finalized_, "out_edges() requires finalize()");
  require(v < vertex_count(), "vertex out of range");
  const std::uint64_t begin = offsets_[v];
  const std::uint64_t end = offsets_[v + 1];
  return {targets_.data() + begin, weights_.data() + begin,
          static_cast<std::size_t>(end - begin)};
}

std::uint32_t Graph::out_degree(std::uint32_t v) const {
  require(finalized_, "out_degree() requires finalize()");
  return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
}

Graph make_grid_graph(std::uint32_t w, std::uint32_t h) {
  Graph g(w * h);
  auto id = [w](std::uint32_t x, std::uint32_t y) { return y * w + x; };
  for (std::uint32_t y = 0; y < h; ++y) {
    for (std::uint32_t x = 0; x < w; ++x) {
      if (x + 1 < w) g.add_undirected_edge(id(x, y), id(x + 1, y));
      if (y + 1 < h) g.add_undirected_edge(id(x, y), id(x, y + 1));
    }
  }
  g.finalize();
  return g;
}

Graph make_random_graph(std::uint32_t n, std::uint64_t m,
                        std::uint32_t max_weight, Rng& rng) {
  require(n >= 2, "random graph needs >= 2 vertices");
  require(max_weight >= 1, "max weight must be >= 1");
  Graph g(n);
  for (std::uint64_t e = 0; e < m; ++e) {
    const auto a = static_cast<std::uint32_t>(rng.below(n));
    auto b = static_cast<std::uint32_t>(rng.below(n));
    if (a == b) b = (b + 1) % n;
    const auto w = static_cast<std::uint32_t>(1 + rng.below(max_weight));
    g.add_undirected_edge(a, b, w);
  }
  g.finalize();
  return g;
}

Graph make_rmat_graph(int scale, std::uint64_t edges,
                      std::uint32_t max_weight, Rng& rng) {
  require(scale >= 1 && scale <= 30, "R-MAT scale out of range");
  const std::uint32_t n = 1u << scale;
  Graph g(n);
  constexpr double a = 0.57, b = 0.19, c = 0.19;  // d = 0.05
  for (std::uint64_t e = 0; e < edges; ++e) {
    std::uint32_t x = 0, y = 0;
    for (int bit = 0; bit < scale; ++bit) {
      const double r = rng.uniform();
      if (r < a) {
        // top-left quadrant: no bits set
      } else if (r < a + b) {
        x |= (1u << bit);
      } else if (r < a + b + c) {
        y |= (1u << bit);
      } else {
        x |= (1u << bit);
        y |= (1u << bit);
      }
    }
    if (x == y) y = (y + 1) % n;
    const auto w = static_cast<std::uint32_t>(1 + rng.below(max_weight));
    g.add_undirected_edge(x, y, w);
  }
  g.finalize();
  return g;
}

}  // namespace wsp::workloads
