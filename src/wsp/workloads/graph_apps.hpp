// Distributed BFS and SSSP on the waferscale system (Sec. II).
//
// The graph is block-partitioned across the healthy tiles; every tile's
// handler owns a contiguous vertex range, keeps the distance array in its
// memory chiplet's shared banks, and relaxes edges by messaging the owner
// tiles of neighbouring vertices over the NoC.  Both kernels are
// label-correcting (asynchronous Bellman-Ford style): a RELAX(v, d)
// message improves dist[v] and propagates; the computation is done when
// the system quiesces.  BFS is the unit-weight special case.
//
// Sequential references (classic BFS / Dijkstra) are provided for
// verification — every simulated run is checked against them in the tests.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "wsp/arch/wafer_system.hpp"
#include "wsp/workloads/graph.hpp"

namespace wsp::workloads {

inline constexpr std::uint32_t kUnreachedDistance =
    std::numeric_limits<std::uint32_t>::max();

/// Block partition of vertices over the healthy tiles of a wafer.
class VertexPartition {
 public:
  VertexPartition(const Graph& graph, const FaultMap& faults);

  TileCoord owner(std::uint32_t vertex) const;
  /// Owned vertex range [begin, end) of `tile`; empty when the tile is
  /// faulty or owns nothing.
  std::pair<std::uint32_t, std::uint32_t> range(TileCoord tile) const;
  std::uint32_t vertex_count() const { return vertex_count_; }
  std::size_t tile_count() const { return owners_.size(); }

 private:
  std::uint32_t vertex_count_;
  std::vector<TileCoord> owners_;         ///< healthy tiles, in order
  std::vector<std::uint32_t> starts_;     ///< starts_[i] = first vertex of owners_[i]
  std::vector<int> tile_slot_;            ///< grid index -> owners_ slot (-1)
  TileGrid grid_;
};

/// Tuning knobs for the cost model (core cycles charged per action).
struct GraphAppCosts {
  std::uint64_t per_message_base = 4;  ///< header decode + bank access
  std::uint64_t per_edge = 2;          ///< relaxation work per out-edge
};

struct GraphAppResult {
  std::vector<std::uint32_t> distance;  ///< per vertex; kUnreachedDistance
  arch::WaferSystemStats stats;
  /// Per-tile power (watts) implied by the run's core activity — feed it
  /// to wsp::pdn::WaferPdn::solve() for workload-driven droop analysis.
  std::vector<double> tile_power_w;
  bool quiesced = false;
};

/// Runs distributed BFS from `source` on a wafer described by
/// `config`/`faults`.  `use_weights` switches to SSSP relaxation.
GraphAppResult run_graph_app(const SystemConfig& config,
                             const FaultMap& faults, const Graph& graph,
                             std::uint32_t source, bool use_weights,
                             const GraphAppCosts& costs = {},
                             const noc::NocOptions& noc_options = {});

inline GraphAppResult run_bfs(const SystemConfig& config,
                              const FaultMap& faults, const Graph& graph,
                              std::uint32_t source) {
  return run_graph_app(config, faults, graph, source, /*use_weights=*/false);
}
inline GraphAppResult run_sssp(const SystemConfig& config,
                               const FaultMap& faults, const Graph& graph,
                               std::uint32_t source) {
  return run_graph_app(config, faults, graph, source, /*use_weights=*/true);
}

/// Sequential references for verification.
std::vector<std::uint32_t> reference_bfs(const Graph& graph,
                                         std::uint32_t source);
std::vector<std::uint32_t> reference_sssp(const Graph& graph,
                                          std::uint32_t source);

}  // namespace wsp::workloads
